package des

import (
	"container/heap"
	"fmt"
)

// boxedEngine is the pre-arena scheduler, preserved test-side as the
// reference implementation: a container/heap of *event records with
// per-event action closures and a pending map keyed by ID. The arena
// engine must match its execution order bit-for-bit
// (TestMatchesBoxedReference) and beat it on throughput and allocation
// (BenchmarkDESThroughput).

type boxedEventID int64

type boxedEvent struct {
	time     float64
	seq      int64
	id       boxedEventID
	action   func()
	canceled bool
	index    int
}

type boxedHeap []*boxedEvent

func (h boxedHeap) Len() int { return len(h) }

func (h boxedHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h boxedHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *boxedHeap) Push(x any) {
	e := x.(*boxedEvent)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *boxedHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type boxedEngine struct {
	pq      boxedHeap
	now     float64
	nextSeq int64
	nextID  boxedEventID
	pending map[boxedEventID]*boxedEvent
	steps   int64
}

func newBoxedEngine() *boxedEngine {
	return &boxedEngine{pending: make(map[boxedEventID]*boxedEvent)}
}

func (e *boxedEngine) Now() float64 { return e.now }

func (e *boxedEngine) Schedule(delay float64, action func()) (boxedEventID, error) {
	if delay < 0 {
		return 0, fmt.Errorf("des: negative delay %v", delay)
	}
	return e.ScheduleAt(e.now+delay, action)
}

func (e *boxedEngine) ScheduleAt(t float64, action func()) (boxedEventID, error) {
	if t < e.now {
		return 0, fmt.Errorf("des: schedule at %v before now %v", t, e.now)
	}
	if action == nil {
		return 0, fmt.Errorf("des: nil action")
	}
	e.nextID++
	e.nextSeq++
	ev := &boxedEvent{time: t, seq: e.nextSeq, id: e.nextID, action: action}
	heap.Push(&e.pq, ev)
	e.pending[ev.id] = ev
	return ev.id, nil
}

func (e *boxedEngine) Cancel(id boxedEventID) bool {
	ev, ok := e.pending[id]
	if !ok {
		return false
	}
	ev.canceled = true
	delete(e.pending, id)
	return true
}

func (e *boxedEngine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*boxedEvent)
		if ev.canceled {
			continue
		}
		delete(e.pending, ev.id)
		e.now = ev.time
		e.steps++
		ev.action()
		return true
	}
	return false
}

func (e *boxedEngine) Drain(maxEvents int) int {
	var ran int
	for ran < maxEvents && e.Step() {
		ran++
	}
	return ran
}
