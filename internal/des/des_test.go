package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	mustSchedule := func(at float64, v int) {
		t.Helper()
		if _, err := e.ScheduleAt(at, func() { got = append(got, v) }); err != nil {
			t.Fatal(err)
		}
	}
	mustSchedule(3, 3)
	mustSchedule(1, 1)
	mustSchedule(2, 2)
	if _, err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10 (clock advances to horizon)", e.Now())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		v := i
		if _, err := e.ScheduleAt(5, func() { got = append(got, v) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain(100)
	if !sort.IntsAreSorted(got) {
		t.Errorf("simultaneous events not FIFO: %v", got)
	}
}

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay: want error")
	}
	if _, err := e.ScheduleAt(0, nil); err == nil {
		t.Error("nil action: want error")
	}
	if _, err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ScheduleAt(1, func() {}); err == nil {
		t.Error("schedule in the past: want error")
	}
	if _, err := e.RunUntil(1); err == nil {
		t.Error("run into the past: want error")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id, err := e.Schedule(1, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !e.Cancel(id) {
		t.Error("first cancel must succeed")
	}
	if e.Cancel(id) {
		t.Error("second cancel must fail")
	}
	e.Drain(10)
	if ran {
		t.Error("canceled event ran")
	}
	if e.Len() != 0 {
		t.Errorf("Len = %d after drain", e.Len())
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	var times []float64
	var schedule func()
	n := 0
	schedule = func() {
		times = append(times, e.Now())
		n++
		if n < 5 {
			if _, err := e.Schedule(2, schedule); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := e.ScheduleAt(1, schedule); err != nil {
		t.Fatal(err)
	}
	e.Drain(100)
	want := []float64{1, 3, 5, 7, 9}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
	if e.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", e.Steps())
	}
}

func TestRunUntilPartial(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		if _, err := e.ScheduleAt(float64(i), func() { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.RunUntil(5.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || count != 5 {
		t.Errorf("ran %d events (count %d), want 5", n, count)
	}
	if e.Len() != 5 {
		t.Errorf("pending = %d, want 5", e.Len())
	}
}

func TestRunSteps(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 0; i < 5; i++ {
		if _, err := e.Schedule(float64(i), func() { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if ran := e.RunSteps(3); ran != 3 || count != 3 {
		t.Errorf("RunSteps ran %d, count %d", ran, count)
	}
	if ran := e.RunSteps(10); ran != 2 || count != 5 {
		t.Errorf("second RunSteps ran %d, count %d", ran, count)
	}
}

func TestZeroValueEngineUsable(t *testing.T) {
	var e Engine
	ran := false
	if _, err := e.Schedule(1, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	e.Drain(1)
	if !ran {
		t.Error("zero-value engine did not run event")
	}
}

// TestMonotoneClockProperty: executing random schedules never moves the
// clock backwards, and events run in timestamp order.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var last float64
		ok := true
		for i := 0; i < 50; i++ {
			if _, err := e.ScheduleAt(rng.Float64()*100, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			}); err != nil {
				return false
			}
		}
		e.Drain(1000)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCancelInterleavedWithRun(t *testing.T) {
	e := NewEngine()
	var got []int
	var ids []EventID
	for i := 0; i < 6; i++ {
		v := i
		id, err := e.ScheduleAt(float64(i), func() { got = append(got, v) })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.Cancel(ids[1])
	e.Cancel(ids[4])
	if _, err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}
