package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// callbacks adapts the typed kind/payload API to per-event closures for
// tests: one registered kind whose payload indexes a slice of funcs.
type callbacks struct {
	e    *Engine
	kind Kind
	fns  []func()
}

func newCallbacks(t *testing.T, e *Engine) *callbacks {
	t.Helper()
	c := &callbacks{e: e}
	kind, err := e.RegisterKind(func(now float64, payload uint64) { c.fns[payload]() })
	if err != nil {
		t.Fatal(err)
	}
	c.kind = kind
	return c
}

func (c *callbacks) at(t float64, fn func()) (EventID, error) {
	c.fns = append(c.fns, fn)
	return c.e.ScheduleAt(t, c.kind, uint64(len(c.fns)-1))
}

func (c *callbacks) after(delay float64, fn func()) (EventID, error) {
	c.fns = append(c.fns, fn)
	return c.e.Schedule(delay, c.kind, uint64(len(c.fns)-1))
}

func TestScheduleAndOrder(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	var got []int
	mustSchedule := func(at float64, v int) {
		t.Helper()
		if _, err := cb.at(at, func() { got = append(got, v) }); err != nil {
			t.Fatal(err)
		}
	}
	mustSchedule(3, 3)
	mustSchedule(1, 1)
	mustSchedule(2, 2)
	if _, err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10 (clock advances to horizon)", e.Now())
	}
}

func TestFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	var got []int
	for i := 0; i < 10; i++ {
		v := i
		if _, err := cb.at(5, func() { got = append(got, v) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain(100)
	if !sort.IntsAreSorted(got) {
		t.Errorf("simultaneous events not FIFO: %v", got)
	}
}

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	if _, err := cb.after(-1, func() {}); err == nil {
		t.Error("negative delay: want error")
	}
	if _, err := e.ScheduleAt(0, cb.kind+1, 0); err == nil {
		t.Error("unregistered kind: want error")
	}
	if _, err := e.RegisterKind(nil); err == nil {
		t.Error("nil handler: want error")
	}
	if _, err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.at(1, func() {}); err == nil {
		t.Error("schedule in the past: want error")
	}
	if _, err := e.RunUntil(1); err == nil {
		t.Error("run into the past: want error")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	ran := false
	id, err := cb.after(1, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !e.Cancel(id) {
		t.Error("first cancel must succeed")
	}
	if e.Cancel(id) {
		t.Error("second cancel must fail")
	}
	e.Drain(10)
	if ran {
		t.Error("canceled event ran")
	}
	if e.Len() != 0 {
		t.Errorf("Len = %d after drain", e.Len())
	}
}

func TestCancelStaleIDAfterFire(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	id, err := cb.at(1, func() {})
	if err != nil {
		t.Fatal(err)
	}
	e.Drain(10)
	if e.Cancel(id) {
		t.Error("canceling a fired event must fail")
	}
	// The fired event's slot is recycled under a new generation; the
	// stale ID must not cancel the new occupant.
	ran := false
	id2, err := cb.at(2, func() { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatal("recycled slot reissued the same EventID")
	}
	if e.Cancel(id) {
		t.Error("stale ID canceled the slot's new occupant")
	}
	e.Drain(10)
	if !ran {
		t.Error("new occupant did not run")
	}
}

// TestCancelRescheduleFIFO: the cancel-then-reschedule pattern (timer
// reset) at the same timestamp re-enters FIFO order at its new seq, not
// its original one.
func TestCancelRescheduleFIFO(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	var got []int
	ids := make([]EventID, 4)
	for i := 0; i < 4; i++ {
		v := i
		id, err := cb.at(5, func() { got = append(got, v) })
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Reset event 0's timer to the same timestamp: it must now run last.
	if !e.Cancel(ids[0]) {
		t.Fatal("cancel failed")
	}
	if _, err := cb.at(5, func() { got = append(got, 0) }); err != nil {
		t.Fatal(err)
	}
	e.Drain(10)
	want := []int{1, 2, 3, 0}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestCancelChurnBounded: a timer-reset workload (every tick cancels
// and reschedules every timer) must not grow the queue or the arena
// without bound — the lazy-cancel backlog is compacted.
func TestCancelChurnBounded(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	const timers = 8
	ids := make([]EventID, timers)
	for i := 0; i < timers; i++ {
		id, err := cb.at(1e9, func() {})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for round := 0; round < 10_000; round++ {
		for i := 0; i < timers; i++ {
			if !e.Cancel(ids[i]) {
				t.Fatal("cancel failed")
			}
			id, err := cb.at(1e9, func() {})
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
	}
	if e.Len() != timers {
		t.Fatalf("Len = %d, want %d", e.Len(), timers)
	}
	// 80k cancels went through; the heap must hold at most the live
	// timers plus a backlog below the compaction threshold, and the
	// arena must have recycled slots instead of growing per schedule.
	if len(e.heap) > timers+2*compactMin {
		t.Errorf("heap grew to %d entries under cancel churn", len(e.heap))
	}
	if len(e.arena) > timers+2*compactMin {
		t.Errorf("arena grew to %d slots under cancel churn", len(e.arena))
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	var times []float64
	var schedule func()
	n := 0
	schedule = func() {
		times = append(times, e.Now())
		n++
		if n < 5 {
			if _, err := cb.after(2, schedule); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := cb.at(1, schedule); err != nil {
		t.Fatal(err)
	}
	e.Drain(100)
	want := []float64{1, 3, 5, 7, 9}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
	if e.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", e.Steps())
	}
}

func TestRunUntilPartial(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	var count int
	for i := 1; i <= 10; i++ {
		if _, err := cb.at(float64(i), func() { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.RunUntil(5.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || count != 5 {
		t.Errorf("ran %d events (count %d), want 5", n, count)
	}
	if e.Len() != 5 {
		t.Errorf("pending = %d, want 5", e.Len())
	}
}

func TestRunSteps(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	var count int
	for i := 0; i < 5; i++ {
		if _, err := cb.after(float64(i), func() { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if ran := e.RunSteps(3); ran != 3 || count != 3 {
		t.Errorf("RunSteps ran %d, count %d", ran, count)
	}
	if ran := e.RunSteps(10); ran != 2 || count != 5 {
		t.Errorf("second RunSteps ran %d, count %d", ran, count)
	}
}

func TestZeroValueEngineUsable(t *testing.T) {
	var e Engine
	ran := false
	kind, err := e.RegisterKind(func(now float64, payload uint64) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(1, kind, 0); err != nil {
		t.Fatal(err)
	}
	e.Drain(1)
	if !ran {
		t.Error("zero-value engine did not run event")
	}
}

// TestMonotoneClockProperty: executing random schedules never moves the
// clock backwards, and events run in timestamp order.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var last float64
		ok := true
		kind, err := e.RegisterKind(func(now float64, payload uint64) {
			if now < last {
				ok = false
			}
			last = now
		})
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			if _, err := e.ScheduleAt(rng.Float64()*100, kind, 0); err != nil {
				return false
			}
		}
		e.Drain(1000)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCancelInterleavedWithRun(t *testing.T) {
	e := NewEngine()
	cb := newCallbacks(t, e)
	var got []int
	var ids []EventID
	for i := 0; i < 6; i++ {
		v := i
		id, err := cb.at(float64(i), func() { got = append(got, v) })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	e.Cancel(ids[1])
	e.Cancel(ids[4])
	if _, err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

// TestMatchesBoxedReference: the arena scheduler's execution order is
// bit-identical to the reference container/heap scheduler on random
// schedules with interleaved cancels.
func TestMatchesBoxedReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		run := func(rng *rand.Rand, schedule func(t float64, v int) (EventID, bool), cancel func(EventID) bool, drain func()) []int {
			var ids []EventID
			for i := 0; i < 200; i++ {
				t0 := float64(rng.Intn(40)) // coarse grid forces timestamp ties
				if id, ok := schedule(t0, i); ok {
					ids = append(ids, id)
				}
				if len(ids) > 0 && rng.Intn(3) == 0 {
					cancel(ids[rng.Intn(len(ids))])
				}
			}
			drain()
			return nil
		}
		var gotA, gotB []int
		e := NewEngine()
		cb := newCallbacks(t, e)
		run(rngA,
			func(t0 float64, v int) (EventID, bool) {
				id, err := cb.at(t0, func() { gotA = append(gotA, v) })
				return id, err == nil
			},
			e.Cancel,
			func() { e.Drain(1000) },
		)
		b := newBoxedEngine()
		run(rngB,
			func(t0 float64, v int) (EventID, bool) {
				id, err := b.ScheduleAt(t0, func() { gotB = append(gotB, v) })
				return EventID(id), err == nil
			},
			func(id EventID) bool { return b.Cancel(boxedEventID(id)) },
			func() { b.Drain(1000) },
		)
		if len(gotA) != len(gotB) {
			t.Fatalf("seed %d: arena ran %d events, boxed ran %d", seed, len(gotA), len(gotB))
		}
		for i := range gotA {
			if gotA[i] != gotB[i] {
				t.Fatalf("seed %d: order diverges at %d: arena %v, boxed %v", seed, i, gotA[i], gotB[i])
			}
		}
	}
}
