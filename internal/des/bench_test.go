package des

import (
	"fmt"
	"testing"
)

// xorshift is a tiny deterministic delay source that costs no
// allocations, so the benchmarks measure the scheduler, not the RNG.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func (x *xorshift) delay() float64 { return float64(x.next()%1000)/1000 + 0.001 }

// BenchmarkDESThroughput measures steady-state scheduler throughput on
// the workload the overlay simulator generates: a population of pending
// timers where every fired event schedules a successor (timer churn),
// and a reset variant where every fired event additionally cancels and
// reschedules a random victim (identifier-expiry resets). The arena
// cases use the typed kind/payload API; the boxed cases drive the
// pre-arena container/heap reference scheduler with its per-event
// closures. events/sec is wall-clock dependent; B/op and allocs/op are
// machine-independent and gated in CI against
// bench/des_throughput_baseline.txt.
func BenchmarkDESThroughput(b *testing.B) {
	for _, timers := range []int{1 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("pending=%d", timers), func(b *testing.B) {
			benchThroughput(b, timers)
		})
	}
}

func benchThroughput(b *testing.B, timers int) {
	b.Run("arena", func(b *testing.B) {
		e := NewEngine()
		rng := xorshift(1)
		var kind Kind
		kind, _ = e.RegisterKind(func(now float64, payload uint64) {
			_, _ = e.Schedule(rng.delay(), kind, payload)
		})
		for i := 0; i < timers; i++ {
			if _, err := e.Schedule(rng.delay(), kind, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})

	b.Run("boxed", func(b *testing.B) {
		e := newBoxedEngine()
		rng := xorshift(1)
		var fire func(i int)
		fire = func(i int) {
			_, _ = e.Schedule(rng.delay(), func() { fire(i) })
		}
		for i := 0; i < timers; i++ {
			fire(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})

	b.Run("arena_reset", func(b *testing.B) {
		e := NewEngine()
		rng := xorshift(1)
		ids := make([]EventID, timers)
		var kind Kind
		kind, _ = e.RegisterKind(func(now float64, payload uint64) {
			victim := int(rng.next() % uint64(timers))
			if e.Cancel(ids[victim]) {
				ids[victim], _ = e.Schedule(rng.delay(), kind, uint64(victim))
			}
			ids[payload], _ = e.Schedule(rng.delay(), kind, payload)
		})
		for i := 0; i < timers; i++ {
			ids[i], _ = e.Schedule(rng.delay(), kind, uint64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})

	b.Run("boxed_reset", func(b *testing.B) {
		e := newBoxedEngine()
		rng := xorshift(1)
		ids := make([]boxedEventID, timers)
		var fire func(i int)
		fire = func(i int) {
			victim := int(rng.next() % uint64(timers))
			if e.Cancel(ids[victim]) {
				ids[victim], _ = e.Schedule(rng.delay(), func() { fire(victim) })
			}
			ids[i], _ = e.Schedule(rng.delay(), func() { fire(i) })
		}
		for i := 0; i < timers; i++ {
			ids[i], _ = e.Schedule(rng.delay(), func() { fire(i) })
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
}
