// Package des is a deterministic discrete-event simulation engine: a
// monotonic simulated clock and a priority queue of timestamped events
// with stable FIFO ordering among simultaneous events. It is the
// substrate on which the full overlay-system simulator
// (internal/overlaynet) runs churn, identifier expiry and protocol
// operations.
//
// The scheduler is built for throughput: events are value-typed records
// in a slot arena recycled through a free list, ordered by an
// index-addressed 4-ary min-heap of slot numbers, so the hot path
// (schedule, cancel, pop, dispatch) allocates nothing and boxes
// nothing. Instead of per-event closures, behavior is a Kind registered
// once with a Handler; each event carries a uint64 payload (typically a
// slot or index into the caller's own tables) handed to the handler at
// dispatch. Cancellation is O(1): an event's ID embeds the slot and a
// generation counter, canceling marks the record and the heap discards
// it lazily; when canceled records outnumber live ones the queue is
// compacted in one pass, so memory stays bounded under timer-reset
// workloads. Execution order is (time, seq) — strictly increasing seq
// breaks timestamp ties FIFO — and is bit-identical to the reference
// binary-heap scheduler, because the comparator is a strict total
// order.
package des

import "fmt"

// EventID identifies a scheduled event for cancellation. It packs the
// event's arena slot and the slot's generation at schedule time; a
// fired, canceled or recycled event's ID goes stale automatically. The
// zero EventID is never issued.
type EventID uint64

// Kind names a class of events sharing one handler. Kinds are small
// integers indexing the engine's handler table; register them once at
// setup with RegisterKind.
type Kind uint32

// Handler executes one event of its Kind. now is the event's timestamp
// (the engine clock has already advanced to it); payload is the word
// given at schedule time, typically an index into the caller's state.
type Handler func(now float64, payload uint64)

// event is one pending action: a value-typed arena record, never
// individually heap-allocated. The ordering keys (time, seq) live in
// the heap entry, not here, so sift comparisons stay in the heap's
// contiguous memory.
type event struct {
	payload  uint64
	gen      uint32 // incremented when the slot is recycled
	kind     Kind
	canceled bool
}

// entry is one heap node: the event's ordering keys plus its arena
// slot. Keeping the keys inline makes a comparison two loads from the
// same cache lines the sift is already touching.
type entry struct {
	time float64
	seq  uint64 // FIFO tiebreak for equal timestamps
	slot int32
}

// before orders entries by (time, seq) — a strict total order, so heap
// shape never affects pop order.
func (a entry) before(b entry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// compactMin is the minimum canceled backlog before a compaction pass;
// below it, lazy pop-side discarding is cheaper than rebuilding.
const compactMin = 32

// Engine is a single-threaded discrete-event scheduler. The zero value
// is ready to use.
type Engine struct {
	handlers []Handler
	arena    []event
	free     []int32 // recycled arena slots
	heap     []entry // 4-ary min-heap ordered by (time, seq)
	now      float64
	nextSeq  uint64
	live     int // pending, non-canceled events
	canceled int // canceled events still in the heap
	steps    int64
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// RegisterKind adds a handler to the engine's dispatch table and
// returns its Kind. Register kinds during setup, before scheduling
// events of that kind.
func (e *Engine) RegisterKind(h Handler) (Kind, error) {
	if h == nil {
		return 0, fmt.Errorf("des: nil handler")
	}
	e.handlers = append(e.handlers, h)
	return Kind(len(e.handlers) - 1), nil
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Len returns the number of pending (non-canceled) events.
func (e *Engine) Len() int { return e.live }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// Schedule runs an event of the given kind after delay units of
// simulated time.
func (e *Engine) Schedule(delay float64, kind Kind, payload uint64) (EventID, error) {
	if delay < 0 {
		return 0, fmt.Errorf("des: negative delay %v", delay)
	}
	return e.ScheduleAt(e.now+delay, kind, payload)
}

// ScheduleAt runs an event of the given kind at absolute simulated time
// t ≥ Now().
func (e *Engine) ScheduleAt(t float64, kind Kind, payload uint64) (EventID, error) {
	if t < e.now {
		return 0, fmt.Errorf("des: schedule at %v before now %v", t, e.now)
	}
	if int(kind) >= len(e.handlers) {
		return 0, fmt.Errorf("des: unregistered event kind %d", kind)
	}
	var slot int32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		slot = int32(len(e.arena))
		e.arena = append(e.arena, event{gen: 1})
	}
	e.nextSeq++
	ev := &e.arena[slot]
	ev.payload = payload
	ev.kind = kind
	ev.canceled = false
	e.heap = append(e.heap, entry{time: t, seq: e.nextSeq, slot: slot})
	e.siftUp(len(e.heap) - 1)
	e.live++
	return EventID(uint64(ev.gen)<<32 | uint64(uint32(slot))), nil
}

// Cancel removes a pending event; it reports whether the event was
// still pending. Cancellation is O(1): the record is marked and the
// heap discards it lazily, compacting once canceled records outnumber
// live ones.
func (e *Engine) Cancel(id EventID) bool {
	slot := int64(uint32(id))
	if slot >= int64(len(e.arena)) {
		return false
	}
	ev := &e.arena[slot]
	if ev.gen != uint32(id>>32) || ev.canceled {
		return false
	}
	ev.canceled = true
	e.live--
	e.canceled++
	if e.canceled >= compactMin && e.canceled > len(e.heap)/2 {
		e.compact()
	}
	return true
}

// Step executes the next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		top := e.popMin()
		ev := &e.arena[top.slot]
		if ev.canceled {
			e.canceled--
			e.release(top.slot)
			continue
		}
		e.now = top.time
		kind, payload := ev.kind, ev.payload
		e.live--
		e.steps++
		// Free before dispatch: the handler may schedule new events
		// (and immediately reuse this slot under a new generation).
		e.release(top.slot)
		e.handlers[kind](e.now, payload)
		return true
	}
	return false
}

// RunUntil executes events with timestamps ≤ t and advances the clock
// to t. It returns the number of events executed.
func (e *Engine) RunUntil(t float64) (int, error) {
	if t < e.now {
		return 0, fmt.Errorf("des: run until %v before now %v", t, e.now)
	}
	var n int
	for len(e.heap) > 0 {
		// Peek without popping: canceled heads are discarded lazily.
		head := e.heap[0]
		if e.arena[head.slot].canceled {
			e.canceled--
			e.release(e.popMin().slot)
			continue
		}
		if head.time > t {
			break
		}
		if !e.Step() {
			break
		}
		n++
	}
	e.now = t
	return n, nil
}

// RunSteps executes at most n events and reports how many ran.
func (e *Engine) RunSteps(n int) int {
	var ran int
	for ran < n && e.Step() {
		ran++
	}
	return ran
}

// Drain executes every pending event (bounded by maxEvents to guard
// against self-perpetuating schedules) and reports how many ran.
func (e *Engine) Drain(maxEvents int) int {
	var ran int
	for ran < maxEvents && e.Step() {
		ran++
	}
	return ran
}

// release recycles an arena slot: the generation bump invalidates any
// outstanding EventID referring to the old incarnation.
func (e *Engine) release(slot int32) {
	ev := &e.arena[slot]
	ev.gen++
	if ev.gen == 0 { // generation wrap: keep IDs non-zero
		ev.gen = 1
	}
	e.free = append(e.free, slot)
}

// siftUp restores the 4-ary heap invariant from leaf i upward.
func (e *Engine) siftUp(i int) {
	h := e.heap
	s := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !s.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = s
}

// siftDown restores the 4-ary heap invariant from node i downward.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	s := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		mk := h[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(mk) {
				min, mk = c, h[c]
			}
		}
		if !mk.before(s) {
			break
		}
		h[i] = mk
		i = min
	}
	h[i] = s
}

// popMin removes and returns the entry with the smallest (time, seq).
func (e *Engine) popMin() entry {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return top
}

// compact removes every canceled record from the heap in one pass and
// re-heapifies. Because the comparator is a strict total order, the
// rebuilt heap pops the surviving events in exactly the order the lazy
// path would have: compaction is invisible to the simulation.
func (e *Engine) compact() {
	keep := e.heap[:0]
	for _, en := range e.heap {
		if e.arena[en.slot].canceled {
			e.release(en.slot)
		} else {
			keep = append(keep, en)
		}
	}
	e.heap = keep
	e.canceled = 0
	for i := (len(keep) - 2) / 4; i >= 0 && len(keep) > 1; i-- {
		e.siftDown(i)
	}
}
