// Package des is a deterministic discrete-event simulation engine: a
// monotonic simulated clock and a priority queue of timestamped events
// with stable FIFO ordering among simultaneous events. It is the
// substrate on which the full overlay-system simulator
// (internal/overlaynet) runs churn, identifier expiry and protocol
// operations.
package des

import (
	"container/heap"
	"fmt"
)

// EventID identifies a scheduled event for cancellation.
type EventID int64

// event is one pending action.
type event struct {
	time     float64
	seq      int64 // FIFO tiebreak for equal timestamps
	id       EventID
	action   func()
	canceled bool
	index    int // heap bookkeeping
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	pq      eventHeap
	now     float64
	nextSeq int64
	nextID  EventID
	pending map[EventID]*event
	steps   int64
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{pending: make(map[EventID]*event)}
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Len returns the number of pending (non-canceled) events.
func (e *Engine) Len() int { return len(e.pending) }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// Schedule runs action after delay units of simulated time.
func (e *Engine) Schedule(delay float64, action func()) (EventID, error) {
	if delay < 0 {
		return 0, fmt.Errorf("des: negative delay %v", delay)
	}
	return e.ScheduleAt(e.now+delay, action)
}

// ScheduleAt runs action at absolute simulated time t ≥ Now().
func (e *Engine) ScheduleAt(t float64, action func()) (EventID, error) {
	if t < e.now {
		return 0, fmt.Errorf("des: schedule at %v before now %v", t, e.now)
	}
	if action == nil {
		return 0, fmt.Errorf("des: nil action")
	}
	if e.pending == nil {
		e.pending = make(map[EventID]*event)
	}
	e.nextID++
	e.nextSeq++
	ev := &event{time: t, seq: e.nextSeq, id: e.nextID, action: action}
	heap.Push(&e.pq, ev)
	e.pending[ev.id] = ev
	return ev.id, nil
}

// Cancel removes a pending event; it reports whether the event was still
// pending.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.pending[id]
	if !ok {
		return false
	}
	ev.canceled = true
	delete(e.pending, id)
	return true
}

// Step executes the next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*event)
		if ev.canceled {
			continue
		}
		delete(e.pending, ev.id)
		e.now = ev.time
		e.steps++
		ev.action()
		return true
	}
	return false
}

// RunUntil executes events with timestamps ≤ t and advances the clock to
// t. It returns the number of events executed.
func (e *Engine) RunUntil(t float64) (int, error) {
	if t < e.now {
		return 0, fmt.Errorf("des: run until %v before now %v", t, e.now)
	}
	var n int
	for len(e.pq) > 0 {
		// Peek without popping: canceled heads are discarded lazily.
		head := e.pq[0]
		if head.canceled {
			heap.Pop(&e.pq)
			continue
		}
		if head.time > t {
			break
		}
		if !e.Step() {
			break
		}
		n++
	}
	e.now = t
	return n, nil
}

// RunSteps executes at most n events and reports how many ran.
func (e *Engine) RunSteps(n int) int {
	var ran int
	for ran < n && e.Step() {
		ran++
	}
	return ran
}

// Drain executes every pending event (bounded by maxEvents to guard
// against self-perpetuating schedules) and reports how many ran.
func (e *Engine) Drain(maxEvents int) int {
	var ran int
	for ran < maxEvents && e.Step() {
		ran++
	}
	return ran
}
