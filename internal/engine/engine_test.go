package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNewWidth(t *testing.T) {
	if got := New(4).Workers(); got != 4 {
		t.Errorf("Workers() = %d, want 4", got)
	}
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Ensure(nil).Workers(); got != 1 {
		t.Errorf("Ensure(nil).Workers() = %d, want 1", got)
	}
	p := New(3)
	if Ensure(p) != p {
		t.Error("Ensure must return the pool it was given")
	}
}

func TestRunCoversEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		const n = 257
		counts := make([]atomic.Int32, n)
		err := New(workers).Run(context.Background(), n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunEmptyAndNil(t *testing.T) {
	p := New(2)
	if err := p.Run(context.Background(), 0, func(int) error { return nil }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := p.Run(context.Background(), 3, nil); err == nil {
		t.Error("nil fn: want error")
	}
	// A nil context must be tolerated (treated as Background).
	if err := p.Run(nil, 3, func(int) error { return nil }); err != nil { //nolint:staticcheck
		t.Errorf("nil ctx: %v", err)
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	// Run many times across many workers: the reported index must always
	// be the smallest failing one, regardless of scheduling.
	for trial := 0; trial < 20; trial++ {
		err := New(8).Run(context.Background(), 100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, …
				return boom
			}
			return nil
		})
		if err == nil {
			t.Fatal("want error")
		}
		if !errors.Is(err, boom) {
			t.Fatalf("error chain lost: %v", err)
		}
		if got := err.Error(); got != "engine: task 3: boom" {
			t.Fatalf("err = %q, want task 3", got)
		}
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := New(4).Run(ctx, 1000, func(int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran under a pre-cancelled context", ran.Load())
	}
}

func TestRunNestedDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var inner atomic.Int32
	err := p.Run(context.Background(), 4, func(int) error {
		return p.Run(context.Background(), 4, func(int) error {
			inner.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if inner.Load() != 16 {
		t.Errorf("inner tasks = %d, want 16", inner.Load())
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, b := Stream(42, 7), Stream(42, 7)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("same (seed, task) diverged at draw %d: %d vs %d", i, x, y)
		}
	}
}

func TestStreamsDistinct(t *testing.T) {
	// Distinct task indices (and distinct seeds) must give unrelated
	// streams; compare a prefix of draws.
	seen := map[uint64]string{}
	for task := uint64(0); task < 64; task++ {
		v := Stream(1, task).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("first draw collision between tasks %s and %d", prev, task)
		}
		seen[v] = "task"
	}
	if Stream(1, 0).Uint64() == Stream(2, 0).Uint64() {
		t.Error("different seeds produced the same first draw (suspicious)")
	}
}

func TestRunDeterministicAcrossWidths(t *testing.T) {
	// The canonical engine usage: task i writes slot i using Stream(seed, i).
	const n = 100
	sample := func(workers int) []uint64 {
		out := make([]uint64, n)
		if err := New(workers).Run(context.Background(), n, func(i int) error {
			out[i] = Stream(99, uint64(i)).Uint64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	one, eight := sample(1), sample(8)
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("slot %d differs between 1 and 8 workers", i)
		}
	}
}
