// Package engine provides the worker-pool execution engine under the
// repository's evaluation pipeline: Monte-Carlo trajectory batches,
// parameter-grid sweeps and whole experiment scenarios all fan their
// independent units of work across one Pool.
//
// Determinism is the engine's contract. Randomized tasks never share a
// random-number generator: each task derives its own math/rand/v2 PCG
// stream from a root seed and the task's global index (Stream). Because a
// stream depends only on (seed, index) — never on the number of workers or
// on scheduling order — a batch executed on eight workers is bit-identical
// to the same batch executed on one, and results are reproducible across
// runs and machines.
package engine

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-width worker pool, safe for concurrent use. Nested Run
// calls (a task that itself fans out sub-tasks on the same Pool) share
// the pool's width rather than multiplying it: each Run sizes its worker
// set to the slack left by tasks already in flight, and always spawns at
// least one worker, which keeps nesting deadlock-free while bounding the
// total concurrency near the configured width.
type Pool struct {
	workers int
	// active counts in-flight worker goroutines across all Run calls;
	// it is what lets nested calls see how much width remains.
	active atomic.Int64
}

// New creates a pool of the given width. workers < 1 selects
// runtime.GOMAXPROCS(0), i.e. one worker per available CPU.
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Ensure returns p, or a serial (single-worker) pool when p is nil, so
// callers can accept an optional pool without nil checks.
func Ensure(p *Pool) *Pool {
	if p == nil {
		return New(1)
	}
	return p
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Run executes tasks 0..n-1 by calling fn(i) from at most Workers()
// goroutines. It returns after every started task has finished.
//
// Task order is unspecified, so fn must only write to per-index state
// (e.g. slot i of a pre-allocated slice); determinism is then guaranteed
// regardless of the pool width. Errors do not cancel the remaining tasks
// (tasks are expected to be pure compute); after all tasks ran, the error
// of the lowest-indexed failing task is returned, which keeps the
// reported error independent of scheduling. A cancelled context stops
// workers from claiming further tasks and is reported as ctx.Err().
func (p *Pool) Run(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if fn == nil {
		return fmt.Errorf("engine: Run with nil task function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Claim the pool's remaining width (but never less than one worker):
	// a nested Run inside a saturated pool degrades to serial instead of
	// stacking another full worker set on top of the outer one. The CAS
	// loop makes the read-and-claim atomic so concurrent Run calls cannot
	// both see the same slack and oversubscribe past the width.
	var workers int
	for {
		cur := p.active.Load()
		claim := int64(p.workers) - cur
		if claim < 1 {
			claim = 1
		}
		if claim > int64(n) {
			claim = int64(n)
		}
		if p.active.CompareAndSwap(cur, cur+claim) {
			workers = int(claim)
			break
		}
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.active.Add(-1)
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return fmt.Errorf("engine: task %d: %w", firstIdx, firstErr)
	}
	return ctx.Err()
}

// splitmix64 is Vigna's SplitMix64 finalizer: a bijective 64-bit mixer
// used to decorrelate the (seed, task) pairs fed to PCG, so that nearby
// task indices yield unrelated streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream returns the deterministic random stream of task `task` under the
// root seed `seed`: a math/rand/v2 PCG whose two 64-bit seeds are mixed
// from (seed, task). The mapping is pure — the same (seed, task) always
// produces the same stream — and distinct tasks get distinct streams, so
// parallel consumers stay reproducible independently of worker count.
func Stream(seed, task uint64) *rand.Rand {
	hi := splitmix64(seed ^ splitmix64(task))
	lo := splitmix64(task + splitmix64(seed+0x632be59bd9b4e019))
	return rand.New(rand.NewPCG(hi, lo))
}
