package attackd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"targetedattacks/internal/core"
	"targetedattacks/internal/matrix"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON[T any](t *testing.T, url string, body any) (int, T) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func paperCell() CellRequest {
	return CellRequest{C: 7, Delta: 7, K: 1, Mu: 0.2, D: 0.9, Nu: 0.1}
}

func TestAnalyzeMatchesCore(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := paperCell()
	code, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", req)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	p := core.Params{C: req.C, Delta: req.Delta, K: req.K, Mu: req.Mu, D: req.D, Nu: req.Nu}
	m, err := core.NewWithSolver(p, matrix.SolverConfig{Kind: "bicgstab"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.AnalyzeNamed(core.DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Analysis.ExpectedSafeTime != want.ExpectedSafeTime {
		t.Errorf("E(T_S) = %v over HTTP, %v direct", got.Analysis.ExpectedSafeTime, want.ExpectedSafeTime)
	}
	if got.Analysis.ExpectedPollutedTime != want.ExpectedPollutedTime {
		t.Errorf("E(T_P) = %v over HTTP, %v direct", got.Analysis.ExpectedPollutedTime, want.ExpectedPollutedTime)
	}
	if got.States != 288 || got.Solver != "bicgstab" || got.Cached {
		t.Errorf("metadata = %+v", got)
	}
	// Second identical request must come from the cache.
	code, again := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", req)
	if code != http.StatusOK || !again.Cached {
		t.Errorf("repeat request: status=%d cached=%v, want 200/true", code, again.Cached)
	}
	if again.Analysis.ExpectedSafeTime != got.Analysis.ExpectedSafeTime {
		t.Error("cached analysis differs")
	}
}

func TestAnalyzeRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	for name, body := range map[string]any{
		"invalid params":    CellRequest{C: 7, Delta: 1, K: 1, Mu: 0.2, D: 0.9, Nu: 0.1},
		"bad distribution":  map[string]any{"c": 7, "delta": 7, "k": 1, "nu": 0.1, "distribution": "zeta"},
		"huge state space":  CellRequest{C: 500, Delta: 500, K: 1, Nu: 0.1},
		"overflow geometry": CellRequest{C: 1, Delta: 5_000_000_000, K: 1, Nu: 0.1},
		"huge sojourns":     CellRequest{C: 7, Delta: 7, K: 1, Mu: 0.2, D: 0.9, Nu: 0.1, Sojourns: 2_000_000_000},
	} {
		code, resp := postJSON[errorResponse](t, ts.URL+"/v1/analyze", body)
		if code != http.StatusBadRequest || resp.Error == "" {
			t.Errorf("%s: status=%d error=%q, want 400 with message", name, code, resp.Error)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SweepRequest{
		C: "7", Delta: "7", K: "1",
		Mu: "0.1,0.3", D: "0.5:0.9:0.2", Nu: "0.05,0.5",
	}
	code, got := postJSON[SweepResponse](t, ts.URL+"/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(got.Cells) != 2*3*2 {
		t.Fatalf("cells = %d, want 12", len(got.Cells))
	}
	// protocol_1: the ν axis dedupes, so half the cells are shared.
	if got.Evaluated != 6 {
		t.Errorf("evaluated = %d, want 6", got.Evaluated)
	}
	// One cell must agree with the single-cell endpoint.
	cell := got.Cells[0]
	code, single := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", CellRequest{
		C: cell.Params.C, Delta: cell.Params.Delta, K: cell.Params.K,
		Mu: cell.Params.Mu, D: cell.Params.D, Nu: cell.Params.Nu,
	})
	if code != http.StatusOK {
		t.Fatalf("analyze status = %d", code)
	}
	if math.Abs(cell.Analysis.ExpectedSafeTime-single.Analysis.ExpectedSafeTime) > 1e-12 {
		t.Errorf("sweep cell E(T_S)=%v, analyze=%v", cell.Analysis.ExpectedSafeTime, single.Analysis.ExpectedSafeTime)
	}
	// Repeat: whole-grid cache hit.
	code, again := postJSON[SweepResponse](t, ts.URL+"/v1/sweep", req)
	if code != http.StatusOK || !again.Cached {
		t.Errorf("repeat sweep: status=%d cached=%v", code, again.Cached)
	}
	// Bad axis and oversized grids are rejected.
	for name, bad := range map[string]SweepRequest{
		"bad axis":       {C: "7", Delta: "7", K: "x", Mu: "0.1", D: "0.5", Nu: "0.1"},
		"no axis":        {C: "7", Delta: "7", Mu: "0.1", D: "0.5", Nu: "0.1"},
		"too large":      {C: "7", Delta: "7", K: "1:7", Mu: "0:1:0.01", D: "0:0.99:0.01", Nu: "0.1"},
		"bomb range":     {C: "1:4000000000", Delta: "7", K: "1", Mu: "0.1", D: "0.5", Nu: "0.1"},
		"nan axis":       {C: "7", Delta: "7", K: "1", Mu: "nan", D: "0.5", Nu: "0.1"},
		"denormal step":  {C: "7", Delta: "7", K: "1", Mu: "0:1:1e-300", D: "0.5", Nu: "0.1"},
		"huge geometry":  {C: "1", Delta: "5000000000", K: "1", Mu: "0.1", D: "0.5", Nu: "0.1"},
		"huge sojourns2": {C: "7", Delta: "7", K: "1", Mu: "0.1", D: "0.5", Nu: "0.1", Sojourns: 1 << 30},
	} {
		code, resp := postJSON[errorResponse](t, ts.URL+"/v1/sweep", bad)
		if code != http.StatusBadRequest || resp.Error == "" {
			t.Errorf("%s: status=%d error=%q, want 400 with message", name, code, resp.Error)
		}
	}
}

// TestPerRequestSolverOverride: a request may pick its own backend; the
// override is part of the cache identity, unknown kinds are client
// errors, and sweep responses surface iteration counts.
func TestPerRequestSolverOverride(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := paperCell()
	req.Solver = "ilu"
	code, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", req)
	if code != http.StatusOK || got.Solver != "ilu" {
		t.Fatalf("status=%d solver=%q, want 200/ilu", code, got.Solver)
	}
	// The dense backend must agree (the override actually routed).
	dreq := paperCell()
	dreq.Solver = "dense"
	code, dense := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", dreq)
	if code != http.StatusOK || dense.Solver != "dense" || dense.Cached {
		t.Fatalf("dense override: status=%d solver=%q cached=%v", code, dense.Solver, dense.Cached)
	}
	if math.Abs(got.Analysis.ExpectedSafeTime-dense.Analysis.ExpectedSafeTime) > 1e-9 {
		t.Errorf("ilu E(T_S)=%v, dense=%v", got.Analysis.ExpectedSafeTime, dense.Analysis.ExpectedSafeTime)
	}
	// Overridden and default requests must not share cache entries.
	code, def := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", paperCell())
	if code != http.StatusOK || def.Cached {
		t.Errorf("default solver after overrides: status=%d cached=%v, want a fresh evaluation", code, def.Cached)
	}
	// Unknown kinds are a 400 naming the valid ones.
	breq := paperCell()
	breq.Solver = "cholesky"
	code, eresp := postJSON[errorResponse](t, ts.URL+"/v1/analyze", breq)
	if code != http.StatusBadRequest || !strings.Contains(eresp.Error, "ilu") {
		t.Errorf("bogus solver: status=%d error=%q, want 400 listing backends", code, eresp.Error)
	}
	sreq := SweepRequest{C: "7", Delta: "7", K: "1", Mu: "0.2", D: "0.5,0.9", Nu: "0.1", Solver: "ilu"}
	code, sgot := postJSON[SweepResponse](t, ts.URL+"/v1/sweep", sreq)
	if code != http.StatusOK || sgot.Solver != "ilu" {
		t.Fatalf("sweep override: status=%d solver=%q", code, sgot.Solver)
	}
	if sgot.Iterations <= 0 {
		t.Errorf("sweep iterations = %d, want > 0 on an iterative backend", sgot.Iterations)
	}
	sreq.Solver = "cholesky"
	code, _ = postJSON[errorResponse](t, ts.URL+"/v1/sweep", sreq)
	if code != http.StatusBadRequest {
		t.Errorf("bogus sweep solver: status=%d, want 400", code)
	}
}

// TestSolverMetricsAndFallbacks: /metrics must expose cumulative solver
// iterations, and an auto backend hobbled by a one-iteration cap must
// surface its sticky dense fallback under reason="iteration_cap".
func TestSolverMetricsAndFallbacks(t *testing.T) {
	ts := newTestServer(t, Config{Solver: matrix.SolverConfig{Kind: "auto", MaxIter: 1}})
	code, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", paperCell())
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if got.Solver != "auto" {
		t.Errorf("solver = %q, want auto", got.Solver)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	var fallbacks int64
	for _, line := range strings.Split(text, "\n") {
		fmt.Sscanf(line, `attackd_solver_fallbacks_total{reason="iteration_cap"} %d`, &fallbacks)
	}
	if fallbacks == 0 {
		t.Errorf("iteration_cap fallbacks = 0, want > 0 in:\n%s", text)
	}
	if !strings.Contains(text, "attackd_solver_iterations_total") {
		t.Errorf("metrics missing attackd_solver_iterations_total:\n%s", text)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
	postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", paperCell())
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`attackd_requests_total{endpoint="/v1/analyze",code="200"} 1`,
		"attackd_cache_misses_total 1",
		"attackd_evaluations_total 1",
		"attackd_inflight_evaluations 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestConcurrentAnalyzeSingleflight is the attackd concurrency
// contract under -race: hammer /v1/analyze with identical and distinct
// parameters from many goroutines and assert that singleflight +
// cache admit exactly one evaluation per distinct parameter set, with
// every shared request accounted as a cache hit or a piggyback.
func TestConcurrentAnalyzeSingleflight(t *testing.T) {
	ts := newTestServer(t, Config{})
	distinct := []CellRequest{
		{C: 7, Delta: 7, K: 1, Mu: 0.1, D: 0.5, Nu: 0.1},
		{C: 7, Delta: 7, K: 2, Mu: 0.2, D: 0.8, Nu: 0.1},
		{C: 7, Delta: 7, K: 7, Mu: 0.3, D: 0.9, Nu: 0.2},
		{C: 9, Delta: 9, K: 1, Mu: 0.2, D: 0.8, Nu: 0.1},
	}
	const perKey = 16
	var wg sync.WaitGroup
	errs := make(chan error, len(distinct)*perKey)
	for ki := range distinct {
		for j := 0; j < perKey; j++ {
			wg.Add(1)
			go func(ki int) {
				defer wg.Done()
				raw, _ := json.Marshal(distinct[ki])
				resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				var out AnalyzeResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if out.States == 0 {
					errs <- fmt.Errorf("empty response body")
					return
				}
				errs <- nil
			}(ki)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The invariant: however requests interleaved, each distinct
	// parameter set was evaluated exactly once — the rest were cache
	// hits or singleflight followers.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if want := fmt.Sprintf("attackd_evaluations_total %d", len(distinct)); !strings.Contains(text, want) {
		t.Errorf("metrics missing %q (every duplicate request must dedup):\n%s", want, text)
	}
	var hits, sharedCount, misses int64
	for _, line := range strings.Split(text, "\n") {
		fmt.Sscanf(line, "attackd_cache_hits_total %d", &hits)
		fmt.Sscanf(line, "attackd_singleflight_shared_total %d", &sharedCount)
		fmt.Sscanf(line, "attackd_cache_misses_total %d", &misses)
	}
	total := int64(len(distinct) * perKey)
	if hits+sharedCount != total-int64(len(distinct)) {
		t.Errorf("hits (%d) + shared (%d) = %d, want %d", hits, sharedCount, hits+sharedCount, total-int64(len(distinct)))
	}
	// Only flight leaders — the requests that actually evaluated — count
	// as misses; followers are accounted under shared, not misses, so the
	// hit-rate metric reflects real evaluation work.
	if misses != int64(len(distinct)) {
		t.Errorf("misses = %d, want %d (one leader per distinct parameter set)", misses, len(distinct))
	}
}

// TestConcurrentSingleflightRace: the same hammering, mixing analyze
// and sweep traffic, for the race detector's benefit.
func TestConcurrentMixedTraffic(t *testing.T) {
	ts := newTestServer(t, Config{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(paperCell())
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			sraw, _ := json.Marshal(SweepRequest{C: "7", Delta: "7", K: "1", Mu: "0.2", D: "0.5,0.9", Nu: "0.1"})
			resp, err = http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(sraw))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			resp, err = http.Get(ts.URL + "/metrics")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
}

func TestLRUBoundsAndEviction(t *testing.T) {
	c := newLRU(2, 1000)
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a must be cached")
	}
	c.Put("c", 3, 1) // evicts b (a was refreshed)
	if _, ok := c.Get("b"); ok {
		t.Error("b must have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a must survive (recently used)")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	disabled := newLRU(-1, 1000)
	disabled.Put("x", 1, 1)
	if _, ok := disabled.Get("x"); ok {
		t.Error("negative capacity must disable the cache")
	}
}

// TestLRUWeightBound: the cache must bound retained result size, not
// just entry count — heavy entries evict earlier ones, and an entry
// heavier than the whole budget is never stored.
func TestLRUWeightBound(t *testing.T) {
	c := newLRU(1000, 100)
	c.Put("a", 1, 60)
	c.Put("b", 2, 60) // 120 > 100: a must go
	if _, ok := c.Get("a"); ok {
		t.Error("a must have been evicted by weight")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b must be cached")
	}
	c.Put("huge", 3, 1000) // over the whole budget: not cached
	if _, ok := c.Get("huge"); ok {
		t.Error("over-budget entry must not be cached")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b must survive the rejected over-budget Put")
	}
	// Replacing an entry adjusts the total weight instead of leaking it.
	c.Put("b", 4, 10)
	c.Put("c", 5, 80)
	if _, ok := c.Get("b"); !ok {
		t.Error("b (reweighted to 10) must coexist with c (80)")
	}
}

// TestFlightGroupSurvivesPanic: a panicking evaluation must surface as
// an error to leader and followers alike and must not wedge the key.
func TestFlightGroupSurvivesPanic(t *testing.T) {
	g := newFlightGroup()
	_, err, _ := g.Do("k", func() (any, error) { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking fn: err = %v, want panic-converted error", err)
	}
	// The key must be reusable immediately.
	v, err, shared := g.Do("k", func() (any, error) { return 42, nil })
	if err != nil || shared || v != 42 {
		t.Errorf("after panic: v=%v err=%v shared=%v, want 42/nil/false", v, err, shared)
	}
}

func TestCanonicalKeysNormalize(t *testing.T) {
	p := core.Params{C: 7, Delta: 7, K: 1, Mu: 0.5, D: 0.9, Nu: 0.1}
	sc := matrix.SolverConfig{Kind: "bicgstab"}
	k1 := canonicalCellKey(p, core.DistributionDelta, 1, sc)
	p2 := p
	p2.Mu = 0.25 * 2 // same float64 value
	if canonicalCellKey(p2, core.DistributionDelta, 1, sc) != k1 {
		t.Error("value-equal params must share a cache key")
	}
	p2.Mu = 0.3
	if canonicalCellKey(p2, core.DistributionDelta, 1, sc) == k1 {
		t.Error("different params must not share a cache key")
	}
	if canonicalCellKey(p, core.DistributionBeta, 1, sc) == k1 {
		t.Error("distribution must be part of the key")
	}
	if canonicalCellKey(p, core.DistributionDelta, 2, sc) == k1 {
		t.Error("sojourn count must be part of the key")
	}
}
