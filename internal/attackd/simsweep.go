package attackd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/obs"
	"targetedattacks/internal/overlaynet"
	"targetedattacks/internal/stats"
	"targetedattacks/internal/sweep"
)

// Simulation serving defaults.
const (
	// DefaultMaxSimCells bounds the simulation grid size per request.
	DefaultMaxSimCells = 256
	// DefaultMaxSimReplicas bounds the Monte-Carlo replicas per cell.
	DefaultMaxSimReplicas = 256
	// DefaultMaxSimEventBudget bounds the request's total simulated churn
	// events (cells × replicas × events): the serving-time cost model of a
	// simulation sweep.
	DefaultMaxSimEventBudget = 16 << 20
	// DefaultMaxSimPeers bounds the population a single cell may bootstrap.
	DefaultMaxSimPeers = 2 << 20
)

// SimSweepRequest is the /v1/simsweep request body: a simulation grid
// over adversary strategies × µ × d × population sizes, estimated by
// Monte-Carlo replicas of the overlaynet system simulator. Axes use the
// sweep list/range syntax; strategies are a comma-separated list of
// "paper", "norule1", "passive". The serving path always uses
// hash-derived identifiers (FastIdentity): certificate generation has no
// place in a request/response cycle at 10^5+ peers.
type SimSweepRequest struct {
	Strategies string `json:"strategies,omitempty"` // default "paper"
	Mu         string `json:"mu"`
	D          string `json:"d"`
	Sizes      string `json:"sizes"`
	// C, Delta, K and Nu fix the remaining model parameters
	// (defaults 7, 7, 1, 0.1).
	C     int     `json:"c,omitempty"`
	Delta int     `json:"delta,omitempty"`
	K     int     `json:"k,omitempty"`
	Nu    float64 `json:"nu,omitempty"`
	// Events is the churn events per replica; Replicas the Monte-Carlo
	// runs per cell (default 1).
	Events   int `json:"events"`
	Replicas int `json:"replicas,omitempty"`
	// Seed roots the deterministic replica streams.
	Seed int64 `json:"seed,omitempty"`
	// Mode is "model" (default) or "realtime".
	Mode string `json:"mode,omitempty"`
	// Stationary enables the stationary-population controller.
	Stationary bool `json:"stationary,omitempty"`
	// TrackAbsorption/StopOnAbsorption record per-cluster absorption
	// trajectories (the analytic cross-validation statistics).
	TrackAbsorption  bool `json:"track_absorption,omitempty"`
	StopOnAbsorption bool `json:"stop_on_absorption,omitempty"`
	// LookupTrials measures end-of-run lookup availability per replica.
	LookupTrials int `json:"lookup_trials,omitempty"`
	// Workers overrides the evaluation pool width for this request, as in
	// SweepRequest (results are replica-seeded, so they are identical for
	// any width and the override stays out of the cache key).
	Workers int `json:"workers,omitempty"`
	// Timings opts the response into a per-stage timing breakdown, as in
	// SweepRequest. The breakdown is attached at delivery time, so cached
	// entries stay byte-identical.
	Timings bool `json:"timings,omitempty"`
}

// RunningDTO is the wire form of a stats.Running summary.
type RunningDTO struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	StdErr float64 `json:"stderr"`
}

// SimSummaryDTO is the wire form of a cell's replica aggregate.
type SimSummaryDTO struct {
	Replicas         int        `json:"replicas"`
	Events           int64      `json:"events"`
	FinalPeers       RunningDTO `json:"final_peers"`
	PollutedFraction RunningDTO `json:"polluted_fraction"`
	Availability     RunningDTO `json:"availability,omitempty"`
	SafeTime         RunningDTO `json:"safe_time,omitempty"`
	PollutedTime     RunningDTO `json:"polluted_time,omitempty"`
	SafeMerge        int64      `json:"safe_merge,omitempty"`
	SafeSplit        int64      `json:"safe_split,omitempty"`
	PollutedMerge    int64      `json:"polluted_merge,omitempty"`
	PollutedSplit    int64      `json:"polluted_split,omitempty"`
	EverPolluted     int64      `json:"ever_polluted,omitempty"`
	Censored         int64      `json:"censored,omitempty"`
	Splits           int64      `json:"splits"`
	Merges           int64      `json:"merges"`
	Joins            int64      `json:"joins"`
	Leaves           int64      `json:"leaves"`
	DiscardedJoins   int64      `json:"discarded_joins"`
	RefusedLeaves    int64      `json:"refused_leaves"`
	VoluntaryLeaves  int64      `json:"voluntary_leaves"`
	ExpiryLeaves     int64      `json:"expiry_leaves,omitempty"`
}

// SimCellDTO is one cell of a /v1/simsweep response.
type SimCellDTO struct {
	Index     int           `json:"index"`
	Strategy  string        `json:"strategy"`
	Mu        float64       `json:"mu"`
	D         float64       `json:"d"`
	Size      int           `json:"size"`
	LabelBits int           `json:"label_bits"`
	Summary   SimSummaryDTO `json:"summary"`
}

// SimSweepResponse is the /v1/simsweep response body. Every field is
// deterministic in the request (wall-clock is deliberately excluded so
// cached and fresh responses are byte-identical).
type SimSweepResponse struct {
	Cells    []SimCellDTO `json:"cells"`
	Events   int64        `json:"events"`
	Replicas int          `json:"replicas"`
	Cached   bool         `json:"cached"`
	// Shared reports a singleflight-follower response, as in
	// SweepResponse.
	Shared bool `json:"shared,omitempty"`
	// Timings is the opt-in per-stage breakdown, as in SweepResponse.
	Timings *TimingsDTO `json:"timings,omitempty"`
}

func (s *Server) handleSimSweep(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/simsweep"
	if !s.requireMethod(w, r, endpoint, http.MethodPost) {
		return
	}
	parseSpan, _ := obs.StartSpan(r.Context(), "parse")
	body, ok := s.readBody(w, r, endpoint)
	if !ok {
		parseSpan.End()
		return
	}
	ev, err := s.simSweepEvaluationFromBody(body)
	parseSpan.End()
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	s.serveEvaluation(w, r, endpoint, ev, wantsStream(r))
}

// simSweepEvaluationFromBody parses and bounds a /v1/simsweep body into
// a runnable evaluation.
func (s *Server) simSweepEvaluationFromBody(body []byte) (*evaluation, error) {
	var req SimSweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	plan, err := s.simPlanFromRequest(req)
	if err != nil {
		return nil, err
	}
	pool, err := s.requestPool(req.Workers)
	if err != nil {
		return nil, err
	}
	ev := s.simSweepEvaluation(plan, pool)
	ev.timings = req.Timings
	return ev, nil
}

// simSweepEvaluation prepares a simulation-grid evaluation, serving the
// buffered, streamed and async-job paths alike.
func (s *Server) simSweepEvaluation(plan sweep.SimPlan, pool *engine.Pool) *evaluation {
	ev := &evaluation{
		kind:  "simsweep",
		key:   canonicalSimPlanKey(plan),
		cells: plan.Size(),
	}
	ev.run = func(ctx context.Context, onCell func(any)) (any, error) {
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		s.metrics.simEvaluations.Add(1)
		var cb func(sweep.SimCellResult)
		if onCell != nil {
			cb = func(cr sweep.SimCellResult) { onCell(simCellDTO(cr)) }
		}
		rs, err := sweep.EvaluateSim(ctx, plan, sweep.SimOptions{Pool: pool, OnCell: cb})
		if err != nil {
			return nil, err
		}
		resp := SimSweepResponse{
			Cells:    make([]SimCellDTO, len(rs.Cells)),
			Replicas: plan.Replicas,
		}
		for i, cell := range rs.Cells {
			resp.Cells[i] = simCellDTO(cell)
			resp.Events += cell.Summary.Events
		}
		s.metrics.simEvents.Add(resp.Events)
		// A simulation entry retains a fixed-size summary per cell.
		s.cache.Put(ev.key, resp, int64(len(rs.Cells))*32)
		return resp, nil
	}
	ev.cellsOf = func(val any) []any {
		resp := val.(SimSweepResponse)
		out := make([]any, len(resp.Cells))
		for i, c := range resp.Cells {
			out[i] = c
		}
		return out
	}
	ev.finish = func(val any, cached, shared bool, tm *TimingsDTO) any {
		resp := val.(SimSweepResponse)
		resp.Cached, resp.Shared = cached, shared
		resp.Timings = tm
		return resp
	}
	ev.summarize = func(val any, cached, shared bool, tm *TimingsDTO) StreamSummary {
		resp := val.(SimSweepResponse)
		return StreamSummary{
			Cells:    len(resp.Cells),
			Replicas: resp.Replicas,
			Events:   resp.Events,
			Cached:   cached,
			Shared:   shared,
			Timings:  tm,
		}
	}
	return ev
}

// simPlanFromRequest parses and bounds a simulation-sweep request.
func (s *Server) simPlanFromRequest(req SimSweepRequest) (sweep.SimPlan, error) {
	var plan sweep.SimPlan
	strategies := req.Strategies
	if strings.TrimSpace(strategies) == "" {
		strategies = "paper"
	}
	for _, part := range strings.Split(strategies, ",") {
		st, err := adversary.ParseStrategy(strings.TrimSpace(part))
		if err != nil {
			return plan, fmt.Errorf("axis strategies: %w", err)
		}
		plan.Strategies = append(plan.Strategies, st)
	}
	var err error
	if plan.Mu, err = ParseFloatsOrDefault(req.Mu, nil); err != nil {
		return plan, fmt.Errorf("axis mu: %w", err)
	}
	if plan.D, err = ParseFloatsOrDefault(req.D, []float64{0.9}); err != nil {
		return plan, fmt.Errorf("axis d: %w", err)
	}
	if plan.Sizes, err = ParseIntsOrDefault(req.Sizes, nil); err != nil {
		return plan, fmt.Errorf("axis sizes: %w", err)
	}
	plan.Params = core.Params{C: req.C, Delta: req.Delta, K: req.K, Nu: req.Nu}
	if plan.Params.C == 0 {
		plan.Params.C = 7
	}
	if plan.Params.Delta == 0 {
		plan.Params.Delta = 7
	}
	if plan.Params.K == 0 {
		plan.Params.K = 1
	}
	if plan.Params.Nu == 0 {
		plan.Params.Nu = 0.1
	}
	plan.Events = req.Events
	plan.Replicas = req.Replicas
	if plan.Replicas == 0 {
		plan.Replicas = 1
	}
	plan.Seed = req.Seed
	switch strings.ToLower(strings.TrimSpace(req.Mode)) {
	case "", "model":
		plan.Mode = overlaynet.ModelFidelity
	case "realtime":
		plan.Mode = overlaynet.RealTime
	default:
		return plan, fmt.Errorf("unknown mode %q (want \"model\" or \"realtime\")", req.Mode)
	}
	plan.Stationary = req.Stationary
	plan.FastIdentity = true
	plan.TrackAbsorption = req.TrackAbsorption
	plan.StopOnAbsorption = req.StopOnAbsorption
	plan.LookupTrials = req.LookupTrials
	if n := plan.Size(); n > s.maxSimCells {
		return plan, fmt.Errorf("simulation grid has %d cells, server limit is %d", n, s.maxSimCells)
	}
	if plan.Replicas > DefaultMaxSimReplicas {
		return plan, fmt.Errorf("replicas %d exceeds the server limit %d", plan.Replicas, DefaultMaxSimReplicas)
	}
	for _, size := range plan.Sizes {
		if size > DefaultMaxSimPeers {
			return plan, fmt.Errorf("population %d exceeds the server limit %d", size, DefaultMaxSimPeers)
		}
	}
	if plan.Events > 0 && plan.Size() > 0 {
		budget := int64(plan.Size()) * int64(plan.Replicas) * int64(plan.Events)
		if budget > s.maxSimEventBudget {
			return plan, fmt.Errorf("request simulates %d total events (cells × replicas × events), server budget is %d",
				budget, s.maxSimEventBudget)
		}
	}
	if err := plan.Validate(); err != nil {
		return plan, err
	}
	return plan, nil
}

// canonicalSimPlanKey canonicalizes a simulation plan for caching: every
// field that enters the evaluation is keyed, floats in exact hex form.
func canonicalSimPlanKey(plan sweep.SimPlan) string {
	var b strings.Builder
	b.WriteString("simsweep|s=")
	for i, st := range plan.Strategies {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(st.String())
	}
	writeFloats := func(tag string, vs []float64) {
		b.WriteString("|" + tag + "=")
		for i, v := range vs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
		}
	}
	writeFloats("mu", plan.Mu)
	writeFloats("d", plan.D)
	b.WriteString("|size=")
	for i, v := range plan.Sizes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	fmt.Fprintf(&b, "|C=%d|D=%d|K=%d|nu=%s|ev=%d|rep=%d|seed=%d|mode=%d|stat=%t|abs=%t|stop=%t|lk=%d",
		plan.Params.C, plan.Params.Delta, plan.Params.K,
		strconv.FormatFloat(plan.Params.Nu, 'x', -1, 64),
		plan.Events, plan.Replicas, plan.Seed, int(plan.Mode),
		plan.Stationary, plan.TrackAbsorption, plan.StopOnAbsorption, plan.LookupTrials)
	return b.String()
}

func runningDTO(r stats.Running) RunningDTO {
	return RunningDTO{N: r.N(), Mean: r.Mean(), StdDev: r.StdDev(), StdErr: r.StdErr()}
}

func simCellDTO(cell sweep.SimCellResult) SimCellDTO {
	sum := cell.Summary
	return SimCellDTO{
		Index:     cell.Cell.Index,
		Strategy:  cell.Cell.Strategy.String(),
		Mu:        cell.Cell.Mu,
		D:         cell.Cell.D,
		Size:      cell.Cell.Size,
		LabelBits: cell.Cell.LabelBits,
		Summary: SimSummaryDTO{
			Replicas:         sum.Replicas,
			Events:           sum.Events,
			FinalPeers:       runningDTO(sum.FinalPeers),
			PollutedFraction: runningDTO(sum.PollutedFraction),
			Availability:     runningDTO(sum.Availability),
			SafeTime:         runningDTO(sum.SafeTime),
			PollutedTime:     runningDTO(sum.PollutedTime),
			SafeMerge:        sum.SafeMerge,
			SafeSplit:        sum.SafeSplit,
			PollutedMerge:    sum.PollutedMerge,
			PollutedSplit:    sum.PollutedSplit,
			EverPolluted:     sum.EverPolluted,
			Censored:         sum.Censored,
			Splits:           sum.Splits,
			Merges:           sum.Merges,
			Joins:            sum.Joins,
			Leaves:           sum.Leaves,
			DiscardedJoins:   sum.DiscardedJoins,
			RefusedLeaves:    sum.RefusedLeaves,
			VoluntaryLeaves:  sum.VoluntaryLeaves,
			ExpiryLeaves:     sum.ExpiryLeaves,
		},
	}
}
