package attackd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newJobTestServer exposes the Server alongside its httptest harness so
// tests can reach the job store's fake-clock hook and DrainJobs.
func newJobTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// jobSweepBody is a small 4-cell sweep job.
func jobSweepBody() map[string]any {
	return map[string]any{
		"kind": "sweep",
		"c":    "7", "delta": "7", "k": "1",
		"mu": "0.1,0.2", "d": "0.8,0.9", "nu": "0.1",
	}
}

// bigSweepBody is a grid large enough that a cancel usually lands while
// it is still evaluating.
func bigSweepBody() map[string]any {
	mu := make([]string, 64)
	d := make([]string, 64)
	for i := range mu {
		mu[i] = fmt.Sprintf("%.4f", 0.01*float64(i+1))
		d[i] = fmt.Sprintf("%.4f", 0.01*float64(i+1))
	}
	return map[string]any{
		"kind": "sweep",
		"c":    "7", "delta": "7", "k": "1",
		"mu": strings.Join(mu, ","), "d": strings.Join(d, ","), "nu": "0.1",
		"workers": 1,
	}
}

// blockedJob plants a synthetic running job directly in the store: its
// evaluation parks until release is called (or its context is canceled).
// This is the deterministic way to observe the "running" states — on a
// loaded single-CPU box a real evaluation can finish before the next
// HTTP round-trip lands, so wall-clock racing is not an option.
func blockedJob(t *testing.T, s *Server, id string) (release func()) {
	t.Helper()
	block := make(chan struct{})
	ev := &evaluation{
		kind:  "sweep",
		model: "targeted-attack",
		key:   "test-blocked|" + id,
		cells: 1,
	}
	ev.run = func(ctx context.Context, onCell func(any)) (any, error) {
		select {
		case <-block:
			if onCell != nil {
				onCell(SweepCellDTO{})
			}
			return SweepResponse{Cells: []SweepCellDTO{{}}, Solver: "bicgstab"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ev.cellsOf = func(val any) []any {
		return []any{val.(SweepResponse).Cells[0]}
	}
	ev.finish = func(val any, cached, shared bool, tm *TimingsDTO) any {
		resp := val.(SweepResponse)
		resp.Cached, resp.Shared = cached, shared
		return resp
	}
	ev.summarize = func(val any, cached, shared bool, tm *TimingsDTO) StreamSummary {
		return StreamSummary{Cells: 1, Cached: cached, Shared: shared}
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      id,
		ev:      ev,
		cancel:  cancel,
		created: s.jobs.now(),
		state:   JobRunning,
		done:    make(chan struct{}),
	}
	if err := s.jobs.add(j); err != nil {
		cancel()
		t.Fatalf("adding blocked job: %v", err)
	}
	s.metrics.jobsSubmitted.Add(1)
	s.metrics.jobsActive.Add(1)
	go s.runJob(ctx, j)
	var once sync.Once
	return func() { once.Do(func() { close(block) }) }
}

// pollJob polls a job's status until it leaves JobRunning or the
// deadline passes.
func pollJob(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, status := getJSON[JobStatus](t, url+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll status = %d", code)
		}
		if status.State != JobRunning {
			return status
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 30s", id)
	return JobStatus{}
}

func getJSON[T any](t *testing.T, url string) (int, T) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// TestJobLifecycle: submit → poll (with cell-level progress) → result,
// and the job's evaluation lands in the shared cache.
func TestJobLifecycle(t *testing.T) {
	ts := newTestServer(t, Config{})
	code, sub := postJSON[JobSubmitResponse](t, ts.URL+"/v1/jobs", jobSweepBody())
	if code != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status=%d resp=%+v", code, sub)
	}
	if sub.Status.Kind != "sweep" || sub.Status.CellsTotal != 4 {
		t.Fatalf("submit status = %+v", sub.Status)
	}
	status := pollJob(t, ts.URL, sub.ID)
	if status.State != JobDone || status.CellsDone != 4 || status.CellsTotal != 4 || status.Error != "" {
		t.Fatalf("final status = %+v", status)
	}
	// The job must appear in the collection listing.
	code, list := getJSON[JobListResponse](t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Fatalf("list = %d %+v", code, list)
	}
	code, result := getJSON[SweepResponse](t, ts.URL+"/v1/jobs/"+sub.ID+"/result")
	if code != http.StatusOK || len(result.Cells) != 4 || result.Cached {
		t.Fatalf("result: status=%d cells=%d cached=%v", code, len(result.Cells), result.Cached)
	}
	// The synchronous endpoint now hits the cache the job populated.
	body := jobSweepBody()
	delete(body, "kind")
	code, direct := postJSON[SweepResponse](t, ts.URL+"/v1/sweep", body)
	if code != http.StatusOK || !direct.Cached {
		t.Fatalf("sweep after job: status=%d cached=%v, want 200/true", code, direct.Cached)
	}
	if direct.Cells[0].Analysis.ExpectedSafeTime != result.Cells[0].Analysis.ExpectedSafeTime {
		t.Errorf("job result diverges from the synchronous endpoint")
	}
	// The result endpoint streams too.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"/result?stream=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines, summary := drainNDJSON(t, resp.Body)
	if len(lines) != 4 || summary.Cells != 4 {
		t.Errorf("streamed job result: %d cells, summary %+v", len(lines), summary)
	}
}

// TestJobSimSweep: the simulation evaluation rides the same job API.
func TestJobSimSweep(t *testing.T) {
	ts := newTestServer(t, Config{})
	code, sub := postJSON[JobSubmitResponse](t, ts.URL+"/v1/jobs", map[string]any{
		"kind": "simsweep",
		"mu":   "0.2", "d": "0.9", "sizes": "64",
		"events": 200, "replicas": 2, "seed": 3,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status=%d resp=%+v", code, sub)
	}
	status := pollJob(t, ts.URL, sub.ID)
	if status.State != JobDone || status.Kind != "simsweep" || status.CellsDone != 1 {
		t.Fatalf("final status = %+v", status)
	}
	code, result := getJSON[SimSweepResponse](t, ts.URL+"/v1/jobs/"+sub.ID+"/result")
	if code != http.StatusOK || len(result.Cells) != 1 || result.Events <= 0 {
		t.Fatalf("result: status=%d %+v", code, result)
	}
}

// TestJobCancel: DELETE cancels the evaluation through its context and
// the result endpoint reports the job gone.
func TestJobCancel(t *testing.T) {
	s, ts := newJobTestServer(t, Config{})
	release := blockedJob(t, s, "blocked-cancel")
	defer release()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/blocked-cancel", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.State != JobCanceled {
		t.Fatalf("state after cancel = %q, want %q", status.State, JobCanceled)
	}
	code, _ := getJSON[errorResponse](t, ts.URL+"/v1/jobs/blocked-cancel/result")
	if code != http.StatusGone {
		t.Errorf("result of canceled job: status=%d, want 410", code)
	}
	// A real evaluation observes the same context. Cancel is best-effort
	// against the clock here, so only the terminal state is asserted.
	code, sub := postJSON[JobSubmitResponse](t, ts.URL+"/v1/jobs", bigSweepBody())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status=%d", code)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.State != JobCanceled && status.State != JobDone {
		t.Errorf("real job after cancel = %q, want a terminal state", status.State)
	}
}

// TestJobResultWhileRunning: polling the result of a running job is a
// 409, not a hang; the same URL serves the result once the job lands.
func TestJobResultWhileRunning(t *testing.T) {
	s, ts := newJobTestServer(t, Config{})
	release := blockedJob(t, s, "blocked-result")
	code, msg := getJSON[errorResponse](t, ts.URL+"/v1/jobs/blocked-result/result")
	if code != http.StatusConflict || !strings.Contains(msg.Error, "running") {
		t.Errorf("result while running: status=%d err=%q, want 409", code, msg.Error)
	}
	release()
	if status := pollJob(t, ts.URL, "blocked-result"); status.State != JobDone {
		t.Fatalf("released job = %+v, want done", status)
	}
	code, result := getJSON[SweepResponse](t, ts.URL+"/v1/jobs/blocked-result/result")
	if code != http.StatusOK || len(result.Cells) != 1 {
		t.Errorf("result after release: status=%d cells=%d", code, len(result.Cells))
	}
}

// TestJobTTLEviction drives the store's lazy TTL eviction with a fake
// clock: a finished job stays pollable inside the TTL and 404s after.
func TestJobTTLEviction(t *testing.T) {
	s, ts := newJobTestServer(t, Config{})
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	s.jobs.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	code, sub := postJSON[JobSubmitResponse](t, ts.URL+"/v1/jobs", jobSweepBody())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status=%d", code)
	}
	if status := pollJob(t, ts.URL, sub.ID); status.State != JobDone {
		t.Fatalf("status = %+v", status)
	}
	mu.Lock()
	now = now.Add(DefaultJobTTL - time.Second)
	mu.Unlock()
	if code, _ := getJSON[JobStatus](t, ts.URL+"/v1/jobs/"+sub.ID); code != http.StatusOK {
		t.Fatalf("inside TTL: status=%d, want 200", code)
	}
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()
	if code, _ := getJSON[errorResponse](t, ts.URL+"/v1/jobs/"+sub.ID); code != http.StatusNotFound {
		t.Fatalf("past TTL: status=%d, want 404", code)
	}
	if code, list := getJSON[JobListResponse](t, ts.URL+"/v1/jobs"); code != http.StatusOK || len(list.Jobs) != 0 {
		t.Fatalf("list past TTL: %d jobs", len(list.Jobs))
	}
}

// TestJobStoreBound: a full store of running jobs rejects submissions
// with 503; finished jobs make room for new ones.
func TestJobStoreBound(t *testing.T) {
	s, ts := newJobTestServer(t, Config{MaxJobs: 1})
	release := blockedJob(t, s, "occupant")
	defer release()
	code, msg := postJSON[errorResponse](t, ts.URL+"/v1/jobs", jobSweepBody())
	if code != http.StatusServiceUnavailable || !strings.Contains(msg.Error, "full") {
		t.Fatalf("submit into full store: status=%d err=%q, want 503", code, msg.Error)
	}
	// Cancel the occupant; a finished job is evictable, so the next
	// submission displaces it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/occupant", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	code, sub := postJSON[JobSubmitResponse](t, ts.URL+"/v1/jobs", jobSweepBody())
	if code != http.StatusAccepted {
		t.Fatalf("submit after cancel: status=%d", code)
	}
	if status := pollJob(t, ts.URL, sub.ID); status.State != JobDone {
		t.Fatalf("status = %+v", status)
	}
}

// TestJobsDisabled: MaxJobs < 0 turns the job API off.
func TestJobsDisabled(t *testing.T) {
	ts := newTestServer(t, Config{MaxJobs: -1})
	code, msg := postJSON[errorResponse](t, ts.URL+"/v1/jobs", jobSweepBody())
	if code != http.StatusServiceUnavailable || !strings.Contains(msg.Error, "disabled") {
		t.Fatalf("submit: status=%d err=%q, want 503/disabled", code, msg.Error)
	}
}

// TestDrainJobs: draining blocks until the in-flight job completes and
// rejects new submissions meanwhile.
func TestDrainJobs(t *testing.T) {
	s, ts := newJobTestServer(t, Config{})
	code, sub := postJSON[JobSubmitResponse](t, ts.URL+"/v1/jobs", jobSweepBody())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status=%d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.DrainJobs(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The drained job finished — not canceled, not lost.
	code, status := getJSON[JobStatus](t, ts.URL+"/v1/jobs/"+sub.ID)
	if code != http.StatusOK || status.State != JobDone {
		t.Fatalf("after drain: status=%d state=%q, want 200/done", code, status.State)
	}
	code, msg := postJSON[errorResponse](t, ts.URL+"/v1/jobs", jobSweepBody())
	if code != http.StatusServiceUnavailable || !strings.Contains(msg.Error, "draining") {
		t.Fatalf("submit while drained: status=%d err=%q", code, msg.Error)
	}
}

// TestJobBadRequests: the job API's client-error paths.
func TestJobBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Unknown kind.
	code, msg := postJSON[errorResponse](t, ts.URL+"/v1/jobs", map[string]any{"kind": "dance"})
	if code != http.StatusBadRequest || !strings.Contains(msg.Error, "dance") {
		t.Errorf("unknown kind: status=%d err=%q", code, msg.Error)
	}
	// Invalid underlying sweep body.
	code, _ = postJSON[errorResponse](t, ts.URL+"/v1/jobs", map[string]any{"kind": "sweep", "c": "7"})
	if code != http.StatusBadRequest {
		t.Errorf("invalid sweep body: status=%d, want 400", code)
	}
	// Unknown job ID.
	code, _ = getJSON[errorResponse](t, ts.URL+"/v1/jobs/deadbeef")
	if code != http.StatusNotFound {
		t.Errorf("unknown job: status=%d, want 404", code)
	}
	// Unknown subresource.
	code, _ = getJSON[errorResponse](t, ts.URL+"/v1/jobs/deadbeef/logs")
	if code != http.StatusNotFound {
		t.Errorf("unknown subresource: status=%d, want 404", code)
	}
	// Wrong method on the collection.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, POST" {
		t.Errorf("PUT /v1/jobs: status=%d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	// Wrong method on a job.
	code, sub := postJSON[JobSubmitResponse](t, ts.URL+"/v1/jobs", jobSweepBody())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status=%d", code)
	}
	req, _ = http.NewRequest(http.MethodPatch, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, DELETE" {
		t.Errorf("PATCH /v1/jobs/{id}: status=%d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	pollJob(t, ts.URL, sub.ID)
}

// TestJobsConcurrent is the job API's -race workout: concurrent
// submissions of the same plan, pollers, listers and cancelers all
// hammering one store.
func TestJobsConcurrent(t *testing.T) {
	ts := newTestServer(t, Config{MaxJobs: 64})
	const submitters = 8
	var wg sync.WaitGroup
	ids := make(chan string, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, sub := postJSON[JobSubmitResponse](t, ts.URL+"/v1/jobs", jobSweepBody())
			if code != http.StatusAccepted {
				t.Errorf("submit: status=%d", code)
				return
			}
			ids <- sub.ID
		}()
	}
	wg.Wait()
	close(ids)
	var all []string
	for id := range ids {
		all = append(all, id)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 24; i++ {
		wg.Add(1)
		id := all[rng.Intn(len(all))]
		go func(i int, id string) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				getJSON[JobStatus](t, ts.URL+"/v1/jobs/"+id)
			case 1:
				getJSON[JobListResponse](t, ts.URL+"/v1/jobs")
			default:
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(i, id)
	}
	wg.Wait()
	// Every job must settle in a terminal state.
	for _, id := range all {
		status := pollJob(t, ts.URL, id)
		switch status.State {
		case JobDone, JobCanceled:
		default:
			t.Errorf("job %s settled as %q: %+v", id, status.State, status)
		}
	}
}
