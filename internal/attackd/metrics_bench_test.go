package attackd

import "testing"

// The request/evaluation counters sit on every handler's hot path;
// these parallel benchmarks guard the lock-free two-level scheme
// against contention regressions (the old implementation took a mutex
// and fmt.Sprintf'd a key per request).

func BenchmarkMetricsRequest(b *testing.B) {
	m := newMetrics()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.request("/v1/sweep", 200)
		}
	})
}

func BenchmarkMetricsRequestRareCode(b *testing.B) {
	m := newMetrics()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.request("/v1/sweep", 418)
		}
	})
}

func BenchmarkMetricsEvaluation(b *testing.B) {
	m := newMetrics()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.evaluation("targeted-attack")
		}
	})
}
