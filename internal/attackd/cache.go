package attackd

import (
	"container/list"
	"fmt"
	"sync"
)

// lru is a least-recently-used result cache bounded both in entries and
// in total weight — a sweep response can hold cells × sojourns × 2
// floats, so an entry count alone would not bound memory. Entries are
// immutable once stored (handlers serialize results before caching), so
// a hit can be returned to any number of readers without copying.
type lru struct {
	mu        sync.Mutex
	cap       int
	maxWeight int64
	weight    int64
	order     *list.List // front = most recent; values are *lruEntry
	byKey     map[string]*list.Element
}

type lruEntry struct {
	key    string
	val    any
	weight int64
}

// newLRU builds a cache bounded to capacity entries and maxWeight total
// weight (the handlers measure weight in result floats); capacity < 1
// disables caching (every Get misses, Put is a no-op).
func newLRU(capacity int, maxWeight int64) *lru {
	return &lru{cap: capacity, maxWeight: maxWeight, order: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the cached value for key, refreshing its recency.
func (c *lru) Get(key string) (any, bool) {
	if c.cap < 1 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores val under key with the given weight, evicting least
// recently used entries until both bounds hold. Values heavier than the
// whole weight budget are not cached at all.
func (c *lru) Put(key string, val any, weight int64) {
	if c.cap < 1 || weight > c.maxWeight {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*lruEntry)
		c.weight += weight - ent.weight
		ent.val, ent.weight = val, weight
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&lruEntry{key: key, val: val, weight: weight})
		c.weight += weight
	}
	for c.order.Len() > c.cap || c.weight > c.maxWeight {
		oldest := c.order.Back()
		ent := oldest.Value.(*lruEntry)
		c.order.Remove(oldest)
		delete(c.byKey, ent.key)
		c.weight -= ent.weight
	}
}

// Len returns the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup deduplicates concurrent evaluations of the same key: the
// first caller becomes the leader and computes; followers block until
// the leader finishes and share its result. (A minimal in-repo
// singleflight — the container deliberately carries no external
// dependencies.)
type flightGroup struct {
	mu     sync.Mutex
	flight map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flight: make(map[string]*flightCall)}
}

// Do invokes fn once per key among concurrent callers. It returns fn's
// value and error, plus shared=true for followers that received the
// leader's result instead of computing their own. A panic in fn is
// converted to an error for the leader and every follower — the flight
// entry is always removed and its done channel always closed, so a
// panicking evaluation can never wedge a key forever.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if call, ok := g.flight[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.val, call.err, true
	}
	call := &flightCall{done: make(chan struct{})}
	g.flight[key] = call
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				call.val, call.err = nil, fmt.Errorf("attackd: evaluation panicked: %v", r)
			}
			g.mu.Lock()
			delete(g.flight, key)
			g.mu.Unlock()
			close(call.done)
		}()
		call.val, call.err = fn()
	}()
	return call.val, call.err, false
}
