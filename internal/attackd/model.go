package attackd

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/obs"
	"targetedattacks/internal/sweep"
)

// This file is the model-agnostic serving path: /v1/analyze and
// /v1/sweep requests naming a non-default "model" are routed here. The
// selected family parses its own parameters out of the raw request body
// (the shared fields — distribution, sojourns, solver — stay the
// handler's), and results are rendered in the model-free vocabulary of
// chainmodel.Analysis. The default family keeps its historical
// specialized responses for wire compatibility.

// ModelAnalysisDTO is the wire form of a chainmodel.Analysis: subset A
// is the family's "good" transient set, subset B its "bad" one.
type ModelAnalysisDTO struct {
	TimeInA        float64            `json:"time_in_a"`
	TimeInB        float64            `json:"time_in_b"`
	SojournsA      []float64          `json:"sojourns_a"`
	SojournsB      []float64          `json:"sojourns_b"`
	Absorption     map[string]float64 `json:"absorption"`
	HitProbability float64            `json:"hit_probability"`
}

// ModelAnalyzeResponse is the /v1/analyze response body for non-default
// model families.
type ModelAnalyzeResponse struct {
	Model        string           `json:"model"`
	Params       any              `json:"params"`
	Distribution string           `json:"distribution"`
	Sojourns     int              `json:"sojourns"`
	States       int              `json:"states"`
	Solver       string           `json:"solver"`
	Analysis     ModelAnalysisDTO `json:"analysis"`
	// Cached and Shared report the response's provenance, as in
	// AnalyzeResponse.
	Cached bool `json:"cached"`
	Shared bool `json:"shared,omitempty"`
	// Timings is the opt-in per-stage breakdown, as in AnalyzeResponse.
	Timings *TimingsDTO `json:"timings,omitempty"`
}

// ModelSweepCellDTO is one cell of a non-default-family /v1/sweep
// response.
type ModelSweepCellDTO struct {
	Index      int              `json:"index"`
	Params     any              `json:"params"`
	States     int              `json:"states"`
	Transient  int              `json:"transient"`
	Shared     bool             `json:"shared"`
	Iterations int64            `json:"iterations,omitempty"`
	Analysis   ModelAnalysisDTO `json:"analysis"`
}

// ModelSweepResponse is the /v1/sweep response body for non-default
// model families.
type ModelSweepResponse struct {
	Model        string              `json:"model"`
	Distribution string              `json:"distribution"`
	Sojourns     int                 `json:"sojourns"`
	Cells        []ModelSweepCellDTO `json:"cells"`
	Groups       int                 `json:"groups"`
	Evaluated    int                 `json:"evaluated"`
	Iterations   int64               `json:"iterations,omitempty"`
	Solver       string              `json:"solver"`
	Cached       bool                `json:"cached"`
	Shared       bool                `json:"shared,omitempty"`
	Timings      *TimingsDTO         `json:"timings,omitempty"`
}

func modelAnalysisDTO(a *chainmodel.Analysis) ModelAnalysisDTO {
	return ModelAnalysisDTO{
		TimeInA:        a.TimeInA,
		TimeInB:        a.TimeInB,
		SojournsA:      a.SojournsA,
		SojournsB:      a.SojournsB,
		Absorption:     a.Absorption,
		HitProbability: a.HitProbability,
	}
}

// sojournCount clamps and bounds the per-request sojourn count.
func (s *Server) sojournCount(requested int) (int, error) {
	if requested < 1 {
		requested = 1
	}
	if requested > s.maxSojourns {
		return 0, fmt.Errorf("sojourns %d exceeds the server limit %d", requested, s.maxSojourns)
	}
	return requested, nil
}

// checkStateCount bounds one cell's state space before any allocation.
func (s *Server) checkStateCount(fam chainmodel.Family, cell chainmodel.Cell) (int, error) {
	states, err := fam.StateCount(cell)
	if err != nil {
		return 0, err
	}
	if states > s.maxStates {
		return 0, fmt.Errorf("cell %s has %d states, server limit is %d", fam.CellKey(cell), states, s.maxStates)
	}
	return states, nil
}

// modelCellKey is the canonical cache/singleflight key of one
// non-default-family cell request. The family's CellKey renders the
// parameters exactly (hex floats), so value-equal requests share a key.
func modelCellKey(fam chainmodel.Family, cell chainmodel.Cell, dist string, sojourns int, solver matrix.SolverConfig) string {
	return fmt.Sprintf("cell|m=%s|%s|a=%s|n=%d|s=%s|tol=%s|it=%d",
		fam.Name(), fam.CellKey(cell), dist, sojourns, solver.Kind,
		strconv.FormatFloat(solver.Tol, 'x', -1, 64), solver.MaxIter)
}

// modelPlanKey canonicalizes a non-default-family sweep for caching:
// the joined per-cell keys can run long for big grids, so they are
// hashed (the model name and options stay in the clear for debugging).
func modelPlanKey(fam chainmodel.Family, cells []chainmodel.Cell, dist string, sojourns int, solver matrix.SolverConfig) string {
	h := sha256.New()
	for _, cell := range cells {
		h.Write([]byte(fam.CellKey(cell)))
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("sweep|m=%s|h=%s|a=%s|n=%d|s=%s|tol=%s|it=%d",
		fam.Name(), hex.EncodeToString(h.Sum(nil)), dist, sojourns, solver.Kind,
		strconv.FormatFloat(solver.Tol, 'x', -1, 64), solver.MaxIter)
}

// handleModelAnalyze serves /v1/analyze for a non-default family. The
// raw body is handed to the family's cell parser; req carries the
// shared fields already decoded.
func (s *Server) handleModelAnalyze(w http.ResponseWriter, r *http.Request, endpoint string, fam chainmodel.Family, body []byte, req CellRequest) {
	cell, err := fam.ParseCell(body)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	dist, err := fam.ParseDist(req.Distribution)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	sojourns, err := s.sojournCount(req.Sojourns)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	if _, err := s.checkStateCount(fam, cell); err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	solver, err := s.requestSolver(req.Solver, req.Tol, req.MaxIter)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	pool, err := s.requestPool(req.Workers)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	key := modelCellKey(fam, cell, dist, sojourns, solver)
	// timings snapshots the request's trace at delivery time when the
	// request opted in; cached values stay timing-free.
	timings := func() *TimingsDTO {
		if !req.Timings {
			return nil
		}
		return timingsFromTrace(obs.TraceFromContext(r.Context()))
	}
	cacheSpan, _ := obs.StartSpan(r.Context(), "cache")
	cached, hit := s.cache.Get(key)
	cacheSpan.End()
	if hit {
		s.metrics.cacheHits.Add(1)
		resp := cached.(ModelAnalyzeResponse)
		resp.Cached = true
		resp.Timings = timings()
		s.writeJSON(w, r, endpoint, http.StatusOK, resp)
		return
	}
	ctx := obs.Detach(r.Context())
	val, err, shared := s.flights.Do(key, func() (any, error) {
		// Leader-only miss accounting, as in handleAnalyze.
		s.metrics.cacheMisses.Add(1)
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		s.metrics.evaluation(fam.Name())
		buildSpan, _ := obs.StartSpan(ctx, "build")
		tables, err := fam.NewShared([]chainmodel.Cell{cell})
		if err != nil {
			buildSpan.End()
			return nil, err
		}
		inst, err := fam.Build(tables, cell, solver, pool)
		buildSpan.End()
		if err != nil {
			return nil, err
		}
		solveSpan, _ := obs.StartSpan(ctx, "solve")
		a, err := chainmodel.Analyze(inst, dist, sojourns)
		if err != nil {
			solveSpan.End()
			return nil, err
		}
		solveSpan.SetAttr("backend", a.Solver.Backend)
		solveSpan.SetAttrInt("iterations", a.Solver.Iterations)
		solveSpan.End()
		s.metrics.solve(a.Solver)
		resp := ModelAnalyzeResponse{
			Model:        fam.Name(),
			Params:       fam.CellDTO(cell),
			Distribution: dist,
			Sojourns:     sojourns,
			States:       inst.NumStates(),
			Solver:       solver.Kind,
			Analysis:     modelAnalysisDTO(a),
		}
		s.cache.Put(key, resp, analysisWeight(sojourns))
		return resp, nil
	})
	if shared {
		s.metrics.singleflightShared.Add(1)
	}
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusInternalServerError, err)
		return
	}
	resp := val.(ModelAnalyzeResponse)
	resp.Shared = shared
	resp.Timings = timings()
	s.writeJSON(w, r, endpoint, http.StatusOK, resp)
}

// modelSweepEvaluation prepares a non-default-family grid evaluation:
// the family parses its own grid out of the raw body and the
// model-agnostic amortized evaluator runs it with warm-start lanes.
// Buffered, streamed and async-job serving all go through the returned
// evaluation.
func (s *Server) modelSweepEvaluation(fam chainmodel.Family, body []byte, req SweepRequest, solver matrix.SolverConfig, pool *engine.Pool) (*evaluation, error) {
	cells, err := fam.ParsePlan(body)
	if err != nil {
		return nil, err
	}
	if len(cells) > s.maxCells {
		return nil, fmt.Errorf("grid has %d cells, server limit is %d", len(cells), s.maxCells)
	}
	for _, cell := range cells {
		if _, err := s.checkStateCount(fam, cell); err != nil {
			return nil, err
		}
	}
	dist, err := fam.ParseDist(req.Distribution)
	if err != nil {
		return nil, err
	}
	sojourns, err := s.sojournCount(req.Sojourns)
	if err != nil {
		return nil, err
	}
	ev := &evaluation{
		kind:    "sweep",
		model:   fam.Name(),
		key:     modelPlanKey(fam, cells, dist, sojourns, solver),
		cells:   len(cells),
		solver:  solver.Kind,
		timings: req.Timings,
	}
	ev.run = func(ctx context.Context, onCell func(any)) (any, error) {
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		s.metrics.evaluation(fam.Name())
		var cb func(sweep.ModelCellResult)
		if onCell != nil {
			cb = func(mc sweep.ModelCellResult) { onCell(modelSweepCellDTO(fam, mc)) }
		}
		rs, err := sweep.EvaluateModel(ctx, sweep.ModelPlan{
			Family:   fam,
			Cells:    cells,
			Dist:     dist,
			Sojourns: sojourns,
		}, sweep.ModelOptions{
			Pool:      pool,
			BuildPool: pool,
			Solver:    solver,
			WarmStart: true,
			OnCell:    cb,
		})
		if err != nil {
			return nil, err
		}
		resp := ModelSweepResponse{
			Model:        fam.Name(),
			Distribution: dist,
			Sojourns:     sojourns,
			Cells:        make([]ModelSweepCellDTO, len(rs.Cells)),
			Groups:       rs.Groups,
			Evaluated:    rs.Evaluated,
			Iterations:   rs.Iterations,
			Solver:       solver.Kind,
		}
		for i, cell := range rs.Cells {
			resp.Cells[i] = modelSweepCellDTO(fam, cell)
			if !cell.Shared {
				s.metrics.solve(cell.Analysis.Solver)
			}
		}
		s.cache.Put(ev.key, resp, int64(len(rs.Cells))*analysisWeight(sojourns))
		return resp, nil
	}
	ev.cellsOf = func(val any) []any {
		resp := val.(ModelSweepResponse)
		out := make([]any, len(resp.Cells))
		for i, c := range resp.Cells {
			out[i] = c
		}
		return out
	}
	ev.finish = func(val any, cached, shared bool, tm *TimingsDTO) any {
		resp := val.(ModelSweepResponse)
		resp.Cached, resp.Shared = cached, shared
		resp.Timings = tm
		return resp
	}
	ev.summarize = func(val any, cached, shared bool, tm *TimingsDTO) StreamSummary {
		resp := val.(ModelSweepResponse)
		return StreamSummary{
			Cells:      len(resp.Cells),
			Groups:     resp.Groups,
			Evaluated:  resp.Evaluated,
			Iterations: resp.Iterations,
			Solver:     resp.Solver,
			Model:      resp.Model,
			Cached:     cached,
			Shared:     shared,
			Timings:    tm,
		}
	}
	return ev, nil
}

// modelSweepCellDTO is the wire form of one evaluated model cell,
// shared by the buffered response and the NDJSON stream.
func modelSweepCellDTO(fam chainmodel.Family, cell sweep.ModelCellResult) ModelSweepCellDTO {
	return ModelSweepCellDTO{
		Index:      cell.Index,
		Params:     fam.CellDTO(cell.Cell),
		States:     cell.States,
		Transient:  cell.Transient,
		Shared:     cell.Shared,
		Iterations: cell.Iterations,
		Analysis:   modelAnalysisDTO(cell.Analysis),
	}
}
