package attackd

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"

	"targetedattacks/internal/obs"
)

// This file is the streaming half of the serving layer. Every grid
// endpoint (/v1/sweep, /v1/simsweep, and /v1/sweep with a named model)
// parses its request into one *evaluation — a prepared, validated,
// cache-keyed unit of work — and hands it to serveEvaluation, which
// runs it buffered (one JSON body) or streamed (NDJSON, one line per
// cell as the evaluator's OnCell hook fires). The async job API reuses
// the same evaluations, so a job's cells/progress/result are identical
// to what the synchronous endpoints would have produced.
//
// Stream protocol: `Accept: application/x-ndjson` or `?stream=1`
// selects streaming. Each line is either one cell (exactly the object
// that appears in the buffered response's "cells" array — byte
// identical), the terminating {"summary": {...}} line, or an
// {"error": "..."} line if the evaluation failed after the stream
// committed its 200. Clients tell the envelopes from cells by shape:
// both envelopes are single-key objects, while every cell line carries
// multiple fields (simulation cells even have their own "summary"
// member, nested beside "index"). Lines are flushed as they are
// written, so the first cell arrives while the rest of the grid is
// still evaluating.

// evaluation is one parsed grid request, ready to run. The three
// builders (sweepEvaluation, modelSweepEvaluation, simSweepEvaluation)
// close over their typed plans and responses; everything downstream —
// buffered serving, streaming, async jobs — goes through this shape.
type evaluation struct {
	// kind is the job-API name of the evaluation ("sweep" or
	// "simsweep"); model the family name ("" for simulation sweeps).
	kind  string
	model string
	// key is the canonical cache/singleflight key.
	key string
	// cells is the grid size (the job API's progress denominator).
	cells int
	// solver is the wire name of the linear-solver backend ("" for
	// simulation sweeps).
	solver string
	// timings reports that the request opted into a per-stage timing
	// breakdown; the breakdown itself is computed at delivery time from
	// the request's trace and attached to a response copy, so cached
	// values stay timing-free (and byte-identical across hits).
	timings bool
	// run computes the response (flags unset) and stores it in the LRU.
	// When onCell is non-nil it receives each finished cell's DTO in
	// completion order, from evaluator goroutines.
	run func(ctx context.Context, onCell func(any)) (any, error)
	// cellsOf lists a finished response's cell DTOs in plan order, for
	// replaying a cached or singleflight-shared result onto a stream.
	cellsOf func(val any) []any
	// finish stamps the response's Cached/Shared flags (and the opt-in
	// timings, which may be nil) for buffered delivery.
	finish func(val any, cached, shared bool, tm *TimingsDTO) any
	// summarize renders the stream's terminating summary line.
	summarize func(val any, cached, shared bool, tm *TimingsDTO) StreamSummary
}

// StreamSummary is the final line of an NDJSON stream, wrapped as
// {"summary": {...}} so clients can tell it from a cell line. It carries
// the buffered response's envelope fields.
type StreamSummary struct {
	// Cells counts the cell lines that precede the summary.
	Cells int `json:"cells"`
	// Groups/Evaluated/Iterations/Solver mirror SweepResponse (analytic
	// sweeps only).
	Groups     int    `json:"groups,omitempty"`
	Evaluated  int    `json:"evaluated,omitempty"`
	Iterations int64  `json:"iterations,omitempty"`
	Solver     string `json:"solver,omitempty"`
	// Model names the family on model sweeps.
	Model string `json:"model,omitempty"`
	// Replicas/Events mirror SimSweepResponse (simulation sweeps only).
	Replicas int   `json:"replicas,omitempty"`
	Events   int64 `json:"events,omitempty"`
	// Cached and Shared report where the cells came from, as in the
	// buffered responses.
	Cached bool `json:"cached"`
	Shared bool `json:"shared,omitempty"`
	// Timings is the opt-in per-stage breakdown, as in the buffered
	// responses.
	Timings *TimingsDTO `json:"timings,omitempty"`
}

// streamEnvelope wraps the summary line.
type streamEnvelope struct {
	Summary StreamSummary `json:"summary"`
}

// wantsStream reports whether the request asked for NDJSON streaming.
func wantsStream(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// ndjsonWriter serializes concurrent cell callbacks onto one response
// stream, flushing every line so cells reach the client as they are
// computed. Write errors (client gone) are swallowed: the evaluation
// must finish anyway to feed the cache and any singleflight followers.
type ndjsonWriter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
	enc     *json.Encoder
}

// startStream commits the NDJSON response: headers, status 200 and the
// request metric. From here on errors can only be reported in-band.
func (s *Server) startStream(w http.ResponseWriter, endpoint string) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // keep reverse proxies from de-streaming us
	w.WriteHeader(http.StatusOK)
	s.metrics.request(endpoint, http.StatusOK)
	nw := &ndjsonWriter{w: w, enc: json.NewEncoder(w)}
	nw.flusher, _ = w.(http.Flusher)
	if nw.flusher != nil {
		nw.flusher.Flush()
	}
	return nw
}

// writeLine emits one NDJSON line (Encode appends the newline) and
// flushes it.
func (nw *ndjsonWriter) writeLine(v any) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if err := nw.enc.Encode(v); err != nil {
		return
	}
	if nw.flusher != nil {
		nw.flusher.Flush()
	}
}

// serveEvaluation runs one prepared evaluation and delivers it buffered
// or streamed. Identical concurrent requests share one computation via
// singleflight whatever their delivery mode: a streaming leader emits
// cells live; a streaming follower replays the leader's finished cells
// in plan order; buffered requests get the whole response either way.
// Completed evaluations populate the LRU (inside ev.run), so a stream
// warms the cache for later buffered requests and vice versa.
func (s *Server) serveEvaluation(w http.ResponseWriter, r *http.Request, endpoint string, ev *evaluation, stream bool) {
	tr := obs.TraceFromContext(r.Context())
	// timings snapshots the request's trace at delivery time when the
	// request opted in; nil otherwise, which every consumer tolerates.
	timings := func() *TimingsDTO {
		if !ev.timings {
			return nil
		}
		return timingsFromTrace(tr)
	}
	cacheSpan, _ := obs.StartSpan(r.Context(), "cache")
	cached, hit := s.cache.Get(ev.key)
	cacheSpan.End()
	if hit {
		s.metrics.cacheHits.Add(1)
		if stream {
			sw := s.startStream(w, endpoint)
			for _, line := range ev.cellsOf(cached) {
				s.metrics.streamCells.Add(1)
				sw.writeLine(line)
			}
			sw.writeLine(streamEnvelope{Summary: ev.summarize(cached, true, false, timings())})
			return
		}
		s.writeJSON(w, r, endpoint, http.StatusOK, ev.finish(cached, true, false, timings()))
		return
	}
	// Evaluations run on a detached context: singleflight followers and
	// the LRU cache consume the shared result, so it must not die with
	// the leader request's connection. Detaching keeps the leader's
	// trace, so its spans (plan, build, solve, ...) still land in the
	// request's breakdown; a follower's trace only ever carries its own
	// parse/cache stages.
	runCtx := obs.Detach(r.Context())
	if !stream {
		val, err, shared := s.flights.Do(ev.key, func() (any, error) {
			// Only the leader — the request that actually evaluates —
			// counts a cache miss; followers surface in
			// attackd_singleflight_shared_total instead.
			s.metrics.cacheMisses.Add(1)
			return ev.run(runCtx, nil)
		})
		if shared {
			s.metrics.singleflightShared.Add(1)
		}
		if err != nil {
			s.writeError(w, r, endpoint, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, r, endpoint, http.StatusOK, ev.finish(val, false, shared, timings()))
		return
	}
	// Streaming: the 200 and headers commit before evaluation so the
	// first cell can flush the moment it lands.
	sw := s.startStream(w, endpoint)
	val, err, shared := s.flights.Do(ev.key, func() (any, error) {
		s.metrics.cacheMisses.Add(1)
		return ev.run(runCtx, func(line any) {
			s.metrics.streamCells.Add(1)
			sw.writeLine(line)
		})
	})
	if shared {
		s.metrics.singleflightShared.Add(1)
	}
	if err != nil {
		// The status is already committed; report in-band and end the
		// stream without a summary line.
		sw.writeLine(errorResponse{Error: err.Error()})
		return
	}
	if shared {
		// A concurrent identical evaluation was already in flight; its
		// cells went to the leader's stream, so replay the finished set
		// here in plan order.
		for _, line := range ev.cellsOf(val) {
			s.metrics.streamCells.Add(1)
			sw.writeLine(line)
		}
	}
	sw.writeLine(streamEnvelope{Summary: ev.summarize(val, false, shared, timings())})
}
