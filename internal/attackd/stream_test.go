package attackd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
)

// startNDJSON posts body to url with streaming negotiated via the
// Accept header and returns the live response.
func startNDJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status = %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	return resp
}

// drainNDJSON reads a whole stream, returning the raw cell lines
// (newline-trimmed) and the decoded summary terminator.
func drainNDJSON(t *testing.T, body io.Reader) ([][]byte, StreamSummary) {
	t.Helper()
	var cells [][]byte
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		// Cell lines always carry more than one top-level field (sim
		// cells even have their own "summary"); the terminator and the
		// in-band error envelope are single-key objects.
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(line, &fields); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if raw, ok := fields["error"]; ok && len(fields) == 1 {
			t.Fatalf("stream reported error: %s", raw)
		}
		if raw, ok := fields["summary"]; ok && len(fields) == 1 {
			var summary StreamSummary
			if err := json.Unmarshal(raw, &summary); err != nil {
				t.Fatalf("bad summary line %q: %v", line, err)
			}
			if sc.Scan() {
				t.Fatalf("data after summary line: %q", sc.Bytes())
			}
			return cells, summary
		}
		cells = append(cells, line)
	}
	t.Fatalf("stream ended without a summary line (read %d cells, err %v)", len(cells), sc.Err())
	return nil, StreamSummary{}
}

// sortByIndex orders raw cell lines by their "index" field (streams
// deliver completion order; buffered responses are plan order).
func sortByIndex(t *testing.T, lines [][]byte) {
	t.Helper()
	idx := func(line []byte) int {
		var c struct {
			Index int `json:"index"`
		}
		if err := json.Unmarshal(line, &c); err != nil {
			t.Fatalf("bad cell line %q: %v", line, err)
		}
		return c.Index
	}
	sort.Slice(lines, func(a, b int) bool { return idx(lines[a]) < idx(lines[b]) })
}

// sweep16Body is a 16-cell default-family grid.
func sweep16Body() map[string]any {
	return map[string]any{
		"c": "7", "delta": "7", "k": "1",
		"mu": "0.1,0.2,0.3,0.4", "d": "0.6,0.7,0.8,0.9", "nu": "0.1",
	}
}

// TestStreamFirstCellArrivesEarly is the streaming acceptance test: a
// 256-cell serial sweep must deliver its first NDJSON cell while the
// evaluation is still in flight — observed by reading one line off the
// live stream and then catching attackd_inflight_evaluations at 1 on
// /metrics before draining the rest.
func TestStreamFirstCellArrivesEarly(t *testing.T) {
	ts := newTestServer(t, Config{})
	mu := make([]string, 16)
	d := make([]string, 16)
	for i := range mu {
		mu[i] = fmt.Sprintf("%.2f", 0.05*float64(i+1))
		d[i] = fmt.Sprintf("%.2f", 0.05*float64(i+1))
	}
	body := map[string]any{
		// C = ∆ = 16 is 2601 states per cell — heavy enough that one
		// worker grinding the 256 cells serially leaves the evaluation in
		// flight for long after the first line lands, so the /metrics
		// probe below cannot race it.
		"c": "16", "delta": "16", "k": "1",
		"mu": strings.Join(mu, ","), "d": strings.Join(d, ","), "nu": "0.1",
		"workers": 1,
	}
	resp := startNDJSON(t, ts.URL+"/v1/sweep", body)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading first stream line: %v", err)
	}
	var cell SweepCellDTO
	if err := json.Unmarshal(first, &cell); err != nil {
		t.Fatalf("first line %q is not a cell: %v", first, err)
	}
	if cell.States == 0 {
		t.Fatalf("first cell is empty: %+v", cell)
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(metricsText), "attackd_inflight_evaluations 1") {
		t.Errorf("first cell arrived but the evaluation is not in flight:\n%s",
			metricsText)
	}
	cells, summary := drainNDJSON(t, br)
	if got := len(cells) + 1; got != 256 {
		t.Errorf("streamed %d cells, want 256", got)
	}
	if summary.Cells != 256 || summary.Evaluated != 256 || summary.Solver != "bicgstab" || summary.Cached {
		t.Errorf("summary = %+v", summary)
	}
}

// TestStreamMatchesBuffered: the streamed cell lines are byte-identical
// to the buffered endpoint's "cells" array, in both directions — a
// fresh stream populates the cache for a buffered hit, and a buffered
// evaluation's cached cells replay onto a later stream.
func TestStreamMatchesBuffered(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := sweep16Body()

	resp := startNDJSON(t, ts.URL+"/v1/sweep", body)
	lines, summary := drainNDJSON(t, resp.Body)
	resp.Body.Close()
	if len(lines) != 16 || summary.Cached || summary.Shared {
		t.Fatalf("fresh stream: %d cells, summary %+v", len(lines), summary)
	}
	sortByIndex(t, lines)

	// The buffered request must now hit the cache the stream populated.
	raw, _ := json.Marshal(body)
	hr, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var buffered struct {
		Cells  []json.RawMessage `json:"cells"`
		Cached bool              `json:"cached"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&buffered); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK || !buffered.Cached {
		t.Fatalf("buffered after stream: status=%d cached=%v, want 200/true", hr.StatusCode, buffered.Cached)
	}
	if len(buffered.Cells) != len(lines) {
		t.Fatalf("buffered %d cells, streamed %d", len(buffered.Cells), len(lines))
	}
	for i, line := range lines {
		if !bytes.Equal(line, bytes.TrimSpace(buffered.Cells[i])) {
			t.Fatalf("cell %d differs:\nstream:   %s\nbuffered: %s", i, line, buffered.Cells[i])
		}
	}

	// Reverse direction: a cached stream replays the same bytes, in plan
	// order, flagged cached.
	resp = startNDJSON(t, ts.URL+"/v1/sweep", body)
	replay, summary := drainNDJSON(t, resp.Body)
	resp.Body.Close()
	if !summary.Cached {
		t.Errorf("replayed stream summary not cached: %+v", summary)
	}
	for i, line := range replay {
		if !bytes.Equal(line, lines[i]) {
			t.Fatalf("replayed cell %d differs:\nreplay: %s\nfresh:  %s", i, line, lines[i])
		}
	}
}

// TestStreamQueryParam: ?stream=1 negotiates NDJSON without the Accept
// header.
func TestStreamQueryParam(t *testing.T) {
	ts := newTestServer(t, Config{})
	raw, _ := json.Marshal(sweep16Body())
	resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	cells, summary := drainNDJSON(t, resp.Body)
	if len(cells) != 16 || summary.Cells != 16 {
		t.Errorf("cells=%d summary=%+v", len(cells), summary)
	}
}

// TestStreamModelSweep: NDJSON on a named model family, same cache
// round-trip as the default family.
func TestStreamModelSweep(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := map[string]any{
		"model": "apt-compromise",
		"n":     "6", "theta": "0.5", "phi": "0.4", "rho": "0,0.2,0.4", "detect": "0.6,0.8",
	}
	resp := startNDJSON(t, ts.URL+"/v1/sweep", body)
	lines, summary := drainNDJSON(t, resp.Body)
	resp.Body.Close()
	if len(lines) != 6 || summary.Model != "apt-compromise" || summary.Cached {
		t.Fatalf("model stream: %d cells, summary %+v", len(lines), summary)
	}
	sortByIndex(t, lines)
	raw, _ := json.Marshal(body)
	hr, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var buffered struct {
		Cells  []json.RawMessage `json:"cells"`
		Cached bool              `json:"cached"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&buffered); err != nil {
		t.Fatal(err)
	}
	if !buffered.Cached {
		t.Fatalf("buffered model sweep after stream not cached")
	}
	for i, line := range lines {
		if !bytes.Equal(line, bytes.TrimSpace(buffered.Cells[i])) {
			t.Fatalf("model cell %d differs:\nstream:   %s\nbuffered: %s", i, line, buffered.Cells[i])
		}
	}
}

// TestStreamSimSweep: NDJSON on /v1/simsweep matches its buffered
// response cell for cell.
func TestStreamSimSweep(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := map[string]any{
		"mu": "0.2,0.4", "d": "0.9", "sizes": "64,128",
		"events": 200, "replicas": 2, "seed": 7,
	}
	resp := startNDJSON(t, ts.URL+"/v1/simsweep", body)
	lines, summary := drainNDJSON(t, resp.Body)
	resp.Body.Close()
	if len(lines) != 4 || summary.Cells != 4 || summary.Replicas != 2 || summary.Events <= 0 {
		t.Fatalf("sim stream: %d cells, summary %+v", len(lines), summary)
	}
	sortByIndex(t, lines)
	raw, _ := json.Marshal(body)
	hr, err := http.Post(ts.URL+"/v1/simsweep", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var buffered struct {
		Cells  []json.RawMessage `json:"cells"`
		Cached bool              `json:"cached"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&buffered); err != nil {
		t.Fatal(err)
	}
	if !buffered.Cached {
		t.Fatal("buffered simsweep after stream not cached")
	}
	for i, line := range lines {
		if !bytes.Equal(line, bytes.TrimSpace(buffered.Cells[i])) {
			t.Fatalf("sim cell %d differs:\nstream:   %s\nbuffered: %s", i, line, buffered.Cells[i])
		}
	}
}
