// Package attackd is the HTTP serving layer over the targeted-attack
// analytics: a JSON API that answers single-cell analyses (/v1/analyze),
// whole parameter grids (/v1/sweep) and simulation-sweep grids of
// whole-system overlay runs (/v1/simsweep) from one warm process.
//
// Three layers keep repeated traffic cheap: a size-bounded LRU cache
// keyed by canonical request parameters, singleflight deduplication so
// concurrent identical requests share one evaluation, and the sweep
// evaluator's own structural amortization underneath. Simulation sweeps
// always run hash-derived fast identities and are bounded by a cell
// limit and a cells×replicas×events budget; their responses carry no
// wall-clock fields, so cached replies are byte-identical to fresh ones.
//
// Grid endpoints deliver three ways from one pipeline: buffered JSON,
// NDJSON streaming (Accept: application/x-ndjson or ?stream=1 — one
// cell line as each cell completes, then a {"summary":{...}} line; see
// stream.go for the protocol), and async jobs (POST /v1/jobs submits
// any sweep/simsweep body, GET /v1/jobs/{id} polls cell-level progress,
// /result fetches or streams the finished response, DELETE cancels;
// see jobs.go). All three share the cache and singleflight, so a
// streamed or job-run grid warms the same entries a buffered request
// would. Requests may override tol, max_iter and workers per call;
// tol and max_iter enter the cache key, workers deliberately does not
// (results are bit-identical at any pool width).
//
// /healthz and /metrics (Prometheus text format) expose liveness,
// request counts, cache hit rates (leader-only misses, with
// singleflight followers counted separately), in-flight evaluations,
// streamed cells, job states and simulated event totals.
//
// Observability rides internal/obs: every request runs inside a trace
// (inbound W3C traceparent adopted and echoed, fresh crypto/rand IDs
// otherwise), handlers open per-stage spans, and after each response
// the middleware feeds the request- and stage-latency histograms on
// /metrics and emits a structured log line — at warn level with the
// full span tree when the request exceeded Config.SlowRequest. Any
// analysis or sweep body may opt into a "timings" response breakdown
// with "timings": true; breakdowns are attached at delivery time so
// cached values stay byte-identical.
package attackd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	// Registers the built-in second model family (APT compromise chain)
	// so every server instance can serve it by name.
	_ "targetedattacks/internal/aptchain"
	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/obs"
	"targetedattacks/internal/sweep"
)

// Config parameterizes a Server.
type Config struct {
	// Pool fans sweep cells (and the row-parallel matrix construction)
	// across workers; nil uses a per-CPU pool.
	Pool *engine.Pool
	// Solver is the analytic backend of every evaluation; the zero value
	// picks the sparse BiCGSTAB path, which keeps large C/∆ requests
	// affordable in a serving context.
	Solver matrix.SolverConfig
	// CacheSize bounds the LRU result cache in entries; 0 picks
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// MaxCells bounds the grid size a single /v1/sweep request may ask
	// for; 0 picks DefaultMaxCells.
	MaxCells int
	// MaxStates bounds |Ω| per cell, rejecting accidental C=∆=500
	// requests that would pin the process; 0 picks DefaultMaxStates.
	MaxStates int
	// MaxSojourns bounds the per-request sojourn count (each sojourn
	// costs one batched block solve and two result slots); 0 picks
	// DefaultMaxSojourns.
	MaxSojourns int
	// MaxSimCells bounds the grid size a single /v1/simsweep request may
	// ask for; 0 picks DefaultMaxSimCells.
	MaxSimCells int
	// MaxSimEventBudget bounds a /v1/simsweep request's total simulated
	// events (cells × replicas × events); 0 picks
	// DefaultMaxSimEventBudget.
	MaxSimEventBudget int64
	// MaxJobs bounds the async job store in entries (running plus
	// retained finished jobs); 0 picks DefaultMaxJobs, negative disables
	// the job API (submissions are rejected).
	MaxJobs int
	// JobTTL is how long a finished job's result stays pollable before
	// eviction; 0 picks DefaultJobTTL.
	JobTTL time.Duration
	// Logger receives the server's structured logs (per-request debug
	// lines, slow-request warnings, job completions); nil uses
	// slog.Default(). Wrap it with obs.NewLogger to get trace IDs
	// stamped on every record.
	Logger *slog.Logger
	// SlowRequest is the latency beyond which a completed request logs
	// its span tree at Warn level; 0 picks DefaultSlowRequest, negative
	// disables slow-request logging.
	SlowRequest time.Duration
}

// Serving defaults.
const (
	DefaultCacheSize   = 4096
	DefaultMaxCells    = 4096
	DefaultMaxStates   = 200_000
	DefaultMaxSojourns = 1024
	// DefaultMaxJobs bounds the async job store; DefaultJobTTL is how
	// long finished jobs stay pollable.
	DefaultMaxJobs = 64
	DefaultJobTTL  = 15 * time.Minute
	// DefaultSlowRequest is the slow-request log threshold: long enough
	// that routine traffic stays quiet, short enough to catch a
	// colossal sweep monopolizing the process.
	DefaultSlowRequest = time.Second
	// maxRequestWorkers bounds the per-request "workers" override: wide
	// enough for any real machine, small enough that a request cannot ask
	// for a million goroutines.
	maxRequestWorkers = 256
	// maxRequestIter bounds the per-request "max_iter" override.
	maxRequestIter = 10_000_000
	// minRequestTol floors the per-request "tol" override: a tolerance
	// below float64 round-off can never converge and would burn the whole
	// iteration cap on every solve.
	minRequestTol = 1e-15
	// maxBodyBytes bounds a request body before JSON decoding — the
	// first allocation gate an untrusted request hits; axis and grid
	// limits apply after parsing. 1 MiB fits any legal request with
	// room to spare.
	maxBodyBytes = 1 << 20
	// maxCacheWeight bounds the cache's total retained result size,
	// measured in result floats (a sweep entry holds roughly
	// cells × (2·sojourns + const) of them): 4M floats ≈ 32 MiB of
	// payload however the entry count divides it.
	maxCacheWeight = 4 << 20
)

// analysisWeight approximates the retained size of one cell's analysis
// in floats.
func analysisWeight(sojourns int) int64 {
	return int64(sojourns)*2 + 16
}

// Server answers the attackd HTTP API. Create one with New and mount
// Handler on an http.Server.
type Server struct {
	pool              *engine.Pool
	solver            matrix.SolverConfig
	maxCells          int
	maxStates         int
	maxSojourns       int
	maxSimCells       int
	maxSimEventBudget int64
	cache             *lru
	flights           *flightGroup
	metrics           *metrics
	jobs              *jobStore
	mux               *http.ServeMux
	logger            *slog.Logger
	slowReq           time.Duration
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	solver := cfg.Solver
	if solver.Kind == "" {
		solver.Kind = "bicgstab"
	}
	if _, err := solver.Build(); err != nil {
		return nil, fmt.Errorf("attackd: %w", err)
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	maxCells := cfg.MaxCells
	if maxCells == 0 {
		maxCells = DefaultMaxCells
	}
	maxStates := cfg.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	maxSojourns := cfg.MaxSojourns
	if maxSojourns == 0 {
		maxSojourns = DefaultMaxSojourns
	}
	maxSimCells := cfg.MaxSimCells
	if maxSimCells == 0 {
		maxSimCells = DefaultMaxSimCells
	}
	maxSimEventBudget := cfg.MaxSimEventBudget
	if maxSimEventBudget == 0 {
		maxSimEventBudget = DefaultMaxSimEventBudget
	}
	maxJobs := cfg.MaxJobs
	if maxJobs == 0 {
		maxJobs = DefaultMaxJobs
	}
	jobTTL := cfg.JobTTL
	if jobTTL == 0 {
		jobTTL = DefaultJobTTL
	}
	pool := cfg.Pool
	if pool == nil {
		pool = engine.New(0) // per-CPU, as the Config doc promises
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	slowReq := cfg.SlowRequest
	if slowReq == 0 {
		slowReq = DefaultSlowRequest
	}
	s := &Server{
		pool:              pool,
		solver:            solver,
		maxCells:          maxCells,
		maxStates:         maxStates,
		maxSojourns:       maxSojourns,
		maxSimCells:       maxSimCells,
		maxSimEventBudget: maxSimEventBudget,
		cache:             newLRU(cacheSize, maxCacheWeight),
		flights:           newFlightGroup(),
		metrics:           newMetrics(),
		jobs:              newJobStore(maxJobs, jobTTL),
		mux:               http.NewServeMux(),
		logger:            logger,
		slowReq:           slowReq,
	}
	s.mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/simsweep", s.handleSimSweep)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the root HTTP handler: the API mux wrapped in the
// observability middleware (trace ingest/propagation, latency
// histograms, per-request and slow-request logs).
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// instrument wraps next with the per-request observability envelope:
// it ingests (or mints) the W3C traceparent, opens the root "request"
// span, echoes the traceparent back so clients can correlate, and —
// once the handler returns — feeds the request-duration and
// per-stage histograms and emits the request log (Warn with the full
// span tree past the slow threshold, Debug otherwise).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.Header.Get("traceparent"))
		ctx := obs.ContextWithTrace(r.Context(), tr)
		root, ctx := obs.StartSpan(ctx, "request")
		w.Header().Set("traceparent", tr.Traceparent(root))
		endpoint := normalizeEndpoint(r.URL.Path)

		next.ServeHTTP(w, r.WithContext(ctx))

		root.End()
		total := tr.Elapsed()
		s.metrics.observeRequest(endpoint, total.Seconds())
		s.metrics.observeStages(tr.Stages(), "request")

		if s.slowReq > 0 && total >= s.slowReq {
			s.logger.LogAttrs(ctx, slog.LevelWarn, "slow request",
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.Duration("duration", total),
				slog.String("spans", tr.SpanTree()))
		} else {
			s.logger.LogAttrs(ctx, slog.LevelDebug, "request",
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.Duration("duration", total))
		}
	})
}

// normalizeEndpoint maps a request path to its histogram label,
// collapsing per-job paths so IDs cannot explode the label set.
func normalizeEndpoint(path string) string {
	switch path {
	case "/v1/analyze", "/v1/sweep", "/v1/simsweep", "/v1/jobs", "/healthz", "/metrics":
		return path
	}
	if strings.HasPrefix(path, "/v1/jobs/") {
		return "/v1/jobs/{id}"
	}
	return "other"
}

// TimingsDTO is the opt-in per-request timing breakdown attached to
// responses when the request sets "timings": true. StagesMS aggregates
// span durations by stage; with a parallel pool the build/solve stages
// sum lane CPU time, so with workers=1 the stages partition the wall
// clock. TotalMS is the trace's elapsed time when the response was
// assembled (encoding and write happen after, so the request-duration
// histogram observation is slightly larger).
type TimingsDTO struct {
	TraceID     string             `json:"trace_id"`
	TotalMS     float64            `json:"total_ms"`
	StagesMS    map[string]float64 `json:"stages_ms"`
	StageCounts map[string]int     `json:"stage_counts,omitempty"`
}

// timingsFromTrace snapshots tr into a wire DTO; nil for a nil trace.
func timingsFromTrace(tr *obs.Trace) *TimingsDTO {
	if tr == nil {
		return nil
	}
	dto := &TimingsDTO{
		TraceID:     tr.TraceID(),
		TotalMS:     float64(tr.Elapsed()) / float64(time.Millisecond),
		StagesMS:    make(map[string]float64),
		StageCounts: make(map[string]int),
	}
	for stage, st := range tr.Stages() {
		// The root stages ("request" on the sync path, "job" on the async
		// one) span everything else; keeping them out lets stages_ms sum
		// to roughly total_ms.
		if stage == "request" || stage == "job" {
			continue
		}
		dto.StagesMS[stage] = float64(st.Duration) / float64(time.Millisecond)
		dto.StageCounts[stage] = st.Count
	}
	return dto
}

// CellRequest is the /v1/analyze request body: one model cell. The
// parameter fields c..nu belong to the default targeted-attack family;
// other families read their own parameters from the same body (see
// Model).
type CellRequest struct {
	C            int     `json:"c"`
	Delta        int     `json:"delta"`
	K            int     `json:"k"`
	Mu           float64 `json:"mu"`
	D            float64 `json:"d"`
	Nu           float64 `json:"nu"`
	Distribution string  `json:"distribution,omitempty"` // "delta" (default) or "beta"
	Sojourns     int     `json:"sojourns,omitempty"`     // default 1
	// Solver overrides the server's backend for this request (one of
	// matrix.SolverKinds; "" keeps the server default).
	Solver string `json:"solver,omitempty"`
	// Tol overrides the iterative solver's residual tolerance for this
	// request (0 keeps the server default). It folds into the canonical
	// cache key, so requests at different tolerances never share results.
	Tol float64 `json:"tol,omitempty"`
	// MaxIter overrides the iterative solver's iteration cap (0 keeps
	// the server default); part of the cache key like Tol.
	MaxIter int `json:"max_iter,omitempty"`
	// Workers overrides the evaluation pool width for this request (0
	// keeps the server pool). Results are bit-identical for any width,
	// so Workers deliberately stays out of the cache key.
	Workers int `json:"workers,omitempty"`
	// Model selects the registered model family ("" means
	// "targeted-attack", the paper model). Unknown names are a client
	// error listing the registered families.
	Model string `json:"model,omitempty"`
	// Timings asks for a per-stage timing breakdown in the response;
	// timings never enter the cache (a cached reply carries the current
	// request's parse/cache stages, not the original evaluation's).
	Timings bool `json:"timings,omitempty"`
}

// SweepRequest is the /v1/sweep request body: one axis expression per
// parameter (list "0.1,0.2" or range "0.5:0.9:0.1" syntax).
type SweepRequest struct {
	C            string `json:"c"`
	Delta        string `json:"delta"`
	K            string `json:"k"`
	Mu           string `json:"mu"`
	D            string `json:"d"`
	Nu           string `json:"nu"`
	Distribution string `json:"distribution,omitempty"`
	Sojourns     int    `json:"sojourns,omitempty"`
	// Solver, Tol, MaxIter and Workers override the server's backend,
	// tolerances and pool width for this request, as in CellRequest.
	Solver  string  `json:"solver,omitempty"`
	Tol     float64 `json:"tol,omitempty"`
	MaxIter int     `json:"max_iter,omitempty"`
	Workers int     `json:"workers,omitempty"`
	// Model selects the registered model family, as in CellRequest;
	// other families declare their own axis fields in the same body.
	Model string `json:"model,omitempty"`
	// Timings asks for a per-stage timing breakdown, as in CellRequest.
	Timings bool `json:"timings,omitempty"`
}

// AnalysisDTO is the wire form of a core.Analysis.
type AnalysisDTO struct {
	ExpectedSafeTime     float64            `json:"expected_safe_time"`
	ExpectedPollutedTime float64            `json:"expected_polluted_time"`
	SafeSojourns         []float64          `json:"safe_sojourns"`
	PollutedSojourns     []float64          `json:"polluted_sojourns"`
	Absorption           map[string]float64 `json:"absorption"`
	PollutionProbability float64            `json:"pollution_probability"`
}

// AnalyzeResponse is the /v1/analyze response body.
type AnalyzeResponse struct {
	Params   ParamsDTO   `json:"params"`
	States   int         `json:"states"`
	Solver   string      `json:"solver"`
	Analysis AnalysisDTO `json:"analysis"`
	// Cached reports the response was served from the LRU cache; Shared
	// that it piggybacked on an identical concurrent evaluation
	// (singleflight follower) without computing or hitting the cache.
	Cached bool `json:"cached"`
	Shared bool `json:"shared,omitempty"`
	// Timings is the opt-in per-stage breakdown (see TimingsDTO); it is
	// attached per response, never cached.
	Timings *TimingsDTO `json:"timings,omitempty"`
}

// ParamsDTO is the wire form of core.Params plus the analysis options.
type ParamsDTO struct {
	C            int     `json:"c"`
	Delta        int     `json:"delta"`
	K            int     `json:"k"`
	Mu           float64 `json:"mu"`
	D            float64 `json:"d"`
	Nu           float64 `json:"nu"`
	Distribution string  `json:"distribution"`
	Sojourns     int     `json:"sojourns"`
}

// SweepCellDTO is one cell of a /v1/sweep response.
type SweepCellDTO struct {
	Index      int         `json:"index"`
	Params     ParamsDTO   `json:"params"`
	States     int         `json:"states"`
	Transient  int         `json:"transient"`
	Rule1Fires int         `json:"rule1_fires"`
	Shared     bool        `json:"shared"`
	Iterations int64       `json:"iterations,omitempty"`
	Analysis   AnalysisDTO `json:"analysis"`
}

// SweepResponse is the /v1/sweep response body.
type SweepResponse struct {
	Cells     []SweepCellDTO `json:"cells"`
	Groups    int            `json:"groups"`
	Evaluated int            `json:"evaluated"`
	// Iterations totals the evaluation's iterative-solver work across
	// all cells (0 for the dense backend and for cache hits of dense
	// evaluations).
	Iterations int64  `json:"iterations,omitempty"`
	Solver     string `json:"solver"`
	Cached     bool   `json:"cached"`
	// Shared reports a singleflight-follower response, as in
	// AnalyzeResponse (per-cell "shared" means ν-dedup, a different
	// notion).
	Shared bool `json:"shared,omitempty"`
	// Timings is the opt-in per-stage breakdown, attached per response
	// and never cached.
	Timings *TimingsDTO `json:"timings,omitempty"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, "/healthz", http.MethodGet) {
		return
	}
	s.writeJSON(w, r, "/healthz", http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, "/metrics", http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.metrics.write(w)
	s.metrics.request("/metrics", http.StatusOK)
}

// requireMethod enforces one HTTP method per endpoint: anything else is
// a 405 carrying the required Allow header (RFC 9110 §15.5.6).
func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, endpoint, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	s.writeError(w, r, endpoint, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
	return false
}

// readBody drains the request body under the server's size cap. An
// oversized body is the client's error in the 413 sense — distinguish
// http.MaxBytesReader's sentinel from plain read failures (400).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, endpoint string) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, r, endpoint, code, fmt.Errorf("reading request: %w", err))
		return nil, false
	}
	return body, true
}

// parseDistribution maps the wire name to the model's enum.
func parseDistribution(name string) (core.InitialDistribution, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "delta", "δ":
		return core.DistributionDelta, nil
	case "beta", "β":
		return core.DistributionBeta, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q (want \"delta\" or \"beta\")", name)
	}
}

// requestSolver resolves the per-request solver overrides: zero values
// keep the server's configured backend, tolerance and iteration cap;
// anything else replaces that field after validation. Kind, tol and
// max_iter are all part of the canonical cache key (via the resulting
// SolverConfig), so overridden requests never share cached results with
// differently-configured ones.
func (s *Server) requestSolver(kind string, tol float64, maxIter int) (matrix.SolverConfig, error) {
	sc := s.solver
	kind = strings.ToLower(strings.TrimSpace(kind))
	if kind != "" {
		sc.Kind = kind
		if _, err := sc.Build(); err != nil {
			return sc, fmt.Errorf("solver %q: one of %s required", kind, strings.Join(matrix.SolverKinds(), ", "))
		}
	}
	if tol != 0 {
		if math.IsNaN(tol) || tol < minRequestTol || tol > 0.5 {
			return sc, fmt.Errorf("tol %g: must be in [%g, 0.5]", tol, minRequestTol)
		}
		sc.Tol = tol
	}
	if maxIter != 0 {
		if maxIter < 1 || maxIter > maxRequestIter {
			return sc, fmt.Errorf("max_iter %d: must be in [1, %d]", maxIter, maxRequestIter)
		}
		sc.MaxIter = maxIter
	}
	return sc, nil
}

// requestPool resolves the per-request worker override: 0 keeps the
// server's shared pool, anything else gets a pool of exactly that width
// (pools are a pair of ints — creating one per request is free). The
// evaluators are bit-identical for any pool width, so the override never
// enters a cache key.
func (s *Server) requestPool(workers int) (*engine.Pool, error) {
	if workers == 0 {
		return s.pool, nil
	}
	if workers < 0 || workers > maxRequestWorkers {
		return nil, fmt.Errorf("workers %d: must be in [1, %d]", workers, maxRequestWorkers)
	}
	return engine.New(workers), nil
}

// resolveFamily maps the wire model name to a registered family; the
// empty name selects the default (paper) family. Unknown names are a
// client error listing the registry, mirroring the solver override.
func resolveFamily(name string) (chainmodel.Family, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	fam, ok := chainmodel.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("model %q: one of %s required", name, strings.Join(chainmodel.Names(), ", "))
	}
	return fam, nil
}

// canonicalCellKey is the canonical cache/singleflight key of one cell
// request: strconv formats are exact for float64, so two requests with
// byte-different but value-equal JSON (e.g. 0.50 vs 0.5) share a key.
// The model name leads the key, so no two families can collide.
func canonicalCellKey(p core.Params, dist core.InitialDistribution, sojourns int, solver matrix.SolverConfig) string {
	return fmt.Sprintf("cell|m=%s|C=%d|D=%d|K=%d|mu=%s|d=%s|nu=%s|a=%d|n=%d|s=%s|tol=%s|it=%d",
		chainmodel.DefaultFamily,
		p.C, p.Delta, p.K,
		strconv.FormatFloat(p.Mu, 'x', -1, 64),
		strconv.FormatFloat(p.D, 'x', -1, 64),
		strconv.FormatFloat(p.Nu, 'x', -1, 64),
		int(dist), sojourns, solver.Kind,
		strconv.FormatFloat(solver.Tol, 'x', -1, 64), solver.MaxIter)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/analyze"
	if !s.requireMethod(w, r, endpoint, http.MethodPost) {
		return
	}
	parseSpan, _ := obs.StartSpan(r.Context(), "parse")
	body, ok := s.readBody(w, r, endpoint)
	if !ok {
		parseSpan.End()
		return
	}
	var req CellRequest
	err := json.Unmarshal(body, &req)
	parseSpan.End()
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	fam, err := resolveFamily(req.Model)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	if fam.Name() != chainmodel.DefaultFamily {
		// Non-default families go through the model-agnostic path; the
		// family reads its own parameters from the raw body.
		s.handleModelAnalyze(w, r, endpoint, fam, body, req)
		return
	}
	p := core.Params{C: req.C, Delta: req.Delta, K: req.K, Mu: req.Mu, D: req.D, Nu: req.Nu}
	if err := p.Validate(); err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	if err := s.checkGeometry(p.C, p.Delta); err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	dist, err := parseDistribution(req.Distribution)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	sojourns := req.Sojourns
	if sojourns < 1 {
		sojourns = 1
	}
	if sojourns > s.maxSojourns {
		s.writeError(w, r, endpoint, http.StatusBadRequest,
			fmt.Errorf("sojourns %d exceeds the server limit %d", sojourns, s.maxSojourns))
		return
	}
	solver, err := s.requestSolver(req.Solver, req.Tol, req.MaxIter)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	pool, err := s.requestPool(req.Workers)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	key := canonicalCellKey(p, dist, sojourns, solver)
	tr := obs.TraceFromContext(r.Context())
	cacheSpan, _ := obs.StartSpan(r.Context(), "cache")
	cached, hit := s.cache.Get(key)
	cacheSpan.End()
	if hit {
		s.metrics.cacheHits.Add(1)
		resp := cached.(AnalyzeResponse)
		resp.Cached = true
		if req.Timings {
			resp.Timings = timingsFromTrace(tr)
		}
		s.writeJSON(w, r, endpoint, http.StatusOK, resp)
		return
	}
	// The cache miss is counted inside the flight, so only the leader —
	// the request that actually evaluates — records one. Followers are
	// neither hits nor misses; they surface in
	// attackd_singleflight_shared_total instead.
	ctx := r.Context()
	val, err, shared := s.flights.Do(key, func() (any, error) {
		s.metrics.cacheMisses.Add(1)
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		s.metrics.evaluation(chainmodel.DefaultFamily)
		// The leader's trace observes the fine build decomposition
		// (space, kernel, matrix) plus the solve; followers only carry
		// their own parse/cache stages.
		buildOpts := []core.BuildOption{core.WithBuildPool(pool)}
		if ltr := obs.TraceFromContext(ctx); ltr != nil {
			buildOpts = append(buildOpts, core.WithObserver(ltr))
		}
		m, err := core.NewWithSolver(p, solver, buildOpts...)
		if err != nil {
			return nil, err
		}
		solveSpan, _ := obs.StartSpan(ctx, "solve")
		a, err := m.AnalyzeNamed(dist, sojourns)
		if err != nil {
			solveSpan.End()
			return nil, err
		}
		solveSpan.SetAttr("backend", a.Solver.Backend)
		solveSpan.SetAttrInt("iterations", a.Solver.Iterations)
		solveSpan.End()
		s.metrics.solve(a.Solver)
		resp := AnalyzeResponse{
			Params:   paramsDTO(p, dist, sojourns),
			States:   m.Space().Size(),
			Solver:   solver.Kind,
			Analysis: analysisDTO(a),
		}
		s.cache.Put(key, resp, analysisWeight(sojourns))
		return resp, nil
	})
	if shared {
		s.metrics.singleflightShared.Add(1)
	}
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusInternalServerError, err)
		return
	}
	resp := val.(AnalyzeResponse)
	resp.Shared = shared
	if req.Timings {
		resp.Timings = timingsFromTrace(tr)
	}
	s.writeJSON(w, r, endpoint, http.StatusOK, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/sweep"
	if !s.requireMethod(w, r, endpoint, http.MethodPost) {
		return
	}
	parseSpan, _ := obs.StartSpan(r.Context(), "parse")
	body, ok := s.readBody(w, r, endpoint)
	if !ok {
		parseSpan.End()
		return
	}
	ev, err := s.sweepEvaluationFromBody(body)
	parseSpan.End()
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	s.serveEvaluation(w, r, endpoint, ev, wantsStream(r))
}

// sweepEvaluationFromBody parses, bounds and prepares a /v1/sweep body
// (default or named model family) into a runnable evaluation. Every
// error is the client's.
func (s *Server) sweepEvaluationFromBody(body []byte) (*evaluation, error) {
	var req SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	fam, err := resolveFamily(req.Model)
	if err != nil {
		return nil, err
	}
	solver, err := s.requestSolver(req.Solver, req.Tol, req.MaxIter)
	if err != nil {
		return nil, err
	}
	pool, err := s.requestPool(req.Workers)
	if err != nil {
		return nil, err
	}
	if fam.Name() != chainmodel.DefaultFamily {
		return s.modelSweepEvaluation(fam, body, req, solver, pool)
	}
	plan, err := s.planFromRequest(req)
	if err != nil {
		return nil, err
	}
	ev := s.sweepEvaluation(plan, solver, pool)
	ev.timings = req.Timings
	return ev, nil
}

// sweepEvaluation prepares a default-family grid evaluation: run
// computes (and caches) a SweepResponse, streaming each cell's DTO in
// completion order when onCell is set.
func (s *Server) sweepEvaluation(plan sweep.Plan, solver matrix.SolverConfig, pool *engine.Pool) *evaluation {
	ev := &evaluation{
		kind:   "sweep",
		model:  chainmodel.DefaultFamily,
		key:    canonicalPlanKey(plan, solver),
		cells:  plan.Size(),
		solver: solver.Kind,
	}
	ev.run = func(ctx context.Context, onCell func(any)) (any, error) {
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		s.metrics.evaluation(chainmodel.DefaultFamily)
		var cb func(sweep.CellResult)
		if onCell != nil {
			cb = func(cr sweep.CellResult) { onCell(sweepCellDTO(cr, plan)) }
		}
		// Warm starting is always on: serving-grid lanes chain
		// neighboring cells' solves, and the results stay worker-count
		// independent.
		rs, err := sweep.Evaluate(ctx, plan, sweep.Options{
			Pool:      pool,
			BuildPool: pool,
			Solver:    solver,
			WarmStart: true,
			OnCell:    cb,
		})
		if err != nil {
			return nil, err
		}
		resp := SweepResponse{
			Cells:      make([]SweepCellDTO, len(rs.Cells)),
			Groups:     rs.Groups,
			Evaluated:  rs.Evaluated,
			Iterations: rs.Iterations,
			Solver:     solver.Kind,
		}
		for i, cell := range rs.Cells {
			resp.Cells[i] = sweepCellDTO(cell, plan)
			if !cell.Shared {
				s.metrics.solve(cell.Analysis.Solver)
			}
		}
		s.cache.Put(ev.key, resp, int64(len(rs.Cells))*analysisWeight(plan.Sojourns))
		return resp, nil
	}
	ev.cellsOf = func(val any) []any {
		resp := val.(SweepResponse)
		out := make([]any, len(resp.Cells))
		for i, c := range resp.Cells {
			out[i] = c
		}
		return out
	}
	ev.finish = func(val any, cached, shared bool, tm *TimingsDTO) any {
		resp := val.(SweepResponse)
		resp.Cached, resp.Shared = cached, shared
		resp.Timings = tm
		return resp
	}
	ev.summarize = func(val any, cached, shared bool, tm *TimingsDTO) StreamSummary {
		resp := val.(SweepResponse)
		return StreamSummary{
			Cells:      len(resp.Cells),
			Groups:     resp.Groups,
			Evaluated:  resp.Evaluated,
			Iterations: resp.Iterations,
			Solver:     resp.Solver,
			Cached:     cached,
			Shared:     shared,
			Timings:    tm,
		}
	}
	return ev
}

// sweepCellDTO is the wire form of one evaluated cell. It is shared by
// the buffered response and the NDJSON stream, so a streamed line is
// byte-identical to the same cell in a buffered "cells" array.
func sweepCellDTO(cell sweep.CellResult, plan sweep.Plan) SweepCellDTO {
	return SweepCellDTO{
		Index:      cell.Index,
		Params:     paramsDTO(cell.Params, plan.Dist, plan.Sojourns),
		States:     cell.States,
		Transient:  cell.Transient,
		Rule1Fires: cell.Rule1Fires,
		Shared:     cell.Shared,
		Iterations: cell.Iterations,
		Analysis:   analysisDTO(cell.Analysis),
	}
}

// planFromRequest parses and bounds a sweep request.
func (s *Server) planFromRequest(req SweepRequest) (sweep.Plan, error) {
	var plan sweep.Plan
	var err error
	if plan.C, err = ParseIntsOrDefault(req.C, nil); err != nil {
		return plan, fmt.Errorf("axis c: %w", err)
	}
	if plan.Delta, err = ParseIntsOrDefault(req.Delta, nil); err != nil {
		return plan, fmt.Errorf("axis delta: %w", err)
	}
	if plan.K, err = ParseIntsOrDefault(req.K, nil); err != nil {
		return plan, fmt.Errorf("axis k: %w", err)
	}
	if plan.Mu, err = ParseFloatsOrDefault(req.Mu, nil); err != nil {
		return plan, fmt.Errorf("axis mu: %w", err)
	}
	if plan.D, err = ParseFloatsOrDefault(req.D, nil); err != nil {
		return plan, fmt.Errorf("axis d: %w", err)
	}
	if plan.Nu, err = ParseFloatsOrDefault(req.Nu, []float64{0.1}); err != nil {
		return plan, fmt.Errorf("axis nu: %w", err)
	}
	if plan.Dist, err = parseDistribution(req.Distribution); err != nil {
		return plan, err
	}
	plan.Sojourns = req.Sojourns
	if plan.Sojourns < 1 {
		plan.Sojourns = 1
	}
	if plan.Sojourns > s.maxSojourns {
		return plan, fmt.Errorf("sojourns %d exceeds the server limit %d", plan.Sojourns, s.maxSojourns)
	}
	if n := plan.Size(); n > s.maxCells {
		return plan, fmt.Errorf("grid has %d cells, server limit is %d", n, s.maxCells)
	}
	for _, c := range plan.C {
		for _, delta := range plan.Delta {
			if err := s.checkGeometry(c, delta); err != nil {
				return plan, err
			}
		}
	}
	if err := plan.Validate(); err != nil {
		return plan, err
	}
	return plan, nil
}

// checkGeometry bounds |Ω|. C and ∆ are each capped by the state limit
// first (|Ω| is at least C+1 and at least (∆+1)(∆+2)/2), and the
// closed-form count itself is evaluated in saturating int64 arithmetic —
// on 32-bit platforms the product overflows int long before the
// pre-caps catch it, which used to let absurd geometries wrap around
// the limit.
func (s *Server) checkGeometry(c, delta int) error {
	if c > s.maxStates || delta > s.maxStates {
		return fmt.Errorf("C=%d ∆=%d exceeds the server's %d-state limit", c, delta, s.maxStates)
	}
	if states := stateCount(core.Params{C: c, Delta: delta}); states > int64(s.maxStates) {
		return fmt.Errorf("C=%d ∆=%d has %d states, server limit is %d", c, delta, states, s.maxStates)
	}
	return nil
}

// ParseIntsOrDefault parses an integer axis, with a default for empty
// expressions (nil default makes the axis required).
func ParseIntsOrDefault(expr string, def []int) ([]int, error) {
	if strings.TrimSpace(expr) == "" {
		if def != nil {
			return def, nil
		}
		return nil, fmt.Errorf("axis is required")
	}
	return sweep.ParseInts(expr)
}

// ParseFloatsOrDefault is the float counterpart of ParseIntsOrDefault.
func ParseFloatsOrDefault(expr string, def []float64) ([]float64, error) {
	if strings.TrimSpace(expr) == "" {
		if def != nil {
			return def, nil
		}
		return nil, fmt.Errorf("axis is required")
	}
	return sweep.ParseFloats(expr)
}

// canonicalPlanKey canonicalizes a sweep plan for caching. As in
// canonicalCellKey, the model name leads the key.
func canonicalPlanKey(plan sweep.Plan, solver matrix.SolverConfig) string {
	var b strings.Builder
	b.WriteString("sweep|m=" + chainmodel.DefaultFamily)
	writeInts := func(tag string, vs []int) {
		b.WriteString("|" + tag + "=")
		for i, v := range vs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(v))
		}
	}
	writeFloats := func(tag string, vs []float64) {
		b.WriteString("|" + tag + "=")
		for i, v := range vs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
		}
	}
	writeInts("C", plan.C)
	writeInts("D", plan.Delta)
	writeInts("K", plan.K)
	writeFloats("mu", plan.Mu)
	writeFloats("d", plan.D)
	writeFloats("nu", plan.Nu)
	fmt.Fprintf(&b, "|a=%d|n=%d|s=%s|tol=%s|it=%d",
		int(plan.Dist), plan.Sojourns, solver.Kind,
		strconv.FormatFloat(solver.Tol, 'x', -1, 64), solver.MaxIter)
	return b.String()
}

// stateCount is |Ω| = (C+1)(∆+1)(∆+2)/2 without enumerating the space,
// computed in int64 and saturating at MaxInt64: the product overflows
// 32-bit int already for C = ∆ ≈ 1600, well inside the default
// 200 000-state limit's pre-caps on 32-bit platforms.
func stateCount(p core.Params) int64 {
	c, d := int64(p.C)+1, int64(p.Delta)+1
	if c < 1 || d < 1 {
		// Degenerate geometry; parameter validation rejects it with a
		// better message than a count could.
		return 0
	}
	// d(d+1)/2 overflows int64 only past d ≈ 4.3e9; the cap below keeps
	// the triangular number itself exact.
	const maxTriangular = 3_037_000_498 // floor(sqrt(MaxInt64)) - 1
	if d > maxTriangular {
		return math.MaxInt64
	}
	tri := d * (d + 1) / 2
	if c > math.MaxInt64/tri {
		return math.MaxInt64
	}
	return c * tri
}

func paramsDTO(p core.Params, dist core.InitialDistribution, sojourns int) ParamsDTO {
	name := "delta"
	if dist == core.DistributionBeta {
		name = "beta"
	}
	if sojourns < 1 {
		sojourns = 1
	}
	return ParamsDTO{
		C: p.C, Delta: p.Delta, K: p.K, Mu: p.Mu, D: p.D, Nu: p.Nu,
		Distribution: name, Sojourns: sojourns,
	}
}

func analysisDTO(a *core.Analysis) AnalysisDTO {
	return AnalysisDTO{
		ExpectedSafeTime:     a.ExpectedSafeTime,
		ExpectedPollutedTime: a.ExpectedPollutedTime,
		SafeSojourns:         a.SafeSojourns,
		PollutedSojourns:     a.PollutedSojourns,
		Absorption:           a.Absorption,
		PollutionProbability: a.PollutionProbability,
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, endpoint string, code int, v any) {
	encSpan, _ := obs.StartSpan(r.Context(), "encode")
	// Encode before committing the status: an encoding failure (e.g. a
	// non-encodable float) must surface as a 500, not a 200 with a
	// truncated body.
	body, err := json.Marshal(v)
	if err != nil {
		code = http.StatusInternalServerError
		body, _ = json.Marshal(errorResponse{Error: fmt.Sprintf("encoding response: %v", err)})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(body, '\n'))
	encSpan.End()
	s.metrics.request(endpoint, code)
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, endpoint string, code int, err error) {
	s.writeJSON(w, r, endpoint, code, errorResponse{Error: err.Error()})
}
