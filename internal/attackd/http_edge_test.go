package attackd

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"targetedattacks/internal/core"
)

// TestOversizedBody413: a body past the 1 MiB cap is the client's
// error in the 413 sense, on every POST endpoint.
func TestOversizedBody413(t *testing.T) {
	ts := newTestServer(t, Config{})
	huge := []byte(`{"pad":"` + strings.Repeat("x", maxBodyBytes+1024) + `"}`)
	for _, endpoint := range []string{"/v1/analyze", "/v1/sweep", "/v1/simsweep", "/v1/jobs"} {
		resp, err := http.Post(ts.URL+endpoint, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatalf("%s: %v", endpoint, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body: status=%d, want 413", endpoint, resp.StatusCode)
		}
	}
	// A body inside the cap but invalid JSON stays a plain 400.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: status=%d, want 400", resp.StatusCode)
	}
}

// TestMethodNotAllowed: every endpoint rejects wrong methods with 405
// and the RFC-required Allow header — including the read-only GET
// endpoints, which used to accept POST.
func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		endpoint, method, allow string
	}{
		{"/v1/analyze", http.MethodGet, "POST"},
		{"/v1/sweep", http.MethodDelete, "POST"},
		{"/v1/simsweep", http.MethodGet, "POST"},
		{"/healthz", http.MethodPost, "GET"},
		{"/metrics", http.MethodPost, "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.endpoint, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status=%d, want 405", tc.method, tc.endpoint, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow=%q, want %q", tc.method, tc.endpoint, got, tc.allow)
		}
	}
}

// TestUnknownModel400: an unregistered family name is a client error
// listing the registry, on both cell and grid endpoints.
func TestUnknownModel400(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, endpoint := range []string{"/v1/analyze", "/v1/sweep"} {
		code, msg := postJSON[errorResponse](t, ts.URL+endpoint, map[string]any{"model": "no-such-family"})
		if code != http.StatusBadRequest {
			t.Errorf("%s: status=%d, want 400", endpoint, code)
		}
		if !strings.Contains(msg.Error, "no-such-family") || !strings.Contains(msg.Error, "targeted-attack") {
			t.Errorf("%s: error %q must name the bad model and list the registry", endpoint, msg.Error)
		}
	}
}

// TestStateCountInt64: |Ω| is computed in int64. C = ∆ = 1600 is the
// regression geometry — its count overflows 32-bit int (≈ 2.05e9) and
// used to wrap negative there, sliding under the state limit.
func TestStateCountInt64(t *testing.T) {
	if got := stateCount(core.Params{C: 7, Delta: 7}); got != 288 {
		t.Errorf("stateCount(7,7) = %d, want 288", got)
	}
	const c, d = 1701, 1701 // C+1, ∆+1
	want := int64(c) * (int64(d) * int64(d+1) / 2)
	if want <= math.MaxInt32 {
		t.Fatalf("test geometry too small to catch 32-bit overflow: %d", want)
	}
	if got := stateCount(core.Params{C: 1700, Delta: 1700}); got != want {
		t.Errorf("stateCount(1700,1700) = %d, want %d", got, want)
	}
	// Far past every cap the count saturates instead of wrapping.
	if got := stateCount(core.Params{C: math.MaxInt32, Delta: math.MaxInt32}); got != math.MaxInt64 {
		t.Errorf("stateCount(MaxInt32,MaxInt32) = %d, want saturation at MaxInt64", got)
	}
	if got := stateCount(core.Params{C: -5, Delta: -5}); got != 0 {
		t.Errorf("stateCount(-5,-5) = %d, want 0 for degenerate geometry", got)
	}
	// End to end: the absurd geometry is rejected, not wrapped around the
	// limit.
	ts := newTestServer(t, Config{})
	code, msg := postJSON[errorResponse](t, ts.URL+"/v1/analyze",
		CellRequest{C: 1700, Delta: 1700, K: 1, Mu: 0.2, D: 0.9, Nu: 0.1})
	if code != http.StatusBadRequest || !strings.Contains(msg.Error, "limit") {
		t.Errorf("C=∆=1700: status=%d err=%q, want 400 naming the limit", code, msg.Error)
	}
}

// TestRequestOverrideValidation: tol/max_iter/workers overrides outside
// their ranges are client errors.
func TestRequestOverrideValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	base := paperCell()
	cases := []struct {
		name string
		mut  func(*CellRequest)
		want string
	}{
		{"tol too large", func(r *CellRequest) { r.Tol = 0.9 }, "tol"},
		{"tol below round-off", func(r *CellRequest) { r.Tol = 1e-20 }, "tol"},
		{"negative max_iter", func(r *CellRequest) { r.MaxIter = -3 }, "max_iter"},
		{"max_iter too large", func(r *CellRequest) { r.MaxIter = maxRequestIter + 1 }, "max_iter"},
		{"negative workers", func(r *CellRequest) { r.Workers = -2 }, "workers"},
		{"workers too large", func(r *CellRequest) { r.Workers = maxRequestWorkers + 1 }, "workers"},
	}
	for _, tc := range cases {
		req := base
		tc.mut(&req)
		code, msg := postJSON[errorResponse](t, ts.URL+"/v1/analyze", req)
		if code != http.StatusBadRequest || !strings.Contains(msg.Error, tc.want) {
			t.Errorf("%s: status=%d err=%q, want 400 naming %q", tc.name, code, msg.Error, tc.want)
		}
	}
	// The same validation guards the sweep endpoint.
	code, msg := postJSON[errorResponse](t, ts.URL+"/v1/sweep", map[string]any{
		"c": "7", "delta": "7", "k": "1", "mu": "0.2", "d": "0.9", "workers": 100000,
	})
	if code != http.StatusBadRequest || !strings.Contains(msg.Error, "workers") {
		t.Errorf("sweep workers: status=%d err=%q", code, msg.Error)
	}
}

// TestOverridesEnterCacheKey: tol and max_iter fold into the canonical
// key — requests at different solver settings never share results —
// while workers deliberately does not, because results are identical at
// any pool width.
func TestOverridesEnterCacheKey(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := paperCell()
	req.Tol = 1e-8
	if code, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", req); code != http.StatusOK || got.Cached {
		t.Fatalf("first tol=1e-8: status=%d cached=%v", code, got.Cached)
	}
	if _, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", req); !got.Cached {
		t.Errorf("repeat tol=1e-8 not cached")
	}
	req.Tol = 1e-10
	if _, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", req); got.Cached {
		t.Errorf("tol=1e-10 shared tol=1e-8's cache entry")
	}
	req.Tol = 0
	req.MaxIter = 777
	if _, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", req); got.Cached {
		t.Errorf("max_iter=777 shared the default entry")
	}
	// workers stays out of the key: a width-4 request hits the entry a
	// width-1 request populated.
	fresh := paperCell()
	fresh.Sojourns = 2 // distinct from the entries above
	fresh.Workers = 1
	if code, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", fresh); code != http.StatusOK || got.Cached {
		t.Fatalf("workers=1: status=%d cached=%v", code, got.Cached)
	}
	fresh.Workers = 4
	code, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", fresh)
	if code != http.StatusOK || !got.Cached {
		t.Errorf("workers=4: status=%d cached=%v, want a hit on the workers=1 entry", code, got.Cached)
	}
}

// TestWorkersWidthIndependence: with caching disabled, the same cell
// evaluated at different pool widths produces identical analyses — the
// contract that keeps workers out of the cache key.
func TestWorkersWidthIndependence(t *testing.T) {
	ts := newTestServer(t, Config{CacheSize: -1})
	var analyses []AnalysisDTO
	for _, workers := range []int{1, 4} {
		req := paperCell()
		req.Workers = workers
		code, got := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", req)
		if code != http.StatusOK || got.Cached {
			t.Fatalf("workers=%d: status=%d cached=%v", workers, code, got.Cached)
		}
		analyses = append(analyses, got.Analysis)
	}
	a, b := analyses[0], analyses[1]
	if a.ExpectedSafeTime != b.ExpectedSafeTime || a.PollutionProbability != b.PollutionProbability {
		t.Errorf("width 1 vs 4 diverge: %+v vs %+v", a, b)
	}
}

// TestMetricsExposesNewCounters: the new stream/job instrumentation
// renders in the Prometheus exposition.
func TestMetricsExposesNewCounters(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"attackd_stream_cells_total 0",
		`attackd_jobs_total{state="submitted"} 0`,
		`attackd_jobs_total{state="done"} 0`,
		`attackd_jobs_total{state="failed"} 0`,
		`attackd_jobs_total{state="canceled"} 0`,
		"attackd_jobs_active 0",
		"attackd_singleflight_shared_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSharedFollowerResponse documents the follower contract end to
// end with the flight group directly: followers return shared=true and
// leave the miss counter alone (TestConcurrentAnalyzeSingleflight
// asserts the same over HTTP).
func TestSharedFollowerResponse(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		s.flights.Do("k", func() (any, error) {
			close(started)
			<-release
			return AnalyzeResponse{States: 1}, nil
		})
	}()
	<-started
	done := make(chan bool, 1)
	go func() {
		_, _, shared := s.flights.Do("k", func() (any, error) { return nil, nil })
		done <- shared
	}()
	// Give the follower time to join the flight before releasing the
	// leader; if it loses this (generous) race it becomes a leader of its
	// own and the assertion below catches the false negative.
	time.Sleep(100 * time.Millisecond)
	close(release)
	if shared := <-done; !shared {
		t.Errorf("follower Do returned shared=false")
	}
}
