package attackd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"targetedattacks/internal/obs"
)

// The async job API: POST /v1/jobs submits any sweep or simulation-sweep
// body (including named model families) and returns immediately with a
// job ID; GET /v1/jobs/{id} polls state and cell-level progress; GET
// /v1/jobs/{id}/result fetches — or streams, with the usual NDJSON
// negotiation — the finished set; DELETE /v1/jobs/{id} cancels the
// evaluation through its context. Jobs deliberately bypass singleflight:
// each runs under its own cancelable context, so canceling one job never
// tears down a synchronous request that happens to share its parameters.
// They do share the LRU — a job checks the cache before evaluating and
// stores its result on success, so jobs and synchronous requests warm
// each other.

// Job states, as reported by the status API.
const (
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobStatus is the wire form of one job's state and progress.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	Model string `json:"model,omitempty"`
	State string `json:"state"`
	// CellsDone counts finished grid cells; CellsTotal is the grid size,
	// so done/total is the job's progress fraction.
	CellsDone  int    `json:"cells_done"`
	CellsTotal int    `json:"cells_total"`
	Error      string `json:"error,omitempty"`
	// TraceID correlates the job with the submitting request's trace (a
	// child trace: same 32-hex trace ID, its own spans).
	TraceID string `json:"trace_id,omitempty"`
}

// JobSubmitResponse is the POST /v1/jobs response body.
type JobSubmitResponse struct {
	ID string `json:"id"`
	// Status echoes the freshly created job's status (state "running").
	Status JobStatus `json:"status"`
}

// JobListResponse is the GET /v1/jobs response body.
type JobListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// job is one submitted evaluation. Mutable fields are guarded by the
// owning store's mutex, except cellsDone which evaluator goroutines
// bump lock-free.
type job struct {
	id        string
	ev        *evaluation
	cellsDone atomic.Int64
	cancel    context.CancelFunc
	created   time.Time
	// tr is the job's own trace — a child of the submitting request's
	// trace (same trace ID), so the evaluation's spans record under the
	// job rather than racing the submit response. Nil for jobs built
	// outside the HTTP path (tests).
	tr *obs.Trace

	// state, err, result, cached, timings and finished change exactly
	// once, under the store lock, when the evaluation goroutine
	// completes.
	state    string
	err      string
	result   any
	cached   bool
	timings  *TimingsDTO
	finished time.Time
	done     chan struct{}
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID:         j.id,
		Kind:       j.ev.kind,
		Model:      j.ev.model,
		State:      j.state,
		CellsDone:  int(j.cellsDone.Load()),
		CellsTotal: j.ev.cells,
		Error:      j.err,
	}
	if j.tr != nil {
		st.TraceID = j.tr.TraceID()
	}
	return st
}

// jobStore is the bounded in-memory job registry. Finished jobs stay
// pollable for the TTL and are evicted lazily on the next store access;
// there is no background reaper to leak. now is injectable so tests can
// drive TTL eviction with a fake clock.
type jobStore struct {
	mu     sync.Mutex
	jobs   map[string]*job
	max    int
	ttl    time.Duration
	now    func() time.Time
	closed bool
	// wg tracks running evaluation goroutines for graceful drain.
	wg sync.WaitGroup
}

func newJobStore(max int, ttl time.Duration) *jobStore {
	return &jobStore{
		jobs: make(map[string]*job),
		max:  max,
		ttl:  ttl,
		now:  time.Now,
	}
}

// evictLocked drops finished jobs past their TTL. Callers hold mu.
func (st *jobStore) evictLocked() {
	now := st.now()
	for id, j := range st.jobs {
		if j.state != JobRunning && now.Sub(j.finished) >= st.ttl {
			delete(st.jobs, id)
		}
	}
}

// add registers a new job, evicting expired results first and, when the
// store is still full, the oldest finished job — a fresh submission
// outranks a stale pollable result. A store full of running jobs, a
// draining server, or a negative bound (job API disabled) rejects the
// submission.
func (st *jobStore) add(j *job) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return errors.New("server is draining, not accepting jobs")
	}
	if st.max < 0 {
		return errors.New("the job API is disabled on this server")
	}
	st.evictLocked()
	if len(st.jobs) >= st.max {
		var oldest *job
		for _, cand := range st.jobs {
			if cand.state == JobRunning {
				continue
			}
			if oldest == nil || cand.finished.Before(oldest.finished) {
				oldest = cand
			}
		}
		if oldest == nil {
			return fmt.Errorf("job store is full (%d jobs running)", len(st.jobs))
		}
		delete(st.jobs, oldest.id)
	}
	st.jobs[j.id] = j
	st.wg.Add(1)
	return nil
}

// get looks a job up, applying TTL eviction first so an expired job is
// gone rather than stale.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked()
	j, ok := st.jobs[id]
	return j, ok
}

// list snapshots every live job's status, oldest first.
func (st *jobStore) list() []JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked()
	js := make([]*job, 0, len(st.jobs))
	for _, j := range st.jobs {
		js = append(js, j)
	}
	sort.Slice(js, func(a, b int) bool {
		if !js[a].created.Equal(js[b].created) {
			return js[a].created.Before(js[b].created)
		}
		return js[a].id < js[b].id
	})
	out := make([]JobStatus, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out
}

// finish records the evaluation goroutine's outcome exactly once.
func (st *jobStore) finish(j *job, val any, cached bool, err error, tm *TimingsDTO) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = val
		j.cached = cached
		j.timings = tm
	case errors.Is(err, context.Canceled):
		j.state = JobCanceled
	default:
		j.state = JobFailed
		j.err = err.Error()
	}
	j.finished = st.now()
	close(j.done)
}

// close stops new submissions (graceful drain).
func (st *jobStore) close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
}

// DrainJobs stops accepting new job submissions and blocks until every
// running job finishes or ctx expires. Pair it with http.Server.Shutdown
// so in-flight jobs complete (and their results land in the cache)
// before the process exits.
func (s *Server) DrainJobs(ctx context.Context) error {
	s.jobs.close()
	done := make(chan struct{})
	go func() {
		s.jobs.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// newJobID returns a 16-hex-digit random job identifier.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on a working OS
	}
	return hex.EncodeToString(b[:])
}

// evaluationFor routes a job body to the matching evaluation builder by
// its "kind" field ("sweep" covers named model families via "model").
func (s *Server) evaluationFor(kind string, body []byte) (*evaluation, error) {
	switch strings.ToLower(strings.TrimSpace(kind)) {
	case "", "sweep":
		return s.sweepEvaluationFromBody(body)
	case "simsweep":
		return s.simSweepEvaluationFromBody(body)
	default:
		return nil, fmt.Errorf("unknown job kind %q (want \"sweep\" or \"simsweep\")", kind)
	}
}

// handleJobs serves the job collection: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/jobs"
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r, endpoint)
	case http.MethodGet:
		s.writeJSON(w, r, endpoint, http.StatusOK, JobListResponse{Jobs: s.jobs.list()})
	default:
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, r, endpoint, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request, endpoint string) {
	body, ok := s.readBody(w, r, endpoint)
	if !ok {
		return
	}
	// The job envelope is the sweep body itself plus an optional "kind"
	// discriminator; the builders ignore the extra field.
	var head struct {
		Kind string `json:"kind,omitempty"`
	}
	if err := json.Unmarshal(body, &head); err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	ev, err := s.evaluationFor(head.Kind, body)
	if err != nil {
		s.writeError(w, r, endpoint, http.StatusBadRequest, err)
		return
	}
	// The job outlives the submit request, so it gets a child trace:
	// same trace ID (for cross-request correlation), its own spans.
	tr := obs.NewChildTrace(obs.TraceFromContext(r.Context()))
	ctx, cancel := context.WithCancel(obs.ContextWithTrace(context.Background(), tr))
	j := &job{
		id:      newJobID(),
		ev:      ev,
		cancel:  cancel,
		created: s.jobs.now(),
		tr:      tr,
		state:   JobRunning,
		done:    make(chan struct{}),
	}
	if err := s.jobs.add(j); err != nil {
		cancel()
		s.writeError(w, r, endpoint, http.StatusServiceUnavailable, err)
		return
	}
	s.metrics.jobsSubmitted.Add(1)
	s.metrics.jobsActive.Add(1)
	go s.runJob(ctx, j)
	s.jobs.mu.Lock()
	resp := JobSubmitResponse{ID: j.id, Status: j.status()}
	s.jobs.mu.Unlock()
	s.writeJSON(w, r, endpoint, http.StatusAccepted, resp)
}

// runJob executes one job's evaluation off the request goroutine.
func (s *Server) runJob(ctx context.Context, j *job) {
	defer s.jobs.wg.Done()
	defer j.cancel()
	defer s.metrics.jobsActive.Add(-1)
	root, ctx := obs.StartSpan(ctx, "job")
	var val any
	var err error
	cached := false
	cacheSpan, _ := obs.StartSpan(ctx, "cache")
	hit, ok := s.cache.Get(j.ev.key)
	cacheSpan.End()
	if ok {
		s.metrics.cacheHits.Add(1)
		val, cached = hit, true
		j.cellsDone.Store(int64(j.ev.cells))
	} else {
		s.metrics.cacheMisses.Add(1)
		val, err = j.ev.run(ctx, func(any) { j.cellsDone.Add(1) })
	}
	root.End()
	var tm *TimingsDTO
	if j.ev.timings && err == nil {
		tm = timingsFromTrace(j.tr)
	}
	s.jobs.finish(j, val, cached, err, tm)
	if j.tr != nil {
		s.metrics.observeStages(j.tr.Stages(), "job")
	}
	switch j.state {
	case JobDone:
		s.metrics.jobsCompleted.Add(1)
	case JobCanceled:
		s.metrics.jobsCanceled.Add(1)
	default:
		s.metrics.jobsFailed.Add(1)
	}
	s.logger.LogAttrs(ctx, slog.LevelInfo, "job finished",
		slog.String("job_id", j.id),
		slog.String("kind", j.ev.kind),
		slog.String("state", j.state),
		slog.Int("cells", int(j.cellsDone.Load())),
		slog.Bool("cached", cached),
		slog.Duration("duration", s.jobs.now().Sub(j.created)),
	)
}

// handleJobByID serves one job: GET {id} polls status, GET {id}/result
// delivers the finished set (buffered or NDJSON-streamed), DELETE {id}
// cancels.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/jobs/{id}"
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "result") {
		s.writeError(w, r, endpoint, http.StatusNotFound, fmt.Errorf("no such resource %q", r.URL.Path))
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		s.writeError(w, r, endpoint, http.StatusNotFound, fmt.Errorf("no job %q (finished jobs expire after %s)", id, s.jobs.ttl))
		return
	}
	if sub == "result" {
		if !s.requireMethod(w, r, endpoint, http.MethodGet) {
			return
		}
		s.serveJobResult(w, r, endpoint, j)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.jobs.mu.Lock()
		status := j.status()
		s.jobs.mu.Unlock()
		s.writeJSON(w, r, endpoint, http.StatusOK, status)
	case http.MethodDelete:
		// Best-effort: the evaluation observes its context at cell
		// boundaries, and a job that wins the race to completion stays
		// done. The response reports the state after the cancel settles.
		j.cancel()
		<-j.done
		s.jobs.mu.Lock()
		status := j.status()
		s.jobs.mu.Unlock()
		s.writeJSON(w, r, endpoint, http.StatusOK, status)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		s.writeError(w, r, endpoint, http.StatusMethodNotAllowed, fmt.Errorf("use GET or DELETE"))
	}
}

// serveJobResult delivers a finished job's result, honoring the same
// NDJSON negotiation as the synchronous endpoints.
func (s *Server) serveJobResult(w http.ResponseWriter, r *http.Request, endpoint string, j *job) {
	s.jobs.mu.Lock()
	state, errMsg, val, cached, tm := j.state, j.err, j.result, j.cached, j.timings
	s.jobs.mu.Unlock()
	switch state {
	case JobRunning:
		s.writeError(w, r, endpoint, http.StatusConflict,
			fmt.Errorf("job %s is still running (%d/%d cells)", j.id, j.cellsDone.Load(), j.ev.cells))
		return
	case JobCanceled:
		s.writeError(w, r, endpoint, http.StatusGone, fmt.Errorf("job %s was canceled", j.id))
		return
	case JobFailed:
		s.writeError(w, r, endpoint, http.StatusInternalServerError, fmt.Errorf("job %s failed: %s", j.id, errMsg))
		return
	}
	if wantsStream(r) {
		sw := s.startStream(w, endpoint)
		for _, line := range j.ev.cellsOf(val) {
			s.metrics.streamCells.Add(1)
			sw.writeLine(line)
		}
		sw.writeLine(streamEnvelope{Summary: j.ev.summarize(val, cached, false, tm)})
		return
	}
	s.writeJSON(w, r, endpoint, http.StatusOK, j.ev.finish(val, cached, false, tm))
}
