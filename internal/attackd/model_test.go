package attackd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"targetedattacks/internal/aptchain"
	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/matrix"
)

func aptCellBody() map[string]any {
	return map[string]any{
		"model": "apt-compromise",
		"n":     6, "theta": 0.5, "phi": 0.4, "rho": 0.3, "detect": 0.7,
	}
}

// TestModelAnalyzeAPT: a request naming the second family routes to the
// generic path and matches a direct aptchain analysis bit for bit.
func TestModelAnalyzeAPT(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := aptCellBody()
	body["sojourns"] = 2
	code, got := postJSON[ModelAnalyzeResponse](t, ts.URL+"/v1/analyze", body)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if got.Model != aptchain.FamilyName || got.Distribution != aptchain.DistFoothold ||
		got.States != 28 || got.Solver != "bicgstab" || got.Cached {
		t.Fatalf("metadata = %+v", got)
	}
	inst, err := aptchain.New(aptchain.Params{N: 6, Theta: 0.5, Phi: 0.4, Rho: 0.3, Detect: 0.7},
		matrix.SolverConfig{Kind: "bicgstab"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := chainmodel.Analyze(inst, aptchain.DistFoothold, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Analysis.TimeInA != want.TimeInA || got.Analysis.TimeInB != want.TimeInB ||
		got.Analysis.HitProbability != want.HitProbability {
		t.Errorf("analysis over HTTP %+v, direct %+v", got.Analysis, want)
	}
	if got.Analysis.Absorption[aptchain.ClassNameEvicted] != want.Absorption[aptchain.ClassNameEvicted] {
		t.Errorf("absorption over HTTP %v, direct %v", got.Analysis.Absorption, want.Absorption)
	}
	// Second identical request must come from the cache.
	code, again := postJSON[ModelAnalyzeResponse](t, ts.URL+"/v1/analyze", body)
	if code != http.StatusOK || !again.Cached {
		t.Errorf("repeat request: status=%d cached=%v, want 200/true", code, again.Cached)
	}
	// The blitz distribution is a distinct cache identity.
	body["distribution"] = "blitz"
	code, blitz := postJSON[ModelAnalyzeResponse](t, ts.URL+"/v1/analyze", body)
	if code != http.StatusOK || blitz.Cached || blitz.Distribution != aptchain.DistBlitz {
		t.Errorf("blitz: status=%d cached=%v dist=%q", code, blitz.Cached, blitz.Distribution)
	}
}

// TestModelAnalyzeRejects: the generic path enforces the same request
// limits as the default one, and unknown models are 400s listing the
// registry.
func TestModelAnalyzeRejects(t *testing.T) {
	ts := newTestServer(t, Config{})
	code, resp := postJSON[errorResponse](t, ts.URL+"/v1/analyze", map[string]any{
		"model": "zeta", "n": 6, "theta": 0.5, "phi": 0.4, "detect": 0.7,
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown model: status = %d, want 400", code)
	}
	for _, name := range chainmodel.Names() {
		if !strings.Contains(resp.Error, name) {
			t.Errorf("unknown-model error %q does not list %q", resp.Error, name)
		}
	}
	for name, body := range map[string]map[string]any{
		"invalid params":   {"model": "apt-compromise", "n": 1, "theta": 0.5, "phi": 0.4, "detect": 0.7},
		"bad distribution": {"model": "apt-compromise", "n": 6, "theta": 0.5, "phi": 0.4, "detect": 0.7, "distribution": "zeta"},
		"huge state space": {"model": "apt-compromise", "n": 100_000, "theta": 0.5, "phi": 0.4, "detect": 0.7},
		"huge sojourns":    {"model": "apt-compromise", "n": 6, "theta": 0.5, "phi": 0.4, "detect": 0.7, "sojourns": 1 << 30},
		"bad solver":       {"model": "apt-compromise", "n": 6, "theta": 0.5, "phi": 0.4, "detect": 0.7, "solver": "cholesky"},
	} {
		code, resp := postJSON[errorResponse](t, ts.URL+"/v1/analyze", body)
		if code != http.StatusBadRequest || resp.Error == "" {
			t.Errorf("%s: status=%d error=%q, want 400 with message", name, code, resp.Error)
		}
	}
}

// TestModelSweepAPT: a grid of the second family through /v1/sweep, its
// cache identity, and its per-model limits.
func TestModelSweepAPT(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := map[string]any{
		"model": "apt-compromise",
		"n":     "6", "theta": "0.5", "phi": "0.4", "rho": "0,0.2,0.4", "detect": "0.6,0.8",
	}
	code, got := postJSON[ModelSweepResponse](t, ts.URL+"/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if got.Model != aptchain.FamilyName || len(got.Cells) != 6 || got.Groups != 1 || got.Evaluated != 6 {
		t.Fatalf("metadata: model=%q cells=%d groups=%d evaluated=%d", got.Model, len(got.Cells), got.Groups, got.Evaluated)
	}
	if got.Iterations <= 0 {
		t.Errorf("iterations = %d, want > 0 on the iterative default backend", got.Iterations)
	}
	// The grid's first cell heads a warm-start lane (cold solve), so it
	// agrees with the single-cell endpoint to solver tolerance.
	var params aptchain.Params
	raw, _ := json.Marshal(got.Cells[0].Params)
	var f struct {
		N      int     `json:"n"`
		Theta  float64 `json:"theta"`
		Phi    float64 `json:"phi"`
		Rho    float64 `json:"rho"`
		Detect float64 `json:"detect"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	params = aptchain.Params{N: f.N, Theta: f.Theta, Phi: f.Phi, Rho: f.Rho, Detect: f.Detect}
	code, single := postJSON[ModelAnalyzeResponse](t, ts.URL+"/v1/analyze", map[string]any{
		"model": "apt-compromise",
		"n":     params.N, "theta": params.Theta, "phi": params.Phi, "rho": params.Rho, "detect": params.Detect,
	})
	if code != http.StatusOK {
		t.Fatalf("analyze status = %d", code)
	}
	if math.Abs(got.Cells[0].Analysis.TimeInA-single.Analysis.TimeInA) > 1e-9 {
		t.Errorf("sweep cell 0 E(T_A)=%v, analyze=%v", got.Cells[0].Analysis.TimeInA, single.Analysis.TimeInA)
	}
	// Repeat: whole-grid cache hit.
	code, again := postJSON[ModelSweepResponse](t, ts.URL+"/v1/sweep", req)
	if code != http.StatusOK || !again.Cached {
		t.Errorf("repeat sweep: status=%d cached=%v", code, again.Cached)
	}
	// Bad requests are rejected before evaluation.
	for name, bad := range map[string]map[string]any{
		"unknown model": {"model": "zeta", "n": "6", "theta": "0.5", "phi": "0.4", "detect": "0.6"},
		"missing axis":  {"model": "apt-compromise", "n": "6", "theta": "0.5", "detect": "0.6"},
		"bad axis":      {"model": "apt-compromise", "n": "x", "theta": "0.5", "phi": "0.4", "detect": "0.6"},
		"bad cell":      {"model": "apt-compromise", "n": "1", "theta": "0.5", "phi": "0.4", "detect": "0.6"},
		"huge geometry": {"model": "apt-compromise", "n": "100000", "theta": "0.5", "phi": "0.4", "detect": "0.6"},
		"too large":     {"model": "apt-compromise", "n": "6", "theta": "0:1:0.01", "phi": "0.01:1:0.01", "detect": "0.2,0.4,0.6", "rho": "0,0.5"},
		"bad solver":    {"model": "apt-compromise", "n": "6", "theta": "0.5", "phi": "0.4", "detect": "0.6", "solver": "cholesky"},
	} {
		code, resp := postJSON[errorResponse](t, ts.URL+"/v1/sweep", bad)
		if code != http.StatusBadRequest || resp.Error == "" {
			t.Errorf("%s: status=%d error=%q, want 400 with message", name, code, resp.Error)
		}
	}
}

// TestModelCacheKeysDisjoint: the two families' keys can never collide,
// and per-model evaluation counters account each exactly once.
func TestModelCacheKeysDisjoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	code, _ := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", paperCell())
	if code != http.StatusOK {
		t.Fatalf("paper analyze status = %d", code)
	}
	code, apt := postJSON[ModelAnalyzeResponse](t, ts.URL+"/v1/analyze", aptCellBody())
	if code != http.StatusOK || apt.Cached {
		t.Fatalf("apt analyze: status=%d cached=%v, want a fresh evaluation", code, apt.Cached)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`attackd_model_evaluations_total{model="apt-compromise"} 1`,
		`attackd_model_evaluations_total{model="targeted-attack"} 1`,
		"attackd_evaluations_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestModelConcurrentMixedFamilies: hammer both families plus unknown
// models concurrently — the model routing, registry lookups, per-model
// metrics and caches must be race-free, and each family's distinct cell
// must evaluate exactly once.
func TestModelConcurrentMixedFamilies(t *testing.T) {
	ts := newTestServer(t, Config{})
	post := func(body any) (int, []byte, error) {
		raw, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}
	const per = 12
	var wg sync.WaitGroup
	errs := make(chan error, 3*per)
	for j := 0; j < per; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, err := post(paperCell())
			if err == nil && code != http.StatusOK {
				err = fmt.Errorf("paper cell: status %d: %s", code, body)
			}
			errs <- err
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, err := post(aptCellBody())
			if err == nil && code != http.StatusOK {
				err = fmt.Errorf("apt cell: status %d: %s", code, body)
			}
			errs <- err
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, err := post(map[string]any{"model": "zeta"})
			if err == nil && code != http.StatusBadRequest {
				err = fmt.Errorf("unknown model: status %d, want 400", code)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`attackd_model_evaluations_total{model="apt-compromise"} 1`,
		`attackd_model_evaluations_total{model="targeted-attack"} 1`,
		`attackd_requests_total{endpoint="/v1/analyze",code="400"} ` + fmt.Sprint(per),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}
