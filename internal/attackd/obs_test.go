package attackd

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"targetedattacks/internal/obs"
)

// This file tests the observability layer end to end over HTTP: trace
// propagation (W3C traceparent in and out, fresh IDs otherwise), the
// opt-in per-stage timing breakdown and its agreement with the
// /metrics latency histograms, the structured slow-request log, and a
// strict self-check of the whole Prometheus exposition.

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

// syncBuffer makes a bytes.Buffer safe for the handler goroutines that
// write log lines while the test reads them.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// postTraced posts a JSON body with an optional traceparent header and
// decodes the response, returning the response's traceparent header too.
func postTraced[T any](t *testing.T, url, traceparent string, body any) (T, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	return out, resp.Header.Get("traceparent")
}

func TestTraceparentPropagates(t *testing.T) {
	var logs syncBuffer
	logger, err := obs.NewLogger(&logs, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req := paperCell()
	req.Timings = true
	got, echoed := postTraced[AnalyzeResponse](t, ts.URL+"/v1/analyze", "00-"+traceID+"-00f067aa0ba902b7-01", req)
	if got.Timings == nil {
		t.Fatal("timings requested but absent from response")
	}
	if got.Timings.TraceID != traceID {
		t.Errorf("timings trace_id = %q, want the inbound %q", got.Timings.TraceID, traceID)
	}
	if !strings.HasPrefix(echoed, "00-"+traceID+"-") {
		t.Errorf("response traceparent %q does not carry the inbound trace ID", echoed)
	}
	if !strings.Contains(logs.String(), traceID) {
		t.Errorf("request log does not mention trace ID %s:\n%s", traceID, logs.String())
	}

	// A malformed traceparent must not be propagated; the server mints a
	// fresh ID instead.
	got, echoed = postTraced[AnalyzeResponse](t, ts.URL+"/v1/analyze", "00-DEADBEEF-bad-01", req)
	if got.Timings.TraceID == traceID || !traceIDRe.MatchString(got.Timings.TraceID) {
		t.Errorf("malformed traceparent produced trace_id %q", got.Timings.TraceID)
	}
	if !strings.Contains(echoed, got.Timings.TraceID) {
		t.Errorf("response traceparent %q does not match timings trace_id %q", echoed, got.Timings.TraceID)
	}
}

func TestFreshTraceIDsAreValidAndDistinct(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := paperCell()
	req.Timings = true
	seen := make(map[string]bool)
	for i := 0; i < 4; i++ {
		got, echoed := postTraced[AnalyzeResponse](t, ts.URL+"/v1/analyze", "", req)
		id := got.Timings.TraceID
		if !traceIDRe.MatchString(id) {
			t.Fatalf("trace_id %q is not 32 lowercase hex digits", id)
		}
		if seen[id] {
			t.Fatalf("trace_id %q repeated across requests", id)
		}
		seen[id] = true
		parts := strings.Split(echoed, "-")
		if len(parts) != 4 || parts[0] != "00" || parts[1] != id {
			t.Errorf("response traceparent %q malformed or mismatched", echoed)
		}
	}
}

func TestJobInheritsTraceID(t *testing.T) {
	ts := newTestServer(t, Config{})
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body := map[string]any{
		"kind": "sweep",
		"c":    "7", "delta": "7", "k": "1",
		"mu": "0.2", "d": "0.9", "nu": "0.1",
		"timings": true,
	}
	sub, _ := postTraced[JobSubmitResponse](t, ts.URL+"/v1/jobs", "00-"+traceID+"-00f067aa0ba902b7-01", body)
	if sub.Status.TraceID != traceID {
		t.Fatalf("job trace_id = %q, want the submitting request's %q", sub.Status.TraceID, traceID)
	}
	// Poll to completion, then check the result carries timings recorded
	// under the job's own (child) trace.
	var status JobStatus
	for i := 0; i < 500; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.State != JobRunning {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status.State != JobDone {
		t.Fatalf("job state = %q, want done", status.State)
	}
	if status.TraceID != traceID {
		t.Errorf("finished job trace_id = %q, want %q", status.TraceID, traceID)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var result SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	if result.Timings == nil {
		t.Fatal("job requested timings but the result has none")
	}
	if result.Timings.TraceID != traceID {
		t.Errorf("job result trace_id = %q, want %q", result.Timings.TraceID, traceID)
	}
	if result.Timings.StagesMS["solve"] <= 0 {
		t.Errorf("job timings lack a solve stage: %v", result.Timings.StagesMS)
	}
}

// TestTimingsSumMatchesHistogram is the acceptance check: for a
// single-worker sweep, the per-stage breakdown must account for the
// request's wall clock as measured independently by the request
// latency histogram on /metrics, to within 10%.
func TestTimingsSumMatchesHistogram(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SweepRequest{
		C: "7", Delta: "7", K: "1",
		// 50 compute-heavy cells, sequentially on one worker, so the
		// traced stages dominate the request and untraced gaps (goroutine
		// handoff, DTO assembly) stay well under the 10% band.
		Mu: "0.05:0.5:0.05", D: "0.5:0.9:0.1", Nu: "0.1",
		Workers: 1,
		Timings: true,
	}
	code, got := postJSON[SweepResponse](t, ts.URL+"/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if got.Timings == nil {
		t.Fatal("timings requested but absent")
	}
	var stageSum float64
	for _, ms := range got.Timings.StagesMS {
		stageSum += ms
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	snap, err := obs.ExtractHistogram(fams, "attackd_request_duration_seconds", map[string]string{"endpoint": "/v1/sweep"})
	if err != nil {
		t.Fatal(err)
	}
	if n := snap.Counts[len(snap.Counts)-1]; n != 1 {
		t.Fatalf("request histogram observed %d /v1/sweep requests, want exactly 1", n)
	}
	totalMS := snap.Sum * 1000
	if diff := totalMS - stageSum; diff < 0 || diff > 0.10*totalMS {
		t.Errorf("stage sum %.2fms vs histogram request duration %.2fms: outside the 10%% band (stages: %v)",
			stageSum, totalMS, got.Timings.StagesMS)
	}
	// The stage histogram must have absorbed the same stages.
	for _, stage := range []string{"parse", "cache", "space", "plan", "build", "solve", "encode"} {
		if _, err := obs.ExtractHistogram(fams, "attackd_stage_duration_seconds", map[string]string{"stage": stage}); err != nil {
			t.Errorf("stage histogram missing %q: %v", stage, err)
		}
	}
}

func TestTimingsOmittedByDefaultAndCacheStaysClean(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SweepRequest{C: "7", Delta: "7", K: "1", Mu: "0.2", D: "0.9", Nu: "0.1"}

	code, plain := postJSON[SweepResponse](t, ts.URL+"/v1/sweep", req)
	if code != http.StatusOK || plain.Timings != nil {
		t.Fatalf("untimed request: status=%d timings=%v", code, plain.Timings)
	}
	// The same grid with timings opted in must hit the cache (the flag
	// stays out of the key) and still get a fresh breakdown.
	req.Timings = true
	code, timed := postJSON[SweepResponse](t, ts.URL+"/v1/sweep", req)
	if code != http.StatusOK || !timed.Cached {
		t.Fatalf("timed repeat: status=%d cached=%v, want a cache hit", code, timed.Cached)
	}
	if timed.Timings == nil || timed.Timings.TraceID == "" {
		t.Fatal("cached reply lost the requested timings")
	}
	if _, ok := timed.Timings.StagesMS["solve"]; ok {
		t.Errorf("cache-hit timings claim a solve stage: %v", timed.Timings.StagesMS)
	}
	// And a third untimed request must not inherit the second's timings
	// through the cache.
	req.Timings = false
	code, again := postJSON[SweepResponse](t, ts.URL+"/v1/sweep", req)
	if code != http.StatusOK || again.Timings != nil {
		t.Fatalf("third request: status=%d timings=%v, want cached reply without timings", code, again.Timings)
	}
}

func TestSlowRequestLogsSpanTree(t *testing.T) {
	var logs syncBuffer
	logger, err := obs.NewLogger(&logs, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Logger: logger, SlowRequest: 1}) // 1ns: everything is slow
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", paperCell()); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var line struct {
		Level    string `json:"level"`
		Msg      string `json:"msg"`
		Endpoint string `json:"endpoint"`
		TraceID  string `json:"trace_id"`
		Spans    string `json:"spans"`
	}
	found := false
	for _, raw := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			t.Fatalf("log line is not JSON: %q", raw)
		}
		if line.Msg == "slow request" && line.Endpoint == "/v1/analyze" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no slow-request log for /v1/analyze in:\n%s", logs.String())
	}
	if line.Level != "WARN" || !traceIDRe.MatchString(line.TraceID) {
		t.Errorf("slow-request log level=%q trace_id=%q", line.Level, line.TraceID)
	}
	for _, stage := range []string{"request", "solve"} {
		if !strings.Contains(line.Spans, stage) {
			t.Errorf("span tree %q lacks the %s span", line.Spans, stage)
		}
	}
}

// TestMetricsExpositionSelfCheck parses the server's entire /metrics
// output with the strict exposition parser, checks the families the
// dashboards depend on, and scrapes twice to assert counters are
// monotone and histograms only grow.
func TestMetricsExpositionSelfCheck(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Exercise every traffic path once so all families have points.
	if code, _ := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", paperCell()); code != http.StatusOK {
		t.Fatalf("analyze status = %d", code)
	}
	sweep := SweepRequest{C: "7", Delta: "7", K: "1", Mu: "0.2", D: "0.9", Nu: "0.1"}
	if code, _ := postJSON[SweepResponse](t, ts.URL+"/v1/sweep", sweep); code != http.StatusOK {
		t.Fatalf("sweep status = %d", code)
	}
	sim := map[string]any{"mu": "0.2", "d": "0.9", "sizes": "64", "events": 200, "seed": 7}
	if code, _ := postJSON[SimSweepResponse](t, ts.URL+"/v1/simsweep", sim); code != http.StatusOK {
		t.Fatalf("simsweep status = %d", code)
	}

	scrapeAll := func() map[string]*obs.MetricFamily {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		fams, err := obs.ParseProm(resp.Body)
		if err != nil {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("exposition does not parse: %v\n%s", err, body)
		}
		return fams
	}

	first := scrapeAll()
	wantTypes := map[string]string{
		"attackd_requests_total":           "counter",
		"attackd_cache_hits_total":         "counter",
		"attackd_cache_misses_total":       "counter",
		"attackd_evaluations_total":        "counter",
		"attackd_sim_evaluations_total":    "counter",
		"attackd_sim_events_total":         "counter",
		"attackd_jobs_total":               "counter",
		"attackd_jobs_active":              "gauge",
		"attackd_inflight_evaluations":     "gauge",
		"attackd_request_duration_seconds": "histogram",
		"attackd_stage_duration_seconds":   "histogram",
		"attackd_go_goroutines":            "gauge",
		"attackd_go_heap_alloc_bytes":      "gauge",
		"attackd_go_gcs_total":             "counter",
	}
	for name, typ := range wantTypes {
		f := first[name]
		if f == nil {
			t.Errorf("family %q missing", name)
			continue
		}
		if f.Type != typ {
			t.Errorf("family %q has type %q, want %q", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Errorf("family %q has no HELP", name)
		}
	}
	if eps := obs.LabelValues(first["attackd_request_duration_seconds"], "endpoint"); len(eps) < 3 {
		t.Errorf("request histogram has endpoints %v, want at least analyze/sweep/simsweep", eps)
	}

	// One more request, then a second scrape: counters must not step
	// backwards and histogram deltas must be well-formed.
	if code, _ := postJSON[AnalyzeResponse](t, ts.URL+"/v1/analyze", paperCell()); code != http.StatusOK {
		t.Fatalf("analyze status = %d", code)
	}
	second := scrapeAll()
	for name, f := range first {
		if f.Type != "counter" {
			continue
		}
		for _, p := range f.Points {
			after, ok := findPoint(second[name], p.Labels)
			if !ok {
				t.Errorf("counter %s%v disappeared between scrapes", name, p.Labels)
				continue
			}
			if after < p.Value {
				t.Errorf("counter %s%v went backwards: %g -> %g", name, p.Labels, p.Value, after)
			}
		}
	}
	m := map[string]string{"endpoint": "/v1/analyze"}
	b, err := obs.ExtractHistogram(first, "attackd_request_duration_seconds", m)
	if err != nil {
		t.Fatal(err)
	}
	a, err := obs.ExtractHistogram(second, "attackd_request_duration_seconds", m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Sub(b)
	if err != nil {
		t.Fatalf("histogram delta for %v: %v", m, err)
	}
	if n := d.Counts[len(d.Counts)-1]; n != 1 {
		t.Errorf("analyze histogram grew by %d between scrapes, want 1", n)
	}
	// A scrape's own latency is observed after its exposition is
	// written, so the /metrics label appears from the second scrape on.
	if _, err := obs.ExtractHistogram(second, "attackd_request_duration_seconds", map[string]string{"endpoint": "/metrics"}); err != nil {
		t.Errorf("second scrape lacks the /metrics endpoint label: %v", err)
	}
}

// findPoint locates the sample with exactly the given labels.
func findPoint(f *obs.MetricFamily, labels map[string]string) (float64, bool) {
	if f == nil {
		return 0, false
	}
outer:
	for _, p := range f.Points {
		if len(p.Labels) != len(labels) {
			continue
		}
		for k, v := range labels {
			if p.Labels[k] != v {
				continue outer
			}
		}
		return p.Value, true
	}
	return 0, false
}
