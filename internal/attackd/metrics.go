package attackd

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"targetedattacks/internal/matrix"
	"targetedattacks/internal/obs"
)

// commonCodes are the status codes the handlers actually emit; each
// gets a fixed atomic slot per endpoint, so counting a request is two
// read-only map/array lookups plus one atomic add — no lock, no
// allocation, no formatting. Codes outside this list (none today) fall
// back to a sync.Map.
var commonCodes = [...]int{200, 202, 400, 404, 405, 409, 410, 413, 500, 503}

func commonCodeIndex(code int) int {
	for i, c := range commonCodes {
		if c == code {
			return i
		}
	}
	return -1
}

// endpointStats is one endpoint's request counters.
type endpointStats struct {
	common [len(commonCodes)]atomic.Int64
	rare   sync.Map // int (status code) -> *atomic.Int64
}

func (e *endpointStats) count(code int) {
	if i := commonCodeIndex(code); i >= 0 {
		e.common[i].Add(1)
		return
	}
	if c, ok := e.rare.Load(code); ok {
		c.(*atomic.Int64).Add(1)
		return
	}
	c, _ := e.rare.LoadOrStore(code, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
}

// codes returns the endpoint's non-zero (code, count) pairs sorted by
// code, for rendering.
func (e *endpointStats) codes() ([]int, []int64) {
	byCode := make(map[int]int64)
	for i, c := range commonCodes {
		if v := e.common[i].Load(); v > 0 {
			byCode[c] = v
		}
	}
	e.rare.Range(func(k, v any) bool {
		byCode[k.(int)] = v.(*atomic.Int64).Load()
		return true
	})
	codes := make([]int, 0, len(byCode))
	for c := range byCode {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	counts := make([]int64, len(codes))
	for i, c := range codes {
		counts[i] = byCode[c]
	}
	return codes, counts
}

// knownEndpoints are the mux's routes (with /v1/jobs/{id} standing in
// for per-job paths); their stats blocks are preallocated so the
// request hot path reads an immutable map.
var knownEndpoints = []string{
	"/healthz", "/metrics", "/v1/analyze", "/v1/jobs", "/v1/jobs/{id}", "/v1/simsweep", "/v1/sweep",
}

// metrics is the server's instrumentation: monotonic counters, an
// in-flight gauge, and latency histograms, rendered in Prometheus text
// exposition format by /metrics. Every hot-path update is lock-free:
// known endpoints hit preallocated atomic slots, unknown endpoints and
// model names go through sync.Map.
type metrics struct {
	endpoints      map[string]*endpointStats // immutable after newMetrics
	extraEndpoints sync.Map                  // string -> *endpointStats
	modelEvals     sync.Map                  // string (family) -> *atomic.Int64

	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	evaluations        atomic.Int64
	simEvaluations     atomic.Int64
	simEvents          atomic.Int64
	singleflightShared atomic.Int64
	inflight           atomic.Int64

	streamCells   atomic.Int64
	jobsSubmitted atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	jobsActive    atomic.Int64

	solverIterations     atomic.Int64
	fallbacksIterCap     atomic.Int64
	fallbacksBreakdown   atomic.Int64
	fallbacksUnspecified atomic.Int64

	// reqDur observes end-to-end request latency by endpoint; stageDur
	// observes per-request aggregated stage durations (parse, cache,
	// space, plan, build, solve, ...) by stage.
	reqDur   *obs.HistogramVec
	stageDur *obs.HistogramVec
}

func newMetrics() *metrics {
	m := &metrics{
		endpoints: make(map[string]*endpointStats, len(knownEndpoints)),
		reqDur:    obs.NewHistogramVec(obs.DefaultLatencyBuckets),
		stageDur:  obs.NewHistogramVec(obs.DefaultLatencyBuckets),
	}
	for _, ep := range knownEndpoints {
		m.endpoints[ep] = &endpointStats{}
	}
	return m
}

// solve accounts one evaluation's linear-solver work: cumulative
// iterations, plus — when the auto backend abandoned its sparse
// factorization — the fallback count under the recorded reason.
func (m *metrics) solve(st matrix.SolveStats) {
	m.solverIterations.Add(st.Iterations)
	if st.Fallbacks == 0 {
		return
	}
	switch st.FallbackReason {
	case matrix.FallbackIterationCap:
		m.fallbacksIterCap.Add(st.Fallbacks)
	case matrix.FallbackBreakdown:
		m.fallbacksBreakdown.Add(st.Fallbacks)
	default:
		m.fallbacksUnspecified.Add(st.Fallbacks)
	}
}

// evaluation counts one computed evaluation, total and per model family.
func (m *metrics) evaluation(model string) {
	m.evaluations.Add(1)
	if c, ok := m.modelEvals.Load(model); ok {
		c.(*atomic.Int64).Add(1)
		return
	}
	c, _ := m.modelEvals.LoadOrStore(model, new(atomic.Int64))
	c.(*atomic.Int64).Add(1)
}

// request counts one served request.
func (m *metrics) request(endpoint string, code int) {
	if e, ok := m.endpoints[endpoint]; ok {
		e.count(code)
		return
	}
	if e, ok := m.extraEndpoints.Load(endpoint); ok {
		e.(*endpointStats).count(code)
		return
	}
	e, _ := m.extraEndpoints.LoadOrStore(endpoint, &endpointStats{})
	e.(*endpointStats).count(code)
}

// observeRequest records one request's end-to-end latency.
func (m *metrics) observeRequest(endpoint string, seconds float64) {
	m.reqDur.With(endpoint).Observe(seconds)
}

// observeStages records a trace's per-stage aggregates into the stage
// histogram (the trace's own root stage, if named, should be excluded
// by the caller via skip).
func (m *metrics) observeStages(stages map[string]obs.StageStat, skip string) {
	for stage, st := range stages {
		if stage == skip {
			continue
		}
		m.stageDur.With(stage).Observe(st.Duration.Seconds())
	}
}

// write renders the metrics in Prometheus text format.
func (m *metrics) write(w io.Writer) {
	fmt.Fprintln(w, "# HELP attackd_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE attackd_requests_total counter")
	eps := make([]string, 0, len(m.endpoints))
	byName := make(map[string]*endpointStats, len(m.endpoints))
	for ep, e := range m.endpoints {
		eps = append(eps, ep)
		byName[ep] = e
	}
	m.extraEndpoints.Range(func(k, v any) bool {
		eps = append(eps, k.(string))
		byName[k.(string)] = v.(*endpointStats)
		return true
	})
	sort.Strings(eps)
	for _, ep := range eps {
		codes, counts := byName[ep].codes()
		for i, code := range codes {
			fmt.Fprintf(w, "attackd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, code, counts[i])
		}
	}
	fmt.Fprintln(w, "# HELP attackd_cache_hits_total Result-cache hits.")
	fmt.Fprintln(w, "# TYPE attackd_cache_hits_total counter")
	fmt.Fprintf(w, "attackd_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintln(w, "# HELP attackd_cache_misses_total Result-cache misses.")
	fmt.Fprintln(w, "# TYPE attackd_cache_misses_total counter")
	fmt.Fprintf(w, "attackd_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintln(w, "# HELP attackd_evaluations_total Model evaluations actually computed (cache and singleflight filter the rest).")
	fmt.Fprintln(w, "# TYPE attackd_evaluations_total counter")
	fmt.Fprintf(w, "attackd_evaluations_total %d\n", m.evaluations.Load())
	fmt.Fprintln(w, "# HELP attackd_model_evaluations_total Model evaluations actually computed, by model family.")
	fmt.Fprintln(w, "# TYPE attackd_model_evaluations_total counter")
	var models []string
	modelCounters := make(map[string]int64)
	m.modelEvals.Range(func(k, v any) bool {
		models = append(models, k.(string))
		modelCounters[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	sort.Strings(models)
	for _, k := range models {
		fmt.Fprintf(w, "attackd_model_evaluations_total{model=%q} %d\n", k, modelCounters[k])
	}
	fmt.Fprintln(w, "# HELP attackd_sim_evaluations_total Simulation sweeps actually executed.")
	fmt.Fprintln(w, "# TYPE attackd_sim_evaluations_total counter")
	fmt.Fprintf(w, "attackd_sim_evaluations_total %d\n", m.simEvaluations.Load())
	fmt.Fprintln(w, "# HELP attackd_sim_events_total Churn events simulated by /v1/simsweep evaluations.")
	fmt.Fprintln(w, "# TYPE attackd_sim_events_total counter")
	fmt.Fprintf(w, "attackd_sim_events_total %d\n", m.simEvents.Load())
	fmt.Fprintln(w, "# HELP attackd_singleflight_shared_total Requests that piggybacked on an identical in-flight evaluation.")
	fmt.Fprintln(w, "# TYPE attackd_singleflight_shared_total counter")
	fmt.Fprintf(w, "attackd_singleflight_shared_total %d\n", m.singleflightShared.Load())
	fmt.Fprintln(w, "# HELP attackd_stream_cells_total Cells written to NDJSON streams.")
	fmt.Fprintln(w, "# TYPE attackd_stream_cells_total counter")
	fmt.Fprintf(w, "attackd_stream_cells_total %d\n", m.streamCells.Load())
	fmt.Fprintln(w, "# HELP attackd_jobs_total Async jobs, by terminal-or-submitted state.")
	fmt.Fprintln(w, "# TYPE attackd_jobs_total counter")
	fmt.Fprintf(w, "attackd_jobs_total{state=\"submitted\"} %d\n", m.jobsSubmitted.Load())
	fmt.Fprintf(w, "attackd_jobs_total{state=\"done\"} %d\n", m.jobsCompleted.Load())
	fmt.Fprintf(w, "attackd_jobs_total{state=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "attackd_jobs_total{state=\"canceled\"} %d\n", m.jobsCanceled.Load())
	fmt.Fprintln(w, "# HELP attackd_jobs_active Async jobs currently running.")
	fmt.Fprintln(w, "# TYPE attackd_jobs_active gauge")
	fmt.Fprintf(w, "attackd_jobs_active %d\n", m.jobsActive.Load())
	fmt.Fprintln(w, "# HELP attackd_inflight_evaluations Evaluations currently running.")
	fmt.Fprintln(w, "# TYPE attackd_inflight_evaluations gauge")
	fmt.Fprintf(w, "attackd_inflight_evaluations %d\n", m.inflight.Load())
	fmt.Fprintln(w, "# HELP attackd_solver_iterations_total Iterative linear-solver iterations spent by evaluations.")
	fmt.Fprintln(w, "# TYPE attackd_solver_iterations_total counter")
	fmt.Fprintf(w, "attackd_solver_iterations_total %d\n", m.solverIterations.Load())
	fmt.Fprintln(w, "# HELP attackd_solver_fallbacks_total Auto-backend sparse-to-dense fallbacks, by reason.")
	fmt.Fprintln(w, "# TYPE attackd_solver_fallbacks_total counter")
	fmt.Fprintf(w, "attackd_solver_fallbacks_total{reason=\"iteration_cap\"} %d\n", m.fallbacksIterCap.Load())
	fmt.Fprintf(w, "attackd_solver_fallbacks_total{reason=\"breakdown\"} %d\n", m.fallbacksBreakdown.Load())
	fmt.Fprintf(w, "attackd_solver_fallbacks_total{reason=\"unspecified\"} %d\n", m.fallbacksUnspecified.Load())
	m.reqDur.WriteProm(w, "attackd_request_duration_seconds",
		"End-to-end request latency, by endpoint.", "endpoint")
	m.stageDur.WriteProm(w, "attackd_stage_duration_seconds",
		"Per-request pipeline stage time (aggregated across parallel lanes), by stage.", "stage")
	obs.WriteRuntimeMetrics(w, "attackd_go_")
}
