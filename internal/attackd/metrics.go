package attackd

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"targetedattacks/internal/matrix"
)

// metrics is the server's instrumentation: monotonically increasing
// counters plus an in-flight gauge, rendered in the Prometheus text
// exposition format by /metrics. Everything is lock-free on the hot
// path; the requests map takes a mutex only on a new (endpoint, code)
// pair.
type metrics struct {
	mu         sync.Mutex
	requests   map[string]*atomic.Int64 // key: endpoint + "\x00" + status code
	modelEvals map[string]*atomic.Int64 // key: model family name

	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	evaluations        atomic.Int64
	simEvaluations     atomic.Int64
	simEvents          atomic.Int64
	singleflightShared atomic.Int64
	inflight           atomic.Int64

	streamCells   atomic.Int64
	jobsSubmitted atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	jobsActive    atomic.Int64

	solverIterations     atomic.Int64
	fallbacksIterCap     atomic.Int64
	fallbacksBreakdown   atomic.Int64
	fallbacksUnspecified atomic.Int64
}

// solve accounts one evaluation's linear-solver work: cumulative
// iterations, plus — when the auto backend abandoned its sparse
// factorization — the fallback count under the recorded reason.
func (m *metrics) solve(st matrix.SolveStats) {
	m.solverIterations.Add(st.Iterations)
	if st.Fallbacks == 0 {
		return
	}
	switch st.FallbackReason {
	case matrix.FallbackIterationCap:
		m.fallbacksIterCap.Add(st.Fallbacks)
	case matrix.FallbackBreakdown:
		m.fallbacksBreakdown.Add(st.Fallbacks)
	default:
		m.fallbacksUnspecified.Add(st.Fallbacks)
	}
}

func newMetrics() *metrics {
	return &metrics{
		requests:   make(map[string]*atomic.Int64),
		modelEvals: make(map[string]*atomic.Int64),
	}
}

// evaluation counts one computed evaluation, total and per model family.
func (m *metrics) evaluation(model string) {
	m.evaluations.Add(1)
	m.mu.Lock()
	c, ok := m.modelEvals[model]
	if !ok {
		c = new(atomic.Int64)
		m.modelEvals[model] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// request counts one served request.
func (m *metrics) request(endpoint string, code int) {
	key := fmt.Sprintf("%s\x00%d", endpoint, code)
	m.mu.Lock()
	c, ok := m.requests[key]
	if !ok {
		c = new(atomic.Int64)
		m.requests[key] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// write renders the metrics in Prometheus text format.
func (m *metrics) write(w io.Writer) {
	fmt.Fprintln(w, "# HELP attackd_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE attackd_requests_total counter")
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counters := make([]*atomic.Int64, len(keys))
	for i, k := range keys {
		counters[i] = m.requests[k]
	}
	m.mu.Unlock()
	for i, k := range keys {
		var endpoint, code string
		for j := 0; j < len(k); j++ {
			if k[j] == '\x00' {
				endpoint, code = k[:j], k[j+1:]
				break
			}
		}
		fmt.Fprintf(w, "attackd_requests_total{endpoint=%q,code=%q} %d\n", endpoint, code, counters[i].Load())
	}
	fmt.Fprintln(w, "# HELP attackd_cache_hits_total Result-cache hits.")
	fmt.Fprintln(w, "# TYPE attackd_cache_hits_total counter")
	fmt.Fprintf(w, "attackd_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintln(w, "# HELP attackd_cache_misses_total Result-cache misses.")
	fmt.Fprintln(w, "# TYPE attackd_cache_misses_total counter")
	fmt.Fprintf(w, "attackd_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintln(w, "# HELP attackd_evaluations_total Model evaluations actually computed (cache and singleflight filter the rest).")
	fmt.Fprintln(w, "# TYPE attackd_evaluations_total counter")
	fmt.Fprintf(w, "attackd_evaluations_total %d\n", m.evaluations.Load())
	fmt.Fprintln(w, "# HELP attackd_model_evaluations_total Model evaluations actually computed, by model family.")
	fmt.Fprintln(w, "# TYPE attackd_model_evaluations_total counter")
	m.mu.Lock()
	models := make([]string, 0, len(m.modelEvals))
	for k := range m.modelEvals {
		models = append(models, k)
	}
	sort.Strings(models)
	modelCounters := make([]*atomic.Int64, len(models))
	for i, k := range models {
		modelCounters[i] = m.modelEvals[k]
	}
	m.mu.Unlock()
	for i, k := range models {
		fmt.Fprintf(w, "attackd_model_evaluations_total{model=%q} %d\n", k, modelCounters[i].Load())
	}
	fmt.Fprintln(w, "# HELP attackd_sim_evaluations_total Simulation sweeps actually executed.")
	fmt.Fprintln(w, "# TYPE attackd_sim_evaluations_total counter")
	fmt.Fprintf(w, "attackd_sim_evaluations_total %d\n", m.simEvaluations.Load())
	fmt.Fprintln(w, "# HELP attackd_sim_events_total Churn events simulated by /v1/simsweep evaluations.")
	fmt.Fprintln(w, "# TYPE attackd_sim_events_total counter")
	fmt.Fprintf(w, "attackd_sim_events_total %d\n", m.simEvents.Load())
	fmt.Fprintln(w, "# HELP attackd_singleflight_shared_total Requests that piggybacked on an identical in-flight evaluation.")
	fmt.Fprintln(w, "# TYPE attackd_singleflight_shared_total counter")
	fmt.Fprintf(w, "attackd_singleflight_shared_total %d\n", m.singleflightShared.Load())
	fmt.Fprintln(w, "# HELP attackd_stream_cells_total Cells written to NDJSON streams.")
	fmt.Fprintln(w, "# TYPE attackd_stream_cells_total counter")
	fmt.Fprintf(w, "attackd_stream_cells_total %d\n", m.streamCells.Load())
	fmt.Fprintln(w, "# HELP attackd_jobs_total Async jobs, by terminal-or-submitted state.")
	fmt.Fprintln(w, "# TYPE attackd_jobs_total counter")
	fmt.Fprintf(w, "attackd_jobs_total{state=\"submitted\"} %d\n", m.jobsSubmitted.Load())
	fmt.Fprintf(w, "attackd_jobs_total{state=\"done\"} %d\n", m.jobsCompleted.Load())
	fmt.Fprintf(w, "attackd_jobs_total{state=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "attackd_jobs_total{state=\"canceled\"} %d\n", m.jobsCanceled.Load())
	fmt.Fprintln(w, "# HELP attackd_jobs_active Async jobs currently running.")
	fmt.Fprintln(w, "# TYPE attackd_jobs_active gauge")
	fmt.Fprintf(w, "attackd_jobs_active %d\n", m.jobsActive.Load())
	fmt.Fprintln(w, "# HELP attackd_inflight_evaluations Evaluations currently running.")
	fmt.Fprintln(w, "# TYPE attackd_inflight_evaluations gauge")
	fmt.Fprintf(w, "attackd_inflight_evaluations %d\n", m.inflight.Load())
	fmt.Fprintln(w, "# HELP attackd_solver_iterations_total Iterative linear-solver iterations spent by evaluations.")
	fmt.Fprintln(w, "# TYPE attackd_solver_iterations_total counter")
	fmt.Fprintf(w, "attackd_solver_iterations_total %d\n", m.solverIterations.Load())
	fmt.Fprintln(w, "# HELP attackd_solver_fallbacks_total Auto-backend sparse-to-dense fallbacks, by reason.")
	fmt.Fprintln(w, "# TYPE attackd_solver_fallbacks_total counter")
	fmt.Fprintf(w, "attackd_solver_fallbacks_total{reason=\"iteration_cap\"} %d\n", m.fallbacksIterCap.Load())
	fmt.Fprintf(w, "attackd_solver_fallbacks_total{reason=\"breakdown\"} %d\n", m.fallbacksBreakdown.Load())
	fmt.Fprintf(w, "attackd_solver_fallbacks_total{reason=\"unspecified\"} %d\n", m.fallbacksUnspecified.Load())
}
