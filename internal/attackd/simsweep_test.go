package attackd

import (
	"context"
	"net/http"
	"testing"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/core"
	"targetedattacks/internal/sweep"
)

func simRequest() SimSweepRequest {
	return SimSweepRequest{
		Strategies:   "paper,passive",
		Mu:           "0.1,0.25",
		D:            "0.9",
		Sizes:        "40",
		Events:       300,
		Replicas:     2,
		Seed:         9,
		Stationary:   true,
		LookupTrials: 20,
	}
}

func TestSimSweepEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := simRequest()
	code, got := postJSON[SimSweepResponse](t, ts.URL+"/v1/simsweep", req)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %+v", code, got)
	}
	if len(got.Cells) != 4 {
		t.Fatalf("cells = %d, want strategies×µ = 4", len(got.Cells))
	}
	if got.Cached {
		t.Error("first response claims cached")
	}
	if got.Events != int64(4*req.Replicas*req.Events) {
		t.Errorf("events = %d, want %d", got.Events, 4*req.Replicas*req.Events)
	}
	for i, cell := range got.Cells {
		if cell.Index != i {
			t.Errorf("cell %d carries index %d", i, cell.Index)
		}
		if cell.Summary.Replicas != req.Replicas {
			t.Errorf("cell %d aggregated %d replicas", i, cell.Summary.Replicas)
		}
		if cell.Summary.FinalPeers.Mean <= 0 {
			t.Errorf("cell %d has empty final population", i)
		}
		if cell.Summary.Availability.N != req.Replicas {
			t.Errorf("cell %d availability has %d samples", i, cell.Summary.Availability.N)
		}
	}
	// The HTTP result must match a direct EvaluateSim of the same plan.
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.simPlanFromRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sweep.EvaluateSim(context.Background(), plan, sweep.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range rs.Cells {
		if got.Cells[i].Summary.PollutedFraction.Mean != cell.Summary.PollutedFraction.Mean() {
			t.Errorf("cell %d pollution %v over HTTP, %v direct",
				i, got.Cells[i].Summary.PollutedFraction.Mean, cell.Summary.PollutedFraction.Mean())
		}
		if got.Cells[i].Strategy != cell.Cell.Strategy.String() {
			t.Errorf("cell %d strategy %q over HTTP, %q direct", i, got.Cells[i].Strategy, cell.Cell.Strategy)
		}
	}
	// Second identical request must come from the cache.
	code, again := postJSON[SimSweepResponse](t, ts.URL+"/v1/simsweep", req)
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("repeat request: status=%d cached=%v, want 200/true", code, again.Cached)
	}
	again.Cached = false
	for i := range again.Cells {
		if again.Cells[i] != got.Cells[i] {
			t.Errorf("cached cell %d differs from fresh evaluation", i)
		}
	}
}

func TestSimSweepAbsorption(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := SimSweepRequest{
		Mu:               "0.2",
		Sizes:            "10",
		Events:           1 << 16,
		Replicas:         4,
		Seed:             3,
		TrackAbsorption:  true,
		StopOnAbsorption: true,
	}
	code, got := postJSON[SimSweepResponse](t, ts.URL+"/v1/simsweep", req)
	if code != http.StatusOK {
		t.Fatalf("status = %d: %+v", code, got)
	}
	sum := got.Cells[0].Summary
	absorbed := sum.SafeMerge + sum.SafeSplit + sum.PollutedMerge + sum.PollutedSplit
	if absorbed != int64(req.Replicas) {
		t.Errorf("absorbed = %d, want one sample per replica (%d)", absorbed, req.Replicas)
	}
	if sum.SafeTime.N != req.Replicas || sum.SafeTime.Mean <= 0 {
		t.Errorf("safe-time summary %+v, want %d positive samples", sum.SafeTime, req.Replicas)
	}
}

func TestSimSweepRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		mod  func(*SimSweepRequest)
	}{
		{"missing mu", func(r *SimSweepRequest) { r.Mu = "" }},
		{"missing sizes", func(r *SimSweepRequest) { r.Sizes = "" }},
		{"missing events", func(r *SimSweepRequest) { r.Events = 0 }},
		{"bad strategy", func(r *SimSweepRequest) { r.Strategies = "sneaky" }},
		{"bad mode", func(r *SimSweepRequest) { r.Mode = "hyperspeed" }},
		{"bad mu", func(r *SimSweepRequest) { r.Mu = "1.5" }},
		{"too many replicas", func(r *SimSweepRequest) { r.Replicas = DefaultMaxSimReplicas + 1 }},
		{"population too large", func(r *SimSweepRequest) { r.Sizes = "99999999" }},
		{"event budget", func(r *SimSweepRequest) { r.Events = 1 << 30; r.Replicas = 64 }},
		{"stop without tracking", func(r *SimSweepRequest) { r.StopOnAbsorption = true }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := simRequest()
			c.mod(&req)
			code, resp := postJSON[map[string]any](t, ts.URL+"/v1/simsweep", req)
			if code != http.StatusBadRequest {
				t.Errorf("status = %d (%v), want 400", code, resp)
			}
		})
	}
}

func TestSimSweepCellLimit(t *testing.T) {
	ts := newTestServer(t, Config{MaxSimCells: 2})
	req := simRequest() // 4 cells
	code, resp := postJSON[map[string]any](t, ts.URL+"/v1/simsweep", req)
	if code != http.StatusBadRequest {
		t.Errorf("status = %d (%v), want 400 over the cell limit", code, resp)
	}
}

func TestSimPlanDefaults(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.simPlanFromRequest(SimSweepRequest{Mu: "0.2", Sizes: "40", Events: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Strategies) != 1 || plan.Strategies[0] != adversary.StrategyPaper {
		t.Errorf("default strategies = %v", plan.Strategies)
	}
	if want := (core.Params{C: 7, Delta: 7, K: 1, Nu: 0.1, Mu: 0, D: 0}); plan.Params != want {
		t.Errorf("default params = %+v, want %+v", plan.Params, want)
	}
	if len(plan.D) != 1 || plan.D[0] != 0.9 {
		t.Errorf("default d axis = %v", plan.D)
	}
	if plan.Replicas != 1 || !plan.FastIdentity {
		t.Errorf("defaults: replicas=%d fast=%t", plan.Replicas, plan.FastIdentity)
	}
}

func TestCanonicalSimKeysNormalize(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.simPlanFromRequest(SimSweepRequest{Mu: "0.50", Sizes: "40", Events: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.simPlanFromRequest(SimSweepRequest{Mu: "0.5", Sizes: "40", Events: 100})
	if err != nil {
		t.Fatal(err)
	}
	if canonicalSimPlanKey(a) != canonicalSimPlanKey(b) {
		t.Error("value-equal sim plans canonicalize to different keys")
	}
	c, err := s.simPlanFromRequest(SimSweepRequest{Mu: "0.5", Sizes: "40", Events: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if canonicalSimPlanKey(a) == canonicalSimPlanKey(c) {
		t.Error("different seeds share a cache key")
	}
}
