package core

import (
	"math"
	"testing"
)

// relClose reports |got−want| ≤ tol·max(1,|want|).
func relClose(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

func TestFailureFreeRandomWalkBound(t *testing.T) {
	// Paper, Section VII-C: with µ = 0, E(T_S) + E(T_P) = ⌊∆²/4⌋ = 12,
	// the absorption time of the symmetric walk started at ⌊∆/2⌋.
	for _, k := range []int{1, 3, 7} {
		m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0, D: 0.9, K: k, Nu: 0.1})
		a, err := m.AnalyzeNamed(DistributionDelta, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.ExpectedSafeTime-12) > 1e-9 {
			t.Errorf("k=%d: E(T_S) = %v, want 12", k, a.ExpectedSafeTime)
		}
		if math.Abs(a.ExpectedPollutedTime) > 1e-9 {
			t.Errorf("k=%d: E(T_P) = %v, want 0", k, a.ExpectedPollutedTime)
		}
	}
}

func TestFailureFreeAbsorptionSplit(t *testing.T) {
	// Paper, Section VII-E: with µ = 0 and α = δ (s₀ = 3),
	// p(A^m_S) = 1 − 3/7 ≈ 0.57 and p(A^ℓ_S) = 3/7 ≈ 0.43.
	m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0, D: 0.9, K: 1, Nu: 0.1})
	a, err := m.AnalyzeNamed(DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(a.Absorption[ClassNameSafeMerge], 4.0/7.0, 1e-9) {
		t.Errorf("p(safe-merge) = %v, want 4/7", a.Absorption[ClassNameSafeMerge])
	}
	if !relClose(a.Absorption[ClassNameSafeSplit], 3.0/7.0, 1e-9) {
		t.Errorf("p(safe-split) = %v, want 3/7", a.Absorption[ClassNameSafeSplit])
	}
	if a.Absorption[ClassNamePollutedMerge] != 0 || a.Absorption[ClassNamePollutedSplit] != 0 {
		t.Errorf("polluted absorption nonzero at µ=0: %v", a.Absorption)
	}
}

// TestTableOne reproduces the paper's Table I (k=1, C=7, ∆=7, α=δ).
// Paper values are matched to their printed precision, except the cell
// (µ=10%, d=0.999) where the paper prints 1518: every other cell in that
// row and column matches us to 4+ digits, the printed value breaks the
// paper's own ~7·10⁵ growth pattern between d=0.99 and d=0.999, and our
// computed 1.488·10⁶ fits it; see EXPERIMENTS.md.
func TestTableOne(t *testing.T) {
	tests := []struct {
		mu, d        float64
		wantS, wantP float64
		tolS, tolP   float64
	}{
		{0.0, 0.95, 12.0, 0.0, 1e-3, 1e-9},
		{0.0, 0.99, 12.0, 0.0, 1e-3, 1e-9},
		{0.0, 0.999, 12.0, 0.0, 1e-3, 1e-9},
		{0.10, 0.95, 12.09, 0.15, 1e-3, 1e-2},
		{0.10, 0.99, 12.08, 2.6, 1e-3, 5e-3},
		{0.10, 0.999, 12.08, 1.488e6, 1e-3, 1e-2}, // paper prints 1518; see note above
		{0.20, 0.95, 11.88, 1.14, 1e-3, 1e-2},
		{0.20, 0.99, 11.84, 699.7, 1e-3, 1e-3},
		{0.20, 0.999, 11.83, 511810822, 1e-3, 1e-3},
		{0.30, 0.95, 11.54, 5.96, 1e-3, 1e-3},
		{0.30, 0.99, 11.48, 12597, 1e-3, 1e-3},
		{0.30, 0.999, 11.47, 9299884149, 1e-3, 1e-3},
	}
	for _, tt := range tests {
		m := buildModel(t, Params{C: 7, Delta: 7, Mu: tt.mu, D: tt.d, K: 1, Nu: 0.1})
		a, err := m.AnalyzeNamed(DistributionDelta, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(a.ExpectedSafeTime, tt.wantS, tt.tolS) {
			t.Errorf("µ=%v d=%v: E(T_S) = %v, want %v", tt.mu, tt.d, a.ExpectedSafeTime, tt.wantS)
		}
		if !relClose(a.ExpectedPollutedTime, tt.wantP, tt.tolP) {
			t.Errorf("µ=%v d=%v: E(T_P) = %v, want %v", tt.mu, tt.d, a.ExpectedPollutedTime, tt.wantP)
		}
	}
}

// TestTableTwo reproduces the paper's Table II (k=1, C=7, ∆=7, d=90%,
// α=δ). The paper's cell (µ=20%, E(T_P,2)) prints 0.26; our value 0.0264
// matches the magnitude of all neighboring cells and the printed value is
// read as a typo for 0.026 (see EXPERIMENTS.md).
func TestTableTwo(t *testing.T) {
	tests := []struct {
		mu                     float64
		s1, s2, p1, p2         float64
		tolS1, tolS2, tolP, t2 float64
	}{
		{0.0, 12, 0, 0, 0, 1e-9, 1e-9, 1e-9, 1e-9},
		{0.10, 12.085, 0.013, 0.099, 0.004, 1e-3, 0.1, 0.02, 0.1},
		{0.20, 11.890, 0.033, 0.558, 0.026, 1e-3, 0.05, 0.01, 0.05},
		{0.30, 11.570, 0.043, 1.611, 0.075, 1e-3, 0.05, 1e-3, 0.02},
	}
	for _, tt := range tests {
		m := buildModel(t, Params{C: 7, Delta: 7, Mu: tt.mu, D: 0.90, K: 1, Nu: 0.1})
		a, err := m.AnalyzeNamed(DistributionDelta, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(a.SafeSojourns[0], tt.s1, tt.tolS1) {
			t.Errorf("µ=%v: E(T_S,1) = %v, want %v", tt.mu, a.SafeSojourns[0], tt.s1)
		}
		if !relClose(a.SafeSojourns[1], tt.s2, tt.tolS2) {
			t.Errorf("µ=%v: E(T_S,2) = %v, want %v", tt.mu, a.SafeSojourns[1], tt.s2)
		}
		if !relClose(a.PollutedSojourns[0], tt.p1, tt.tolP) {
			t.Errorf("µ=%v: E(T_P,1) = %v, want %v", tt.mu, a.PollutedSojourns[0], tt.p1)
		}
		if !relClose(a.PollutedSojourns[1], tt.p2, tt.t2) {
			t.Errorf("µ=%v: E(T_P,2) = %v, want %v", tt.mu, a.PollutedSojourns[1], tt.p2)
		}
	}
}

func TestSojournsApproximateTotals(t *testing.T) {
	// Paper, Section VII-D: E(T_S) ≃ E(T_S,1): the protocol essentially
	// does not alternate between safe and polluted states.
	m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0.10, D: 0.90, K: 1, Nu: 0.1})
	a, err := m.AnalyzeNamed(DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.ExpectedSafeTime-a.SafeSojourns[0]) > 0.05 {
		t.Errorf("E(T_S) = %v vs E(T_S,1) = %v: should nearly coincide",
			a.ExpectedSafeTime, a.SafeSojourns[0])
	}
}

func TestAbsorptionProbabilitiesSumToOne(t *testing.T) {
	for _, dist := range []InitialDistribution{DistributionDelta, DistributionBeta} {
		for _, mu := range []float64{0, 0.15, 0.30} {
			m := buildModel(t, Params{C: 7, Delta: 7, Mu: mu, D: 0.9, K: 1, Nu: 0.1})
			a, err := m.AnalyzeNamed(dist, 1)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, p := range a.Absorption {
				if p < -1e-12 {
					t.Errorf("negative absorption probability %v", p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("α=%v µ=%v: absorption sums to %v", dist, mu, sum)
			}
		}
	}
}

func TestPollutedSplitUnreachable(t *testing.T) {
	// Paper, Section VI: "the set of polluted split closed states is
	// empty" — absorption probability 0 from both initial distributions.
	for _, k := range []int{1, 4, 7} {
		for _, dist := range []InitialDistribution{DistributionDelta, DistributionBeta} {
			m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0.3, D: 0.95, K: k, Nu: 0.1})
			a, err := m.AnalyzeNamed(dist, 1)
			if err != nil {
				t.Fatal(err)
			}
			if a.Absorption[ClassNamePollutedSplit] > 1e-12 {
				t.Errorf("k=%d α=%v: p(polluted-split) = %v, want 0",
					k, dist, a.Absorption[ClassNamePollutedSplit])
			}
		}
	}
}

func TestPollutedMergeContainment(t *testing.T) {
	// Paper, Section VII-E: for α = δ, p(A^m_P) < 8% even at µ = 30%,
	// d = 90% — the fault-containment headline.
	m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0.30, D: 0.90, K: 1, Nu: 0.1})
	a, err := m.AnalyzeNamed(DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := a.Absorption[ClassNamePollutedMerge]; p >= 0.08 {
		t.Errorf("p(polluted-merge) = %v, want < 0.08 (paper Section VII-E)", p)
	}
}

func TestProtocol1OutperformsProtocolC(t *testing.T) {
	// Paper, second lesson of Section VII-C: E(T_S^1) ≥ E(T_S^C) and
	// E(T_P^1) ≤ E(T_P^C) for matched (µ, d, α).
	for _, dist := range []InitialDistribution{DistributionDelta, DistributionBeta} {
		for _, mu := range []float64{0.10, 0.20, 0.30} {
			for _, d := range []float64{0.30, 0.80, 0.90} {
				m1 := buildModel(t, Params{C: 7, Delta: 7, Mu: mu, D: d, K: 1, Nu: 0.1})
				mC := buildModel(t, Params{C: 7, Delta: 7, Mu: mu, D: d, K: 7, Nu: 0.1})
				a1, err := m1.AnalyzeNamed(dist, 1)
				if err != nil {
					t.Fatal(err)
				}
				aC, err := mC.AnalyzeNamed(dist, 1)
				if err != nil {
					t.Fatal(err)
				}
				if a1.ExpectedSafeTime < aC.ExpectedSafeTime-1e-9 {
					t.Errorf("α=%v µ=%v d=%v: E(T_S^1)=%v < E(T_S^C)=%v",
						dist, mu, d, a1.ExpectedSafeTime, aC.ExpectedSafeTime)
				}
				if a1.ExpectedPollutedTime > aC.ExpectedPollutedTime+1e-9 {
					t.Errorf("α=%v µ=%v d=%v: E(T_P^1)=%v > E(T_P^C)=%v",
						dist, mu, d, a1.ExpectedPollutedTime, aC.ExpectedPollutedTime)
				}
			}
		}
	}
}

func TestBetaRequiresLessAdversaryEffort(t *testing.T) {
	// Paper, first lesson of Section VII-C: starting from β (already
	// populated with malicious peers) yields more polluted time than
	// starting from δ.
	mu, d := 0.20, 0.90
	m := buildModel(t, Params{C: 7, Delta: 7, Mu: mu, D: d, K: 1, Nu: 0.1})
	aDelta, err := m.AnalyzeNamed(DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	aBeta, err := m.AnalyzeNamed(DistributionBeta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aBeta.ExpectedPollutedTime <= aDelta.ExpectedPollutedTime {
		t.Errorf("E(T_P | β) = %v ≤ E(T_P | δ) = %v; β should favor the adversary",
			aBeta.ExpectedPollutedTime, aDelta.ExpectedPollutedTime)
	}
}

func TestInitialDistributionsNormalized(t *testing.T) {
	m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0.25, D: 0.9, K: 1, Nu: 0.1})
	delta := m.InitialDelta()
	var sum float64
	for _, v := range delta {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("δ sums to %v", sum)
	}
	beta, err := m.InitialBeta()
	if err != nil {
		t.Fatal(err)
	}
	sum = 0
	for _, v := range beta {
		if v < 0 {
			t.Errorf("β has negative mass %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("β sums to %v", sum)
	}
}

func TestInitialDeltaPointMass(t *testing.T) {
	m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0.25, D: 0.9, K: 1, Nu: 0.1})
	alpha := m.InitialDelta()
	i := m.Space().MustIndex(State{S: 3, X: 0, Y: 0})
	if alpha[i] != 1 {
		t.Errorf("δ mass at (3,0,0) = %v, want 1", alpha[i])
	}
}

func TestInitialBetaMatchesFormula(t *testing.T) {
	// Spot-check relation (3) at a specific state.
	p := Params{C: 7, Delta: 7, Mu: 0.2, D: 0.9, K: 1, Nu: 0.1}
	m := buildModel(t, p)
	beta, err := m.InitialBeta()
	if err != nil {
		t.Fatal(err)
	}
	// β(2, 1, 1) = 1/6 · C(7,1)·0.2·0.8⁶ · C(2,1)·0.2·0.8.
	want := (1.0 / 6.0) * 7 * 0.2 * math.Pow(0.8, 6) * 2 * 0.2 * 0.8
	got := beta[m.Space().MustIndex(State{S: 2, X: 1, Y: 1})]
	if !relClose(got, want, 1e-9) {
		t.Errorf("β(2,1,1) = %v, want %v", got, want)
	}
}

func TestInitialPoint(t *testing.T) {
	m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0.25, D: 0.9, K: 1, Nu: 0.1})
	alpha, err := m.InitialPoint(State{S: 2, X: 1, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if alpha[m.Space().MustIndex(State{S: 2, X: 1, Y: 0})] != 1 {
		t.Error("point mass misplaced")
	}
	if _, err := m.InitialPoint(State{S: 99, X: 0, Y: 0}); err == nil {
		t.Error("invalid state: want error")
	}
}

func TestInitialNamed(t *testing.T) {
	m := buildModel(t, DefaultParams())
	if _, err := m.Initial(DistributionDelta); err != nil {
		t.Errorf("δ: %v", err)
	}
	if _, err := m.Initial(DistributionBeta); err != nil {
		t.Errorf("β: %v", err)
	}
	if _, err := m.Initial(InitialDistribution(99)); err == nil {
		t.Error("unknown distribution: want error")
	}
	if DistributionDelta.String() != "δ" || DistributionBeta.String() != "β" {
		t.Error("distribution names wrong")
	}
	if InitialDistribution(99).String() == "" {
		t.Error("unknown distribution must render")
	}
}

func TestChainAlphaLengthValidation(t *testing.T) {
	m := buildModel(t, DefaultParams())
	if _, err := m.Chain([]float64{1}); err == nil {
		t.Error("short alpha: want error")
	}
}

func TestAnalyzeAccessors(t *testing.T) {
	m := buildModel(t, DefaultParams())
	if m.Params().C != 7 || m.Space() == nil || m.TransitionMatrix() == nil {
		t.Error("accessors broken")
	}
	ind := m.TransientIndicator(ClassSafe)
	var n float64
	for _, v := range ind {
		n += v
	}
	if int(n) != 81 {
		t.Errorf("safe indicator counts %v states, want 81", n)
	}
}

func TestPollutionProbability(t *testing.T) {
	// µ = 0: pollution is impossible.
	m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0, D: 0.9, K: 1, Nu: 0.1})
	a, err := m.AnalyzeNamed(DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.PollutionProbability != 0 {
		t.Errorf("P(pollution) = %v at µ=0, want 0", a.PollutionProbability)
	}
	// Monotone in µ, bounded by 1.
	var prev float64
	for _, mu := range []float64{0.05, 0.15, 0.30} {
		m := buildModel(t, Params{C: 7, Delta: 7, Mu: mu, D: 0.9, K: 1, Nu: 0.1})
		a, err := m.AnalyzeNamed(DistributionDelta, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.PollutionProbability <= prev {
			t.Errorf("P(pollution) not increasing: %v at µ=%v after %v",
				a.PollutionProbability, mu, prev)
		}
		if a.PollutionProbability > 1+1e-12 {
			t.Errorf("P(pollution) = %v > 1", a.PollutionProbability)
		}
		prev = a.PollutionProbability
	}
	// Pollution probability dominates the polluted-merge probability
	// (being polluted at absorption implies having been polluted).
	mBig := buildModel(t, Params{C: 7, Delta: 7, Mu: 0.3, D: 0.95, K: 1, Nu: 0.1})
	aBig, err := mBig.AnalyzeNamed(DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aBig.PollutionProbability < aBig.Absorption[ClassNamePollutedMerge] {
		t.Errorf("P(pollution) = %v < p(polluted-merge) = %v",
			aBig.PollutionProbability, aBig.Absorption[ClassNamePollutedMerge])
	}
}

func TestPollutionProbabilityBetaStart(t *testing.T) {
	// Under β the cluster can start polluted, so the probability includes
	// that initial mass and must exceed the δ value.
	p := Params{C: 7, Delta: 7, Mu: 0.25, D: 0.9, K: 1, Nu: 0.1}
	m := buildModel(t, p)
	aDelta, err := m.AnalyzeNamed(DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	aBeta, err := m.AnalyzeNamed(DistributionBeta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aBeta.PollutionProbability <= aDelta.PollutionProbability {
		t.Errorf("P(pollution|β) = %v ≤ P(pollution|δ) = %v",
			aBeta.PollutionProbability, aDelta.PollutionProbability)
	}
}

func TestIncreasingDExtendsPollution(t *testing.T) {
	// Paper, third lesson of VII-C: for fixed µ, E(T_P) grows with d.
	var prev float64
	for i, d := range []float64{0.30, 0.80, 0.90, 0.95} {
		m := buildModel(t, Params{C: 7, Delta: 7, Mu: 0.2, D: d, K: 1, Nu: 0.1})
		a, err := m.AnalyzeNamed(DistributionDelta, 1)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && a.ExpectedPollutedTime < prev {
			t.Errorf("E(T_P) decreased from %v to %v as d grew to %v", prev, a.ExpectedPollutedTime, d)
		}
		prev = a.ExpectedPollutedTime
	}
}
