package core

import (
	"testing"
)

// TestWithSpaceBitIdentical: a matrix built against a shared,
// pre-enumerated space must be bit-identical to one that enumerates its
// own.
func TestWithSpaceBitIdentical(t *testing.T) {
	p := Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 3, Nu: 0.1}
	sp, err := NewSpace(p.C, p.Delta)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSp, err := BuildTransitionMatrix(p, WithSpace(sp))
	if err != nil {
		t.Fatal(err)
	}
	if gotSp != sp {
		t.Error("BuildTransitionMatrix must return the supplied space")
	}
	if !got.Equal(want) {
		t.Error("matrix built with a shared space differs from the direct build")
	}
}

func TestWithSpaceGeometryMismatch(t *testing.T) {
	sp, err := NewSpace(9, 9)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1}
	if _, _, err := BuildTransitionMatrix(p, WithSpace(sp)); err == nil {
		t.Error("mismatched space geometry must be rejected")
	}
}

// TestWithRule1GainsBitIdentical: consulting the precomputed relation (2)
// table must not change a single matrix entry, for any threshold.
func TestWithRule1GainsBitIdentical(t *testing.T) {
	for _, k := range []int{1, 3, 7} {
		for _, nu := range []float64{0.05, 0.1, 0.5, 0.9} {
			p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: k, Nu: nu}
			g, err := ComputeRule1Gains(p)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := BuildTransitionMatrix(p)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := BuildTransitionMatrix(p, WithRule1Gains(g))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("k=%d ν=%g: matrix built with gain table differs from direct build", k, nu)
			}
		}
	}
}

func TestWithRule1GainsMismatch(t *testing.T) {
	g, err := ComputeRule1Gains(Params{C: 7, Delta: 7, Mu: 0, D: 0, K: 3, Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{C: 7, Delta: 7, Mu: 0, D: 0, K: 4, Nu: 0.1}
	if _, _, err := BuildTransitionMatrix(p, WithRule1Gains(g)); err == nil {
		t.Error("gain table for a different protocol must be rejected")
	}
}

// TestRule1GainsMatchRule1Holds: the table's threshold decision and fire
// count must agree with the public per-state predicate on the whole
// eligible region.
func TestRule1GainsMatchRule1Holds(t *testing.T) {
	for _, k := range []int{2, 4, 7} {
		for _, nu := range []float64{0.05, 0.2, 0.5} {
			p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: k, Nu: nu}
			g, err := ComputeRule1Gains(p)
			if err != nil {
				t.Fatal(err)
			}
			var want int
			for s := 2; s < p.Delta; s++ {
				for x := 1; x <= p.Quorum(); x++ {
					for y := 0; y <= s; y++ {
						holds, err := Rule1Holds(p, s, x, y)
						if err != nil {
							t.Fatal(err)
						}
						fires, ok := g.Fires(nu, s, x, y)
						if !ok {
							t.Fatalf("k=%d: state (%d,%d,%d) outside table", k, s, x, y)
						}
						if fires != holds {
							t.Errorf("k=%d ν=%g state (%d,%d,%d): table says %v, Rule1Holds says %v",
								k, nu, s, x, y, fires, holds)
						}
						if holds {
							want++
						}
					}
				}
			}
			if got := g.CountFires(nu); got != want {
				t.Errorf("k=%d ν=%g: CountFires = %d, want %d", k, nu, got, want)
			}
		}
	}
}

// TestCutIndexPartitionsNu: equal cut indices must select equal firing
// sets (the sweep dedup invariant), and the cut index must be monotone
// in ν.
func TestCutIndexPartitionsNu(t *testing.T) {
	p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: 4, Nu: 0.1}
	g, err := ComputeRule1Gains(p)
	if err != nil {
		t.Fatal(err)
	}
	nus := []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.99}
	prevCut := -1
	for _, nu := range nus {
		cut := g.CutIndex(nu)
		if cut < prevCut {
			t.Errorf("CutIndex not monotone: ν=%g gives %d after %d", nu, cut, prevCut)
		}
		prevCut = cut
	}
	for _, nu1 := range nus {
		for _, nu2 := range nus {
			if g.CutIndex(nu1) != g.CutIndex(nu2) {
				continue
			}
			if g.CountFires(nu1) != g.CountFires(nu2) {
				t.Errorf("ν=%g and ν=%g share a cut index but differ in firing count", nu1, nu2)
			}
			// The full dedup claim: identical matrices at equal cuts.
			p1, p2 := p, p
			p1.Nu, p2.Nu = nu1, nu2
			m1, _, err := BuildTransitionMatrix(p1)
			if err != nil {
				t.Fatal(err)
			}
			m2, _, err := BuildTransitionMatrix(p2)
			if err != nil {
				t.Fatal(err)
			}
			if !m1.Equal(m2) {
				t.Errorf("ν=%g and ν=%g share a cut index but build different matrices", nu1, nu2)
			}
		}
	}
}
