package core

import (
	"fmt"
	"sort"
)

// Rule1Gains tabulates the left-hand side of relation (2) — the
// probability that a voluntary malicious core departure strictly
// increases the adversary's core representation — for every transient
// state in which the transition builder can consult Rule 1: 1 < s < ∆,
// 1 ≤ x ≤ c, 0 ≤ y ≤ s. The gain is a pure function of (C, ∆, k, s, x, y);
// neither µ, d nor ν enters it, ν only thresholds it (Rule 1 fires iff
// gain > 1 − ν). That makes the table the reusable half of a row
// structure: a sweep over churn/attack rates builds it once per
// (C, ∆, k) group and every cell's matrix construction reads it instead
// of re-summing the hypergeometric kernel per state.
//
// The table also powers cell deduplication: two ν values produce
// identical transition matrices whenever no distinct gain value lies
// between their thresholds, which CutIndex makes a single integer
// comparison.
type Rule1Gains struct {
	c, delta, k int
	quorum      int
	// gains[s-2] is the x-major table for spare size s: entry
	// (x-1)*(s+1) + y holds the gain of state (s, x, y).
	gains [][]float64
	// distinct is the ascending list of distinct gain values across the
	// whole table.
	distinct []float64
}

// ComputeRule1Gains evaluates relation (2) over every Rule 1-eligible
// state of Ω(C, ∆) under protocol_k. The per-state values are produced by
// the same kernel-table summation the transition builder uses, so a
// matrix built against the table is bit-identical to one that re-derives
// each gain in place.
func ComputeRule1Gains(p Params) (*Rule1Gains, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ker, err := kernelFor(p)
	if err != nil {
		return nil, err
	}
	g := &Rule1Gains{c: p.C, delta: p.Delta, k: p.K, quorum: p.Quorum()}
	if p.Delta > 2 {
		g.gains = make([][]float64, p.Delta-2)
	}
	seen := make(map[float64]struct{})
	for s := 2; s < p.Delta; s++ {
		tab := make([]float64, g.quorum*(s+1))
		for x := 1; x <= g.quorum; x++ {
			for y := 0; y <= s; y++ {
				v, err := rule1Gain(p, ker, s, x, y)
				if err != nil {
					return nil, fmt.Errorf("core: rule 1 gain at (%d,%d,%d): %w", s, x, y, err)
				}
				tab[(x-1)*(s+1)+y] = v
				seen[v] = struct{}{}
			}
		}
		g.gains[s-2] = tab
	}
	g.distinct = make([]float64, 0, len(seen))
	for v := range seen {
		g.distinct = append(g.distinct, v)
	}
	sort.Float64s(g.distinct)
	return g, nil
}

// matches reports whether the table was computed for the given geometry.
func (g *Rule1Gains) matches(p Params) bool {
	return g != nil && g.c == p.C && g.delta == p.Delta && g.k == p.K
}

// gain returns the tabulated gain of state (s, x, y); ok is false outside
// the eligible region (the builder then falls back to the direct path).
func (g *Rule1Gains) gain(s, x, y int) (float64, bool) {
	if s < 2 || s >= g.delta || x < 1 || x > g.quorum || y < 0 || y > s {
		return 0, false
	}
	return g.gains[s-2][(x-1)*(s+1)+y], true
}

// Fires reports whether Rule 1 fires in state (s, x, y) at threshold ν:
// gain > 1 − ν, the same comparison the transition builder applies.
func (g *Rule1Gains) Fires(nu float64, s, x, y int) (bool, bool) {
	v, ok := g.gain(s, x, y)
	return v > 1-nu, ok
}

// CountFires counts the eligible states in which Rule 1 fires at
// threshold ν.
func (g *Rule1Gains) CountFires(nu float64) int {
	var n int
	for s := 2; s < g.delta; s++ {
		for _, v := range g.gains[s-2] {
			if v > 1-nu {
				n++
			}
		}
	}
	return n
}

// CutIndex returns the number of distinct gain values strictly above
// 1 − ν. Because Rule 1 fires iff gain > 1 − ν, two thresholds with equal
// cut indices select the same firing set — and therefore, at equal
// (µ, d), identical transition matrices. The sweep planner uses this to
// evaluate one representative per firing set instead of one per ν.
func (g *Rule1Gains) CutIndex(nu float64) int {
	// distinct is ascending; binary search for the first value > 1-ν.
	lo, hi := 0, len(g.distinct)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.distinct[mid] > 1-nu {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return len(g.distinct) - lo
}
