package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildModel is a helper constructing a model that must be valid.
func buildModel(t *testing.T, p Params) *Model {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatalf("New(%v): %v", p, err)
	}
	return m
}

func TestTransitionMatrixStochastic(t *testing.T) {
	// Every row of M must sum to exactly 1 for a spread of parameters.
	params := []Params{
		{C: 7, Delta: 7, Mu: 0, D: 0, K: 1, Nu: 0.1},
		{C: 7, Delta: 7, Mu: 0.25, D: 0.9, K: 1, Nu: 0.1},
		{C: 7, Delta: 7, Mu: 0.25, D: 0.9, K: 7, Nu: 0.1},
		{C: 7, Delta: 7, Mu: 0.3, D: 0.999, K: 4, Nu: 0.05},
		{C: 4, Delta: 5, Mu: 0.1, D: 0.5, K: 2, Nu: 0.2},
		{C: 10, Delta: 4, Mu: 0.15, D: 0.8, K: 3, Nu: 0.1},
		{C: 1, Delta: 3, Mu: 0.5, D: 0.7, K: 1, Nu: 0.1},
	}
	for _, p := range params {
		m, sp, err := BuildTransitionMatrix(p)
		if err != nil {
			t.Fatalf("BuildTransitionMatrix(%v): %v", p, err)
		}
		for i, sum := range m.RowSums() {
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("%v: row %d (%v) sums to %v", p, i, sp.At(i), sum)
			}
		}
	}
}

func TestTransitionMatrixStochasticProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Params{
			C:     1 + r.Intn(9),
			Delta: 2 + r.Intn(7),
			Mu:    r.Float64(),
			D:     r.Float64() * 0.999,
			Nu:    0.01 + 0.98*r.Float64(),
		}
		p.K = 1 + r.Intn(p.C)
		m, _, err := BuildTransitionMatrix(p)
		if err != nil {
			return false
		}
		for _, sum := range m.RowSums() {
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransitionProbabilitiesNonNegative(t *testing.T) {
	p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.95, K: 5, Nu: 0.1}
	m, _, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Rows(); i++ {
		m.RowNonZeros(i, func(j int, v float64) {
			if v < 0 || v > 1+1e-12 {
				t.Errorf("M[%d,%d] = %v outside [0,1]", i, j, v)
			}
		})
	}
}

func TestAbsorbingStatesSelfLoop(t *testing.T) {
	p := Params{C: 7, Delta: 7, Mu: 0.2, D: 0.9, K: 1, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range sp.States() {
		if sp.Classify(st).Transient() {
			continue
		}
		if got := m.At(i, i); got != 1 {
			t.Errorf("absorbing state %v: self-loop = %v, want 1", st, got)
		}
	}
}

func TestMuZeroIsPureRandomWalk(t *testing.T) {
	// With µ = 0 and start (s,0,0) the spare size performs a symmetric
	// random walk: only (s±1, 0, 0) are reachable, each with probability ½.
	p := Params{C: 7, Delta: 7, Mu: 0, D: 0.9, K: 1, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s < p.Delta; s++ {
		i := sp.MustIndex(State{S: s, X: 0, Y: 0})
		up := m.At(i, sp.MustIndex(State{S: s + 1, X: 0, Y: 0}))
		down := m.At(i, sp.MustIndex(State{S: s - 1, X: 0, Y: 0}))
		if math.Abs(up-0.5) > 1e-12 || math.Abs(down-0.5) > 1e-12 {
			t.Errorf("s=%d: up=%v down=%v, want 0.5/0.5", s, up, down)
		}
	}
}

func TestRule2BlocksPollutedSplit(t *testing.T) {
	// From any polluted transient state, no transition may enter a
	// polluted split state (s = ∆ with x > c): Rule 2 discards all joins
	// at s = ∆−1 in polluted clusters.
	for _, k := range []int{1, 3, 7} {
		p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.95, K: k, Nu: 0.1}
		m, sp, err := BuildTransitionMatrix(p)
		if err != nil {
			t.Fatal(err)
		}
		pollutedSplit := make(map[int]bool)
		for _, i := range sp.IndicesOf(ClassPollutedSplit) {
			pollutedSplit[i] = true
		}
		for i, st := range sp.States() {
			if !sp.Classify(st).Transient() {
				continue
			}
			m.RowNonZeros(i, func(j int, v float64) {
				if pollutedSplit[j] && v > 0 {
					t.Errorf("k=%d: transition %v → %v with prob %v enters polluted split",
						k, st, sp.At(j), v)
				}
			})
		}
	}
}

func TestRule2SelfLoopAtSplitBoundary(t *testing.T) {
	// A polluted cluster with s = ∆−1 discards every join: the join half
	// of the probability mass must self-loop.
	p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: 1, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	st := State{S: p.Delta - 1, X: 3, Y: 2} // polluted (x > c = 2)
	i := sp.MustIndex(st)
	if loop := m.At(i, i); loop < probJoin {
		t.Errorf("self-loop at %v = %v, want ≥ %v (all joins discarded)", st, loop, probJoin)
	}
}

func TestHonestJoinAcceptedAtMergeBoundary(t *testing.T) {
	// A polluted cluster with s = 1 accepts honest joins (to stay away
	// from a merge): mass 0.5·(1−µ) must flow to (2, x, y).
	p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: 1, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	st := State{S: 1, X: 4, Y: 0}
	got := m.At(sp.MustIndex(st), sp.MustIndex(State{S: 2, X: 4, Y: 0}))
	if math.Abs(got-probJoin*(1-p.Mu)) > 1e-12 {
		t.Errorf("honest join at s=1: prob = %v, want %v", got, probJoin*(1-p.Mu))
	}
}

func TestHonestJoinDiscardedInPollutedCluster(t *testing.T) {
	// Polluted cluster with 1 < s < ∆−1: honest joins are discarded
	// (self-loop mass 0.5·(1−µ)), malicious joins accepted.
	p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: 1, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	st := State{S: 3, X: 4, Y: 1}
	i := sp.MustIndex(st)
	joinMal := m.At(i, sp.MustIndex(State{S: 4, X: 4, Y: 2}))
	if math.Abs(joinMal-probJoin*p.Mu) > 1e-12 {
		t.Errorf("malicious join prob = %v, want %v", joinMal, probJoin*p.Mu)
	}
	if loop := m.At(i, i); loop < probJoin*(1-p.Mu)-1e-12 {
		t.Errorf("self-loop %v < honest-join discard mass %v", loop, probJoin*(1-p.Mu))
	}
}

func TestSafeClusterAcceptsAllJoins(t *testing.T) {
	p := Params{C: 7, Delta: 7, Mu: 0.2, D: 0.9, K: 1, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	st := State{S: 2, X: 1, Y: 1}
	i := sp.MustIndex(st)
	mal := m.At(i, sp.MustIndex(State{S: 3, X: 1, Y: 2}))
	hon := m.At(i, sp.MustIndex(State{S: 3, X: 1, Y: 1}))
	if math.Abs(mal-0.5*p.Mu) > 1e-12 {
		t.Errorf("malicious join = %v, want %v", mal, 0.5*p.Mu)
	}
	if math.Abs(hon-0.5*(1-p.Mu)) > 1e-12 {
		t.Errorf("honest join = %v, want %v", hon, 0.5*(1-p.Mu))
	}
}

func TestPollutedMaintenanceBias(t *testing.T) {
	// In a polluted cluster, an honest core departure is replaced by a
	// malicious spare when one exists: (s,x,y) → (s−1, x+1, y−1).
	p := Params{C: 7, Delta: 7, Mu: 0.2, D: 0.9, K: 1, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	st := State{S: 3, X: 4, Y: 2}
	i := sp.MustIndex(st)
	want := probLeave * (float64(p.C) / float64(p.C+st.S)) * (1 - float64(st.X)/float64(p.C))
	got := m.At(i, sp.MustIndex(State{S: 2, X: 5, Y: 1}))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("biased replacement prob = %v, want %v", got, want)
	}
}

func TestMaliciousCoreNeverLeavesVoluntarilyWhenPolluted(t *testing.T) {
	// In a polluted state with d = 0.9 the un-expired branch must
	// self-loop (the adversary holds its core positions).
	p := Params{C: 7, Delta: 7, Mu: 0.2, D: 0.9, K: 7, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	st := State{S: 3, X: 5, Y: 3}
	i := sp.MustIndex(st)
	dx := math.Pow(p.D, float64(st.X))
	wantLoopAtLeast := probLeave * (float64(p.C) / float64(p.C+st.S)) * (float64(st.X) / float64(p.C)) * dx
	if loop := m.At(i, i); loop < wantLoopAtLeast-1e-12 {
		t.Errorf("self-loop %v < malicious-hold mass %v", loop, wantLoopAtLeast)
	}
}

func TestProtocol1MaintenanceIsSingleSwap(t *testing.T) {
	// For k = 1 the maintenance promotes exactly one random spare: after
	// an honest core leave in a safe cluster, the new core has x+1
	// malicious with probability y/s and x otherwise.
	p := Params{C: 7, Delta: 7, Mu: 0.2, D: 0.9, K: 1, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	st := State{S: 4, X: 2, Y: 2}
	i := sp.MustIndex(st)
	wh := probLeave * (float64(p.C) / float64(p.C+st.S)) * (1 - float64(st.X)/float64(p.C))
	pm := float64(st.Y) / float64(st.S)
	promoteMal := m.At(i, sp.MustIndex(State{S: 3, X: 3, Y: 1}))
	if math.Abs(promoteMal-wh*pm) > 1e-12 {
		t.Errorf("promote-malicious prob = %v, want %v", promoteMal, wh*pm)
	}
	// The promote-honest target (s−1, x, y) is shared with the
	// honest-spare-leave branch, so both contributions appear there.
	spareHonest := probLeave * (float64(st.S) / float64(p.C+st.S)) * (1 - pm)
	promoteHon := m.At(i, sp.MustIndex(State{S: 3, X: 2, Y: 2}))
	if want := wh*(1-pm) + spareHonest; math.Abs(promoteHon-want) > 1e-12 {
		t.Errorf("promote-honest prob = %v, want %v", promoteHon, want)
	}
}

func TestRule1NeverFiresForK1(t *testing.T) {
	// Paper, Section V-A: "for k = 1, Relation (1) is never satisfied."
	p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: 1, Nu: 0.3}
	for s := 1; s < p.Delta; s++ {
		for x := 1; x <= p.Quorum(); x++ {
			for y := 0; y <= s; y++ {
				fires, err := Rule1Holds(p, s, x, y)
				if err != nil {
					t.Fatal(err)
				}
				if fires {
					t.Errorf("Rule 1 fired for k=1 at (%d,%d,%d)", s, x, y)
				}
			}
		}
	}
}

func TestRule1GainProbabilityBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Params{C: 4 + r.Intn(6), Delta: 7, Mu: 0.2, D: 0.9, Nu: 0.1}
		p.K = 1 + r.Intn(p.C)
		s := 1 + r.Intn(p.Delta-1)
		x := r.Intn(p.C + 1)
		y := r.Intn(s + 1)
		g, err := Rule1GainProbability(p, s, x, y)
		if err != nil {
			return false
		}
		return g >= 0 && g <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRule1RequiresTwoMaliciousSpares(t *testing.T) {
	// Gain needs j ≥ i+2 promoted malicious, impossible with y ≤ 1 and
	// i = 0 contributions dominating; for y ∈ {0,1} the gain must be 0
	// when k−1 cannot push malicious back (x = 1 ⇒ x−1 = 0 ⇒ i = 0).
	p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: 7, Nu: 0.1}
	for y := 0; y <= 1; y++ {
		g, err := Rule1GainProbability(p, 4, 1, y)
		if err != nil {
			t.Fatal(err)
		}
		if g != 0 {
			t.Errorf("y=%d: gain probability = %v, want 0", y, g)
		}
	}
}

func TestRule1CanFireForLargeK(t *testing.T) {
	// With k = C, a full reshuffle from a spare set loaded with malicious
	// peers makes a strict gain nearly certain: (s=6, x=1, y=6): the core
	// is rebuilt from 6 remaining honest... find at least one state where
	// Rule 1 fires to confirm the mechanism is live.
	p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: 7, Nu: 0.5}
	found := false
	for s := 2; s < p.Delta; s++ {
		for x := 1; x <= p.Quorum(); x++ {
			for y := 2; y <= s; y++ {
				fires, err := Rule1Holds(p, s, x, y)
				if err != nil {
					t.Fatal(err)
				}
				if fires {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("Rule 1 never fires for k=C even with ν=0.5; mechanism dead?")
	}
}

func TestBuildTransitionMatrixRejectsBadParams(t *testing.T) {
	if _, _, err := BuildTransitionMatrix(Params{C: 0, Delta: 7, K: 1, Nu: 0.1}); err == nil {
		t.Error("invalid params: want error")
	}
}

func TestReachableStatesStayInOmega(t *testing.T) {
	// Walk the chain from δ for many steps with random choices: every
	// visited state must classify and index correctly (exercises
	// MustIndex on all transition targets).
	p := Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: 3, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	cur := sp.MustIndex(State{S: 3, X: 0, Y: 0})
	for step := 0; step < 10000; step++ {
		u := r.Float64()
		var acc float64
		next := -1
		m.RowNonZeros(cur, func(j int, v float64) {
			if next >= 0 {
				return
			}
			acc += v
			if u <= acc {
				next = j
			}
		})
		if next < 0 {
			next = cur
		}
		st := sp.At(next)
		if st.S < 0 || st.S > p.Delta || st.X < 0 || st.X > p.C || st.Y < 0 || st.Y > st.S {
			t.Fatalf("walked outside Ω: %v", st)
		}
		cur = next
	}
}
