package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpaceSizePaperFigure1(t *testing.T) {
	// Paper, Figure 1 caption: "For C = 7 and ∆ = 7, we have 288 states."
	sp, err := NewSpace(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 288 {
		t.Errorf("|Ω| = %d, want 288", sp.Size())
	}
}

func TestSpaceCensus(t *testing.T) {
	sp, err := NewSpace(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	census := sp.Census()
	// Transient states have 0 < s < 7 (8 x-values, s+1 y-values each):
	// Σ_{s=1..6} 8(s+1) = 216; safe are x ≤ 2 (3 of 8) → 81, polluted 135.
	want := map[Class]int{
		ClassSafe:          81,
		ClassPolluted:      135,
		ClassSafeMerge:     3,
		ClassPollutedMerge: 5,
		ClassSafeSplit:     24,
		ClassPollutedSplit: 40,
	}
	for cl, n := range want {
		if census[cl] != n {
			t.Errorf("census[%v] = %d, want %d", cl, census[cl], n)
		}
	}
	var total int
	for _, n := range census {
		total += n
	}
	if total != 288 {
		t.Errorf("census total = %d, want 288", total)
	}
}

func TestSpaceSizeFormula(t *testing.T) {
	// |Ω| = (C+1) · Σ_{s=0..∆} (s+1) = (C+1)(∆+1)(∆+2)/2.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := 1 + r.Intn(10)
		delta := 1 + r.Intn(10)
		sp, err := NewSpace(c, delta)
		if err != nil {
			return false
		}
		return sp.Size() == (c+1)*(delta+1)*(delta+2)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpaceIndexRoundTrip(t *testing.T) {
	sp, err := NewSpace(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range sp.States() {
		j, ok := sp.Index(st)
		if !ok || j != i {
			t.Fatalf("Index(%v) = %d,%v, want %d,true", st, j, ok, i)
		}
		if sp.At(i) != st {
			t.Fatalf("At(%d) = %v, want %v", i, sp.At(i), st)
		}
	}
	if _, ok := sp.Index(State{S: 99, X: 0, Y: 0}); ok {
		t.Error("out-of-space state must not index")
	}
}

func TestSpaceIndexClosedForm(t *testing.T) {
	// The closed-form index must reproduce the enumeration order exactly
	// for every geometry, and reject every state outside Ω — including
	// the in-bounds-looking y > s corner that a pure range check on the
	// three coordinates separately would accept.
	for _, geo := range []struct{ c, delta int }{
		{1, 1}, {1, 7}, {7, 1}, {7, 7}, {3, 9}, {9, 3}, {12, 10},
	} {
		sp, err := NewSpace(geo.c, geo.delta)
		if err != nil {
			t.Fatal(err)
		}
		for i, st := range sp.States() {
			if j := sp.MustIndex(st); j != i {
				t.Fatalf("C=%d ∆=%d: MustIndex(%v) = %d, want %d", geo.c, geo.delta, st, j, i)
			}
		}
		for _, bad := range []State{
			{S: -1, X: 0, Y: 0},
			{S: geo.delta + 1, X: 0, Y: 0},
			{S: 0, X: -1, Y: 0},
			{S: 0, X: geo.c + 1, Y: 0},
			{S: 0, X: 0, Y: -1},
			{S: 1, X: 0, Y: 2}, // y > s
			{S: geo.delta, X: 0, Y: geo.delta + 1},
		} {
			if _, ok := sp.Index(bad); ok {
				t.Errorf("C=%d ∆=%d: Index(%v) accepted an out-of-space state", geo.c, geo.delta, bad)
			}
		}
	}
}

func BenchmarkSpaceIndex(b *testing.B) {
	// Row emission probes the index once per transition; this measures the
	// closed-form lookup that replaced the former hash map (ROADMAP bound
	// (ii): hash lookups dominated row emission at large C, ∆).
	sp, err := NewSpace(40, 40)
	if err != nil {
		b.Fatal(err)
	}
	states := sp.States()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += sp.MustIndex(states[i%len(states)])
	}
	_ = sink
}

func TestMustIndexPanics(t *testing.T) {
	sp, err := NewSpace(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on invalid state must panic")
		}
	}()
	sp.MustIndex(State{S: -1, X: 0, Y: 0})
}

func TestClassify(t *testing.T) {
	sp, err := NewSpace(7, 7) // quorum c = 2
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		st   State
		want Class
	}{
		{State{3, 0, 0}, ClassSafe},
		{State{3, 2, 1}, ClassSafe},
		{State{3, 3, 0}, ClassPolluted},
		{State{1, 7, 1}, ClassPolluted},
		{State{0, 2, 0}, ClassSafeMerge},
		{State{0, 3, 0}, ClassPollutedMerge},
		{State{7, 2, 4}, ClassSafeSplit},
		{State{7, 5, 0}, ClassPollutedSplit},
	}
	for _, tt := range tests {
		if got := sp.Classify(tt.st); got != tt.want {
			t.Errorf("Classify(%v) = %v, want %v", tt.st, got, tt.want)
		}
	}
}

func TestClassStringAndTransient(t *testing.T) {
	if ClassSafe.String() != "S" || ClassPolluted.String() != "P" {
		t.Error("transient class names wrong")
	}
	if !ClassSafe.Transient() || !ClassPolluted.Transient() {
		t.Error("S and P must be transient")
	}
	for _, cl := range []Class{ClassSafeMerge, ClassSafeSplit, ClassPollutedMerge, ClassPollutedSplit} {
		if cl.Transient() {
			t.Errorf("%v must not be transient", cl)
		}
		if cl.AbsorbingName() == "" {
			t.Errorf("%v must have an absorbing name", cl)
		}
	}
	if ClassSafe.AbsorbingName() != "" {
		t.Error("transient class must have empty absorbing name")
	}
	if Class(42).String() == "" {
		t.Error("unknown class must render something")
	}
}

func TestIndicesOfDisjointAndComplete(t *testing.T) {
	sp, err := NewSpace(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, cl := range []Class{
		ClassSafe, ClassPolluted,
		ClassSafeMerge, ClassSafeSplit, ClassPollutedMerge, ClassPollutedSplit,
	} {
		for _, i := range sp.IndicesOf(cl) {
			if seen[i] {
				t.Fatalf("state %d in two classes", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != sp.Size() {
		t.Errorf("classes cover %d states, want %d", len(seen), sp.Size())
	}
}

func TestNewSpaceErrors(t *testing.T) {
	if _, err := NewSpace(0, 3); err == nil {
		t.Error("C=0: want error")
	}
	if _, err := NewSpace(3, 0); err == nil {
		t.Error("∆=0: want error")
	}
}

func TestStateString(t *testing.T) {
	if s := (State{1, 2, 3}).String(); s != "(1,2,3)" {
		t.Errorf("State.String() = %q", s)
	}
}

func TestParamsValidate(t *testing.T) {
	valid := DefaultParams()
	if err := valid.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"C too small", func(p *Params) { p.C = 0 }},
		{"Delta too small", func(p *Params) { p.Delta = 1 }},
		{"Mu negative", func(p *Params) { p.Mu = -0.1 }},
		{"Mu above one", func(p *Params) { p.Mu = 1.1 }},
		{"D negative", func(p *Params) { p.D = -0.1 }},
		{"D one", func(p *Params) { p.D = 1 }},
		{"K zero", func(p *Params) { p.K = 0 }},
		{"K above C", func(p *Params) { p.K = 8 }},
		{"Nu zero", func(p *Params) { p.Nu = 0 }},
		{"Nu one", func(p *Params) { p.Nu = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := valid
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestQuorum(t *testing.T) {
	for _, tt := range []struct{ c, want int }{
		{7, 2}, {4, 1}, {10, 3}, {13, 4}, {1, 0},
	} {
		p := Params{C: tt.c}
		if got := p.Quorum(); got != tt.want {
			t.Errorf("Quorum(C=%d) = %d, want %d", tt.c, got, tt.want)
		}
	}
}

func TestParamsString(t *testing.T) {
	if s := DefaultParams().String(); s == "" {
		t.Error("Params.String() empty")
	}
}
