package core

import (
	"strings"
	"testing"

	"targetedattacks/internal/matrix"
)

// TestStochasticityFullDefaultGrid validates every transition matrix of
// the paper's default parameter grid: all protocols k = 1…C crossed with
// the printed attack axes (µ up to 30%, d up to 99%), plus the ν
// extremes. Every transient row must sum to 1 within 1e-12 and every
// absorbing row must be an exact self-loop.
func TestStochasticityFullDefaultGrid(t *testing.T) {
	base := DefaultParams()
	for k := 1; k <= base.C; k++ {
		for _, mu := range []float64{0, 0.1, 0.2, 0.3} {
			for _, d := range []float64{0, 0.3, 0.5, 0.8, 0.9, 0.95, 0.99} {
				for _, nu := range []float64{0.02, 0.1, 0.9} {
					p := base
					p.K, p.Mu, p.D, p.Nu = k, mu, d, nu
					m, sp, err := BuildTransitionMatrix(p)
					if err != nil {
						t.Fatalf("%v: %v", p, err)
					}
					if err := ValidateStochasticity(m, sp, 0); err != nil {
						t.Errorf("%v: %v", p, err)
					}
				}
			}
		}
	}
}

// TestStochasticityLargeCluster extends the validator to an enlarged
// state space on the sparse path's home turf.
func TestStochasticityLargeCluster(t *testing.T) {
	p := Params{C: 16, Delta: 16, Mu: 0.25, D: 0.9, K: 1, Nu: 0.1}
	m, sp, err := BuildTransitionMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateStochasticity(m, sp, 0); err != nil {
		t.Error(err)
	}
}

func TestValidateStochasticityRejects(t *testing.T) {
	sp, err := NewSpace(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	build := func(mutate func(b *matrix.SparseBuilder)) *matrix.CSR {
		b := matrix.NewSparseBuilder(sp.Size(), sp.Size())
		for i, st := range sp.States() {
			if sp.Classify(st).Transient() {
				_ = b.Add(i, 0, 0.5)
				_ = b.Add(i, 1, 0.5)
			} else {
				_ = b.Add(i, i, 1)
			}
		}
		mutate(b)
		return b.Build()
	}
	transient := sp.IndicesOf(ClassSafe)[0]
	absorbing := sp.IndicesOf(ClassSafeMerge)[0]

	ok := build(func(b *matrix.SparseBuilder) {})
	if err := ValidateStochasticity(ok, sp, 0); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	for _, tt := range []struct {
		name   string
		m      *matrix.CSR
		errHas string
	}{
		{
			"leaky transient row",
			build(func(b *matrix.SparseBuilder) { _ = b.Add(transient, 2, -1e-6) }),
			"probability",
		},
		{
			"row sum off",
			build(func(b *matrix.SparseBuilder) { _ = b.Add(transient, 2, 1e-9) }),
			"sums to",
		},
		{
			"absorbing row not a self-loop",
			build(func(b *matrix.SparseBuilder) { _ = b.Add(absorbing, absorbing+1, 1e-3) }),
			"self-loop",
		},
	} {
		err := ValidateStochasticity(tt.m, sp, 0)
		if err == nil {
			t.Errorf("%s: want error", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.errHas) {
			t.Errorf("%s: err = %v, want mention of %q", tt.name, err, tt.errHas)
		}
	}
	if err := ValidateStochasticity(nil, sp, 0); err == nil {
		t.Error("nil matrix: want error")
	}
	wrong := matrix.NewSparseBuilder(2, 2).Build()
	if err := ValidateStochasticity(wrong, sp, 0); err == nil {
		t.Error("wrong shape: want error")
	}
}
