package core

import (
	"fmt"
	"sync"

	"targetedattacks/internal/combin"
)

// maintKernel memoizes the two hypergeometric factors of the protocol_k
// maintenance kernel τ(m,a,b) = q(k−1, C−1, a, m) · q(k, s+k−1, b, y+a)
// for one (C, ∆, k). The same tables serve the Rule 1 gain probability
// (relation (2)), which is built from the identical q(k−1, C−1, ·, ·) and
// q(k, s+k−1, ·, ·) terms. Tables are computed once per (C, ∆, k) and
// shared — read-only — across grid cells and build workers, so a (µ, d, ν)
// sweep at fixed cluster geometry never recomputes a log-gamma term.
type maintKernel struct {
	c, delta, k int
	// pushed[m][a] = q(k−1, C−1, a, m): a malicious among the k−1 core
	// members pushed to the spare set, given m malicious core survivors.
	pushed [][]float64
	// promoted[pool][v][b] = q(k, pool, b, v): b malicious among the k
	// spares promoted from a pool of size pool holding v malicious.
	// pool = s+k−1 ranges over [0, ∆+k−2] for transient s.
	promoted [][][]float64
}

// kernelKey identifies a kernel by the parameters its tables depend on.
type kernelKey struct{ c, delta, k int }

// kernelCache maps kernelKey to *maintKernel. A sync.Map keeps the hit
// path lock-free: Rule 1 probes run per simulated leave event across
// pool workers, so a global mutex here would serialize them.
var kernelCache sync.Map

// kernelFor returns the shared maintenance kernel of p, building and
// caching it on first use. p must have passed Validate. Concurrent first
// uses may build the kernel twice; the tables are pure functions of the
// key, so whichever build wins the LoadOrStore is indistinguishable.
func kernelFor(p Params) (*maintKernel, error) {
	key := kernelKey{c: p.C, delta: p.Delta, k: p.K}
	if v, ok := kernelCache.Load(key); ok {
		return v.(*maintKernel), nil
	}
	ker, err := buildKernel(p.C, p.Delta, p.K)
	if err != nil {
		return nil, err
	}
	v, _ := kernelCache.LoadOrStore(key, ker)
	return v.(*maintKernel), nil
}

// buildKernel tabulates every in-range hypergeometric factor.
func buildKernel(c, delta, k int) (*maintKernel, error) {
	ker := &maintKernel{c: c, delta: delta, k: k}
	ker.pushed = make([][]float64, c)
	for m := 0; m < c; m++ {
		row := make([]float64, k)
		for a := 0; a < k; a++ {
			q, err := combin.Hypergeometric(k-1, c-1, a, m)
			if err != nil {
				return nil, fmt.Errorf("core: kernel push table (a=%d, m=%d): %w", a, m, err)
			}
			row[a] = q
		}
		ker.pushed[m] = row
	}
	poolMax := delta + k - 2
	if poolMax < 0 {
		poolMax = 0
	}
	ker.promoted = make([][][]float64, poolMax+1)
	// Pools smaller than the k draws are left untabulated: q(k, pool, ·, ·)
	// is undefined there, and no in-space maintenance reaches them
	// (pool = s+k−1 ≥ k for every transient s ≥ 1).
	for pool := k; pool <= poolMax; pool++ {
		byV := make([][]float64, pool+1)
		bMax := k
		for v := 0; v <= pool; v++ {
			row := make([]float64, bMax+1)
			for b := 0; b <= bMax; b++ {
				q, err := combin.Hypergeometric(k, pool, b, v)
				if err != nil {
					return nil, fmt.Errorf("core: kernel promote table (pool=%d, v=%d, b=%d): %w", pool, v, b, err)
				}
				row[b] = q
			}
			byV[v] = row
		}
		ker.promoted[pool] = byV
	}
	return ker, nil
}

// push returns q(k−1, C−1, a, m), from the table when in range and by
// direct evaluation otherwise (callers outside the tabulated bounds, e.g.
// Rule 1 probes at out-of-space states, stay correct).
func (ker *maintKernel) push(a, m int) (float64, error) {
	if m >= 0 && m < len(ker.pushed) && a >= 0 && a < len(ker.pushed[m]) {
		return ker.pushed[m][a], nil
	}
	return combin.Hypergeometric(ker.k-1, ker.c-1, a, m)
}

// promote returns q(k, pool, b, v), falling back to direct evaluation
// outside the tabulated bounds.
func (ker *maintKernel) promote(pool, v, b int) (float64, error) {
	if pool >= 0 && pool < len(ker.promoted) &&
		v >= 0 && v < len(ker.promoted[pool]) &&
		b >= 0 && b < len(ker.promoted[pool][v]) {
		return ker.promoted[pool][v][b], nil
	}
	return combin.Hypergeometric(ker.k, pool, b, v)
}
