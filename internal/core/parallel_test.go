package core

import (
	"math/rand"
	"testing"

	"targetedattacks/internal/combin"
	"targetedattacks/internal/engine"
)

// TestBuildTransitionMatrixParallelBitIdentical is the tentpole's
// equivalence property: for any pool width the parallel per-row
// construction must produce the same CSR as the serial build — same row
// pointers, same column indices, bit-identical values — across a
// randomized (C, ∆, k, µ, d, ν) grid.
func TestBuildTransitionMatrixParallelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	params := make([]Params, 0, 14)
	for trial := 0; trial < 12; trial++ {
		p := Params{
			C:     1 + r.Intn(10),
			Delta: 2 + r.Intn(9),
			Mu:    r.Float64(),
			D:     r.Float64() * 0.999,
			Nu:    0.01 + 0.98*r.Float64(),
		}
		p.K = 1 + r.Intn(p.C)
		params = append(params, p)
	}
	// Two deterministic sizes whose state spaces span several build
	// chunks (|Ω| > 512), so chunk-boundary assembly is exercised.
	params = append(params,
		Params{C: 15, Delta: 15, Mu: 0.25, D: 0.9, K: 3, Nu: 0.1},
		Params{C: 9, Delta: 12, Mu: 0.3, D: 0.95, K: 9, Nu: 0.4},
	)
	for _, p := range params {
		serial, _, err := BuildTransitionMatrix(p)
		if err != nil {
			t.Fatalf("serial build %v: %v", p, err)
		}
		for _, workers := range []int{1, 2, 8} {
			m, _, err := BuildTransitionMatrix(p, WithBuildPool(engine.New(workers)))
			if err != nil {
				t.Fatalf("parallel build %v on %d workers: %v", p, workers, err)
			}
			if !serial.Equal(m) {
				t.Errorf("%v: %d-worker build differs from serial (nnz %d vs %d)",
					p, workers, m.NNZ(), serial.NNZ())
			}
		}
	}
}

// TestKernelMemoization checks the per-(C,∆,k) kernel cache: repeated
// builds share one table set, and the tabulated values match direct
// hypergeometric evaluation (in and out of the tabulated bounds).
func TestKernelMemoization(t *testing.T) {
	p := Params{C: 8, Delta: 6, Mu: 0.2, D: 0.9, K: 3, Nu: 0.1}
	k1, err := kernelFor(p)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := kernelFor(p)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("kernelFor built two kernels for the same (C, ∆, k)")
	}
	// In-table lookups match the direct law.
	for m := 0; m < p.C; m++ {
		for a := 0; a < p.K; a++ {
			want, err := combin.Hypergeometric(p.K-1, p.C-1, a, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := k1.push(a, m)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("push(%d,%d) = %v, want %v", a, m, got, want)
			}
		}
	}
	for s := 1; s < p.Delta; s++ {
		pool := s + p.K - 1
		for v := 0; v <= pool; v++ {
			for b := 0; b <= p.K; b++ {
				want, err := combin.Hypergeometric(p.K, pool, b, v)
				if err != nil {
					t.Fatal(err)
				}
				got, err := k1.promote(pool, v, b)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("promote(%d,%d,%d) = %v, want %v", pool, v, b, got, want)
				}
			}
		}
	}
	// Out-of-table indices fall back to direct evaluation instead of
	// panicking or returning zero.
	pool := p.Delta + p.K + 5
	want, err := combin.Hypergeometric(p.K, pool, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k1.promote(pool, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("out-of-table promote = %v, want %v", got, want)
	}
}

// TestWithBuildPoolThroughModel checks that the option threads through
// core.New / NewWithSolver and cannot change the model.
func TestWithBuildPoolThroughModel(t *testing.T) {
	p := Params{C: 7, Delta: 7, Mu: 0.2, D: 0.9, K: 2, Nu: 0.1}
	serial, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(p, WithBuildPool(engine.New(8)))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.TransitionMatrix().Equal(parallel.TransitionMatrix()) {
		t.Error("WithBuildPool changed the transition matrix")
	}
}
