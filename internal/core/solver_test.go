package core

import (
	"fmt"
	"math"
	"testing"

	"targetedattacks/internal/matrix"
)

// closeTo reports |a−b| ≤ tol·max(1, |a|, |b|): absolute agreement for
// O(1) quantities (probabilities), relative agreement for the large
// expected-time values of high-survival grids.
func closeTo(a, b, tol float64) bool {
	scale := 1.0
	if s := math.Abs(a); s > scale {
		scale = s
	}
	if s := math.Abs(b); s > scale {
		scale = s
	}
	return math.Abs(a-b) <= tol*scale
}

// assertAnalysesAgree compares every Analysis field to tol.
func assertAnalysesAgree(t *testing.T, label string, want, got *Analysis, tol float64) {
	t.Helper()
	check := func(name string, a, b float64) {
		t.Helper()
		if !closeTo(a, b, tol) {
			t.Errorf("%s: %s = %v (dense) vs %v (sparse), Δ = %.3g", label, name, a, b, math.Abs(a-b))
		}
	}
	check("E(T_S)", want.ExpectedSafeTime, got.ExpectedSafeTime)
	check("E(T_P)", want.ExpectedPollutedTime, got.ExpectedPollutedTime)
	check("P(ever polluted)", want.PollutionProbability, got.PollutionProbability)
	if len(want.SafeSojourns) != len(got.SafeSojourns) || len(want.PollutedSojourns) != len(got.PollutedSojourns) {
		t.Fatalf("%s: sojourn lengths differ", label)
	}
	for i := range want.SafeSojourns {
		check(fmt.Sprintf("E(T_S,%d)", i+1), want.SafeSojourns[i], got.SafeSojourns[i])
	}
	for i := range want.PollutedSojourns {
		check(fmt.Sprintf("E(T_P,%d)", i+1), want.PollutedSojourns[i], got.PollutedSojourns[i])
	}
	for name, p := range want.Absorption {
		check("p("+name+")", p, got.Absorption[name])
	}
}

// TestSolverEquivalenceOnPaperGrid is the property-style cross-check of
// the tentpole refactor: on the paper's printed (k, µ, d) grid (C = ∆ =
// 7, Figure 3 / Table I axes) every sparse backend must reproduce the
// dense LU Analysis — all fields — to 1e-9 under both named initial
// distributions.
func TestSolverEquivalenceOnPaperGrid(t *testing.T) {
	sparse := []matrix.SolverConfig{
		{Kind: "bicgstab", Tol: 1e-13},
		{Kind: "gs", Tol: 1e-13},
		{Kind: "ilu", Tol: 1e-13},
		{Kind: "auto", Tol: 1e-13},
	}
	for _, k := range []int{1, 2, 7} {
		for _, mu := range []float64{0.1, 0.2, 0.3} {
			for _, d := range []float64{0.5, 0.8, 0.9} {
				p := DefaultParams()
				p.K, p.Mu, p.D = k, mu, d
				dense, err := New(p)
				if err != nil {
					t.Fatal(err)
				}
				for _, dist := range []InitialDistribution{DistributionDelta, DistributionBeta} {
					want, err := dense.AnalyzeNamed(dist, 2)
					if err != nil {
						t.Fatalf("%v dense: %v", p, err)
					}
					for _, sc := range sparse {
						m, err := NewWithSolver(p, sc)
						if err != nil {
							t.Fatal(err)
						}
						got, err := m.AnalyzeNamed(dist, 2)
						if err != nil {
							t.Fatalf("%v %s: %v", p, sc.Kind, err)
						}
						assertAnalysesAgree(t, fmt.Sprintf("%v α=%v %s", p, dist, sc.Kind), want, got, 1e-9)
					}
				}
			}
		}
	}
}

// TestSolverEquivalenceStress9 pins the acceptance point of the sparse
// path at the 550-state stress sweep size: C = ∆ = 9 across the stress
// grid, sparse vs dense to 1e-9.
func TestSolverEquivalenceStress9(t *testing.T) {
	for _, k := range []int{1, 9} {
		for _, mu := range []float64{0.1, 0.3} {
			for _, d := range []float64{0.5, 0.9} {
				p := Params{C: 9, Delta: 9, Mu: mu, D: d, K: k, Nu: 0.1}
				dense, err := New(p)
				if err != nil {
					t.Fatal(err)
				}
				want, err := dense.AnalyzeNamed(DistributionDelta, 1)
				if err != nil {
					t.Fatal(err)
				}
				m, err := NewWithSolver(p, matrix.SolverConfig{Kind: "sparse", Tol: 1e-13})
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.AnalyzeNamed(DistributionDelta, 1)
				if err != nil {
					t.Fatalf("%v sparse: %v", p, err)
				}
				assertAnalysesAgree(t, p.String(), want, got, 1e-9)
			}
		}
	}
}

func TestNewWithSolverRejectsUnknownKind(t *testing.T) {
	if _, err := NewWithSolver(DefaultParams(), matrix.SolverConfig{Kind: "qr"}); err == nil {
		t.Error("unknown solver kind: want error")
	}
	m, err := NewWithSolver(DefaultParams(), matrix.SolverConfig{Kind: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if m.SolverName() != "auto" {
		t.Errorf("SolverName = %q, want auto", m.SolverName())
	}
}
