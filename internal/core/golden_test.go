package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden-regression harness pins the complete Analysis output of the
// dense (exact) pipeline on the paper's default grid and the stress9 grid.
// Every solver or builder refactor must keep reproducing these values to
// 1e-9 on all fields; regenerate deliberately with
//
//	go test ./internal/core -run TestGoldenPaperGrid -update
//
// after a change that is *supposed* to move the numbers, and review the
// testdata/paper_grid.json diff like any other code change.
var updateGolden = flag.Bool("update", false, "regenerate testdata/paper_grid.json from the current dense pipeline")

const goldenPath = "testdata/paper_grid.json"

// goldenEntry is one pinned (parameters, initial distribution) cell.
type goldenEntry struct {
	Name                 string             `json:"name"`
	Params               Params             `json:"params"`
	Dist                 string             `json:"dist"`
	Sojourns             int                `json:"sojourns"`
	ExpectedSafeTime     float64            `json:"expected_safe_time"`
	ExpectedPollutedTime float64            `json:"expected_polluted_time"`
	SafeSojourns         []float64          `json:"safe_sojourns"`
	PollutedSojourns     []float64          `json:"polluted_sojourns"`
	Absorption           map[string]float64 `json:"absorption"`
	PollutionProbability float64            `json:"pollution_probability"`
}

// goldenCase identifies one grid cell to pin.
type goldenCase struct {
	params   Params
	dist     InitialDistribution
	sojourns int
}

func (c goldenCase) name() string {
	return fmt.Sprintf("C%d_D%d_k%d_mu%g_d%g_nu%g_%s",
		c.params.C, c.params.Delta, c.params.K, c.params.Mu, c.params.D, c.params.Nu, distKey(c.dist))
}

func distKey(d InitialDistribution) string {
	if d == DistributionBeta {
		return "beta"
	}
	return "delta"
}

func distFromKey(key string) (InitialDistribution, error) {
	switch key {
	case "delta":
		return DistributionDelta, nil
	case "beta":
		return DistributionBeta, nil
	default:
		return 0, fmt.Errorf("unknown golden dist %q", key)
	}
}

// goldenGrid enumerates the pinned cells: the paper's default C=∆=7 grid
// (Figure 3 / Table I axes, both initial distributions) and the stress9
// C=∆=9 grid (δ only), matching the solver-equivalence property tests.
func goldenGrid() []goldenCase {
	var cases []goldenCase
	for _, k := range []int{1, 2, 7} {
		for _, mu := range []float64{0.1, 0.2, 0.3} {
			for _, d := range []float64{0.5, 0.8, 0.9} {
				p := DefaultParams()
				p.K, p.Mu, p.D = k, mu, d
				for _, dist := range []InitialDistribution{DistributionDelta, DistributionBeta} {
					cases = append(cases, goldenCase{params: p, dist: dist, sojourns: 2})
				}
			}
		}
	}
	for _, k := range []int{1, 9} {
		for _, mu := range []float64{0.1, 0.3} {
			for _, d := range []float64{0.5, 0.9} {
				p := Params{C: 9, Delta: 9, Mu: mu, D: d, K: k, Nu: 0.1}
				cases = append(cases, goldenCase{params: p, dist: DistributionDelta, sojourns: 1})
			}
		}
	}
	return cases
}

// goldenAnalyze runs one cell on the dense (exact) pipeline.
func goldenAnalyze(c goldenCase) (*Analysis, error) {
	m, err := New(c.params)
	if err != nil {
		return nil, err
	}
	return m.AnalyzeNamed(c.dist, c.sojourns)
}

func writeGolden(t *testing.T) {
	t.Helper()
	cases := goldenGrid()
	entries := make([]goldenEntry, 0, len(cases))
	for _, c := range cases {
		a, err := goldenAnalyze(c)
		if err != nil {
			t.Fatalf("%s: %v", c.name(), err)
		}
		entries = append(entries, goldenEntry{
			Name:                 c.name(),
			Params:               c.params,
			Dist:                 distKey(c.dist),
			Sojourns:             c.sojourns,
			ExpectedSafeTime:     a.ExpectedSafeTime,
			ExpectedPollutedTime: a.ExpectedPollutedTime,
			SafeSojourns:         a.SafeSojourns,
			PollutedSojourns:     a.PollutedSojourns,
			Absorption:           a.Absorption,
			PollutionProbability: a.PollutionProbability,
		})
	}
	blob, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d golden entries to %s", len(entries), goldenPath)
}

// TestGoldenPaperGrid recomputes every pinned cell and compares all
// Analysis fields against testdata/paper_grid.json at 1e-9.
func TestGoldenPaperGrid(t *testing.T) {
	if *updateGolden {
		writeGolden(t)
		return
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(blob, &entries); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(entries) != len(goldenGrid()) {
		t.Fatalf("golden file has %d entries, grid has %d (regenerate with -update)",
			len(entries), len(goldenGrid()))
	}
	const tol = 1e-9
	for _, e := range entries {
		dist, err := distFromKey(e.Dist)
		if err != nil {
			t.Fatal(err)
		}
		a, err := goldenAnalyze(goldenCase{params: e.Params, dist: dist, sojourns: e.Sojourns})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		want := &Analysis{
			ExpectedSafeTime:     e.ExpectedSafeTime,
			ExpectedPollutedTime: e.ExpectedPollutedTime,
			SafeSojourns:         e.SafeSojourns,
			PollutedSojourns:     e.PollutedSojourns,
			Absorption:           e.Absorption,
			PollutionProbability: e.PollutionProbability,
		}
		assertAnalysesAgree(t, e.Name, want, a, tol)
	}
}
