package core

import (
	"fmt"
	"math"
	"time"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/combin"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/obs"
)

// Event probabilities of the model: join and leave events are
// equiprobable (paper, Figure 2: p_j = p_ℓ = 1/2).
const (
	probJoin  = 0.5
	probLeave = 0.5
)

// BuildConfig tunes how the transition matrix is constructed. The zero
// value builds serially with no shared structure.
type BuildConfig struct {
	// Pool supplies the workers of the per-row parallel pass; nil builds
	// serially. Output is bit-identical for any pool width.
	Pool *engine.Pool
	// Space is a pre-enumerated state space to reuse; nil enumerates a
	// fresh one. It must match the parameters' (C, ∆).
	Space *Space
	// Gains is a precomputed Rule 1 gain table to consult instead of
	// re-summing relation (2) per state; nil derives gains in place. It
	// must match the parameters' (C, ∆, k). Matrices built against a
	// table are bit-identical to the direct path.
	Gains *Rule1Gains
	// Observer, when non-nil, receives the duration of each build phase
	// ("space", "kernel", "matrix"). A nil observer adds no timing calls
	// to the build path.
	Observer obs.Observer
}

// BuildOption mutates a BuildConfig.
type BuildOption func(*BuildConfig)

// WithBuildPool fans the per-row construction pass across pool. Every
// transient row of the transition matrix is independent given the state
// space, so construction is embarrassingly parallel; the deterministic
// row-order assembly keeps the resulting CSR bit-identical to a serial
// build.
func WithBuildPool(pool *engine.Pool) BuildOption {
	return func(c *BuildConfig) { c.Pool = pool }
}

// WithSpace reuses a pre-enumerated state space instead of building a
// fresh one. A Space is immutable, so one enumeration can back every
// cell of a parameter sweep at fixed (C, ∆); BuildTransitionMatrix
// rejects a space whose geometry does not match the parameters.
func WithSpace(sp *Space) BuildOption {
	return func(c *BuildConfig) { c.Space = sp }
}

// WithObserver reports the duration of each matrix-construction phase
// — state-space enumeration ("space", skipped when WithSpace supplies
// one), the memoized maintenance kernel lookup ("kernel"), and the
// row-parallel matrix assembly ("matrix") — to o, typically an
// obs.Trace carried by the serving layer. A nil o is a no-op.
func WithObserver(o obs.Observer) BuildOption {
	return func(c *BuildConfig) { c.Observer = o }
}

// WithRule1Gains consults a precomputed relation (2) table (see
// ComputeRule1Gains) during construction instead of re-deriving each
// eligible state's gain from the hypergeometric kernel. Gains depend
// only on (C, ∆, k), so a sweep over (µ, d, ν) shares one table; the
// resulting matrix is bit-identical either way. A table for different
// parameters is rejected.
func WithRule1Gains(g *Rule1Gains) BuildOption {
	return func(c *BuildConfig) { c.Gains = g }
}

// BuildTransitionMatrix constructs the exact transition probability matrix
// M of the cluster Markov chain X over the space Ω(C, ∆), implementing the
// transition tree of the paper's Figure 2:
//
//   - join and leave events are equiprobable;
//   - a joining peer is malicious with probability µ and lands in the
//     spare set, except when the adversary applies Rule 2 in a polluted
//     cluster (honest joins discarded while s > 1; every join discarded
//     when s = ∆−1 so that a polluted cluster never splits);
//   - a leave event picks a core member with probability C/(C+s), a spare
//     member otherwise; malicious peers refuse to leave unless their
//     identifier expired (Property 1, survival d per peer) or the
//     adversarial leave strategy (Rule 1, relation (2)) makes a voluntary
//     departure profitable;
//   - a core departure triggers the randomized maintenance of protocol_k:
//     k−1 surviving core members are pushed to the spare set and k random
//     spares promoted, giving the hypergeometric kernel
//     τ(m,a,b) = q(k−1, C−1, a, m) · q(k, s+k−1, b, y+a);
//   - in a polluted cluster the adversary controls maintenance and
//     replaces departures with valid malicious spares when available.
//
// Absorbing states (s = 0 and s = ∆) carry a self-loop.
//
// Construction is row-parallel when WithBuildPool supplies workers: rows
// are built in independent chunks through row-local matrix.RowBuilder
// emitters (no shared builder, no lock) and concatenated in row order, so
// the CSR — row pointers, column indices and values — is bit-identical to
// a serial build. The hypergeometric maintenance kernel τ is memoized per
// (C, ∆, k) and shared across builds, so grid sweeps at fixed cluster
// geometry pay for the log-gamma terms once.
func BuildTransitionMatrix(p Params, opts ...BuildOption) (*matrix.CSR, *Space, error) {
	var cfg BuildConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	sp := cfg.Space
	if sp != nil {
		if sp.c != p.C || sp.delta != p.Delta {
			return nil, nil, fmt.Errorf("core: WithSpace geometry Ω(C=%d, ∆=%d) does not match params (C=%d, ∆=%d)",
				sp.c, sp.delta, p.C, p.Delta)
		}
	} else {
		t0 := phaseStart(cfg.Observer)
		var err error
		if sp, err = NewSpace(p.C, p.Delta); err != nil {
			return nil, nil, err
		}
		phaseEnd(cfg.Observer, "space", t0)
	}
	if cfg.Gains != nil && !cfg.Gains.matches(p) {
		return nil, nil, fmt.Errorf("core: WithRule1Gains table (C=%d, ∆=%d, k=%d) does not match params (C=%d, ∆=%d, k=%d)",
			cfg.Gains.c, cfg.Gains.delta, cfg.Gains.k, p.C, p.Delta, p.K)
	}
	t0 := phaseStart(cfg.Observer)
	ker, err := kernelFor(p)
	if err != nil {
		return nil, nil, err
	}
	phaseEnd(cfg.Observer, "kernel", t0)
	m, err := chainmodel.BuildMatrixObserved(rowEmitter{sp: sp, p: p, ker: ker, gains: cfg.Gains}, cfg.Pool, cfg.Observer)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	return m, sp, nil
}

// phaseStart/phaseEnd bracket a build phase only when someone is
// listening, keeping the unobserved path free of clock reads.
func phaseStart(o obs.Observer) time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

func phaseEnd(o obs.Observer, stage string, t0 time.Time) {
	if o != nil {
		o.Observe(stage, time.Since(t0))
	}
}

// rowEmitter adapts the paper model's state space and Figure 2 row
// construction to the generic chainmodel build: the chunked parallel
// pass, absorbing self-loops and row-order assembly all live in
// chainmodel.BuildMatrix, this emitter only knows how one transient
// row's probabilities split.
type rowEmitter struct {
	sp    *Space
	p     Params
	ker   *maintKernel
	gains *Rule1Gains
}

func (e rowEmitter) NumStates() int { return e.sp.Size() }

func (e rowEmitter) Transient(i int) bool {
	return e.sp.Classify(e.sp.At(i)).Transient()
}

func (e rowEmitter) EmitRow(rb *matrix.RowBuilder, i int) error {
	st := e.sp.At(i)
	if err := addTransientRow(rb, e.sp, e.p, e.ker, e.gains, st); err != nil {
		return fmt.Errorf("building row for state %v: %w", st, err)
	}
	return nil
}

// addTransientRow emits the outgoing probabilities of one transient state
// into the builder's current row.
func addTransientRow(rb *matrix.RowBuilder, sp *Space, p Params, ker *maintKernel, gains *Rule1Gains, st State) error {
	add := func(target State, w float64) error {
		if w == 0 {
			return nil
		}
		if w < 0 {
			return fmt.Errorf("negative probability %v to %v", w, target)
		}
		return rb.Add(sp.MustIndex(target), w)
	}
	if err := addJoinBranch(p, st, add); err != nil {
		return err
	}
	return addLeaveBranch(p, ker, gains, st, add)
}

// addJoinBranch implements the join sub-tree (left half of Figure 2).
func addJoinBranch(p Params, st State, add func(State, float64) error) error {
	s, x, y := st.S, st.X, st.Y
	quorum := p.Quorum()
	if x <= quorum {
		// Safe cluster: every join is accepted into the spare set.
		if err := add(State{s + 1, x, y + 1}, probJoin*p.Mu); err != nil {
			return err
		}
		return add(State{s + 1, x, y}, probJoin*(1-p.Mu))
	}
	// Polluted cluster: Rule 2.
	if s == p.Delta-1 {
		// Every join is discarded so the cluster never splits.
		return add(st, probJoin)
	}
	// Malicious joins are always accepted.
	if err := add(State{s + 1, x, y + 1}, probJoin*p.Mu); err != nil {
		return err
	}
	if s > 1 {
		// Honest joins are silently discarded.
		return add(st, probJoin*(1-p.Mu))
	}
	// s = 1: honest joins are accepted to keep the cluster away from a
	// merge (which would cost the adversary its core positions).
	return add(State{s + 1, x, y}, probJoin*(1-p.Mu))
}

// addLeaveBranch implements the leave sub-tree (right half of Figure 2).
func addLeaveBranch(p Params, ker *maintKernel, gains *Rule1Gains, st State, add func(State, float64) error) error {
	s, x, y := st.S, st.X, st.Y
	quorum := p.Quorum()
	pCore := float64(p.C) / float64(p.C+s)
	pSpare := float64(s) / float64(p.C+s)

	// --- The leave event hits the spare set. ---
	pMalSpare := float64(y) / float64(s)
	// Honest spare members always comply.
	if err := add(State{s - 1, x, y}, probLeave*pSpare*(1-pMalSpare)); err != nil {
		return err
	}
	if wm := probLeave * pSpare * pMalSpare; wm > 0 {
		// A malicious spare leaves only under Property 1: with probability
		// d^y every malicious spare identifier is still valid and the
		// event is ignored.
		dy := math.Pow(p.D, float64(y))
		if err := add(st, wm*dy); err != nil {
			return err
		}
		if err := add(State{s - 1, x, y - 1}, wm*(1-dy)); err != nil {
			return err
		}
	}

	// --- The leave event hits the core set. ---
	pMalCore := float64(x) / float64(p.C)
	// Honest core member departs; the core maintenance of protocol_k runs.
	if wh := probLeave * pCore * (1 - pMalCore); wh > 0 {
		if x > quorum {
			// Polluted: the adversary controls the Byzantine agreement and
			// replaces the departure with a valid malicious spare, if any.
			if y > 0 {
				if err := add(State{s - 1, x + 1, y - 1}, wh); err != nil {
					return err
				}
			} else if err := add(State{s - 1, x, y}, wh); err != nil {
				return err
			}
		} else if err := addMaintenance(p, ker, s, y, x, wh, add); err != nil {
			return err
		}
	}

	// Malicious core member targeted by the leave event.
	wmc := probLeave * pCore * pMalCore
	if wmc == 0 {
		return nil
	}
	dx := math.Pow(p.D, float64(x))
	// Property 1 forces a departure with probability 1 − d^x.
	if we := wmc * (1 - dx); we > 0 {
		if x-1 > quorum {
			// Still polluted afterwards: adversary-biased replacement.
			if y > 0 {
				if err := add(State{s - 1, x, y - 1}, we); err != nil {
					return err
				}
			} else if err := add(State{s - 1, x - 1, y}, we); err != nil {
				return err
			}
		} else if err := addMaintenance(p, ker, s, y, x-1, we, add); err != nil {
			return err
		}
	}
	// Otherwise the adversary decides: voluntary departure only under
	// Rule 1 in a safe cluster, and never out of a spare set of size 1
	// (that could trigger a merge).
	wv := wmc * dx
	if wv == 0 {
		return nil
	}
	if x <= quorum && s > 1 {
		// A precomputed gain table answers relation (2) with one lookup;
		// the direct kernel summation is the fallback outside its range.
		var fires bool
		var hit bool
		if gains != nil {
			var v float64
			if v, hit = gains.gain(s, x, y); hit {
				fires = v > 1-p.Nu
			}
		}
		if !hit {
			var err error
			if fires, err = rule1Holds(p, ker, s, x, y); err != nil {
				return err
			}
		}
		if fires {
			return addMaintenance(p, ker, s, y, x-1, wv, add)
		}
	}
	return add(st, wv)
}

// addMaintenance distributes weight w over the outcomes of the randomized
// core maintenance of protocol_k after a core departure: the remaining
// core has C−1 members of which malRemaining are malicious; k−1 of them
// are pushed to the spare set (a malicious among them) and k members of
// the resulting spare pool of size s+k−1 (with y+a malicious) are promoted
// (b malicious among them). Target state: (s−1, malRemaining−a+b, y+a−b).
func addMaintenance(p Params, ker *maintKernel, s, y, malRemaining int, w float64, add func(State, float64) error) error {
	loA, hiA := combin.HypergeometricSupport(p.K-1, p.C-1, malRemaining)
	for a := loA; a <= hiA; a++ {
		pa, err := ker.push(a, malRemaining)
		if err != nil {
			return err
		}
		if pa == 0 {
			continue
		}
		pool := s + p.K - 1
		loB, hiB := combin.HypergeometricSupport(p.K, pool, y+a)
		for bCount := loB; bCount <= hiB; bCount++ {
			pb, err := ker.promote(pool, y+a, bCount)
			if err != nil {
				return err
			}
			if pb == 0 {
				continue
			}
			target := State{
				S: s - 1,
				X: malRemaining - a + bCount,
				Y: y + a - bCount,
			}
			if err := add(target, w*pa*pb); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rule1Holds evaluates the adversarial leave strategy (paper relation (2))
// in state (s, x, y): the adversary triggers the voluntary departure of a
// malicious core member when the probability that the maintenance strictly
// increases the number of malicious core members exceeds 1 − ν:
//
//	Σ_{i=i0}^{imax} Σ_{j=i+2}^{jmax} q(k−1, C−1, i, x−1) · q(k, s+k−1, j, y+i) > 1 − ν
//
// with i0 = max(0, k−1−(C−x)), imax = min(k−1, x−1), jmax = min(k, y+i).
// For k = 1 the double sum is empty, so Rule 1 never fires (paper,
// Section V-A).
func Rule1Holds(p Params, s, x, y int) (bool, error) {
	if x < 1 {
		// Early out before any kernel lookup: the hot simulation paths
		// probe Rule 1 with x = 0 constantly.
		return false, nil
	}
	return rule1Holds(p, rule1Kernel(p), s, x, y)
}

// rule1Holds is the kernel-aware firing predicate shared by the public
// Rule1Holds and the transition builder, so relation (2)'s threshold has
// a single source of truth.
func rule1Holds(p Params, ker *maintKernel, s, x, y int) (bool, error) {
	if x < 1 {
		return false, nil
	}
	prob, err := rule1Gain(p, ker, s, x, y)
	if err != nil {
		return false, err
	}
	return prob > 1-p.Nu, nil
}

// Rule1GainProbability returns the left-hand side of relation (2): the
// probability that, after a voluntary departure of one malicious core
// member followed by the protocol_k maintenance, the core holds strictly
// more malicious members than before. Both factors are served from the
// memoized maintenance kernel when (C, ∆, k) admit one.
func Rule1GainProbability(p Params, s, x, y int) (float64, error) {
	if x < 1 {
		return 0, nil
	}
	return rule1Gain(p, rule1Kernel(p), s, x, y)
}

// rule1Kernel returns the shared memoized kernel when the cluster
// geometry is tabulatable, and an empty kernel (every lookup falls back
// to direct evaluation, reproducing the unmemoized behavior and errors)
// otherwise — Rule1GainProbability accepts parameters Validate would
// reject.
func rule1Kernel(p Params) *maintKernel {
	if p.C >= 1 && p.Delta >= 1 && p.K >= 1 && p.K <= p.C {
		if ker, err := kernelFor(p); err == nil {
			return ker
		}
	}
	return &maintKernel{c: p.C, delta: p.Delta, k: p.K}
}

// rule1Gain evaluates relation (2) through the kernel tables.
func rule1Gain(p Params, ker *maintKernel, s, x, y int) (float64, error) {
	if x < 1 {
		return 0, nil
	}
	i0 := p.K - 1 - (p.C - x)
	if i0 < 0 {
		i0 = 0
	}
	imax := p.K - 1
	if x-1 < imax {
		imax = x - 1
	}
	var sum float64
	for i := i0; i <= imax; i++ {
		qi, err := ker.push(i, x-1)
		if err != nil {
			return 0, err
		}
		if qi == 0 {
			continue
		}
		jmax := p.K
		if y+i < jmax {
			jmax = y + i
		}
		for j := i + 2; j <= jmax; j++ {
			qj, err := ker.promote(s+p.K-1, y+i, j)
			if err != nil {
				return 0, err
			}
			sum += qi * qj
		}
	}
	return sum, nil
}
