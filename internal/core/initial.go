package core

import (
	"fmt"
	"strings"

	"targetedattacks/internal/combin"
)

// InitialDelta returns the paper's δ distribution (relation (4)): the
// chain starts in state (⌊∆/2⌋, 0, 0) — a half-full spare set and no
// malicious peers anywhere.
func (m *Model) InitialDelta() []float64 {
	alpha := make([]float64, m.space.Size())
	alpha[m.space.MustIndex(State{S: m.params.Delta / 2, X: 0, Y: 0})] = 1
	return alpha
}

// InitialBeta returns the paper's β distribution (relation (3)): the
// initial spare size s₀ is uniform on {1, …, ∆−1}, and the initial numbers
// of malicious peers in the core and spare sets are independent binomials
// with success probability µ:
//
//	β(s₀,x,y) = 1/(∆−1) · C(C,x) µˣ(1−µ)^{C−x} · C(s₀,y) µʸ(1−µ)^{s₀−y}.
func (m *Model) InitialBeta() ([]float64, error) {
	alpha := make([]float64, m.space.Size())
	pS := 1 / float64(m.params.Delta-1)
	for s0 := 1; s0 <= m.params.Delta-1; s0++ {
		for x := 0; x <= m.params.C; x++ {
			px, err := combin.BinomialPMF(m.params.C, m.params.Mu, x)
			if err != nil {
				return nil, err
			}
			if px == 0 {
				continue
			}
			for y := 0; y <= s0; y++ {
				py, err := combin.BinomialPMF(s0, m.params.Mu, y)
				if err != nil {
					return nil, err
				}
				if py == 0 {
					continue
				}
				alpha[m.space.MustIndex(State{S: s0, X: x, Y: y})] += pS * px * py
			}
		}
	}
	return alpha, nil
}

// InitialPoint returns a distribution concentrated on a single state.
func (m *Model) InitialPoint(st State) ([]float64, error) {
	i, ok := m.space.Index(st)
	if !ok {
		return nil, fmt.Errorf("core: state %v outside Ω(C=%d, ∆=%d)", st, m.params.C, m.params.Delta)
	}
	alpha := make([]float64, m.space.Size())
	alpha[i] = 1
	return alpha, nil
}

// InitialDistribution identifies the two initial distributions studied in
// the paper.
type InitialDistribution int

// The named initial distributions of Section VII-A.
const (
	// DistributionDelta is δ: start from (⌊∆/2⌋, 0, 0).
	DistributionDelta InitialDistribution = iota
	// DistributionBeta is β: uniform s₀, binomial malicious populations.
	DistributionBeta
)

// String names the distribution as in the paper.
func (d InitialDistribution) String() string {
	switch d {
	case DistributionDelta:
		return "δ"
	case DistributionBeta:
		return "β"
	default:
		return fmt.Sprintf("InitialDistribution(%d)", int(d))
	}
}

// Name is the ASCII wire name of the distribution ("delta", "beta"), as
// used by the chainmodel family interface and the HTTP API.
func (d InitialDistribution) Name() string {
	switch d {
	case DistributionDelta:
		return "delta"
	case DistributionBeta:
		return "beta"
	default:
		return fmt.Sprintf("InitialDistribution(%d)", int(d))
	}
}

// ParseDistributionName maps a wire name (or the paper's Greek letter)
// to the enum; the empty string selects δ, the paper's default.
func ParseDistributionName(name string) (InitialDistribution, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "delta", "δ":
		return DistributionDelta, nil
	case "beta", "β":
		return DistributionBeta, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q (want \"delta\" or \"beta\")", name)
	}
}

// Initial materializes a named initial distribution.
func (m *Model) Initial(d InitialDistribution) ([]float64, error) {
	switch d {
	case DistributionDelta:
		return m.InitialDelta(), nil
	case DistributionBeta:
		return m.InitialBeta()
	default:
		return nil, fmt.Errorf("core: unknown initial distribution %d", int(d))
	}
}
