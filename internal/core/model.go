package core

import (
	"fmt"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/markov"
	"targetedattacks/internal/matrix"
)

// Model ties together the parameters, state space and transition matrix of
// the cluster Markov chain and exposes the paper's closed-form analyses.
type Model struct {
	params Params
	space  *Space
	m      *matrix.CSR
	solver matrix.Solver
}

// New validates p and builds the model (state space + transition matrix)
// with the exact dense LU solver backend. Build options (WithBuildPool)
// tune the transition-matrix construction without changing its output.
func New(p Params, opts ...BuildOption) (*Model, error) {
	return NewWithSolver(p, matrix.SolverConfig{}, opts...)
}

// NewWithSolver is New with an explicit linear-solver backend for the
// closed-form analyses. The sparse backends ("sparse"/"bicgstab", "gs",
// "auto") keep the whole pipeline CSR-only, which is what makes
// large-cluster state spaces (thousands of transient states) affordable;
// WithBuildPool parallelizes the construction of those state spaces'
// transition matrices the same way.
func NewWithSolver(p Params, sc matrix.SolverConfig, opts ...BuildOption) (*Model, error) {
	solver, err := sc.Build()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m, sp, err := BuildTransitionMatrix(p, opts...)
	if err != nil {
		return nil, err
	}
	return &Model{params: p, space: sp, m: m, solver: solver}, nil
}

// Params returns the model parameters.
func (m *Model) Params() Params { return m.params }

// SolverName reports the linear-solver backend of the analyses.
func (m *Model) SolverName() string { return m.solver.Name() }

// Space returns the state space Ω.
func (m *Model) Space() *Space { return m.space }

// TransitionMatrix returns the full transition matrix over Ω.
func (m *Model) TransitionMatrix() *matrix.CSR { return m.m }

// Chain assembles the absorbing-chain view (S, P, absorbing classes) for
// an initial distribution alpha over Ω.
func (m *Model) Chain(alpha []float64) (*markov.Chain, error) {
	if len(alpha) != m.space.Size() {
		return nil, fmt.Errorf("core: alpha has length %d, want |Ω| = %d", len(alpha), m.space.Size())
	}
	return markov.NewChain(markov.Spec{
		Full:    m.m,
		Alpha:   alpha,
		SubsetA: m.space.IndicesOf(ClassSafe),
		SubsetB: m.space.IndicesOf(ClassPolluted),
		AbsorbingClasses: map[string][]int{
			ClassNameSafeMerge:     m.space.IndicesOf(ClassSafeMerge),
			ClassNameSafeSplit:     m.space.IndicesOf(ClassSafeSplit),
			ClassNamePollutedMerge: m.space.IndicesOf(ClassPollutedMerge),
			ClassNamePollutedSplit: m.space.IndicesOf(ClassPollutedSplit),
		},
		ClassOrder: []string{
			ClassNameSafeMerge,
			ClassNameSafeSplit,
			ClassNamePollutedMerge,
			ClassNamePollutedSplit,
		},
		Solver: m.solver,
	})
}

// Analysis aggregates every closed-form quantity of Sections VII-B..E for
// one initial distribution.
type Analysis struct {
	// ExpectedSafeTime is E(T_S^k) (relation (5)).
	ExpectedSafeTime float64
	// ExpectedPollutedTime is E(T_P^k) (relation (6)).
	ExpectedPollutedTime float64
	// SafeSojourns[i] is E(T_S,i+1) (relation (7)).
	SafeSojourns []float64
	// PollutedSojourns[i] is E(T_P,i+1) (relation (8)).
	PollutedSojourns []float64
	// Absorption maps each absorbing class to its absorption probability
	// (relation (9)).
	Absorption map[string]float64
	// PollutionProbability is the probability that the cluster is EVER
	// polluted before absorption — the total mass of the paper's entry
	// vector w (relation (6)). Not printed in the paper but implied by
	// its machinery; useful as an operator-facing risk metric.
	PollutionProbability float64
	// Solver summarizes the linear-solver work behind this analysis:
	// the backend that served it, its cumulative iterative-solver
	// iterations, and any sparse→dense fallback of the auto backend.
	Solver matrix.SolveStats
}

// WarmStart re-exports the chain-level warm start: the converged
// solution vectors of one analysis, usable as initial guesses for a
// neighboring cell's iterative solves.
type WarmStart = markov.WarmStart

// Analyze computes the full Analysis for an initial distribution alpha,
// with sojourns expectations for the first nSojourns visits.
func (m *Model) Analyze(alpha []float64, nSojourns int) (*Analysis, error) {
	a, _, err := m.AnalyzeWarm(alpha, nSojourns, nil)
	return a, err
}

// AnalyzeWarm is Analyze with warm starting: iterative solves seed from
// ws (nil means all cold), and the analysis's own converged vectors are
// returned for chaining into the next nearby cell. Warm-started results
// satisfy the same residual tolerances as cold ones — they agree with
// the cold path to solver tolerance, not bit-for-bit.
func (m *Model) AnalyzeWarm(alpha []float64, nSojourns int, ws *WarmStart) (*Analysis, *WarmStart, error) {
	ch, err := m.Chain(alpha)
	if err != nil {
		return nil, nil, err
	}
	ch.SeedWarmStart(ws)
	a, err := analyzeChain(ch, nSojourns)
	if err != nil {
		return nil, nil, err
	}
	return a, ch.RecordedWarmStart(), nil
}

// analyzeChain runs every closed-form relation on an assembled chain.
// The whole sequence — E(T_S), E(T_P), the lockstep sojourn recursions
// (relations (7) and (8) in one pass), absorption probabilities, and
// "ever polluted" as the complement of a safe all-S absorption — lives
// in the generic chainmodel.AnalyzeChain; this wrapper only renames its
// model-free fields into the paper's vocabulary.
func analyzeChain(ch *markov.Chain, nSojourns int) (*Analysis, error) {
	a, err := chainmodel.AnalyzeChain(ch, cleanClassNames(), nSojourns)
	if err != nil {
		return nil, err
	}
	return analysisFromGeneric(a), nil
}

// cleanClassNames lists the absorbing classes a never-polluted cluster
// can die into.
func cleanClassNames() []string {
	return []string{ClassNameSafeMerge, ClassNameSafeSplit}
}

// analysisFromGeneric renames a model-free chainmodel.Analysis into the
// paper's vocabulary (subset A = safe, subset B = polluted). The slices
// and map are shared, not copied: the generic analysis is single-use.
func analysisFromGeneric(a *chainmodel.Analysis) *Analysis {
	return &Analysis{
		ExpectedSafeTime:     a.TimeInA,
		ExpectedPollutedTime: a.TimeInB,
		SafeSojourns:         a.SojournsA,
		PollutedSojourns:     a.SojournsB,
		Absorption:           a.Absorption,
		PollutionProbability: a.HitProbability,
		Solver:               a.Solver,
	}
}

// AnalyzeNamed is Analyze for one of the paper's named initial
// distributions.
func (m *Model) AnalyzeNamed(d InitialDistribution, nSojourns int) (*Analysis, error) {
	alpha, err := m.Initial(d)
	if err != nil {
		return nil, err
	}
	return m.Analyze(alpha, nSojourns)
}

// AnalyzeNamedWarm is AnalyzeWarm for a named initial distribution.
func (m *Model) AnalyzeNamedWarm(d InitialDistribution, nSojourns int, ws *WarmStart) (*Analysis, *WarmStart, error) {
	alpha, err := m.Initial(d)
	if err != nil {
		return nil, nil, err
	}
	return m.AnalyzeWarm(alpha, nSojourns, ws)
}

// TransientIndicator returns the 0/1 vector over Ω marking states of the
// given class (used by the overlay-level computations of Section VIII).
func (m *Model) TransientIndicator(cl Class) []float64 {
	out := make([]float64, m.space.Size())
	for _, i := range m.space.IndicesOf(cl) {
		out[i] = 1
	}
	return out
}
