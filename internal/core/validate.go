package core

import (
	"fmt"
	"math"

	"targetedattacks/internal/matrix"
)

// DefaultStochasticityTol is the row-sum tolerance of
// ValidateStochasticity: the transition tree of Figure 2 is built from
// exact probability splits, so rounding error across a row stays well
// under 1e-12.
const DefaultStochasticityTol = 1e-12

// ValidateStochasticity checks that m is the transition matrix of a
// well-formed absorbing chain over sp:
//
//   - every entry is a probability (non-negative, ≤ 1 + tol);
//   - every transient row sums to 1 within tol;
//   - every absorbing row is an exact self-loop: a single stored entry
//     at (i, i) with value exactly 1.
//
// tol ≤ 0 selects DefaultStochasticityTol. The check is sparse: it visits
// only stored entries.
func ValidateStochasticity(m *matrix.CSR, sp *Space, tol float64) error {
	if m == nil || sp == nil {
		return fmt.Errorf("core: ValidateStochasticity needs a matrix and a space")
	}
	if tol <= 0 {
		tol = DefaultStochasticityTol
	}
	n := sp.Size()
	if m.Rows() != n || m.Cols() != n {
		return fmt.Errorf("core: transition matrix is %dx%d, want %dx%d over Ω", m.Rows(), m.Cols(), n, n)
	}
	for i := 0; i < n; i++ {
		st := sp.At(i)
		var sum float64
		var entries int
		var selfLoop float64
		var bad error
		m.RowNonZeros(i, func(j int, v float64) {
			entries++
			if j == i {
				selfLoop = v
			}
			if bad == nil && (v < 0 || v > 1+tol || math.IsNaN(v)) {
				bad = fmt.Errorf("core: state %v: entry to state %v is %v, not a probability", st, sp.At(j), v)
			}
			sum += v
		})
		if bad != nil {
			return bad
		}
		if sp.Classify(st).Transient() {
			if math.Abs(sum-1) > tol {
				return fmt.Errorf("core: transient state %v: row sums to %v (|Δ| = %.3g > %g)",
					st, sum, math.Abs(sum-1), tol)
			}
			continue
		}
		if entries != 1 || selfLoop != 1 {
			return fmt.Errorf("core: absorbing state %v: want exact self-loop, got %d entries with self-loop %v",
				st, entries, selfLoop)
		}
	}
	return nil
}
