// Package core implements the analytical model of the DSN 2011 paper
// "Modeling and Evaluating Targeted Attacks in Large Scale Dynamic
// Systems" (Anceaume, Sericola, Ludinard, Tronel).
//
// A cluster of a structured overlay is described by the triple
// (s, x, y): the current spare-set size, the number of malicious peers in
// the core set (of constant size C) and the number of malicious peers in
// the spare set. Cluster evolution under join/leave events, the robust
// overlay operations of Section IV (protocol_k) and the adversarial
// strategy of Section V (Rules 1 and 2, Property 1) forms a finite
// absorbing Markov chain; this package builds its exact transition matrix
// (the paper's Figure 2) and exposes the closed-form analyses of
// Sections VI and VII.
package core

import (
	"fmt"
)

// Params are the model parameters of the paper.
type Params struct {
	// C is the constant size of a cluster's core set (paper: C, with
	// pollution quorum c = ⌊(C−1)/3⌋).
	C int
	// Delta is the maximal spare-set size ∆ = Smax − C. A cluster splits
	// when its spare set reaches ∆ and merges when it reaches 0.
	Delta int
	// Mu is µ, the fraction of malicious peers in the universe; each
	// joining peer is malicious with probability µ.
	Mu float64
	// D is d, the per-unit-time probability that a peer identifier has
	// not expired (Property 1). Larger d means weaker induced churn.
	D float64
	// K is the amount of randomization of the leave operation: on a core
	// departure, k−1 random core members are pushed to the spare set and
	// k random spares promoted (protocol_k, 1 ≤ k ≤ C).
	K int
	// Nu is ν, the threshold of the adversarial leave strategy (Rule 1):
	// the adversary triggers a voluntary core leave when the probability
	// of strictly increasing its core representation exceeds 1−ν.
	Nu float64
}

// DefaultParams returns the configuration used throughout the paper's
// evaluation: C = 7, ∆ = 7, protocol_1. ν is not given a numeric value in
// the paper; 0.1 is this reproduction's default (see DESIGN.md and the
// ν-sensitivity ablation).
func DefaultParams() Params {
	return Params{C: 7, Delta: 7, Mu: 0, D: 0, K: 1, Nu: 0.1}
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	if p.C < 1 {
		return fmt.Errorf("core: C must be ≥ 1, got %d", p.C)
	}
	if p.Delta < 2 {
		return fmt.Errorf("core: Delta must be ≥ 2 so that transient states exist, got %d", p.Delta)
	}
	if p.Mu < 0 || p.Mu > 1 {
		return fmt.Errorf("core: Mu must be in [0,1], got %v", p.Mu)
	}
	if p.D < 0 || p.D >= 1 {
		return fmt.Errorf("core: D must be in [0,1), got %v", p.D)
	}
	if p.K < 1 || p.K > p.C {
		return fmt.Errorf("core: K must be in [1,C]=[1,%d], got %d", p.C, p.K)
	}
	if p.Nu <= 0 || p.Nu >= 1 {
		return fmt.Errorf("core: Nu must be in (0,1), got %v", p.Nu)
	}
	return nil
}

// Quorum returns c = ⌊(C−1)/3⌋: a cluster is polluted when strictly more
// than c core members are malicious (Byzantine agreement bound, Section V).
func (p Params) Quorum() int {
	return (p.C - 1) / 3
}

// String renders the parameters in the paper's notation.
func (p Params) String() string {
	return fmt.Sprintf("protocol_%d(C=%d, ∆=%d, µ=%.3f, d=%.3f, ν=%.3f)",
		p.K, p.C, p.Delta, p.Mu, p.D, p.Nu)
}
