package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/markov"
	"targetedattacks/internal/matrix"
)

// FamilyName is the paper model's registry name.
const FamilyName = chainmodel.DefaultFamily

func init() { chainmodel.Register(Family{}) }

// Family is the paper model's implementation of the chainmodel
// interface: cells are Params, groups are cluster geometries (C, ∆)
// sharing one Space and one Rule 1 gain table per protocol k, dedup
// signatures collapse the ν axis through the gain cut, and warm-start
// lanes run along (d, ν) at fixed (C, ∆, k, µ).
type Family struct{}

// Name implements chainmodel.Family.
func (Family) Name() string { return FamilyName }

// Description implements chainmodel.Family.
func (Family) Description() string {
	return "DSN'11 targeted-attack cluster chain over Ω(C, ∆): safe vs polluted clusters under churn (µ, d) and protocol_k with Rule 1 threshold ν"
}

// Dists implements chainmodel.Family: the paper's δ (default) and β.
func (Family) Dists() []string {
	return []string{DistributionDelta.Name(), DistributionBeta.Name()}
}

// ParseDist implements chainmodel.Family.
func (Family) ParseDist(s string) (string, error) {
	d, err := ParseDistributionName(s)
	if err != nil {
		return "", err
	}
	return d.Name(), nil
}

// cellFields is the family's slice of an analyze request body.
type cellFields struct {
	C     int     `json:"c"`
	Delta int     `json:"delta"`
	K     int     `json:"k"`
	Mu    float64 `json:"mu"`
	D     float64 `json:"d"`
	Nu    float64 `json:"nu"`
}

// ParseCell implements chainmodel.Family: one validated Params cell.
func (Family) ParseCell(raw json.RawMessage) (chainmodel.Cell, error) {
	var f cellFields
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("decoding cell: %w", err)
	}
	p := Params{C: f.C, Delta: f.Delta, K: f.K, Mu: f.Mu, D: f.D, Nu: f.Nu}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// planFields is the family's slice of a sweep request body: one axis
// expression per parameter.
type planFields struct {
	C     string `json:"c"`
	Delta string `json:"delta"`
	K     string `json:"k"`
	Mu    string `json:"mu"`
	D     string `json:"d"`
	Nu    string `json:"nu"`
}

// ParsePlan implements chainmodel.Family: the cross product of the six
// axes in canonical order — C outermost, then ∆, k, µ, d, and ν
// innermost, so lanes of equal (C, ∆, k, µ) are consecutive and walk the
// (d, ν) axes in small steps. The ν axis defaults to the paper's 0.1;
// every other axis is required.
func (fam Family) ParsePlan(raw json.RawMessage) ([]chainmodel.Cell, error) {
	var f planFields
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("decoding plan: %w", err)
	}
	cs, err := requiredInts("c", f.C)
	if err != nil {
		return nil, err
	}
	deltas, err := requiredInts("delta", f.Delta)
	if err != nil {
		return nil, err
	}
	ks, err := requiredInts("k", f.K)
	if err != nil {
		return nil, err
	}
	mus, err := requiredFloats("mu", f.Mu)
	if err != nil {
		return nil, err
	}
	ds, err := requiredFloats("d", f.D)
	if err != nil {
		return nil, err
	}
	nus := []float64{0.1}
	if f.Nu != "" {
		if nus, err = chainmodel.ParseFloats(f.Nu); err != nil {
			return nil, fmt.Errorf("axis nu: %w", err)
		}
	}
	size := 1
	for _, n := range []int{len(cs), len(deltas), len(ks), len(mus), len(ds), len(nus)} {
		if size > math.MaxInt/n {
			return nil, fmt.Errorf("axis product overflows the grid size")
		}
		size *= n
	}
	cells := make([]chainmodel.Cell, 0, size)
	for _, c := range cs {
		for _, delta := range deltas {
			for _, k := range ks {
				for _, mu := range mus {
					for _, d := range ds {
						for _, nu := range nus {
							p := Params{C: c, Delta: delta, K: k, Mu: mu, D: d, Nu: nu}
							if err := p.Validate(); err != nil {
								return nil, fmt.Errorf("cell %v: %w", p, err)
							}
							cells = append(cells, p)
						}
					}
				}
			}
		}
	}
	return cells, nil
}

func requiredInts(name, expr string) ([]int, error) {
	if expr == "" {
		return nil, fmt.Errorf("axis %s: axis is required", name)
	}
	vs, err := chainmodel.ParseInts(expr)
	if err != nil {
		return nil, fmt.Errorf("axis %s: %w", name, err)
	}
	return vs, nil
}

func requiredFloats(name, expr string) ([]float64, error) {
	if expr == "" {
		return nil, fmt.Errorf("axis %s: axis is required", name)
	}
	vs, err := chainmodel.ParseFloats(expr)
	if err != nil {
		return nil, fmt.Errorf("axis %s: %w", name, err)
	}
	return vs, nil
}

// CellDTO implements chainmodel.Family.
func (Family) CellDTO(cell chainmodel.Cell) any {
	p := cell.(Params)
	return cellFields{C: p.C, Delta: p.Delta, K: p.K, Mu: p.Mu, D: p.D, Nu: p.Nu}
}

// CellKey implements chainmodel.Family: exact hex float formatting, so
// value-equal cells share a key and byte-different JSON does not matter.
func (Family) CellKey(cell chainmodel.Cell) string {
	p := cell.(Params)
	return fmt.Sprintf("C=%d|D=%d|K=%d|mu=%s|d=%s|nu=%s",
		p.C, p.Delta, p.K,
		strconv.FormatFloat(p.Mu, 'x', -1, 64),
		strconv.FormatFloat(p.D, 'x', -1, 64),
		strconv.FormatFloat(p.Nu, 'x', -1, 64))
}

// StateCount implements chainmodel.Family:
// |Ω| = (C+1)(∆+1)(∆+2)/2, saturating instead of overflowing so request
// limits reject absurd geometries rather than wrap around.
func (Family) StateCount(cell chainmodel.Cell) (int, error) {
	p := cell.(Params)
	if p.C >= 1<<20 || p.Delta >= 1<<20 {
		return math.MaxInt, nil
	}
	return (p.C + 1) * (p.Delta + 1) * (p.Delta + 2) / 2, nil
}

// GroupKey implements chainmodel.Family: the cluster geometry (C, ∆)
// pins the state space and every shared table.
func (Family) GroupKey(cell chainmodel.Cell) any {
	p := cell.(Params)
	return [2]int{p.C, p.Delta}
}

// SweepTables is the immutable shared structure of one (C, ∆) sweep
// group: the enumerated state space and one relation (2) gain table per
// protocol k appearing in the group.
type SweepTables struct {
	Space *Space
	gains map[int]*Rule1Gains
}

// Gains returns the group's Rule 1 gain table for protocol k (nil if k
// did not appear in the group's cells).
func (t *SweepTables) Gains(k int) *Rule1Gains { return t.gains[k] }

// NewShared implements chainmodel.Family.
func (Family) NewShared(cells []chainmodel.Cell) (any, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("empty group")
	}
	first := cells[0].(Params)
	sp, err := NewSpace(first.C, first.Delta)
	if err != nil {
		return nil, err
	}
	t := &SweepTables{Space: sp, gains: make(map[int]*Rule1Gains)}
	for _, cell := range cells {
		p := cell.(Params)
		if _, ok := t.gains[p.K]; !ok {
			g, err := ComputeRule1Gains(p)
			if err != nil {
				return nil, err
			}
			t.gains[p.K] = g
		}
	}
	return t, nil
}

// cellSignature identifies a cell's Markov chain up to provable
// equality: geometry and protocol pin the state space and maintenance
// kernel, µ and d pin every branch weight, and the Rule 1 gain cut pins
// the firing set — the only door through which ν enters the matrix. The
// initial distribution is a function of (C, ∆, µ) and the common
// distribution choice, so two cells with equal signatures have equal
// chains AND equal α: their Analyses are the same numbers.
type cellSignature struct {
	c, delta, k int
	mu, d       float64
	cut         int
}

// Signature implements chainmodel.Family.
func (Family) Signature(shared any, cell chainmodel.Cell) (any, error) {
	p := cell.(Params)
	g := shared.(*SweepTables).Gains(p.K)
	if g == nil {
		return nil, fmt.Errorf("no gain table for protocol k=%d", p.K)
	}
	return cellSignature{c: p.C, delta: p.Delta, k: p.K, mu: p.Mu, d: p.D, cut: g.CutIndex(p.Nu)}, nil
}

// laneKey is the warm-start lane identity: within a lane only d and the
// ν gain cut vary, and they vary smoothly in plan order.
type laneKey struct {
	c, delta, k int
	mu          float64
}

// LaneKey implements chainmodel.Family.
func (Family) LaneKey(cell chainmodel.Cell) any {
	p := cell.(Params)
	return laneKey{c: p.C, delta: p.Delta, k: p.K, mu: p.Mu}
}

// Build implements chainmodel.Family.
func (Family) Build(shared any, cell chainmodel.Cell, sc matrix.SolverConfig, buildPool *engine.Pool) (chainmodel.Instance, error) {
	p := cell.(Params)
	opts := []BuildOption{WithBuildPool(buildPool)}
	if shared != nil {
		t := shared.(*SweepTables)
		opts = append(opts, WithSpace(t.Space))
		if g := t.Gains(p.K); g != nil {
			opts = append(opts, WithRule1Gains(g))
		}
	}
	m, err := NewWithSolver(p, sc, opts...)
	if err != nil {
		return nil, err
	}
	return Instance{m}, nil
}

// Instance adapts a built Model to the chainmodel.Instance interface.
type Instance struct{ M *Model }

// NumStates implements chainmodel.Instance.
func (in Instance) NumStates() int { return in.M.space.Size() }

// NumTransient implements chainmodel.Instance.
func (in Instance) NumTransient() int { return in.M.space.TransientCount() }

// TransientState implements chainmodel.Instance.
func (in Instance) TransientState(i int) bool {
	return in.M.space.Classify(in.M.space.At(i)).Transient()
}

// Matrix implements chainmodel.Instance.
func (in Instance) Matrix() *matrix.CSR { return in.M.m }

// CleanClasses implements chainmodel.Instance: the absorbing classes a
// never-polluted cluster can die into, so the generic HitProbability is
// the paper model's pollution probability.
func (in Instance) CleanClasses() []string { return cleanClassNames() }

// Chain implements chainmodel.Instance.
func (in Instance) Chain(dist string) (*markov.Chain, error) {
	d, err := ParseDistributionName(dist)
	if err != nil {
		return nil, err
	}
	alpha, err := in.M.Initial(d)
	if err != nil {
		return nil, err
	}
	return in.M.Chain(alpha)
}
