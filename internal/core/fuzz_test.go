package core

import (
	"math"
	"testing"
)

// fuzzUnit folds an arbitrary float64 (including NaN and ±Inf) into
// [0, 1), deterministically.
func fuzzUnit(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	x = math.Abs(math.Mod(x, 1))
	if x >= 1 { // Mod can return exactly 1 only through rounding; clamp.
		x = 0
	}
	return x
}

// FuzzBuildTransitionMatrix drives the transition-tree builder over
// arbitrary (C, ∆, k, µ, d, ν) folded into the model's validity bounds:
// every build must succeed, the resulting matrix must be a well-formed
// absorbing-chain transition matrix (transient rows sum to 1, absorbing
// rows are exact self-loops, every entry a probability), and the state
// space must round-trip through its index bijectively. CI runs a short
// -fuzz smoke on top of the committed seeds.
func FuzzBuildTransitionMatrix(f *testing.F) {
	f.Add(uint8(7), uint8(7), uint8(0), 0.2, 0.9, 0.1)
	f.Add(uint8(4), uint8(5), uint8(1), 0.1, 0.5, 0.2)
	f.Add(uint8(9), uint8(3), uint8(8), 0.99, 0.0, 0.9)
	f.Add(uint8(1), uint8(2), uint8(0), 0.0, 0.0, 0.5)
	f.Add(uint8(10), uint8(9), uint8(3), 0.3, 0.999, 0.05)
	f.Fuzz(func(t *testing.T, c, delta, k uint8, mu, d, nu float64) {
		p := Params{
			C:     1 + int(c%10),
			Delta: 2 + int(delta%10),
			Mu:    fuzzUnit(mu),
			D:     fuzzUnit(d),
			Nu:    0.001 + 0.998*fuzzUnit(nu),
		}
		p.K = 1 + int(k)%p.C
		if err := p.Validate(); err != nil {
			t.Fatalf("folded params %v invalid: %v", p, err)
		}
		m, sp, err := BuildTransitionMatrix(p)
		if err != nil {
			t.Fatalf("build %v: %v", p, err)
		}
		// 1e-9 matches the randomized stochasticity property test: long
		// hypergeometric sums at extreme parameters accumulate a little
		// more rounding than the paper-grid cases.
		if err := ValidateStochasticity(m, sp, 1e-9); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for i, st := range sp.States() {
			if got := sp.MustIndex(st); got != i {
				t.Fatalf("%v: state %v indexes to %d, enumerated at %d", p, st, got, i)
			}
			if sp.At(i) != st {
				t.Fatalf("%v: At(%d) = %v, want %v", p, i, sp.At(i), st)
			}
		}
	})
}
