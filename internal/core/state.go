package core

import (
	"fmt"
)

// State is one state (s, x, y) of the cluster Markov chain X: spare-set
// size s, malicious core members x, malicious spare members y.
type State struct {
	S int // spare-set size, 0 ≤ S ≤ ∆
	X int // malicious peers in the core set, 0 ≤ X ≤ C
	Y int // malicious peers in the spare set, 0 ≤ Y ≤ S
}

// String renders the state as (s,x,y).
func (st State) String() string {
	return fmt.Sprintf("(%d,%d,%d)", st.S, st.X, st.Y)
}

// Class partitions the state space Ω (paper, Section VI).
type Class int

// The classes of Ω = S ∪ P ∪ A^m_S ∪ A^ℓ_S ∪ A^m_P (∪ A^ℓ_P, which the
// paper proves unreachable under Rule 2 and which we keep in the partition
// to verify exactly that).
const (
	// ClassSafe is the transient safe set S: 0 < s < ∆, x ≤ c.
	ClassSafe Class = iota
	// ClassPolluted is the transient polluted set P: 0 < s < ∆, x > c.
	ClassPolluted
	// ClassSafeMerge is A^m_S: s = 0, x ≤ c.
	ClassSafeMerge
	// ClassSafeSplit is A^ℓ_S: s = ∆, x ≤ c.
	ClassSafeSplit
	// ClassPollutedMerge is A^m_P: s = 0, x > c.
	ClassPollutedMerge
	// ClassPollutedSplit is A^ℓ_P: s = ∆, x > c. Rule 2 makes these states
	// unreachable; they are retained so the partition covers Ω.
	ClassPollutedSplit
)

// String names the class in the paper's notation.
func (c Class) String() string {
	switch c {
	case ClassSafe:
		return "S"
	case ClassPolluted:
		return "P"
	case ClassSafeMerge:
		return "AmS"
	case ClassSafeSplit:
		return "AlS"
	case ClassPollutedMerge:
		return "AmP"
	case ClassPollutedSplit:
		return "AlP"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Transient reports whether states of this class are transient.
func (c Class) Transient() bool {
	return c == ClassSafe || c == ClassPolluted
}

// Absorbing class names used in markov.Spec and result maps.
const (
	ClassNameSafeMerge     = "safe-merge"
	ClassNameSafeSplit     = "safe-split"
	ClassNamePollutedMerge = "polluted-merge"
	ClassNamePollutedSplit = "polluted-split"
)

// AbsorbingName returns the string key for absorbing classes, "" for
// transient ones.
func (c Class) AbsorbingName() string {
	switch c {
	case ClassSafeMerge:
		return ClassNameSafeMerge
	case ClassSafeSplit:
		return ClassNameSafeSplit
	case ClassPollutedMerge:
		return ClassNamePollutedMerge
	case ClassPollutedSplit:
		return ClassNamePollutedSplit
	default:
		return ""
	}
}

// Space enumerates Ω = {(s,x,y) : 0 ≤ s ≤ ∆, 0 ≤ x ≤ C, 0 ≤ y ≤ s} in a
// fixed deterministic order and classifies its states. A Space is
// immutable after construction and safe to share across goroutines (the
// sweep evaluator builds one per (C, ∆) group and reuses it for every
// grid cell).
type Space struct {
	c      int // core size
	delta  int
	quorum int
	states []State
	// byClass caches the index partition of Ω, computed once at
	// construction so every Chain assembly (six IndicesOf calls per
	// analysis) is a slice handoff instead of an O(|Ω|) classify pass.
	byClass [6][]int
}

// NewSpace enumerates the state space for core size c and spare bound
// delta.
func NewSpace(c, delta int) (*Space, error) {
	if c < 1 || delta < 1 {
		return nil, fmt.Errorf("core: NewSpace requires C ≥ 1 and ∆ ≥ 1, got C=%d ∆=%d", c, delta)
	}
	sp := &Space{
		c:      c,
		delta:  delta,
		quorum: (c - 1) / 3,
	}
	sp.states = make([]State, 0, (c+1)*(delta+1)*(delta+2)/2)
	for s := 0; s <= delta; s++ {
		for x := 0; x <= c; x++ {
			for y := 0; y <= s; y++ {
				st := State{S: s, X: x, Y: y}
				cl := sp.Classify(st)
				sp.byClass[cl] = append(sp.byClass[cl], len(sp.states))
				sp.states = append(sp.states, st)
			}
		}
	}
	return sp, nil
}

// Size returns |Ω|.
func (sp *Space) Size() int { return len(sp.states) }

// C returns the core size the space was enumerated for.
func (sp *Space) C() int { return sp.c }

// Delta returns the spare bound ∆ the space was enumerated for.
func (sp *Space) Delta() int { return sp.delta }

// States returns the states in index order. The slice must not be
// modified.
func (sp *Space) States() []State { return sp.states }

// indexOf is the closed-form enumeration index of an in-space state: the
// s-block starts after Σ_{t<s} (C+1)(t+1) = (C+1)·s(s+1)/2 states, and
// within the block states are laid out x-major with rows of length s+1.
// It replaces the former hash-map index — hash lookups dominated row
// emission at large C, ∆ (ROADMAP bound (ii)).
func (sp *Space) indexOf(st State) int {
	return (sp.c+1)*st.S*(st.S+1)/2 + st.X*(st.S+1) + st.Y
}

// contains reports st ∈ Ω.
func (sp *Space) contains(st State) bool {
	return st.S >= 0 && st.S <= sp.delta &&
		st.X >= 0 && st.X <= sp.c &&
		st.Y >= 0 && st.Y <= st.S
}

// Index returns the index of st, or false if st ∉ Ω.
func (sp *Space) Index(st State) (int, bool) {
	if !sp.contains(st) {
		return 0, false
	}
	return sp.indexOf(st), true
}

// MustIndex returns the index of st and panics if st ∉ Ω; it is intended
// for states produced by the transition builder, which are valid by
// construction.
func (sp *Space) MustIndex(st State) int {
	if !sp.contains(st) {
		panic(fmt.Sprintf("core: state %v outside Ω(C=%d, ∆=%d)", st, sp.c, sp.delta))
	}
	return sp.indexOf(st)
}

// At returns the state with the given index.
func (sp *Space) At(i int) State {
	return sp.states[i]
}

// Classify assigns st to its class of the partition of Ω.
func (sp *Space) Classify(st State) Class {
	safe := st.X <= sp.quorum
	switch {
	case st.S == 0 && safe:
		return ClassSafeMerge
	case st.S == 0:
		return ClassPollutedMerge
	case st.S == sp.delta && safe:
		return ClassSafeSplit
	case st.S == sp.delta:
		return ClassPollutedSplit
	case safe:
		return ClassSafe
	default:
		return ClassPolluted
	}
}

// IndicesOf returns the indices of all states in class cl, in index
// order. The slice is the space's cached partition and must not be
// modified.
func (sp *Space) IndicesOf(cl Class) []int {
	if cl < 0 || int(cl) >= len(sp.byClass) {
		return nil
	}
	return sp.byClass[cl]
}

// TransientCount returns |S| + |P|, the number of transient states.
func (sp *Space) TransientCount() int {
	return len(sp.byClass[ClassSafe]) + len(sp.byClass[ClassPolluted])
}

// Quorum returns the pollution quorum c = ⌊(C−1)/3⌋.
func (sp *Space) Quorum() int { return sp.quorum }

// Census counts the states per class.
func (sp *Space) Census() map[Class]int {
	out := make(map[Class]int)
	for cl, idx := range sp.byClass {
		if len(idx) > 0 {
			out[Class(cl)] = len(idx)
		}
	}
	return out
}
