package overlay

import (
	"math"
	"testing"

	"targetedattacks/internal/core"
)

func newModel(t *testing.T, mu, d float64) *core.Model {
	t.Helper()
	m, err := core.New(core.Params{C: 7, Delta: 7, Mu: mu, D: d, K: 1, Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	m := newModel(t, 0.1, 0.9)
	if _, err := New(nil, 10); err == nil {
		t.Error("nil model: want error")
	}
	if _, err := New(m, 0); err == nil {
		t.Error("n=0: want error")
	}
	cc, err := New(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cc.N() != 500 {
		t.Errorf("N() = %d", cc.N())
	}
}

func TestProportionSeriesStartsAtAlpha(t *testing.T) {
	m := newModel(t, 0.1, 0.9)
	cc, err := New(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := cc.ProportionSeries(m.InitialDelta(), 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Events != 0 || math.Abs(pts[0].Safe-1) > 1e-12 || pts[0].Polluted != 0 {
		t.Errorf("t=0 point = %+v, want Safe=1 Polluted=0", pts[0])
	}
	if last := pts[len(pts)-1]; last.Events != 100 {
		t.Errorf("last sample at %d events, want 100", last.Events)
	}
}

func TestProportionSeriesMonotoneDecayFailureFree(t *testing.T) {
	// With µ = 0 the safe proportion decays monotonically toward 0 and
	// the polluted proportion stays 0.
	m := newModel(t, 0, 0.9)
	cc, err := New(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := cc.ProportionSeries(m.InitialDelta(), 20000, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Safe > pts[i-1].Safe+1e-12 {
			t.Errorf("safe proportion increased: %v → %v", pts[i-1], pts[i])
		}
		if pts[i].Polluted != 0 {
			t.Errorf("polluted proportion %v at µ=0", pts[i].Polluted)
		}
	}
	if final := pts[len(pts)-1].Safe; final > 0.01 {
		t.Errorf("safe proportion after 20000 events on 100 clusters = %v, want ≈ 0", final)
	}
}

func TestProportionsStayInUnitInterval(t *testing.T) {
	m := newModel(t, 0.3, 0.9)
	cc, err := New(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := m.InitialBeta()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := cc.ProportionSeries(alpha, 5000, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Safe < -1e-12 || p.Safe > 1+1e-12 || p.Polluted < -1e-12 || p.Polluted > 1+1e-12 {
			t.Errorf("proportion outside [0,1]: %+v", p)
		}
		if p.Safe+p.Polluted > 1+1e-9 {
			t.Errorf("Safe+Polluted = %v > 1", p.Safe+p.Polluted)
		}
	}
}

func TestLargerNSlowsDecay(t *testing.T) {
	// Each cluster receives fewer events when n is larger, so the safe
	// proportion at a fixed m must be higher for larger n (paper Figure
	// 5: the n=1500 curves sit above the n=500 curves).
	m := newModel(t, 0.1, 0.9)
	cc500, err := New(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	cc1500, err := New(m, 1500)
	if err != nil {
		t.Fatal(err)
	}
	p500, err := cc500.ProportionSeries(m.InitialDelta(), 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	p1500, err := cc1500.ProportionSeries(m.InitialDelta(), 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	last500 := p500[len(p500)-1]
	last1500 := p1500[len(p1500)-1]
	if last1500.Safe <= last500.Safe {
		t.Errorf("safe(n=1500)=%v ≤ safe(n=500)=%v at m=30000", last1500.Safe, last500.Safe)
	}
}

func TestTheorem1MatchesTheorem2(t *testing.T) {
	// The expected proportion from Theorem 2 must equal Σ_{j∈S} of the
	// single-chain distribution from Theorem 1.
	m := newModel(t, 0.2, 0.8)
	cc, err := New(m, 50)
	if err != nil {
		t.Fatal(err)
	}
	alpha := m.InitialDelta()
	const events = 200
	pts, err := cc.ProportionSeries(alpha, events, 1)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := cc.SingleChainDistribution(alpha, events)
	if err != nil {
		t.Fatal(err)
	}
	var safe, polluted float64
	sp := m.Space()
	for j, st := range sp.States() {
		switch sp.Classify(st) {
		case core.ClassSafe:
			safe += dist[j]
		case core.ClassPolluted:
			polluted += dist[j]
		}
	}
	last := pts[len(pts)-1]
	if math.Abs(last.Safe-safe) > 1e-9 {
		t.Errorf("Theorem2 safe = %v, Theorem1 safe = %v", last.Safe, safe)
	}
	if math.Abs(last.Polluted-polluted) > 1e-9 {
		t.Errorf("Theorem2 polluted = %v, Theorem1 polluted = %v", last.Polluted, polluted)
	}
}

func TestSingleChainDistributionIsDistribution(t *testing.T) {
	m := newModel(t, 0.2, 0.9)
	cc, err := New(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := cc.SingleChainDistribution(m.InitialDelta(), 100)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range dist {
		if v < -1e-12 {
			t.Errorf("negative mass %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
}

func TestSeriesArgumentValidation(t *testing.T) {
	m := newModel(t, 0.1, 0.9)
	cc, err := New(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.ProportionSeries([]float64{1}, 10, 1); err == nil {
		t.Error("short alpha: want error")
	}
	if _, err := cc.ProportionSeries(m.InitialDelta(), -1, 1); err == nil {
		t.Error("negative events: want error")
	}
	if _, err := cc.ProportionSeries(m.InitialDelta(), 10, 0); err == nil {
		t.Error("zero samples: want error")
	}
	if _, err := cc.SingleChainDistribution([]float64{1}, 10); err == nil {
		t.Error("short alpha: want error")
	}
	if _, err := cc.SingleChainDistribution(m.InitialDelta(), -1); err == nil {
		t.Error("negative events: want error")
	}
}

func TestPollutedProportionLowPaperHeadline(t *testing.T) {
	// Paper, Section VIII: the expected proportion of polluted clusters
	// stays very low (< 2.2%) even for d = 90%. The paper does not print
	// its µ for Figure 5; µ = 25% reproduces the 2.2%% ceiling exactly
	// (peak 2.17% at n=500, d=90%; µ=30% would peak at 3.2%) — see
	// EXPERIMENTS.md. Checked for n = 500 over 100k events.
	m := newModel(t, 0.25, 0.9)
	cc, err := New(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := cc.ProportionSeries(m.InitialDelta(), 100000, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Polluted > 0.022 {
			t.Errorf("polluted proportion %v > 2.2%% at m=%d", p.Polluted, p.Events)
		}
	}
}

func TestLongRunProportionsZero(t *testing.T) {
	m := newModel(t, 0.2, 0.9)
	cc, err := New(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	s, p := cc.LongRunProportions()
	if s != 0 || p != 0 {
		t.Errorf("long-run proportions = %v,%v, want 0,0", s, p)
	}
}
