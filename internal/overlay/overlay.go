// Package overlay implements the overlay-level analysis of Section VIII of
// the DSN 2011 targeted-attack paper: n clusters D₁…Dₙ evolve as n
// identical Markov chains X⁽¹⁾…X⁽ⁿ⁾ that *compete for transitions* — each
// global join/leave event is routed to one chain chosen uniformly at
// random. The package computes the expected number of safe and polluted
// clusters after m events using the paper's Theorems 1 and 2:
//
//	E(N_S(m))/n = α (T/n + (1−1/n)·I)^m 1_S
//
// which it evaluates by iterated sparse row-vector products.
package overlay

import (
	"fmt"

	"targetedattacks/internal/combin"
	"targetedattacks/internal/core"
	"targetedattacks/internal/matrix"
)

// CompetingChains is the n-cluster overlay view of a cluster model.
type CompetingChains struct {
	model *core.Model
	n     int
}

// New builds the overlay view for n clusters.
func New(model *core.Model, n int) (*CompetingChains, error) {
	if model == nil {
		return nil, fmt.Errorf("overlay: nil model")
	}
	if n < 1 {
		return nil, fmt.Errorf("overlay: need n ≥ 1 clusters, got %d", n)
	}
	return &CompetingChains{model: model, n: n}, nil
}

// N returns the number of competing clusters.
func (cc *CompetingChains) N() int { return cc.n }

// Point is one sample of the expected proportions of safe and polluted
// clusters after Events global events.
type Point struct {
	// Events is m, the number of join/leave events routed to the overlay.
	Events int
	// Safe is E(N_S(m))/n.
	Safe float64
	// Polluted is E(N_P(m))/n.
	Polluted float64
}

// ProportionSeries evaluates Theorem 2 for m = 0 … maxEvents and returns
// about `samples` evenly spaced points (always including m = 0 and
// m = maxEvents). alpha is the per-cluster initial distribution over Ω.
func (cc *CompetingChains) ProportionSeries(alpha []float64, maxEvents, samples int) ([]Point, error) {
	sp := cc.model.Space()
	if len(alpha) != sp.Size() {
		return nil, fmt.Errorf("overlay: alpha has length %d, want |Ω| = %d", len(alpha), sp.Size())
	}
	if maxEvents < 0 {
		return nil, fmt.Errorf("overlay: negative event count %d", maxEvents)
	}
	if samples < 1 {
		return nil, fmt.Errorf("overlay: need ≥ 1 samples, got %d", samples)
	}
	stride := maxEvents / samples
	if stride == 0 {
		stride = 1
	}
	safeInd := cc.model.TransientIndicator(core.ClassSafe)
	pollInd := cc.model.TransientIndicator(core.ClassPolluted)
	m := cc.model.TransitionMatrix()

	v := append([]float64(nil), alpha...)
	next := make([]float64, len(v))
	invN := 1 / float64(cc.n)
	var out []Point
	record := func(events int) error {
		s, err := matrix.Dot(v, safeInd)
		if err != nil {
			return err
		}
		p, err := matrix.Dot(v, pollInd)
		if err != nil {
			return err
		}
		out = append(out, Point{Events: events, Safe: s, Polluted: p})
		return nil
	}
	if err := record(0); err != nil {
		return nil, err
	}
	for ev := 1; ev <= maxEvents; ev++ {
		// v ← v·(M/n + (1−1/n)·I) = (1/n)·(v·M) + (1−1/n)·v.
		if err := m.VecMulInto(v, next); err != nil {
			return nil, err
		}
		for i := range v {
			v[i] = invN*next[i] + (1-invN)*v[i]
		}
		if ev%stride == 0 || ev == maxEvents {
			if err := record(ev); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SingleChainDistribution evaluates Theorem 1: the distribution of one
// tagged chain X⁽ʰ⁾ after m overlay events, as the binomial mixture of the
// generic chain's ℓ-step distributions
//
//	P{X⁽ʰ⁾_m = j} = Σ_ℓ C(m,ℓ) (1/n)^ℓ (1−1/n)^{m−ℓ} P{X_ℓ = j}.
//
// It is primarily a cross-check of ProportionSeries (the two must agree),
// and costs O(m) chain steps.
func (cc *CompetingChains) SingleChainDistribution(alpha []float64, m int) ([]float64, error) {
	sp := cc.model.Space()
	if len(alpha) != sp.Size() {
		return nil, fmt.Errorf("overlay: alpha has length %d, want |Ω| = %d", len(alpha), sp.Size())
	}
	if m < 0 {
		return nil, fmt.Errorf("overlay: negative event count %d", m)
	}
	tm := cc.model.TransitionMatrix()
	out := make([]float64, sp.Size())
	pi := append([]float64(nil), alpha...)
	next := make([]float64, sp.Size())
	p := 1 / float64(cc.n)
	for l := 0; l <= m; l++ {
		w, err := binomialWeight(m, l, p)
		if err != nil {
			return nil, err
		}
		if w > 0 {
			for j := range out {
				out[j] += w * pi[j]
			}
		}
		if l < m {
			if err := tm.VecMulInto(pi, next); err != nil {
				return nil, err
			}
			pi, next = next, pi
		}
	}
	return out, nil
}

func binomialWeight(m, l int, p float64) (float64, error) {
	return combin.BinomialPMF(m, p, l)
}

// LongRunProportions returns the limiting values of the safe and polluted
// proportions. The transient classes S and P vanish in the limit (matrix
// T/n + (1−1/n)I is sub-stochastic — end of Section VIII), so this always
// returns (0, 0); it exists to document and test exactly that claim.
func (cc *CompetingChains) LongRunProportions() (safe, polluted float64) {
	return 0, 0
}
