// Package markov implements the absorbing discrete-time Markov-chain
// analytics that the DSN 2011 targeted-attack paper builds on:
//
//   - expected total time spent in a subset of transient states before
//     absorption (Sericola, J. Appl. Prob. 1990 — the paper's relations
//     (5) and (6)),
//   - expected durations of the successive sojourns in each transient
//     subset (Sericola & Rubino, J. Appl. Prob. 1989 — relations (7), (8)),
//   - absorption probabilities per absorbing class (relation (9)),
//   - transient distribution evolution.
//
// The chain's transient states are partitioned into two subsets A and B
// (the paper's safe set S and polluted set P); the remaining states form
// named absorbing classes.
package markov

import (
	"fmt"

	"targetedattacks/internal/matrix"
)

// Chain is an absorbing discrete-time Markov chain whose transient states
// are split into two subsets. All matrices are extracted once at
// construction; the analytic methods are then pure linear algebra.
type Chain struct {
	// Block decomposition of the transition matrix restricted to the
	// transient states, in the (A, B) order.
	ma, mab, mba, mb *matrix.Dense
	// absorbing[class] holds the |A|+|B| by |class| block of transitions
	// from transient states into that absorbing class.
	absorbing map[string]*matrix.Dense
	classes   []string // deterministic iteration order
	alphaA    []float64
	alphaB    []float64
	nA, nB    int
}

// Spec describes how to carve a Chain out of a full transition matrix.
type Spec struct {
	// Full is the complete transition matrix over all states.
	Full *matrix.CSR
	// Alpha is the initial distribution over all states.
	Alpha []float64
	// SubsetA and SubsetB are the two transient subsets (paper: S and P).
	SubsetA, SubsetB []int
	// AbsorbingClasses maps a class name to its state indices.
	AbsorbingClasses map[string][]int
	// ClassOrder fixes the iteration order of the absorbing classes; it
	// must list every key of AbsorbingClasses exactly once.
	ClassOrder []string
}

// NewChain validates a Spec and extracts the dense blocks used by all
// analytic computations.
func NewChain(spec Spec) (*Chain, error) {
	if spec.Full == nil {
		return nil, fmt.Errorf("markov: Spec.Full is nil")
	}
	n := spec.Full.Rows()
	if spec.Full.Cols() != n {
		return nil, fmt.Errorf("markov: transition matrix is %dx%d, want square", n, spec.Full.Cols())
	}
	if len(spec.Alpha) != n {
		return nil, fmt.Errorf("markov: alpha has length %d, want %d", len(spec.Alpha), n)
	}
	if len(spec.ClassOrder) != len(spec.AbsorbingClasses) {
		return nil, fmt.Errorf("markov: ClassOrder lists %d classes, AbsorbingClasses has %d",
			len(spec.ClassOrder), len(spec.AbsorbingClasses))
	}
	seen := make(map[int]string, n)
	mark := func(idx []int, label string) error {
		for _, i := range idx {
			if i < 0 || i >= n {
				return fmt.Errorf("markov: state index %d out of range [0,%d)", i, n)
			}
			if prev, dup := seen[i]; dup {
				return fmt.Errorf("markov: state %d assigned to both %s and %s", i, prev, label)
			}
			seen[i] = label
		}
		return nil
	}
	if err := mark(spec.SubsetA, "A"); err != nil {
		return nil, err
	}
	if err := mark(spec.SubsetB, "B"); err != nil {
		return nil, err
	}
	for _, name := range spec.ClassOrder {
		idx, ok := spec.AbsorbingClasses[name]
		if !ok {
			return nil, fmt.Errorf("markov: ClassOrder names unknown class %q", name)
		}
		if err := mark(idx, name); err != nil {
			return nil, err
		}
	}

	full := spec.Full.Dense()
	sub := func(rows, cols []int) (*matrix.Dense, error) { return full.SubMatrix(rows, cols) }
	ma, err := sub(spec.SubsetA, spec.SubsetA)
	if err != nil {
		return nil, err
	}
	mab, err := sub(spec.SubsetA, spec.SubsetB)
	if err != nil {
		return nil, err
	}
	mba, err := sub(spec.SubsetB, spec.SubsetA)
	if err != nil {
		return nil, err
	}
	mb, err := sub(spec.SubsetB, spec.SubsetB)
	if err != nil {
		return nil, err
	}
	transient := make([]int, 0, len(spec.SubsetA)+len(spec.SubsetB))
	transient = append(transient, spec.SubsetA...)
	transient = append(transient, spec.SubsetB...)
	abs := make(map[string]*matrix.Dense, len(spec.AbsorbingClasses))
	for name, idx := range spec.AbsorbingClasses {
		blk, err := sub(transient, idx)
		if err != nil {
			return nil, err
		}
		abs[name] = blk
	}
	c := &Chain{
		ma: ma, mab: mab, mba: mba, mb: mb,
		absorbing: abs,
		classes:   append([]string(nil), spec.ClassOrder...),
		alphaA:    pick(spec.Alpha, spec.SubsetA),
		alphaB:    pick(spec.Alpha, spec.SubsetB),
		nA:        len(spec.SubsetA),
		nB:        len(spec.SubsetB),
	}
	return c, nil
}

func pick(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for p, i := range idx {
		out[p] = v[i]
	}
	return out
}

// iMinus returns I - m.
func iMinus(m *matrix.Dense) (*matrix.Dense, error) {
	return matrix.Identity(m.Rows()).Sub(m)
}

// entryVector computes the paper's v (relation (5)) for subset A:
// v = αA + αB (I − M_B)⁻¹ M_{BA}, the distribution of the state in A at the
// instant the chain first visits A (counting a start in A).
func (c *Chain) entryVector(alphaA, alphaB []float64, mb, mba *matrix.Dense) ([]float64, error) {
	if len(alphaB) == 0 {
		return append([]float64(nil), alphaA...), nil
	}
	imb, err := iMinus(mb)
	if err != nil {
		return nil, err
	}
	u, err := matrix.SolveVecLeft(imb, alphaB)
	if err != nil {
		return nil, fmt.Errorf("markov: solving αB(I−M_B)⁻¹: %w", err)
	}
	um, err := mba.VecMul(u)
	if err != nil {
		return nil, err
	}
	return matrix.VecAdd(alphaA, um)
}

// returnKernel computes R = M_A + M_{AB} (I − M_B)⁻¹ M_{BA}: the transition
// kernel of the chain censored on subset A (relation (5)).
func (c *Chain) returnKernel(ma, mab, mb, mba *matrix.Dense) (*matrix.Dense, error) {
	if mb.Rows() == 0 {
		return ma.Clone(), nil
	}
	imb, err := iMinus(mb)
	if err != nil {
		return nil, err
	}
	z, err := matrix.Solve(imb, mba)
	if err != nil {
		return nil, fmt.Errorf("markov: solving (I−M_B)⁻¹M_BA: %w", err)
	}
	mz, err := mab.Mul(z)
	if err != nil {
		return nil, err
	}
	return ma.AddM(mz)
}

// ExpectedTotalTimeInA returns E(T_A), the expected number of transitions
// spent in subset A before absorption (paper relation (5)).
func (c *Chain) ExpectedTotalTimeInA() (float64, error) {
	return c.expectedTotalTime(c.alphaA, c.alphaB, c.ma, c.mab, c.mb, c.mba)
}

// ExpectedTotalTimeInB returns E(T_B), the expected number of transitions
// spent in subset B before absorption (paper relation (6)).
func (c *Chain) ExpectedTotalTimeInB() (float64, error) {
	return c.expectedTotalTime(c.alphaB, c.alphaA, c.mb, c.mba, c.ma, c.mab)
}

func (c *Chain) expectedTotalTime(alphaA, alphaB []float64, ma, mab, mb, mba *matrix.Dense) (float64, error) {
	if ma.Rows() == 0 {
		return 0, nil
	}
	v, err := c.entryVector(alphaA, alphaB, mb, mba)
	if err != nil {
		return 0, err
	}
	r, err := c.returnKernel(ma, mab, mb, mba)
	if err != nil {
		return 0, err
	}
	ir, err := iMinus(r)
	if err != nil {
		return 0, err
	}
	w, err := matrix.SolveVec(ir, matrix.Ones(ma.Rows()))
	if err != nil {
		return 0, fmt.Errorf("markov: solving (I−R)⁻¹1: %w", err)
	}
	return matrix.Dot(v, w)
}

// SuccessiveSojournsInA returns E(T_{A,1}), …, E(T_{A,n}): the expected
// durations of the first n sojourns of the chain in subset A (paper
// relation (7), after Sericola & Rubino 1989).
func (c *Chain) SuccessiveSojournsInA(n int) ([]float64, error) {
	return c.successiveSojourns(n, c.alphaA, c.alphaB, c.ma, c.mab, c.mb, c.mba)
}

// SuccessiveSojournsInB is the subset-B counterpart (paper relation (8)).
func (c *Chain) SuccessiveSojournsInB(n int) ([]float64, error) {
	return c.successiveSojourns(n, c.alphaB, c.alphaA, c.mb, c.mba, c.ma, c.mab)
}

func (c *Chain) successiveSojourns(n int, alphaA, alphaB []float64, ma, mab, mb, mba *matrix.Dense) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("markov: negative sojourn count %d", n)
	}
	out := make([]float64, n)
	if n == 0 || ma.Rows() == 0 {
		return out, nil
	}
	v, err := c.entryVector(alphaA, alphaB, mb, mba)
	if err != nil {
		return nil, err
	}
	ima, err := iMinus(ma)
	if err != nil {
		return nil, err
	}
	fa, err := matrix.FactorLU(ima)
	if err != nil {
		return nil, fmt.Errorf("markov: factorizing I−M_A: %w", err)
	}
	u, err := fa.SolveVec(matrix.Ones(ma.Rows()))
	if err != nil {
		return nil, err
	}
	// G = (I−M_A)⁻¹ M_AB (I−M_B)⁻¹ M_BA; empty B makes G = 0 and only the
	// first sojourn exists.
	var g *matrix.Dense
	if mb.Rows() > 0 {
		imb, err := iMinus(mb)
		if err != nil {
			return nil, err
		}
		z, err := matrix.Solve(imb, mba)
		if err != nil {
			return nil, fmt.Errorf("markov: solving (I−M_B)⁻¹M_BA: %w", err)
		}
		mz, err := mab.Mul(z)
		if err != nil {
			return nil, err
		}
		g, err = fa.Solve(mz)
		if err != nil {
			return nil, err
		}
	} else {
		g = matrix.NewDense(ma.Rows(), ma.Rows())
	}
	r := v
	for i := 0; i < n; i++ {
		e, err := matrix.Dot(r, u)
		if err != nil {
			return nil, err
		}
		out[i] = e
		if i+1 < n {
			r, err = g.VecMul(r)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// AbsorptionProbabilities returns, for every absorbing class, the
// probability that the chain is eventually absorbed there (relation (9)):
// p(U) = α_T (I − T)⁻¹ R_U 1.
func (c *Chain) AbsorptionProbabilities() (map[string]float64, error) {
	nT := c.nA + c.nB
	if nT == 0 {
		return nil, fmt.Errorf("markov: no transient states")
	}
	t, err := c.transientMatrix()
	if err != nil {
		return nil, err
	}
	it, err := iMinus(t)
	if err != nil {
		return nil, err
	}
	alphaT := make([]float64, 0, nT)
	alphaT = append(alphaT, c.alphaA...)
	alphaT = append(alphaT, c.alphaB...)
	y, err := matrix.SolveVecLeft(it, alphaT)
	if err != nil {
		return nil, fmt.Errorf("markov: solving α_T(I−T)⁻¹: %w", err)
	}
	out := make(map[string]float64, len(c.absorbing))
	for _, name := range c.classes {
		blk := c.absorbing[name]
		col, err := blk.MulVec(matrix.Ones(blk.Cols()))
		if err != nil {
			return nil, err
		}
		p, err := matrix.Dot(y, col)
		if err != nil {
			return nil, err
		}
		out[name] = p
	}
	return out, nil
}

// transientMatrix assembles T = [[M_A, M_AB], [M_BA, M_B]].
func (c *Chain) transientMatrix() (*matrix.Dense, error) {
	n := c.nA + c.nB
	t := matrix.NewDense(n, n)
	copyBlock := func(dst *matrix.Dense, src *matrix.Dense, r0, c0 int) {
		for i := 0; i < src.Rows(); i++ {
			for j := 0; j < src.Cols(); j++ {
				dst.Set(r0+i, c0+j, src.At(i, j))
			}
		}
	}
	copyBlock(t, c.ma, 0, 0)
	copyBlock(t, c.mab, 0, c.nA)
	copyBlock(t, c.mba, c.nA, 0)
	copyBlock(t, c.mb, c.nA, c.nA)
	return t, nil
}

// HitProbabilityA returns the probability that the chain ever visits
// subset A before absorption (counting a start inside A): the total mass
// of the entry vector v of relation (5).
func (c *Chain) HitProbabilityA() (float64, error) {
	if c.nA == 0 {
		return 0, nil
	}
	v, err := c.entryVector(c.alphaA, c.alphaB, c.mb, c.mba)
	if err != nil {
		return 0, err
	}
	return matrix.VecSum(v), nil
}

// HitProbabilityB is the subset-B counterpart of HitProbabilityA.
func (c *Chain) HitProbabilityB() (float64, error) {
	if c.nB == 0 {
		return 0, nil
	}
	w, err := c.entryVector(c.alphaB, c.alphaA, c.ma, c.mab)
	if err != nil {
		return 0, err
	}
	return matrix.VecSum(w), nil
}

// AbsorbedWithinA returns the probability that the chain reaches one of
// the named absorbing classes along a path that never leaves subset A:
// α_A (I − M_A)⁻¹ R^A 1, with R^A the rows of the class blocks
// corresponding to subset A. Initial mass on subset B contributes
// nothing. Together with HitProbabilityB this separates "dies clean"
// from "was ever dirty": P(ever in B ∪ other classes) = 1 − AbsorbedWithinA(safe classes).
func (c *Chain) AbsorbedWithinA(classes ...string) (float64, error) {
	if c.nA == 0 {
		return 0, nil
	}
	rhs := make([]float64, c.nA)
	for _, name := range classes {
		blk, ok := c.absorbing[name]
		if !ok {
			return 0, fmt.Errorf("markov: unknown absorbing class %q", name)
		}
		for i := 0; i < c.nA; i++ {
			for j := 0; j < blk.Cols(); j++ {
				rhs[i] += blk.At(i, j)
			}
		}
	}
	ima, err := iMinus(c.ma)
	if err != nil {
		return 0, err
	}
	z, err := matrix.SolveVec(ima, rhs)
	if err != nil {
		return 0, fmt.Errorf("markov: solving (I−M_A)⁻¹: %w", err)
	}
	return matrix.Dot(c.alphaA, z)
}

// ExpectedTotalTransientTime returns E(T_A) + E(T_B): the expected number
// of transitions before absorption.
func (c *Chain) ExpectedTotalTransientTime() (float64, error) {
	a, err := c.ExpectedTotalTimeInA()
	if err != nil {
		return 0, err
	}
	b, err := c.ExpectedTotalTimeInB()
	if err != nil {
		return 0, err
	}
	return a + b, nil
}

// Classes returns the absorbing class names in their fixed order.
func (c *Chain) Classes() []string {
	return append([]string(nil), c.classes...)
}

// TransientSizes returns (|A|, |B|).
func (c *Chain) TransientSizes() (int, int) { return c.nA, c.nB }
