// Package markov implements the absorbing discrete-time Markov-chain
// analytics that the DSN 2011 targeted-attack paper builds on:
//
//   - expected total time spent in a subset of transient states before
//     absorption (Sericola, J. Appl. Prob. 1990 — the paper's relations
//     (5) and (6)),
//   - expected durations of the successive sojourns in each transient
//     subset (Sericola & Rubino, J. Appl. Prob. 1989 — relations (7), (8)),
//   - absorption probabilities per absorbing class (relation (9)),
//   - transient distribution evolution.
//
// The chain's transient states are partitioned into two subsets A and B
// (the paper's safe set S and polluted set P); the remaining states form
// named absorbing classes.
//
// The pipeline is sparse end-to-end: the blocks of the transition matrix
// are carved directly out of the CSR, every relation is routed through the
// pluggable matrix.Solver interface, and nothing is densified unless the
// dense LU backend itself is selected. Factorizations and the shared
// visits vector α_T(I−T)⁻¹ are cached on the Chain and reused across
// relations, so e.g. E(T_S), E(T_P) and the absorption probabilities cost
// one linear solve between them.
package markov

import (
	"fmt"

	"targetedattacks/internal/matrix"
)

// Chain is an absorbing discrete-time Markov chain whose transient states
// are split into two subsets. All CSR blocks are extracted once at
// construction; the analytic methods are then pure (sparse) linear
// algebra. A Chain caches factorizations and shared solves, so it is not
// safe for concurrent use.
type Chain struct {
	// Block decomposition of the transition matrix restricted to the
	// transient states, in the (A, B) order.
	ma, mab, mba, mb *matrix.CSR
	// tt is the full transient block T = [[M_A, M_AB], [M_BA, M_B]].
	tt *matrix.CSR
	// absorbing[class] holds the |A|+|B| by |class| block of transitions
	// from transient states into that absorbing class.
	absorbing map[string]*matrix.CSR
	classes   []string // deterministic iteration order
	alphaA    []float64
	alphaB    []float64
	nA, nB    int

	solver matrix.Solver
	// Cached factorizations of I−M_A, I−M_B, I−T and the shared visits
	// vector y = α_T (I−T)⁻¹, filled on first use.
	fa, fb, ft matrix.Factorization
	visitsVec  []float64
	// ws seeds iterative solves from a neighboring chain's recorded
	// solutions; rec accumulates this chain's own converged vectors.
	ws  *WarmStart
	rec WarmStart
}

// WarmStart carries the converged solution vectors of one chain's
// analysis so a neighboring chain — the next cell of a parameter sweep,
// whose blocks differ only by smoothly varying branch weights — can seed
// its iterative solves with them. Vectors are keyed by the relation that
// produced them; any entry may be nil (that solve starts cold). Seeding
// is best-effort: a vector whose length does not match the consuming
// chain's blocks is ignored. The vectors are read-only — the producing
// and the consuming chain may hold references to the same slices.
type WarmStart struct {
	// Visits seeds the shared left solve α_T(I−T)⁻¹ of relations (5),
	// (6) and (9); length |A|+|B|.
	Visits []float64
	// EntryA seeds the αB(I−M_B)⁻¹ left solve inside the subset-A entry
	// vector of relation (5) (length |B|); EntryB seeds the mirrored
	// solve of the subset-B entry vector (length |A|).
	EntryA, EntryB []float64
	// UA and UB seed the column solves (I−M_A)⁻¹1 and (I−M_B)⁻¹1 of
	// relations (7)/(8).
	UA, UB []float64
	// SojournPrologue seeds the B recursion's first half-step of
	// SuccessiveSojournsBoth.
	SojournPrologue []float64
	// StepsA[i] and StepsB[i] seed the batched left solves of sojourn
	// recursion step i+1 against I−M_A and I−M_B respectively.
	StepsA, StepsB [][][]float64
	// Clean seeds the (I−M_A)⁻¹ solve of AbsorbedWithinA; length |A|.
	Clean []float64
}

// SeedWarmStart installs ws as the source of initial guesses for the
// chain's iterative solves; call it before any analysis method. A nil
// ws (or nil entries) leaves the corresponding solves cold. Warm-started
// solves satisfy the same residual tolerance as cold ones, so results
// agree with the cold path to solver tolerance — they are not
// bit-identical. The dense backend ignores seeds entirely.
func (c *Chain) SeedWarmStart(ws *WarmStart) { c.ws = ws }

// RecordedWarmStart returns the solution vectors recorded by the
// analysis methods run so far, for seeding a neighboring chain.
func (c *Chain) RecordedWarmStart() *WarmStart {
	rec := c.rec
	return &rec
}

// SolveStats aggregates the linear-solver work of every factorization
// the chain has built so far.
func (c *Chain) SolveStats() matrix.SolveStats {
	var st matrix.SolveStats
	for _, f := range []matrix.Factorization{c.ft, c.fa, c.fb} {
		if f != nil {
			st = st.Plus(f.Stats())
		}
	}
	if st.Backend == "" {
		st.Backend = c.solver.Name()
	}
	return st
}

// fit returns seed if it has length n, else nil: chain-level warm
// starting is best-effort and must never turn a solvable analysis into
// an error.
func fit(seed []float64, n int) []float64 {
	if len(seed) == n {
		return seed
	}
	return nil
}

// fitBatch returns the recorded step-i batch (1-based loop index) if its
// shape matches the pending batch of n-vectors, else nil.
func fitBatch(steps [][][]float64, i, want, n int) [][]float64 {
	if i-1 >= len(steps) || len(steps[i-1]) != want {
		return nil
	}
	for _, s := range steps[i-1] {
		if len(s) != n {
			return nil
		}
	}
	return steps[i-1]
}

// Spec describes how to carve a Chain out of a full transition matrix.
type Spec struct {
	// Full is the complete transition matrix over all states.
	Full *matrix.CSR
	// Alpha is the initial distribution over all states.
	Alpha []float64
	// SubsetA and SubsetB are the two transient subsets (paper: S and P).
	SubsetA, SubsetB []int
	// AbsorbingClasses maps a class name to its state indices.
	AbsorbingClasses map[string][]int
	// ClassOrder fixes the iteration order of the absorbing classes; it
	// must list every key of AbsorbingClasses exactly once.
	ClassOrder []string
	// Solver selects the linear-solver backend for every relation; nil
	// selects the exact dense LU backend.
	Solver matrix.Solver
}

// NewChain validates a Spec and extracts the CSR blocks used by all
// analytic computations. The full matrix is never densified.
func NewChain(spec Spec) (*Chain, error) {
	if spec.Full == nil {
		return nil, fmt.Errorf("markov: Spec.Full is nil")
	}
	n := spec.Full.Rows()
	if spec.Full.Cols() != n {
		return nil, fmt.Errorf("markov: transition matrix is %dx%d, want square", n, spec.Full.Cols())
	}
	if len(spec.Alpha) != n {
		return nil, fmt.Errorf("markov: alpha has length %d, want %d", len(spec.Alpha), n)
	}
	if len(spec.ClassOrder) != len(spec.AbsorbingClasses) {
		return nil, fmt.Errorf("markov: ClassOrder lists %d classes, AbsorbingClasses has %d",
			len(spec.ClassOrder), len(spec.AbsorbingClasses))
	}
	seen := make(map[int]string, n)
	mark := func(idx []int, label string) error {
		for _, i := range idx {
			if i < 0 || i >= n {
				return fmt.Errorf("markov: state index %d out of range [0,%d)", i, n)
			}
			if prev, dup := seen[i]; dup {
				return fmt.Errorf("markov: state %d assigned to both %s and %s", i, prev, label)
			}
			seen[i] = label
		}
		return nil
	}
	if err := mark(spec.SubsetA, "A"); err != nil {
		return nil, err
	}
	if err := mark(spec.SubsetB, "B"); err != nil {
		return nil, err
	}
	for _, name := range spec.ClassOrder {
		idx, ok := spec.AbsorbingClasses[name]
		if !ok {
			return nil, fmt.Errorf("markov: ClassOrder names unknown class %q", name)
		}
		if err := mark(idx, name); err != nil {
			return nil, err
		}
	}

	sub := spec.Full.SubCSR
	ma, err := sub(spec.SubsetA, spec.SubsetA)
	if err != nil {
		return nil, err
	}
	mab, err := sub(spec.SubsetA, spec.SubsetB)
	if err != nil {
		return nil, err
	}
	mba, err := sub(spec.SubsetB, spec.SubsetA)
	if err != nil {
		return nil, err
	}
	mb, err := sub(spec.SubsetB, spec.SubsetB)
	if err != nil {
		return nil, err
	}
	transient := make([]int, 0, len(spec.SubsetA)+len(spec.SubsetB))
	transient = append(transient, spec.SubsetA...)
	transient = append(transient, spec.SubsetB...)
	tt, err := sub(transient, transient)
	if err != nil {
		return nil, err
	}
	abs := make(map[string]*matrix.CSR, len(spec.AbsorbingClasses))
	for name, idx := range spec.AbsorbingClasses {
		blk, err := sub(transient, idx)
		if err != nil {
			return nil, err
		}
		abs[name] = blk
	}
	solver := spec.Solver
	if solver == nil {
		solver = matrix.DenseSolver{}
	}
	c := &Chain{
		ma: ma, mab: mab, mba: mba, mb: mb, tt: tt,
		absorbing: abs,
		classes:   append([]string(nil), spec.ClassOrder...),
		alphaA:    pick(spec.Alpha, spec.SubsetA),
		alphaB:    pick(spec.Alpha, spec.SubsetB),
		nA:        len(spec.SubsetA),
		nB:        len(spec.SubsetB),
		solver:    solver,
	}
	return c, nil
}

func pick(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for p, i := range idx {
		out[p] = v[i]
	}
	return out
}

// SolverName reports which linear-solver backend the chain routes its
// relations through.
func (c *Chain) SolverName() string { return c.solver.Name() }

// factA returns the cached factorization of I − M_A.
func (c *Chain) factA() (matrix.Factorization, error) {
	if c.fa == nil {
		f, err := c.solver.Factor(c.ma)
		if err != nil {
			return nil, fmt.Errorf("markov: factoring I−M_A: %w", err)
		}
		c.fa = f
	}
	return c.fa, nil
}

// factB returns the cached factorization of I − M_B.
func (c *Chain) factB() (matrix.Factorization, error) {
	if c.fb == nil {
		f, err := c.solver.Factor(c.mb)
		if err != nil {
			return nil, fmt.Errorf("markov: factoring I−M_B: %w", err)
		}
		c.fb = f
	}
	return c.fb, nil
}

// factT returns the cached factorization of I − T over all transient
// states.
func (c *Chain) factT() (matrix.Factorization, error) {
	if c.ft == nil {
		f, err := c.solver.Factor(c.tt)
		if err != nil {
			return nil, fmt.Errorf("markov: factoring I−T: %w", err)
		}
		c.ft = f
	}
	return c.ft, nil
}

// visits returns the cached visits vector y = α_T (I − T)⁻¹: y_j is the
// expected number of visits to transient state j before absorption. One
// left solve serves relations (5), (6) and (9).
func (c *Chain) visits() ([]float64, error) {
	if c.visitsVec != nil {
		return c.visitsVec, nil
	}
	ft, err := c.factT()
	if err != nil {
		return nil, err
	}
	alphaT := make([]float64, 0, c.nA+c.nB)
	alphaT = append(alphaT, c.alphaA...)
	alphaT = append(alphaT, c.alphaB...)
	var seed []float64
	if c.ws != nil {
		seed = fit(c.ws.Visits, c.nA+c.nB)
	}
	y, err := ft.SolveVecLeftFrom(alphaT, seed)
	if err != nil {
		return nil, fmt.Errorf("markov: solving α_T(I−T)⁻¹: %w", err)
	}
	c.visitsVec = y
	c.rec.Visits = y
	return y, nil
}

// entryVector computes the paper's v (relation (5)) for subset A:
// v = αA + αB (I − M_B)⁻¹ M_{BA}, the distribution of the state in A at
// the instant the chain first visits A (counting a start in A). fb must
// factor I − M_B. x0 optionally warm-starts the inner left solve, whose
// solution is returned alongside v for recording.
func entryVector(alphaA, alphaB []float64, fb matrix.Factorization, mba *matrix.CSR, x0 []float64) (v, u []float64, err error) {
	if len(alphaB) == 0 {
		return append([]float64(nil), alphaA...), nil, nil
	}
	u, err = fb.SolveVecLeftFrom(alphaB, fit(x0, len(alphaB)))
	if err != nil {
		return nil, nil, fmt.Errorf("markov: solving αB(I−M_B)⁻¹: %w", err)
	}
	um, err := mba.VecMul(u)
	if err != nil {
		return nil, nil, err
	}
	v, err = matrix.VecAdd(alphaA, um)
	return v, u, err
}

// ExpectedTotalTimeInA returns E(T_A), the expected number of transitions
// spent in subset A before absorption (paper relation (5)). The censored
// kernel identity v(I − R)⁻¹1 of the paper is evaluated through the
// equivalent fundamental-matrix form Σ_{j∈A} [α_T(I−T)⁻¹]_j, which shares
// its single sparse solve with relation (6) and the absorption
// probabilities (9).
func (c *Chain) ExpectedTotalTimeInA() (float64, error) {
	return c.expectedTotalTime(0, c.nA)
}

// ExpectedTotalTimeInB returns E(T_B), the expected number of transitions
// spent in subset B before absorption (paper relation (6)).
func (c *Chain) ExpectedTotalTimeInB() (float64, error) {
	return c.expectedTotalTime(c.nA, c.nA+c.nB)
}

func (c *Chain) expectedTotalTime(lo, hi int) (float64, error) {
	if lo == hi {
		return 0, nil
	}
	y, err := c.visits()
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range y[lo:hi] {
		s += v
	}
	return s, nil
}

// SuccessiveSojournsInA returns E(T_{A,1}), …, E(T_{A,n}): the expected
// durations of the first n sojourns of the chain in subset A (paper
// relation (7), after Sericola & Rubino 1989).
func (c *Chain) SuccessiveSojournsInA(n int) ([]float64, error) {
	return c.successiveSojourns(n, false)
}

// SuccessiveSojournsInB is the subset-B counterpart (paper relation (8)).
func (c *Chain) SuccessiveSojournsInB(n int) ([]float64, error) {
	return c.successiveSojourns(n, true)
}

// successiveSojourns evaluates relation (7) with every matrix power
// applied as sparse solves and products: out[i] = v Gⁱ u with
// G = (I−M_A)⁻¹ M_AB (I−M_B)⁻¹ M_BA and u = (I−M_A)⁻¹ 1. swapped selects
// the subset-B orientation (A and B exchange roles).
func (c *Chain) successiveSojourns(n int, swapped bool) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("markov: negative sojourn count %d", n)
	}
	alphaA, alphaB := c.alphaA, c.alphaB
	mab, mba := c.mab, c.mba
	factA, factB := c.factA, c.factB
	if swapped {
		alphaA, alphaB = alphaB, alphaA
		mab, mba = mba, mab
		factA, factB = factB, factA
	}
	out := make([]float64, n)
	if n == 0 || len(alphaA) == 0 {
		return out, nil
	}
	fa, err := factA()
	if err != nil {
		return nil, err
	}
	var fb matrix.Factorization
	if len(alphaB) > 0 {
		if fb, err = factB(); err != nil {
			return nil, err
		}
	}
	v, _, err := entryVector(alphaA, alphaB, fb, mba, nil)
	if err != nil {
		return nil, err
	}
	u, err := fa.SolveVec(matrix.Ones(len(alphaA)))
	if err != nil {
		return nil, err
	}
	r := v
	for i := 0; i < n; i++ {
		e, err := matrix.Dot(r, u)
		if err != nil {
			return nil, err
		}
		out[i] = e
		if i+1 == n {
			break
		}
		// Empty B makes G = 0: only the first sojourn exists.
		if len(alphaB) == 0 {
			break
		}
		// r ← r G, one factor at a time: two sparse left-solves and two
		// CSR row-vector products instead of a dense G.
		t1, err := fa.SolveVecLeft(r)
		if err != nil {
			return nil, err
		}
		t2, err := mab.VecMul(t1)
		if err != nil {
			return nil, err
		}
		t3, err := fb.SolveVecLeft(t2)
		if err != nil {
			return nil, err
		}
		if r, err = mba.VecMul(t3); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SuccessiveSojournsBoth returns the first n expected sojourn durations
// in A and in B together (relations (7) and (8)). The two recursions are
// advanced in lockstep: at every step the pending left systems against
// I−M_A are batched into one SolveMatLeft call, and likewise for I−M_B —
// one batched solve per block per iteration instead of four vector
// solves, with each block's setup (LU factors, sparse transpose) paid
// once per batch. The per-vector arithmetic is unchanged, so the result
// is bit-identical to the two single-subset recursions.
func (c *Chain) SuccessiveSojournsBoth(n int) ([]float64, []float64, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("markov: negative sojourn count %d", n)
	}
	if n == 0 || c.nA == 0 || c.nB == 0 {
		// One subset is empty (its sojourns are all zero and the other
		// recursion terminates after one term): the single-subset paths
		// already special-case this without any cross-block work.
		a, err := c.successiveSojourns(n, false)
		if err != nil {
			return nil, nil, err
		}
		b, err := c.successiveSojourns(n, true)
		if err != nil {
			return nil, nil, err
		}
		return a, b, nil
	}
	fa, err := c.factA()
	if err != nil {
		return nil, nil, err
	}
	fb, err := c.factB()
	if err != nil {
		return nil, nil, err
	}
	// Seed every solve from the neighboring chain's recorded solutions
	// (ws == nil or a nil entry means a cold start), and record this
	// chain's own solutions for the next neighbor.
	ws := c.ws
	if ws == nil {
		ws = &WarmStart{}
	}
	vA, entryA, err := entryVector(c.alphaA, c.alphaB, fb, c.mba, ws.EntryA)
	if err != nil {
		return nil, nil, err
	}
	c.rec.EntryA = entryA
	vB, entryB, err := entryVector(c.alphaB, c.alphaA, fa, c.mab, ws.EntryB)
	if err != nil {
		return nil, nil, err
	}
	c.rec.EntryB = entryB
	uA, err := fa.SolveVecFrom(matrix.Ones(c.nA), fit(ws.UA, c.nA))
	if err != nil {
		return nil, nil, err
	}
	c.rec.UA = uA
	uB, err := fb.SolveVecFrom(matrix.Ones(c.nB), fit(ws.UB, c.nB))
	if err != nil {
		return nil, nil, err
	}
	c.rec.UB = uB
	outA := make([]float64, n)
	outB := make([]float64, n)
	rA, rB := vA, vB
	if outA[0], err = matrix.Dot(rA, uA); err != nil {
		return nil, nil, err
	}
	if outB[0], err = matrix.Dot(rB, uB); err != nil {
		return nil, nil, err
	}
	if n == 1 {
		return outA, outB, nil
	}
	// Pipeline prologue: the B recursion's first half-step (its fb solve)
	// runs once on its own; from then on every fb solve of the B
	// recursion rides in the same batch as the A recursion's.
	sB, err := fb.SolveVecLeftFrom(rB, fit(ws.SojournPrologue, c.nB))
	if err != nil {
		return nil, nil, err
	}
	c.rec.SojournPrologue = sB
	pB, err := c.mba.VecMul(sB)
	if err != nil {
		return nil, nil, err
	}
	c.rec.StepsA = make([][][]float64, 0, n-1)
	c.rec.StepsB = make([][][]float64, 0, n-1)
	for i := 1; i < n; i++ {
		// One batched solve against I−M_A: rA's step and the B
		// recursion's second half-step.
		xs, err := fa.SolveMatLeftFrom([][]float64{rA, pB}, fitBatch(ws.StepsA, i, 2, c.nA))
		if err != nil {
			return nil, nil, err
		}
		c.rec.StepsA = append(c.rec.StepsA, xs)
		qA, err := c.mab.VecMul(xs[0])
		if err != nil {
			return nil, nil, err
		}
		if rB, err = c.mab.VecMul(xs[1]); err != nil {
			return nil, nil, err
		}
		if outB[i], err = matrix.Dot(rB, uB); err != nil {
			return nil, nil, err
		}
		// One batched solve against I−M_B: the A step's second half,
		// prefetching the B recursion's next first half alongside.
		rhs := [][]float64{qA}
		if i+1 < n {
			rhs = append(rhs, rB)
		}
		ys, err := fb.SolveMatLeftFrom(rhs, fitBatch(ws.StepsB, i, len(rhs), c.nB))
		if err != nil {
			return nil, nil, err
		}
		c.rec.StepsB = append(c.rec.StepsB, ys)
		if rA, err = c.mba.VecMul(ys[0]); err != nil {
			return nil, nil, err
		}
		if outA[i], err = matrix.Dot(rA, uA); err != nil {
			return nil, nil, err
		}
		if i+1 < n {
			if pB, err = c.mba.VecMul(ys[1]); err != nil {
				return nil, nil, err
			}
		}
	}
	return outA, outB, nil
}

// AbsorptionProbabilities returns, for every absorbing class, the
// probability that the chain is eventually absorbed there (relation (9)):
// p(U) = α_T (I − T)⁻¹ R_U 1, reusing the shared visits vector.
func (c *Chain) AbsorptionProbabilities() (map[string]float64, error) {
	if c.nA+c.nB == 0 {
		return nil, fmt.Errorf("markov: no transient states")
	}
	y, err := c.visits()
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(c.absorbing))
	for _, name := range c.classes {
		// R_U 1 is the per-transient-row mass flowing into class U.
		p, err := matrix.Dot(y, c.absorbing[name].RowSums())
		if err != nil {
			return nil, err
		}
		out[name] = p
	}
	return out, nil
}

// HitProbabilityA returns the probability that the chain ever visits
// subset A before absorption (counting a start inside A): the total mass
// of the entry vector v of relation (5).
func (c *Chain) HitProbabilityA() (float64, error) {
	if c.nA == 0 {
		return 0, nil
	}
	var fb matrix.Factorization
	if c.nB > 0 {
		var err error
		if fb, err = c.factB(); err != nil {
			return 0, err
		}
	}
	v, _, err := entryVector(c.alphaA, c.alphaB, fb, c.mba, nil)
	if err != nil {
		return 0, err
	}
	return matrix.VecSum(v), nil
}

// HitProbabilityB is the subset-B counterpart of HitProbabilityA.
func (c *Chain) HitProbabilityB() (float64, error) {
	if c.nB == 0 {
		return 0, nil
	}
	var fa matrix.Factorization
	if c.nA > 0 {
		var err error
		if fa, err = c.factA(); err != nil {
			return 0, err
		}
	}
	w, _, err := entryVector(c.alphaB, c.alphaA, fa, c.mab, nil)
	if err != nil {
		return 0, err
	}
	return matrix.VecSum(w), nil
}

// AbsorbedWithinA returns the probability that the chain reaches one of
// the named absorbing classes along a path that never leaves subset A:
// α_A (I − M_A)⁻¹ R^A 1, with R^A the rows of the class blocks
// corresponding to subset A. Initial mass on subset B contributes
// nothing. Together with HitProbabilityB this separates "dies clean"
// from "was ever dirty": P(ever in B ∪ other classes) = 1 − AbsorbedWithinA(safe classes).
func (c *Chain) AbsorbedWithinA(classes ...string) (float64, error) {
	if c.nA == 0 {
		return 0, nil
	}
	rhs := make([]float64, c.nA)
	for _, name := range classes {
		blk, ok := c.absorbing[name]
		if !ok {
			return 0, fmt.Errorf("markov: unknown absorbing class %q", name)
		}
		for i, s := range blk.RowSums()[:c.nA] {
			rhs[i] += s
		}
	}
	fa, err := c.factA()
	if err != nil {
		return 0, err
	}
	var seed []float64
	if c.ws != nil {
		seed = fit(c.ws.Clean, c.nA)
	}
	z, err := fa.SolveVecFrom(rhs, seed)
	if err != nil {
		return 0, fmt.Errorf("markov: solving (I−M_A)⁻¹: %w", err)
	}
	c.rec.Clean = z
	return matrix.Dot(c.alphaA, z)
}

// ExpectedTotalTransientTime returns E(T_A) + E(T_B): the expected number
// of transitions before absorption.
func (c *Chain) ExpectedTotalTransientTime() (float64, error) {
	a, err := c.ExpectedTotalTimeInA()
	if err != nil {
		return 0, err
	}
	b, err := c.ExpectedTotalTimeInB()
	if err != nil {
		return 0, err
	}
	return a + b, nil
}

// Classes returns the absorbing class names in their fixed order.
func (c *Chain) Classes() []string {
	return append([]string(nil), c.classes...)
}

// TransientSizes returns (|A|, |B|).
func (c *Chain) TransientSizes() (int, int) { return c.nA, c.nB }
