package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"targetedattacks/internal/matrix"
)

// twoStateChain is a hand-solvable chain: transient a (subset A) and b
// (subset B), absorbing classes one = {2}, two = {3}.
//
//	a → a 0.2, b 0.3, one 0.5
//	b → a 0.4, b 0.1, two 0.5
//
// With the fundamental matrix N = (I−T)⁻¹ = [[1.5, 0.5], [2/3, 4/3]]:
// starting at a, E(T_A) = 1.5, E(T_B) = 0.5, p(one) = 0.75, p(two) = 0.25,
// E(T_{A,1}) = 1.25, E(T_{A,n+1}) = E(T_{A,n})/6,
// E(T_{B,1}) = 0.375/0.9, same ratio 1/6.
func twoStateChain(t *testing.T) *Chain {
	t.Helper()
	b := matrix.NewSparseBuilder(4, 4)
	add := func(i, j int, v float64) {
		t.Helper()
		if err := b.Add(i, j, v); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 0, 0.2)
	add(0, 1, 0.3)
	add(0, 2, 0.5)
	add(1, 0, 0.4)
	add(1, 1, 0.1)
	add(1, 3, 0.5)
	add(2, 2, 1)
	add(3, 3, 1)
	c, err := NewChain(Spec{
		Full:             b.Build(),
		Alpha:            []float64{1, 0, 0, 0},
		SubsetA:          []int{0},
		SubsetB:          []int{1},
		AbsorbingClasses: map[string][]int{"one": {2}, "two": {3}},
		ClassOrder:       []string{"one", "two"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTwoStateExpectedTimes(t *testing.T) {
	c := twoStateChain(t)
	ea, err := c.ExpectedTotalTimeInA()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ea-1.5) > 1e-12 {
		t.Errorf("E(T_A) = %v, want 1.5", ea)
	}
	eb, err := c.ExpectedTotalTimeInB()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eb-0.5) > 1e-12 {
		t.Errorf("E(T_B) = %v, want 0.5", eb)
	}
	tot, err := c.ExpectedTotalTransientTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tot-2.0) > 1e-12 {
		t.Errorf("E(T) = %v, want 2", tot)
	}
}

func TestTwoStateAbsorption(t *testing.T) {
	c := twoStateChain(t)
	p, err := c.AbsorptionProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p["one"]-0.75) > 1e-12 {
		t.Errorf("p(one) = %v, want 0.75", p["one"])
	}
	if math.Abs(p["two"]-0.25) > 1e-12 {
		t.Errorf("p(two) = %v, want 0.25", p["two"])
	}
}

func TestTwoStateSuccessiveSojourns(t *testing.T) {
	c := twoStateChain(t)
	sa, err := c.SuccessiveSojournsInA(4)
	if err != nil {
		t.Fatal(err)
	}
	wantA := []float64{1.25, 1.25 / 6, 1.25 / 36, 1.25 / 216}
	for i := range wantA {
		if math.Abs(sa[i]-wantA[i]) > 1e-12 {
			t.Errorf("E(T_A,%d) = %v, want %v", i+1, sa[i], wantA[i])
		}
	}
	sb, err := c.SuccessiveSojournsInB(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sb[0]-0.375/0.9) > 1e-12 {
		t.Errorf("E(T_B,1) = %v, want %v", sb[0], 0.375/0.9)
	}
	if math.Abs(sb[1]-sb[0]/6) > 1e-12 {
		t.Errorf("E(T_B,2) = %v, want %v", sb[1], sb[0]/6)
	}
	// Geometric sum of the sojourn series must recover the total time.
	sumA := sa[0] / (1 - 1.0/6)
	ea, err := c.ExpectedTotalTimeInA()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sumA-ea) > 1e-10 {
		t.Errorf("Σ E(T_A,n) = %v, want E(T_A) = %v", sumA, ea)
	}
}

func TestSojournEdgeCases(t *testing.T) {
	c := twoStateChain(t)
	if _, err := c.SuccessiveSojournsInA(-1); err == nil {
		t.Error("negative n: want error")
	}
	z, err := c.SuccessiveSojournsInA(0)
	if err != nil || len(z) != 0 {
		t.Errorf("n=0: got %v, %v", z, err)
	}
}

// gamblersRuin builds the symmetric random walk on {0..n} with absorbing
// barriers; all interior states are subset A, subset B is empty.
func gamblersRuin(t *testing.T, n, start int) *Chain {
	t.Helper()
	b := matrix.NewSparseBuilder(n+1, n+1)
	for i := 1; i < n; i++ {
		if err := b.Add(i, i-1, 0.5); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(i, i+1, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	_ = b.Add(0, 0, 1)
	_ = b.Add(n, n, 1)
	alpha := make([]float64, n+1)
	alpha[start] = 1
	interior := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		interior = append(interior, i)
	}
	c, err := NewChain(Spec{
		Full:             b.Build(),
		Alpha:            alpha,
		SubsetA:          interior,
		SubsetB:          nil,
		AbsorbingClasses: map[string][]int{"ruin": {0}, "win": {n}},
		ClassOrder:       []string{"ruin", "win"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGamblersRuinKnownResults(t *testing.T) {
	// From start i on {0..n}: E(steps) = i(n−i), p(ruin) = 1 − i/n.
	for _, tt := range []struct{ n, start int }{{7, 3}, {7, 1}, {10, 5}, {4, 2}} {
		c := gamblersRuin(t, tt.n, tt.start)
		ea, err := c.ExpectedTotalTimeInA()
		if err != nil {
			t.Fatal(err)
		}
		want := float64(tt.start * (tt.n - tt.start))
		if math.Abs(ea-want) > 1e-9 {
			t.Errorf("n=%d start=%d: E(T) = %v, want %v", tt.n, tt.start, ea, want)
		}
		eb, err := c.ExpectedTotalTimeInB()
		if err != nil {
			t.Fatal(err)
		}
		if eb != 0 {
			t.Errorf("empty subset B: E(T_B) = %v, want 0", eb)
		}
		p, err := c.AbsorptionProbabilities()
		if err != nil {
			t.Fatal(err)
		}
		wantRuin := 1 - float64(tt.start)/float64(tt.n)
		if math.Abs(p["ruin"]-wantRuin) > 1e-9 {
			t.Errorf("n=%d start=%d: p(ruin) = %v, want %v", tt.n, tt.start, p["ruin"], wantRuin)
		}
		if math.Abs(p["ruin"]+p["win"]-1) > 1e-9 {
			t.Errorf("absorption probabilities sum to %v", p["ruin"]+p["win"])
		}
	}
}

func TestGamblersRuinSojournIsTotal(t *testing.T) {
	// With empty B there is a single sojourn in A: E(T_{A,1}) = E(T_A) and
	// all later sojourns are zero.
	c := gamblersRuin(t, 7, 3)
	s, err := c.SuccessiveSojournsInA(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]-12) > 1e-9 {
		t.Errorf("E(T_A,1) = %v, want 12", s[0])
	}
	if s[1] != 0 || s[2] != 0 {
		t.Errorf("later sojourns = %v, want zeros", s[1:])
	}
}

func TestSpecValidation(t *testing.T) {
	b := matrix.NewSparseBuilder(2, 2)
	_ = b.Add(0, 1, 1)
	_ = b.Add(1, 1, 1)
	full := b.Build()
	base := Spec{
		Full:             full,
		Alpha:            []float64{1, 0},
		SubsetA:          []int{0},
		AbsorbingClasses: map[string][]int{"end": {1}},
		ClassOrder:       []string{"end"},
	}

	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"nil full", func(s *Spec) { s.Full = nil }},
		{"alpha length", func(s *Spec) { s.Alpha = []float64{1} }},
		{"bad index", func(s *Spec) { s.SubsetA = []int{5} }},
		{"negative index", func(s *Spec) { s.SubsetA = []int{-1} }},
		{"overlap", func(s *Spec) { s.SubsetB = []int{0} }},
		{"unknown class", func(s *Spec) { s.ClassOrder = []string{"nope"} }},
		{"class count", func(s *Spec) { s.ClassOrder = nil }},
		{
			"state in two classes",
			func(s *Spec) {
				s.AbsorbingClasses = map[string][]int{"end": {1}, "dup": {1}}
				s.ClassOrder = []string{"end", "dup"}
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := base
			tt.mutate(&spec)
			if _, err := NewChain(spec); err == nil {
				t.Error("want error, got nil")
			}
		})
	}

	if _, err := NewChain(base); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestNonSquareRejected(t *testing.T) {
	b := matrix.NewSparseBuilder(2, 3)
	if _, err := NewChain(Spec{Full: b.Build(), Alpha: []float64{1, 0}}); err == nil {
		t.Error("non-square matrix: want error")
	}
}

// TestRandomChainInvariants builds random absorbing chains and checks the
// structural invariants: absorption probabilities form a distribution, all
// expected times are non-negative, and the sojourn series sums toward the
// total time.
func TestRandomChainInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nA := 1 + r.Intn(4)
		nB := r.Intn(4)
		nT := nA + nB
		n := nT + 2 // two absorbing states
		b := matrix.NewSparseBuilder(n, n)
		for i := 0; i < nT; i++ {
			// Random transition row with at least 0.05 leak to absorbing.
			weights := make([]float64, n)
			var sum float64
			for j := 0; j < n; j++ {
				weights[j] = r.Float64()
				sum += weights[j]
			}
			leak := 0.05 + 0.2*r.Float64()
			for j := 0; j < nT; j++ {
				if err := b.Add(i, j, (1-leak)*weights[j]/sum); err != nil {
					return false
				}
			}
			// Remaining mass (leak plus unassigned weight share) to absorbing.
			var assigned float64
			for j := 0; j < nT; j++ {
				assigned += (1 - leak) * weights[j] / sum
			}
			rest := 1 - assigned
			if err := b.Add(i, nT, rest/2); err != nil {
				return false
			}
			if err := b.Add(i, nT+1, rest/2); err != nil {
				return false
			}
		}
		_ = b.Add(nT, nT, 1)
		_ = b.Add(nT+1, nT+1, 1)
		alpha := make([]float64, n)
		alpha[r.Intn(nT)] = 1
		subsetA := make([]int, nA)
		for i := range subsetA {
			subsetA[i] = i
		}
		subsetB := make([]int, nB)
		for i := range subsetB {
			subsetB[i] = nA + i
		}
		c, err := NewChain(Spec{
			Full:             b.Build(),
			Alpha:            alpha,
			SubsetA:          subsetA,
			SubsetB:          subsetB,
			AbsorbingClasses: map[string][]int{"u": {nT}, "v": {nT + 1}},
			ClassOrder:       []string{"u", "v"},
		})
		if err != nil {
			return false
		}
		p, err := c.AbsorptionProbabilities()
		if err != nil {
			return false
		}
		if math.Abs(p["u"]+p["v"]-1) > 1e-8 {
			return false
		}
		ea, err := c.ExpectedTotalTimeInA()
		if err != nil || ea < -1e-12 {
			return false
		}
		eb, err := c.ExpectedTotalTimeInB()
		if err != nil || eb < -1e-12 {
			return false
		}
		// Sojourn series partial sums stay below the totals.
		sa, err := c.SuccessiveSojournsInA(64)
		if err != nil {
			return false
		}
		var sum float64
		for _, s := range sa {
			if s < -1e-12 {
				return false
			}
			sum += s
		}
		return sum <= ea+1e-6 && ea-sum < 1e-3*(1+ea)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHitProbabilities(t *testing.T) {
	c := twoStateChain(t)
	// Start in A: A is hit with probability 1.
	pa, err := c.HitProbabilityA()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa-1) > 1e-12 {
		t.Errorf("P(hit A) = %v, want 1 (start in A)", pa)
	}
	// B is hit iff the chain moves a→b before absorbing; from a the
	// chance per step is 0.3 vs 0.5 absorption and 0.2 self-loop:
	// p = 0.3/(1−0.2) = 0.375.
	pb, err := c.HitProbabilityB()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pb-0.375) > 1e-12 {
		t.Errorf("P(hit B) = %v, want 0.375", pb)
	}
}

func TestHitProbabilityEmptySubset(t *testing.T) {
	c := gamblersRuin(t, 5, 2)
	pb, err := c.HitProbabilityB()
	if err != nil || pb != 0 {
		t.Errorf("P(hit ∅) = %v err %v, want 0", pb, err)
	}
	pa, err := c.HitProbabilityA()
	if err != nil || math.Abs(pa-1) > 1e-12 {
		t.Errorf("P(hit A) = %v err %v, want 1", pa, err)
	}
}

func TestClassesAndSizes(t *testing.T) {
	c := twoStateChain(t)
	cls := c.Classes()
	if len(cls) != 2 || cls[0] != "one" || cls[1] != "two" {
		t.Errorf("Classes = %v", cls)
	}
	a, b := c.TransientSizes()
	if a != 1 || b != 1 {
		t.Errorf("TransientSizes = %d,%d", a, b)
	}
}

// TestChainAcrossSolverBackends re-runs the hand-solvable chains through
// every solver backend: the sparse iterative paths must reproduce the
// dense LU results on all relations.
func TestChainAcrossSolverBackends(t *testing.T) {
	solvers := []matrix.Solver{
		matrix.DenseSolver{},
		matrix.GaussSeidelSolver{},
		matrix.BiCGSTABSolver{},
		matrix.AutoSolver{},
	}
	for _, s := range solvers {
		t.Run(s.Name(), func(t *testing.T) {
			b := matrix.NewSparseBuilder(4, 4)
			for _, e := range []struct {
				i, j int
				v    float64
			}{
				{0, 0, 0.2}, {0, 1, 0.3}, {0, 2, 0.5},
				{1, 0, 0.4}, {1, 1, 0.1}, {1, 3, 0.5},
				{2, 2, 1}, {3, 3, 1},
			} {
				if err := b.Add(e.i, e.j, e.v); err != nil {
					t.Fatal(err)
				}
			}
			c, err := NewChain(Spec{
				Full:             b.Build(),
				Alpha:            []float64{1, 0, 0, 0},
				SubsetA:          []int{0},
				SubsetB:          []int{1},
				AbsorbingClasses: map[string][]int{"one": {2}, "two": {3}},
				ClassOrder:       []string{"one", "two"},
				Solver:           s,
			})
			if err != nil {
				t.Fatal(err)
			}
			if c.SolverName() != s.Name() {
				t.Errorf("SolverName = %q, want %q", c.SolverName(), s.Name())
			}
			checks := []struct {
				name string
				got  func() (float64, error)
				want float64
			}{
				{"E(T_A)", c.ExpectedTotalTimeInA, 1.5},
				{"E(T_B)", c.ExpectedTotalTimeInB, 0.5},
				{"P(hit A)", c.HitProbabilityA, 1},
				{"P(hit B)", c.HitProbabilityB, 0.375},
			}
			for _, chk := range checks {
				v, err := chk.got()
				if err != nil {
					t.Fatalf("%s: %v", chk.name, err)
				}
				if math.Abs(v-chk.want) > 1e-9 {
					t.Errorf("%s = %v, want %v", chk.name, v, chk.want)
				}
			}
			p, err := c.AbsorptionProbabilities()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p["one"]-0.75) > 1e-9 || math.Abs(p["two"]-0.25) > 1e-9 {
				t.Errorf("absorption = %v, want one=0.75 two=0.25", p)
			}
			sa, err := c.SuccessiveSojournsInA(3)
			if err != nil {
				t.Fatal(err)
			}
			wantA := []float64{1.25, 1.25 / 6, 1.25 / 36}
			for i := range wantA {
				if math.Abs(sa[i]-wantA[i]) > 1e-9 {
					t.Errorf("E(T_A,%d) = %v, want %v", i+1, sa[i], wantA[i])
				}
			}
		})
	}
}

// TestDefaultSolverIsDense pins the compatibility contract: a Spec without
// a Solver uses the exact dense LU backend.
func TestDefaultSolverIsDense(t *testing.T) {
	c := twoStateChain(t)
	if c.SolverName() != "dense" {
		t.Errorf("default solver = %q, want dense", c.SolverName())
	}
}

// TestSuccessiveSojournsBothMatchesSingle pins the lockstep batching of
// the A and B sojourn recursions: SuccessiveSojournsBoth runs the exact
// per-vector arithmetic of the two single-subset recursions through
// batched SolveMatLeft calls, so its outputs must be bit-identical to
// SuccessiveSojournsInA / SuccessiveSojournsInB — on the analytic
// two-state chain, on random chains, and across solver backends.
func TestSuccessiveSojournsBothMatchesSingle(t *testing.T) {
	solvers := []matrix.Solver{nil, matrix.GaussSeidelSolver{}, matrix.BiCGSTABSolver{}}
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		nA := 1 + r.Intn(4)
		nB := 1 + r.Intn(4)
		nT := nA + nB
		n := nT + 1
		b := matrix.NewSparseBuilder(n, n)
		for i := 0; i < nT; i++ {
			weights := make([]float64, nT)
			var sum float64
			for j := range weights {
				weights[j] = r.Float64()
				sum += weights[j]
			}
			leak := 0.05 + 0.2*r.Float64()
			for j := 0; j < nT; j++ {
				if err := b.Add(i, j, (1-leak)*weights[j]/sum); err != nil {
					t.Fatal(err)
				}
			}
			if err := b.Add(i, nT, leak); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Add(nT, nT, 1); err != nil {
			t.Fatal(err)
		}
		alpha := make([]float64, n)
		alpha[r.Intn(nT)] = 1
		subsetA := make([]int, nA)
		for i := range subsetA {
			subsetA[i] = i
		}
		subsetB := make([]int, nB)
		for i := range subsetB {
			subsetB[i] = nA + i
		}
		full := b.Build()
		for _, solver := range solvers {
			spec := Spec{
				Full:             full,
				Alpha:            alpha,
				SubsetA:          subsetA,
				SubsetB:          subsetB,
				AbsorbingClasses: map[string][]int{"end": {nT}},
				ClassOrder:       []string{"end"},
				Solver:           solver,
			}
			c, err := NewChain(spec)
			if err != nil {
				t.Fatal(err)
			}
			const terms = 7
			bothA, bothB, err := c.SuccessiveSojournsBoth(terms)
			if err != nil {
				t.Fatal(err)
			}
			sa, err := c.SuccessiveSojournsInA(terms)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := c.SuccessiveSojournsInB(terms)
			if err != nil {
				t.Fatal(err)
			}
			name := "dense"
			if solver != nil {
				name = solver.Name()
			}
			for i := 0; i < terms; i++ {
				if bothA[i] != sa[i] || bothB[i] != sb[i] {
					t.Errorf("trial %d %s term %d: Both = (%v, %v), single = (%v, %v)",
						trial, name, i, bothA[i], bothB[i], sa[i], sb[i])
				}
			}
		}
	}
	// Degenerate inputs mirror the single-subset semantics.
	c := twoStateChain(t)
	if _, _, err := c.SuccessiveSojournsBoth(-1); err == nil {
		t.Error("negative count: want error")
	}
	za, zb, err := c.SuccessiveSojournsBoth(0)
	if err != nil || len(za) != 0 || len(zb) != 0 {
		t.Errorf("zero count: got (%v, %v, %v)", za, zb, err)
	}
}
