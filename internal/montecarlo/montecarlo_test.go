package montecarlo

import (
	"math"
	"testing"

	"targetedattacks/internal/core"
)

func newModel(t *testing.T, p core.Params) *core.Model {
	t.Helper()
	m, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Error("nil model: want error")
	}
	m := newModel(t, core.DefaultParams())
	if _, err := New(m, 1); err != nil {
		t.Error(err)
	}
}

func TestRunValidation(t *testing.T) {
	m := newModel(t, core.DefaultParams())
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(core.State{S: 99, X: 0, Y: 0}, 100); err == nil {
		t.Error("state outside Ω: want error")
	}
	if _, err := s.Run(core.State{S: 3, X: 0, Y: 0}, 0); err == nil {
		t.Error("maxSteps=0: want error")
	}
}

func TestRunReachesAbsorption(t *testing.T) {
	m := newModel(t, core.Params{C: 7, Delta: 7, Mu: 0.1, D: 0.5, K: 1, Nu: 0.1})
	s, err := New(m, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(core.State{S: 3, X: 0, Y: 0}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Truncated {
		t.Fatal("trajectory truncated despite huge budget")
	}
	if tr.Absorbed == "" {
		t.Error("no absorbing class recorded")
	}
	if tr.StepsSafe <= 0 {
		t.Error("no safe steps recorded from a safe start")
	}
}

func TestTruncation(t *testing.T) {
	// With d extremely close to 1 and µ large, pollution lasts ~forever;
	// a tiny budget must truncate.
	m := newModel(t, core.Params{C: 7, Delta: 7, Mu: 0.3, D: 0.999, K: 1, Nu: 0.1})
	s, err := New(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(core.State{S: 3, X: 7, Y: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Truncated {
		t.Error("expected truncation with 5-step budget")
	}
	if tr.Absorbed != "" {
		t.Error("truncated run must not record absorption")
	}
}

func TestRunManyValidation(t *testing.T) {
	m := newModel(t, core.DefaultParams())
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunMany([]float64{1}, 10, 100); err == nil {
		t.Error("short alpha: want error")
	}
	if _, err := s.RunMany(m.InitialDelta(), 0, 100); err == nil {
		t.Error("runs=0: want error")
	}
}

// TestCrossValidationFailureFree: µ=0 must give exactly the random-walk
// absorption time 12 in expectation and 4/7 merge probability.
func TestCrossValidationFailureFree(t *testing.T) {
	m := newModel(t, core.Params{C: 7, Delta: 7, Mu: 0, D: 0.5, K: 1, Nu: 0.1})
	s, err := New(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.RunMany(m.InitialDelta(), 20000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Truncated != 0 {
		t.Fatalf("%d truncated runs", sum.Truncated)
	}
	if got := sum.SafeTime.Mean(); math.Abs(got-12) > 4*sum.SafeTime.StdErr()+0.2 {
		t.Errorf("MC E(T_S) = %v, want 12", got)
	}
	if got := sum.Absorption.Frequency(core.ClassNameSafeMerge); math.Abs(got-4.0/7.0) > 0.02 {
		t.Errorf("MC p(safe-merge) = %v, want 4/7", got)
	}
	if sum.Absorption.Count(core.ClassNamePollutedMerge) != 0 {
		t.Error("polluted absorption at µ=0")
	}
}

// TestCrossValidationAgainstClosedForm compares simulation with the exact
// analytic results at a moderate parameter point.
func TestCrossValidationAgainstClosedForm(t *testing.T) {
	p := core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1}
	m := newModel(t, p)
	exact, err := m.AnalyzeNamed(core.DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.RunMany(m.InitialDelta(), 30000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Truncated != 0 {
		t.Fatalf("%d truncated runs", sum.Truncated)
	}
	checks := []struct {
		name        string
		got, exact  float64
		absSlack    float64
		statStdErrs float64
	}{
		{"E(T_S)", sum.SafeTime.Mean(), exact.ExpectedSafeTime, 0.15, 4},
		{"E(T_P)", sum.PollutedTime.Mean(), exact.ExpectedPollutedTime, 0.15, 4},
		{"p(safe-merge)", sum.Absorption.Frequency(core.ClassNameSafeMerge),
			exact.Absorption[core.ClassNameSafeMerge], 0.02, 0},
		{"p(safe-split)", sum.Absorption.Frequency(core.ClassNameSafeSplit),
			exact.Absorption[core.ClassNameSafeSplit], 0.02, 0},
		{"p(polluted-merge)", sum.Absorption.Frequency(core.ClassNamePollutedMerge),
			exact.Absorption[core.ClassNamePollutedMerge], 0.01, 0},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.exact) > c.absSlack {
			t.Errorf("%s: MC %v vs exact %v", c.name, c.got, c.exact)
		}
	}
	// First sojourns against relations (7), (8).
	if math.Abs(sum.FirstSafeSojourn.Mean()-exact.SafeSojourns[0]) > 0.2 {
		t.Errorf("E(T_S,1): MC %v vs exact %v", sum.FirstSafeSojourn.Mean(), exact.SafeSojourns[0])
	}
	if math.Abs(sum.FirstPollutedSojourn.Mean()-exact.PollutedSojourns[0]) > 0.1 {
		t.Errorf("E(T_P,1): MC %v vs exact %v", sum.FirstPollutedSojourn.Mean(), exact.PollutedSojourns[0])
	}
}

// TestCrossValidationProtocolC exercises the k=C maintenance kernel.
func TestCrossValidationProtocolC(t *testing.T) {
	p := core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 7, Nu: 0.1}
	m := newModel(t, p)
	exact, err := m.AnalyzeNamed(core.DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 17)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.RunMany(m.InitialDelta(), 20000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.SafeTime.Mean()-exact.ExpectedSafeTime) > 0.2 {
		t.Errorf("E(T_S): MC %v vs exact %v", sum.SafeTime.Mean(), exact.ExpectedSafeTime)
	}
	if math.Abs(sum.PollutedTime.Mean()-exact.ExpectedPollutedTime) > 0.3 {
		t.Errorf("E(T_P): MC %v vs exact %v", sum.PollutedTime.Mean(), exact.ExpectedPollutedTime)
	}
}

func TestDeterministicSeeds(t *testing.T) {
	m := newModel(t, core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1})
	run := func(seed int64) *Summary {
		s, err := New(m, seed)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := s.RunMany(m.InitialDelta(), 500, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(123), run(123)
	if a.SafeTime.Mean() != b.SafeTime.Mean() {
		t.Error("same seed must reproduce results")
	}
	c := run(124)
	if a.SafeTime.Mean() == c.SafeTime.Mean() && a.PollutedTime.Mean() == c.PollutedTime.Mean() {
		t.Error("different seeds produced identical trajectories (suspicious)")
	}
}

func TestSojournDecomposition(t *testing.T) {
	// Total steps must equal the sum of recorded sojourns per subset.
	m := newModel(t, core.Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: 1, Nu: 0.1})
	s, err := New(m, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tr, err := s.Run(core.State{S: 3, X: 0, Y: 0}, 100000)
		if err != nil {
			t.Fatal(err)
		}
		var safe, poll int
		for _, d := range tr.SojournsSafe {
			safe += d
		}
		for _, d := range tr.SojournsPolluted {
			poll += d
		}
		if safe != tr.StepsSafe || poll != tr.StepsPolluted {
			t.Fatalf("sojourn decomposition mismatch: %d/%d vs %d/%d",
				safe, poll, tr.StepsSafe, tr.StepsPolluted)
		}
	}
}
