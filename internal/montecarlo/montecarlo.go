// Package montecarlo simulates the cluster Markov chain of the DSN 2011
// targeted-attack model by direct sampling, providing an independent
// cross-validation of every closed-form quantity (expected safe/polluted
// times, successive sojourns, absorption probabilities) computed by
// internal/core and internal/markov.
package montecarlo

import (
	"fmt"
	"math/rand"

	"targetedattacks/internal/core"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/stats"
)

// Simulator samples trajectories of a cluster model.
type Simulator struct {
	model *core.Model
	rng   *rand.Rand
}

// New creates a simulator with a deterministic seed.
func New(model *core.Model, seed int64) (*Simulator, error) {
	if model == nil {
		return nil, fmt.Errorf("montecarlo: nil model")
	}
	return &Simulator{model: model, rng: rand.New(rand.NewSource(seed))}, nil
}

// Trajectory is the outcome of one simulated cluster lifetime.
type Trajectory struct {
	// StepsSafe and StepsPolluted count transitions spent in S and P.
	StepsSafe, StepsPolluted int
	// Absorbed names the absorbing class reached ("" if MaxSteps hit).
	Absorbed string
	// SojournsSafe[i] is the length of the (i+1)-th sojourn in S;
	// likewise for SojournsPolluted.
	SojournsSafe, SojournsPolluted []int
	// Truncated reports that the trajectory hit the step budget before
	// absorption.
	Truncated bool
}

// Run simulates one trajectory from the given state, stopping at
// absorption or after maxSteps transitions.
func (s *Simulator) Run(start core.State, maxSteps int) (*Trajectory, error) {
	sp := s.model.Space()
	idx, ok := sp.Index(start)
	if !ok {
		return nil, fmt.Errorf("montecarlo: start state %v outside Ω", start)
	}
	return s.run(idx, maxSteps)
}

func (s *Simulator) run(idx, maxSteps int) (*Trajectory, error) {
	if maxSteps < 1 {
		return nil, fmt.Errorf("montecarlo: maxSteps must be ≥ 1, got %d", maxSteps)
	}
	sp := s.model.Space()
	m := s.model.TransitionMatrix()
	tr := &Trajectory{}
	cur := idx
	var curSojourn int                    // length of the sojourn in progress
	var curClass core.Class = -1          // class of the sojourn in progress
	closeSojourn := func(cl core.Class) { // record a finished sojourn
		if curSojourn == 0 {
			return
		}
		switch cl {
		case core.ClassSafe:
			tr.SojournsSafe = append(tr.SojournsSafe, curSojourn)
		case core.ClassPolluted:
			tr.SojournsPolluted = append(tr.SojournsPolluted, curSojourn)
		}
		curSojourn = 0
	}
	for step := 0; step < maxSteps; step++ {
		cl := sp.Classify(sp.At(cur))
		if !cl.Transient() {
			closeSojourn(curClass)
			tr.Absorbed = cl.AbsorbingName()
			return tr, nil
		}
		if cl != curClass {
			closeSojourn(curClass)
			curClass = cl
		}
		next, err := sampleRow(s.rng, m, cur)
		if err != nil {
			return nil, err
		}
		switch cl {
		case core.ClassSafe:
			tr.StepsSafe++
		case core.ClassPolluted:
			tr.StepsPolluted++
		}
		curSojourn++
		cur = next
	}
	closeSojourn(curClass)
	tr.Truncated = true
	return tr, nil
}

// sampleRow draws the next state from row `row` of the transition matrix.
func sampleRow(rng *rand.Rand, m *matrix.CSR, row int) (int, error) {
	u := rng.Float64()
	var acc float64
	next := -1
	m.RowNonZeros(row, func(j int, v float64) {
		if next >= 0 {
			return
		}
		acc += v
		if u <= acc {
			next = j
		}
	})
	if next < 0 {
		// Numerical slack at the row-sum boundary: take the last positive
		// entry.
		m.RowNonZeros(row, func(j int, v float64) {
			if v > 0 {
				next = j
			}
		})
	}
	if next < 0 {
		return 0, fmt.Errorf("montecarlo: row %d has no outgoing transitions", row)
	}
	return next, nil
}

// Summary aggregates many trajectories.
type Summary struct {
	// Runs is the number of simulated trajectories.
	Runs int
	// Truncated counts trajectories that hit the step budget.
	Truncated int
	// SafeTime and PollutedTime estimate E(T_S) and E(T_P).
	SafeTime, PollutedTime stats.Running
	// FirstSafeSojourn and FirstPollutedSojourn estimate E(T_S,1) and
	// E(T_P,1); a trajectory with no sojourn contributes 0, matching the
	// convention of the closed forms.
	FirstSafeSojourn, FirstPollutedSojourn stats.Running
	// Absorption counts per absorbing class.
	Absorption *stats.Counter
}

// RunMany simulates runs trajectories with the initial state drawn from
// alpha (a distribution over Ω).
func (s *Simulator) RunMany(alpha []float64, runs, maxSteps int) (*Summary, error) {
	sp := s.model.Space()
	if len(alpha) != sp.Size() {
		return nil, fmt.Errorf("montecarlo: alpha has length %d, want |Ω| = %d", len(alpha), sp.Size())
	}
	if runs < 1 {
		return nil, fmt.Errorf("montecarlo: runs must be ≥ 1, got %d", runs)
	}
	sum := &Summary{Runs: runs, Absorption: stats.NewCounter()}
	for r := 0; r < runs; r++ {
		start, err := sampleDistribution(s.rng, alpha)
		if err != nil {
			return nil, err
		}
		tr, err := s.run(start, maxSteps)
		if err != nil {
			return nil, err
		}
		sum.SafeTime.Observe(float64(tr.StepsSafe))
		sum.PollutedTime.Observe(float64(tr.StepsPolluted))
		first := 0.0
		if len(tr.SojournsSafe) > 0 {
			first = float64(tr.SojournsSafe[0])
		}
		sum.FirstSafeSojourn.Observe(first)
		first = 0.0
		if len(tr.SojournsPolluted) > 0 {
			first = float64(tr.SojournsPolluted[0])
		}
		sum.FirstPollutedSojourn.Observe(first)
		if tr.Truncated {
			sum.Truncated++
		} else {
			sum.Absorption.Add(tr.Absorbed)
		}
	}
	return sum, nil
}

// sampleDistribution draws an index from a probability vector.
func sampleDistribution(rng *rand.Rand, dist []float64) (int, error) {
	u := rng.Float64()
	var acc float64
	for i, p := range dist {
		if p < 0 {
			return 0, fmt.Errorf("montecarlo: negative probability %v at %d", p, i)
		}
		acc += p
		if u <= acc {
			return i, nil
		}
	}
	// Tolerate rounding: fall back to the last state with positive mass.
	for i := len(dist) - 1; i >= 0; i-- {
		if dist[i] > 0 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("montecarlo: distribution sums to 0")
}
