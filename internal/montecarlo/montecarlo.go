// Package montecarlo simulates the cluster Markov chain of the DSN 2011
// targeted-attack model by direct sampling, providing an independent
// cross-validation of every closed-form quantity (expected safe/polluted
// times, successive sojourns, absorption probabilities) computed by
// internal/core and internal/markov.
//
// Randomness comes from math/rand/v2 PCG streams derived by the execution
// engine (internal/engine): the batch entry points RunBatch and
// RunManyBatch give every trajectory its own stream keyed by (root seed,
// trajectory index), so a batch is bit-identical whether it runs on one
// worker or many. The sequential Run method keeps a single advancing
// stream for callers that want one continuous trajectory source.
package montecarlo

import (
	"context"
	"fmt"
	"math/rand/v2"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/stats"
)

// batchChunk is the number of trajectories aggregated per engine task.
// Worker count and scheduling never affect results (each trajectory has
// its own stream and partial summaries merge in chunk order), but the
// chunk size itself is part of the numeric contract: changing it
// repartitions the floating-point merge tree and shifts Summary values
// in the low bits, so treat a change like the seeded-RNG migration — a
// deliberate, golden-test-updating event.
const batchChunk = 64

// Simulator samples trajectories of a cluster model. It is not safe for
// concurrent use — the batch entry points parallelize internally instead.
type Simulator struct {
	model *core.Model
	seed  uint64
	rng   *rand.Rand // advancing stream used by the sequential Run path
	drawn uint64     // trajectories consumed by earlier batch calls
}

// New creates a simulator with a deterministic root seed.
func New(model *core.Model, seed int64) (*Simulator, error) {
	if model == nil {
		return nil, fmt.Errorf("montecarlo: nil model")
	}
	return &Simulator{model: model, seed: uint64(seed), rng: engine.Stream(uint64(seed), 0)}, nil
}

// Trajectory is the outcome of one simulated cluster lifetime.
type Trajectory struct {
	// StepsSafe and StepsPolluted count transitions spent in S and P.
	StepsSafe, StepsPolluted int
	// Absorbed names the absorbing class reached ("" if MaxSteps hit).
	Absorbed string
	// SojournsSafe[i] is the length of the (i+1)-th sojourn in S;
	// likewise for SojournsPolluted.
	SojournsSafe, SojournsPolluted []int
	// Truncated reports that the trajectory hit the step budget before
	// absorption.
	Truncated bool
}

// Run simulates one trajectory from the given state, stopping at
// absorption or after maxSteps transitions. Successive calls advance the
// simulator's sequential random stream.
func (s *Simulator) Run(start core.State, maxSteps int) (*Trajectory, error) {
	sp := s.model.Space()
	idx, ok := sp.Index(start)
	if !ok {
		return nil, fmt.Errorf("montecarlo: start state %v outside Ω", start)
	}
	return s.sample(s.rng, idx, maxSteps)
}

// sample simulates one trajectory from state index idx using rng. It is
// the stateless sampling kernel shared by the sequential and batch paths.
func (s *Simulator) sample(rng *rand.Rand, idx, maxSteps int) (*Trajectory, error) {
	if maxSteps < 1 {
		return nil, fmt.Errorf("montecarlo: maxSteps must be ≥ 1, got %d", maxSteps)
	}
	sp := s.model.Space()
	m := s.model.TransitionMatrix()
	tr := &Trajectory{}
	cur := idx
	var curSojourn int                    // length of the sojourn in progress
	var curClass core.Class = -1          // class of the sojourn in progress
	closeSojourn := func(cl core.Class) { // record a finished sojourn
		if curSojourn == 0 {
			return
		}
		switch cl {
		case core.ClassSafe:
			tr.SojournsSafe = append(tr.SojournsSafe, curSojourn)
		case core.ClassPolluted:
			tr.SojournsPolluted = append(tr.SojournsPolluted, curSojourn)
		}
		curSojourn = 0
	}
	for step := 0; step < maxSteps; step++ {
		cl := sp.Classify(sp.At(cur))
		if !cl.Transient() {
			closeSojourn(curClass)
			tr.Absorbed = cl.AbsorbingName()
			return tr, nil
		}
		if cl != curClass {
			closeSojourn(curClass)
			curClass = cl
		}
		next, err := sampleRow(rng, m, cur)
		if err != nil {
			return nil, err
		}
		switch cl {
		case core.ClassSafe:
			tr.StepsSafe++
		case core.ClassPolluted:
			tr.StepsPolluted++
		}
		curSojourn++
		cur = next
	}
	closeSojourn(curClass)
	tr.Truncated = true
	return tr, nil
}

// sampleRow draws the next state from row `row` of the transition matrix.
func sampleRow(rng *rand.Rand, m *matrix.CSR, row int) (int, error) {
	u := rng.Float64()
	var acc float64
	next := -1
	m.RowNonZeros(row, func(j int, v float64) {
		if next >= 0 {
			return
		}
		acc += v
		if u <= acc {
			next = j
		}
	})
	if next < 0 {
		// Numerical slack at the row-sum boundary: take the last positive
		// entry.
		m.RowNonZeros(row, func(j int, v float64) {
			if v > 0 {
				next = j
			}
		})
	}
	if next < 0 {
		return 0, fmt.Errorf("montecarlo: row %d has no outgoing transitions", row)
	}
	return next, nil
}

// Summary aggregates many trajectories.
type Summary struct {
	// Runs is the number of simulated trajectories.
	Runs int
	// Truncated counts trajectories that hit the step budget.
	Truncated int
	// SafeTime and PollutedTime estimate E(T_S) and E(T_P).
	SafeTime, PollutedTime stats.Running
	// FirstSafeSojourn and FirstPollutedSojourn estimate E(T_S,1) and
	// E(T_P,1); a trajectory with no sojourn contributes 0, matching the
	// convention of the closed forms.
	FirstSafeSojourn, FirstPollutedSojourn stats.Running
	// Absorption counts per absorbing class.
	Absorption *stats.Counter
}

func newSummary() *Summary {
	return &Summary{Absorption: stats.NewCounter()}
}

// observe folds one trajectory into the summary.
func (sum *Summary) observe(tr *Trajectory) {
	sum.Runs++
	sum.SafeTime.Observe(float64(tr.StepsSafe))
	sum.PollutedTime.Observe(float64(tr.StepsPolluted))
	first := 0.0
	if len(tr.SojournsSafe) > 0 {
		first = float64(tr.SojournsSafe[0])
	}
	sum.FirstSafeSojourn.Observe(first)
	first = 0.0
	if len(tr.SojournsPolluted) > 0 {
		first = float64(tr.SojournsPolluted[0])
	}
	sum.FirstPollutedSojourn.Observe(first)
	if tr.Truncated {
		sum.Truncated++
	} else {
		sum.Absorption.Add(tr.Absorbed)
	}
}

// merge folds another summary into sum. Merging partials in a fixed order
// keeps batch results independent of the pool width.
func (sum *Summary) merge(o *Summary) {
	sum.Runs += o.Runs
	sum.Truncated += o.Truncated
	sum.SafeTime.Merge(o.SafeTime)
	sum.PollutedTime.Merge(o.PollutedTime)
	sum.FirstSafeSojourn.Merge(o.FirstSafeSojourn)
	sum.FirstPollutedSojourn.Merge(o.FirstPollutedSojourn)
	sum.Absorption.Merge(o.Absorption)
}

// RunMany simulates runs trajectories with the initial state drawn from
// alpha (a distribution over Ω). It is the serial form of RunManyBatch:
// the same root seed and call sequence produce the identical Summary
// through either entry point, on any number of workers, and repeated
// calls accumulate independent samples.
func (s *Simulator) RunMany(alpha []float64, runs, maxSteps int) (*Summary, error) {
	return s.RunManyBatch(context.Background(), nil, alpha, runs, maxSteps)
}

// RunManyBatch simulates runs trajectories with initial states drawn from
// alpha, fanning fixed-size chunks of trajectories across the pool (nil
// pool means serial). Trajectory r of a call draws all its randomness —
// including its initial state — from the stream (seed, drawn+r+1), where
// drawn counts the trajectories consumed by earlier batch calls: the
// Summary is bit-identical for every pool width, successive calls on one
// Simulator yield independent samples, and a fresh Simulator with the
// same seed reproduces the whole call sequence.
func (s *Simulator) RunManyBatch(ctx context.Context, pool *engine.Pool, alpha []float64, runs, maxSteps int) (*Summary, error) {
	sp := s.model.Space()
	if len(alpha) != sp.Size() {
		return nil, fmt.Errorf("montecarlo: alpha has length %d, want |Ω| = %d", len(alpha), sp.Size())
	}
	if runs < 1 {
		return nil, fmt.Errorf("montecarlo: runs must be ≥ 1, got %d", runs)
	}
	return s.batch(ctx, pool, runs, maxSteps, func(rng *rand.Rand) (int, error) {
		return sampleDistribution(rng, alpha)
	})
}

// RunBatch simulates n trajectories from the fixed start state, fanning
// them across the pool (nil pool means serial) and merging the per-chunk
// summaries. It shares RunManyBatch's determinism contract: independent
// of pool width, advancing across calls, reproducible from the seed.
func (s *Simulator) RunBatch(ctx context.Context, pool *engine.Pool, start core.State, n, maxSteps int) (*Summary, error) {
	sp := s.model.Space()
	idx, ok := sp.Index(start)
	if !ok {
		return nil, fmt.Errorf("montecarlo: start state %v outside Ω", start)
	}
	if n < 1 {
		return nil, fmt.Errorf("montecarlo: runs must be ≥ 1, got %d", n)
	}
	return s.batch(ctx, pool, n, maxSteps, func(*rand.Rand) (int, error) {
		return idx, nil
	})
}

// batch fans runs trajectories across the pool in chunks, drawing each
// trajectory's start index via startIdx from the trajectory's own stream.
func (s *Simulator) batch(ctx context.Context, pool *engine.Pool, runs, maxSteps int, startIdx func(rng *rand.Rand) (int, error)) (*Summary, error) {
	if maxSteps < 1 {
		return nil, fmt.Errorf("montecarlo: maxSteps must be ≥ 1, got %d", maxSteps)
	}
	base := s.drawn
	s.drawn += uint64(runs)
	chunks := (runs + batchChunk - 1) / batchChunk
	partials := make([]*Summary, chunks)
	err := engine.Ensure(pool).Run(ctx, chunks, func(ci int) error {
		lo := ci * batchChunk
		hi := lo + batchChunk
		if hi > runs {
			hi = runs
		}
		part := newSummary()
		for r := lo; r < hi; r++ {
			rng := engine.Stream(s.seed, base+uint64(r)+1)
			idx, err := startIdx(rng)
			if err != nil {
				return err
			}
			tr, err := s.sample(rng, idx, maxSteps)
			if err != nil {
				return err
			}
			part.observe(tr)
		}
		partials[ci] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	sum := newSummary()
	for _, part := range partials {
		sum.merge(part)
	}
	return sum, nil
}

// sampleDistribution draws an index from a probability vector.
func sampleDistribution(rng *rand.Rand, dist []float64) (int, error) {
	u := rng.Float64()
	var acc float64
	for i, p := range dist {
		if p < 0 {
			return 0, fmt.Errorf("montecarlo: negative probability %v at %d", p, i)
		}
		acc += p
		if u <= acc {
			return i, nil
		}
	}
	// Tolerate rounding: fall back to the last state with positive mass.
	for i := len(dist) - 1; i >= 0; i-- {
		if dist[i] > 0 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("montecarlo: distribution sums to 0")
}
