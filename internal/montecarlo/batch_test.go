package montecarlo

import (
	"context"
	"math"
	"testing"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
)

// TestGoldenSeed pins the exact output of the fixed-seed sequential run.
//
// These values were regenerated intentionally when the package migrated
// from math/rand (Go 1 LCG source) to math/rand/v2 PCG streams derived by
// internal/engine: the old per-Simulator shared generator was replaced by
// one independent stream per trajectory, so every seeded expectation
// changed exactly once, here. Any future unintentional change to the
// stream derivation or the sampling kernel must trip this test.
func TestGoldenSeed(t *testing.T) {
	m, err := core.New(core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.RunMany(m.InitialDelta(), 200, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 200 || sum.Truncated != 0 {
		t.Fatalf("Runs=%d Truncated=%d, want 200/0", sum.Runs, sum.Truncated)
	}
	if got := sum.SafeTime.Mean(); got != 13.575 {
		t.Errorf("golden SafeTime mean = %v, want 13.575", got)
	}
	if got := sum.PollutedTime.Mean(); math.Abs(got-0.63) > 1e-12 {
		t.Errorf("golden PollutedTime mean = %v, want 0.63", got)
	}
	counts := map[string]int{
		core.ClassNameSafeMerge:     88,
		core.ClassNameSafeSplit:     100,
		core.ClassNamePollutedMerge: 12,
	}
	for class, want := range counts {
		if got := sum.Absorption.Count(class); got != want {
			t.Errorf("golden absorption %s = %d, want %d", class, got, want)
		}
	}
}

// TestBatchDeterministicAcrossWorkers is the engine-determinism
// acceptance test: the same root seed must produce bit-identical
// summaries with 1 and 8 workers, and through the serial RunMany wrapper.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	m, err := core.New(core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Summary {
		s, err := New(m, 7)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := s.RunManyBatch(context.Background(), engine.New(workers), m.InitialDelta(), 1000, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(1), run(8)
	assertIdenticalSummaries(t, a, b)

	s, err := New(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := s.RunMany(m.InitialDelta(), 1000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalSummaries(t, a, serial)
}

func assertIdenticalSummaries(t *testing.T, a, b *Summary) {
	t.Helper()
	if a.Runs != b.Runs || a.Truncated != b.Truncated {
		t.Fatalf("Runs/Truncated differ: %d/%d vs %d/%d", a.Runs, a.Truncated, b.Runs, b.Truncated)
	}
	pairs := []struct {
		name string
		x, y float64
	}{
		{"SafeTime mean", a.SafeTime.Mean(), b.SafeTime.Mean()},
		{"SafeTime variance", a.SafeTime.Variance(), b.SafeTime.Variance()},
		{"PollutedTime mean", a.PollutedTime.Mean(), b.PollutedTime.Mean()},
		{"PollutedTime variance", a.PollutedTime.Variance(), b.PollutedTime.Variance()},
		{"FirstSafeSojourn mean", a.FirstSafeSojourn.Mean(), b.FirstSafeSojourn.Mean()},
		{"FirstPollutedSojourn mean", a.FirstPollutedSojourn.Mean(), b.FirstPollutedSojourn.Mean()},
	}
	for _, p := range pairs {
		if p.x != p.y {
			t.Errorf("%s differs: %v vs %v", p.name, p.x, p.y)
		}
	}
	for _, label := range a.Absorption.Labels() {
		if a.Absorption.Count(label) != b.Absorption.Count(label) {
			t.Errorf("absorption %q differs: %d vs %d",
				label, a.Absorption.Count(label), b.Absorption.Count(label))
		}
	}
	if a.Absorption.Total() != b.Absorption.Total() {
		t.Errorf("absorption totals differ: %d vs %d", a.Absorption.Total(), b.Absorption.Total())
	}
}

func TestRunBatchFixedStart(t *testing.T) {
	m, err := core.New(core.Params{C: 7, Delta: 7, Mu: 0.1, D: 0.5, K: 1, Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	start := core.State{S: 3, X: 0, Y: 0}
	sum, err := s.RunBatch(context.Background(), engine.New(4), start, 500, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 500 || sum.Truncated != 0 {
		t.Fatalf("Runs=%d Truncated=%d", sum.Runs, sum.Truncated)
	}
	if sum.SafeTime.Mean() <= 0 {
		t.Error("no safe time recorded from a safe start")
	}
	// Determinism across widths holds for the fixed-start batch too.
	s2, err := New(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s2.RunBatch(context.Background(), engine.New(1), start, 500, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalSummaries(t, sum, again)
}

// TestRepeatedBatchCallsAreIndependent guards the advancing-offset
// semantics: successive batch calls on one Simulator must draw fresh
// trajectories (not replay the first batch), while a fresh Simulator
// with the same seed reproduces the whole call sequence.
func TestRepeatedBatchCallsAreIndependent(t *testing.T) {
	m, err := core.New(core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pair := func() (*Summary, *Summary) {
		s, err := New(m, 21)
		if err != nil {
			t.Fatal(err)
		}
		first, err := s.RunMany(m.InitialDelta(), 300, 100000)
		if err != nil {
			t.Fatal(err)
		}
		second, err := s.RunMany(m.InitialDelta(), 300, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return first, second
	}
	first, second := pair()
	if first.SafeTime.Mean() == second.SafeTime.Mean() &&
		first.PollutedTime.Mean() == second.PollutedTime.Mean() {
		t.Error("second RunMany call replayed the first batch (offset not advancing)")
	}
	againFirst, againSecond := pair()
	assertIdenticalSummaries(t, first, againFirst)
	assertIdenticalSummaries(t, second, againSecond)
}

func TestRunBatchValidation(t *testing.T) {
	m, err := core.New(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.RunBatch(ctx, nil, core.State{S: 99}, 10, 100); err == nil {
		t.Error("state outside Ω: want error")
	}
	if _, err := s.RunBatch(ctx, nil, core.State{S: 3}, 0, 100); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := s.RunBatch(ctx, nil, core.State{S: 3}, 10, 0); err == nil {
		t.Error("maxSteps=0: want error")
	}
	if _, err := s.RunManyBatch(ctx, nil, m.InitialDelta(), 10, 0); err == nil {
		t.Error("maxSteps=0: want error")
	}
}

// TestBatchMatchesClosedForm cross-validates the parallel path against
// the analytic expectations, mirroring the serial cross-validation tests.
func TestBatchMatchesClosedForm(t *testing.T) {
	p := core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1}
	m, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := m.AnalyzeNamed(core.DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.RunManyBatch(context.Background(), engine.New(8), m.InitialDelta(), 30000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.SafeTime.Mean()-exact.ExpectedSafeTime) > 0.15 {
		t.Errorf("E(T_S): MC %v vs exact %v", sum.SafeTime.Mean(), exact.ExpectedSafeTime)
	}
	if math.Abs(sum.PollutedTime.Mean()-exact.ExpectedPollutedTime) > 0.15 {
		t.Errorf("E(T_P): MC %v vs exact %v", sum.PollutedTime.Mean(), exact.ExpectedPollutedTime)
	}
	if got := sum.Absorption.Frequency(core.ClassNameSafeMerge); math.Abs(got-exact.Absorption[core.ClassNameSafeMerge]) > 0.02 {
		t.Errorf("p(safe-merge): MC %v vs exact %v", got, exact.Absorption[core.ClassNameSafeMerge])
	}
}
