package combin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialKnownValues(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1},
		{1, 0, 1},
		{1, 1, 1},
		{5, 2, 10},
		{7, 3, 35},
		{10, 5, 252},
		{52, 5, 2598960},
		{5, 6, 0},
		{5, -1, 0},
	}
	for _, tt := range tests {
		got, err := Binomial(tt.n, tt.k)
		if err != nil {
			t.Fatalf("Binomial(%d,%d): %v", tt.n, tt.k, err)
		}
		if math.Abs(got-tt.want) > 1e-6*math.Max(1, tt.want) {
			t.Errorf("Binomial(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBinomialNegativeN(t *testing.T) {
	if _, err := Binomial(-1, 0); err == nil {
		t.Error("negative n: want error")
	}
	if _, err := LogBinomial(-2, 1); err == nil {
		t.Error("negative n: want error")
	}
}

// TestBinomialPascalProperty checks Pascal's rule C(n,k) = C(n−1,k−1) + C(n−1,k).
func TestBinomialPascalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		k := r.Intn(n + 1)
		cnk, err := Binomial(n, k)
		if err != nil {
			return false
		}
		a, err := Binomial(n-1, k-1)
		if err != nil {
			return false
		}
		b, err := Binomial(n-1, k)
		if err != nil {
			return false
		}
		return math.Abs(cnk-(a+b)) <= 1e-9*math.Max(1, cnk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHypergeometricKnown(t *testing.T) {
	// Urn: 10 balls, 4 red; draw 3; P{exactly 2 red} = C(4,2)C(6,1)/C(10,3) = 36/120.
	got, err := Hypergeometric(3, 10, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 36.0 / 120.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("q(3,10,2,4) = %v, want %v", got, want)
	}
}

func TestHypergeometricOutsideSupport(t *testing.T) {
	cases := [][4]int{
		{3, 10, 5, 4},  // u > v
		{3, 10, -1, 4}, // u < 0
		{3, 10, 0, 8},  // k-u > ℓ-v (3 draws, only 2 white)
	}
	for _, c := range cases {
		got, err := Hypergeometric(c[0], c[1], c[2], c[3])
		if err != nil {
			t.Fatalf("q(%v): %v", c, err)
		}
		if got != 0 {
			t.Errorf("q(%v) = %v, want 0", c, got)
		}
	}
}

func TestHypergeometricErrors(t *testing.T) {
	if _, err := Hypergeometric(-1, 10, 0, 4); err == nil {
		t.Error("negative k: want error")
	}
	if _, err := Hypergeometric(3, 10, 0, 12); err == nil {
		t.Error("v > ℓ: want error")
	}
	if _, err := Hypergeometric(11, 10, 0, 4); err == nil {
		t.Error("k > ℓ: want error")
	}
}

// TestHypergeometricSumsToOne: the pmf over its support sums to 1.
func TestHypergeometricSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := 1 + r.Intn(30)
		v := r.Intn(l + 1)
		k := r.Intn(l + 1)
		lo, hi := HypergeometricSupport(k, l, v)
		var sum float64
		for u := lo; u <= hi; u++ {
			p, err := Hypergeometric(k, l, u, v)
			if err != nil {
				return false
			}
			if p < 0 || p > 1+1e-12 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHypergeometricMeanProperty: E[u] = k·v/ℓ.
func TestHypergeometricMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := 1 + r.Intn(25)
		v := r.Intn(l + 1)
		k := r.Intn(l + 1)
		lo, hi := HypergeometricSupport(k, l, v)
		var mean float64
		for u := lo; u <= hi; u++ {
			p, err := Hypergeometric(k, l, u, v)
			if err != nil {
				return false
			}
			mean += float64(u) * p
		}
		want := float64(k) * float64(v) / float64(l)
		return math.Abs(mean-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinomialPMFKnown(t *testing.T) {
	// Binomial(4, 0.5): P{k=2} = 6/16.
	got, err := BinomialPMF(4, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 6.0 / 16.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("BinomialPMF(4,0.5,2) = %v, want %v", got, want)
	}
}

func TestBinomialPMFDegenerate(t *testing.T) {
	for _, tt := range []struct {
		n    int
		p    float64
		k    int
		want float64
	}{
		{5, 0, 0, 1},
		{5, 0, 1, 0},
		{5, 1, 5, 1},
		{5, 1, 4, 0},
		{5, 0.3, -1, 0},
		{5, 0.3, 6, 0},
	} {
		got, err := BinomialPMF(tt.n, tt.p, tt.k)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("BinomialPMF(%d,%v,%d) = %v, want %v", tt.n, tt.p, tt.k, got, tt.want)
		}
	}
}

func TestBinomialPMFErrors(t *testing.T) {
	if _, err := BinomialPMF(-1, 0.5, 0); err == nil {
		t.Error("negative n: want error")
	}
	if _, err := BinomialPMF(3, 1.5, 0); err == nil {
		t.Error("p > 1: want error")
	}
	if _, err := BinomialPMF(3, -0.5, 0); err == nil {
		t.Error("p < 0: want error")
	}
}

// TestBinomialPMFSumsToOne over random n, p.
func TestBinomialPMFSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		p := r.Float64()
		var sum float64
		for k := 0; k <= n; k++ {
			v, err := BinomialPMF(n, p, k)
			if err != nil {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHalfLifeAndLifetime(t *testing.T) {
	// Paper, Figure 5 legend: d = 30% → L = 6.58; d = 90% → L = 46.05.
	for _, tt := range []struct {
		d     float64
		wantL float64
	}{
		{0.30, 6.58},
		{0.90, 46.05},
	} {
		l, err := LifetimeFromSurvival(tt.d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(l-tt.wantL) > 0.05 {
			t.Errorf("LifetimeFromSurvival(%v) = %v, want ≈%v (paper Figure 5)", tt.d, l, tt.wantL)
		}
	}
}

func TestHalfLifeErrors(t *testing.T) {
	for _, d := range []float64{-0.1, 1.0, 1.5} {
		if _, err := HalfLife(d); err == nil {
			t.Errorf("HalfLife(%v): want error", d)
		}
	}
}

func TestSurvivalLifetimeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := r.Float64() * 0.999
		l, err := LifetimeFromSurvival(d)
		if err != nil {
			return false
		}
		back, err := SurvivalFromLifetime(l)
		if err != nil {
			return false
		}
		return math.Abs(back-d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSurvivalFromLifetimeErrors(t *testing.T) {
	if _, err := SurvivalFromLifetime(0); err == nil {
		t.Error("zero lifetime: want error")
	}
	if _, err := SurvivalFromLifetime(1); err == nil {
		t.Error("too-short lifetime: want error (implied d < 0)")
	}
}

func TestDecayCalibrationFactor(t *testing.T) {
	// The paper's footnote: 6.65 ≥ ln(100)/ln(2) ≈ 6.6439.
	if DecayCalibrationFactor < math.Log(100)/math.Ln2 {
		t.Errorf("calibration factor %v < ln(100)/ln(2)", DecayCalibrationFactor)
	}
}
