// Package combin implements the combinatorial distributions used by the
// DSN 2011 targeted-attack model: log-space binomial coefficients, the
// hypergeometric law q(k, ℓ, u, v) that drives the randomized core-set
// maintenance, the binomial law behind the β initial distribution, and the
// exponential-decay calibration between the identifier survival probability
// d, the half-life t½ and the incarnation lifetime L (Section III-D and VI
// of the paper).
package combin

import (
	"fmt"
	"math"
)

// LogBinomial returns ln C(n, k). It returns -Inf when the coefficient is
// zero (k < 0 or k > n) and an error for negative n.
func LogBinomial(n, k int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("combin: LogBinomial with negative n=%d", n)
	}
	if k < 0 || k > n {
		return math.Inf(-1), nil
	}
	lg, err := logFactorial(n)
	if err != nil {
		return 0, err
	}
	lk, err := logFactorial(k)
	if err != nil {
		return 0, err
	}
	lnk, err := logFactorial(n - k)
	if err != nil {
		return 0, err
	}
	return lg - lk - lnk, nil
}

// Binomial returns C(n, k) as a float64; 0 outside the support.
func Binomial(n, k int) (float64, error) {
	lb, err := LogBinomial(n, k)
	if err != nil {
		return 0, err
	}
	if math.IsInf(lb, -1) {
		return 0, nil
	}
	return math.Exp(lb), nil
}

// logFactorial returns ln n! using the log-gamma function.
func logFactorial(n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("combin: factorial of negative %d", n)
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v, nil
}

// Hypergeometric returns q(k, ℓ, u, v): the probability of drawing exactly
// u red balls when k balls are drawn without replacement from an urn of ℓ
// balls of which v are red (paper, Section VI):
//
//	q(k, ℓ, u, v) = C(v, u) · C(ℓ−v, k−u) / C(ℓ, k).
//
// It returns 0 outside the support and an error for inconsistent inputs
// (negative sizes, v > ℓ, or k > ℓ).
func Hypergeometric(k, l, u, v int) (float64, error) {
	if l < 0 || k < 0 || v < 0 {
		return 0, fmt.Errorf("combin: Hypergeometric with negative parameter k=%d ℓ=%d v=%d", k, l, v)
	}
	if v > l {
		return 0, fmt.Errorf("combin: Hypergeometric with v=%d > ℓ=%d", v, l)
	}
	if k > l {
		return 0, fmt.Errorf("combin: Hypergeometric draws k=%d > ℓ=%d", k, l)
	}
	if u < 0 || u > v || k-u < 0 || k-u > l-v {
		return 0, nil
	}
	lnum1, err := LogBinomial(v, u)
	if err != nil {
		return 0, err
	}
	lnum2, err := LogBinomial(l-v, k-u)
	if err != nil {
		return 0, err
	}
	lden, err := LogBinomial(l, k)
	if err != nil {
		return 0, err
	}
	return math.Exp(lnum1 + lnum2 - lden), nil
}

// HypergeometricSupport returns the inclusive [lo, hi] support of the
// number of red balls drawn: lo = max(0, k−(ℓ−v)), hi = min(k, v).
func HypergeometricSupport(k, l, v int) (lo, hi int) {
	lo = k - (l - v)
	if lo < 0 {
		lo = 0
	}
	hi = k
	if v < hi {
		hi = v
	}
	return lo, hi
}

// BinomialPMF returns P{Binomial(n, p) = k}; 0 outside the support.
func BinomialPMF(n int, p float64, k int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("combin: BinomialPMF with negative n=%d", n)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("combin: BinomialPMF with p=%v outside [0,1]", p)
	}
	if k < 0 || k > n {
		return 0, nil
	}
	// Handle the degenerate endpoints exactly (0^0 = 1 convention).
	if p == 0 {
		if k == 0 {
			return 1, nil
		}
		return 0, nil
	}
	if p == 1 {
		if k == n {
			return 1, nil
		}
		return 0, nil
	}
	lb, err := LogBinomial(n, k)
	if err != nil {
		return 0, err
	}
	return math.Exp(lb + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)), nil
}

// DecayCalibrationFactor is the paper's 6.65 ≥ ln(100)/ln(2) constant: the
// number of half-lives after which 99% of a population has decayed, used to
// calibrate the incarnation lifetime L from the survival probability d.
const DecayCalibrationFactor = 6.65

// HalfLife returns t½ = ln 2 / (1 − d), the half-life of a peer identifier
// whose per-unit-time survival probability is d (paper, Section VI).
// d must lie in [0, 1).
func HalfLife(d float64) (float64, error) {
	if d < 0 || d >= 1 {
		return 0, fmt.Errorf("combin: HalfLife requires d in [0,1), got %v", d)
	}
	return math.Ln2 / (1 - d), nil
}

// LifetimeFromSurvival returns L = 6.65 · t½, the incarnation lifetime for
// which 99%% of a population of identifiers has expired (Section III-D).
func LifetimeFromSurvival(d float64) (float64, error) {
	th, err := HalfLife(d)
	if err != nil {
		return 0, err
	}
	return DecayCalibrationFactor * th, nil
}

// SurvivalFromLifetime inverts LifetimeFromSurvival: given an incarnation
// lifetime L (in model time units) it returns the per-unit-time survival
// probability d = 1 − 6.65·ln2/L. L must be positive and large enough that
// d ≥ 0.
func SurvivalFromLifetime(lifetime float64) (float64, error) {
	if lifetime <= 0 {
		return 0, fmt.Errorf("combin: SurvivalFromLifetime requires positive L, got %v", lifetime)
	}
	d := 1 - DecayCalibrationFactor*math.Ln2/lifetime
	if d < 0 {
		return 0, fmt.Errorf("combin: lifetime %v too short: implied survival %v < 0", lifetime, d)
	}
	return d, nil
}
