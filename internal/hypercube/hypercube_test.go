package hypercube

import (
	"crypto/sha256"
	"math/rand"
	"testing"
	"testing/quick"

	"targetedattacks/internal/identity"
)

func mustLabel(t *testing.T, s string) Label {
	t.Helper()
	l, err := LabelFromString(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func idFromBytes(t *testing.T, m int, bs ...byte) identity.ID {
	t.Helper()
	var digest [32]byte
	copy(digest[:], bs)
	id, err := identity.NewID(digest, m)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestLabelParseAndString(t *testing.T) {
	for _, s := range []string{"", "0", "1", "0110", "111000111"} {
		l := mustLabel(t, s)
		want := s
		if s == "" {
			want = "ε"
		}
		if l.String() != want {
			t.Errorf("round trip %q = %q", s, l.String())
		}
		if l.Length() != len(s) {
			t.Errorf("length of %q = %d", s, l.Length())
		}
	}
	if _, err := LabelFromString("012"); err == nil {
		t.Error("bad rune: want error")
	}
	if _, err := LabelFromString(string(make([]byte, 65))); err == nil {
		t.Error("too long: want error")
	}
}

func TestChildParentSibling(t *testing.T) {
	root := RootLabel()
	c0, err := root.Child(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := root.Child(1)
	if err != nil {
		t.Fatal(err)
	}
	if c0.String() != "0" || c1.String() != "1" {
		t.Errorf("children = %v, %v", c0, c1)
	}
	if _, err := root.Child(2); err == nil {
		t.Error("bad child bit: want error")
	}
	p, err := c0.Parent()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(root) {
		t.Errorf("parent of %v = %v, want root", c0, p)
	}
	s, err := c0.Sibling()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(c1) {
		t.Errorf("sibling of %v = %v, want %v", c0, s, c1)
	}
	if _, err := root.Parent(); err == nil {
		t.Error("root parent: want error")
	}
	if _, err := root.Sibling(); err == nil {
		t.Error("root sibling: want error")
	}
}

func TestChildParentRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := RootLabel()
		for i := 0; i < 1+rng.Intn(60); i++ {
			c, err := l.Child(rng.Intn(2))
			if err != nil {
				return false
			}
			p, err := c.Parent()
			if err != nil || !p.Equal(l) {
				return false
			}
			sib, err := c.Sibling()
			if err != nil {
				return false
			}
			back, err := sib.Sibling()
			if err != nil || !back.Equal(c) {
				return false
			}
			l = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitAndFlip(t *testing.T) {
	l := mustLabel(t, "0110")
	wantBits := []int{0, 1, 1, 0}
	for i, w := range wantBits {
		got, err := l.Bit(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("bit %d = %d, want %d", i, got, w)
		}
	}
	if _, err := l.Bit(4); err == nil {
		t.Error("out of range: want error")
	}
	f, err := l.FlipBit(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "1110" {
		t.Errorf("flip(0) = %v", f)
	}
	if _, err := l.FlipBit(9); err == nil {
		t.Error("flip out of range: want error")
	}
}

func TestIsPrefixOf(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"", "0110", true},
		{"01", "0110", true},
		{"0110", "0110", true},
		{"1", "0110", false},
		{"01101", "0110", false},
	}
	for _, tt := range tests {
		a, b := mustLabel(t, tt.a), mustLabel(t, tt.b)
		if got := a.IsPrefixOf(b); got != tt.want {
			t.Errorf("%q.IsPrefixOf(%q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMatchesAndDistance(t *testing.T) {
	// id with leading byte 0110 0000.
	id := idFromBytes(t, 128, 0b0110_0000)
	if !mustLabel(t, "0110").Matches(id) {
		t.Error("0110 must match id 0110…")
	}
	if mustLabel(t, "0111").Matches(id) {
		t.Error("0111 must not match id 0110…")
	}
	if d := Distance(id, mustLabel(t, "0110")); d != 0 {
		t.Errorf("distance to matching label = %d, want 0", d)
	}
	// First mismatch at bit 3 of a 4-bit label: distance 4−3 = 1.
	if d := Distance(id, mustLabel(t, "0111")); d != 1 {
		t.Errorf("distance = %d, want 1", d)
	}
	// First mismatch at bit 0: distance = label length.
	if d := Distance(id, mustLabel(t, "1110")); d != 4 {
		t.Errorf("distance = %d, want 4", d)
	}
}

func TestMatchesWidthGuard(t *testing.T) {
	id := idFromBytes(t, 8, 0b0110_0000)
	long := mustLabel(t, "011000001")
	if long.Matches(id) {
		t.Error("label longer than id width must not match")
	}
}

func TestNextHopAndRoute(t *testing.T) {
	id := idFromBytes(t, 128, 0b0110_0000)
	// From 1010, greedy routing corrects bit 0 first: 0010, then bit 1:
	// 0110 which matches.
	path, err := RoutePath(mustLabel(t, "1010"), id)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1010", "0010", "0110"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i].String() != want[i] {
			t.Errorf("path[%d] = %v, want %v", i, path[i], want[i])
		}
	}
	// Already matching: single-entry path.
	path, err = RoutePath(mustLabel(t, "0110"), id)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 {
		t.Errorf("path from matching label = %v", path)
	}
}

func TestNextHopErrors(t *testing.T) {
	id := idFromBytes(t, 4, 0b0110_0000)
	if _, _, err := NextHop(mustLabel(t, "01100"), id); err == nil {
		t.Error("label longer than id: want error")
	}
}

// TestRouteConvergesProperty: from any start label of any length ≤ 16,
// greedy routing reaches a matching label within Length hops.
func TestRouteConvergesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		digest := sha256.Sum256([]byte{byte(seed), byte(seed >> 8)})
		id, err := identity.NewID(digest, 128)
		if err != nil {
			return false
		}
		l := RootLabel()
		n := rng.Intn(16)
		for i := 0; i < n; i++ {
			l, err = l.Child(rng.Intn(2))
			if err != nil {
				return false
			}
		}
		path, err := RoutePath(l, id)
		if err != nil {
			return false
		}
		if len(path) > n+1 {
			return false
		}
		return path[len(path)-1].Matches(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDimensions(t *testing.T) {
	l := mustLabel(t, "010")
	dims := l.Dimensions()
	if len(dims) != 3 {
		t.Fatalf("dimensions = %v", dims)
	}
	want := []string{"110", "000", "011"}
	for i := range want {
		if dims[i].String() != want[i] {
			t.Errorf("dims[%d] = %v, want %v", i, dims[i], want[i])
		}
	}
	if len(RootLabel().Dimensions()) != 0 {
		t.Error("root has no dimensions")
	}
}

func TestChildAtMaxDepth(t *testing.T) {
	l := RootLabel()
	var err error
	for i := 0; i < MaxLabelBits; i++ {
		l, err = l.Child(1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Child(0); err == nil {
		t.Error("64-bit label child: want error")
	}
}
