// Package hypercube implements the structured-graph substrate of the
// cluster-based overlay (Section III-A of the DSN 2011 paper, after
// PeerCube): clusters are uniquely labelled with bit-string prefixes of
// the identifier space, a peer belongs to the unique cluster whose label
// prefixes its identifier, split/merge move one bit down/up the prefix
// tree, and routing greedily corrects the first differing dimension as on
// a hypercube.
package hypercube

import (
	"fmt"
	"strings"

	"targetedattacks/internal/identity"
)

// MaxLabelBits bounds label lengths (prefixes are stored in a uint64).
const MaxLabelBits = 64

// Label is a cluster label: a prefix of the identifier space. Bits are
// stored most-significant-first. The zero value is the root (empty) label.
type Label struct {
	bits   uint64
	length int
}

// RootLabel returns the empty prefix, the label of a single-cluster
// overlay.
func RootLabel() Label { return Label{} }

// LabelFromString parses a label like "0110". The empty string is the
// root label.
func LabelFromString(s string) (Label, error) {
	if len(s) > MaxLabelBits {
		return Label{}, fmt.Errorf("hypercube: label %q longer than %d bits", s, MaxLabelBits)
	}
	l := Label{length: len(s)}
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			l.bits |= 1 << (MaxLabelBits - 1 - i)
		default:
			return Label{}, fmt.Errorf("hypercube: label %q has non-binary rune %q", s, c)
		}
	}
	return l, nil
}

// Length returns the number of bits in the prefix.
func (l Label) Length() int { return l.length }

// Bit returns bit i (0 = most significant).
func (l Label) Bit(i int) (int, error) {
	if i < 0 || i >= l.length {
		return 0, fmt.Errorf("hypercube: bit %d outside [0,%d)", i, l.length)
	}
	return int(l.bits>>(MaxLabelBits-1-i)) & 1, nil
}

// String renders the label as a bit string; the root renders as "ε".
func (l Label) String() string {
	if l.length == 0 {
		return "ε"
	}
	var b strings.Builder
	for i := 0; i < l.length; i++ {
		bit, _ := l.Bit(i)
		b.WriteByte(byte('0' + bit))
	}
	return b.String()
}

// Equal reports label equality.
func (l Label) Equal(other Label) bool {
	return l.length == other.length && l.bits == other.bits
}

// Child appends bit b (0 or 1), the label of one half after a split.
func (l Label) Child(b int) (Label, error) {
	if b != 0 && b != 1 {
		return Label{}, fmt.Errorf("hypercube: child bit must be 0 or 1, got %d", b)
	}
	if l.length >= MaxLabelBits {
		return Label{}, fmt.Errorf("hypercube: label already %d bits", MaxLabelBits)
	}
	c := Label{bits: l.bits, length: l.length + 1}
	if b == 1 {
		c.bits |= 1 << (MaxLabelBits - 1 - l.length)
	}
	return c, nil
}

// Parent drops the last bit, the label after a merge with the sibling.
func (l Label) Parent() (Label, error) {
	if l.length == 0 {
		return Label{}, fmt.Errorf("hypercube: root label has no parent")
	}
	p := Label{length: l.length - 1}
	p.bits = l.bits &^ (1 << (MaxLabelBits - 1 - (l.length - 1)))
	return p, nil
}

// Sibling flips the last bit: the closest cluster, with which a merge
// happens.
func (l Label) Sibling() (Label, error) {
	if l.length == 0 {
		return Label{}, fmt.Errorf("hypercube: root label has no sibling")
	}
	s := l
	s.bits ^= 1 << (MaxLabelBits - 1 - (l.length - 1))
	return s, nil
}

// FlipBit returns the hypercube neighbor label along dimension i.
func (l Label) FlipBit(i int) (Label, error) {
	if i < 0 || i >= l.length {
		return Label{}, fmt.Errorf("hypercube: dimension %d outside [0,%d)", i, l.length)
	}
	f := l
	f.bits ^= 1 << (MaxLabelBits - 1 - i)
	return f, nil
}

// IsPrefixOf reports whether l prefixes other.
func (l Label) IsPrefixOf(other Label) bool {
	if l.length > other.length {
		return false
	}
	if l.length == 0 {
		return true
	}
	mask := ^uint64(0) << (MaxLabelBits - l.length)
	return (l.bits^other.bits)&mask == 0
}

// Matches reports whether the label prefixes identifier id — the paper's
// "idq matches the label of D according to distance D" (Property 1).
func (l Label) Matches(id identity.ID) bool {
	if l.length > id.Bits() {
		return false
	}
	for i := 0; i < l.length; i++ {
		lb, _ := l.Bit(i)
		ib, err := id.Bit(i)
		if err != nil || lb != ib {
			return false
		}
	}
	return true
}

// Distance is the paper's distance D between an identifier and a cluster
// label: the number of label bits not matched by the identifier's prefix
// (0 when the peer is valid for the cluster). Among a set of clusters,
// the *closest* is the one with the longest matching prefix.
func Distance(id identity.ID, l Label) int {
	limit := l.length
	if id.Bits() < limit {
		limit = id.Bits()
	}
	for i := 0; i < limit; i++ {
		lb, _ := l.Bit(i)
		ib, _ := id.Bit(i)
		if lb != ib {
			return l.length - i
		}
	}
	return l.length - limit
}

// NextHop returns the greedy hypercube hop from the current cluster
// toward target: the neighbor label with the first differing dimension
// corrected. ok is false when the current label already matches the
// target (routing terminates here).
func NextHop(current Label, target identity.ID) (Label, bool, error) {
	if current.length > target.Bits() {
		return Label{}, false, fmt.Errorf("hypercube: label %v longer than id width %d", current, target.Bits())
	}
	for i := 0; i < current.length; i++ {
		lb, _ := current.Bit(i)
		ib, err := target.Bit(i)
		if err != nil {
			return Label{}, false, err
		}
		if lb != ib {
			hop, err := current.FlipBit(i)
			if err != nil {
				return Label{}, false, err
			}
			return hop, true, nil
		}
	}
	return current, false, nil
}

// RoutePath returns the greedy path of labels from `from` toward the
// cluster matching target, assuming every intermediate label exists with
// the same length (a regular hypercube). The path includes the endpoints
// and has at most Length()+1 entries.
func RoutePath(from Label, target identity.ID) ([]Label, error) {
	path := []Label{from}
	current := from
	for hops := 0; hops <= from.length; hops++ {
		next, more, err := NextHop(current, target)
		if err != nil {
			return nil, err
		}
		if !more {
			return path, nil
		}
		current = next
		path = append(path, current)
	}
	return nil, fmt.Errorf("hypercube: routing from %v did not converge", from)
}

// Dimensions returns the neighbor labels of l along every dimension (the
// constrained routing table of a regular hypercube node).
func (l Label) Dimensions() []Label {
	out := make([]Label, 0, l.length)
	for i := 0; i < l.length; i++ {
		n, err := l.FlipBit(i)
		if err == nil {
			out = append(out, n)
		}
	}
	return out
}
