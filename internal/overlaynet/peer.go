// Package overlaynet is the full system simulator of the cluster-based
// overlay the DSN 2011 paper models: peers carry CA-issued certificates
// with expiring incarnation identifiers (internal/identity), clusters are
// hypercube prefixes (internal/hypercube) with core/spare role
// separation, the robust join/leave/split/merge operations of Section IV
// run against live churn (internal/churn), the randomized core
// maintenance can execute a real Byzantine agreement
// (internal/consensus), and a colluding adversary plays the targeted
// attack strategy of Section V (internal/adversary).
//
// Two churn-fidelity modes are supported: ModelFidelity mirrors the
// analytic chain event-for-event (identifier expiry folded into leave
// events through the survival probability d), enabling apples-to-apples
// validation against Theorem 2; RealTime schedules explicit incarnation
// expiries on the discrete-event engine (internal/des).
package overlaynet

import (
	"fmt"

	"targetedattacks/internal/identity"
)

// Peer is one participant of the overlay.
type Peer struct {
	// Name is a unique diagnostic name.
	Name string
	// Identity holds the certificate and signing key.
	Identity *identity.Identity
	// Malicious marks peers controlled by the adversary.
	Malicious bool
	// CurrentID is the identifier of the peer's current incarnation.
	CurrentID identity.ID
	// Incarnation is the incarnation number of CurrentID.
	Incarnation int64
}

// Refresh recomputes the peer's identifier for the incarnation current at
// time t with identifier lifetime L.
func (p *Peer) Refresh(t, lifetime float64) error {
	if p.Identity == nil {
		return fmt.Errorf("overlaynet: peer %s has no identity", p.Name)
	}
	id, k, err := p.Identity.CurrentID(t, lifetime)
	if err != nil {
		return fmt.Errorf("overlaynet: refreshing %s: %w", p.Name, err)
	}
	p.CurrentID = id
	p.Incarnation = k
	return nil
}

// ExpiresAt returns when the peer's current incarnation expires.
func (p *Peer) ExpiresAt(lifetime float64) float64 {
	return identity.ExpiryTime(p.Identity.Certificate().CreatedAt, lifetime, p.Incarnation)
}

// Advance moves the peer to its next incarnation — the paper's Property 1
// rejoin rule: "the kth incarnation of a peer p expires when p's local
// clock reads t0 + kL; at this time p must rejoin the system using its
// (k+1)th incarnation". Refresh cannot be used at the expiry instant
// itself because ⌈(t−t0)/L⌉ still yields k on the boundary.
func (p *Peer) Advance() {
	p.Incarnation++
	p.CurrentID = identity.DeriveID(p.Identity.InitialID(), p.Incarnation)
}

// String renders the peer for diagnostics.
func (p *Peer) String() string {
	role := "honest"
	if p.Malicious {
		role = "malicious"
	}
	return fmt.Sprintf("%s(%s,k=%d)", p.Name, role, p.Incarnation)
}
