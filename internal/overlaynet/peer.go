// Package overlaynet is the full system simulator of the cluster-based
// overlay the DSN 2011 paper models: peers carry CA-issued certificates
// with expiring incarnation identifiers (internal/identity), clusters are
// hypercube prefixes (internal/hypercube) with core/spare role
// separation, the robust join/leave/split/merge operations of Section IV
// run against live churn (internal/churn), the randomized core
// maintenance can execute a real Byzantine agreement
// (internal/consensus), and a colluding adversary plays the targeted
// attack strategy of Section V (internal/adversary).
//
// Two churn-fidelity modes are supported: ModelFidelity mirrors the
// analytic chain event-for-event (identifier expiry folded into leave
// events through the survival probability d), enabling apples-to-apples
// validation against Theorem 2; RealTime schedules explicit incarnation
// expiries on the discrete-event engine (internal/des).
//
// The operation path is built for million-peer populations: clusters
// live in a dense slice keyed by interned hypercube.Label values (no
// string hashing per event), peer records are pooled and slot-indexed
// so identifier-expiry timers carry an integer payload through the
// typed des event table, and FastIdentity mode derives identifiers from
// a seeded hash instead of generating an ed25519 certificate per peer.
//
// With TrackAbsorption a single-cluster overlay doubles as a sampler of
// the paper's absorbing chain: chain age ticks on churn events targeting
// the cluster, and StopOnAbsorption ends the run at the first s = 0
// merge or s = ∆ split, classified safe or polluted — the statistics
// sweep.EvaluateSim cross-validates against core.Analyze.
package overlaynet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"targetedattacks/internal/des"
	"targetedattacks/internal/identity"
)

// Peer is one participant of the overlay.
type Peer struct {
	// Seq is the peer's unique registration number (diagnostics).
	Seq int64
	// Identity holds the certificate and signing key; nil in
	// FastIdentity mode, where identifiers derive from a seeded hash.
	Identity *identity.Identity
	// Malicious marks peers controlled by the adversary.
	Malicious bool
	// CurrentID is the identifier of the peer's current incarnation.
	CurrentID identity.ID
	// Incarnation is the incarnation number of CurrentID.
	Incarnation int64

	id0    identity.ID // initial identifier (Property 1 hash chain root)
	t0     float64     // certificate creation time
	slot   int32       // index in the network's peer registry
	expiry des.EventID // pending incarnation-expiry event (RealTime), 0 if none
}

// Name returns the peer's unique diagnostic name.
func (p *Peer) Name() string { return fmt.Sprintf("peer-%d", p.Seq) }

// fastInitialID derives a FastIdentity peer's id0 from its churn seed:
// a uniform m-bit identifier without the ed25519 certificate walk.
func fastInitialID(seed int64, m int) (identity.ID, error) {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(seed))
	copy(buf[8:], "fast-id0")
	return identity.NewID(sha256.Sum256(buf[:]), m)
}

// Refresh recomputes the peer's identifier for the incarnation current at
// time t with identifier lifetime L.
func (p *Peer) Refresh(t, lifetime float64) error {
	k, err := identity.Incarnation(t, p.t0, lifetime)
	if err != nil {
		return fmt.Errorf("overlaynet: refreshing %s: %w", p.Name(), err)
	}
	p.CurrentID = identity.DeriveID(p.id0, k)
	p.Incarnation = k
	return nil
}

// ExpiresAt returns when the peer's current incarnation expires.
func (p *Peer) ExpiresAt(lifetime float64) float64 {
	return identity.ExpiryTime(p.t0, lifetime, p.Incarnation)
}

// Advance moves the peer to its next incarnation — the paper's Property 1
// rejoin rule: "the kth incarnation of a peer p expires when p's local
// clock reads t0 + kL; at this time p must rejoin the system using its
// (k+1)th incarnation". Refresh cannot be used at the expiry instant
// itself because ⌈(t−t0)/L⌉ still yields k on the boundary.
func (p *Peer) Advance() {
	p.Incarnation++
	p.CurrentID = identity.DeriveID(p.id0, p.Incarnation)
}

// String renders the peer for diagnostics.
func (p *Peer) String() string {
	role := "honest"
	if p.Malicious {
		role = "malicious"
	}
	return fmt.Sprintf("%s(%s,k=%d)", p.Name(), role, p.Incarnation)
}
