package overlaynet

import (
	"testing"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/core"
)

// TestFastIdentityRuns exercises the hash-derived identity path: no
// certificates are issued, invariants hold under churn, and two runs
// with the same seed are bit-identical.
func TestFastIdentityRuns(t *testing.T) {
	cfg := config(0.2, 0.9)
	cfg.FastIdentity = true
	run := func() (*Network, Snapshot) {
		n := newNetwork(t, cfg)
		if err := n.Run(3000); err != nil {
			t.Fatal(err)
		}
		return n, n.Snapshot()
	}
	n1, s1 := run()
	_, s2 := run()
	if s1 != s2 {
		t.Errorf("FastIdentity runs diverged: %+v vs %+v", s1, s2)
	}
	checkInvariants(t, n1)
	for _, cl := range n1.Clusters() {
		for _, p := range append(append([]*Peer(nil), cl.Core...), cl.Spare...) {
			if p.Identity != nil {
				t.Fatalf("%v carries a certificate in FastIdentity mode", p)
			}
		}
	}
}

// TestFastIdentityRealTime checks that hash-derived identifiers follow
// Property 1 in RealTime mode: incarnations advance through expiries
// exactly as certificate-backed ones do.
func TestFastIdentityRealTime(t *testing.T) {
	cfg := config(0.1, 0.8)
	cfg.FastIdentity = true
	cfg.Mode = RealTime
	cfg.StationaryPopulation = true
	n := newNetwork(t, cfg)
	if err := n.Run(4000); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, n)
	advanced := 0
	for _, cl := range n.Clusters() {
		for _, p := range append(append([]*Peer(nil), cl.Core...), cl.Spare...) {
			if p.Incarnation > 1 {
				advanced++
			}
		}
	}
	if advanced == 0 {
		t.Error("no peer advanced past its first incarnation in RealTime mode")
	}
	if n.Metrics().ExpiryLeaves == 0 {
		t.Error("no expiry-driven departures in RealTime mode")
	}
}

// TestStrategyGatesPollution compares adversary strategies on the same
// workload: the paper's full strategy must pollute at least as much as
// the Rule-1-less variant, and the passive population (which follows the
// protocol faithfully) must stay pollution-free at moderate µ.
func TestStrategyGatesPollution(t *testing.T) {
	frac := func(s adversary.Strategy) float64 {
		cfg := config(0.25, 0.9)
		cfg.Strategy = s
		n := newNetwork(t, cfg)
		if err := n.Run(6000); err != nil {
			t.Fatal(err)
		}
		return n.Snapshot().PollutedFraction
	}
	paper := frac(adversary.StrategyPaper)
	norule1 := frac(adversary.StrategyNoRule1)
	passive := frac(adversary.StrategyPassive)
	if paper < norule1 {
		t.Errorf("paper strategy pollution %v < norule1 %v", paper, norule1)
	}
	if passive > norule1 {
		t.Errorf("passive pollution %v > norule1 %v", passive, norule1)
	}
}

// TestParseStrategy covers the string round-trip used by flags and HTTP
// plans.
func TestParseStrategy(t *testing.T) {
	for _, want := range []adversary.Strategy{
		adversary.StrategyPaper, adversary.StrategyNoRule1, adversary.StrategyPassive,
	} {
		got, err := adversary.ParseStrategy(want.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("ParseStrategy(%q) = %v", want.String(), got)
		}
	}
	if _, err := adversary.ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted an unknown strategy")
	}
}

// TestAbsorptionSingleCluster runs one absorption trajectory of the
// analytic chain: a single bootstrap cluster tracked until its spare set
// reaches s = 0 or s = ∆, with Run stopping at absorption.
func TestAbsorptionSingleCluster(t *testing.T) {
	cfg := config(0.2, 0.9)
	cfg.InitialLabelBits = -1 // single root cluster
	cfg.TrackAbsorption = true
	cfg.StopOnAbsorption = true
	n := newNetwork(t, cfg)
	if err := n.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	rep := n.Absorption()
	if rep.Absorbed() != 1 {
		t.Fatalf("absorbed = %d, want 1 (report %+v)", rep.Absorbed(), rep)
	}
	if rep.Tracking != 0 {
		t.Errorf("still tracking %d clusters after StopOnAbsorption", rep.Tracking)
	}
	if rep.Censored != 0 {
		t.Errorf("censored = %d with a single cluster (no sibling merges)", rep.Censored)
	}
	if total := rep.SafeTime.Mean() + rep.PollutedTime.Mean(); total <= 0 {
		t.Errorf("absorption took %v chain steps, want > 0", total)
	}
}

// TestAbsorptionManyClusters tracks every bootstrap cluster of a larger
// overlay and checks the bookkeeping stays consistent: every tracked
// cluster is eventually absorbed or censored, never both, never twice.
func TestAbsorptionManyClusters(t *testing.T) {
	cfg := config(0.2, 0.9)
	cfg.TrackAbsorption = true
	n := newNetwork(t, cfg)
	if err := n.Run(20000); err != nil {
		t.Fatal(err)
	}
	rep := n.Absorption()
	started := int64(1 << cfg.InitialLabelBits)
	if got := rep.Absorbed() + rep.Censored + int64(rep.Tracking); got != started {
		t.Errorf("absorbed+censored+tracking = %d, want %d", got, started)
	}
	if rep.Absorbed() == 0 {
		t.Error("no cluster absorbed in 20000 events")
	}
}

// TestLabelBitsForPopulation pins the bootstrap sizing helper.
func TestLabelBitsForPopulation(t *testing.T) {
	cases := []struct {
		peers, c, delta, want int
	}{
		{1, 7, 7, 0},
		{10, 7, 7, 0},
		{25, 7, 7, 1},
		{1000, 7, 7, 7},     // 2^7·10 = 1280 vs 2^6·10 = 640
		{100000, 7, 7, 13},  // 2^13·10 = 81920
		{1000000, 7, 7, 17}, // 2^17·10 = 1310720 vs 2^16·10 = 655360
		{1 << 30, 7, 7, 20}, // clamped at MaxInitialLabelBits
	}
	for _, c := range cases {
		if got := LabelBitsForPopulation(c.peers, c.c, c.delta); got != c.want {
			t.Errorf("LabelBitsForPopulation(%d,%d,%d) = %d, want %d",
				c.peers, c.c, c.delta, got, c.want)
		}
	}
}

// TestPeerRecordsRecycled checks the million-peer memory contract: under
// stationary churn the peer registry and record pool stay bounded by the
// peak population, rather than growing with the event count.
func TestPeerRecordsRecycled(t *testing.T) {
	cfg := config(0.1, 0.9)
	cfg.Mode = RealTime
	cfg.StationaryPopulation = true
	n := newNetwork(t, cfg)
	if err := n.Run(8000); err != nil {
		t.Fatal(err)
	}
	// Registry slots = live peers + free slots; both bounded by the peak
	// population, which the controller holds near the bootstrap size.
	if got, limit := len(n.peers), 4*n.targetPop+64; got > limit {
		t.Errorf("peer registry grew to %d slots for target population %d (limit %d)",
			got, n.targetPop, limit)
	}
	live := 0
	for _, p := range n.peers {
		if p != nil {
			live++
		}
	}
	if live != n.Population() {
		t.Errorf("registry live count %d != population %d", live, n.Population())
	}
	// Every live peer's pending expiry must belong to itself: releasing a
	// peer cancels its timer, so a fired expiry always finds its owner.
	for _, p := range n.peers {
		if p != nil && p.expiry == 0 {
			t.Fatalf("%v live in RealTime mode without a pending expiry", p)
		}
	}
}

// TestHugeBootstrapFast sanity-checks the direct bootstrap at scale: a
// 10^5-peer overlay must build in well under test-timeout time with
// FastIdentity (this is the path the swarm scenario scales to 10^6).
func TestHugeBootstrapFast(t *testing.T) {
	if testing.Short() {
		t.Skip("large bootstrap")
	}
	cfg := Config{
		Params:           core.Params{C: 7, Delta: 7, Mu: 0.1, D: 0.9, K: 1, Nu: 0.1},
		IDBits:           64,
		InitialLabelBits: LabelBitsForPopulation(100000, 7, 7),
		FastIdentity:     true,
		Seed:             7,
	}
	n := newNetwork(t, cfg)
	if pop := n.Population(); pop < 50000 || pop > 200000 {
		t.Errorf("population %d far from requested 100000", pop)
	}
	if err := n.Run(2000); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, n)
}
