package overlaynet

import (
	"fmt"

	"targetedattacks/internal/hypercube"
	"targetedattacks/internal/identity"
)

// LookupResult reports one routed lookup.
type LookupResult struct {
	// Path is the sequence of cluster labels traversed.
	Path []hypercube.Label
	// Delivered is true when the lookup reached the cluster responsible
	// for the key and that cluster answered honestly.
	Delivered bool
	// DropLabel is the label of the polluted cluster that dropped or
	// misrouted the request, when Delivered is false.
	DropLabel hypercube.Label
}

// Lookup routes a request for key from the cluster responsible for
// `from` toward the cluster responsible for key, using greedy prefix
// routing over the live topology. Each intermediate polluted cluster
// drops the request (the targeted-attack payoff of Section I: polluted
// cores re-route or drop messages); the lookup is Delivered only if every
// hop, and the responsible cluster itself, is safe.
//
// Because splits and merges leave the label set a prefix partition rather
// than a regular hypercube, each greedy hop is resolved to the live
// cluster matching the ideal next label.
func (n *Network) Lookup(from, key identity.ID) (*LookupResult, error) {
	cur, err := n.findCluster(from)
	if err != nil {
		return nil, err
	}
	quorum := n.cfg.Params.Quorum()
	res := &LookupResult{Path: []hypercube.Label{cur.Label}}
	// The greedy walk strictly increases the matched prefix length each
	// hop, so it terminates within MaxLabelBits hops.
	for hop := 0; hop <= hypercube.MaxLabelBits; hop++ {
		if cur.Polluted(quorum) {
			res.DropLabel = cur.Label
			return res, nil
		}
		if cur.Label.Matches(key) {
			res.Delivered = true
			return res, nil
		}
		next, more, err := hypercube.NextHop(cur.Label, key)
		if err != nil {
			return nil, err
		}
		if !more {
			// Label matches the key prefix but Matches failed: the key is
			// shorter than the label. Treat as delivered to this cluster.
			res.Delivered = true
			return res, nil
		}
		// Resolve the ideal neighbor label against the live partition:
		// the responsible cluster is the one whose label prefixes the
		// key-corrected identifier.
		probe, err := probeID(next, key)
		if err != nil {
			return nil, err
		}
		cur, err = n.findCluster(probe)
		if err != nil {
			return nil, err
		}
		res.Path = append(res.Path, cur.Label)
	}
	return nil, fmt.Errorf("overlaynet: lookup did not converge from %v", res.Path[0])
}

// probeID builds an identifier that starts with label's bits and
// continues with key's bits, so findCluster resolves the live cluster
// covering the ideal next-hop region while still converging toward key.
func probeID(label hypercube.Label, key identity.ID) (identity.ID, error) {
	var digest [32]byte
	for i := 0; i < key.Bits(); i++ {
		bit, err := key.Bit(i)
		if err != nil {
			return identity.ID{}, err
		}
		if i < label.Length() {
			bit, err = label.Bit(i)
			if err != nil {
				return identity.ID{}, err
			}
		}
		if bit == 1 {
			digest[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	return identity.NewID(digest, key.Bits())
}

// LookupRedundant performs redundant routing (the defense of Castro et
// al. that the paper cites as complementary to induced churn): the
// request is launched from the source and from redundancy−1 additional
// random entry clusters; it succeeds if any copy is delivered. The
// responsible cluster itself remains a single point of failure — exactly
// the residual the paper's fault-containment bound (p(A^m_P) < 8%)
// addresses.
func (n *Network) LookupRedundant(from, key identity.ID, redundancy int) (bool, error) {
	if redundancy < 1 {
		return false, fmt.Errorf("overlaynet: redundancy must be ≥ 1, got %d", redundancy)
	}
	res, err := n.Lookup(from, key)
	if err != nil {
		return false, err
	}
	if res.Delivered {
		return true, nil
	}
	for i := 1; i < redundancy; i++ {
		alt, err := n.randomID()
		if err != nil {
			return false, err
		}
		res, err := n.Lookup(alt, key)
		if err != nil {
			return false, err
		}
		if res.Delivered {
			return true, nil
		}
	}
	return false, nil
}

// LookupAvailability measures the fraction of successful lookups between
// `trials` random (source, key) pairs drawn over the identifier space.
func (n *Network) LookupAvailability(trials int) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("overlaynet: trials must be ≥ 1, got %d", trials)
	}
	ok := 0
	for i := 0; i < trials; i++ {
		from, err := n.randomID()
		if err != nil {
			return 0, err
		}
		key, err := n.randomID()
		if err != nil {
			return 0, err
		}
		res, err := n.Lookup(from, key)
		if err != nil {
			return 0, err
		}
		if res.Delivered {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}

// randomID draws a uniform identifier.
func (n *Network) randomID() (identity.ID, error) {
	var digest [32]byte
	for i := range digest {
		digest[i] = byte(n.rng.Intn(256))
	}
	return identity.NewID(digest, n.cfg.IDBits)
}

// RandomID draws a uniform identifier from the overlay's id space, for
// workload generators that need lookup sources and keys.
func (n *Network) RandomID() (identity.ID, error) {
	return n.randomID()
}
