package overlaynet

import (
	"fmt"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/hypercube"
)

// Cluster is one vertex of the structured graph: a labelled set of peers
// split into a constant-size core (running the overlay operations) and a
// bounded spare set (buffering churn).
type Cluster struct {
	// Label is the cluster's prefix label; members' identifiers match it.
	Label hypercube.Label
	// Core members run routing and cluster operations; the protocol keeps
	// |Core| = C except transiently after a core underflow.
	Core []*Peer
	// Spare members absorb churn and are promoted by the maintenance.
	Spare []*Peer
	// MergePending marks a cluster whose spare set emptied while its
	// sibling had already split further, so the paper's merge could not
	// run (see DESIGN.md deviation notes).
	MergePending bool
	// SplitPending marks a cluster whose spare set reached ∆ while one
	// child half would have fallen below C members, so the split is
	// deferred until the membership rebalances (see DESIGN.md deviation
	// notes). While pending, the spare set may exceed ∆.
	SplitPending bool

	// slot is the cluster's index in the network's dense cluster slice;
	// maintained by addCluster/removeCluster.
	slot int32

	// Absorption tracking (Config.TrackAbsorption): per-cluster chain
	// ages counted in churn events targeting this cluster, mirroring the
	// analytic chain's time steps. track is set on bootstrap clusters and
	// cleared once the cluster reaches an absorbing condition (s = 0 or
	// s = ∆) or is consumed by a sibling's merge (censored).
	track        bool
	everPolluted bool
	safeAge      int64
	pollutedAge  int64
}

// SpareSize returns s.
func (c *Cluster) SpareSize() int { return len(c.Spare) }

// Size returns the total member count.
func (c *Cluster) Size() int { return len(c.Core) + len(c.Spare) }

// MaliciousCore returns x.
func (c *Cluster) MaliciousCore() int {
	n := 0
	for _, p := range c.Core {
		if p.Malicious {
			n++
		}
	}
	return n
}

// MaliciousSpare returns y.
func (c *Cluster) MaliciousSpare() int {
	n := 0
	for _, p := range c.Spare {
		if p.Malicious {
			n++
		}
	}
	return n
}

// Polluted reports whether strictly more than quorum core members are
// malicious.
func (c *Cluster) Polluted(quorum int) bool {
	return c.MaliciousCore() > quorum
}

// View builds the adversary's view of the cluster.
func (c *Cluster) View(coreSize, spareMax int) adversary.ClusterView {
	return adversary.ClusterView{
		SpareSize:      len(c.Spare),
		SpareMax:       spareMax,
		CoreSize:       coreSize,
		MaliciousCore:  c.MaliciousCore(),
		MaliciousSpare: c.MaliciousSpare(),
	}
}

// removeSpare removes the spare at index i.
func (c *Cluster) removeSpare(i int) (*Peer, error) {
	if i < 0 || i >= len(c.Spare) {
		return nil, fmt.Errorf("overlaynet: spare index %d outside [0,%d)", i, len(c.Spare))
	}
	p := c.Spare[i]
	c.Spare = append(c.Spare[:i], c.Spare[i+1:]...)
	return p, nil
}

// removeCore removes the core member at index i.
func (c *Cluster) removeCore(i int) (*Peer, error) {
	if i < 0 || i >= len(c.Core) {
		return nil, fmt.Errorf("overlaynet: core index %d outside [0,%d)", i, len(c.Core))
	}
	p := c.Core[i]
	c.Core = append(c.Core[:i], c.Core[i+1:]...)
	return p, nil
}

// indexOf locates a peer; role is "core" or "spare", -1 when absent.
func (c *Cluster) indexOf(p *Peer) (role string, idx int) {
	for i, m := range c.Core {
		if m == p {
			return "core", i
		}
	}
	for i, m := range c.Spare {
		if m == p {
			return "spare", i
		}
	}
	return "", -1
}

// firstSpare returns the index of the first spare matching want
// (malicious or honest), or -1.
func (c *Cluster) firstSpare(wantMalicious bool) int {
	for i, p := range c.Spare {
		if p.Malicious == wantMalicious {
			return i
		}
	}
	return -1
}

// String renders the cluster state compactly.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster[%v core=%d(x=%d) spare=%d(y=%d)]",
		c.Label, len(c.Core), c.MaliciousCore(), len(c.Spare), c.MaliciousSpare())
}
