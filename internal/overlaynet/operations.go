package overlaynet

import (
	"encoding/binary"
	"fmt"
	"sort"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/consensus"
	"targetedattacks/internal/hypercube"
)

// maintainCore restores the core to C members after a departure,
// implementing the core-view maintenance of the leave operation
// (Section IV): in a safe cluster, k−1 random survivors are pushed to the
// spare set and k random spares promoted (protocol_k); in a polluted
// cluster the adversary controls the agreement and promotes a valid
// malicious spare when it has one.
func (n *Network) maintainCore(cl *Cluster) error {
	quorum := n.cfg.Params.Quorum()
	if cl.Polluted(quorum) && n.adv.ControlsMaintenance() {
		return n.maintainCoreBiased(cl)
	}
	return n.maintainCoreRandom(cl)
}

// maintainCoreBiased is the adversary-controlled path.
func (n *Network) maintainCoreBiased(cl *Cluster) error {
	if len(cl.Spare) == 0 {
		n.metrics.CoreUnderflows++
		return nil
	}
	choice := n.adv.BiasMaintenance(cl.View(n.cfg.Params.C, n.cfg.Params.Delta))
	want := choice == adversary.PromoteMaliciousSpare
	idx := cl.firstSpare(want)
	if idx < 0 {
		idx = 0 // fall back to any spare
	}
	p, err := cl.removeSpare(idx)
	if err != nil {
		return err
	}
	cl.Core = append(cl.Core, p)
	return nil
}

// maintainCoreRandom is the honest randomized path of protocol_k.
func (n *Network) maintainCoreRandom(cl *Cluster) error {
	if len(cl.Spare) == 0 {
		n.metrics.CoreUnderflows++
		return nil
	}
	k := n.cfg.Params.K
	seed, err := n.agreementSeed(cl)
	if err != nil {
		return err
	}
	// Push k−1 random core survivors to the spare set.
	push := k - 1
	if push > len(cl.Core) {
		push = len(cl.Core)
	}
	pushIdx, err := consensus.SelectIndices(seed, len(cl.Core), push)
	if err != nil {
		return err
	}
	// Remove from highest index down so earlier indices stay valid.
	sort.Sort(sort.Reverse(sort.IntSlice(pushIdx)))
	for _, i := range pushIdx {
		p, err := cl.removeCore(i)
		if err != nil {
			return err
		}
		cl.Spare = append(cl.Spare, p)
	}
	// Promote random spares until the core is full again.
	need := n.cfg.Params.C - len(cl.Core)
	if need > len(cl.Spare) {
		n.metrics.CoreUnderflows++
		need = len(cl.Spare)
	}
	var promoteSeed [32]byte = seed
	promoteSeed[0] ^= 0xA5 // decorrelate the two draws
	promIdx, err := consensus.SelectIndices(promoteSeed, len(cl.Spare), need)
	if err != nil {
		return err
	}
	sort.Sort(sort.Reverse(sort.IntSlice(promIdx)))
	for _, i := range promIdx {
		p, err := cl.removeSpare(i)
		if err != nil {
			return err
		}
		cl.Core = append(cl.Core, p)
	}
	return nil
}

// promoteSpare promotes one spare into an underfull core (used to refill
// after an underflow once a join arrives). The promotion is random in a
// safe cluster and adversary-biased in a polluted one.
func (n *Network) promoteSpare(cl *Cluster) error {
	if len(cl.Spare) == 0 || len(cl.Core) >= n.cfg.Params.C {
		return nil
	}
	if cl.Polluted(n.cfg.Params.Quorum()) && n.adv.ControlsMaintenance() {
		return n.maintainCoreBiased(cl)
	}
	idx := n.rng.Intn(len(cl.Spare))
	p, err := cl.removeSpare(idx)
	if err != nil {
		return err
	}
	cl.Core = append(cl.Core, p)
	return nil
}

// agreementSeed obtains the shared random seed driving a maintenance
// decision: through a real Dolev-Strong seed agreement among core members
// when UseConsensus is set, or from the deterministic simulation RNG (the
// agreed-coin abstraction) otherwise.
func (n *Network) agreementSeed(cl *Cluster) ([32]byte, error) {
	var seed [32]byte
	if !n.cfg.UseConsensus {
		binary.BigEndian.PutUint64(seed[:8], n.rng.Uint64())
		return seed, nil
	}
	members := make([]*consensus.Member, len(cl.Core))
	contributions := make([][]byte, len(cl.Core))
	for i, p := range cl.Core {
		// In a safe cluster malicious members participate correctly to
		// stay covert (Section V: polluted clusters are detected by
		// deviation; safe-cluster minorities gain nothing by deviating).
		members[i] = &consensus.Member{Index: i, Identity: p.Identity, Behavior: consensus.Honest}
		var c [8]byte
		binary.BigEndian.PutUint64(c[:], n.rng.Uint64())
		contributions[i] = c[:]
	}
	f := n.cfg.Params.Quorum()
	seeds, err := consensus.AgreeOnSeed(members, contributions, f)
	if err != nil {
		return seed, err
	}
	n.metrics.ConsensusRuns++
	for i := range members {
		if s, ok := seeds[i]; ok {
			return s, nil
		}
	}
	return seed, fmt.Errorf("overlaynet: agreement produced no honest seed in %v", cl.Label)
}

// split implements the split operation of Section IV: the cluster divides
// into the two child labels; each child's core keeps the parent core
// members that match it, completed with randomly chosen spares. The split
// is deferred when a child would hold fewer than C members (deviation
// from the idealized model, recorded in Metrics.DeferredSplits).
func (n *Network) split(cl *Cluster) error {
	if cl.SpareSize() < n.cfg.Params.Delta {
		// A previously deferred split whose condition has lapsed.
		cl.SplitPending = false
		return nil
	}
	if !n.adv.WantsSplit(cl.View(n.cfg.Params.C, n.cfg.Params.Delta)) {
		// Rule 2 normally prevents a polluted cluster from ever reaching
		// the split condition; if it does (e.g. via expiry-driven churn),
		// the malicious quorum simply refuses to run the operation.
		cl.SplitPending = true
		n.metrics.DeferredSplits++
		return nil
	}
	c0, err := cl.Label.Child(0)
	if err != nil {
		return err
	}
	c1, err := cl.Label.Child(1)
	if err != nil {
		return err
	}
	children := [2]*Cluster{{Label: c0}, {Label: c1}}
	assign := func(p *Peer, isCore bool) error {
		bit, err := p.CurrentID.Bit(cl.Label.Length())
		if err != nil {
			return err
		}
		child := children[bit]
		if isCore && len(child.Core) < n.cfg.Params.C {
			child.Core = append(child.Core, p)
		} else {
			child.Spare = append(child.Spare, p)
		}
		return nil
	}
	for _, p := range cl.Core {
		if err := assign(p, true); err != nil {
			return err
		}
	}
	for _, p := range cl.Spare {
		if err := assign(p, false); err != nil {
			return err
		}
	}
	if children[0].Size() < n.cfg.Params.C || children[1].Size() < n.cfg.Params.C {
		cl.SplitPending = true
		n.metrics.DeferredSplits++
		return nil
	}
	cl.SplitPending = false
	// Complete child cores with randomly chosen spares (Byzantine
	// agreement among the parent core decides the random choice).
	for _, child := range children {
		for len(child.Core) < n.cfg.Params.C {
			seed, err := n.agreementSeed(cl)
			if err != nil {
				return err
			}
			pick, err := consensus.SelectIndices(seed, len(child.Spare), 1)
			if err != nil {
				return err
			}
			p, err := child.removeSpare(pick[0])
			if err != nil {
				return err
			}
			child.Core = append(child.Core, p)
		}
	}
	n.removeCluster(cl)
	n.addCluster(children[0])
	n.addCluster(children[1])
	n.metrics.Splits++
	// A child may itself satisfy the split condition already.
	for _, child := range children {
		if child.SpareSize() >= n.cfg.Params.Delta {
			if err := n.split(child); err != nil {
				return err
			}
		}
	}
	return nil
}

// tryMerge implements the merge operation of Section IV: a cluster whose
// spare set emptied merges with its sibling; the merged cluster keeps the
// sibling's core and receives the merging core as spares. When the
// sibling has split further (no leaf with the sibling label), the merge
// is deferred and the cluster keeps operating with an empty spare set
// (deviation recorded in Metrics.DeferredMerges).
func (n *Network) tryMerge(cl *Cluster) error {
	if cl.Label.Length() == 0 {
		return nil // the root cluster has nobody to merge with
	}
	sibLabel, err := cl.Label.Sibling()
	if err != nil {
		return err
	}
	sibSlot, ok := n.byLabel[sibLabel]
	if !ok {
		cl.MergePending = true
		n.metrics.DeferredMerges++
		return nil
	}
	sib := n.clusters[sibSlot]
	// The sibling is consumed before reaching its own absorbing
	// condition: its trajectory is censored, not a sample.
	n.censor(sib)
	parent, err := cl.Label.Parent()
	if err != nil {
		return err
	}
	merged := &Cluster{
		Label: parent,
		// Core members of the surviving sibling keep their status.
		Core: append([]*Peer(nil), sib.Core...),
		// The merging cluster's members are pushed to the spare set.
		Spare: append(append([]*Peer(nil), sib.Spare...), append(cl.Core, cl.Spare...)...),
	}
	n.removeCluster(cl)
	n.removeCluster(sib)
	n.addCluster(merged)
	n.metrics.Merges++
	// The union may immediately satisfy the split condition.
	if merged.SpareSize() >= n.cfg.Params.Delta {
		return n.split(merged)
	}
	return nil
}

// scheduleExpiry arms the Property 1 expiry of p's current incarnation
// (RealTime mode): at expiry the peer is cut from its cluster and rejoins
// with its next incarnation identifier. The typed event carries the
// peer's registry slot; releasePeer cancels it, so a fired expiry always
// finds its peer live.
func (n *Network) scheduleExpiry(p *Peer) {
	expiry := p.ExpiresAt(n.cfg.Lifetime)
	if expiry < n.engine.Now() {
		expiry = n.engine.Now()
	}
	id, err := n.engine.ScheduleAt(expiry, n.expiryKind, uint64(p.slot))
	if err != nil {
		if n.asyncErr == nil {
			n.asyncErr = err
		}
		return
	}
	p.expiry = id
}

// handleExpiry is the des handler behind scheduleExpiry.
func (n *Network) handleExpiry(now float64, payload uint64) {
	p := n.peers[payload]
	if p == nil {
		// Unreachable: releasePeer cancels the pending expiry before
		// freeing the slot. Kept as a guard against future reorderings.
		return
	}
	p.expiry = 0
	if err := n.expirePeer(p); err != nil && n.asyncErr == nil {
		// The engine has no error channel; surface at the next Run.
		n.asyncErr = err
	}
}

// expirePeer enforces Property 1: the peer's identifier is no longer
// valid for its cluster, so its neighbors cut the connection; the peer
// refreshes its incarnation and rejoins at the matching cluster.
func (n *Network) expirePeer(p *Peer) error {
	cl, err := n.findCluster(p.CurrentID)
	if err != nil {
		return err
	}
	if role, _ := cl.indexOf(p); role == "" {
		// The peer already left (e.g. natural churn); nothing to cut.
		return nil
	}
	n.metrics.ExpiryLeaves++
	if err := n.processDeparture(cl, p); err != nil {
		return err
	}
	p.Advance()
	accepted, err := n.joinPeer(p, false)
	if err != nil {
		return err
	}
	if !accepted {
		// Rule 2 discarded the rejoin: the peer leaves the overlay.
		n.releasePeer(p)
	}
	return nil
}

// Metrics returns the activity counters.
func (n *Network) Metrics() Metrics { return n.metrics }

// Config returns the effective configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the simulated time.
func (n *Network) Now() float64 { return n.engine.Now() }

// Snapshot summarizes the current overlay state.
func (n *Network) Snapshot() Snapshot {
	s := Snapshot{Time: n.engine.Now(), Clusters: len(n.clusters)}
	quorum := n.cfg.Params.Quorum()
	s.MinLabelBits = hypercube.MaxLabelBits + 1
	for _, cl := range n.clusters {
		if cl.Polluted(quorum) {
			s.PollutedClusters++
		}
		s.Peers += cl.Size()
		s.MaliciousPeers += cl.MaliciousCore() + cl.MaliciousSpare()
		if l := cl.Label.Length(); l < s.MinLabelBits {
			s.MinLabelBits = l
		}
		if l := cl.Label.Length(); l > s.MaxLabelBits {
			s.MaxLabelBits = l
		}
	}
	if s.Clusters == 0 {
		s.MinLabelBits = 0
	}
	if s.Clusters > 0 {
		s.PollutedFraction = float64(s.PollutedClusters) / float64(s.Clusters)
	}
	return s
}

// Clusters returns the clusters sorted by label for deterministic
// inspection. The returned slice is fresh; the clusters are live.
func (n *Network) Clusters() []*Cluster {
	out := append([]*Cluster(nil), n.clusters...)
	sort.Slice(out, func(i, j int) bool { return out[i].Label.String() < out[j].Label.String() })
	return out
}

// addCluster interns the cluster at the end of the dense slice.
func (n *Network) addCluster(cl *Cluster) {
	cl.slot = int32(len(n.clusters))
	n.clusters = append(n.clusters, cl)
	n.byLabel[cl.Label] = cl.slot
}

// removeCluster swap-deletes the cluster from the dense slice in O(1).
func (n *Network) removeCluster(cl *Cluster) {
	last := len(n.clusters) - 1
	moved := n.clusters[last]
	n.clusters[cl.slot] = moved
	moved.slot = cl.slot
	n.clusters[last] = nil
	n.clusters = n.clusters[:last]
	delete(n.byLabel, cl.Label)
	if moved != cl {
		n.byLabel[moved.Label] = moved.slot
	}
}
