package overlaynet

import (
	"fmt"
	"math/rand"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/churn"
	"targetedattacks/internal/combin"
	"targetedattacks/internal/core"
	"targetedattacks/internal/des"
	"targetedattacks/internal/hypercube"
	"targetedattacks/internal/identity"
	"targetedattacks/internal/stats"
)

// Mode selects the churn fidelity of the simulation.
type Mode int

// Simulation modes.
const (
	// ModelFidelity mirrors the analytic chain: identifier expiry is
	// folded into leave events through Bernoulli(d^count) draws, exactly
	// as in the Figure 2 transition tree.
	ModelFidelity Mode = iota
	// RealTime schedules explicit incarnation-expiry events on the
	// discrete-event engine; peers leave and rejoin when their
	// identifiers expire (Property 1 enforced literally).
	RealTime
)

// MaxInitialLabelBits bounds the bootstrap topology at 2^20 clusters —
// comfortably past the 10^6-peer regime at the paper's C = ∆ = 7.
const MaxInitialLabelBits = 20

// Config parameterizes a Network.
type Config struct {
	// Params carries C, ∆, µ, d, k, ν.
	Params core.Params
	// IDBits is the identifier width m (default 128).
	IDBits int
	// InitialLabelBits sizes the bootstrap topology at 2^bits clusters
	// (default 3). A negative value selects a single root cluster
	// (2^0 = 1), since 0 is indistinguishable from unset.
	InitialLabelBits int
	// Lifetime is the incarnation lifetime L; 0 derives it from Params.D
	// via L = 6.65·ln2/(1−d).
	Lifetime float64
	// GraceWindow is the clock-skew tolerance W (default 0: perfectly
	// synchronized simulation clocks).
	GraceWindow float64
	// EventRate is the expected number of churn events per time unit
	// (default 1).
	EventRate float64
	// Mode selects ModelFidelity (default) or RealTime.
	Mode Mode
	// UseConsensus runs a real Byzantine agreement (Dolev-Strong seed
	// agreement) for every randomized maintenance decision instead of the
	// agreed-coin abstraction. Expensive; intended for demonstrations and
	// small runs.
	UseConsensus bool
	// FastIdentity derives peer identifiers from a seeded hash instead
	// of issuing an ed25519 certificate per peer. Identifier
	// distribution and the Property 1 hash chain are unchanged; only
	// the certificate (and so UseConsensus, which signs with it) is
	// unavailable. Required in practice for 10^5+ peer populations.
	FastIdentity bool
	// Strategy selects the adversary's playbook (default: the paper's
	// full Section V strategy).
	Strategy adversary.Strategy
	// StationaryPopulation re-balances the join share of the workload
	// around the bootstrap population with a proportional controller.
	// Without it, the raw 50/50 event split of the paper's model slowly
	// drains the overlay (Rule 2 discards joins while honest leaves
	// always succeed) until everything merges into the root cluster.
	StationaryPopulation bool
	// TrackAbsorption records, for every bootstrap cluster, the chain
	// ages (events spent safe and polluted) until the cluster first
	// reaches an absorbing condition of the analytic model (s = 0 or
	// s = ∆), feeding the analytic-vs-simulation cross-validation. Ages
	// count churn events targeting the cluster, matching the chain's
	// time unit, so the statistics are meaningful in ModelFidelity mode.
	TrackAbsorption bool
	// StopOnAbsorption ends Run early once every tracked cluster has
	// absorbed (requires TrackAbsorption). With a single bootstrap
	// cluster this turns Run into one absorption trajectory of the
	// analytic chain.
	StopOnAbsorption bool
	// Seed makes the simulation deterministic.
	Seed int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() (Config, error) {
	if err := c.Params.Validate(); err != nil {
		return c, fmt.Errorf("overlaynet: %w", err)
	}
	if c.IDBits == 0 {
		c.IDBits = 128
	}
	if c.IDBits < 8 || c.IDBits > identity.MaxIDBits {
		return c, fmt.Errorf("overlaynet: IDBits %d outside [8,%d]", c.IDBits, identity.MaxIDBits)
	}
	if c.InitialLabelBits == 0 {
		c.InitialLabelBits = 3
	} else if c.InitialLabelBits < 0 {
		c.InitialLabelBits = 0
	}
	if c.InitialLabelBits > MaxInitialLabelBits {
		return c, fmt.Errorf("overlaynet: InitialLabelBits %d outside [0,%d]", c.InitialLabelBits, MaxInitialLabelBits)
	}
	if c.Lifetime == 0 {
		if c.Params.D > 0 {
			l, err := combin.LifetimeFromSurvival(c.Params.D)
			if err != nil {
				return c, err
			}
			c.Lifetime = l
		} else {
			c.Lifetime = 1 // d = 0: identifiers expire every event on average
		}
	}
	if c.Lifetime <= 0 {
		return c, fmt.Errorf("overlaynet: non-positive lifetime %v", c.Lifetime)
	}
	if c.GraceWindow < 0 {
		return c, fmt.Errorf("overlaynet: negative grace window %v", c.GraceWindow)
	}
	if c.EventRate == 0 {
		c.EventRate = 1
	}
	if c.EventRate <= 0 {
		return c, fmt.Errorf("overlaynet: non-positive event rate %v", c.EventRate)
	}
	if c.FastIdentity && c.UseConsensus {
		return c, fmt.Errorf("overlaynet: UseConsensus requires certificates; disable FastIdentity")
	}
	if c.StopOnAbsorption && !c.TrackAbsorption {
		return c, fmt.Errorf("overlaynet: StopOnAbsorption requires TrackAbsorption")
	}
	return c, nil
}

// LabelBitsForPopulation returns the InitialLabelBits whose bootstrap
// population (2^bits clusters of C+⌊∆/2⌋ members) comes closest to the
// requested peer count, clamped to [0, MaxInitialLabelBits].
func LabelBitsForPopulation(peers, c, delta int) int {
	per := c + delta/2
	if per < 1 {
		per = 1
	}
	bits := 0
	for bits < MaxInitialLabelBits {
		here := (1 << bits) * per
		next := (1 << (bits + 1)) * per
		if peers-here <= next-peers {
			break
		}
		bits++
	}
	return bits
}

// Metrics counts protocol activity.
type Metrics struct {
	Events          int64 // churn events processed
	Joins           int64 // successful join operations
	DiscardedJoins  int64 // joins suppressed by Rule 2
	Leaves          int64 // completed leave operations
	RefusedLeaves   int64 // leave events refused by unexpired malicious peers
	VoluntaryLeaves int64 // Rule 1 departures
	ExpiryLeaves    int64 // Property 1 forced departures (RealTime mode)
	Splits          int64
	Merges          int64
	DeferredSplits  int64 // split condition met but a child would underflow
	DeferredMerges  int64 // merge condition met but sibling not a leaf
	CoreUnderflows  int64 // core left below C with an empty spare set
	ConsensusRuns   int64 // Byzantine agreements executed (UseConsensus)
}

// Snapshot is an instantaneous view of the overlay.
type Snapshot struct {
	Time             float64
	Clusters         int
	PollutedClusters int
	Peers            int
	MaliciousPeers   int
	MinLabelBits     int
	MaxLabelBits     int
	PollutedFraction float64
}

// AbsorptionReport aggregates the per-cluster absorption trajectories
// recorded under Config.TrackAbsorption: each tracked (bootstrap)
// cluster contributes one sample when its spare set first reaches an
// absorbing condition of the analytic chain — s = 0 (merge) or s = ∆
// (split) — classified safe or polluted by its core at that instant.
type AbsorptionReport struct {
	// SafeTime and PollutedTime are the per-cluster chain ages (events
	// targeting the cluster spent in safe resp. polluted states) over
	// the absorbed clusters; SafeTime.Mean() estimates the chain's
	// E(T_S) and PollutedTime.Mean() its E(T_P).
	SafeTime     stats.Running
	PollutedTime stats.Running
	// Absorbing-class counts over the absorbed clusters.
	SafeMerge, SafeSplit, PollutedMerge, PollutedSplit int64
	// EverPolluted counts absorbed clusters that were polluted at any
	// point of their trajectory.
	EverPolluted int64
	// Censored counts tracked clusters consumed by a sibling's merge
	// before reaching their own absorbing condition.
	Censored int64
	// Tracking counts clusters still tracked (not yet absorbed).
	Tracking int
}

// Absorbed returns the number of completed absorption samples.
func (r AbsorptionReport) Absorbed() int64 {
	return r.SafeMerge + r.SafeSplit + r.PollutedMerge + r.PollutedSplit
}

// Network is the running overlay.
type Network struct {
	cfg    Config
	ca     *identity.CA
	engine *des.Engine
	rng    *rand.Rand
	adv    *adversary.Adversary
	gen    *churn.Uniform

	// clusters is the dense, slot-indexed cluster set; byLabel interns
	// labels to slots so the operation path never hashes a string.
	clusters []*Cluster
	byLabel  map[hypercube.Label]int32

	// peers is the slot-indexed registry of live peers: expiry events
	// carry the slot as their payload. Records of departed peers are
	// recycled through pool.
	peers    []*Peer
	peerFree []int32
	pool     []*Peer

	expiryKind des.Kind

	metrics  Metrics
	peerSeq  int64
	asyncErr error // first error raised inside a scheduled expiry event
	// targetPop is the bootstrap population targeted by the
	// StationaryPopulation controller.
	targetPop int
	// population tracks the live member count incrementally.
	population int

	// Absorption tracking aggregates (Config.TrackAbsorption).
	absorb      AbsorptionReport
	trackedLive int
}

// New bootstraps an overlay of 2^InitialLabelBits clusters, each with a
// full core of C peers and about ∆/2 spares, malicious with probability µ.
func New(cfg Config) (*Network, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ca, err := identity.NewCA("overlay-ca", cfg.Seed)
	if err != nil {
		return nil, err
	}
	adv, err := adversary.NewStrategic(cfg.Params, cfg.Seed+1, cfg.Strategy)
	if err != nil {
		return nil, err
	}
	gen, err := churn.NewUniform(cfg.Seed+2, cfg.EventRate, cfg.Params.Mu, 0.5)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:     cfg,
		ca:      ca,
		engine:  des.NewEngine(),
		rng:     rand.New(rand.NewSource(cfg.Seed + 3)),
		adv:     adv,
		byLabel: make(map[hypercube.Label]int32),
		gen:     gen,
	}
	kind, err := n.engine.RegisterKind(n.handleExpiry)
	if err != nil {
		return nil, err
	}
	n.expiryKind = kind
	if err := n.bootstrap(); err != nil {
		return nil, err
	}
	return n, nil
}

// bootstrap builds the initial balanced topology: each of the
// 2^InitialLabelBits clusters is populated directly with C core members
// and ⌊∆/2⌋ spares whose identifiers are forced into the cluster's
// prefix region (uniform beyond the prefix). This is distributionally
// equivalent to the rejection sampling of earlier versions conditioned
// on the balanced fill, and it is what makes 10^6-peer bootstraps
// feasible: rejection over 2^20 labels is a coupon-collector blowup.
func (n *Network) bootstrap() error {
	labels := []hypercube.Label{hypercube.RootLabel()}
	for b := 0; b < n.cfg.InitialLabelBits; b++ {
		next := make([]hypercube.Label, 0, 2*len(labels))
		for _, l := range labels {
			c0, err := l.Child(0)
			if err != nil {
				return err
			}
			c1, err := l.Child(1)
			if err != nil {
				return err
			}
			next = append(next, c0, c1)
		}
		labels = next
	}
	target := n.cfg.Params.C + n.cfg.Params.Delta/2
	n.clusters = make([]*Cluster, 0, len(labels))
	for _, l := range labels {
		cl := &Cluster{Label: l}
		n.addCluster(cl)
		if n.cfg.TrackAbsorption {
			cl.track = true
			n.trackedLive++
		}
		cl.Core = make([]*Peer, 0, n.cfg.Params.C)
		cl.Spare = make([]*Peer, 0, target-n.cfg.Params.C)
		for i := 0; i < target; i++ {
			p, err := n.newPeer(n.rng.Float64() < n.cfg.Params.Mu, n.rng.Int63())
			if err != nil {
				return err
			}
			forced, err := probeID(l, p.CurrentID)
			if err != nil {
				return err
			}
			p.CurrentID = forced
			if i < n.cfg.Params.C {
				cl.Core = append(cl.Core, p)
			} else {
				cl.Spare = append(cl.Spare, p)
			}
			if n.cfg.Mode == RealTime {
				n.scheduleExpiry(p)
			}
		}
	}
	n.targetPop = n.population
	return nil
}

// Population returns the total number of overlay members.
func (n *Network) Population() int { return n.population }

// newPeer registers a fresh peer. In RealTime mode the certificate
// creation time is backdated uniformly within one lifetime so
// incarnation expiries are staggered. Records of departed peers are
// recycled, so steady-state churn allocates no new peers.
func (n *Network) newPeer(malicious bool, seed int64) (*Peer, error) {
	n.peerSeq++
	t0 := n.engine.Now()
	if n.cfg.Mode == RealTime {
		// Backdating staggers incarnation expiries; a negative t0 models
		// a certificate issued before the simulation started.
		t0 -= n.rng.Float64() * n.cfg.Lifetime
	}
	var p *Peer
	if k := len(n.pool); k > 0 {
		p = n.pool[k-1]
		n.pool = n.pool[:k-1]
		*p = Peer{}
	} else {
		p = &Peer{}
	}
	p.Seq = n.peerSeq
	p.Malicious = malicious
	p.t0 = t0
	if n.cfg.FastIdentity {
		id0, err := fastInitialID(seed, n.cfg.IDBits)
		if err != nil {
			return nil, err
		}
		p.id0 = id0
	} else {
		idn, err := identity.NewIdentity(n.ca, fmt.Sprintf("peer-%d", n.peerSeq), t0, n.cfg.IDBits, seed)
		if err != nil {
			return nil, err
		}
		p.Identity = idn
		p.id0 = idn.InitialID()
	}
	if err := p.Refresh(n.engine.Now(), n.cfg.Lifetime); err != nil {
		return nil, err
	}
	if k := len(n.peerFree); k > 0 {
		p.slot = n.peerFree[k-1]
		n.peerFree = n.peerFree[:k-1]
		n.peers[p.slot] = p
	} else {
		p.slot = int32(len(n.peers))
		n.peers = append(n.peers, p)
	}
	n.population++
	return p, nil
}

// releasePeer retires a departed peer: its pending expiry (if any) is
// canceled, its registry slot freed, and its record pooled for reuse.
func (n *Network) releasePeer(p *Peer) {
	if p.expiry != 0 {
		n.engine.Cancel(p.expiry)
		p.expiry = 0
	}
	n.peers[p.slot] = nil
	n.peerFree = append(n.peerFree, p.slot)
	n.pool = append(n.pool, p)
	n.population--
}

// findCluster locates the unique cluster whose label prefixes id by
// walking prefixes of increasing length through the interned label
// index.
func (n *Network) findCluster(id identity.ID) (*Cluster, error) {
	l := hypercube.RootLabel()
	for depth := 0; depth <= hypercube.MaxLabelBits; depth++ {
		if slot, ok := n.byLabel[l]; ok {
			cl := n.clusters[slot]
			if !cl.Label.Matches(id) {
				return nil, fmt.Errorf("overlaynet: cluster %v does not match id %v", cl.Label, id)
			}
			return cl, nil
		}
		if depth == hypercube.MaxLabelBits {
			break
		}
		bit, err := id.Bit(depth)
		if err != nil {
			return nil, err
		}
		l, err = l.Child(bit)
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("overlaynet: no cluster matches id %v", id)
}

// Run processes the next `events` churn events. In RealTime mode,
// identifier expiries interleave at their scheduled instants. With
// StopOnAbsorption, Run returns as soon as every tracked cluster has
// absorbed.
func (n *Network) Run(events int) error {
	for i := 0; i < events; i++ {
		if n.cfg.StopOnAbsorption && n.trackedLive == 0 {
			return nil
		}
		ev, err := n.gen.Next()
		if err != nil {
			return err
		}
		if n.cfg.Mode == RealTime {
			// Let scheduled expiries up to the event time fire first.
			if _, err := n.engine.RunUntil(ev.Time); err != nil {
				return err
			}
		}
		n.metrics.Events++
		kind := ev.Kind
		if n.cfg.StationaryPopulation {
			kind = n.rebalancedKind(ev)
		}
		switch kind {
		case churn.Join:
			malicious := ev.Malicious
			if ev.Kind != churn.Join {
				// A rebalanced leave-turned-join needs a fresh draw.
				malicious = n.rng.Float64() < n.cfg.Params.Mu
			}
			err = n.handleJoin(malicious, ev.PeerSeed)
		case churn.Leave:
			err = n.handleLeave()
		}
		if err != nil {
			return fmt.Errorf("overlaynet: event %d (%v): %w", ev.Seq, ev.Kind, err)
		}
		if n.asyncErr != nil {
			err := n.asyncErr
			n.asyncErr = nil
			return fmt.Errorf("overlaynet: expiry event: %w", err)
		}
	}
	return nil
}

// rebalancedKind redraws the event kind with a join probability steered
// toward the bootstrap population: p = 0.5 + 0.4·(target−pop)/target,
// clamped to [0.1, 0.9]. It keeps the overlay stationary despite the
// join/leave asymmetries the adversary introduces (Rule 2 discards,
// refused leaves).
func (n *Network) rebalancedKind(ev churn.Event) churn.Kind {
	pop := n.population
	p := 0.5
	if n.targetPop > 0 {
		p += 0.4 * float64(n.targetPop-pop) / float64(n.targetPop)
	}
	if p < 0.1 {
		p = 0.1
	}
	if p > 0.9 {
		p = 0.9
	}
	if n.rng.Float64() < p {
		return churn.Join
	}
	return churn.Leave
}

// handleJoin implements the join operation of Section IV plus Rule 2.
func (n *Network) handleJoin(malicious bool, seed int64) error {
	p, err := n.newPeer(malicious, seed)
	if err != nil {
		return err
	}
	accepted, err := n.joinPeer(p, true)
	if err != nil {
		return err
	}
	if !accepted {
		n.releasePeer(p)
	}
	return nil
}

// joinPeer routes p to its cluster and inserts it into the spare set.
// It reports whether the cluster accepted the peer (Rule 2 may discard
// it). churnEvent marks joins driven by the churn workload, which tick
// the target cluster's chain age.
func (n *Network) joinPeer(p *Peer, churnEvent bool) (bool, error) {
	cl, err := n.findCluster(p.CurrentID)
	if err != nil {
		return false, err
	}
	if churnEvent {
		n.tick(cl)
	}
	view := cl.View(n.cfg.Params.C, n.cfg.Params.Delta)
	if n.adv.ShouldDiscardJoin(view, p.Malicious) {
		n.metrics.DiscardedJoins++
		return false, nil
	}
	cl.Spare = append(cl.Spare, p)
	n.metrics.Joins++
	if cl.MergePending && cl.SpareSize() > 0 {
		cl.MergePending = false
	}
	if n.cfg.Mode == RealTime {
		n.scheduleExpiry(p)
	}
	// Refill an underflowed core immediately.
	if len(cl.Core) < n.cfg.Params.C {
		if err := n.promoteSpare(cl); err != nil {
			return true, err
		}
	}
	n.observe(cl)
	if cl.SpareSize() >= n.cfg.Params.Delta || cl.SplitPending {
		return true, n.split(cl)
	}
	return true, nil
}

// handleLeave implements the leave operation of Section IV: the event
// targets a uniform member of a uniform cluster; honest peers comply,
// malicious peers refuse unless Property 1 (expiry) forces them or
// Rule 1 makes the departure profitable.
func (n *Network) handleLeave() error {
	cl := n.randomCluster()
	if cl == nil {
		return fmt.Errorf("overlaynet: no clusters")
	}
	total := cl.Size()
	if total == 0 {
		return nil
	}
	n.tick(cl)
	idx := n.rng.Intn(total)
	fromCore := idx < len(cl.Core)
	var p *Peer
	if fromCore {
		p = cl.Core[idx]
	} else {
		p = cl.Spare[idx-len(cl.Core)]
	}
	if !p.Malicious {
		n.metrics.Leaves++
		return n.departAndRelease(cl, p)
	}
	// Malicious member targeted: expired?
	expired := false
	switch n.cfg.Mode {
	case ModelFidelity:
		count := cl.MaliciousSpare()
		if fromCore {
			count = cl.MaliciousCore()
		}
		expired = !n.adv.SampleSurvival(count)
	case RealTime:
		expired = p.ExpiresAt(n.cfg.Lifetime) <= n.engine.Now()
	}
	if n.adv.CompliesWithLeave(expired) {
		n.metrics.Leaves++
		return n.departAndRelease(cl, p)
	}
	// Rule 1: a safe cluster's colluding core may still profit from a
	// voluntary departure.
	if fromCore {
		view := cl.View(n.cfg.Params.C, n.cfg.Params.Delta)
		fires, err := n.adv.ShouldTriggerVoluntaryLeave(view)
		if err != nil {
			return err
		}
		if fires {
			n.metrics.VoluntaryLeaves++
			n.metrics.Leaves++
			return n.departAndRelease(cl, p)
		}
	}
	n.metrics.RefusedLeaves++
	return nil
}

// departAndRelease runs a churn departure and retires the peer record.
func (n *Network) departAndRelease(cl *Cluster, p *Peer) error {
	if err := n.processDeparture(cl, p); err != nil {
		return err
	}
	n.releasePeer(p)
	return nil
}

// processDeparture removes p from its cluster and runs the follow-up
// operation (spare shrink or core maintenance), then checks the merge
// condition. The peer record stays live (expiry rejoins reuse it).
func (n *Network) processDeparture(cl *Cluster, p *Peer) error {
	role, idx := cl.indexOf(p)
	switch role {
	case "spare":
		if _, err := cl.removeSpare(idx); err != nil {
			return err
		}
	case "core":
		if _, err := cl.removeCore(idx); err != nil {
			return err
		}
		if err := n.maintainCore(cl); err != nil {
			return err
		}
	default:
		return fmt.Errorf("overlaynet: %s not in %v", p.Name(), cl.Label)
	}
	n.observe(cl)
	if cl.SpareSize() == 0 {
		return n.tryMerge(cl)
	}
	return nil
}

// randomCluster picks a uniform cluster (join/leave events are uniform
// over clusters, Section III-A) from the dense slot index in O(1).
func (n *Network) randomCluster() *Cluster {
	if len(n.clusters) == 0 {
		return nil
	}
	return n.clusters[n.rng.Intn(len(n.clusters))]
}

// tick advances a tracked cluster's chain age by one churn event,
// classified by the cluster's state before the event takes effect —
// matching the analytic chain, which counts transitions out of a state.
func (n *Network) tick(cl *Cluster) {
	if !cl.track {
		return
	}
	if cl.Polluted(n.cfg.Params.Quorum()) {
		cl.pollutedAge++
		cl.everPolluted = true
	} else {
		cl.safeAge++
	}
}

// observe checks a tracked cluster against the analytic chain's
// absorbing conditions after an operation changed its membership, and
// records the absorption sample the first time one holds.
func (n *Network) observe(cl *Cluster) {
	if !cl.track {
		return
	}
	polluted := cl.Polluted(n.cfg.Params.Quorum())
	if polluted {
		cl.everPolluted = true
	}
	s := cl.SpareSize()
	if s != 0 && s < n.cfg.Params.Delta {
		return
	}
	cl.track = false
	n.trackedLive--
	n.absorb.SafeTime.Observe(float64(cl.safeAge))
	n.absorb.PollutedTime.Observe(float64(cl.pollutedAge))
	if cl.everPolluted {
		n.absorb.EverPolluted++
	}
	switch {
	case s == 0 && polluted:
		n.absorb.PollutedMerge++
	case s == 0:
		n.absorb.SafeMerge++
	case polluted:
		n.absorb.PollutedSplit++
	default:
		n.absorb.SafeSplit++
	}
}

// censor stops tracking a cluster consumed by its sibling's merge
// before reaching its own absorbing condition.
func (n *Network) censor(cl *Cluster) {
	if !cl.track {
		return
	}
	cl.track = false
	n.trackedLive--
	n.absorb.Censored++
}

// Absorption returns the absorption statistics recorded so far under
// Config.TrackAbsorption.
func (n *Network) Absorption() AbsorptionReport {
	r := n.absorb
	r.Tracking = n.trackedLive
	return r
}
