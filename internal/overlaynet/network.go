package overlaynet

import (
	"fmt"
	"math/rand"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/churn"
	"targetedattacks/internal/combin"
	"targetedattacks/internal/core"
	"targetedattacks/internal/des"
	"targetedattacks/internal/hypercube"
	"targetedattacks/internal/identity"
)

// Mode selects the churn fidelity of the simulation.
type Mode int

// Simulation modes.
const (
	// ModelFidelity mirrors the analytic chain: identifier expiry is
	// folded into leave events through Bernoulli(d^count) draws, exactly
	// as in the Figure 2 transition tree.
	ModelFidelity Mode = iota
	// RealTime schedules explicit incarnation-expiry events on the
	// discrete-event engine; peers leave and rejoin when their
	// identifiers expire (Property 1 enforced literally).
	RealTime
)

// Config parameterizes a Network.
type Config struct {
	// Params carries C, ∆, µ, d, k, ν.
	Params core.Params
	// IDBits is the identifier width m (default 128).
	IDBits int
	// InitialLabelBits sizes the bootstrap topology at 2^bits clusters
	// (default 3).
	InitialLabelBits int
	// Lifetime is the incarnation lifetime L; 0 derives it from Params.D
	// via L = 6.65·ln2/(1−d).
	Lifetime float64
	// GraceWindow is the clock-skew tolerance W (default 0: perfectly
	// synchronized simulation clocks).
	GraceWindow float64
	// EventRate is the expected number of churn events per time unit
	// (default 1).
	EventRate float64
	// Mode selects ModelFidelity (default) or RealTime.
	Mode Mode
	// UseConsensus runs a real Byzantine agreement (Dolev-Strong seed
	// agreement) for every randomized maintenance decision instead of the
	// agreed-coin abstraction. Expensive; intended for demonstrations and
	// small runs.
	UseConsensus bool
	// StationaryPopulation re-balances the join share of the workload
	// around the bootstrap population with a proportional controller.
	// Without it, the raw 50/50 event split of the paper's model slowly
	// drains the overlay (Rule 2 discards joins while honest leaves
	// always succeed) until everything merges into the root cluster.
	StationaryPopulation bool
	// Seed makes the simulation deterministic.
	Seed int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() (Config, error) {
	if err := c.Params.Validate(); err != nil {
		return c, fmt.Errorf("overlaynet: %w", err)
	}
	if c.IDBits == 0 {
		c.IDBits = 128
	}
	if c.IDBits < 8 || c.IDBits > identity.MaxIDBits {
		return c, fmt.Errorf("overlaynet: IDBits %d outside [8,%d]", c.IDBits, identity.MaxIDBits)
	}
	if c.InitialLabelBits == 0 {
		c.InitialLabelBits = 3
	}
	if c.InitialLabelBits < 0 || c.InitialLabelBits > 16 {
		return c, fmt.Errorf("overlaynet: InitialLabelBits %d outside [0,16]", c.InitialLabelBits)
	}
	if c.Lifetime == 0 {
		if c.Params.D > 0 {
			l, err := combin.LifetimeFromSurvival(c.Params.D)
			if err != nil {
				return c, err
			}
			c.Lifetime = l
		} else {
			c.Lifetime = 1 // d = 0: identifiers expire every event on average
		}
	}
	if c.Lifetime <= 0 {
		return c, fmt.Errorf("overlaynet: non-positive lifetime %v", c.Lifetime)
	}
	if c.GraceWindow < 0 {
		return c, fmt.Errorf("overlaynet: negative grace window %v", c.GraceWindow)
	}
	if c.EventRate == 0 {
		c.EventRate = 1
	}
	if c.EventRate <= 0 {
		return c, fmt.Errorf("overlaynet: non-positive event rate %v", c.EventRate)
	}
	return c, nil
}

// Metrics counts protocol activity.
type Metrics struct {
	Events          int64 // churn events processed
	Joins           int64 // successful join operations
	DiscardedJoins  int64 // joins suppressed by Rule 2
	Leaves          int64 // completed leave operations
	RefusedLeaves   int64 // leave events refused by unexpired malicious peers
	VoluntaryLeaves int64 // Rule 1 departures
	ExpiryLeaves    int64 // Property 1 forced departures (RealTime mode)
	Splits          int64
	Merges          int64
	DeferredSplits  int64 // split condition met but a child would underflow
	DeferredMerges  int64 // merge condition met but sibling not a leaf
	CoreUnderflows  int64 // core left below C with an empty spare set
	ConsensusRuns   int64 // Byzantine agreements executed (UseConsensus)
}

// Snapshot is an instantaneous view of the overlay.
type Snapshot struct {
	Time             float64
	Clusters         int
	PollutedClusters int
	Peers            int
	MaliciousPeers   int
	MinLabelBits     int
	MaxLabelBits     int
	PollutedFraction float64
}

// Network is the running overlay.
type Network struct {
	cfg      Config
	ca       *identity.CA
	engine   *des.Engine
	rng      *rand.Rand
	adv      *adversary.Adversary
	clusters map[string]*Cluster
	gen      *churn.Uniform
	metrics  Metrics
	peerSeq  int64
	asyncErr error // first error raised inside a scheduled expiry event
	// targetPop is the bootstrap population targeted by the
	// StationaryPopulation controller.
	targetPop int
}

// New bootstraps an overlay of 2^InitialLabelBits clusters, each with a
// full core of C peers and about ∆/2 spares, malicious with probability µ.
func New(cfg Config) (*Network, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ca, err := identity.NewCA("overlay-ca", cfg.Seed)
	if err != nil {
		return nil, err
	}
	adv, err := adversary.New(cfg.Params, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	gen, err := churn.NewUniform(cfg.Seed+2, cfg.EventRate, cfg.Params.Mu, 0.5)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:      cfg,
		ca:       ca,
		engine:   des.NewEngine(),
		rng:      rand.New(rand.NewSource(cfg.Seed + 3)),
		adv:      adv,
		clusters: make(map[string]*Cluster),
		gen:      gen,
	}
	if err := n.bootstrap(); err != nil {
		return nil, err
	}
	return n, nil
}

// bootstrap builds the initial balanced topology.
func (n *Network) bootstrap() error {
	labels := []hypercube.Label{hypercube.RootLabel()}
	for b := 0; b < n.cfg.InitialLabelBits; b++ {
		next := make([]hypercube.Label, 0, 2*len(labels))
		for _, l := range labels {
			c0, err := l.Child(0)
			if err != nil {
				return err
			}
			c1, err := l.Child(1)
			if err != nil {
				return err
			}
			next = append(next, c0, c1)
		}
		labels = next
	}
	for _, l := range labels {
		n.clusters[l.String()] = &Cluster{Label: l}
	}
	// Populate by rejection: generate peers with random identifiers and
	// place each in its matching cluster until every cluster holds a full
	// core plus half a spare set.
	target := n.cfg.Params.C + n.cfg.Params.Delta/2
	remaining := len(labels)
	for guard := 0; remaining > 0; guard++ {
		if guard > 1000*target*len(labels) {
			return fmt.Errorf("overlaynet: bootstrap did not converge")
		}
		p, err := n.newPeer(n.rng.Float64() < n.cfg.Params.Mu, n.rng.Int63())
		if err != nil {
			return err
		}
		cl, err := n.findCluster(p.CurrentID)
		if err != nil {
			return err
		}
		if cl.Size() >= target {
			continue
		}
		if len(cl.Core) < n.cfg.Params.C {
			cl.Core = append(cl.Core, p)
		} else {
			cl.Spare = append(cl.Spare, p)
		}
		if cl.Size() == target {
			remaining--
		}
		if n.cfg.Mode == RealTime {
			n.scheduleExpiry(p)
		}
	}
	n.targetPop = n.Population()
	return nil
}

// Population returns the total number of overlay members.
func (n *Network) Population() int {
	total := 0
	for _, cl := range n.clusters {
		total += cl.Size()
	}
	return total
}

// newPeer registers a fresh peer with the CA. In RealTime mode the
// certificate creation time is backdated uniformly within one lifetime so
// incarnation expiries are staggered.
func (n *Network) newPeer(malicious bool, seed int64) (*Peer, error) {
	n.peerSeq++
	t0 := n.engine.Now()
	if n.cfg.Mode == RealTime {
		// Backdating staggers incarnation expiries; a negative t0 models
		// a certificate issued before the simulation started.
		t0 -= n.rng.Float64() * n.cfg.Lifetime
	}
	name := fmt.Sprintf("peer-%d", n.peerSeq)
	idn, err := identity.NewIdentity(n.ca, name, t0, n.cfg.IDBits, seed)
	if err != nil {
		return nil, err
	}
	p := &Peer{Name: name, Identity: idn, Malicious: malicious}
	if err := p.Refresh(n.engine.Now(), n.cfg.Lifetime); err != nil {
		return nil, err
	}
	return p, nil
}

// findCluster locates the unique cluster whose label prefixes id by
// walking prefixes of increasing length.
func (n *Network) findCluster(id identity.ID) (*Cluster, error) {
	l := hypercube.RootLabel()
	for depth := 0; depth <= hypercube.MaxLabelBits; depth++ {
		if cl, ok := n.clusters[l.String()]; ok {
			if !cl.Label.Matches(id) {
				return nil, fmt.Errorf("overlaynet: cluster %v does not match id %v", cl.Label, id)
			}
			return cl, nil
		}
		if depth == hypercube.MaxLabelBits {
			break
		}
		bit, err := id.Bit(depth)
		if err != nil {
			return nil, err
		}
		l, err = l.Child(bit)
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("overlaynet: no cluster matches id %v", id)
}

// Run processes the next `events` churn events. In RealTime mode,
// identifier expiries interleave at their scheduled instants.
func (n *Network) Run(events int) error {
	for i := 0; i < events; i++ {
		ev, err := n.gen.Next()
		if err != nil {
			return err
		}
		if n.cfg.Mode == RealTime {
			// Let scheduled expiries up to the event time fire first.
			if _, err := n.engine.RunUntil(ev.Time); err != nil {
				return err
			}
		}
		n.metrics.Events++
		kind := ev.Kind
		if n.cfg.StationaryPopulation {
			kind = n.rebalancedKind(ev)
		}
		switch kind {
		case churn.Join:
			malicious := ev.Malicious
			if ev.Kind != churn.Join {
				// A rebalanced leave-turned-join needs a fresh draw.
				malicious = n.rng.Float64() < n.cfg.Params.Mu
			}
			err = n.handleJoin(malicious, ev.PeerSeed)
		case churn.Leave:
			err = n.handleLeave()
		}
		if err != nil {
			return fmt.Errorf("overlaynet: event %d (%v): %w", ev.Seq, ev.Kind, err)
		}
		if n.asyncErr != nil {
			err := n.asyncErr
			n.asyncErr = nil
			return fmt.Errorf("overlaynet: expiry event: %w", err)
		}
	}
	return nil
}

// rebalancedKind redraws the event kind with a join probability steered
// toward the bootstrap population: p = 0.5 + 0.4·(target−pop)/target,
// clamped to [0.1, 0.9]. It keeps the overlay stationary despite the
// join/leave asymmetries the adversary introduces (Rule 2 discards,
// refused leaves).
func (n *Network) rebalancedKind(ev churn.Event) churn.Kind {
	pop := n.Population()
	p := 0.5
	if n.targetPop > 0 {
		p += 0.4 * float64(n.targetPop-pop) / float64(n.targetPop)
	}
	if p < 0.1 {
		p = 0.1
	}
	if p > 0.9 {
		p = 0.9
	}
	if n.rng.Float64() < p {
		return churn.Join
	}
	return churn.Leave
}

// handleJoin implements the join operation of Section IV plus Rule 2.
func (n *Network) handleJoin(malicious bool, seed int64) error {
	p, err := n.newPeer(malicious, seed)
	if err != nil {
		return err
	}
	return n.joinPeer(p)
}

// joinPeer routes p to its cluster and inserts it into the spare set.
func (n *Network) joinPeer(p *Peer) error {
	cl, err := n.findCluster(p.CurrentID)
	if err != nil {
		return err
	}
	view := cl.View(n.cfg.Params.C, n.cfg.Params.Delta)
	if n.adv.ShouldDiscardJoin(view, p.Malicious) {
		n.metrics.DiscardedJoins++
		return nil
	}
	cl.Spare = append(cl.Spare, p)
	n.metrics.Joins++
	if cl.MergePending && cl.SpareSize() > 0 {
		cl.MergePending = false
	}
	if n.cfg.Mode == RealTime {
		n.scheduleExpiry(p)
	}
	// Refill an underflowed core immediately.
	if len(cl.Core) < n.cfg.Params.C {
		if err := n.promoteSpare(cl); err != nil {
			return err
		}
	}
	if cl.SpareSize() >= n.cfg.Params.Delta || cl.SplitPending {
		return n.split(cl)
	}
	return nil
}

// handleLeave implements the leave operation of Section IV: the event
// targets a uniform member of a uniform cluster; honest peers comply,
// malicious peers refuse unless Property 1 (expiry) forces them or
// Rule 1 makes the departure profitable.
func (n *Network) handleLeave() error {
	cl := n.randomCluster()
	if cl == nil {
		return fmt.Errorf("overlaynet: no clusters")
	}
	total := cl.Size()
	if total == 0 {
		return nil
	}
	idx := n.rng.Intn(total)
	fromCore := idx < len(cl.Core)
	var p *Peer
	if fromCore {
		p = cl.Core[idx]
	} else {
		p = cl.Spare[idx-len(cl.Core)]
	}
	if !p.Malicious {
		n.metrics.Leaves++
		return n.processDeparture(cl, p)
	}
	// Malicious member targeted: expired?
	expired := false
	switch n.cfg.Mode {
	case ModelFidelity:
		count := cl.MaliciousSpare()
		if fromCore {
			count = cl.MaliciousCore()
		}
		expired = !n.adv.SampleSurvival(count)
	case RealTime:
		expired = p.ExpiresAt(n.cfg.Lifetime) <= n.engine.Now()
	}
	if n.adv.CompliesWithLeave(expired) {
		n.metrics.Leaves++
		return n.processDeparture(cl, p)
	}
	// Rule 1: a safe cluster's colluding core may still profit from a
	// voluntary departure.
	if fromCore {
		view := cl.View(n.cfg.Params.C, n.cfg.Params.Delta)
		fires, err := n.adv.ShouldTriggerVoluntaryLeave(view)
		if err != nil {
			return err
		}
		if fires {
			n.metrics.VoluntaryLeaves++
			n.metrics.Leaves++
			return n.processDeparture(cl, p)
		}
	}
	n.metrics.RefusedLeaves++
	return nil
}

// processDeparture removes p from its cluster and runs the follow-up
// operation (spare shrink or core maintenance), then checks the merge
// condition.
func (n *Network) processDeparture(cl *Cluster, p *Peer) error {
	role, idx := cl.indexOf(p)
	switch role {
	case "spare":
		if _, err := cl.removeSpare(idx); err != nil {
			return err
		}
	case "core":
		if _, err := cl.removeCore(idx); err != nil {
			return err
		}
		if err := n.maintainCore(cl); err != nil {
			return err
		}
	default:
		return fmt.Errorf("overlaynet: %s not in %v", p.Name, cl.Label)
	}
	if cl.SpareSize() == 0 {
		return n.tryMerge(cl)
	}
	return nil
}

// randomCluster picks a uniform cluster (join/leave events are uniform
// over clusters, Section III-A). Selection goes through the sorted label
// list so a fixed seed reproduces the run exactly.
func (n *Network) randomCluster() *Cluster {
	if len(n.clusters) == 0 {
		return nil
	}
	labels := n.sortedLabels()
	return n.clusters[labels[n.rng.Intn(len(labels))]]
}
