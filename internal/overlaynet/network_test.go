package overlaynet

import (
	"testing"

	"targetedattacks/internal/core"
)

func config(mu, d float64) Config {
	return Config{
		Params: core.Params{C: 7, Delta: 7, Mu: mu, D: d, K: 1, Nu: 0.1},
		IDBits: 64,
		// 2^2 = 4 clusters keeps bootstrap fast in tests.
		InitialLabelBits: 2,
		Seed:             42,
	}
}

func newNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// checkInvariants verifies structural invariants that must hold after any
// sequence of operations.
func checkInvariants(t *testing.T, n *Network) {
	t.Helper()
	cfg := n.Config()
	clusters := n.Clusters()
	if len(clusters) == 0 {
		t.Fatal("overlay has no clusters")
	}
	seen := make(map[string]bool)
	for _, cl := range clusters {
		// Labels unique.
		if seen[cl.Label.String()] {
			t.Fatalf("duplicate cluster label %v", cl.Label)
		}
		seen[cl.Label.String()] = true
		// Core never exceeds C; spare exceeds ∆ only while a split is
		// deferred (a child half would underflow C).
		if len(cl.Core) > cfg.Params.C {
			t.Errorf("%v: core size %d > C", cl, len(cl.Core))
		}
		if cl.SpareSize() > cfg.Params.Delta && !cl.SplitPending {
			t.Errorf("%v: spare size %d > ∆ without a pending split", cl, cl.SpareSize())
		}
		// Membership: every member's identifier matches the label
		// (Property 1 in ModelFidelity mode holds by construction).
		for _, p := range append(append([]*Peer(nil), cl.Core...), cl.Spare...) {
			if !cl.Label.Matches(p.CurrentID) {
				t.Errorf("%v: member %v id %v does not match label",
					cl, p, p.CurrentID)
			}
		}
	}
	// Labels form a prefix-free partition: no label prefixes another.
	for _, a := range clusters {
		for _, b := range clusters {
			if a != b && a.Label.IsPrefixOf(b.Label) {
				t.Errorf("label %v prefixes %v: partition broken", a.Label, b.Label)
			}
		}
	}
}

func TestBootstrapInvariants(t *testing.T) {
	n := newNetwork(t, config(0.2, 0.8))
	checkInvariants(t, n)
	snap := n.Snapshot()
	if snap.Clusters != 4 {
		t.Errorf("bootstrap clusters = %d, want 4", snap.Clusters)
	}
	for _, cl := range n.Clusters() {
		if len(cl.Core) != 7 {
			t.Errorf("%v: core %d, want full C=7", cl, len(cl.Core))
		}
		if cl.SpareSize() != 3 {
			t.Errorf("%v: spare %d, want ∆/2 = 3", cl, cl.SpareSize())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad params", func(c *Config) { c.Params.C = 0 }},
		{"bad id bits", func(c *Config) { c.IDBits = 4 }},
		{"bad label bits", func(c *Config) { c.InitialLabelBits = MaxInitialLabelBits + 1 }},
		{"negative lifetime", func(c *Config) { c.Lifetime = -1 }},
		{"negative window", func(c *Config) { c.GraceWindow = -1 }},
		{"negative rate", func(c *Config) { c.EventRate = -2 }},
		{"fast identity with consensus", func(c *Config) { c.FastIdentity = true; c.UseConsensus = true }},
		{"stop without tracking", func(c *Config) { c.StopOnAbsorption = true }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := config(0.1, 0.5)
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestLifetimeDerivedFromD(t *testing.T) {
	n := newNetwork(t, config(0.1, 0.9))
	// L = 6.65·ln2/0.1 ≈ 46.1.
	if l := n.Config().Lifetime; l < 45 || l > 47 {
		t.Errorf("derived lifetime = %v, want ≈46.05", l)
	}
}

func TestRunMaintainsInvariants(t *testing.T) {
	n := newNetwork(t, config(0.2, 0.8))
	for i := 0; i < 20; i++ {
		if err := n.Run(250); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, n)
	}
	m := n.Metrics()
	if m.Events != 5000 {
		t.Errorf("events = %d, want 5000", m.Events)
	}
	if m.Joins == 0 || m.Leaves == 0 {
		t.Errorf("no activity: %+v", m)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (Metrics, Snapshot) {
		n := newNetwork(t, config(0.25, 0.85))
		if err := n.Run(3000); err != nil {
			t.Fatal(err)
		}
		return n.Metrics(), n.Snapshot()
	}
	m1, s1 := run()
	m2, s2 := run()
	if m1 != m2 {
		t.Errorf("metrics diverged:\n%+v\n%+v", m1, m2)
	}
	if s1 != s2 {
		t.Errorf("snapshots diverged:\n%+v\n%+v", s1, s2)
	}
}

func TestSplitsAndMergesHappen(t *testing.T) {
	n := newNetwork(t, config(0.1, 0.5))
	if err := n.Run(20000); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if m.Splits == 0 {
		t.Error("no split in 20000 events")
	}
	if m.Merges == 0 {
		t.Error("no merge in 20000 events")
	}
	checkInvariants(t, n)
}

func TestFailureFreeOverlayNeverPolluted(t *testing.T) {
	n := newNetwork(t, config(0, 0.9))
	if err := n.Run(5000); err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	if snap.PollutedClusters != 0 {
		t.Errorf("µ=0 produced %d polluted clusters", snap.PollutedClusters)
	}
	if snap.MaliciousPeers != 0 {
		t.Errorf("µ=0 produced %d malicious peers", snap.MaliciousPeers)
	}
	if m := n.Metrics(); m.RefusedLeaves != 0 || m.DiscardedJoins != 0 {
		t.Errorf("µ=0 adversary activity: %+v", m)
	}
}

func TestAdversaryIncreasesPollution(t *testing.T) {
	// Strong adversary with weak churn must pollute more clusters than a
	// mild one. Compare polluted-cluster-time integrated over the run.
	pollutionScore := func(mu, d float64) int {
		n := newNetwork(t, config(mu, d))
		score := 0
		for i := 0; i < 40; i++ {
			if err := n.Run(250); err != nil {
				t.Fatal(err)
			}
			score += n.Snapshot().PollutedClusters
		}
		return score
	}
	weak := pollutionScore(0.05, 0.5)
	strong := pollutionScore(0.30, 0.95)
	if strong <= weak {
		t.Errorf("pollution score: strong adversary %d ≤ weak %d", strong, weak)
	}
}

func TestRefusedLeavesTrackAdversary(t *testing.T) {
	n := newNetwork(t, config(0.3, 0.95))
	if err := n.Run(5000); err != nil {
		t.Fatal(err)
	}
	if n.Metrics().RefusedLeaves == 0 {
		t.Error("high-d malicious peers never refused a leave")
	}
}

func TestRealTimeModeRuns(t *testing.T) {
	cfg := config(0.2, 0.8)
	cfg.Mode = RealTime
	n := newNetwork(t, cfg)
	if err := n.Run(3000); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, n)
	if n.Metrics().ExpiryLeaves == 0 {
		t.Error("RealTime mode produced no expiry-driven churn")
	}
	if n.Now() == 0 {
		t.Error("simulated time did not advance")
	}
}

func TestRealTimeExpiryRefreshesIncarnations(t *testing.T) {
	cfg := config(0.1, 0.5) // short lifetime L ≈ 9.2
	cfg.Mode = RealTime
	n := newNetwork(t, cfg)
	if err := n.Run(4000); err != nil {
		t.Fatal(err)
	}
	// After several lifetimes, surviving bootstrap-era peers must be past
	// incarnation 1.
	var maxInc int64
	for _, cl := range n.Clusters() {
		for _, p := range append(append([]*Peer(nil), cl.Core...), cl.Spare...) {
			if p.Incarnation > maxInc {
				maxInc = p.Incarnation
			}
		}
	}
	if maxInc < 2 {
		t.Errorf("max incarnation = %d, want ≥ 2 after expiry churn", maxInc)
	}
}

func TestConsensusBackedMaintenance(t *testing.T) {
	cfg := config(0.1, 0.5)
	cfg.UseConsensus = true
	n := newNetwork(t, cfg)
	if err := n.Run(300); err != nil {
		t.Fatal(err)
	}
	if n.Metrics().ConsensusRuns == 0 {
		t.Error("UseConsensus produced no agreement runs")
	}
	checkInvariants(t, n)
}

func TestRule2MeasurableInPollutedOverlay(t *testing.T) {
	// With µ=0.3 and d=0.95 pollution occurs; Rule 2 must discard joins.
	n := newNetwork(t, config(0.3, 0.95))
	if err := n.Run(20000); err != nil {
		t.Fatal(err)
	}
	if n.Metrics().DiscardedJoins == 0 {
		t.Error("no Rule 2 discards despite pollution pressure")
	}
}

func TestSnapshotCounts(t *testing.T) {
	n := newNetwork(t, config(0.2, 0.8))
	snap := n.Snapshot()
	var peers int
	for _, cl := range n.Clusters() {
		peers += cl.Size()
	}
	if snap.Peers != peers {
		t.Errorf("snapshot peers = %d, want %d", snap.Peers, peers)
	}
	if snap.MinLabelBits != 2 || snap.MaxLabelBits != 2 {
		t.Errorf("label bits = %d..%d, want 2..2", snap.MinLabelBits, snap.MaxLabelBits)
	}
	if snap.PollutedFraction < 0 || snap.PollutedFraction > 1 {
		t.Errorf("polluted fraction = %v", snap.PollutedFraction)
	}
}

func TestClusterStringAndView(t *testing.T) {
	n := newNetwork(t, config(0.2, 0.8))
	cl := n.Clusters()[0]
	if cl.String() == "" {
		t.Error("cluster String empty")
	}
	v := cl.View(7, 7)
	if v.CoreSize != 7 || v.SpareMax != 7 {
		t.Errorf("view = %+v", v)
	}
	if v.MaliciousCore != cl.MaliciousCore() || v.MaliciousSpare != cl.MaliciousSpare() {
		t.Error("view counts disagree with cluster")
	}
}

func TestStationaryPopulationHoldsSteady(t *testing.T) {
	// With a mild adversary the controller must hold the population near
	// the bootstrap level. (Under full takeover it cannot: Rule 2
	// discards every honest join — the eclipse regime, tested below.)
	cfg := config(0.1, 0.5)
	cfg.StationaryPopulation = true
	n := newNetwork(t, cfg)
	target := n.Population()
	if err := n.Run(20000); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, n)
	pop := n.Population()
	if pop < target/2 || pop > target*2 {
		t.Errorf("population drifted from %d to %d despite controller", target, pop)
	}
}

func TestEclipseRegimeDefeatsController(t *testing.T) {
	// µ=30% with weak churn lets the adversary capture clusters; Rule 2
	// then gates membership, shrinking the population no matter how many
	// joins the workload offers — the takeover signature.
	cfg := config(0.3, 0.9)
	cfg.StationaryPopulation = true
	n := newNetwork(t, cfg)
	target := n.Population()
	if err := n.Run(20000); err != nil {
		t.Fatal(err)
	}
	if n.Metrics().DiscardedJoins == 0 {
		t.Error("takeover regime produced no Rule 2 discards")
	}
	if pop := n.Population(); pop >= target {
		t.Logf("note: population %d did not shrink below %d this run", pop, target)
	}
}

func TestProtocolKVariants(t *testing.T) {
	for _, k := range []int{1, 3, 7} {
		cfg := config(0.2, 0.8)
		cfg.Params.K = k
		n := newNetwork(t, cfg)
		if err := n.Run(3000); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		checkInvariants(t, n)
	}
}
