package overlaynet

import (
	"testing"

	"targetedattacks/internal/identity"
)

func TestLookupDeliversInCleanOverlay(t *testing.T) {
	n := newNetwork(t, config(0, 0.9))
	const trials = 200
	avail, err := n.LookupAvailability(trials)
	if err != nil {
		t.Fatal(err)
	}
	if avail != 1 {
		t.Errorf("availability = %v in a failure-free overlay, want 1", avail)
	}
}

func TestLookupPathsAreShort(t *testing.T) {
	n := newNetwork(t, config(0, 0.9))
	for i := 0; i < 100; i++ {
		from, err := n.randomID()
		if err != nil {
			t.Fatal(err)
		}
		key, err := n.randomID()
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Lookup(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			t.Fatalf("lookup failed in clean overlay: %+v", res)
		}
		// Greedy routing on labels of ≤ 2 bits takes at most 3 clusters.
		if len(res.Path) > 3 {
			t.Errorf("path %v longer than label-length bound", res.Path)
		}
		if !res.Path[len(res.Path)-1].Matches(key) {
			t.Errorf("final cluster %v does not cover key", res.Path[len(res.Path)-1])
		}
	}
}

func TestLookupDropsAtPollutedCluster(t *testing.T) {
	n := newNetwork(t, config(0, 0.9))
	// Manufacture pollution: flip 3 core members of one cluster.
	victim := n.Clusters()[0]
	for i := 0; i < 3; i++ {
		victim.Core[i].Malicious = true
	}
	if !victim.Polluted(n.Config().Params.Quorum()) {
		t.Fatal("victim cluster should be polluted")
	}
	// A lookup whose key lives in the victim must fail.
	keyOwner := victim
	var key identity.ID
	found := false
	for i := 0; i < 10000 && !found; i++ {
		id, err := n.randomID()
		if err != nil {
			t.Fatal(err)
		}
		if keyOwner.Label.Matches(id) {
			key, found = id, true
		}
	}
	if !found {
		t.Fatal("could not sample a key in the victim's region")
	}
	// Source in a different (safe) cluster.
	other := n.Clusters()[3]
	var from identity.ID
	found = false
	for i := 0; i < 10000 && !found; i++ {
		id, err := n.randomID()
		if err != nil {
			t.Fatal(err)
		}
		if other.Label.Matches(id) {
			from, found = id, true
		}
	}
	if !found {
		t.Fatal("could not sample a source id")
	}
	res, err := n.Lookup(from, key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Error("lookup to a polluted responsible cluster must fail")
	}
	if !res.DropLabel.Equal(victim.Label) {
		t.Errorf("drop label = %v, want %v", res.DropLabel, victim.Label)
	}
	// Availability must now be strictly below 1: the victim owns 1/4 of
	// the id space. Analytically E[avail] = 1/2 exactly — a lookup fails
	// when the source cluster is the victim (1/4), the key's cluster is
	// the victim (1/4, overlap 1/16), or the greedy route passes through
	// it (the 10→01 pair, 1/16) — so the sanity floor sits well below
	// that mean, not on it.
	avail, err := n.LookupAvailability(400)
	if err != nil {
		t.Fatal(err)
	}
	if avail >= 1 {
		t.Errorf("availability = %v with a polluted cluster, want < 1", avail)
	}
	if avail < 0.38 {
		t.Errorf("availability = %v, implausibly low for one polluted cluster of four", avail)
	}
}

func TestLookupAvailabilityDegradesWithAdversary(t *testing.T) {
	run := func(mu, d float64) float64 {
		n := newNetwork(t, config(mu, d))
		if err := n.Run(10000); err != nil {
			t.Fatal(err)
		}
		avail, err := n.LookupAvailability(300)
		if err != nil {
			t.Fatal(err)
		}
		return avail
	}
	clean := run(0, 0.9)
	attacked := run(0.3, 0.95)
	if clean != 1 {
		t.Errorf("clean availability = %v, want 1", clean)
	}
	if attacked >= clean {
		t.Errorf("availability under attack %v did not degrade from %v", attacked, clean)
	}
}

func TestLookupValidation(t *testing.T) {
	n := newNetwork(t, config(0, 0.9))
	if _, err := n.LookupAvailability(0); err == nil {
		t.Error("trials=0: want error")
	}
}

func TestLookupAfterTopologyChanges(t *testing.T) {
	// Exercise routing across an overlay whose labels are no longer
	// uniform (splits and merges happened). A polluted cluster drops
	// lookups it *transits* as well as those it owns, so availability
	// degrades faster than the polluted space share — the residual that
	// redundant routing addresses.
	n := newNetwork(t, config(0.05, 0.5))
	if err := n.Run(20000); err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	if snap.MinLabelBits == snap.MaxLabelBits && n.Metrics().Splits == 0 {
		t.Skip("topology did not diversify; nothing to exercise")
	}
	avail, err := n.LookupAvailability(300)
	if err != nil {
		t.Fatal(err)
	}
	if avail < 0.5 {
		t.Errorf("availability = %v with a 5%% adversary, implausibly low", avail)
	}
}

func TestRedundantRoutingImprovesAvailability(t *testing.T) {
	n := newNetwork(t, config(0.05, 0.5))
	if err := n.Run(20000); err != nil {
		t.Fatal(err)
	}
	if n.Snapshot().PollutedClusters == 0 {
		t.Skip("no pollution this run; nothing to mitigate")
	}
	const trials = 300
	var single, redundant int
	for i := 0; i < trials; i++ {
		from, err := n.randomID()
		if err != nil {
			t.Fatal(err)
		}
		key, err := n.randomID()
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Lookup(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered {
			single++
		}
		ok, err := n.LookupRedundant(from, key, 4)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			redundant++
		}
	}
	if redundant < single {
		t.Errorf("redundant routing delivered %d < single-path %d", redundant, single)
	}
	// With 4 disjoint entry points the only common failure is the
	// responsible cluster itself; the gap must be visible.
	if single < trials && redundant == single {
		t.Errorf("redundancy bought nothing: %d vs %d of %d", redundant, single, trials)
	}
}

func TestLookupRedundantValidation(t *testing.T) {
	n := newNetwork(t, config(0, 0.9))
	from, err := n.randomID()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.LookupRedundant(from, from, 0); err == nil {
		t.Error("redundancy=0: want error")
	}
}
