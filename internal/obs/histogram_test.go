package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.002, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 3, 4, 6} // cumulative: <=1ms, <=10ms, <=100ms, +Inf
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if got, want := s.Sum, 0.0005+0.001+0.002+0.05+0.5+2; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-workers*per*0.001) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), workers*per*0.001)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	if len(DefaultLatencyBuckets) != 20 || DefaultLatencyBuckets[0] != 100e-6 {
		t.Fatalf("unexpected default buckets: %v", DefaultLatencyBuckets)
	}
}

func TestHistogramVecPromRoundTrip(t *testing.T) {
	v := NewHistogramVec([]float64{0.01, 0.1})
	v.With("/v1/sweep").Observe(0.05)
	v.With("/v1/sweep").Observe(0.005)
	v.With("/v1/analyze").Observe(0.5)

	var b strings.Builder
	v.WriteProm(&b, "test_duration_seconds", "Test latency.", "endpoint")
	fams, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v\n%s", err, b.String())
	}
	snap, err := ExtractHistogram(fams, "test_duration_seconds", map[string]string{"endpoint": "/v1/sweep"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 2 || snap.Counts[len(snap.Counts)-1] != 2 {
		t.Fatalf("sweep series count = %d (%v), want 2", snap.Count, snap.Counts)
	}
	if math.Abs(snap.Sum-0.055) > 1e-12 {
		t.Fatalf("sweep series sum = %v, want 0.055", snap.Sum)
	}
}

func TestQuantile(t *testing.T) {
	// 100 observations uniform in the (0.1, 0.2] bucket.
	s := HistogramSnapshot{
		Bounds: []float64{0.1, 0.2, 0.4},
		Counts: []uint64{0, 100, 100, 100},
	}
	if got := s.Quantile(0.5); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("p50 = %v, want 0.15", got)
	}
	if got := s.Quantile(0.99); math.Abs(got-0.199) > 1e-9 {
		t.Errorf("p99 = %v, want 0.199", got)
	}
	// Observations in +Inf clamp to the top finite bound.
	inf := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 10}}
	if got := inf.Quantile(0.9); got != 1 {
		t.Errorf("+Inf quantile = %v, want 1", got)
	}
	empty := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	a := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{5, 9}, Sum: 12, Count: 9}
	b := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{2, 4}, Sum: 5, Count: 4}
	d, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Counts[0] != 3 || d.Counts[1] != 5 || d.Sum != 7 || d.Count != 5 {
		t.Fatalf("delta = %+v", d)
	}
	if _, err := b.Sub(a); err == nil {
		t.Fatal("expected error for backwards counters")
	}
}
