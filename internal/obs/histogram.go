package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// ExponentialBuckets returns n upper bounds starting at start and
// multiplying by factor: start, start*factor, ..., start*factor^(n-1).
// The implicit +Inf bucket is not included.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets requires start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefaultLatencyBuckets spans 100µs to ~52s doubling each step — wide
// enough for both sub-millisecond cache hits and colossal sweeps.
var DefaultLatencyBuckets = ExponentialBuckets(100e-6, 2, 20)

// Histogram is a fixed-bucket histogram safe for concurrent Observe
// with no locks: bucket counters are atomic and the sum is a
// CAS-accumulated float64. Bounds are upper bounds in ascending order;
// an implicit +Inf bucket catches the overflow.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	total   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. The bounds slice is not copied and must not be mutated.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the histogram's cumulative bucket counts (one per
// bound plus the +Inf bucket), sum, and count. The snapshot is not
// atomic across buckets, but bucket counts never decrease, so the
// result is always a valid (possibly slightly torn) exposition.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	s.Count = h.total.Load()
	s.Sum = h.Sum()
	return s
}

// HistogramVec is a histogram family keyed by one label value, e.g.
// request duration by endpoint. Children are created on first use and
// live forever; lookups on the hot path are a single sync.Map read.
type HistogramVec struct {
	bounds []float64
	m      sync.Map // string -> *Histogram
}

// NewHistogramVec builds a family whose children share bounds.
func NewHistogramVec(bounds []float64) *HistogramVec {
	return &HistogramVec{bounds: bounds}
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(label string) *Histogram {
	if h, ok := v.m.Load(label); ok {
		return h.(*Histogram)
	}
	h, _ := v.m.LoadOrStore(label, NewHistogram(v.bounds))
	return h.(*Histogram)
}

// WriteProm renders the family in Prometheus text exposition format
// under the given metric name, with each child labeled
// labelName="<value>". Children are emitted in sorted label order.
func (v *HistogramVec) WriteProm(w io.Writer, name, help, labelName string) {
	type child struct {
		label string
		h     *Histogram
	}
	var children []child
	v.m.Range(func(k, val any) bool {
		children = append(children, child{k.(string), val.(*Histogram)})
		return true
	})
	sort.Slice(children, func(i, j int) bool { return children[i].label < children[j].label })
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, c := range children {
		s := c.h.Snapshot()
		for i, b := range s.Bounds {
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
				name, labelName, c.label, formatBound(b), s.Counts[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n",
			name, labelName, c.label, s.Counts[len(s.Counts)-1])
		fmt.Fprintf(w, "%s_sum{%s=%q} %s\n",
			name, labelName, c.label, strconv.FormatFloat(s.Sum, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, labelName, c.label, s.Count)
	}
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// HistogramSnapshot is a point-in-time view of cumulative bucket
// counts; Counts has one entry per bound plus a final +Inf entry.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Sub returns the bucket-wise delta a - b, for computing what happened
// between two scrapes. The snapshots must share bounds.
func (a HistogramSnapshot) Sub(b HistogramSnapshot) (HistogramSnapshot, error) {
	if len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) {
		return HistogramSnapshot{}, fmt.Errorf("obs: snapshot shapes differ (%d vs %d buckets)", len(a.Counts), len(b.Counts))
	}
	d := HistogramSnapshot{
		Bounds: a.Bounds,
		Counts: make([]uint64, len(a.Counts)),
		Sum:    a.Sum - b.Sum,
		Count:  a.Count - b.Count,
	}
	for i := range a.Counts {
		if a.Counts[i] < b.Counts[i] {
			return HistogramSnapshot{}, fmt.Errorf("obs: bucket %d went backwards (%d -> %d)", i, b.Counts[i], a.Counts[i])
		}
		d.Counts[i] = a.Counts[i] - b.Counts[i]
	}
	return d, nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) from cumulative
// bucket counts with linear interpolation inside the landing bucket,
// the same estimator Prometheus's histogram_quantile uses. Values in
// the +Inf bucket clamp to the highest finite bound. Returns NaN for
// an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	n := s.Counts[len(s.Counts)-1]
	if n == 0 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(n)
	idx := sort.Search(len(s.Counts), func(i int) bool { return float64(s.Counts[i]) >= rank })
	if idx >= len(s.Bounds) {
		return s.Bounds[len(s.Bounds)-1]
	}
	lower, lowerCount := 0.0, uint64(0)
	if idx > 0 {
		lower = s.Bounds[idx-1]
		lowerCount = s.Counts[idx-1]
	}
	width := float64(s.Counts[idx] - lowerCount)
	if width == 0 {
		return s.Bounds[idx]
	}
	return lower + (s.Bounds[idx]-lower)*(rank-float64(lowerCount))/width
}
