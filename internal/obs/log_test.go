package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestLoggerInjectsTraceID(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace("")
	ctx := ContextWithTrace(context.Background(), tr)
	lg.InfoContext(ctx, "evaluated", "cells", 64)

	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, b.String())
	}
	if rec["trace_id"] != tr.TraceID() {
		t.Fatalf("trace_id = %v, want %s", rec["trace_id"], tr.TraceID())
	}
	if rec["cells"] != float64(64) {
		t.Fatalf("cells attr lost: %v", rec)
	}

	b.Reset()
	lg.Info("no ctx")
	if strings.Contains(b.String(), "trace_id") {
		t.Fatalf("trace_id stamped without a trace: %q", b.String())
	}
}

func TestLoggerWithAttrsKeepsInjection(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "text", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace("")
	ctx := ContextWithTrace(context.Background(), tr)
	lg.With("component", "jobs").WithGroup("g").DebugContext(ctx, "tick")
	if !strings.Contains(b.String(), tr.TraceID()) {
		t.Fatalf("derived logger lost trace injection: %q", b.String())
	}
}

func TestLoggerLevelAndFormatValidation(t *testing.T) {
	if _, err := NewLogger(&strings.Builder{}, "xml", slog.LevelInfo); err == nil {
		t.Fatal("expected error for unknown format")
	}
	var b strings.Builder
	lg, _ := NewLogger(&b, "text", slog.LevelWarn)
	lg.Info("hidden")
	if b.Len() != 0 {
		t.Fatalf("info leaked past warn level: %q", b.String())
	}
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "WARN": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("expected error for unknown level")
	}
}
