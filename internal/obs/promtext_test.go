package obs

import (
	"math"
	"strings"
	"testing"
)

const sampleExposition = `# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{endpoint="/v1/sweep",code="200"} 12
http_requests_total{endpoint="/v1/analyze",code="400"} 1

# HELP up Whether the server is up.
# TYPE up gauge
up 1
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 3
latency_seconds_bucket{le="0.2"} 5
latency_seconds_bucket{le="+Inf"} 6
latency_seconds_sum 0.9
latency_seconds_count 6
`

func TestParsePromValid(t *testing.T) {
	fams, err := ParseProm(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	c := fams["http_requests_total"]
	if c == nil || c.Type != "counter" || len(c.Points) != 2 {
		t.Fatalf("counter family = %+v", c)
	}
	if c.Points[0].Labels["endpoint"] != "/v1/sweep" || c.Points[0].Value != 12 {
		t.Fatalf("point = %+v", c.Points[0])
	}
	snap, err := ExtractHistogram(fams, "latency_seconds", nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 6 || len(snap.Bounds) != 2 || snap.Counts[2] != 6 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if p50 := snap.Quantile(0.5); math.Abs(p50-0.1) > 1e-9 {
		t.Fatalf("p50 = %v", p50)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"undeclared sample":    "foo 1\n",
		"bad metric name":      "# TYPE 9foo counter\n9foo 1\n",
		"unknown type":         "# TYPE foo widget\n",
		"duplicate TYPE":       "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"type after samples":   "# HELP foo x\nfoo 1\n# TYPE foo counter\n",
		"bad label name":       "# TYPE foo counter\nfoo{9bad=\"x\"} 1\n",
		"unquoted label value": "# TYPE foo counter\nfoo{a=x} 1\n",
		"unterminated labels":  "# TYPE foo counter\nfoo{a=\"x\" 1\n",
		"duplicate label":      "# TYPE foo counter\nfoo{a=\"x\",a=\"y\"} 1\n",
		"bad escape":           "# TYPE foo counter\nfoo{a=\"\\t\"} 1\n",
		"bad value":            "# TYPE foo counter\nfoo one\n",
		"reserved label":       "# TYPE foo counter\nfoo{__name__=\"x\"} 1\n",
	}
	for name, in := range cases {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, in)
		}
	}
}

func TestParsePromLabelEscapes(t *testing.T) {
	in := "# TYPE foo counter\nfoo{path=\"a\\\\b\\\"c\\nd\"} 2\n"
	fams, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got := fams["foo"].Points[0].Labels["path"]
	if got != "a\\b\"c\nd" {
		t.Fatalf("unescaped label = %q", got)
	}
}

func TestExtractHistogramErrors(t *testing.T) {
	fams, err := ParseProm(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractHistogram(fams, "missing", nil); err == nil {
		t.Error("expected error for missing family")
	}
	if _, err := ExtractHistogram(fams, "up", nil); err == nil {
		t.Error("expected error for non-histogram family")
	}
	if _, err := ExtractHistogram(fams, "latency_seconds", map[string]string{"zone": "a"}); err == nil {
		t.Error("expected error when no series matches")
	}
	// Missing +Inf bucket is rejected.
	noInf := "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"
	f2, err := ParseProm(strings.NewReader(noInf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractHistogram(f2, "h", nil); err == nil {
		t.Error("expected error for missing +Inf bucket")
	}
}

func TestLabelValues(t *testing.T) {
	fams, err := ParseProm(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	got := LabelValues(fams["http_requests_total"], "endpoint")
	if len(got) != 2 || got[0] != "/v1/analyze" || got[1] != "/v1/sweep" {
		t.Fatalf("label values = %v", got)
	}
}
