package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MetricPoint is one sample line of a text exposition.
type MetricPoint struct {
	Name   string // full sample name, e.g. foo_bucket
	Labels map[string]string
	Value  float64
}

// MetricFamily groups the samples declared under one # TYPE block.
type MetricFamily struct {
	Name   string
	Help   string
	Type   string // counter, gauge, histogram, summary, untyped
	Points []MetricPoint
}

var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// ParseProm parses a Prometheus text exposition strictly: metric and
// label names must be well-formed, label values properly quoted,
// values parseable floats, each TYPE declared at most once, and every
// sample must belong to a declared family (histogram samples may use
// the _bucket/_sum/_count suffixes). This is deliberately stricter
// than Prometheus itself so the self-check test catches malformed
// output before a real scraper ever sees it.
func ParseProm(r io.Reader) (map[string]*MetricFamily, error) {
	fams := make(map[string]*MetricFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		p, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(fams, p.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no declared # TYPE family", lineNo, p.Name)
		}
		fam.Points = append(fam.Points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parseComment(line string, fams map[string]*MetricFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in HELP", name)
		}
		f := fams[name]
		if f == nil {
			f = &MetricFamily{Name: name}
			fams[name] = f
		}
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE", name)
		}
		if !promTypes[typ] {
			return fmt.Errorf("unknown metric type %q for %q", typ, name)
		}
		f := fams[name]
		if f == nil {
			f = &MetricFamily{Name: name}
			fams[name] = f
		}
		if f.Type != "" {
			return fmt.Errorf("duplicate TYPE for %q", name)
		}
		if len(f.Points) > 0 {
			return fmt.Errorf("TYPE for %q declared after its samples", name)
		}
		f.Type = typ
	}
	return nil
}

// familyFor resolves a sample name to its declared family, allowing
// the histogram/summary component suffixes.
func familyFor(fams map[string]*MetricFamily, sample string) *MetricFamily {
	if f, ok := fams[sample]; ok && f.Type != "" {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

func parseSample(line string) (MetricPoint, error) {
	p := MetricPoint{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	p.Name = line[:i]
	if !validMetricName(p.Name) {
		return p, fmt.Errorf("invalid metric name %q", p.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, p.Labels)
		if err != nil {
			return p, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return p, fmt.Errorf("expected value (and optional timestamp) after %q", p.Name)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return p, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	p.Value = v
	return p, nil
}

// parseLabels parses a {k="v",...} block starting at s[0]=='{' and
// returns the index just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block %q", s)
		}
		name := s[start:i]
		if !validLabelName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %q value not quoted", name)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) {
					return 0, fmt.Errorf("truncated escape in label %q", name)
				}
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("invalid escape \\%c in label %q", s[i], name)
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value for %q", name)
		}
		i++ // closing '"'
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i, c := range s {
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// ExtractHistogram reconstructs one labeled series of a histogram
// family as a HistogramSnapshot. match gives the label values that
// identify the series (le is handled internally); points carrying
// extra labels beyond match+le are rejected to avoid silently mixing
// series.
func ExtractHistogram(fams map[string]*MetricFamily, name string, match map[string]string) (HistogramSnapshot, error) {
	var snap HistogramSnapshot
	f := fams[name]
	if f == nil {
		return snap, fmt.Errorf("obs: metrics have no family %q", name)
	}
	if f.Type != "histogram" {
		return snap, fmt.Errorf("obs: family %q has type %q, want histogram", name, f.Type)
	}
	matches := func(labels map[string]string, extra int) bool {
		if len(labels) != len(match)+extra {
			return false
		}
		for k, v := range match {
			if labels[k] != v {
				return false
			}
		}
		return true
	}
	type bkt struct {
		le  float64
		cum uint64
	}
	var buckets []bkt
	haveSum, haveCount := false, false
	for _, p := range f.Points {
		switch p.Name {
		case name + "_bucket":
			if !matches(p.Labels, 1) {
				continue
			}
			le, err := parsePromValue(p.Labels["le"])
			if err != nil {
				return snap, fmt.Errorf("obs: bad le %q in %s", p.Labels["le"], name)
			}
			buckets = append(buckets, bkt{le, uint64(p.Value)})
		case name + "_sum":
			if matches(p.Labels, 0) {
				snap.Sum = p.Value
				haveSum = true
			}
		case name + "_count":
			if matches(p.Labels, 0) {
				snap.Count = uint64(p.Value)
				haveCount = true
			}
		}
	}
	if len(buckets) == 0 {
		return snap, fmt.Errorf("obs: no %s_bucket samples match %v", name, match)
	}
	if !haveSum || !haveCount {
		return snap, fmt.Errorf("obs: %s series %v missing _sum or _count", name, match)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if !math.IsInf(buckets[len(buckets)-1].le, 1) {
		return snap, fmt.Errorf("obs: %s series %v has no +Inf bucket", name, match)
	}
	var prev uint64
	for i, b := range buckets {
		if i > 0 && b.le <= buckets[i-1].le {
			return snap, fmt.Errorf("obs: %s series %v has duplicate le %v", name, match, b.le)
		}
		if b.cum < prev {
			return snap, fmt.Errorf("obs: %s series %v buckets not cumulative", name, match)
		}
		prev = b.cum
		if !math.IsInf(b.le, 1) {
			snap.Bounds = append(snap.Bounds, b.le)
		}
		snap.Counts = append(snap.Counts, b.cum)
	}
	return snap, nil
}

// LabelValues lists the distinct values of one label key across a
// family's samples, sorted — e.g. all stages seen by the stage
// histogram.
func LabelValues(f *MetricFamily, key string) []string {
	seen := make(map[string]bool)
	for _, p := range f.Points {
		if v, ok := p.Labels[key]; ok {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
