package obs

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
)

// WriteRuntimeMetrics renders Go runtime health gauges (goroutines,
// heap, GC) in Prometheus text format under the given metric-name
// prefix, e.g. prefix "attackd_go_" yields attackd_go_goroutines.
func WriteRuntimeMetrics(w io.Writer, prefix string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s%s %s\n", prefix, name, help)
		fmt.Fprintf(w, "# TYPE %s%s gauge\n", prefix, name)
		fmt.Fprintf(w, "%s%s %s\n", prefix, name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s%s %s\n", prefix, name, help)
		fmt.Fprintf(w, "# TYPE %s%s counter\n", prefix, name)
		fmt.Fprintf(w, "%s%s %s\n", prefix, name, strconv.FormatFloat(v, 'g', -1, 64))
	}

	gauge("goroutines", "Current number of goroutines.", float64(runtime.NumGoroutine()))
	gauge("heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	gauge("heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(ms.HeapSys))
	gauge("heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects))
	counter("gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)
	counter("gcs_total", "Number of completed GC cycles.", float64(ms.NumGC))
}
