// Package obs is the dependency-free observability core shared by the
// serving stack (attackd), the sweep engine, and the model layers.
//
// It deliberately depends on nothing but the standard library so that
// leaf packages (core, chainmodel, sweep) can import it without cycles
// and without dragging HTTP or encoding concerns into numeric code.
// Three small facilities live here:
//
//   - Histograms: lock-free log-spaced latency histograms
//     (atomic bucket counters, CAS-accumulated float sum) rendered in
//     Prometheus text exposition format, plus a strict parser for that
//     format (ParseProm) and quantile estimation from cumulative bucket
//     snapshots, so load generators and tests can consume exactly what
//     the server exposes.
//
//   - Traces: a request-scoped Trace carries a W3C trace-context ID
//     (ingested from a `traceparent` header when present, minted from
//     crypto/rand otherwise) through context.Context. StartSpan opens
//     in-process spans (name, start, duration, string attrs) that
//     aggregate into named stages; Trace implements Observer so lower
//     layers can report stage durations without knowing about spans.
//
//   - Logging: NewLogger builds a log/slog logger (text or JSON) whose
//     handler injects the current trace ID from the context into every
//     record, so one grep by trace_id collects a request's full story.
//
// The package never spawns goroutines and holds no global state beyond
// what callers wire up; everything is safe for concurrent use.
package obs
