package obs

import (
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

func TestNewTraceFresh(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		tr := NewTrace("")
		if !traceIDRe.MatchString(tr.TraceID()) {
			t.Fatalf("trace ID %q is not 32 lowercase hex", tr.TraceID())
		}
		if seen[tr.TraceID()] {
			t.Fatalf("duplicate trace ID %q", tr.TraceID())
		}
		seen[tr.TraceID()] = true
	}
}

func TestNewTraceFromTraceparent(t *testing.T) {
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"
	tr := NewTrace("00-" + id + "-00f067aa0ba902b7-01")
	if tr.TraceID() != id {
		t.Fatalf("trace ID = %q, want %q", tr.TraceID(), id)
	}
	for _, bad := range []string{
		"",
		"garbage",
		"00-" + id + "-00f067aa0ba902b7",    // missing flags
		"ff-" + id + "-00f067aa0ba902b7-01", // reserved version
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01", // zero trace id
		"00-" + id + "-0000000000000000-01",                      // zero parent id
		"00-" + strings.ToUpper(id) + "-00f067aa0ba902b7-01",     // uppercase
		"00-" + id + "-00f067aa0ba902b7-01-extra",                // extra field on v00
	} {
		if got := NewTrace(bad).TraceID(); got == id {
			t.Errorf("malformed traceparent %q was accepted", bad)
		} else if !traceIDRe.MatchString(got) {
			t.Errorf("fallback trace ID %q invalid for input %q", got, bad)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace("")
	ctx := ContextWithTrace(context.Background(), tr)
	sp, _ := StartSpan(ctx, "request")
	hdr := tr.Traceparent(sp)
	id, parent, ok := parseTraceparent(hdr)
	if !ok || id != tr.TraceID() || parent != sp.ID() {
		t.Fatalf("header %q does not round-trip (ok=%v id=%q parent=%q)", hdr, ok, id, parent)
	}
}

func TestSpansAndStages(t *testing.T) {
	tr := NewTrace("")
	ctx := ContextWithTrace(context.Background(), tr)
	root, ctx := StartSpan(ctx, "request")
	child, _ := StartSpan(ctx, "solve")
	child.SetAttr("backend", "bicgstab")
	child.SetAttrInt("iterations", 42)
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()
	tr.Observe("matrix", 5*time.Millisecond)

	stages := tr.Stages()
	if stages["solve"].Count != 1 || stages["solve"].Duration < 2*time.Millisecond {
		t.Fatalf("solve stage = %+v", stages["solve"])
	}
	if stages["matrix"].Duration != 5*time.Millisecond {
		t.Fatalf("matrix stage = %+v", stages["matrix"])
	}
	tree := tr.SpanTree()
	if !strings.Contains(tree, "request=") || !strings.Contains(tree, "solve=") {
		t.Fatalf("span tree missing spans: %q", tree)
	}
	if !strings.Contains(tree, "backend=bicgstab") || !strings.Contains(tree, "iterations=42") {
		t.Fatalf("span tree missing attrs: %q", tree)
	}
	// solve must render nested under request.
	if strings.Index(tree, "request=") > strings.Index(tree, "solve=") {
		t.Fatalf("child rendered before parent: %q", tree)
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	sp, ctx := StartSpan(context.Background(), "noop")
	if sp != nil {
		t.Fatal("expected nil span without a trace")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()
	if ctx != context.Background() {
		t.Fatal("context should be unchanged without a trace")
	}
}

func TestDetach(t *testing.T) {
	tr := NewTrace("")
	ctx, cancel := context.WithCancel(ContextWithTrace(context.Background(), tr))
	_, ctx = StartSpan(ctx, "request")
	cancel()
	d := Detach(ctx)
	if d.Err() != nil {
		t.Fatal("detached context inherited cancellation")
	}
	if TraceFromContext(d) != tr {
		t.Fatal("detached context lost the trace")
	}
	sp, _ := StartSpan(d, "build")
	sp.End()
	if tr.Stages()["build"].Count != 1 {
		t.Fatal("span on detached context not recorded")
	}
}

func TestTraceConcurrentAndCapped(t *testing.T) {
	tr := NewTrace("")
	ctx := ContextWithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	const n = 4 * maxSpans
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp, _ := StartSpan(ctx, "lane")
			sp.End()
		}()
	}
	wg.Wait()
	st := tr.Stages()["lane"]
	if st.Count != n {
		t.Fatalf("stage count = %d, want %d (stages must aggregate past the span cap)", st.Count, n)
	}
	if !strings.Contains(tr.SpanTree(), "-dropped") {
		t.Fatal("span tree should note dropped spans past the cap")
	}
}

func TestChildTrace(t *testing.T) {
	parent := NewTrace("")
	child := NewChildTrace(parent)
	if child.TraceID() != parent.TraceID() {
		t.Fatal("child trace must share the parent's trace ID")
	}
	child.Observe("job", time.Millisecond)
	if parent.Stages()["job"].Count != 0 {
		t.Fatal("child stages leaked into parent")
	}
	if NewChildTrace(nil) == nil {
		t.Fatal("nil parent must yield a fresh trace")
	}
}
