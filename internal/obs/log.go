package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// traceHandler wraps a slog.Handler and stamps trace_id from the
// record's context onto every entry, so logs join up with response
// timings and job records by ID.
type traceHandler struct {
	slog.Handler
}

func (h traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if t := TraceFromContext(ctx); t != nil {
		r.AddAttrs(slog.String("trace_id", t.TraceID()))
	}
	return h.Handler.Handle(ctx, r)
}

func (h traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceHandler{h.Handler.WithAttrs(attrs)}
}

func (h traceHandler) WithGroup(name string) slog.Handler {
	return traceHandler{h.Handler.WithGroup(name)}
}

// NewLogger builds a structured logger writing to w in the given
// format ("text" or "json") at the given minimum level, with trace IDs
// injected from the context of each log call.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(traceHandler{h}), nil
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}
