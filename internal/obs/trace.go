package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Observer receives stage durations. Trace implements it, so numeric
// layers (core, chainmodel) can report phase timings through a
// one-method interface without knowing about spans or contexts.
type Observer interface {
	Observe(stage string, d time.Duration)
}

// maxSpans bounds the per-trace span log so a 4096-cell sweep cannot
// grow an unbounded tree; stages keep aggregating past the cap.
const maxSpans = 256

// StageStat aggregates all spans (and Observe calls) of one stage.
type StageStat struct {
	Duration time.Duration
	Count    int
}

type spanRecord struct {
	name   string
	id     string
	parent string
	start  time.Duration // offset from trace start
	dur    time.Duration
	attrs  []attr
}

type attr struct{ key, value string }

// Trace is the per-request trace: a W3C-compatible trace ID plus the
// spans and stage aggregates recorded under it. All methods are safe
// for concurrent use (sweep lanes record spans from pool workers).
type Trace struct {
	traceID string
	start   time.Time

	mu      sync.Mutex
	spans   []spanRecord
	stages  map[string]*StageStat
	dropped int
}

// NewTrace builds a trace from an incoming W3C traceparent header
// value; when the header is empty or malformed it mints a fresh
// crypto/rand trace ID. The returned trace is never nil.
func NewTrace(traceparent string) *Trace {
	id, _, ok := parseTraceparent(traceparent)
	if !ok {
		id = randHex(16)
	}
	return &Trace{traceID: id, start: time.Now(), stages: make(map[string]*StageStat)}
}

// NewChildTrace builds a fresh trace sharing parent's trace ID, for
// work (async jobs) that outlives the request that recorded parent.
// A nil parent yields a fresh trace.
func NewChildTrace(parent *Trace) *Trace {
	if parent == nil {
		return NewTrace("")
	}
	return &Trace{traceID: parent.traceID, start: time.Now(), stages: make(map[string]*StageStat)}
}

// TraceID returns the 32-hex-digit trace ID.
func (t *Trace) TraceID() string { return t.traceID }

// Elapsed returns time since the trace started.
func (t *Trace) Elapsed() time.Duration { return time.Since(t.start) }

// Observe records a stage duration with no span tree entry beyond a
// flat leaf; it satisfies Observer for the numeric layers.
func (t *Trace) Observe(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.record(spanRecord{name: stage, start: time.Since(t.start) - d, dur: d})
}

func (t *Trace) record(r spanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stages[r.name]
	if st == nil {
		st = &StageStat{}
		t.stages[r.name] = st
	}
	st.Duration += r.dur
	st.Count++
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, r)
	} else {
		t.dropped++
	}
}

// Stages returns a copy of the per-stage aggregates.
func (t *Trace) Stages() map[string]StageStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]StageStat, len(t.stages))
	for k, v := range t.stages {
		out[k] = *v
	}
	return out
}

// SpanTree renders the recorded spans as a compact one-line tree:
// name=dur{attrs}[children...], siblings space-separated, for
// slow-request logs. Dropped spans are noted at the end.
func (t *Trace) SpanTree() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	spans := make([]spanRecord, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()

	children := make(map[string][]int)
	known := make(map[string]bool)
	for _, s := range spans {
		if s.id != "" {
			known[s.id] = true
		}
	}
	var roots []int
	for i, s := range spans {
		if s.parent != "" && known[s.parent] {
			children[s.parent] = append(children[s.parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var b strings.Builder
	var render func(idx int)
	render = func(idx int) {
		s := spans[idx]
		b.WriteString(s.name)
		b.WriteByte('=')
		b.WriteString(formatDur(s.dur))
		if len(s.attrs) > 0 {
			b.WriteByte('{')
			for i, a := range s.attrs {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(a.key)
				b.WriteByte('=')
				b.WriteString(a.value)
			}
			b.WriteByte('}')
		}
		if kids := children[s.id]; s.id != "" && len(kids) > 0 {
			b.WriteByte('[')
			for i, k := range kids {
				if i > 0 {
					b.WriteByte(' ')
				}
				render(k)
			}
			b.WriteByte(']')
		}
	}
	for i, r := range roots {
		if i > 0 {
			b.WriteByte(' ')
		}
		render(r)
	}
	if dropped > 0 {
		fmt.Fprintf(&b, " +%d-dropped", dropped)
	}
	return b.String()
}

func formatDur(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 2, 64) + "ms"
}

// Span is one in-process timed operation. A nil *Span is a valid
// no-op, so call sites need no trace-presence checks.
type Span struct {
	tr     *Trace
	name   string
	id     string
	parent string
	start  time.Time
	attrs  []attr
}

// ID returns the span's 16-hex-digit ID ("" for a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// SetAttr attaches a string attribute; shown in span-tree logs.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attr{key, value})
}

// SetAttrInt attaches an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// End records the span into its trace. Safe to call once per span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.record(spanRecord{
		name:   s.name,
		id:     s.id,
		parent: s.parent,
		start:  s.start.Sub(s.tr.start),
		dur:    time.Since(s.start),
		attrs:  s.attrs,
	})
}

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
)

// ContextWithTrace returns ctx carrying the trace.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, t)
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// StartSpan opens a span named name under the context's current span
// (if any) and returns it plus a context in which it is current. With
// no trace in ctx it returns (nil, ctx): zero-cost when tracing is off.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	t := TraceFromContext(ctx)
	if t == nil {
		return nil, ctx
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	s := &Span{tr: t, name: name, id: randHex(8), start: time.Now()}
	if parent != nil {
		s.parent = parent.id
	}
	return s, context.WithValue(ctx, spanKey, s)
}

// Detach returns a fresh context (no deadline, no cancellation)
// carrying ctx's trace and current span. Evaluations run detached from
// request cancellation so singleflight followers can share the result;
// Detach keeps their spans attributed to the leader's trace.
func Detach(ctx context.Context) context.Context {
	out := context.Background()
	if t := TraceFromContext(ctx); t != nil {
		out = context.WithValue(out, traceKey, t)
	}
	if sp, ok := ctx.Value(spanKey).(*Span); ok {
		out = context.WithValue(out, spanKey, sp)
	}
	return out
}

// Traceparent renders a W3C traceparent header value for propagating
// this trace downstream; span names the current span ("" mints the
// 16-hex parent-id randomly, as required for a valid header).
func (t *Trace) Traceparent(span *Span) string {
	id := span.ID()
	if id == "" {
		id = randHex(8)
	}
	return "00-" + t.traceID + "-" + id + "-01"
}

// parseTraceparent validates a W3C trace-context header:
// version "-" trace-id(32 hex) "-" parent-id(16 hex) "-" flags(2 hex),
// rejecting all-zero IDs and the reserved version ff.
func parseTraceparent(h string) (traceID, parentID string, ok bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return "", "", false
	}
	ver, tid, pid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return "", "", false
	}
	if ver == "00" && len(parts) != 4 {
		return "", "", false
	}
	if len(tid) != 32 || !isLowerHex(tid) || allZero(tid) {
		return "", "", false
	}
	if len(pid) != 16 || !isLowerHex(pid) || allZero(pid) {
		return "", "", false
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return "", "", false
	}
	return tid, pid, true
}

func isLowerHex(s string) bool {
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for _, c := range s {
		if c != '0' {
			return false
		}
	}
	return true
}

func randHex(nBytes int) string {
	b := make([]byte, nBytes)
	if _, err := rand.Read(b); err != nil {
		panic("obs: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// SortedStages returns stage names sorted for deterministic rendering.
func SortedStages(stages map[string]StageStat) []string {
	names := make([]string, 0, len(stages))
	for k := range stages {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
