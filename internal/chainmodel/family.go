package chainmodel

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// Cell is one parameter point of a family. Families choose their own
// concrete type; it must be a comparable value (the sweep planner and
// serving layer use cells and the keys derived from them in maps).
type Cell = any

// Family is one absorbing-chain model: a parameter space, a state
// space, and the sweep structure the amortized evaluator exploits. A
// family's methods must be safe for concurrent use; Build is called
// from evaluator goroutines.
type Family interface {
	// Name is the registry key ("targeted-attack", "apt-compromise").
	Name() string
	// Description is a one-line human summary.
	Description() string

	// Dists lists the family's named initial distributions; the first
	// is the default.
	Dists() []string
	// ParseDist canonicalizes an initial-distribution name; the empty
	// string selects the default. Unknown names are an error.
	ParseDist(s string) (string, error)

	// ParseCell extracts and validates one cell from a JSON request
	// body (the serving layer passes the whole /v1/analyze body; common
	// fields like "model", "distribution", "sojourns" and "solver" are
	// the caller's, a family reads only its own parameters).
	ParseCell(raw json.RawMessage) (Cell, error)
	// ParsePlan extracts and validates a grid of cells from a JSON
	// request body, enumerated in the family's canonical sweep order:
	// group key outermost, warm-start lane axis innermost.
	ParsePlan(raw json.RawMessage) ([]Cell, error)
	// CellDTO returns the JSON-marshalable representation of a cell for
	// responses.
	CellDTO(cell Cell) any
	// CellKey renders a cell canonically for cache keys: equal cells
	// must render equal, unequal cells unequal (hex float formatting,
	// not decimal rounding).
	CellKey(cell Cell) string
	// StateCount sizes a cell's state space without building it, so
	// request limits apply before any allocation.
	StateCount(cell Cell) (int, error)

	// GroupKey maps a cell to its shared-structure group: cells with
	// equal (comparable) keys share the immutable tables NewShared
	// builds (the paper model groups by cluster geometry (C, ∆)).
	GroupKey(cell Cell) any
	// NewShared builds one group's immutable shared tables from the
	// group's cells (state space, memoized kernels, gain tables). The
	// returned value is handed back to Signature and Build.
	NewShared(cells []Cell) (any, error)
	// Signature maps a cell to its chain-equality class: two cells of
	// one group with equal (comparable) signatures provably build the
	// same Markov chain AND the same initial distribution, so one
	// solve serves both (ν-thresholding dedup for the paper model).
	Signature(shared any, cell Cell) (any, error)
	// LaneKey maps a cell to its warm-start lane: consecutive
	// equivalence classes whose leaders have equal (comparable) lane
	// keys are evaluated sequentially, each seeding its iterative
	// solves from the previous chain's converged vectors. The axis
	// excluded from the lane key should be the family's "slow" axis,
	// enumerated innermost by ParsePlan.
	LaneKey(cell Cell) any
	// Build constructs the analyzable instance of one cell, reading the
	// group's shared tables and fanning matrix construction across
	// buildPool (nil builds serially; output is bit-identical either
	// way).
	Build(shared any, cell Cell, sc matrix.SolverConfig, buildPool *engine.Pool) (Instance, error)
}

var (
	regMu sync.RWMutex
	reg   = make(map[string]Family)
)

// Register adds a family to the registry; it panics on a duplicate
// name. Families call it from an init function, so importing a model
// package (even blank) makes it servable.
func Register(f Family) {
	regMu.Lock()
	defer regMu.Unlock()
	name := f.Name()
	if _, dup := reg[name]; dup {
		panic(fmt.Sprintf("chainmodel: duplicate family %q", name))
	}
	reg[name] = f
}

// Lookup returns the named family. The empty name selects DefaultFamily.
func Lookup(name string) (Family, bool) {
	if name == "" {
		name = DefaultFamily
	}
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := reg[name]
	return f, ok
}

// DefaultFamily is the registry name the serving layer and CLIs fall
// back to when no model is named: the source paper's targeted-attack
// chain.
const DefaultFamily = "targeted-attack"

// Names lists the registered family names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Families lists the registered families in Names order.
func Families() []Family {
	names := Names()
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Family, 0, len(names))
	for _, name := range names {
		out = append(out, reg[name])
	}
	return out
}
