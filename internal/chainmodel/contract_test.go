package chainmodel_test

import (
	"encoding/json"
	"math"
	"testing"

	// The contract runs over every registered family: import them all.
	_ "targetedattacks/internal/aptchain"
	"targetedattacks/internal/chainmodel"
	_ "targetedattacks/internal/core"
	"targetedattacks/internal/matrix"
)

// representativeCells maps each registered family to a few analyze
// request bodies the contract test builds instances from. Adding a
// model family requires adding its cells here — the test fails loudly
// otherwise, so no family ships without contract coverage.
var representativeCells = map[string][]string{
	"targeted-attack": {
		`{"c":7,"delta":7,"k":1,"mu":0.2,"d":0.9,"nu":0.1}`,
		`{"c":9,"delta":6,"k":4,"mu":0.35,"d":0.5,"nu":0.4}`,
	},
	"apt-compromise": {
		`{"n":6,"theta":0.5,"phi":0.4,"rho":0.3,"detect":0.7}`,
		`{"n":10,"theta":0.9,"phi":0.1,"rho":0,"detect":0.2}`,
	},
}

// TestFamilyContract is the model-level contract every registered
// family must satisfy: parse its own cells, build instances whose
// transition matrices pass the stochasticity contract (transient rows
// sum to 1 within 1e-12, absorbing rows exact self-loops), declare
// comparable planner keys, and analyze end-to-end with absorption
// probabilities partitioning the mass.
func TestFamilyContract(t *testing.T) {
	fams := chainmodel.Families()
	if len(fams) < 2 {
		t.Fatalf("registry holds %d families, want the paper model and at least one more", len(fams))
	}
	for _, fam := range fams {
		fam := fam
		t.Run(fam.Name(), func(t *testing.T) {
			raws, ok := representativeCells[fam.Name()]
			if !ok {
				t.Fatalf("no representative cells for family %q — add them to representativeCells", fam.Name())
			}
			if fam.Description() == "" {
				t.Error("Description must be non-empty")
			}
			dists := fam.Dists()
			if len(dists) == 0 {
				t.Fatal("Dists must name at least one initial distribution")
			}
			if def, err := fam.ParseDist(""); err != nil || def != dists[0] {
				t.Errorf("ParseDist(\"\") = (%q, %v), want the default %q", def, err, dists[0])
			}
			if _, err := fam.ParseDist("no-such-distribution"); err == nil {
				t.Error("ParseDist must reject unknown names")
			}
			seenKeys := make(map[string]bool)
			for _, raw := range raws {
				cell, err := fam.ParseCell(json.RawMessage(raw))
				if err != nil {
					t.Fatalf("ParseCell(%s): %v", raw, err)
				}
				key := fam.CellKey(cell)
				if key == "" || seenKeys[key] {
					t.Fatalf("CellKey(%s) = %q, want unique non-empty keys", raw, key)
				}
				seenKeys[key] = true
				// Planner keys must be comparable: using them as map keys
				// panics otherwise.
				_ = map[any]bool{fam.GroupKey(cell): true}
				_ = map[any]bool{fam.LaneKey(cell): true}
				shared, err := fam.NewShared([]chainmodel.Cell{cell})
				if err != nil {
					t.Fatalf("NewShared(%s): %v", raw, err)
				}
				sig, err := fam.Signature(shared, cell)
				if err != nil {
					t.Fatalf("Signature(%s): %v", raw, err)
				}
				_ = map[any]bool{sig: true}
				inst, err := fam.Build(shared, cell, matrix.SolverConfig{Kind: "dense"}, nil)
				if err != nil {
					t.Fatalf("Build(%s): %v", raw, err)
				}
				states, err := fam.StateCount(cell)
				if err != nil || states != inst.NumStates() {
					t.Errorf("StateCount(%s) = (%d, %v), instance has %d states", raw, states, err, inst.NumStates())
				}
				if inst.NumTransient() <= 0 || inst.NumTransient() >= inst.NumStates() {
					t.Errorf("%s: %d transient of %d states, want a proper split", raw, inst.NumTransient(), inst.NumStates())
				}
				if err := chainmodel.ValidateInstance(inst, chainmodel.DefaultStochasticityTol); err != nil {
					t.Errorf("stochasticity contract (%s): %v", raw, err)
				}
				if len(inst.CleanClasses()) == 0 {
					t.Errorf("%s: CleanClasses is empty", raw)
				}
				for _, dist := range dists {
					a, err := chainmodel.Analyze(inst, dist, 2)
					if err != nil {
						t.Fatalf("Analyze(%s, %s): %v", raw, dist, err)
					}
					var mass float64
					for _, v := range a.Absorption {
						mass += v
					}
					// Absorption probabilities come out of linear solves, so
					// slow chains (small δ) keep more conditioning error than
					// the 1e-12 matrix contract; 1e-9 matches the
					// sparse-vs-dense equivalence tolerance.
					if math.Abs(mass-1) > 1e-9 {
						t.Errorf("%s/%s: absorption mass %v, want 1", raw, dist, mass)
					}
					if a.HitProbability < 0 || a.HitProbability > 1 {
						t.Errorf("%s/%s: hit probability %v outside [0,1]", raw, dist, a.HitProbability)
					}
					if a.TimeInA < 0 || a.TimeInB < 0 {
						t.Errorf("%s/%s: negative expected times (%v, %v)", raw, dist, a.TimeInA, a.TimeInB)
					}
					if len(a.SojournsA) != 2 || len(a.SojournsB) != 2 {
						t.Errorf("%s/%s: sojourn batches sized (%d, %d), want 2", raw, dist, len(a.SojournsA), len(a.SojournsB))
					}
				}
			}
		})
	}
}

// TestRegistryLookup: name resolution, the default family, and the
// sorted name list the serving layer embeds in its errors.
func TestRegistryLookup(t *testing.T) {
	if _, ok := chainmodel.Lookup(""); !ok {
		t.Fatal("empty name must resolve to the default family")
	}
	fam, ok := chainmodel.Lookup(chainmodel.DefaultFamily)
	if !ok || fam.Name() != chainmodel.DefaultFamily {
		t.Fatalf("Lookup(%q) = (%v, %v)", chainmodel.DefaultFamily, fam, ok)
	}
	if _, ok := chainmodel.Lookup("no-such-family"); ok {
		t.Error("unknown names must not resolve")
	}
	names := chainmodel.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
	seen := make(map[string]bool)
	for _, f := range chainmodel.Families() {
		seen[f.Name()] = true
	}
	for _, name := range names {
		if !seen[name] {
			t.Errorf("family %q listed but not returned by Families()", name)
		}
	}
}

// TestValidateStochasticityRejects: the contract checker must catch the
// defects it exists for.
func TestValidateStochasticityRejects(t *testing.T) {
	build := func(rows [][]struct {
		j int
		v float64
	}) *matrix.CSR {
		rb := matrix.NewRowBuilder(len(rows))
		for _, row := range rows {
			for _, e := range row {
				if err := rb.Add(e.j, e.v); err != nil {
					t.Fatal(err)
				}
			}
			rb.EndRow()
		}
		m, err := matrix.ConcatRows(len(rows), rb)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	type e = struct {
		j int
		v float64
	}
	transient := func(i int) bool { return i == 0 }
	ok := build([][]e{{{0, 0.5}, {1, 0.5}}, {{1, 1}}})
	if err := chainmodel.ValidateStochasticity(ok, transient, 0); err != nil {
		t.Fatalf("well-formed chain rejected: %v", err)
	}
	for name, m := range map[string]*matrix.CSR{
		"leaky transient row": build([][]e{{{0, 0.5}, {1, 0.4}}, {{1, 1}}}),
		"negative entry":      build([][]e{{{0, 1.5}, {1, -0.5}}, {{1, 1}}}),
		"absorbing non-self":  build([][]e{{{0, 0.5}, {1, 0.5}}, {{0, 1}}}),
		"absorbing partial":   build([][]e{{{0, 0.5}, {1, 0.5}}, {{1, 0.5}, {0, 0.5}}}),
	} {
		if err := chainmodel.ValidateStochasticity(m, transient, 0); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := chainmodel.ValidateStochasticity(nil, transient, 0); err == nil {
		t.Error("nil matrix accepted")
	}
}
