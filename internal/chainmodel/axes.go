package chainmodel

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// MaxAxisPoints bounds the number of values a single axis expression
// may expand to. Axis expressions reach the parsers straight from
// untrusted HTTP requests, so the bound must hold before any
// allocation: a range like "1:4000000000" is rejected, not expanded.
const MaxAxisPoints = 100_000

// ParseInts parses an integer axis: a comma-separated list ("7,9,12") or
// an inclusive lo:hi[:step] range ("4:8" is 4,5,6,7,8; "10:50:10" is
// 10,20,30,40,50). An axis may expand to at most MaxAxisPoints values.
func ParseInts(s string) ([]int, error) {
	parts, isRange, err := splitAxis(s)
	if err != nil {
		return nil, err
	}
	if isRange {
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		step := 1
		var err3 error
		if len(parts) == 3 {
			step, err3 = strconv.Atoi(parts[2])
		}
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("chainmodel: bad integer range %q", s)
		}
		if step < 1 {
			return nil, fmt.Errorf("chainmodel: range %q needs a positive step", s)
		}
		if hi < lo {
			return nil, fmt.Errorf("chainmodel: range %q is empty (hi < lo)", s)
		}
		// Size the range in uint64 (hi−lo cannot overflow there for
		// hi ≥ lo) before allocating anything.
		count := (uint64(hi)-uint64(lo))/uint64(step) + 1
		if count > MaxAxisPoints {
			return nil, fmt.Errorf("chainmodel: range %q expands to %d values, limit is %d", s, count, MaxAxisPoints)
		}
		out := make([]int, 0, count)
		// Advance incrementally: v never exceeds hi, so the addition
		// cannot overflow even for ranges near the int extremes.
		for v, i := lo, uint64(0); ; v, i = v+step, i+1 {
			out = append(out, v)
			if i+1 == count {
				break
			}
		}
		return out, nil
	}
	if len(parts) > MaxAxisPoints {
		return nil, fmt.Errorf("chainmodel: axis %q lists %d values, limit is %d", s, len(parts), MaxAxisPoints)
	}
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("chainmodel: bad integer %q in axis %q", p, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a float axis: a comma-separated list
// ("0.1,0.2,0.5") or an inclusive lo:hi:step range ("0.5:0.9:0.1").
// Range points are computed as lo + i·step to keep them exactly
// reproducible; the endpoint is included with a hair of floating slack
// (step·1e-9 — enough to absorb accumulation error, never enough to
// emit a point past hi). An axis may expand to at most MaxAxisPoints
// values (so a denormal step cannot expand into an allocation bomb).
func ParseFloats(s string) ([]float64, error) {
	parts, isRange, err := splitAxis(s)
	if err != nil {
		return nil, err
	}
	if isRange {
		if len(parts) != 3 {
			return nil, fmt.Errorf("chainmodel: float range %q needs lo:hi:step", s)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		step, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("chainmodel: bad float range %q", s)
		}
		if step <= 0 || math.IsInf(step, 0) || math.IsNaN(step) ||
			math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsInf(hi, 0) || math.IsNaN(hi) {
			return nil, fmt.Errorf("chainmodel: range %q needs finite bounds and a positive step", s)
		}
		if hi < lo {
			return nil, fmt.Errorf("chainmodel: range %q is empty (hi < lo)", s)
		}
		var out []float64
		for i := 0; ; i++ {
			v := lo + float64(i)*step
			if v > hi+step*1e-9 {
				break
			}
			if len(out) >= MaxAxisPoints {
				return nil, fmt.Errorf("chainmodel: range %q expands past %d values", s, MaxAxisPoints)
			}
			out = append(out, v)
		}
		return out, nil
	}
	if len(parts) > MaxAxisPoints {
		return nil, fmt.Errorf("chainmodel: axis %q lists %d values, limit is %d", s, len(parts), MaxAxisPoints)
	}
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			// NaN passes every interval check downstream (it fails
			// neither v < lo nor v > hi), so non-finite values are
			// stopped at the parse boundary.
			return nil, fmt.Errorf("chainmodel: bad float %q in axis %q", p, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// splitAxis splits an axis expression into its parts and reports whether
// it uses the colon range syntax.
func splitAxis(s string) ([]string, bool, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, false, fmt.Errorf("chainmodel: empty axis")
	}
	if strings.Contains(s, ":") {
		if strings.Contains(s, ",") {
			return nil, false, fmt.Errorf("chainmodel: axis %q mixes list and range syntax", s)
		}
		parts := strings.Split(s, ":")
		if len(parts) != 2 && len(parts) != 3 {
			return nil, false, fmt.Errorf("chainmodel: range %q needs lo:hi or lo:hi:step", s)
		}
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts, true, nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf("chainmodel: empty axis %q", s)
	}
	return out, false, nil
}
