// Package chainmodel defines the model interface of the absorbing-chain
// analytics engine: what a Markov-chain family must declare for the
// generic layers — parallel matrix construction (internal/matrix), the
// Sericola closed forms (internal/markov), the amortized sweep planner
// (internal/sweep) and the HTTP serving layer (internal/attackd) — to
// analyze it without knowing its state space.
//
// A family (one per model, e.g. the paper's targeted-attack chain or the
// APT compromise chain) declares:
//
//   - state enumeration and the transient/absorbing split, via the
//     RowEmitter its instances build their transition matrices through;
//   - sparse row emission compatible with matrix.RowBuilder and the
//     chunked parallel build (BuildMatrix — bit-identical CSR output for
//     any worker count);
//   - the transient subset split (A, B) and named absorbing classes,
//     via the markov.Chain each Instance assembles;
//   - sweep structure: a grouping key for shared immutable tables, a
//     dedup signature for provably identical cells, and a warm-start
//     lane key along the family's natural slow axis.
//
// Families register themselves (Register, usually from an init function)
// so the serving layer and CLIs can select them by name.
package chainmodel

import (
	"context"
	"fmt"
	"math"
	"time"

	"targetedattacks/internal/engine"
	"targetedattacks/internal/markov"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/obs"
)

// RowEmitter enumerates a chain's states and emits the sparse transition
// row of each transient state. Emitters must be safe for concurrent
// EmitRow calls on distinct rows: the parallel build invokes them from
// multiple goroutines.
type RowEmitter interface {
	// NumStates is the total number of states.
	NumStates() int
	// Transient reports whether state i is transient. Absorbing states
	// get an exact self-loop emitted for them by BuildMatrix.
	Transient(i int) bool
	// EmitRow adds the outgoing probabilities of transient state i to
	// the builder's current row (duplicate targets are summed, zeros
	// dropped). It must not call EndRow.
	EmitRow(rb *matrix.RowBuilder, i int) error
}

// buildChunkRows is the number of consecutive rows one pool task seals
// into its own matrix.RowBuilder: large enough to amortize scheduling and
// builder allocation, small enough to load-balance the ~n/chunk tasks
// across workers. It is the same chunking the paper model always used,
// so matrices built through this generic path are bit-identical to the
// pre-interface builds.
const buildChunkRows = 512

// BuildMatrix constructs a transition matrix from em, fanning row chunks
// across pool (nil builds serially). Rows are emitted into row-local
// builders and concatenated in row order, so the CSR — row pointers,
// column indices and values — is bit-identical for any pool width.
// Absorbing states receive an exact self-loop.
func BuildMatrix(em RowEmitter, pool *engine.Pool) (*matrix.CSR, error) {
	return BuildMatrixObserved(em, pool, nil)
}

// BuildMatrixObserved is BuildMatrix reporting the wall-clock duration
// of the whole build as stage "matrix" to o (nil reports nothing). The
// produced matrix is byte-identical to BuildMatrix's.
func BuildMatrixObserved(em RowEmitter, pool *engine.Pool, o obs.Observer) (*matrix.CSR, error) {
	var t0 time.Time
	if o != nil {
		t0 = time.Now()
	}
	n := em.NumStates()
	nChunks := (n + buildChunkRows - 1) / buildChunkRows
	parts := make([]*matrix.RowBuilder, nChunks)
	err := engine.Ensure(pool).Run(context.Background(), nChunks, func(chunk int) error {
		lo := chunk * buildChunkRows
		hi := min(lo+buildChunkRows, n)
		rb := matrix.NewRowBuilder(n)
		for i := lo; i < hi; i++ {
			if !em.Transient(i) {
				if err := rb.Add(i, 1); err != nil {
					return err
				}
			} else if err := em.EmitRow(rb, i); err != nil {
				return err
			}
			rb.EndRow()
		}
		parts[chunk] = rb
		return nil
	})
	if err != nil {
		return nil, err
	}
	m, err := matrix.ConcatRows(n, parts...)
	if err != nil {
		return nil, fmt.Errorf("chainmodel: assembling transition matrix: %w", err)
	}
	if o != nil {
		o.Observe("matrix", time.Since(t0))
	}
	return m, nil
}

// WarmStart re-exports the chain-level warm start: the converged
// solution vectors of one analysis, usable as initial guesses for a
// neighboring cell's iterative solves.
type WarmStart = markov.WarmStart

// Instance is one analyzable chain of a family: a built transition
// matrix plus the partition the markov kernel needs. Instances are
// solver-stateful (markov.Chain caches factorizations), so one instance
// must not be analyzed concurrently.
type Instance interface {
	// NumStates is the total number of states.
	NumStates() int
	// NumTransient is the number of transient states (|A| + |B|).
	NumTransient() int
	// TransientState reports whether state i is transient.
	TransientState(i int) bool
	// Matrix is the full transition matrix.
	Matrix() *matrix.CSR
	// CleanClasses names the absorbing classes reachable without ever
	// entering subset B; Analysis.HitProbability is 1 minus the
	// probability of being absorbed in one of them along an all-A path.
	CleanClasses() []string
	// Chain assembles the absorbing-chain view for a named initial
	// distribution of the family.
	Chain(dist string) (*markov.Chain, error)
}

// Analysis bundles the closed-form results of one instance and initial
// distribution, in model-free vocabulary: subset A is the family's
// "good" transient set, subset B its "bad" one (safe/polluted for the
// paper model, contained/escalated for the APT model).
type Analysis struct {
	// TimeInA is E(T_A), the expected number of transitions spent in
	// subset A before absorption; TimeInB is E(T_B).
	TimeInA, TimeInB float64
	// SojournsA[i] is the expected duration of the (i+1)-th sojourn in
	// subset A; SojournsB likewise for B.
	SojournsA, SojournsB []float64
	// Absorption maps each absorbing class to its absorption probability.
	Absorption map[string]float64
	// HitProbability is the probability that the chain ever visits
	// subset B (or is absorbed outside the clean classes): the
	// complement of being absorbed in a clean class along an all-A path.
	HitProbability float64
	// Solver summarizes the linear-solver work behind this analysis.
	Solver matrix.SolveStats
}

// AnalyzeChain runs every closed-form relation on an assembled chain:
// expected total times in A and B, the first nSojourns successive
// sojourn expectations of both subsets (batched lockstep recursion),
// absorption probabilities per class, and the hit probability of subset
// B as the complement of a clean all-A absorption. The call sequence and
// arithmetic are exactly the paper model's historical analysis, so
// results through this generic path are bit-identical to it.
func AnalyzeChain(ch *markov.Chain, cleanClasses []string, nSojourns int) (*Analysis, error) {
	ta, err := ch.ExpectedTotalTimeInA()
	if err != nil {
		return nil, fmt.Errorf("chainmodel: E(T_A): %w", err)
	}
	tb, err := ch.ExpectedTotalTimeInB()
	if err != nil {
		return nil, fmt.Errorf("chainmodel: E(T_B): %w", err)
	}
	// The two sojourn recursions advance in lockstep, batching their
	// left solves per block.
	sa, sb, err := ch.SuccessiveSojournsBoth(nSojourns)
	if err != nil {
		return nil, fmt.Errorf("chainmodel: sojourns: %w", err)
	}
	abs, err := ch.AbsorptionProbabilities()
	if err != nil {
		return nil, fmt.Errorf("chainmodel: absorption: %w", err)
	}
	// "Ever in B" counts transient B visits AND direct absorptions into
	// a non-clean class: complement of dying in a clean class without
	// ever leaving A.
	clean, err := ch.AbsorbedWithinA(cleanClasses...)
	if err != nil {
		return nil, fmt.Errorf("chainmodel: hit probability: %w", err)
	}
	hit := 1 - clean
	// Clamp float64 round-off at the extremes (e.g. a zero attack rate
	// gives clean = 1 − ulp).
	if hit < 1e-14 {
		hit = 0
	}
	if hit > 1 {
		hit = 1
	}
	return &Analysis{
		TimeInA:        ta,
		TimeInB:        tb,
		SojournsA:      sa,
		SojournsB:      sb,
		Absorption:     abs,
		HitProbability: hit,
		Solver:         ch.SolveStats(),
	}, nil
}

// Analyze assembles inst's chain for the named initial distribution and
// runs the full closed-form analysis.
func Analyze(inst Instance, dist string, nSojourns int) (*Analysis, error) {
	a, _, err := AnalyzeWarm(inst, dist, nSojourns, nil)
	return a, err
}

// AnalyzeWarm is Analyze with warm starting: iterative solves seed from
// ws (nil means all cold), and the analysis's own converged vectors are
// returned for chaining into a neighboring cell. Warm-started results
// satisfy the same residual tolerances as cold ones.
func AnalyzeWarm(inst Instance, dist string, nSojourns int, ws *markov.WarmStart) (*Analysis, *markov.WarmStart, error) {
	ch, err := inst.Chain(dist)
	if err != nil {
		return nil, nil, err
	}
	ch.SeedWarmStart(ws)
	a, err := AnalyzeChain(ch, inst.CleanClasses(), nSojourns)
	if err != nil {
		return nil, nil, err
	}
	return a, ch.RecordedWarmStart(), nil
}

// CloneAnalysis deep-copies an Analysis so callers may mutate shared
// sweep results independently.
func CloneAnalysis(a *Analysis) *Analysis {
	b := *a
	b.SojournsA = append([]float64(nil), a.SojournsA...)
	b.SojournsB = append([]float64(nil), a.SojournsB...)
	b.Absorption = make(map[string]float64, len(a.Absorption))
	for k, v := range a.Absorption {
		b.Absorption[k] = v
	}
	return &b
}

// DefaultStochasticityTol is the row-sum tolerance of the stochasticity
// contract: transition rows built from exact probability splits keep
// rounding error well under 1e-12.
const DefaultStochasticityTol = 1e-12

// ValidateStochasticity checks that m is the transition matrix of a
// well-formed absorbing chain: every entry a probability, every
// transient row summing to 1 within tol, and every absorbing row an
// exact self-loop (a single stored entry at (i, i) with value exactly
// 1). transient reports the split; tol ≤ 0 selects
// DefaultStochasticityTol. The check is sparse: it visits only stored
// entries. Every registered family must satisfy it (the chainmodel
// contract test runs it table-driven over the registry).
func ValidateStochasticity(m *matrix.CSR, transient func(i int) bool, tol float64) error {
	if m == nil || transient == nil {
		return fmt.Errorf("chainmodel: ValidateStochasticity needs a matrix and a transient split")
	}
	if tol <= 0 {
		tol = DefaultStochasticityTol
	}
	n := m.Rows()
	if m.Cols() != n {
		return fmt.Errorf("chainmodel: transition matrix is %dx%d, want square", n, m.Cols())
	}
	for i := 0; i < n; i++ {
		var sum float64
		var entries int
		var selfLoop float64
		var bad error
		m.RowNonZeros(i, func(j int, v float64) {
			entries++
			if j == i {
				selfLoop = v
			}
			if bad == nil && (v < 0 || v > 1+tol || math.IsNaN(v)) {
				bad = fmt.Errorf("chainmodel: entry (%d,%d) is %v, not a probability", i, j, v)
			}
			sum += v
		})
		if bad != nil {
			return bad
		}
		if transient(i) {
			if math.Abs(sum-1) > tol {
				return fmt.Errorf("chainmodel: transient state %d: row sums to %v (|Δ| = %.3g > %g)",
					i, sum, math.Abs(sum-1), tol)
			}
			continue
		}
		if entries != 1 || selfLoop != 1 {
			return fmt.Errorf("chainmodel: absorbing state %d: want exact self-loop, got %d entries with self-loop %v",
				i, entries, selfLoop)
		}
	}
	return nil
}

// ValidateInstance runs the stochasticity contract on a built instance.
func ValidateInstance(inst Instance, tol float64) error {
	return ValidateStochasticity(inst.Matrix(), inst.TransientState, tol)
}
