package identity

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
)

// Errors returned by certificate and signature verification.
var (
	ErrBadSignature = errors.New("identity: invalid signature")
	ErrBadID        = errors.New("identity: claimed identifier does not match any valid incarnation")
)

// Certificate binds a subject and public key to a creation time t0, signed
// by the CA. It plays the role of the paper's X.509 certificate: t0 is
// among the signed fields, so a malicious peer cannot unnoticeably extend
// its identifier lifetime.
type Certificate struct {
	// Subject is the peer's registered name.
	Subject string
	// PublicKey is the peer's ed25519 verification key.
	PublicKey ed25519.PublicKey
	// CreatedAt is t0, the certificate creation time.
	CreatedAt float64
	// Serial is the CA-assigned serial number.
	Serial uint64
	// Signature is the CA's signature over the encoded fields.
	Signature []byte
}

// encodeFields serializes the signed fields deterministically.
func (c *Certificate) encodeFields() []byte {
	var buf bytes.Buffer
	writeBytes := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		buf.Write(n[:])
		buf.Write(b)
	}
	writeBytes([]byte(c.Subject))
	writeBytes(c.PublicKey)
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(int64(c.CreatedAt*1e6))) // µ-tick fixed point
	buf.Write(t[:])
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], c.Serial)
	buf.Write(s[:])
	return buf.Bytes()
}

// InitialID derives id0 = H(certificate fields) truncated to m bits.
func (c *Certificate) InitialID(m int) (ID, error) {
	return NewID(sha256.Sum256(c.encodeFields()), m)
}

// CA is a registration authority issuing signed certificates.
type CA struct {
	name   string
	pub    ed25519.PublicKey
	priv   ed25519.PrivateKey
	serial uint64
}

// NewCA creates a CA with a deterministic key derived from seed (the
// simulator needs reproducibility; a production deployment would use
// crypto/rand).
func NewCA(name string, seed int64) (*CA, error) {
	if name == "" {
		return nil, fmt.Errorf("identity: CA needs a name")
	}
	pub, priv, err := ed25519.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("identity: generating CA key: %w", err)
	}
	return &CA{name: name, pub: pub, priv: priv}, nil
}

// Name returns the CA name.
func (ca *CA) Name() string { return ca.name }

// PublicKey returns the CA verification key.
func (ca *CA) PublicKey() ed25519.PublicKey { return ca.pub }

// Issue signs a certificate for subject with the given public key and
// creation time t0.
func (ca *CA) Issue(subject string, pub ed25519.PublicKey, t0 float64) (*Certificate, error) {
	if subject == "" {
		return nil, fmt.Errorf("identity: empty subject")
	}
	if len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("identity: public key has %d bytes, want %d", len(pub), ed25519.PublicKeySize)
	}
	ca.serial++
	cert := &Certificate{
		Subject:   subject,
		PublicKey: append(ed25519.PublicKey(nil), pub...),
		CreatedAt: t0,
		Serial:    ca.serial,
	}
	cert.Signature = ed25519.Sign(ca.priv, cert.encodeFields())
	return cert, nil
}

// VerifyCertificate checks the CA signature over the certificate fields.
func VerifyCertificate(caPub ed25519.PublicKey, cert *Certificate) error {
	if cert == nil {
		return fmt.Errorf("identity: nil certificate")
	}
	if !ed25519.Verify(caPub, cert.encodeFields(), cert.Signature) {
		return fmt.Errorf("%w: certificate %q/%d", ErrBadSignature, cert.Subject, cert.Serial)
	}
	return nil
}

// Identity is a peer-held credential: the certificate plus the matching
// private key, able to sign messages and derive the current identifier.
type Identity struct {
	cert *Certificate
	priv ed25519.PrivateKey
	m    int
	id0  ID
}

// NewIdentity registers a fresh peer with the CA at time t0 and returns
// its identity with m-bit identifiers. The key is derived
// deterministically from seed for reproducible simulations.
func NewIdentity(ca *CA, subject string, t0 float64, m int, seed int64) (*Identity, error) {
	if ca == nil {
		return nil, fmt.Errorf("identity: nil CA")
	}
	pub, priv, err := ed25519.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("identity: generating peer key: %w", err)
	}
	cert, err := ca.Issue(subject, pub, t0)
	if err != nil {
		return nil, err
	}
	id0, err := cert.InitialID(m)
	if err != nil {
		return nil, err
	}
	return &Identity{cert: cert, priv: priv, m: m, id0: id0}, nil
}

// Certificate returns the identity's certificate.
func (idn *Identity) Certificate() *Certificate { return idn.cert }

// InitialID returns id0.
func (idn *Identity) InitialID() ID { return idn.id0 }

// CurrentID returns idq = H(id0 × k) for the incarnation at time t with
// identifier lifetime L.
func (idn *Identity) CurrentID(t, lifetime float64) (ID, int64, error) {
	k, err := Incarnation(t, idn.cert.CreatedAt, lifetime)
	if err != nil {
		return ID{}, 0, err
	}
	return DeriveID(idn.id0, k), k, nil
}

// ExpiresAt returns when the incarnation valid at time t expires.
func (idn *Identity) ExpiresAt(t, lifetime float64) (float64, error) {
	k, err := Incarnation(t, idn.cert.CreatedAt, lifetime)
	if err != nil {
		return 0, err
	}
	return ExpiryTime(idn.cert.CreatedAt, lifetime, k), nil
}

// Sign signs a message with the identity's private key.
func (idn *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(idn.priv, msg)
}

// VerifyMessage checks a peer signature against the certificate's key.
func VerifyMessage(cert *Certificate, msg, sig []byte) error {
	if cert == nil {
		return fmt.Errorf("identity: nil certificate")
	}
	if !ed25519.Verify(cert.PublicKey, msg, sig) {
		return fmt.Errorf("%w: message from %q", ErrBadSignature, cert.Subject)
	}
	return nil
}

// VerifyClaimedID checks Property 1 as any peer can (Section III-D): the
// claimed identifier must equal H(id0 × k) for one of the incarnations
// valid at local time t under grace window W. It returns the matching
// incarnation.
func VerifyClaimedID(caPub ed25519.PublicKey, cert *Certificate, claimed ID, t, lifetime, window float64) (int64, error) {
	if err := VerifyCertificate(caPub, cert); err != nil {
		return 0, err
	}
	id0, err := cert.InitialID(claimed.Bits())
	if err != nil {
		return 0, err
	}
	k1, k2, err := ValidIncarnations(t, cert.CreatedAt, lifetime, window)
	if err != nil {
		return 0, err
	}
	for k := k1; k <= k2; k++ {
		if DeriveID(id0, k).Equal(claimed) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: %q at t=%v (valid incarnations %d..%d)",
		ErrBadID, cert.Subject, t, k1, k2)
}
