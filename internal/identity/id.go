// Package identity implements the identifier and security scheme of
// Section III of the DSN 2011 targeted-attack paper: a registration
// authority (CA) issues signed certificates carrying the peer's public
// key and creation time t0; the initial identifier id0 is the hash of
// certificate fields; and the *current* identifier is the hash of id0
// with the current incarnation number k = ⌈(t−t0)/L⌉, which expires every
// L time units (Property 1, induced churn). A grace window W tolerates
// loosely synchronized clocks by accepting two adjacent incarnations.
//
// Substitutions with respect to the paper (see DESIGN.md): X.509 and MD5
// are replaced by a minimal deterministic certificate encoding signed
// with ed25519 and by sha-256 truncated to m bits; the model only relies
// on unforgeability and uniform unpredictable identifiers, which these
// provide.
package identity

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// MaxIDBits is the maximum identifier width (bits of a sha-256 digest).
const MaxIDBits = 256

// ID is an m-bit identifier drawn from the 2^m identifier space.
type ID struct {
	b [32]byte
	m int
}

// NewID builds an ID from a digest, truncated to m bits.
func NewID(digest [32]byte, m int) (ID, error) {
	if m < 1 || m > MaxIDBits {
		return ID{}, fmt.Errorf("identity: id width %d outside [1,%d]", m, MaxIDBits)
	}
	id := ID{b: digest, m: m}
	// Zero the bits beyond m so Equal and String depend only on the
	// truncated value.
	for i := m; i < MaxIDBits; i++ {
		id.clearBit(i)
	}
	return id, nil
}

func (id *ID) clearBit(i int) {
	id.b[i/8] &^= 1 << (7 - uint(i%8))
}

// Bits returns the identifier width m.
func (id ID) Bits() int { return id.m }

// Bit returns bit i (0 = most significant), or an error out of range.
func (id ID) Bit(i int) (int, error) {
	if i < 0 || i >= id.m {
		return 0, fmt.Errorf("identity: bit %d outside [0,%d)", i, id.m)
	}
	return int(id.b[i/8]>>(7-uint(i%8))) & 1, nil
}

// Equal reports value equality (same width, same bits).
func (id ID) Equal(other ID) bool {
	return id.m == other.m && id.b == other.b
}

// String renders the identifier as hex of its first ⌈m/8⌉ bytes.
func (id ID) String() string {
	n := (id.m + 7) / 8
	return hex.EncodeToString(id.b[:n])
}

// CommonPrefixLen returns the number of leading bits shared with other
// (both truncated to the shorter width).
func (id ID) CommonPrefixLen(other ID) int {
	limit := id.m
	if other.m < limit {
		limit = other.m
	}
	for i := 0; i < limit; i++ {
		a, _ := id.Bit(i)
		b, _ := other.Bit(i)
		if a != b {
			return i
		}
	}
	return limit
}

// Incarnation returns the paper's incarnation number k = ⌈(t−t0)/L⌉ at
// time t for a certificate created at t0 with lifetime L. The first
// incarnation is 1: at t = t0 exactly, k is defined as 1.
func Incarnation(t, t0, lifetime float64) (int64, error) {
	if lifetime <= 0 {
		return 0, fmt.Errorf("identity: non-positive lifetime %v", lifetime)
	}
	if t < t0 {
		return 0, fmt.Errorf("identity: time %v before creation %v", t, t0)
	}
	k := int64(math.Ceil((t - t0) / lifetime))
	if k < 1 {
		k = 1
	}
	return k, nil
}

// ExpiryTime returns the instant at which incarnation k expires:
// t0 + k·L (Property 1).
func ExpiryTime(t0, lifetime float64, k int64) float64 {
	return t0 + float64(k)*lifetime
}

// ValidIncarnations returns the incarnation numbers a verifier accepts at
// time t under a grace window W (Section III-D): k₁ = ⌈(t−W/2−t0)/L⌉ and
// k₂ = ⌈(t+W/2−t0)/L⌉. They are frequently equal and differ near an
// expiry boundary.
func ValidIncarnations(t, t0, lifetime, window float64) (int64, int64, error) {
	if window < 0 {
		return 0, 0, fmt.Errorf("identity: negative grace window %v", window)
	}
	early := t - window/2
	if early < t0 {
		early = t0
	}
	k1, err := Incarnation(early, t0, lifetime)
	if err != nil {
		return 0, 0, err
	}
	k2, err := Incarnation(t+window/2, t0, lifetime)
	if err != nil {
		return 0, 0, err
	}
	return k1, k2, nil
}

// DeriveID computes idq = H(id0 × k): the current identifier for
// incarnation k, truncated to id0's width.
func DeriveID(id0 ID, k int64) ID {
	var buf [40]byte
	copy(buf[:32], id0.b[:])
	binary.BigEndian.PutUint64(buf[32:], uint64(k))
	digest := sha256.Sum256(buf[:])
	out, err := NewID(digest, id0.m)
	if err != nil {
		// id0.m was validated at construction; this cannot fail.
		panic(fmt.Sprintf("identity: DeriveID: %v", err))
	}
	return out
}
