package identity

import (
	"crypto/sha256"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA("test-ca", 1)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func newIdentity(t *testing.T, ca *CA, subject string, t0 float64, seed int64) *Identity {
	t.Helper()
	idn, err := NewIdentity(ca, subject, t0, 128, seed)
	if err != nil {
		t.Fatal(err)
	}
	return idn
}

func TestNewIDValidation(t *testing.T) {
	var digest [32]byte
	if _, err := NewID(digest, 0); err == nil {
		t.Error("m=0: want error")
	}
	if _, err := NewID(digest, 257); err == nil {
		t.Error("m=257: want error")
	}
	if _, err := NewID(digest, 128); err != nil {
		t.Error(err)
	}
}

func TestIDTruncation(t *testing.T) {
	// Two digests differing only beyond bit m must compare equal.
	d1 := sha256.Sum256([]byte("x"))
	d2 := d1
	d2[31] ^= 0xFF // differs in the last byte only
	a, err := NewID(d1, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewID(d2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("ids differing beyond bit 64 must be equal at m=64")
	}
	if a.String() != b.String() {
		t.Error("strings must agree after truncation")
	}
	c, err := NewID(d2, 256)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different widths must not be equal")
	}
}

func TestIDBitAccess(t *testing.T) {
	var digest [32]byte
	digest[0] = 0b1010_0000
	id, err := NewID(digest, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 1, 0, 0, 0, 0, 0}
	for i, w := range want {
		got, err := id.Bit(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("bit %d = %d, want %d", i, got, w)
		}
	}
	if _, err := id.Bit(8); err == nil {
		t.Error("bit out of range: want error")
	}
	if _, err := id.Bit(-1); err == nil {
		t.Error("negative bit: want error")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	var d1, d2 [32]byte
	d1[0], d2[0] = 0b1100_0000, 0b1101_0000
	a, _ := NewID(d1, 32)
	b, _ := NewID(d2, 32)
	if got := a.CommonPrefixLen(b); got != 3 {
		t.Errorf("common prefix = %d, want 3", got)
	}
	if got := a.CommonPrefixLen(a); got != 32 {
		t.Errorf("self prefix = %d, want 32", got)
	}
}

func TestIncarnationArithmetic(t *testing.T) {
	tests := []struct {
		t, t0, L float64
		want     int64
	}{
		{0, 0, 10, 1},    // at creation: first incarnation
		{0.1, 0, 10, 1},  // inside first lifetime
		{10, 0, 10, 1},   // boundary belongs to incarnation 1 (ceil)
		{10.1, 0, 10, 2}, // just past the boundary
		{95, 50, 10, 5},
	}
	for _, tt := range tests {
		got, err := Incarnation(tt.t, tt.t0, tt.L)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Incarnation(%v,%v,%v) = %d, want %d", tt.t, tt.t0, tt.L, got, tt.want)
		}
	}
	if _, err := Incarnation(5, 10, 10); err == nil {
		t.Error("t before t0: want error")
	}
	if _, err := Incarnation(5, 0, 0); err == nil {
		t.Error("L=0: want error")
	}
}

func TestExpiryTime(t *testing.T) {
	if got := ExpiryTime(100, 10, 3); got != 130 {
		t.Errorf("ExpiryTime = %v, want 130", got)
	}
}

func TestValidIncarnationsGraceWindow(t *testing.T) {
	// Far from a boundary both incarnations agree.
	k1, k2, err := ValidIncarnations(5, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != 1 || k2 != 1 {
		t.Errorf("mid-lifetime: k1=%d k2=%d, want 1,1", k1, k2)
	}
	// Near the boundary t = 10 they straddle it.
	k1, k2, err = ValidIncarnations(10.2, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != 1 || k2 != 2 {
		t.Errorf("near boundary: k1=%d k2=%d, want 1,2", k1, k2)
	}
	if _, _, err := ValidIncarnations(5, 0, 10, -1); err == nil {
		t.Error("negative window: want error")
	}
}

func TestDeriveIDChangesPerIncarnation(t *testing.T) {
	d := sha256.Sum256([]byte("peer"))
	id0, _ := NewID(d, 128)
	id1 := DeriveID(id0, 1)
	id2 := DeriveID(id0, 2)
	if id1.Equal(id2) {
		t.Error("successive incarnations must differ")
	}
	if id1.Equal(id0) {
		t.Error("derived id must differ from id0")
	}
	if !DeriveID(id0, 1).Equal(id1) {
		t.Error("derivation must be deterministic")
	}
}

func TestCAIssueAndVerify(t *testing.T) {
	ca := newCA(t)
	idn := newIdentity(t, ca, "alice", 100, 7)
	cert := idn.Certificate()
	if err := VerifyCertificate(ca.PublicKey(), cert); err != nil {
		t.Fatal(err)
	}
	// Tampering with t0 must break the signature (Property 1 defense).
	tampered := *cert
	tampered.CreatedAt = 0
	if err := VerifyCertificate(ca.PublicKey(), &tampered); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered t0: got %v, want ErrBadSignature", err)
	}
	tampered = *cert
	tampered.Subject = "mallory"
	if err := VerifyCertificate(ca.PublicKey(), &tampered); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered subject: got %v, want ErrBadSignature", err)
	}
	if err := VerifyCertificate(ca.PublicKey(), nil); err == nil {
		t.Error("nil certificate: want error")
	}
}

func TestCAIssueValidation(t *testing.T) {
	ca := newCA(t)
	if _, err := ca.Issue("", nil, 0); err == nil {
		t.Error("empty subject: want error")
	}
	if _, err := ca.Issue("x", []byte{1, 2}, 0); err == nil {
		t.Error("short key: want error")
	}
	if _, err := NewCA("", 1); err == nil {
		t.Error("empty CA name: want error")
	}
	if _, err := NewIdentity(nil, "x", 0, 128, 1); err == nil {
		t.Error("nil CA: want error")
	}
	if ca.Name() != "test-ca" {
		t.Error("CA name accessor broken")
	}
}

func TestSerialsIncrease(t *testing.T) {
	ca := newCA(t)
	a := newIdentity(t, ca, "a", 0, 1)
	b := newIdentity(t, ca, "b", 0, 2)
	if a.Certificate().Serial >= b.Certificate().Serial {
		t.Error("serials must increase")
	}
}

func TestMessageSigning(t *testing.T) {
	ca := newCA(t)
	idn := newIdentity(t, ca, "alice", 0, 3)
	msg := []byte("join request")
	sig := idn.Sign(msg)
	if err := VerifyMessage(idn.Certificate(), msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMessage(idn.Certificate(), []byte("altered"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("altered message: got %v, want ErrBadSignature", err)
	}
	if err := VerifyMessage(nil, msg, sig); err == nil {
		t.Error("nil cert: want error")
	}
}

func TestVerifyClaimedIDHappyPath(t *testing.T) {
	ca := newCA(t)
	idn := newIdentity(t, ca, "alice", 100, 5)
	const lifetime, window = 50.0, 2.0
	now := 160.0
	claimed, k, err := idn.CurrentID(now, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("incarnation = %d, want 2", k)
	}
	got, err := VerifyClaimedID(ca.PublicKey(), idn.Certificate(), claimed, now, lifetime, window)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("verified incarnation = %d, want 2", got)
	}
}

func TestVerifyClaimedIDRejectsExpired(t *testing.T) {
	ca := newCA(t)
	idn := newIdentity(t, ca, "alice", 100, 5)
	const lifetime, window = 50.0, 2.0
	// The identifier of incarnation 1 is no longer valid at t = 220
	// (incarnation 3, far beyond the grace window).
	stale, _, err := idn.CurrentID(110, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyClaimedID(ca.PublicKey(), idn.Certificate(), stale, 220, lifetime, window); !errors.Is(err, ErrBadID) {
		t.Errorf("stale id: got %v, want ErrBadID", err)
	}
}

func TestVerifyClaimedIDGraceWindowAcceptsNeighbor(t *testing.T) {
	ca := newCA(t)
	idn := newIdentity(t, ca, "alice", 0, 5)
	const lifetime, window = 50.0, 4.0
	// Just after the k=1 → k=2 boundary (t=50), the old id must still be
	// accepted within W/2.
	old, _, err := idn.CurrentID(49.9, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyClaimedID(ca.PublicKey(), idn.Certificate(), old, 51, lifetime, window); err != nil {
		t.Errorf("grace window rejected a barely-expired id: %v", err)
	}
	// Without a grace window it must be rejected.
	if _, err := VerifyClaimedID(ca.PublicKey(), idn.Certificate(), old, 51, lifetime, 0); !errors.Is(err, ErrBadID) {
		t.Errorf("no window: got %v, want ErrBadID", err)
	}
}

func TestVerifyClaimedIDRejectsForeignCertificate(t *testing.T) {
	ca := newCA(t)
	alice := newIdentity(t, ca, "alice", 0, 5)
	mallory := newIdentity(t, ca, "mallory", 0, 6)
	const lifetime, window = 50.0, 2.0
	// Mallory claims Alice's identifier with her own certificate.
	claimed, _, err := alice.CurrentID(10, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyClaimedID(ca.PublicKey(), mallory.Certificate(), claimed, 10, lifetime, window); !errors.Is(err, ErrBadID) {
		t.Errorf("foreign cert: got %v, want ErrBadID", err)
	}
}

func TestExpiresAt(t *testing.T) {
	ca := newCA(t)
	idn := newIdentity(t, ca, "alice", 100, 5)
	exp, err := idn.ExpiresAt(120, 50)
	if err != nil {
		t.Fatal(err)
	}
	if exp != 150 {
		t.Errorf("ExpiresAt = %v, want 150", exp)
	}
	if _, err := idn.ExpiresAt(0, 50); err == nil {
		t.Error("t before t0: want error")
	}
}

// TestIDUniformity: derived ids spread across the space (first-bit balance
// within 5σ over 2000 samples).
func TestIDUniformity(t *testing.T) {
	ca := newCA(t)
	ones := 0
	const n = 2000
	for i := 0; i < n; i++ {
		idn := newIdentity(t, ca, "peer", float64(i), int64(i))
		id, _, err := idn.CurrentID(float64(i)+1, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := id.Bit(0)
		if err != nil {
			t.Fatal(err)
		}
		ones += b
	}
	dev := float64(ones) - n/2
	if dev < 0 {
		dev = -dev
	}
	if dev > 5*22.4 { // 5·sqrt(n/4)
		t.Errorf("first-bit ones = %d of %d: identifiers not uniform", ones, n)
	}
}

// TestIncarnationMonotoneProperty: k never decreases as t grows.
func TestIncarnationMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t0 := rng.Float64() * 100
		lifetime := 0.1 + rng.Float64()*100
		prev := int64(0)
		for i := 0; i < 50; i++ {
			tm := t0 + float64(i)*lifetime/7
			k, err := Incarnation(tm, t0, lifetime)
			if err != nil || k < prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
