package churn

import (
	"math"
	"testing"
)

func TestNewUniformValidation(t *testing.T) {
	if _, err := NewUniform(1, 0, 0.2, 0.5); err == nil {
		t.Error("rate=0: want error")
	}
	if _, err := NewUniform(1, 1, -0.1, 0.5); err == nil {
		t.Error("mu<0: want error")
	}
	if _, err := NewUniform(1, 1, 1.1, 0.5); err == nil {
		t.Error("mu>1: want error")
	}
	if _, err := NewUniform(1, 1, 0.5, 2); err == nil {
		t.Error("joinP>1: want error")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, err := NewUniform(7, 1, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUniform(7, 1, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ea, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		eb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ea != eb {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestUniformTimesIncreaseAndSeq(t *testing.T) {
	g, err := NewUniform(3, 2, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 1000; i++ {
		ev, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Time <= last {
			t.Fatalf("time did not increase: %v after %v", ev.Time, last)
		}
		if ev.Seq != int64(i) {
			t.Fatalf("seq = %d, want %d", ev.Seq, i)
		}
		last = ev.Time
	}
}

func TestUniformRates(t *testing.T) {
	const n = 50000
	g, err := NewUniform(11, 4, 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(g, n)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Joins+s.Leaves != n {
		t.Fatalf("join+leave = %d", s.Joins+s.Leaves)
	}
	if frac := float64(s.Joins) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("join fraction = %v, want ≈0.5", frac)
	}
	if s.Joins > 0 {
		if frac := float64(s.MaliciousJoins) / float64(s.Joins); math.Abs(frac-0.25) > 0.02 {
			t.Errorf("malicious fraction = %v, want ≈0.25", frac)
		}
	}
	// Mean inter-arrival ≈ 1/rate = 0.25.
	if mean := s.Duration / float64(n-1); math.Abs(mean-0.25) > 0.01 {
		t.Errorf("mean inter-arrival = %v, want ≈0.25", mean)
	}
}

func TestJoinProbabilityExtremes(t *testing.T) {
	onlyJoins, err := NewUniform(1, 1, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ev, err := onlyJoins.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != Join {
			t.Fatal("joinP=1 produced a leave")
		}
	}
	onlyLeaves, err := NewUniform(1, 0.5, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ev, err := onlyLeaves.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != Leave {
			t.Fatal("joinP=0 produced a join")
		}
		if ev.Malicious {
			t.Fatal("leave events must not be marked malicious")
		}
	}
}

func TestRecordReplay(t *testing.T) {
	g, err := NewUniform(5, 1, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	r, err := NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range tr.Events() {
		got, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("replay event %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err == nil {
		t.Error("exhausted trace: want error")
	}
}

func TestRecordValidation(t *testing.T) {
	if _, err := Record(nil, 5); err == nil {
		t.Error("nil generator: want error")
	}
	g, _ := NewUniform(1, 1, 0, 0.5)
	if _, err := Record(g, -1); err == nil {
		t.Error("negative count: want error")
	}
	if _, err := NewReplayer(nil); err == nil {
		t.Error("nil trace: want error")
	}
}

func TestKindString(t *testing.T) {
	if Join.String() != "join" || Leave.String() != "leave" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestEmptyTraceSummary(t *testing.T) {
	tr := &Trace{}
	s := tr.Summarize()
	if s.Joins != 0 || s.Leaves != 0 || s.Duration != 0 {
		t.Errorf("empty trace stats = %+v", s)
	}
}
