// Package churn generates the join/leave workloads that drive the overlay
// simulator. The paper's model assumes join and leave events are
// equiprobable and uniformly distributed over clusters (Section III-A);
// the generators here reproduce that assumption with Poisson arrivals and
// Bernoulli(µ) malicious peers, and add trace recording/replay so
// experiments are reproducible event-for-event.
package churn

import (
	"fmt"
	"math/rand"
)

// Kind discriminates join from leave events.
type Kind int

// Event kinds.
const (
	// Join is the arrival of a new peer.
	Join Kind = iota
	// Leave is the departure of a random peer.
	Leave
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one churn event.
type Event struct {
	// Seq numbers events from 0 in generation order.
	Seq int64
	// Time is the event timestamp (Poisson arrivals).
	Time float64
	// Kind is Join or Leave.
	Kind Kind
	// Malicious marks joining peers controlled by the adversary
	// (meaningful for Join events only).
	Malicious bool
	// PeerSeed is a deterministic seed for constructing the joining
	// peer's keys and identifiers.
	PeerSeed int64
}

// Generator produces an event stream.
type Generator interface {
	// Next returns the next event.
	Next() (Event, error)
}

// Uniform is the paper's workload: exponential inter-arrival times with
// the configured rate, join/leave equiprobable, joining peers malicious
// with probability µ.
type Uniform struct {
	rng     *rand.Rand
	rate    float64
	mu      float64
	joinP   float64
	now     float64
	nextSeq int64
}

// NewUniform builds the generator. rate is the expected number of events
// per time unit; mu the adversary fraction; joinProbability is 1/2 in the
// paper's model.
func NewUniform(seed int64, rate, mu, joinProbability float64) (*Uniform, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("churn: rate must be positive, got %v", rate)
	}
	if mu < 0 || mu > 1 {
		return nil, fmt.Errorf("churn: mu must be in [0,1], got %v", mu)
	}
	if joinProbability < 0 || joinProbability > 1 {
		return nil, fmt.Errorf("churn: join probability must be in [0,1], got %v", joinProbability)
	}
	return &Uniform{
		rng:   rand.New(rand.NewSource(seed)),
		rate:  rate,
		mu:    mu,
		joinP: joinProbability,
	}, nil
}

// Next implements Generator.
func (u *Uniform) Next() (Event, error) {
	u.now += u.rng.ExpFloat64() / u.rate
	ev := Event{
		Seq:      u.nextSeq,
		Time:     u.now,
		Kind:     Leave,
		PeerSeed: u.rng.Int63(),
	}
	if u.rng.Float64() < u.joinP {
		ev.Kind = Join
		ev.Malicious = u.rng.Float64() < u.mu
	}
	u.nextSeq++
	return ev, nil
}

var _ Generator = (*Uniform)(nil)

// Trace is a recorded event sequence that can be replayed.
type Trace struct {
	events []Event
}

// Record captures n events from a generator.
func Record(g Generator, n int) (*Trace, error) {
	if g == nil {
		return nil, fmt.Errorf("churn: nil generator")
	}
	if n < 0 {
		return nil, fmt.Errorf("churn: negative event count %d", n)
	}
	tr := &Trace{events: make([]Event, 0, n)}
	for i := 0; i < n; i++ {
		ev, err := g.Next()
		if err != nil {
			return nil, err
		}
		tr.events = append(tr.events, ev)
	}
	return tr, nil
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// Events returns the recorded events; the slice must not be modified.
func (t *Trace) Events() []Event { return t.events }

// Replayer replays a trace as a Generator.
type Replayer struct {
	trace *Trace
	pos   int
}

// NewReplayer wraps a trace.
func NewReplayer(t *Trace) (*Replayer, error) {
	if t == nil {
		return nil, fmt.Errorf("churn: nil trace")
	}
	return &Replayer{trace: t}, nil
}

// Next implements Generator; it errors when the trace is exhausted.
func (r *Replayer) Next() (Event, error) {
	if r.pos >= len(r.trace.events) {
		return Event{}, fmt.Errorf("churn: trace exhausted after %d events", r.pos)
	}
	ev := r.trace.events[r.pos]
	r.pos++
	return ev, nil
}

var _ Generator = (*Replayer)(nil)

// Stats summarizes a trace.
type Stats struct {
	Joins, Leaves  int
	MaliciousJoins int
	Duration       float64
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	var s Stats
	for _, ev := range t.events {
		switch ev.Kind {
		case Join:
			s.Joins++
			if ev.Malicious {
				s.MaliciousJoins++
			}
		case Leave:
			s.Leaves++
		}
	}
	if n := len(t.events); n > 0 {
		s.Duration = t.events[n-1].Time - t.events[0].Time
	}
	return s
}
