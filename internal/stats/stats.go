// Package stats provides the small statistical toolkit used by the
// simulators: online mean/variance accumulation (Welford), normal-theory
// confidence intervals, frequency counters and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of observations with Welford's online
// algorithm. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Observe adds one observation.
func (r *Running) Observe(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with < 2 observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Merge folds another accumulator into r using Chan et al.'s parallel
// update, as if every observation of o had been Observed on r. Merging
// partial accumulators in a fixed order yields results independent of how
// the observations were partitioned across workers.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	nA, nB := float64(r.n), float64(o.n)
	n := nA + nB
	delta := o.mean - r.mean
	r.mean += delta * nB / n
	r.m2 += o.m2 + delta*delta*nA*nB/n
	r.n += o.n
}

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// ConfidenceInterval95 returns the normal-theory 95% confidence interval
// half-width (1.96 standard errors).
func (r *Running) ConfidenceInterval95() float64 {
	return 1.96 * r.StdErr()
}

// String renders mean ± 95% CI.
func (r *Running) String() string {
	return fmt.Sprintf("%.6g ± %.2g (n=%d)", r.Mean(), r.ConfidenceInterval95(), r.n)
}

// Counter tallies string-labelled outcomes.
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add increments label's count.
func (c *Counter) Add(label string) {
	c.counts[label]++
	c.total++
}

// Count returns label's count.
func (c *Counter) Count(label string) int { return c.counts[label] }

// Merge adds every count of o into c.
func (c *Counter) Merge(o *Counter) {
	if o == nil {
		return
	}
	for label, n := range o.counts {
		c.counts[label] += n
	}
	c.total += o.total
}

// Total returns the number of Add calls.
func (c *Counter) Total() int { return c.total }

// Frequency returns label's relative frequency (0 when empty).
func (c *Counter) Frequency(label string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[label]) / float64(c.total)
}

// Labels returns the seen labels, sorted.
func (c *Counter) Labels() []string {
	out := make([]string, 0, len(c.counts))
	for l := range c.counts {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Histogram is a fixed-width histogram over [lo, hi); values outside the
// range are clamped into the first/last bucket.
type Histogram struct {
	lo, hi  float64
	buckets []int
	n       int
}

// NewHistogram creates a histogram with the given bounds and bucket count.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram bounds [%v,%v) empty", lo, hi)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("stats: need ≥ 1 bucket, got %d", buckets)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int, buckets)}, nil
}

// Observe adds a value.
func (h *Histogram) Observe(x float64) {
	i := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.n++
}

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() []int {
	return append([]int(nil), h.buckets...)
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Quantile returns an approximate q-quantile (0 ≤ q ≤ 1) assuming uniform
// mass within buckets.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	if h.n == 0 {
		return 0, fmt.Errorf("stats: quantile of empty histogram")
	}
	target := q * float64(h.n)
	var acc float64
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		next := acc + float64(c)
		if next >= target && c > 0 {
			frac := (target - acc) / float64(c)
			return h.lo + width*(float64(i)+frac), nil
		}
		acc = next
	}
	return h.hi, nil
}

// Mean of grouped data (bucket midpoints).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	var sum float64
	for i, c := range h.buckets {
		mid := h.lo + width*(float64(i)+0.5)
		sum += mid * float64(c)
	}
	return sum / float64(h.n)
}
