package stats

import (
	"math"
	"testing"
)

func TestRunningMergeMatchesSequential(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7}
	var whole Running
	for _, x := range xs {
		whole.Observe(x)
	}
	for _, cut := range []int{0, 1, 7, len(xs)} {
		var a, b Running
		for _, x := range xs[:cut] {
			a.Observe(x)
		}
		for _, x := range xs[cut:] {
			b.Observe(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("cut %d: N = %d, want %d", cut, a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
			t.Errorf("cut %d: mean %v vs %v", cut, a.Mean(), whole.Mean())
		}
		if math.Abs(a.Variance()-whole.Variance()) > 1e-12 {
			t.Errorf("cut %d: variance %v vs %v", cut, a.Variance(), whole.Variance())
		}
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Observe(2)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 2 {
		t.Errorf("merge of empty changed a: n=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 2 {
		t.Errorf("merge into empty: n=%d mean=%v", b.N(), b.Mean())
	}
}

func TestCounterMerge(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	a.Add("x")
	a.Add("y")
	b.Add("y")
	b.Add("z")
	a.Merge(b)
	if a.Total() != 4 {
		t.Errorf("Total = %d, want 4", a.Total())
	}
	for label, want := range map[string]int{"x": 1, "y": 2, "z": 1} {
		if got := a.Count(label); got != want {
			t.Errorf("Count(%q) = %d, want %d", label, got, want)
		}
	}
	a.Merge(nil) // nil is a no-op
	if a.Total() != 4 {
		t.Errorf("Total after nil merge = %d", a.Total())
	}
}
