package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningKnown(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if want := 32.0 / 7.0; math.Abs(r.Variance()-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", r.Variance(), want)
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Error("zero-value Running must report zeros")
	}
	r.Observe(42)
	if r.Mean() != 42 || r.Variance() != 0 {
		t.Errorf("single observation: mean=%v var=%v", r.Mean(), r.Variance())
	}
	if r.String() == "" {
		t.Error("String() empty")
	}
}

// TestRunningMatchesBatch compares online results with direct two-pass
// computation on random data.
func TestRunningMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var r Running
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			r.Observe(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Variance()-variance) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConfidenceIntervalShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Running
	for i := 0; i < 100; i++ {
		small.Observe(rng.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Observe(rng.NormFloat64())
	}
	if large.ConfidenceInterval95() >= small.ConfidenceInterval95() {
		t.Errorf("CI did not shrink: %v vs %v",
			large.ConfidenceInterval95(), small.ConfidenceInterval95())
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	if c.Total() != 0 || c.Frequency("x") != 0 {
		t.Error("empty counter wrong")
	}
	c.Add("a")
	c.Add("b")
	c.Add("a")
	if c.Count("a") != 2 || c.Count("b") != 1 || c.Count("c") != 0 {
		t.Error("counts wrong")
	}
	if c.Total() != 3 {
		t.Errorf("Total = %d", c.Total())
	}
	if math.Abs(c.Frequency("a")-2.0/3.0) > 1e-12 {
		t.Errorf("Frequency(a) = %v", c.Frequency("a"))
	}
	labels := c.Labels()
	if len(labels) != 2 || labels[0] != "a" || labels[1] != "b" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 9.9} {
		h.Observe(x)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	b := h.Buckets()
	if b[0] != 2 || b[1] != 1 || b[2] != 1 || b[3] != 1 || b[4] != 2 {
		t.Errorf("buckets = %v", b)
	}
}

func TestHistogramClamping(t *testing.T) {
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(-5)
	h.Observe(5)
	b := h.Buckets()
	if b[0] != 1 || b[1] != 1 {
		t.Errorf("clamped buckets = %v", b)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(1, 1, 2); err == nil {
		t.Error("empty range: want error")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("no buckets: want error")
	}
	h, _ := NewHistogram(0, 1, 2)
	if _, err := h.Quantile(0.5); err == nil {
		t.Error("quantile of empty histogram: want error")
	}
	h.Observe(0.5)
	if _, err := h.Quantile(-0.1); err == nil {
		t.Error("q<0: want error")
	}
	if _, err := h.Quantile(1.1); err == nil {
		t.Error("q>1: want error")
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h, err := NewHistogram(0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		h.Observe(rng.Float64() * 100)
	}
	med, err := h.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-50) > 2 {
		t.Errorf("median of U(0,100) = %v", med)
	}
	if m := h.Mean(); math.Abs(m-50) > 2 {
		t.Errorf("mean of U(0,100) = %v", m)
	}
}

func TestHistogramMeanEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	if h.Mean() != 0 {
		t.Error("empty histogram mean must be 0")
	}
}
