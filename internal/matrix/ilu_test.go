package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// pathChain builds the n-state symmetric random walk with leaks only at
// the ends — the canonical slow-mixing block (ρ ≈ cos(π/(n+1))).
func pathChain(t testing.TB, n int) *CSR {
	t.Helper()
	b := NewSparseBuilder(n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			_ = b.Add(i, i-1, 0.5)
		}
		if i < n-1 {
			_ = b.Add(i, i+1, 0.5)
		}
	}
	return b.Build()
}

// lazyChain builds a fast-absorbing block: tiny off-diagonal mass, heavy
// leak everywhere.
func lazyChain(t testing.TB, n int) *CSR {
	t.Helper()
	b := NewSparseBuilder(n, n)
	for i := 0; i < n; i++ {
		_ = b.Add(i, (i+1)%n, 0.1)
		_ = b.Add(i, i, 0.2)
	}
	return b.Build()
}

// TestILUFactorsReproduceAOnPattern checks the defining ILU(0) property
// on a small dense-pattern matrix: (LU)_ij = A_ij exactly on the
// sparsity pattern of A (here the pattern is full, so LU = A and the
// factorization is the exact LU).
func TestILUFactorsReproduceAOnPattern(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 8
	m := randomSubstochastic(t, r, n, 0.3)
	// Densify the pattern so ILU(0) must reproduce A exactly.
	b := NewSparseBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := m.At(i, j)
			if v == 0 {
				v = 1e-3 / float64(n) // structurally present, numerically small
			}
			_ = b.Add(i, j, v)
		}
	}
	full := b.Build()
	lu, err := factorILU0(full)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild LU densely and compare against A = I − full.
	get := func(f *iluFactors, i, j int) float64 {
		for k := f.rowPtr[i]; k < f.rowPtr[i+1]; k++ {
			if f.colIdx[k] == j {
				return f.vals[k]
			}
		}
		return 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var prod float64
			for k := 0; k <= i && k <= j; k++ {
				l := get(lu, i, k)
				if k == i {
					l = 1
				}
				u := get(lu, k, j)
				if k > j {
					u = 0
				}
				prod += l * u
			}
			a := -full.At(i, j)
			if i == j {
				a = 1 - full.At(i, j)
			}
			if math.Abs(prod-a) > 1e-12 {
				t.Errorf("(LU)[%d][%d] = %v, want %v", i, j, prod, a)
			}
		}
	}
}

// TestILUAppliesInverse: on a full pattern ILU(0) is the exact LU, so
// apply and applyTransposed must invert A and Aᵀ to rounding.
func TestILUAppliesInverse(t *testing.T) {
	const n = 30
	m := pathChain(t, n)
	// Path pattern is tridiagonal; ILU(0) of a tridiagonal matrix is
	// exact (elimination causes no fill).
	lu, err := factorILU0(m)
	if err != nil {
		t.Fatal(err)
	}
	dense := must(DenseSolver{}.Factor(m))
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i + 1))
	}
	z := make([]float64, n)
	lu.apply(b, z)
	want, err := dense.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range z {
		if math.Abs(z[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Errorf("apply[%d] = %v, want %v", i, z[i], want[i])
		}
	}
	lu.applyTransposed(b, z)
	wantT, err := dense.SolveVecLeft(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range z {
		if math.Abs(z[i]-wantT[i]) > 1e-8*(1+math.Abs(wantT[i])) {
			t.Errorf("applyTransposed[%d] = %v, want %v", i, z[i], wantT[i])
		}
	}
}

// TestILUSolvesSlowMixingChain: the block that motivated the backend —
// GS-preconditioned BiCGSTAB needs hundreds of iterations on a long
// path chain; ILU(0) (exact here) needs a handful.
func TestILUSolvesSlowMixingChain(t *testing.T) {
	const n = 400
	m := pathChain(t, n)
	want, err := must(DenseSolver{}.Factor(m)).SolveVec(Ones(n))
	if err != nil {
		t.Fatal(err)
	}
	f := must(ILUSolver{}.Factor(m))
	x, err := f.SolveVec(Ones(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	ilu := f.Stats()
	if ilu.Backend != "ilu" {
		t.Errorf("Backend = %q, want ilu", ilu.Backend)
	}
	g := must(BiCGSTABSolver{}.Factor(m))
	if _, err := g.SolveVec(Ones(n)); err != nil {
		t.Fatal(err)
	}
	if gs := g.Stats(); ilu.Iterations*4 > gs.Iterations {
		t.Errorf("ILU took %d iterations vs %d for GS-preconditioned BiCGSTAB; want ≥4x fewer",
			ilu.Iterations, gs.Iterations)
	}
}

// TestWarmStartCutsIterations: re-solving a nearby system seeded with
// the previous solution must converge in fewer iterations than cold,
// and to the same answer.
func TestWarmStartCutsIterations(t *testing.T) {
	const n = 200
	m := pathChain(t, n)
	for _, s := range []Solver{BiCGSTABSolver{}, ILUSolver{}, GaussSeidelSolver{}, AutoSolver{}} {
		f := must(s.Factor(m))
		b := Ones(n)
		x, err := f.SolveVec(b)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		cold := f.Stats().Iterations
		// Re-solving the same system from its own solution must cost no
		// iterations: the guess already satisfies the residual criterion.
		if _, err := f.SolveVecFrom(b, x); err != nil {
			t.Fatalf("%s warm re-solve: %v", s.Name(), err)
		}
		if again := f.Stats().Iterations - cold; again != 0 {
			t.Errorf("%s: warm re-solve of the same system took %d iterations, want 0", s.Name(), again)
		}
		// Perturb the RHS slightly and re-solve warm: no more work than
		// cold (and for the weakly preconditioned backends, much less).
		b2 := make([]float64, n)
		for i := range b2 {
			b2[i] = 1 + 1e-6*math.Cos(float64(i))
		}
		warmX, err := f.SolveVecFrom(b2, x)
		if err != nil {
			t.Fatalf("%s warm: %v", s.Name(), err)
		}
		warm := f.Stats().Iterations - cold
		if warm > cold {
			t.Errorf("%s: warm solve took %d iterations, cold took %d; want no more", s.Name(), warm, cold)
		}
		want, err := must(DenseSolver{}.Factor(m)).SolveVec(b2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range warmX {
			if math.Abs(warmX[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Errorf("%s: warm x[%d] = %v, want %v", s.Name(), i, warmX[i], want[i])
				break
			}
		}
	}
}

// TestWarmStartRejectsWrongLength: a guess of the wrong order must be an
// explicit error on every backend (silently ignoring it would hide
// cross-cell plumbing bugs).
func TestWarmStartRejectsWrongLength(t *testing.T) {
	m := pathChain(t, 10)
	for _, s := range solverBackends(t) {
		f := must(s.Factor(m))
		if _, err := f.SolveVecFrom(Ones(10), Ones(9)); err == nil {
			t.Errorf("%s: SolveVecFrom accepted a length-9 guess for order 10", s.Name())
		}
		if _, err := f.SolveVecLeftFrom(Ones(10), Ones(11)); err == nil {
			t.Errorf("%s: SolveVecLeftFrom accepted a length-11 guess for order 10", s.Name())
		}
		if _, err := f.SolveMatFrom([][]float64{Ones(10)}, [][]float64{Ones(9), Ones(9)}); err == nil {
			t.Errorf("%s: SolveMatFrom accepted 2 guesses for 1 rhs", s.Name())
		}
	}
}

// TestMixingEstimate: the probe must separate fast from slow mixing.
func TestMixingEstimate(t *testing.T) {
	slow := MixingEstimate(pathChain(t, 300), MixingProbeSteps)
	fast := MixingEstimate(lazyChain(t, 300), MixingProbeSteps)
	if slow < DefaultSlowMixThreshold {
		t.Errorf("path chain estimate %v below threshold %v", slow, DefaultSlowMixThreshold)
	}
	if fast >= DefaultSlowMixThreshold {
		t.Errorf("lazy chain estimate %v above threshold %v", fast, DefaultSlowMixThreshold)
	}
	if fast > 0.5 {
		t.Errorf("lazy chain estimate %v, want ≤ 0.5 (row sums are 0.3)", fast)
	}
}

// TestAutoPicksPreconditionerByMixing: the heuristic must route
// slow-mixing blocks to ILU and fast-mixing blocks to plain BiCGSTAB.
func TestAutoPicksPreconditionerByMixing(t *testing.T) {
	slow := must(AutoSolver{}.Factor(pathChain(t, 300)))
	if _, err := slow.SolveVec(Ones(300)); err != nil {
		t.Fatal(err)
	}
	if got := slow.Stats().Backend; got != "ilu" {
		t.Errorf("slow-mixing block routed to %q, want ilu", got)
	}
	fast := must(AutoSolver{}.Factor(lazyChain(t, 300)))
	if _, err := fast.SolveVec(Ones(300)); err != nil {
		t.Fatal(err)
	}
	if got := fast.Stats().Backend; got != "bicgstab" {
		t.Errorf("fast-mixing block routed to %q, want bicgstab", got)
	}
}

// TestAutoFallbackDiagnostics: a capped iteration must fall back with
// reason iteration_cap, count the dense-answered solves, and stay
// correct.
func TestAutoFallbackDiagnostics(t *testing.T) {
	const n = 40
	m := pathChain(t, n)
	auto := AutoSolver{Sparse: BiCGSTABSolver{MaxIter: 1}}
	f := must(auto.Factor(m))
	if st := f.Stats(); st.Fallbacks != 0 || st.FallbackReason != FallbackNone {
		t.Fatalf("pre-solve stats report a fallback: %+v", st)
	}
	if _, err := f.SolveVec(Ones(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveVecLeft(Ones(n)); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Fallbacks != 2 {
		t.Errorf("Fallbacks = %d, want 2", st.Fallbacks)
	}
	if st.FallbackReason != FallbackIterationCap {
		t.Errorf("FallbackReason = %q, want %q", st.FallbackReason, FallbackIterationCap)
	}
}

// TestConvergenceErrorClassification pins the reason taxonomy: budget
// exhaustion without breakdowns is iteration_cap; recorded breakdowns
// classify as breakdown.
func TestConvergenceErrorClassification(t *testing.T) {
	capErr := &ConvergenceError{Method: "bicgstab", Iterations: 7, N: 3, Tol: 1e-12}
	if !errors.Is(capErr, ErrNoConvergence) {
		t.Error("ConvergenceError must wrap ErrNoConvergence")
	}
	if got := classifyFallback(capErr); got != FallbackIterationCap {
		t.Errorf("classify(cap) = %q, want %q", got, FallbackIterationCap)
	}
	bdErr := &ConvergenceError{Method: "bicgstab", Iterations: 7, Breakdowns: 2, N: 3, Tol: 1e-12}
	if got := classifyFallback(bdErr); got != FallbackBreakdown {
		t.Errorf("classify(breakdown) = %q, want %q", got, FallbackBreakdown)
	}
}

// TestStatsPlus pins the aggregation semantics used by markov.Chain.
func TestStatsPlus(t *testing.T) {
	a := SolveStats{Backend: "ilu", Iterations: 10}
	b := SolveStats{Backend: "ilu", Iterations: 5, Fallbacks: 1, FallbackReason: FallbackBreakdown}
	got := a.Plus(b)
	if got.Backend != "ilu" || got.Iterations != 15 || got.Fallbacks != 1 || got.FallbackReason != FallbackBreakdown {
		t.Errorf("Plus = %+v", got)
	}
}
