package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseFromRows(t *testing.T) {
	m, err := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := NewDenseFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows: want error, got nil")
	}
	empty, err := NewDenseFromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Errorf("empty rows: got %v rows, err=%v", empty.Rows(), err)
	}
}

func TestIdentityMul(t *testing.T) {
	a, err := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}})
	if err != nil {
		t.Fatal(err)
	}
	id := Identity(3)
	left, err := id.Mul(a)
	if err != nil {
		t.Fatal(err)
	}
	right, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if !left.Equalish(a, 0) || !right.Equalish(a, 0) {
		t.Error("identity product changed the matrix")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewDenseFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDenseFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equalish(want, 1e-12) {
		t.Errorf("product = %v, want %v", got, want)
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("want dimension error, got nil")
	}
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Error("MulVec: want dimension error, got nil")
	}
	if _, err := a.VecMul([]float64{1, 2, 3}); err == nil {
		t.Error("VecMul: want dimension error, got nil")
	}
}

func TestSubAddScale(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewDenseFromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := a.AddM(b)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, _ := NewDenseFromRows([][]float64{{5, 5}, {5, 5}})
	if !sum.Equalish(wantSum, 0) {
		t.Errorf("sum = %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equalish(a, 0) {
		t.Errorf("(a+b)-b = %v, want a", diff)
	}
	if got := a.Scale(2).At(1, 1); got != 8 {
		t.Errorf("scale: got %v, want 8", got)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d, want 3x2", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 {
		t.Errorf("At(2,1)=%v, want 6", at.At(2, 1))
	}
	if !at.Transpose().Equalish(a, 0) {
		t.Error("double transpose is not identity")
	}
}

func TestVecOps(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	mv, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if mv[0] != 3 || mv[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", mv)
	}
	vm, err := a.VecMul([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if vm[0] != 4 || vm[1] != 6 {
		t.Errorf("VecMul = %v, want [4 6]", vm)
	}
	d, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || d != 32 {
		t.Errorf("Dot = %v err %v, want 32", d, err)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Dot length mismatch: want error")
	}
	if s := VecSum([]float64{0.5, 0.25, 0.25}); s != 1 {
		t.Errorf("VecSum = %v, want 1", s)
	}
	va, err := VecAdd([]float64{1, 2}, []float64{3, 4})
	if err != nil || va[0] != 4 || va[1] != 6 {
		t.Errorf("VecAdd = %v err %v", va, err)
	}
}

func TestSubMatrix(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	sub, err := a.SubMatrix([]int{2, 0}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDenseFromRows([][]float64{{8, 9}, {2, 3}})
	if !sub.Equalish(want, 0) {
		t.Errorf("SubMatrix = %v, want %v", sub, want)
	}
	if _, err := a.SubMatrix([]int{5}, []int{0}); err == nil {
		t.Error("row out of range: want error")
	}
	if _, err := a.SubMatrix([]int{0}, []int{5}); err == nil {
		t.Error("col out of range: want error")
	}
}

func TestRowAndRowView(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Error("Row must copy")
	}
	rv := a.RowView(1)
	rv[1] = 42
	if a.At(1, 1) != 42 {
		t.Error("RowView must alias")
	}
}

func TestOnesAndMaxAbs(t *testing.T) {
	if v := Ones(3); len(v) != 3 || v[0] != 1 || v[2] != 1 {
		t.Errorf("Ones = %v", v)
	}
	a, _ := NewDenseFromRows([][]float64{{-5, 2}, {3, 4}})
	if a.MaxAbs() != 5 {
		t.Errorf("MaxAbs = %v, want 5", a.MaxAbs())
	}
}

// randomMatrix returns an n x n matrix with entries in [-1, 1).
func randomMatrix(rng *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, 2*rng.Float64()-1)
		}
	}
	return m
}

// TestMulAssociativityProperty checks (AB)C == A(BC) on random matrices.
func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a, b, c := randomMatrix(rng, n), randomMatrix(rng, n), randomMatrix(rng, n)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		abc1, err := ab.Mul(c)
		if err != nil {
			return false
		}
		bc, err := b.Mul(c)
		if err != nil {
			return false
		}
		abc2, err := a.Mul(bc)
		if err != nil {
			return false
		}
		return abc1.Equalish(abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTransposeProductProperty checks (AB)ᵀ == BᵀAᵀ.
func TestTransposeProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a, b := randomMatrix(r, n), randomMatrix(r, n)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		left := ab.Transpose()
		right, err := b.Transpose().Mul(a.Transpose())
		if err != nil {
			return false
		}
		return left.Equalish(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEqualishShapeMismatch(t *testing.T) {
	if NewDense(1, 2).Equalish(NewDense(2, 1), 1) {
		t.Error("different shapes must not be Equalish")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small, _ := NewDenseFromRows([][]float64{{1}})
	if s := small.String(); s == "" || math.IsNaN(1) {
		t.Errorf("String() empty: %q", s)
	}
	large := NewDense(20, 20)
	if s := large.String(); s != "Dense(20x20)" {
		t.Errorf("large String() = %q", s)
	}
}
