package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters an
// exactly singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// LU is an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu    *Dense // packed L (unit diagonal, below) and U (on/above diagonal)
	pivot []int  // row permutation
	signD float64
	n     int
}

// FactorLU computes the LU factorization of a square matrix a with partial
// (row) pivoting. The input matrix is not modified.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("matrix: FactorLU requires a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	f := &LU{lu: a.Clone(), pivot: make([]int, n), signD: 1, n: n}
	for i := range f.pivot {
		f.pivot[i] = i
	}
	lu := f.lu
	for col := 0; col < n; col++ {
		// Find pivot.
		p := col
		mx := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > mx {
				mx, p = v, r
			}
		}
		if mx == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, col)
		}
		if p != col {
			f.swapRows(p, col)
			f.pivot[p], f.pivot[col] = f.pivot[col], f.pivot[p]
			f.signD = -f.signD
		}
		// Eliminate below.
		piv := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			m := lu.At(r, col) / piv
			lu.Set(r, col, m)
			if m == 0 {
				continue
			}
			rr := lu.RowView(r)
			cr := lu.RowView(col)
			for j := col + 1; j < n; j++ {
				rr[j] -= m * cr[j]
			}
		}
	}
	return f, nil
}

func (f *LU) swapRows(i, j int) {
	ri := f.lu.RowView(i)
	rj := f.lu.RowView(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.signD
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveVec solves A x = b for a single right-hand side.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("matrix: SolveVec rhs length %d does not match order %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	// Apply permutation: x = P*b.
	for i := 0; i < f.n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit lower-triangular L.
	for i := 1; i < f.n; i++ {
		row := f.lu.RowView(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := f.n - 1; i >= 0; i-- {
		row := f.lu.RowView(i)
		s := x[i]
		for j := i + 1; j < f.n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// SolveVecTransposed solves Aᵀ x = b from the same factorization
// P A = L U, without a second O(n³) factorization: Aᵀ = Uᵀ Lᵀ P, so a
// forward substitution with Uᵀ, a backward substitution with Lᵀ, and the
// inverse row permutation give x.
func (f *LU) SolveVecTransposed(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("matrix: SolveVecTransposed rhs length %d does not match order %d", len(b), f.n)
	}
	y := append([]float64(nil), b...)
	// Forward substitution with Uᵀ (lower triangular, diagonal of U).
	for i := 0; i < f.n; i++ {
		s := y[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(j, i) * y[j]
		}
		y[i] = s / f.lu.At(i, i)
	}
	// Backward substitution with Lᵀ (unit upper triangular).
	for i := f.n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.lu.At(j, i) * y[j]
		}
		y[i] = s
	}
	// x = Pᵀ y.
	x := make([]float64, f.n)
	for i := 0; i < f.n; i++ {
		x[f.pivot[i]] = y[i]
	}
	return x, nil
}

// Solve solves A X = B with one column of X per column of B.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	if b.Rows() != f.n {
		return nil, fmt.Errorf("matrix: Solve rhs has %d rows, want %d", b.Rows(), f.n)
	}
	out := NewDense(f.n, b.Cols())
	col := make([]float64, f.n)
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < f.n; i++ {
			col[i] = b.At(i, j)
		}
		x, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < f.n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// Solve solves A X = B, factorizing A internally.
func Solve(a, b *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveVec solves A x = b, factorizing A internally.
func SolveVec(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// SolveVecLeft solves the row-vector system x A = b, i.e. Aᵀ xᵀ = bᵀ.
func SolveVecLeft(a *Dense, b []float64) ([]float64, error) {
	return SolveVec(a.Transpose(), b)
}

// Inverse returns A⁻¹ via the LU factorization. Prefer the Solve variants
// when only a product with the inverse is needed.
func Inverse(a *Dense) (*Dense, error) {
	return Solve(a, Identity(a.Rows()))
}

// Residual returns max_i |(A x - b)_i|, a cheap a-posteriori accuracy check
// for solves against ill-conditioned matrices.
func Residual(a *Dense, x, b []float64) (float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return 0, err
	}
	if len(b) != len(ax) {
		return 0, fmt.Errorf("matrix: Residual rhs length %d does not match %d", len(b), len(ax))
	}
	var mx float64
	for i := range ax {
		if r := math.Abs(ax[i] - b[i]); r > mx {
			mx = r
		}
	}
	return mx, nil
}
