package matrix

import (
	"math/rand"
	"testing"
)

func TestRowBuilderMatchesSparseBuilder(t *testing.T) {
	// The same entry stream emitted row-locally must build the exact CSR
	// (pointers, indices, bit-identical values) that SparseBuilder builds
	// globally — including out-of-order and duplicate columns.
	r := rand.New(rand.NewSource(11))
	const rows, cols = 40, 30
	sb := NewSparseBuilder(rows, cols)
	rb := NewRowBuilder(cols)
	for i := 0; i < rows; i++ {
		for e := 0; e < r.Intn(12); e++ {
			j := r.Intn(cols)
			v := r.NormFloat64()
			if err := sb.Add(i, j, v); err != nil {
				t.Fatal(err)
			}
			if err := rb.Add(j, v); err != nil {
				t.Fatal(err)
			}
		}
		rb.EndRow()
	}
	got, err := ConcatRows(cols, rb)
	if err != nil {
		t.Fatal(err)
	}
	if want := sb.Build(); !want.Equal(got) {
		t.Error("RowBuilder CSR differs from SparseBuilder CSR")
	}
}

func TestConcatRowsSplitInvariance(t *testing.T) {
	// Splitting the same rows across any number of builders must not
	// change the assembled matrix.
	r := rand.New(rand.NewSource(5))
	const rows, cols = 37, 19
	type entry struct {
		col int
		val float64
	}
	emitted := make([][]entry, rows)
	for i := range emitted {
		for e := 0; e < r.Intn(8); e++ {
			emitted[i] = append(emitted[i], entry{r.Intn(cols), r.NormFloat64()})
		}
	}
	build := func(chunk int) *CSR {
		t.Helper()
		var parts []*RowBuilder
		for lo := 0; lo < rows; lo += chunk {
			rb := NewRowBuilder(cols)
			for i := lo; i < lo+chunk && i < rows; i++ {
				for _, e := range emitted[i] {
					if err := rb.Add(e.col, e.val); err != nil {
						t.Fatal(err)
					}
				}
				rb.EndRow()
			}
			parts = append(parts, rb)
		}
		m, err := ConcatRows(cols, parts...)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	whole := build(rows)
	for _, chunk := range []int{1, 2, 7, 16} {
		if !whole.Equal(build(chunk)) {
			t.Errorf("chunk size %d assembled a different matrix", chunk)
		}
	}
}

func TestRowBuilderSumsDuplicatesInEmissionOrder(t *testing.T) {
	rb := NewRowBuilder(4)
	var want float64
	for _, v := range []float64{0.1, 0.2, 0.3} {
		if err := rb.Add(2, v); err != nil {
			t.Fatal(err)
		}
		// Accumulated at runtime, left to right: the exact float the
		// emission-order contract promises (untyped-constant folding
		// would round differently).
		want += v
	}
	if err := rb.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	rb.EndRow()
	rb.EndRow() // empty row is legal
	m, err := ConcatRows(4, rb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.NNZ() != 2 {
		t.Fatalf("rows=%d nnz=%d, want 2 and 2", m.Rows(), m.NNZ())
	}
	if m.At(0, 2) != want {
		t.Errorf("duplicate sum = %v, want the emission-order sum %v", m.At(0, 2), want)
	}
	if m.At(0, 0) != 1 {
		t.Errorf("entry (0,0) = %v, want 1", m.At(0, 0))
	}
}

func TestRowBuilderErrors(t *testing.T) {
	rb := NewRowBuilder(3)
	if err := rb.Add(3, 1); err == nil {
		t.Error("column out of bounds: want error")
	}
	if err := rb.Add(-1, 1); err == nil {
		t.Error("negative column: want error")
	}
	if err := rb.Add(1, 0); err != nil {
		t.Errorf("zero value must be dropped silently, got %v", err)
	}
	rb.EndRow()
	if rb.Rows() != 1 || rb.Cols() != 3 {
		t.Errorf("Rows=%d Cols=%d, want 1 and 3", rb.Rows(), rb.Cols())
	}
	if _, err := ConcatRows(4, rb); err == nil {
		t.Error("width mismatch: want error")
	}
	if _, err := ConcatRows(3, rb, nil); err == nil {
		t.Error("nil part: want error")
	}
}
