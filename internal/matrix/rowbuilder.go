package matrix

import "fmt"

// RowBuilder emits a contiguous run of CSR rows without any shared state:
// the row-local counterpart of SparseBuilder for parallel matrix
// construction. A worker owns one RowBuilder, calls Add for the entries of
// the current row and EndRow to seal it, and the per-worker runs are glued
// back together in row order by ConcatRows. Entries land directly in
// CSR-shaped buffers (one growing colIdx/vals pair per builder), so
// building n rows costs O(nnz) amortized appends instead of a global
// coordinate sort.
//
// Duplicate column entries within a row are summed in emission order after
// a stable in-row sort — exactly the arithmetic of SparseBuilder.Build —
// which is what makes the parallel construction bit-identical to the
// serial one for any worker count or chunking.
type RowBuilder struct {
	cols   int
	rowPtr []int // rowPtr[r+1] = entries after sealing r rows; rowPtr[0] = 0
	colIdx []int
	vals   []float64
	// Scratch for the in-progress row, in emission order.
	curCols []int
	curVals []float64
}

// NewRowBuilder returns a builder for rows of the given width.
func NewRowBuilder(cols int) *RowBuilder {
	return &RowBuilder{cols: cols, rowPtr: []int{0}}
}

// Add accumulates v at column j of the current row. Zero values are
// dropped, like SparseBuilder.Add.
func (b *RowBuilder) Add(j int, v float64) error {
	if j < 0 || j >= b.cols {
		return fmt.Errorf("matrix: row entry column %d out of bounds for width %d", j, b.cols)
	}
	if v == 0 {
		return nil
	}
	b.curCols = append(b.curCols, j)
	b.curVals = append(b.curVals, v)
	return nil
}

// EndRow seals the current row: its entries are stably sorted by column,
// duplicates summed in emission order, and the result appended to the
// builder's CSR buffers. An empty row is legal.
func (b *RowBuilder) EndRow() {
	sortRowStable(b.curCols, b.curVals)
	start := len(b.colIdx)
	for i := 0; i < len(b.curCols); i++ {
		if n := len(b.colIdx); n > start && b.colIdx[n-1] == b.curCols[i] {
			b.vals[n-1] += b.curVals[i]
			continue
		}
		b.colIdx = append(b.colIdx, b.curCols[i])
		b.vals = append(b.vals, b.curVals[i])
	}
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
	b.curCols = b.curCols[:0]
	b.curVals = b.curVals[:0]
}

// Rows returns the number of sealed rows.
func (b *RowBuilder) Rows() int { return len(b.rowPtr) - 1 }

// Cols returns the row width.
func (b *RowBuilder) Cols() int { return b.cols }

// sortRowStable stably co-sorts one row's column indices and values by
// column (insertion sort: rows are short, and moving only strictly-greater
// elements keeps equal columns in emission order).
func sortRowStable(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// ConcatRows assembles a CSR matrix from consecutive row runs: part i
// holds the rows immediately following those of part i−1. The assembly is
// a deterministic concatenation — entries are copied in row order whatever
// the number of parts — so splitting a build across workers cannot change
// the result. Every part must have the width cols.
func ConcatRows(cols int, parts ...*RowBuilder) (*CSR, error) {
	rows, nnz := 0, 0
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("matrix: ConcatRows part %d is nil", i)
		}
		if p.cols != cols {
			return nil, fmt.Errorf("matrix: ConcatRows part %d has width %d, want %d", i, p.cols, cols)
		}
		rows += p.Rows()
		nnz += len(p.colIdx)
	}
	m := &CSR{
		rows:   rows,
		cols:   cols,
		rowPtr: make([]int, 1, rows+1),
		colIdx: make([]int, 0, nnz),
		vals:   make([]float64, 0, nnz),
	}
	for _, p := range parts {
		base := len(m.colIdx)
		for r := 1; r < len(p.rowPtr); r++ {
			m.rowPtr = append(m.rowPtr, base+p.rowPtr[r])
		}
		m.colIdx = append(m.colIdx, p.colIdx...)
		m.vals = append(m.vals, p.vals...)
	}
	return m, nil
}
