package matrix

import (
	"fmt"
	"sort"
)

// coord is a single (row, col) entry used while assembling a sparse matrix.
type coord struct {
	row, col int
	val      float64
}

// SparseBuilder accumulates entries for a compressed sparse row matrix.
// Duplicate (row, col) entries are summed, which is convenient when a
// transition tree reaches the same target state along several branches.
type SparseBuilder struct {
	rows, cols int
	entries    []coord
}

// NewSparseBuilder returns a builder for a rows x cols sparse matrix.
func NewSparseBuilder(rows, cols int) *SparseBuilder {
	return &SparseBuilder{rows: rows, cols: cols}
}

// Add accumulates v at (i, j).
func (b *SparseBuilder) Add(i, j int, v float64) error {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		return fmt.Errorf("matrix: sparse entry (%d,%d) out of bounds for %dx%d", i, j, b.rows, b.cols)
	}
	if v == 0 {
		return nil
	}
	b.entries = append(b.entries, coord{row: i, col: j, val: v})
	return nil
}

// Build finalizes the builder into a CSR matrix.
//
// Contract: duplicate (i, j) entries are summed, in the order they were
// Added (the sort is stable, so equal coordinates keep insertion order and
// the floating-point sum is deterministic). Build may be called again —
// also after further Adds — and behaves as if every entry so far had been
// Added to a fresh builder: the merge compacts the entry log in place and
// b.entries is re-sliced to the compacted prefix, so no stale tail can
// leak into a later Build.
func (b *SparseBuilder) Build() *CSR {
	sort.SliceStable(b.entries, func(p, q int) bool {
		if b.entries[p].row != b.entries[q].row {
			return b.entries[p].row < b.entries[q].row
		}
		return b.entries[p].col < b.entries[q].col
	})
	// Merge duplicates in place.
	merged := b.entries[:0]
	for _, e := range b.entries {
		if n := len(merged); n > 0 && merged[n-1].row == e.row && merged[n-1].col == e.col {
			merged[n-1].val += e.val
			continue
		}
		merged = append(merged, e)
	}
	b.entries = merged
	m := &CSR{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int, b.rows+1),
		colIdx: make([]int, len(merged)),
		vals:   make([]float64, len(merged)),
	}
	for i, e := range merged {
		m.rowPtr[e.row+1]++
		m.colIdx[i] = e.col
		m.vals[i] = e.val
	}
	for r := 0; r < b.rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the element at (i, j); O(log nnz(row i)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: CSR index (%d,%d) out of bounds for %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// Equal reports whether m and o are identical as stored CSR matrices:
// same shape, same row pointers, same column indices and bit-identical
// values (compared with ==, so a NaN entry never compares equal). It is
// stricter than numerical equality — two matrices representing the same
// operator with different structural zeros compare unequal — which is
// exactly what the serial/parallel construction equivalence guarantees
// need.
func (m *CSR) Equal(o *CSR) bool {
	if m.rows != o.rows || m.cols != o.cols || len(m.vals) != len(o.vals) {
		return false
	}
	for i := range m.rowPtr {
		if m.rowPtr[i] != o.rowPtr[i] {
			return false
		}
	}
	for i := range m.colIdx {
		if m.colIdx[i] != o.colIdx[i] {
			return false
		}
	}
	for i := range m.vals {
		if m.vals[i] != o.vals[i] {
			return false
		}
	}
	return true
}

// VecMul returns the row vector v * M.
func (m *CSR) VecMul(v []float64) ([]float64, error) {
	if len(v) != m.rows {
		return nil, fmt.Errorf("matrix: CSR VecMul length %d does not match %d rows", len(v), m.rows)
	}
	out := make([]float64, m.cols)
	for i, vv := range v {
		if vv == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out[m.colIdx[k]] += vv * m.vals[k]
		}
	}
	return out, nil
}

// VecMulInto computes v * M into dst, which must have length Cols.
// It avoids allocation in hot iteration loops.
func (m *CSR) VecMulInto(v, dst []float64) error {
	if len(v) != m.rows {
		return fmt.Errorf("matrix: CSR VecMulInto length %d does not match %d rows", len(v), m.rows)
	}
	if len(dst) != m.cols {
		return fmt.Errorf("matrix: CSR VecMulInto dst length %d does not match %d cols", len(dst), m.cols)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, vv := range v {
		if vv == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.colIdx[k]] += vv * m.vals[k]
		}
	}
	return nil
}

// MulVec returns the column vector M * v.
func (m *CSR) MulVec(v []float64) ([]float64, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("matrix: CSR MulVec length %d does not match %d cols", len(v), m.cols)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * v[m.colIdx[k]]
		}
		out[i] = s
	}
	return out, nil
}

// RowSums returns the per-row sums, e.g. for stochasticity checks.
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k]
		}
		out[i] = s
	}
	return out
}

// MulVecInto computes M * v into dst, which must have length Rows.
// It avoids allocation in hot iteration loops.
func (m *CSR) MulVecInto(v, dst []float64) error {
	if len(v) != m.cols {
		return fmt.Errorf("matrix: CSR MulVecInto length %d does not match %d cols", len(v), m.cols)
	}
	if len(dst) != m.rows {
		return fmt.Errorf("matrix: CSR MulVecInto dst length %d does not match %d rows", len(dst), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * v[m.colIdx[k]]
		}
		dst[i] = s
	}
	return nil
}

// Transpose returns Mᵀ as a new CSR, preserving sparsity.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.vals)),
		vals:   make([]float64, len(m.vals)),
	}
	for _, j := range m.colIdx {
		t.rowPtr[j+1]++
	}
	for r := 0; r < t.rows; r++ {
		t.rowPtr[r+1] += t.rowPtr[r]
	}
	next := append([]int(nil), t.rowPtr[:t.rows]...)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			p := next[j]
			next[j]++
			t.colIdx[p] = i
			t.vals[p] = m.vals[k]
		}
	}
	return t
}

// ScaleRows returns diag(s) * M: row i multiplied by s[i]. The sparsity
// pattern is preserved (zero scales keep structurally-present entries).
func (m *CSR) ScaleRows(s []float64) (*CSR, error) {
	if len(s) != m.rows {
		return nil, fmt.Errorf("matrix: ScaleRows scale length %d does not match %d rows", len(s), m.rows)
	}
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		vals:   make([]float64, len(m.vals)),
	}
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out.vals[k] = m.vals[k] * s[i]
		}
	}
	return out, nil
}

// Diagonal returns the main diagonal as a vector of length min(rows, cols).
func (m *CSR) Diagonal() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if m.colIdx[k] == i {
				out[i] = m.vals[k]
				break
			}
		}
	}
	return out
}

// Dense expands the matrix to dense form.
func (m *CSR) Dense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.vals[k])
		}
	}
	return d
}

// RowNonZeros calls fn for every stored entry of row i.
func (m *CSR) RowNonZeros(i int, fn func(j int, v float64)) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: CSR row %d out of bounds for %d rows", i, m.rows))
	}
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.vals[k])
	}
}

// SubCSR extracts the sub-matrix with the given row and column index sets,
// preserving sparsity, without ever densifying: a direct CSR-to-CSR copy
// using a slice-based column position table (no maps, no re-sorting when
// the column selection is ascending — the common case for state-class
// index sets).
func (m *CSR) SubCSR(rowIdx, colIdx []int) (*CSR, error) {
	colPos := make([]int, m.cols)
	for i := range colPos {
		colPos[i] = -1
	}
	ascending := true
	for p, c := range colIdx {
		if c < 0 || c >= m.cols {
			return nil, fmt.Errorf("matrix: SubCSR col index %d out of bounds for %d cols", c, m.cols)
		}
		if p > 0 && colIdx[p-1] >= c {
			ascending = false
		}
		colPos[c] = p
	}
	out := &CSR{
		rows:   len(rowIdx),
		cols:   len(colIdx),
		rowPtr: make([]int, len(rowIdx)+1),
	}
	for p, r := range rowIdx {
		if r < 0 || r >= m.rows {
			return nil, fmt.Errorf("matrix: SubCSR row index %d out of bounds for %d rows", r, m.rows)
		}
		rowStart := len(out.vals)
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if q := colPos[m.colIdx[k]]; q >= 0 {
				out.colIdx = append(out.colIdx, q)
				out.vals = append(out.vals, m.vals[k])
			}
		}
		if !ascending {
			// A reordered column selection scrambles the in-row column
			// order; restore the CSR invariant for this row.
			sortRow(out.colIdx[rowStart:], out.vals[rowStart:])
		}
		out.rowPtr[p+1] = len(out.vals)
	}
	return out, nil
}

// sortRow co-sorts one row's column indices and values (rows are short, so
// an insertion sort beats sort.Sort's interface overhead).
func sortRow(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}
