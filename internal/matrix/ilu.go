package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ILU(0)-preconditioned BiCGSTAB backend.
//
// The Gauss–Seidel-preconditioned BiCGSTAB iteration degrades as the
// chain's mixing slows: for merge probability d → 1 the block M develops
// heavy self-loops and near-unit spectral radius, and the Krylov
// iteration count blows up — the bound that capped cluster sizes at
// C=∆≈50. An incomplete LU factorization with zero fill-in (ILU(0)) of
// A = I − M is a far stronger preconditioner for these M-matrix systems:
// it is computed once per block on A's own sparsity pattern (no fill, so
// memory stays O(nnz)), and each application is two sparse triangular
// solves — about the cost of one matvec.
//
// One factorization serves both orientations: right systems precondition
// with z = U⁻¹L⁻¹r, left (row-vector) systems run BiCGSTAB on Mᵀ and
// precondition with z = (LU)⁻ᵀr = L⁻ᵀU⁻ᵀr via transposed triangular
// solves on the same factors — no second factorization, no transposed
// copy of the factors.

// ILUSolver solves (I−M)x = b with BiCGSTAB preconditioned by an ILU(0)
// factorization of I − M. It is the backend of choice for slow-mixing
// blocks (d → 1, very large state spaces); for fast-mixing blocks the
// plain BiCGSTABSolver converges in a handful of iterations anyway and
// skips the factorization cost.
type ILUSolver struct {
	// Tol is the residual tolerance; 0 selects DefaultTol.
	Tol float64
	// MaxIter bounds BiCGSTAB iterations; 0 selects
	// DefaultBiCGSTABMaxIter.
	MaxIter int
}

// Name implements Solver.
func (ILUSolver) Name() string { return "ilu" }

// Factor implements Solver: it assembles A = I − M in CSR form and
// computes its ILU(0) factors eagerly (unlike the lazy dense LU, the
// factorization is cheap — O(Σ_rows nnz(row)²) — and every solve needs
// it).
func (s ILUSolver) Factor(m *CSR) (Factorization, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	tol, maxIter := s.Tol, s.MaxIter
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultBiCGSTABMaxIter
	}
	lu, err := factorILU0(m)
	if err != nil {
		return nil, err
	}
	return &iluFactorization{m: m, lu: lu, tol: tol, maxIter: maxIter}, nil
}

// iluPivotFloor rejects pivots that would turn the triangular solves
// into overflow machines. For the substochastic blocks of an absorbing
// chain the pivots stay near 1−M_ii > 0, so hitting the floor means the
// input was not such a block.
const iluPivotFloor = 1e-300

// iluFactors stores the combined L\U factors of ILU(0) in one CSR
// layout: within each (column-sorted) row, entries left of the diagonal
// are L (unit diagonal implied), the diagonal and entries right of it
// are U.
type iluFactors struct {
	n      int
	rowPtr []int
	colIdx []int
	vals   []float64
	diag   []int // index into vals/colIdx of each row's diagonal entry
}

// factorILU0 assembles A = I − M on M's sparsity pattern (plus a
// guaranteed diagonal) and eliminates in place with the IKJ ordering,
// dropping every update outside the pattern — the defining ILU(0)
// approximation A ≈ LU.
func factorILU0(m *CSR) (*iluFactors, error) {
	n := m.Rows()
	lu := &iluFactors{
		n:      n,
		rowPtr: make([]int, n+1),
		colIdx: make([]int, 0, m.NNZ()+n),
		vals:   make([]float64, 0, m.NNZ()+n),
		diag:   make([]int, n),
	}
	// Assembly: rows of M are column-sorted, so the diagonal of A can be
	// merged in at its sorted position in one pass.
	for i := 0; i < n; i++ {
		placed := false
		m.RowNonZeros(i, func(j int, v float64) {
			if !placed && j >= i {
				placed = true
				lu.diag[i] = len(lu.vals)
				if j == i {
					lu.colIdx = append(lu.colIdx, i)
					lu.vals = append(lu.vals, 1-v)
					return
				}
				lu.colIdx = append(lu.colIdx, i)
				lu.vals = append(lu.vals, 1)
			}
			lu.colIdx = append(lu.colIdx, j)
			lu.vals = append(lu.vals, -v)
		})
		if !placed {
			lu.diag[i] = len(lu.vals)
			lu.colIdx = append(lu.colIdx, i)
			lu.vals = append(lu.vals, 1)
		}
		lu.rowPtr[i+1] = len(lu.vals)
	}
	// IKJ elimination. pos scatters the current row's pattern for O(1)
	// membership tests (entry index + 1; 0 = outside the pattern).
	pos := make([]int, n)
	for i := 0; i < n; i++ {
		start, end := lu.rowPtr[i], lu.rowPtr[i+1]
		for k := start; k < end; k++ {
			pos[lu.colIdx[k]] = k + 1
		}
		for k := start; k < end; k++ {
			kcol := lu.colIdx[k]
			if kcol >= i {
				break // rows are column-sorted: L entries come first
			}
			lik := lu.vals[k] / lu.vals[lu.diag[kcol]]
			lu.vals[k] = lik
			for kk := lu.diag[kcol] + 1; kk < lu.rowPtr[kcol+1]; kk++ {
				if p := pos[lu.colIdx[kk]]; p != 0 {
					lu.vals[p-1] -= lik * lu.vals[kk]
				}
			}
		}
		if piv := lu.vals[lu.diag[i]]; math.Abs(piv) < iluPivotFloor {
			return nil, fmt.Errorf("%w: ILU(0) pivot %v at row %d", ErrSingular, piv, i)
		}
		for k := start; k < end; k++ {
			pos[lu.colIdx[k]] = 0
		}
	}
	return lu, nil
}

// apply writes z = U⁻¹ L⁻¹ r: forward substitution through the unit
// lower factor, then backward substitution through the upper factor.
func (lu *iluFactors) apply(r, z []float64) {
	rowPtr, colIdx, vals, diag := lu.rowPtr, lu.colIdx, lu.vals, lu.diag
	for i := 0; i < lu.n; i++ {
		s := r[i]
		for k := rowPtr[i]; k < diag[i]; k++ {
			s -= vals[k] * z[colIdx[k]]
		}
		z[i] = s
	}
	for i := lu.n - 1; i >= 0; i-- {
		s := z[i]
		for k := diag[i] + 1; k < rowPtr[i+1]; k++ {
			s -= vals[k] * z[colIdx[k]]
		}
		z[i] = s / vals[diag[i]]
	}
}

// applyTransposed writes z = (LU)⁻ᵀ r = L⁻ᵀ U⁻ᵀ r. The factors are
// stored by rows of LU, so both transposed triangular solves run in
// scatter form: Uᵀw = r ascending (each finished w_i updates the
// pending entries below it), then Lᵀz = w descending with the implied
// unit diagonal.
func (lu *iluFactors) applyTransposed(r, z []float64) {
	rowPtr, colIdx, vals, diag := lu.rowPtr, lu.colIdx, lu.vals, lu.diag
	copy(z, r)
	for i := 0; i < lu.n; i++ {
		z[i] /= vals[diag[i]]
		wi := z[i]
		for k := diag[i] + 1; k < rowPtr[i+1]; k++ {
			z[colIdx[k]] -= vals[k] * wi
		}
	}
	for i := lu.n - 1; i >= 0; i-- {
		zi := z[i]
		for k := rowPtr[i]; k < diag[i]; k++ {
			z[colIdx[k]] -= vals[k] * zi
		}
	}
}

type iluFactorization struct {
	m       *CSR
	mT      *CSR // lazily built transpose, for left systems
	lu      *iluFactors
	tol     float64
	maxIter int
	iters   int64
}

func (f *iluFactorization) Order() int { return f.m.Rows() }

// solve runs ILU(0)-preconditioned BiCGSTAB on a (M for right systems,
// Mᵀ for left ones) with the matching preconditioner orientation.
func (f *iluFactorization) solve(b, x0 []float64, a *CSR, precond func(r, z []float64)) ([]float64, error) {
	n := a.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("matrix: solve rhs length %d does not match order %d", len(b), n)
	}
	if err := checkGuess(x0, n); err != nil {
		return nil, err
	}
	tmp := make([]float64, n)
	matvec := func(x, dst []float64) {
		_ = a.MulVecInto(x, tmp)
		for i := range dst {
			dst[i] = x[i] - tmp[i]
		}
	}
	x, iters, _, err := bicgstab(matvec, precond, b, x0, f.tol, f.maxIter)
	f.iters += int64(iters)
	if err != nil {
		var ce *ConvergenceError
		if errors.As(err, &ce) {
			ce.Method = "ilu-bicgstab"
		}
	}
	return x, err
}

func (f *iluFactorization) SolveVec(b []float64) ([]float64, error) {
	return f.SolveVecFrom(b, nil)
}

func (f *iluFactorization) SolveVecFrom(b, x0 []float64) ([]float64, error) {
	return f.solve(b, x0, f.m, f.lu.apply)
}

func (f *iluFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	return f.SolveVecLeftFrom(b, nil)
}

func (f *iluFactorization) SolveVecLeftFrom(b, x0 []float64) ([]float64, error) {
	if f.mT == nil {
		f.mT = f.m.Transpose()
	}
	return f.solve(b, x0, f.mT, f.lu.applyTransposed)
}

func (f *iluFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVec)
}

// SolveMatLeft shares the lazily built transpose of SolveVecLeft across
// the batch: the first column pays it, the rest reuse it.
func (f *iluFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVecLeft)
}

func (f *iluFactorization) SolveMatFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecFrom)
}

func (f *iluFactorization) SolveMatLeftFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecLeftFrom)
}

func (f *iluFactorization) Stats() SolveStats {
	return SolveStats{Backend: "ilu", Iterations: f.iters}
}
