// Package matrix provides the dense and sparse linear-algebra kernels used
// by the Markov-chain analytics in this repository: matrix/vector products,
// LU factorization with partial pivoting, linear-system solves with one or
// many right-hand sides, and iterated row-vector/matrix products for
// transient distributions.
//
// The matrices arising from the DSN 2011 targeted-attack model are small
// (hundreds of states) but can be extremely ill-conditioned when the
// identifier-survival probability d approaches 1, so all solves use partial
// pivoting and the package exposes residual-based accuracy checks.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix ready to use.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows x cols matrix initialized to zero.
// It panics if rows or cols is negative, mirroring make() semantics.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: NewDense with negative dimension %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func NewDenseFromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at (i, j) by v.
func (m *Dense) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns the backing slice of row i. Mutations are visible in m.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Mul returns the matrix product m * b.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("matrix: dimension mismatch for Mul: %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*b.cols : (i+1)*b.cols]
		for p, mv := range mi {
			if mv == 0 {
				continue
			}
			bp := b.data[p*b.cols : (p+1)*b.cols]
			for j, bv := range bp {
				oi[j] += mv * bv
			}
		}
	}
	return out, nil
}

// Sub returns m - b element-wise.
func (m *Dense) Sub(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("matrix: dimension mismatch for Sub: %dx%d - %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := NewDense(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out, nil
}

// AddM returns m + b element-wise.
func (m *Dense) AddM(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("matrix: dimension mismatch for AddM: %dx%d + %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := NewDense(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + b.data[i]
	}
	return out, nil
}

// Scale returns a*m.
func (m *Dense) Scale(a float64) *Dense {
	out := NewDense(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = a * m.data[i]
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// MulVec returns the column vector m * v.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("matrix: dimension mismatch for MulVec: %dx%d * len %d", m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var sum float64
		for j, rv := range row {
			sum += rv * v[j]
		}
		out[i] = sum
	}
	return out, nil
}

// VecMul returns the row vector v * m.
func (m *Dense) VecMul(v []float64) ([]float64, error) {
	if m.rows != len(v) {
		return nil, fmt.Errorf("matrix: dimension mismatch for VecMul: len %d * %dx%d", len(v), m.rows, m.cols)
	}
	out := make([]float64, m.cols)
	for i, vv := range v {
		if vv == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, rv := range row {
			out[j] += vv * rv
		}
	}
	return out, nil
}

// MaxAbs returns the largest absolute value of any element, 0 for empty
// matrices.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equalish reports whether m and b have the same shape and all elements
// within tol of each other.
func (m *Dense) Equalish(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShown = 12
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%dx%d)", m.rows, m.cols)
	if m.rows > maxShown || m.cols > maxShown {
		return b.String()
	}
	b.WriteString("[\n")
	for i := 0; i < m.rows; i++ {
		b.WriteString("  ")
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .6g ", m.At(i, j))
		}
		b.WriteString("\n")
	}
	b.WriteString("]")
	return b.String()
}

// SubMatrix extracts the sub-matrix with the given row and column index
// sets, in order. Index sets may repeat or reorder indices.
func (m *Dense) SubMatrix(rowIdx, colIdx []int) (*Dense, error) {
	out := NewDense(len(rowIdx), len(colIdx))
	for i, ri := range rowIdx {
		if ri < 0 || ri >= m.rows {
			return nil, fmt.Errorf("matrix: SubMatrix row index %d out of bounds for %d rows", ri, m.rows)
		}
		src := m.data[ri*m.cols : (ri+1)*m.cols]
		dst := out.data[i*out.cols : (i+1)*out.cols]
		for j, cj := range colIdx {
			if cj < 0 || cj >= m.cols {
				return nil, fmt.Errorf("matrix: SubMatrix col index %d out of bounds for %d cols", cj, m.cols)
			}
			dst[j] = src[cj]
		}
	}
	return out, nil
}

// Ones returns a column vector of n ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("matrix: dimension mismatch for Dot: %d vs %d", len(a), len(b))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// VecSum returns the sum of the entries of v.
func VecSum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// VecAdd returns a + b element-wise.
func VecAdd(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("matrix: dimension mismatch for VecAdd: %d vs %d", len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}
