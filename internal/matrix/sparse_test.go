package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseBuilderBasic(t *testing.T) {
	b := NewSparseBuilder(3, 3)
	mustAdd := func(i, j int, v float64) {
		t.Helper()
		if err := b.Add(i, j, v); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 0, 1)
	mustAdd(2, 1, 3)
	mustAdd(0, 2, 2)
	m := b.Build()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 0) != 1 || m.At(0, 2) != 2 || m.At(2, 1) != 3 {
		t.Error("stored values wrong")
	}
	if m.At(1, 1) != 0 {
		t.Error("missing entry must read 0")
	}
}

func TestSparseBuilderDuplicatesSummed(t *testing.T) {
	b := NewSparseBuilder(2, 2)
	_ = b.Add(1, 1, 0.25)
	_ = b.Add(1, 1, 0.5)
	_ = b.Add(1, 1, 0.25)
	m := b.Build()
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (duplicates merged)", m.NNZ())
	}
	if m.At(1, 1) != 1 {
		t.Errorf("At(1,1) = %v, want 1", m.At(1, 1))
	}
}

func TestSparseBuilderDuplicateOrderAndReuse(t *testing.T) {
	// The Build contract: duplicates are summed in insertion order, and
	// Build may be called repeatedly — also after further Adds — without
	// the in-place merge of a previous call corrupting the entry log.
	b := NewSparseBuilder(2, 3)
	var want float64 // left-to-right insertion-order sum, at runtime
	for _, v := range []float64{0.1, 0.2, 0.3} {
		if err := b.Add(0, 1, v); err != nil {
			t.Fatal(err)
		}
		want += v
	}
	if err := b.Add(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	first := b.Build()
	if first.At(0, 1) != want || first.NNZ() != 2 {
		t.Fatalf("first Build: At(0,1)=%v nnz=%d, want %v and 2", first.At(0, 1), first.NNZ(), want)
	}
	second := b.Build()
	if !first.Equal(second) {
		t.Error("second Build differs from the first on an untouched builder")
	}
	if err := b.Add(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	third := b.Build()
	if third.NNZ() != 2 || third.At(0, 1) != want+1 {
		t.Errorf("Build after merge+Add: At(0,1)=%v nnz=%d, want %v and 2",
			third.At(0, 1), third.NNZ(), want+1)
	}
	if third.At(1, 2) != 5 {
		t.Errorf("untouched entry lost: At(1,2)=%v, want 5", third.At(1, 2))
	}
}

func TestSparseBuilderZeroIgnored(t *testing.T) {
	b := NewSparseBuilder(1, 1)
	_ = b.Add(0, 0, 0)
	if m := b.Build(); m.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0", m.NNZ())
	}
}

func TestSparseBuilderOutOfBounds(t *testing.T) {
	b := NewSparseBuilder(1, 1)
	if err := b.Add(1, 0, 1); err == nil {
		t.Error("row out of bounds: want error")
	}
	if err := b.Add(0, -1, 1); err == nil {
		t.Error("col out of bounds: want error")
	}
}

func TestSparseEmptyRows(t *testing.T) {
	b := NewSparseBuilder(4, 4)
	_ = b.Add(2, 3, 7)
	m := b.Build()
	sums := m.RowSums()
	want := []float64{0, 0, 7, 0}
	for i := range want {
		if sums[i] != want[i] {
			t.Errorf("RowSums[%d] = %v, want %v", i, sums[i], want[i])
		}
	}
}

func TestCSRVecMulMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(10), 1+r.Intn(10)
		b := NewSparseBuilder(rows, cols)
		d := NewDense(rows, cols)
		for e := 0; e < rows*cols/2; e++ {
			i, j, v := r.Intn(rows), r.Intn(cols), 2*r.Float64()-1
			if err := b.Add(i, j, v); err != nil {
				return false
			}
			d.Add(i, j, v)
		}
		m := b.Build()
		v := make([]float64, rows)
		for i := range v {
			v[i] = 2*r.Float64() - 1
		}
		got, err := m.VecMul(v)
		if err != nil {
			return false
		}
		want, err := d.VecMul(v)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				return false
			}
		}
		// Column product too.
		u := make([]float64, cols)
		for i := range u {
			u[i] = 2*r.Float64() - 1
		}
		gotC, err := m.MulVec(u)
		if err != nil {
			return false
		}
		wantC, err := d.MulVec(u)
		if err != nil {
			return false
		}
		for i := range wantC {
			if math.Abs(gotC[i]-wantC[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCSRVecMulInto(t *testing.T) {
	b := NewSparseBuilder(2, 3)
	_ = b.Add(0, 1, 2)
	_ = b.Add(1, 2, 3)
	m := b.Build()
	dst := make([]float64, 3)
	if err := m.VecMulInto([]float64{1, 1}, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 || dst[1] != 2 || dst[2] != 3 {
		t.Errorf("dst = %v, want [0 2 3]", dst)
	}
	if err := m.VecMulInto([]float64{1}, dst); err == nil {
		t.Error("bad v length: want error")
	}
	if err := m.VecMulInto([]float64{1, 1}, make([]float64, 1)); err == nil {
		t.Error("bad dst length: want error")
	}
}

func TestCSRDenseRoundTrip(t *testing.T) {
	b := NewSparseBuilder(3, 2)
	_ = b.Add(0, 1, 5)
	_ = b.Add(2, 0, -1)
	d := b.Build().Dense()
	if d.At(0, 1) != 5 || d.At(2, 0) != -1 || d.At(1, 1) != 0 {
		t.Errorf("Dense round trip wrong: %v", d)
	}
}

func TestCSRRowNonZeros(t *testing.T) {
	b := NewSparseBuilder(2, 4)
	_ = b.Add(1, 0, 1)
	_ = b.Add(1, 3, 2)
	m := b.Build()
	var cols []int
	var vals []float64
	m.RowNonZeros(1, func(j int, v float64) {
		cols = append(cols, j)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 3 || vals[1] != 2 {
		t.Errorf("RowNonZeros cols=%v vals=%v", cols, vals)
	}
	m.RowNonZeros(0, func(j int, v float64) {
		t.Error("row 0 must be empty")
	})
}

func TestSubCSR(t *testing.T) {
	b := NewSparseBuilder(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			_ = b.Add(i, j, float64(10*i+j))
		}
	}
	m := b.Build()
	sub, err := m.SubCSR([]int{2, 0}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.At(0, 0) != 21 || sub.At(0, 1) != 22 || sub.At(1, 0) != 1 || sub.At(1, 1) != 2 {
		t.Errorf("SubCSR wrong: %v", sub.Dense())
	}
	if _, err := m.SubCSR([]int{9}, []int{0}); err == nil {
		t.Error("row out of range: want error")
	}
	if _, err := m.SubCSR([]int{0}, []int{9}); err == nil {
		t.Error("col out of range: want error")
	}
}

func TestCSRVecMulLengthMismatch(t *testing.T) {
	m := NewSparseBuilder(2, 2).Build()
	if _, err := m.VecMul([]float64{1}); err == nil {
		t.Error("want error")
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("want error")
	}
}

func TestSubCSRReorderedColumns(t *testing.T) {
	// A descending column selection exercises the per-row re-sort path;
	// the CSR column invariant must hold (At relies on binary search).
	b := NewSparseBuilder(2, 4)
	for j := 0; j < 4; j++ {
		_ = b.Add(0, j, float64(j+1))
		_ = b.Add(1, j, float64(10*(j+1)))
	}
	sub, err := b.Build().SubCSR([]int{0, 1}, []int{3, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{4, 2, 1}, {40, 20, 10}}
	for i := range want {
		for j, w := range want[i] {
			if got := sub.At(i, j); got != w {
				t.Errorf("sub(%d,%d) = %v, want %v", i, j, got, w)
			}
		}
	}
}

func TestCSRTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		b := NewSparseBuilder(rows, cols)
		for e := 0; e < rows*cols/2; e++ {
			_ = b.Add(r.Intn(rows), r.Intn(cols), 2*r.Float64()-1)
		}
		m := b.Build()
		mt := m.Transpose()
		if mt.Rows() != cols || mt.Cols() != rows || mt.NNZ() != m.NNZ() {
			t.Fatalf("transpose shape %dx%d nnz %d, want %dx%d nnz %d",
				mt.Rows(), mt.Cols(), mt.NNZ(), cols, rows, m.NNZ())
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if m.At(i, j) != mt.At(j, i) {
					t.Fatalf("transpose(%d,%d) = %v, want %v", j, i, mt.At(j, i), m.At(i, j))
				}
			}
		}
	}
}

func TestCSRScaleRows(t *testing.T) {
	b := NewSparseBuilder(2, 2)
	_ = b.Add(0, 0, 2)
	_ = b.Add(0, 1, 3)
	_ = b.Add(1, 1, 5)
	m, err := b.Build().ScaleRows([]float64{10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 20 || m.At(0, 1) != 30 || m.At(1, 1) != 0 {
		t.Errorf("ScaleRows wrong: %v", m.Dense())
	}
	if _, err := m.ScaleRows([]float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestCSRDiagonal(t *testing.T) {
	b := NewSparseBuilder(3, 3)
	_ = b.Add(0, 0, 1.5)
	_ = b.Add(1, 0, 2)
	_ = b.Add(2, 2, -4)
	d := b.Build().Diagonal()
	want := []float64{1.5, 0, -4}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("diag[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestCSRMulVecInto(t *testing.T) {
	b := NewSparseBuilder(2, 3)
	_ = b.Add(0, 0, 1)
	_ = b.Add(0, 2, 2)
	_ = b.Add(1, 1, 3)
	m := b.Build()
	dst := make([]float64, 2)
	if err := m.MulVecInto([]float64{1, 2, 3}, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 7 || dst[1] != 6 {
		t.Errorf("MulVecInto = %v, want [7 6]", dst)
	}
	if err := m.MulVecInto([]float64{1}, dst); err == nil {
		t.Error("bad v length: want error")
	}
	if err := m.MulVecInto([]float64{1, 2, 3}, dst[:1]); err == nil {
		t.Error("bad dst length: want error")
	}
}
