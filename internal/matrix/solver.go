package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// This file is the pluggable linear-solver layer of the analytic pipeline.
// Every closed-form relation of the absorbing-chain analytics reduces to
// systems with the matrix A = I − M, where M is a substochastic CSR block
// of the transition matrix (spectral radius < 1). A Solver prepares a
// Factorization of I − M once; the Factorization then answers right
// systems (I−M)x = b and left (row-vector) systems x(I−M) = b, so a
// single prepared block serves several relations.
//
// Two families are provided:
//
//   - DenseSolver: the exact LU path. It densifies I − M and factors it
//     with partial pivoting — O(n³) but backward stable; the fallback and
//     cross-check reference.
//   - Iterative solvers (GaussSeidelSolver, BiCGSTABSolver): sparse
//     residual-controlled iterations that never materialize a dense
//     matrix, making state spaces with thousands of transient states
//     affordable.
//
// AutoSolver composes them: iterate sparsely, densify only if the
// iteration fails to converge.

// ErrNoConvergence is returned when an iterative solve fails to reach its
// residual tolerance within its iteration budget.
var ErrNoConvergence = errors.New("matrix: iterative solve did not converge")

// Default iterative-solver controls.
const (
	// DefaultTol is the default residual tolerance of the iterative
	// solvers: a solve x is accepted when
	// ‖b − Ax‖∞ ≤ tol · (‖b‖∞ + ‖x‖∞).
	DefaultTol = 1e-12
	// DefaultGSMaxIter bounds Gauss–Seidel sweeps.
	DefaultGSMaxIter = 500_000
	// DefaultBiCGSTABMaxIter bounds BiCGSTAB iterations.
	DefaultBiCGSTABMaxIter = 100_000
)

// Factorization is a prepared solving context for A = I − M.
// Implementations are not safe for concurrent use.
type Factorization interface {
	// Order returns the dimension of the system.
	Order() int
	// SolveVec solves (I − M) x = b.
	SolveVec(b []float64) ([]float64, error)
	// SolveVecLeft solves the row-vector system x (I − M) = b,
	// i.e. (I − M)ᵀ xᵀ = bᵀ.
	SolveVecLeft(b []float64) ([]float64, error)
	// SolveMat solves (I − M) X = B for a batch of right-hand sides
	// (bs[i] is one RHS vector): one prepared-block pass answers every
	// column, so callers with several systems against the same block
	// issue a single batched call. Column i of the result solves bs[i];
	// columns are solved with the same arithmetic as SolveVec, so a
	// batched solve is bit-identical to the vector-at-a-time loop.
	SolveMat(bs [][]float64) ([][]float64, error)
	// SolveMatLeft is the batched counterpart of SolveVecLeft: it solves
	// x_i (I − M) = bs[i] for every i, sharing the per-block setup (LU
	// factors, lazily built sparse transpose) across the batch.
	SolveMatLeft(bs [][]float64) ([][]float64, error)
}

// Solver prepares factorizations of I − M for square substochastic CSR
// blocks M.
type Solver interface {
	// Name identifies the backend ("dense", "gauss-seidel", ...).
	Name() string
	// Factor prepares I − m for repeated solves.
	Factor(m *CSR) (Factorization, error)
}

// solveBatch answers a batch of systems through one per-vector solve
// function, after the caller has paid any shared setup (LU factors,
// transpose) once. Each column gets exactly the arithmetic of the
// corresponding vector call, so batched and looped solves agree
// bit-for-bit.
func solveBatch(bs [][]float64, solve func(b []float64) ([]float64, error)) ([][]float64, error) {
	out := make([][]float64, len(bs))
	for i, b := range bs {
		x, err := solve(b)
		if err != nil {
			return nil, fmt.Errorf("matrix: batched solve, rhs %d of %d: %w", i, len(bs), err)
		}
		out[i] = x
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Dense LU backend.

// DenseSolver densifies I − M and solves with LU partial pivoting: the
// exact reference backend.
type DenseSolver struct{}

// Name implements Solver.
func (DenseSolver) Name() string { return "dense" }

// Factor implements Solver.
func (DenseSolver) Factor(m *CSR) (Factorization, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	a := Identity(m.Rows())
	for i := 0; i < m.Rows(); i++ {
		m.RowNonZeros(i, func(j int, v float64) {
			a.Add(i, j, -v)
		})
	}
	return &denseFactorization{a: a}, nil
}

type denseFactorization struct {
	a *Dense
	// One lazy LU serves both orientations: left systems solve through
	// SolveVecTransposed on the same P A = L U factors, so no block is
	// ever factored twice and a relation that never solves an
	// orientation never pays for it.
	lu *LU
}

func (f *denseFactorization) Order() int { return f.a.Rows() }

func (f *denseFactorization) factor() (*LU, error) {
	if f.lu == nil {
		lu, err := FactorLU(f.a)
		if err != nil {
			return nil, err
		}
		f.lu = lu
	}
	return f.lu, nil
}

func (f *denseFactorization) SolveVec(b []float64) ([]float64, error) {
	lu, err := f.factor()
	if err != nil {
		return nil, err
	}
	return lu.SolveVec(b)
}

func (f *denseFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	lu, err := f.factor()
	if err != nil {
		return nil, err
	}
	return lu.SolveVecTransposed(b)
}

func (f *denseFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	lu, err := f.factor()
	if err != nil {
		return nil, err
	}
	return solveBatch(bs, lu.SolveVec)
}

func (f *denseFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	lu, err := f.factor()
	if err != nil {
		return nil, err
	}
	return solveBatch(bs, lu.SolveVecTransposed)
}

// ---------------------------------------------------------------------------
// Gauss–Seidel backend.

// GaussSeidelSolver solves (I−M)x = b by forward Gauss–Seidel sweeps over
// the CSR rows, with residual-controlled convergence. It never builds a
// dense matrix; left systems sweep over the (sparse) transpose, built
// lazily once per factorization.
type GaussSeidelSolver struct {
	// Tol is the residual tolerance; 0 selects DefaultTol.
	Tol float64
	// MaxIter bounds the number of sweeps; 0 selects DefaultGSMaxIter.
	MaxIter int
}

// Name implements Solver.
func (GaussSeidelSolver) Name() string { return "gauss-seidel" }

// Factor implements Solver.
func (s GaussSeidelSolver) Factor(m *CSR) (Factorization, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	tol, maxIter := s.Tol, s.MaxIter
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultGSMaxIter
	}
	diag := m.Diagonal()
	for i, d := range diag {
		if 1-d <= 0 {
			return nil, fmt.Errorf("%w: diagonal of I−M is %v at row %d", ErrSingular, 1-d, i)
		}
	}
	return &gsFactorization{m: m, diag: diag, tol: tol, maxIter: maxIter}, nil
}

type gsFactorization struct {
	m       *CSR
	mT      *CSR // lazily built transpose for left systems
	diag    []float64
	tol     float64
	maxIter int
}

func (f *gsFactorization) Order() int { return f.m.Rows() }

func (f *gsFactorization) SolveVec(b []float64) ([]float64, error) {
	return gaussSeidel(f.m, f.diag, b, f.tol, f.maxIter)
}

func (f *gsFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	if f.mT == nil {
		f.mT = f.m.Transpose()
	}
	return gaussSeidel(f.mT, f.diag, b, f.tol, f.maxIter)
}

func (f *gsFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVec)
}

// SolveMatLeft shares the lazily built transpose of SolveVecLeft across
// the batch: the first column pays it, the rest reuse it.
func (f *gsFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVecLeft)
}

// gaussSeidel iterates x_i ← (b_i + Σ_{j≠i} M_ij x_j) / (1 − M_ii) until
// the residual of (I−M)x = b satisfies ‖b − Ax‖∞ ≤ tol·(‖b‖∞ + ‖x‖∞).
// diag must be the diagonal of M (shared by M and Mᵀ).
func gaussSeidel(m *CSR, diag []float64, b []float64, tol float64, maxIter int) ([]float64, error) {
	n := m.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("matrix: SolveVec rhs length %d does not match order %d", len(b), n)
	}
	x := append([]float64(nil), b...)
	for iter := 0; iter < maxIter; iter++ {
		var maxDiff, maxX float64
		for i := 0; i < n; i++ {
			s := b[i]
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				if j := m.colIdx[k]; j != i {
					s += m.vals[k] * x[j]
				}
			}
			nx := s / (1 - diag[i])
			if d := math.Abs(nx - x[i]); d > maxDiff {
				maxDiff = d
			}
			if a := math.Abs(nx); a > maxX {
				maxX = a
			}
			x[i] = nx
		}
		// The sweep has stagnated; confirm with the true residual (the
		// update norm underestimates the error for slowly mixing chains).
		if maxDiff <= tol*(1+maxX) {
			if res, scale := iMinusResidual(m, x, b); res <= tol*scale {
				return x, nil
			}
		}
	}
	if res, scale := iMinusResidual(m, x, b); res <= tol*scale {
		return x, nil
	}
	return nil, fmt.Errorf("%w: gauss-seidel after %d sweeps (n=%d, tol=%g)", ErrNoConvergence, maxIter, n, tol)
}

// iMinusResidual returns ‖b − (I−M)x‖∞ and the convergence scale
// ‖b‖∞ + ‖x‖∞ (a backward-error-style criterion that stays achievable
// when the solution is large, as it is for long-lived chains).
func iMinusResidual(m *CSR, x, b []float64) (res, scale float64) {
	var maxB, maxX float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		if r := math.Abs(b[i] - (x[i] - s)); r > res {
			res = r
		}
		if a := math.Abs(b[i]); a > maxB {
			maxB = a
		}
		if a := math.Abs(x[i]); a > maxX {
			maxX = a
		}
	}
	return res, maxB + maxX + 1e-300
}

// ---------------------------------------------------------------------------
// BiCGSTAB backend.

// BiCGSTABSolver solves (I−M)x = b with the biconjugate gradient
// stabilized method of van der Vorst: a Krylov iteration for
// non-symmetric systems that typically converges in far fewer matrix
// passes than stationary sweeps. The iteration is right-preconditioned
// with a fixed number of forward Gauss–Seidel sweeps (a linear operator,
// since every sweep starts from zero): solve (I−M)P⁻¹y = b, then
// x = P⁻¹y. GS sweeps are a natural preconditioner for these M-matrix
// systems and flatten the heavy self-loops that slow convergence as
// d → 1, while right preconditioning leaves the true residual unchanged.
// Left systems run on the (sparse, lazily built) transpose; nothing is
// ever densified.
type BiCGSTABSolver struct {
	// Tol is the residual tolerance; 0 selects DefaultTol.
	Tol float64
	// MaxIter bounds iterations; 0 selects DefaultBiCGSTABMaxIter.
	MaxIter int
}

// Name implements Solver.
func (BiCGSTABSolver) Name() string { return "bicgstab" }

// Factor implements Solver.
func (s BiCGSTABSolver) Factor(m *CSR) (Factorization, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	tol, maxIter := s.Tol, s.MaxIter
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultBiCGSTABMaxIter
	}
	diag := m.Diagonal()
	invDiag := make([]float64, len(diag))
	for i, d := range diag {
		if 1-d <= 0 {
			return nil, fmt.Errorf("%w: diagonal of I−M is %v at row %d", ErrSingular, 1-d, i)
		}
		invDiag[i] = 1 / (1 - d)
	}
	return &bicgstabFactorization{m: m, invDiag: invDiag, tol: tol, maxIter: maxIter}, nil
}

// bicgstabPrecondSweeps is the fixed number of forward Gauss–Seidel
// sweeps per preconditioner application. Two sweeps roughly halve the
// Krylov iteration count again relative to one at ~1 extra matvec of
// cost each.
const bicgstabPrecondSweeps = 2

type bicgstabFactorization struct {
	m       *CSR
	mT      *CSR      // lazily built transpose, for left systems
	invDiag []float64 // 1/(1−M_ii), shared by M and Mᵀ
	tol     float64
	maxIter int
}

func (f *bicgstabFactorization) Order() int { return f.m.Rows() }

// gsSweepsInto writes into z the result of bicgstabPrecondSweeps forward
// Gauss–Seidel sweeps for (I−M)z = r starting from z = 0: the
// preconditioner application z = P⁻¹r. The first sweep skips the
// all-zero z reads.
func gsSweepsInto(m *CSR, invDiag, r, z []float64) {
	rowPtr, colIdx, vals := m.rowPtr, m.colIdx, m.vals
	for i := 0; i < m.rows; i++ {
		s := r[i]
		end := rowPtr[i+1]
		for k := rowPtr[i]; k < end; k++ {
			if j := colIdx[k]; j < i {
				s += vals[k] * z[j]
			}
		}
		z[i] = s * invDiag[i]
	}
	for sweep := 1; sweep < bicgstabPrecondSweeps; sweep++ {
		for i := 0; i < m.rows; i++ {
			s := r[i]
			end := rowPtr[i+1]
			for k := rowPtr[i]; k < end; k++ {
				if j := colIdx[k]; j != i {
					s += vals[k] * z[j]
				}
			}
			z[i] = s * invDiag[i]
		}
	}
}

// solve runs the preconditioned iteration on a, which is M for right
// systems and Mᵀ for left ones (so both orientations see a plain
// (I−a)x = b system).
func (f *bicgstabFactorization) solve(b []float64, a *CSR) ([]float64, error) {
	n := a.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("matrix: solve rhs length %d does not match order %d", len(b), n)
	}
	z := make([]float64, n)
	tmp := make([]float64, n)
	// op(y) = (I−a) P⁻¹ y; the residual b − op(y) equals the residual of
	// the unpreconditioned system at x = P⁻¹y.
	op := func(y, dst []float64) {
		gsSweepsInto(a, f.invDiag, y, z)
		_ = a.MulVecInto(z, tmp)
		for i := range dst {
			dst[i] = z[i] - tmp[i]
		}
	}
	y, err := bicgstab(op, b, f.tol, f.maxIter)
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	gsSweepsInto(a, f.invDiag, y, x)
	return x, nil
}

func (f *bicgstabFactorization) SolveVec(b []float64) ([]float64, error) {
	return f.solve(b, f.m)
}

func (f *bicgstabFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	if f.mT == nil {
		f.mT = f.m.Transpose()
	}
	return f.solve(b, f.mT)
}

func (f *bicgstabFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVec)
}

// SolveMatLeft shares the lazily built transpose of SolveVecLeft across
// the batch: the first column pays it, the rest reuse it.
func (f *bicgstabFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVecLeft)
}

// bicgstab runs the BiCGSTAB iteration for op(x) = b with a residual
// stopping rule ‖b − op(x)‖∞ ≤ tol·(‖b‖∞ + ‖x‖∞). Near-breakdowns
// (vanishing ρ or ω) restart the iteration from the current iterate.
func bicgstab(op func(x, dst []float64), b []float64, tol float64, maxIter int) ([]float64, error) {
	n := len(b)
	x := append([]float64(nil), b...)
	r := make([]float64, n)
	rhat := make([]float64, n)
	v := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)

	restart := func() float64 {
		op(x, r)
		var norm float64
		for i := range r {
			r[i] = b[i] - r[i]
			norm += r[i] * r[i]
		}
		copy(rhat, r)
		copy(p, r)
		for i := range v {
			v[i] = 0
		}
		return norm
	}
	rho := restart()
	if converged(op, x, b, t, tol) {
		return x, nil
	}
	var maxB float64
	for i := range b {
		if a := math.Abs(b[i]); a > maxB {
			maxB = a
		}
	}
	const breakdown = 1e-280
	for iter := 0; iter < maxIter; iter++ {
		op(p, v)
		var rhatV float64
		for i := range v {
			rhatV += rhat[i] * v[i]
		}
		if math.Abs(rhatV) < breakdown {
			rho = restart()
			continue
		}
		alpha := rho / rhatV
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		op(s, t)
		var tt, ts float64
		for i := range t {
			tt += t[i] * t[i]
			ts += t[i] * s[i]
		}
		var omega float64
		if tt > breakdown {
			omega = ts / tt
		}
		var maxX float64
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
			if a := math.Abs(x[i]); a > maxX {
				maxX = a
			}
		}
		if omega == 0 || math.Abs(omega) < breakdown {
			if converged(op, x, b, t, tol) {
				return x, nil
			}
			rho = restart()
			continue
		}
		var rhoNext, rNorm float64
		for i := range r {
			r[i] = s[i] - omega*t[i]
			rhoNext += rhat[i] * r[i]
			rNorm += r[i] * r[i]
		}
		// Cheap scale-aware 2-norm gate (‖r‖∞ ≤ ‖r‖₂) before paying one
		// extra op for the true-residual ∞-norm check; the %16 backstop
		// catches recursive-residual drift.
		if target := tol * (maxB + maxX); rNorm <= target*target || iter%16 == 15 {
			if converged(op, x, b, t, tol) {
				return x, nil
			}
		}
		if math.Abs(rhoNext) < breakdown {
			rho = restart()
			continue
		}
		beta := (rhoNext / rho) * (alpha / omega)
		rho = rhoNext
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
	}
	if converged(op, x, b, t, tol) {
		return x, nil
	}
	return nil, fmt.Errorf("%w: bicgstab after %d iterations (n=%d, tol=%g)", ErrNoConvergence, maxIter, n, tol)
}

// converged checks the true residual ‖b − op(x)‖∞ ≤ tol·(‖b‖∞ + ‖x‖∞),
// using scratch as workspace.
func converged(op func(x, dst []float64), x, b, scratch []float64, tol float64) bool {
	op(x, scratch)
	var res, maxB, maxX float64
	for i := range scratch {
		if r := math.Abs(b[i] - scratch[i]); r > res {
			res = r
		}
		if a := math.Abs(b[i]); a > maxB {
			maxB = a
		}
		if a := math.Abs(x[i]); a > maxX {
			maxX = a
		}
	}
	return res <= tol*(maxB+maxX+1e-300)
}

// ---------------------------------------------------------------------------
// Auto backend: sparse first, dense fallback.

// AutoSolver iterates sparsely and falls back to the dense LU path only
// when the iteration fails to converge — robustness of the dense path at
// sparse cost on the common path.
type AutoSolver struct {
	// Sparse is the iterative backend; nil selects BiCGSTABSolver{}.
	Sparse Solver
}

// Name implements Solver.
func (AutoSolver) Name() string { return "auto" }

// Factor implements Solver.
func (s AutoSolver) Factor(m *CSR) (Factorization, error) {
	sparse := s.Sparse
	if sparse == nil {
		sparse = BiCGSTABSolver{}
	}
	f, err := sparse.Factor(m)
	if err != nil {
		return nil, err
	}
	return &autoFactorization{m: m, sparse: f}, nil
}

type autoFactorization struct {
	m      *CSR
	sparse Factorization
	dense  Factorization // built on first fallback
	// fellBack remembers a non-convergence: once one solve on this block
	// has failed to converge, later solves skip the doomed full-budget
	// iteration and go straight to the dense factors.
	fellBack bool
}

func (f *autoFactorization) Order() int { return f.sparse.Order() }

func (f *autoFactorization) fallback() (Factorization, error) {
	f.fellBack = true
	if f.dense == nil {
		d, err := DenseSolver{}.Factor(f.m)
		if err != nil {
			return nil, err
		}
		f.dense = d
	}
	return f.dense, nil
}

func (f *autoFactorization) solve(b []float64, left bool) ([]float64, error) {
	if !f.fellBack {
		var x []float64
		var err error
		if left {
			x, err = f.sparse.SolveVecLeft(b)
		} else {
			x, err = f.sparse.SolveVec(b)
		}
		if !errors.Is(err, ErrNoConvergence) {
			return x, err
		}
	}
	d, err := f.fallback()
	if err != nil {
		return nil, err
	}
	if left {
		return d.SolveVecLeft(b)
	}
	return d.SolveVec(b)
}

func (f *autoFactorization) SolveVec(b []float64) ([]float64, error) {
	return f.solve(b, false)
}

func (f *autoFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	return f.solve(b, true)
}

// SolveMat batches through the per-vector path so the sparse→dense
// fallback stays a per-system decision, exactly as in a vector loop.
func (f *autoFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVec)
}

func (f *autoFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVecLeft)
}

// ---------------------------------------------------------------------------
// Configuration.

// SolverConfig selects and parameterizes a Solver from flag-friendly
// values. The zero value selects the exact dense LU backend.
type SolverConfig struct {
	// Kind names the backend: "dense" (or ""), "sparse"/"bicgstab",
	// "gs"/"gauss-seidel", or "auto".
	Kind string
	// Tol is the iterative residual tolerance; 0 selects DefaultTol.
	// Ignored by the dense backend.
	Tol float64
	// MaxIter bounds iterative work; 0 selects the backend default.
	// Ignored by the dense backend.
	MaxIter int
}

// SolverKinds lists the accepted SolverConfig.Kind values.
func SolverKinds() []string {
	return []string{"dense", "sparse", "bicgstab", "gs", "gauss-seidel", "auto"}
}

// Build resolves the configuration into a Solver.
func (c SolverConfig) Build() (Solver, error) {
	switch c.Kind {
	case "", "dense":
		return DenseSolver{}, nil
	case "sparse", "bicgstab":
		return BiCGSTABSolver{Tol: c.Tol, MaxIter: c.MaxIter}, nil
	case "gs", "gauss-seidel":
		return GaussSeidelSolver{Tol: c.Tol, MaxIter: c.MaxIter}, nil
	case "auto":
		return AutoSolver{Sparse: BiCGSTABSolver{Tol: c.Tol, MaxIter: c.MaxIter}}, nil
	default:
		return nil, fmt.Errorf("matrix: unknown solver kind %q (want one of %s)",
			c.Kind, strings.Join(SolverKinds(), ", "))
	}
}
