package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// This file is the pluggable linear-solver layer of the analytic pipeline.
// Every closed-form relation of the absorbing-chain analytics reduces to
// systems with the matrix A = I − M, where M is a substochastic CSR block
// of the transition matrix (spectral radius < 1). A Solver prepares a
// Factorization of I − M once; the Factorization then answers right
// systems (I−M)x = b and left (row-vector) systems x(I−M) = b, so a
// single prepared block serves several relations.
//
// Three families are provided:
//
//   - DenseSolver: the exact LU path. It densifies I − M and factors it
//     with partial pivoting — O(n³) but backward stable; the fallback and
//     cross-check reference.
//   - Iterative solvers (GaussSeidelSolver, BiCGSTABSolver, ILUSolver):
//     sparse residual-controlled iterations that never materialize a
//     dense matrix, making state spaces with hundreds of thousands of
//     transient states affordable. BiCGSTAB preconditions with fixed
//     Gauss–Seidel sweeps; ILUSolver preconditions the same Krylov
//     iteration with an ILU(0) factorization, which keeps the iteration
//     count flat as the chain's mixing slows (d → 1).
//   - AutoSolver composes them: probe the block's mixing speed, iterate
//     sparsely with the matching preconditioner, densify only if the
//     iteration fails to converge.
//
// Iterative factorizations accept a warm start (SolveVecFrom and
// friends): an initial guess x0 from a nearby system — the previous cell
// of a parameter sweep, the previous step of a sojourn recursion — cuts
// the iteration count without changing the convergence criterion.

// ErrNoConvergence is returned when an iterative solve fails to reach its
// residual tolerance within its iteration budget.
var ErrNoConvergence = errors.New("matrix: iterative solve did not converge")

// Default iterative-solver controls.
const (
	// DefaultTol is the default residual tolerance of the iterative
	// solvers: a solve x is accepted when
	// ‖b − Ax‖∞ ≤ tol · (‖b‖∞ + ‖x‖∞).
	DefaultTol = 1e-12
	// DefaultGSMaxIter bounds Gauss–Seidel sweeps.
	DefaultGSMaxIter = 500_000
	// DefaultBiCGSTABMaxIter bounds BiCGSTAB iterations.
	DefaultBiCGSTABMaxIter = 100_000
)

// ConvergenceError is the detailed failure of an iterative solve. It
// wraps ErrNoConvergence (errors.Is works) and carries the diagnostics
// the auto backend's fallback accounting reports: how much budget was
// burned and whether the iteration suffered numerical breakdowns (the
// two point at different remedies — a bigger budget / better
// preconditioner versus a fundamentally ill-suited Krylov method).
type ConvergenceError struct {
	// Method names the iteration ("bicgstab", "gauss-seidel", "ilu").
	Method string
	// Iterations is the number of iterations performed before giving up.
	Iterations int
	// Breakdowns counts near-breakdown restarts (vanishing ρ or ω) the
	// iteration hit; 0 means the budget simply ran out.
	Breakdowns int
	// N and Tol describe the attempted system.
	N   int
	Tol float64
}

func (e *ConvergenceError) Error() string {
	msg := fmt.Sprintf("%v: %s after %d iterations (n=%d, tol=%g)",
		ErrNoConvergence, e.Method, e.Iterations, e.N, e.Tol)
	if e.Breakdowns > 0 {
		msg += fmt.Sprintf(", %d breakdown restarts", e.Breakdowns)
	}
	return msg
}

func (e *ConvergenceError) Unwrap() error { return ErrNoConvergence }

// FallbackReason classifies why the auto backend abandoned the sparse
// path for a block.
type FallbackReason string

const (
	// FallbackNone: the sparse path never failed.
	FallbackNone FallbackReason = ""
	// FallbackIterationCap: the iteration ran out of budget.
	FallbackIterationCap FallbackReason = "iteration_cap"
	// FallbackBreakdown: the iteration hit numerical breakdowns before
	// running out of budget.
	FallbackBreakdown FallbackReason = "breakdown"
)

// classifyFallback maps an iterative-solve error to its FallbackReason.
func classifyFallback(err error) FallbackReason {
	var ce *ConvergenceError
	if errors.As(err, &ce) && ce.Breakdowns > 0 {
		return FallbackBreakdown
	}
	return FallbackIterationCap
}

// SolveStats summarizes the work a Factorization has performed so far.
// Counters are cumulative across all solves on the factorization; like
// the Factorization itself they are not safe for concurrent use.
type SolveStats struct {
	// Backend names the backend that served the solves ("dense",
	// "bicgstab", "ilu", ...). For the auto backend it names the chosen
	// sparse backend even after a fallback (Fallbacks tells the rest).
	Backend string
	// Iterations is the cumulative iterative work: Krylov iterations for
	// BiCGSTAB/ILU, sweeps for Gauss–Seidel, 0 for dense.
	Iterations int64
	// Fallbacks counts solves answered by the auto backend's dense
	// fallback instead of the sparse path.
	Fallbacks int64
	// FallbackReason records why the block first fell back.
	FallbackReason FallbackReason
}

// Plus merges two stats (summing counters, keeping the first non-empty
// backend and reason), for aggregation across a chain's factorizations.
func (s SolveStats) Plus(o SolveStats) SolveStats {
	out := s
	out.Iterations += o.Iterations
	out.Fallbacks += o.Fallbacks
	if out.Backend == "" {
		out.Backend = o.Backend
	}
	if out.FallbackReason == FallbackNone {
		out.FallbackReason = o.FallbackReason
	}
	return out
}

// Factorization is a prepared solving context for A = I − M.
// Implementations are not safe for concurrent use.
type Factorization interface {
	// Order returns the dimension of the system.
	Order() int
	// SolveVec solves (I − M) x = b.
	SolveVec(b []float64) ([]float64, error)
	// SolveVecLeft solves the row-vector system x (I − M) = b,
	// i.e. (I − M)ᵀ xᵀ = bᵀ.
	SolveVecLeft(b []float64) ([]float64, error)
	// SolveVecFrom is SolveVec warm-started from the initial guess x0
	// (same convergence criterion, fewer iterations when x0 is close).
	// A nil x0 is the cold start; a non-nil x0 must have length Order().
	// The dense backend ignores the guess. x0 is read, never written.
	SolveVecFrom(b, x0 []float64) ([]float64, error)
	// SolveVecLeftFrom is SolveVecLeft warm-started from x0.
	SolveVecLeftFrom(b, x0 []float64) ([]float64, error)
	// SolveMat solves (I − M) X = B for a batch of right-hand sides
	// (bs[i] is one RHS vector): one prepared-block pass answers every
	// column, so callers with several systems against the same block
	// issue a single batched call. Column i of the result solves bs[i];
	// columns are solved with the same arithmetic as SolveVec, so a
	// batched solve is bit-identical to the vector-at-a-time loop.
	SolveMat(bs [][]float64) ([][]float64, error)
	// SolveMatLeft is the batched counterpart of SolveVecLeft: it solves
	// x_i (I − M) = bs[i] for every i, sharing the per-block setup (LU
	// factors, lazily built sparse transpose) across the batch.
	SolveMatLeft(bs [][]float64) ([][]float64, error)
	// SolveMatFrom is SolveMat with one warm-start guess per column;
	// x0s may be nil (all cold), else len(x0s) must equal len(bs) and
	// individual entries may be nil.
	SolveMatFrom(bs, x0s [][]float64) ([][]float64, error)
	// SolveMatLeftFrom is the batched, warm-started left solve.
	SolveMatLeftFrom(bs, x0s [][]float64) ([][]float64, error)
	// Stats reports the cumulative work of all solves so far.
	Stats() SolveStats
}

// Solver prepares factorizations of I − M for square substochastic CSR
// blocks M.
type Solver interface {
	// Name identifies the backend ("dense", "gauss-seidel", ...).
	Name() string
	// Factor prepares I − m for repeated solves.
	Factor(m *CSR) (Factorization, error)
}

// checkGuess validates a warm-start guess against the system order.
func checkGuess(x0 []float64, n int) error {
	if x0 != nil && len(x0) != n {
		return fmt.Errorf("matrix: warm-start guess length %d does not match order %d", len(x0), n)
	}
	return nil
}

// solveBatchFrom answers a batch of systems through one per-vector solve
// function, after the caller has paid any shared setup (LU factors,
// transpose) once. Each column gets exactly the arithmetic of the
// corresponding vector call, so batched and looped solves agree
// bit-for-bit.
func solveBatchFrom(bs, x0s [][]float64, solve func(b, x0 []float64) ([]float64, error)) ([][]float64, error) {
	if x0s != nil && len(x0s) != len(bs) {
		return nil, fmt.Errorf("matrix: batched warm start has %d guesses for %d right-hand sides", len(x0s), len(bs))
	}
	out := make([][]float64, len(bs))
	for i, b := range bs {
		var x0 []float64
		if x0s != nil {
			x0 = x0s[i]
		}
		x, err := solve(b, x0)
		if err != nil {
			return nil, fmt.Errorf("matrix: batched solve, rhs %d of %d: %w", i, len(bs), err)
		}
		out[i] = x
	}
	return out, nil
}

// solveBatch is solveBatchFrom with every column cold.
func solveBatch(bs [][]float64, solve func(b []float64) ([]float64, error)) ([][]float64, error) {
	return solveBatchFrom(bs, nil, func(b, _ []float64) ([]float64, error) { return solve(b) })
}

// ---------------------------------------------------------------------------
// Dense LU backend.

// DenseSolver densifies I − M and solves with LU partial pivoting: the
// exact reference backend.
type DenseSolver struct{}

// Name implements Solver.
func (DenseSolver) Name() string { return "dense" }

// Factor implements Solver.
func (DenseSolver) Factor(m *CSR) (Factorization, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	a := Identity(m.Rows())
	for i := 0; i < m.Rows(); i++ {
		m.RowNonZeros(i, func(j int, v float64) {
			a.Add(i, j, -v)
		})
	}
	return &denseFactorization{a: a}, nil
}

type denseFactorization struct {
	a *Dense
	// One lazy LU serves both orientations: left systems solve through
	// SolveVecTransposed on the same P A = L U factors, so no block is
	// ever factored twice and a relation that never solves an
	// orientation never pays for it.
	lu *LU
}

func (f *denseFactorization) Order() int { return f.a.Rows() }

func (f *denseFactorization) factor() (*LU, error) {
	if f.lu == nil {
		lu, err := FactorLU(f.a)
		if err != nil {
			return nil, err
		}
		f.lu = lu
	}
	return f.lu, nil
}

func (f *denseFactorization) SolveVec(b []float64) ([]float64, error) {
	lu, err := f.factor()
	if err != nil {
		return nil, err
	}
	return lu.SolveVec(b)
}

func (f *denseFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	lu, err := f.factor()
	if err != nil {
		return nil, err
	}
	return lu.SolveVecTransposed(b)
}

// SolveVecFrom validates and then discards the guess: direct solves have
// no iteration to shorten.
func (f *denseFactorization) SolveVecFrom(b, x0 []float64) ([]float64, error) {
	if err := checkGuess(x0, f.Order()); err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

func (f *denseFactorization) SolveVecLeftFrom(b, x0 []float64) ([]float64, error) {
	if err := checkGuess(x0, f.Order()); err != nil {
		return nil, err
	}
	return f.SolveVecLeft(b)
}

func (f *denseFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	lu, err := f.factor()
	if err != nil {
		return nil, err
	}
	return solveBatch(bs, lu.SolveVec)
}

func (f *denseFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	lu, err := f.factor()
	if err != nil {
		return nil, err
	}
	return solveBatch(bs, lu.SolveVecTransposed)
}

func (f *denseFactorization) SolveMatFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecFrom)
}

func (f *denseFactorization) SolveMatLeftFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecLeftFrom)
}

func (f *denseFactorization) Stats() SolveStats { return SolveStats{Backend: "dense"} }

// ---------------------------------------------------------------------------
// Gauss–Seidel backend.

// GaussSeidelSolver solves (I−M)x = b by forward Gauss–Seidel sweeps over
// the CSR rows, with residual-controlled convergence. It never builds a
// dense matrix; left systems sweep over the (sparse) transpose, built
// lazily once per factorization.
type GaussSeidelSolver struct {
	// Tol is the residual tolerance; 0 selects DefaultTol.
	Tol float64
	// MaxIter bounds the number of sweeps; 0 selects DefaultGSMaxIter.
	MaxIter int
}

// Name implements Solver.
func (GaussSeidelSolver) Name() string { return "gauss-seidel" }

// Factor implements Solver.
func (s GaussSeidelSolver) Factor(m *CSR) (Factorization, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	tol, maxIter := s.Tol, s.MaxIter
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultGSMaxIter
	}
	diag := m.Diagonal()
	for i, d := range diag {
		if 1-d <= 0 {
			return nil, fmt.Errorf("%w: diagonal of I−M is %v at row %d", ErrSingular, 1-d, i)
		}
	}
	return &gsFactorization{m: m, diag: diag, tol: tol, maxIter: maxIter}, nil
}

type gsFactorization struct {
	m       *CSR
	mT      *CSR // lazily built transpose for left systems
	diag    []float64
	tol     float64
	maxIter int
	iters   int64
}

func (f *gsFactorization) Order() int { return f.m.Rows() }

func (f *gsFactorization) SolveVec(b []float64) ([]float64, error) {
	return f.SolveVecFrom(b, nil)
}

func (f *gsFactorization) SolveVecFrom(b, x0 []float64) ([]float64, error) {
	x, sweeps, err := gaussSeidel(f.m, f.diag, b, x0, f.tol, f.maxIter)
	f.iters += int64(sweeps)
	return x, err
}

func (f *gsFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	return f.SolveVecLeftFrom(b, nil)
}

func (f *gsFactorization) SolveVecLeftFrom(b, x0 []float64) ([]float64, error) {
	if f.mT == nil {
		f.mT = f.m.Transpose()
	}
	x, sweeps, err := gaussSeidel(f.mT, f.diag, b, x0, f.tol, f.maxIter)
	f.iters += int64(sweeps)
	return x, err
}

func (f *gsFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVec)
}

// SolveMatLeft shares the lazily built transpose of SolveVecLeft across
// the batch: the first column pays it, the rest reuse it.
func (f *gsFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVecLeft)
}

func (f *gsFactorization) SolveMatFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecFrom)
}

func (f *gsFactorization) SolveMatLeftFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecLeftFrom)
}

func (f *gsFactorization) Stats() SolveStats {
	return SolveStats{Backend: "gauss-seidel", Iterations: f.iters}
}

// gaussSeidel iterates x_i ← (b_i + Σ_{j≠i} M_ij x_j) / (1 − M_ii) until
// the residual of (I−M)x = b satisfies ‖b − Ax‖∞ ≤ tol·(‖b‖∞ + ‖x‖∞).
// diag must be the diagonal of M (shared by M and Mᵀ). A nil x0 starts
// from b (the natural first iterate for A ≈ I); the sweep count is
// returned alongside the solution for work accounting.
func gaussSeidel(m *CSR, diag []float64, b, x0 []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := m.Rows()
	if len(b) != n {
		return nil, 0, fmt.Errorf("matrix: SolveVec rhs length %d does not match order %d", len(b), n)
	}
	if err := checkGuess(x0, n); err != nil {
		return nil, 0, err
	}
	var x []float64
	if x0 != nil {
		x = append([]float64(nil), x0...)
		// A warm start may already satisfy the criterion (e.g. re-solving
		// a system from its own solution); check before sweeping.
		if res, scale := iMinusResidual(m, x, b); res <= tol*scale {
			return x, 0, nil
		}
	} else {
		x = append([]float64(nil), b...)
	}
	for iter := 0; iter < maxIter; iter++ {
		var maxDiff, maxX float64
		for i := 0; i < n; i++ {
			s := b[i]
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				if j := m.colIdx[k]; j != i {
					s += m.vals[k] * x[j]
				}
			}
			nx := s / (1 - diag[i])
			if d := math.Abs(nx - x[i]); d > maxDiff {
				maxDiff = d
			}
			if a := math.Abs(nx); a > maxX {
				maxX = a
			}
			x[i] = nx
		}
		// The sweep has stagnated; confirm with the true residual (the
		// update norm underestimates the error for slowly mixing chains).
		if maxDiff <= tol*(1+maxX) {
			if res, scale := iMinusResidual(m, x, b); res <= tol*scale {
				return x, iter + 1, nil
			}
		}
	}
	if res, scale := iMinusResidual(m, x, b); res <= tol*scale {
		return x, maxIter, nil
	}
	return nil, maxIter, &ConvergenceError{Method: "gauss-seidel", Iterations: maxIter, N: n, Tol: tol}
}

// iMinusResidual returns ‖b − (I−M)x‖∞ and the convergence scale
// ‖b‖∞ + ‖x‖∞ (a backward-error-style criterion that stays achievable
// when the solution is large, as it is for long-lived chains).
func iMinusResidual(m *CSR, x, b []float64) (res, scale float64) {
	var maxB, maxX float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		if r := math.Abs(b[i] - (x[i] - s)); r > res {
			res = r
		}
		if a := math.Abs(b[i]); a > maxB {
			maxB = a
		}
		if a := math.Abs(x[i]); a > maxX {
			maxX = a
		}
	}
	return res, maxB + maxX + 1e-300
}

// ---------------------------------------------------------------------------
// BiCGSTAB backend.

// BiCGSTABSolver solves (I−M)x = b with the biconjugate gradient
// stabilized method of van der Vorst: a Krylov iteration for
// non-symmetric systems that typically converges in far fewer matrix
// passes than stationary sweeps. The iteration is preconditioned with a
// fixed number of forward Gauss–Seidel sweeps (a linear operator, since
// every sweep starts from zero) applied to the Krylov directions — the
// standard right-preconditioned formulation, whose residual is the true
// residual of the unpreconditioned system. GS sweeps are a natural
// preconditioner for these M-matrix systems and flatten the heavy
// self-loops that slow convergence as d → 1; for severely slow-mixing
// blocks, ILUSolver swaps in a stronger ILU(0) preconditioner around the
// same iteration. Left systems run on the (sparse, lazily built)
// transpose; nothing is ever densified.
type BiCGSTABSolver struct {
	// Tol is the residual tolerance; 0 selects DefaultTol.
	Tol float64
	// MaxIter bounds iterations; 0 selects DefaultBiCGSTABMaxIter.
	MaxIter int
}

// Name implements Solver.
func (BiCGSTABSolver) Name() string { return "bicgstab" }

// Factor implements Solver.
func (s BiCGSTABSolver) Factor(m *CSR) (Factorization, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	tol, maxIter := s.Tol, s.MaxIter
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultBiCGSTABMaxIter
	}
	diag := m.Diagonal()
	invDiag := make([]float64, len(diag))
	for i, d := range diag {
		if 1-d <= 0 {
			return nil, fmt.Errorf("%w: diagonal of I−M is %v at row %d", ErrSingular, 1-d, i)
		}
		invDiag[i] = 1 / (1 - d)
	}
	return &bicgstabFactorization{m: m, invDiag: invDiag, tol: tol, maxIter: maxIter}, nil
}

// bicgstabPrecondSweeps is the fixed number of forward Gauss–Seidel
// sweeps per preconditioner application. Two sweeps roughly halve the
// Krylov iteration count again relative to one at ~1 extra matvec of
// cost each.
const bicgstabPrecondSweeps = 2

type bicgstabFactorization struct {
	m       *CSR
	mT      *CSR      // lazily built transpose, for left systems
	invDiag []float64 // 1/(1−M_ii), shared by M and Mᵀ
	tol     float64
	maxIter int
	iters   int64
}

func (f *bicgstabFactorization) Order() int { return f.m.Rows() }

// gsSweepsInto writes into z the result of bicgstabPrecondSweeps forward
// Gauss–Seidel sweeps for (I−M)z = r starting from z = 0: the
// preconditioner application z = P⁻¹r. The first sweep skips the
// all-zero z reads.
func gsSweepsInto(m *CSR, invDiag, r, z []float64) {
	rowPtr, colIdx, vals := m.rowPtr, m.colIdx, m.vals
	for i := 0; i < m.rows; i++ {
		s := r[i]
		end := rowPtr[i+1]
		for k := rowPtr[i]; k < end; k++ {
			if j := colIdx[k]; j < i {
				s += vals[k] * z[j]
			}
		}
		z[i] = s * invDiag[i]
	}
	for sweep := 1; sweep < bicgstabPrecondSweeps; sweep++ {
		for i := 0; i < m.rows; i++ {
			s := r[i]
			end := rowPtr[i+1]
			for k := rowPtr[i]; k < end; k++ {
				if j := colIdx[k]; j != i {
					s += vals[k] * z[j]
				}
			}
			z[i] = s * invDiag[i]
		}
	}
}

// solve runs the preconditioned iteration on a, which is M for right
// systems and Mᵀ for left ones (so both orientations see a plain
// (I−a)x = b system).
func (f *bicgstabFactorization) solve(b, x0 []float64, a *CSR) ([]float64, error) {
	n := a.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("matrix: solve rhs length %d does not match order %d", len(b), n)
	}
	if err := checkGuess(x0, n); err != nil {
		return nil, err
	}
	tmp := make([]float64, n)
	matvec := func(x, dst []float64) {
		_ = a.MulVecInto(x, tmp)
		for i := range dst {
			dst[i] = x[i] - tmp[i]
		}
	}
	precond := func(r, z []float64) {
		gsSweepsInto(a, f.invDiag, r, z)
	}
	x, iters, _, err := bicgstab(matvec, precond, b, x0, f.tol, f.maxIter)
	f.iters += int64(iters)
	return x, err
}

func (f *bicgstabFactorization) SolveVec(b []float64) ([]float64, error) {
	return f.solve(b, nil, f.m)
}

func (f *bicgstabFactorization) SolveVecFrom(b, x0 []float64) ([]float64, error) {
	return f.solve(b, x0, f.m)
}

func (f *bicgstabFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	return f.SolveVecLeftFrom(b, nil)
}

func (f *bicgstabFactorization) SolveVecLeftFrom(b, x0 []float64) ([]float64, error) {
	if f.mT == nil {
		f.mT = f.m.Transpose()
	}
	return f.solve(b, x0, f.mT)
}

func (f *bicgstabFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVec)
}

// SolveMatLeft shares the lazily built transpose of SolveVecLeft across
// the batch: the first column pays it, the rest reuse it.
func (f *bicgstabFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVecLeft)
}

func (f *bicgstabFactorization) SolveMatFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecFrom)
}

func (f *bicgstabFactorization) SolveMatLeftFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecLeftFrom)
}

func (f *bicgstabFactorization) Stats() SolveStats {
	return SolveStats{Backend: "bicgstab", Iterations: f.iters}
}

// bicgstab runs the preconditioned BiCGSTAB iteration of van der Vorst
// for matvec(x) = b with preconditioner applications z ≈ A⁻¹r supplied
// by precond, warm-started from x0 (nil starts from b). The stopping
// rule is the true residual ‖b − Ax‖∞ ≤ tol·(‖b‖∞ + ‖x‖∞).
// Near-breakdowns (vanishing ρ or ω) restart the iteration from the
// current iterate; the iteration and breakdown counts are returned for
// work accounting and fallback diagnostics.
func bicgstab(matvec func(x, dst []float64), precond func(r, z []float64), b, x0 []float64, tol float64, maxIter int) ([]float64, int, int, error) {
	n := len(b)
	var x []float64
	if x0 != nil {
		x = append([]float64(nil), x0...)
	} else {
		x = append([]float64(nil), b...)
	}
	r := make([]float64, n)
	rhat := make([]float64, n)
	v := make([]float64, n)
	p := make([]float64, n)
	phat := make([]float64, n)
	s := make([]float64, n)
	shat := make([]float64, n)
	t := make([]float64, n)

	breakdowns := 0
	restart := func() float64 {
		matvec(x, r)
		var norm float64
		for i := range r {
			r[i] = b[i] - r[i]
			norm += r[i] * r[i]
		}
		copy(rhat, r)
		copy(p, r)
		for i := range v {
			v[i] = 0
		}
		return norm
	}
	rho := restart()
	if converged(matvec, x, b, t, tol) {
		return x, 0, 0, nil
	}
	var maxB float64
	for i := range b {
		if a := math.Abs(b[i]); a > maxB {
			maxB = a
		}
	}
	const breakdown = 1e-280
	iters := 0
	for ; iters < maxIter; iters++ {
		precond(p, phat)
		matvec(phat, v)
		var rhatV float64
		for i := range v {
			rhatV += rhat[i] * v[i]
		}
		if math.Abs(rhatV) < breakdown {
			breakdowns++
			rho = restart()
			continue
		}
		alpha := rho / rhatV
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		precond(s, shat)
		matvec(shat, t)
		var tt, ts float64
		for i := range t {
			tt += t[i] * t[i]
			ts += t[i] * s[i]
		}
		var omega float64
		if tt > breakdown {
			omega = ts / tt
		}
		var maxX float64
		for i := range x {
			x[i] += alpha*phat[i] + omega*shat[i]
			if a := math.Abs(x[i]); a > maxX {
				maxX = a
			}
		}
		if omega == 0 || math.Abs(omega) < breakdown {
			if converged(matvec, x, b, t, tol) {
				return x, iters + 1, breakdowns, nil
			}
			breakdowns++
			rho = restart()
			continue
		}
		var rhoNext, rNorm float64
		for i := range r {
			r[i] = s[i] - omega*t[i]
			rhoNext += rhat[i] * r[i]
			rNorm += r[i] * r[i]
		}
		// Cheap scale-aware 2-norm gate (‖r‖∞ ≤ ‖r‖₂) before paying one
		// extra matvec for the true-residual ∞-norm check; the %16
		// backstop catches recursive-residual drift.
		if target := tol * (maxB + maxX); rNorm <= target*target || iters%16 == 15 {
			if converged(matvec, x, b, t, tol) {
				return x, iters + 1, breakdowns, nil
			}
		}
		if math.Abs(rhoNext) < breakdown {
			breakdowns++
			rho = restart()
			continue
		}
		beta := (rhoNext / rho) * (alpha / omega)
		rho = rhoNext
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
	}
	if converged(matvec, x, b, t, tol) {
		return x, iters, breakdowns, nil
	}
	return nil, iters, breakdowns, &ConvergenceError{Method: "bicgstab", Iterations: iters, Breakdowns: breakdowns, N: n, Tol: tol}
}

// converged checks the true residual ‖b − op(x)‖∞ ≤ tol·(‖b‖∞ + ‖x‖∞),
// using scratch as workspace.
func converged(op func(x, dst []float64), x, b, scratch []float64, tol float64) bool {
	op(x, scratch)
	var res, maxB, maxX float64
	for i := range scratch {
		if r := math.Abs(b[i] - scratch[i]); r > res {
			res = r
		}
		if a := math.Abs(b[i]); a > maxB {
			maxB = a
		}
		if a := math.Abs(x[i]); a > maxX {
			maxX = a
		}
	}
	return res <= tol*(maxB+maxX+1e-300)
}

// ---------------------------------------------------------------------------
// Auto backend: sparse first, dense fallback.

// Mixing-heuristic controls for AutoSolver's preconditioner choice.
const (
	// MixingProbeSteps is the number of power-iteration matvecs the
	// heuristic spends estimating a block's spectral radius.
	MixingProbeSteps = 16
	// DefaultSlowMixThreshold is the estimated spectral radius above
	// which a block counts as slow-mixing and gets the ILU(0)
	// preconditioner instead of Gauss–Seidel sweeps.
	DefaultSlowMixThreshold = 0.995
)

// MixingEstimate estimates the spectral radius of the substochastic
// block M with `steps` power-iteration matvecs on the all-ones vector:
// (Mᵏ1)_i is the probability of surviving k steps from state i, so the
// k-th root of its maximum estimates the slowest decay rate — the
// quantity that governs how hard (I−M)x = b is for weakly
// preconditioned Krylov iterations. Cost: steps sparse matvecs.
func MixingEstimate(m *CSR, steps int) float64 {
	n := m.Rows()
	if n == 0 || n != m.Cols() || steps <= 0 {
		return 0
	}
	v := Ones(n)
	w := make([]float64, n)
	for s := 0; s < steps; s++ {
		_ = m.MulVecInto(v, w)
		v, w = w, v
	}
	var max float64
	for _, a := range v {
		if a > max {
			max = a
		}
	}
	return math.Pow(max, 1/float64(steps))
}

// AutoSolver iterates sparsely and falls back to the dense LU path only
// when the iteration fails to converge — robustness of the dense path at
// sparse cost on the common path. With no explicit Sparse backend it
// probes each block's mixing speed (MixingEstimate) and picks the
// preconditioner accordingly: Gauss–Seidel-preconditioned BiCGSTAB for
// fast-mixing blocks, ILU(0)-preconditioned for slow-mixing ones.
type AutoSolver struct {
	// Sparse is the iterative backend; nil selects the mixing heuristic
	// between BiCGSTABSolver and ILUSolver per block.
	Sparse Solver
	// Tol and MaxIter parameterize the heuristically chosen backend;
	// ignored when Sparse is set explicitly.
	Tol     float64
	MaxIter int
	// SlowMixThreshold overrides DefaultSlowMixThreshold; 0 selects the
	// default.
	SlowMixThreshold float64
}

// Name implements Solver.
func (AutoSolver) Name() string { return "auto" }

// Factor implements Solver.
func (s AutoSolver) Factor(m *CSR) (Factorization, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	sparse := s.Sparse
	if sparse == nil {
		threshold := s.SlowMixThreshold
		if threshold <= 0 {
			threshold = DefaultSlowMixThreshold
		}
		if MixingEstimate(m, MixingProbeSteps) >= threshold {
			sparse = ILUSolver{Tol: s.Tol, MaxIter: s.MaxIter}
		} else {
			sparse = BiCGSTABSolver{Tol: s.Tol, MaxIter: s.MaxIter}
		}
	}
	f, err := sparse.Factor(m)
	if err != nil {
		return nil, err
	}
	return &autoFactorization{m: m, sparse: f}, nil
}

type autoFactorization struct {
	m      *CSR
	sparse Factorization
	dense  Factorization // built on first fallback
	// fellBack remembers a non-convergence: once one solve on this block
	// has failed to converge, later solves skip the doomed full-budget
	// iteration and go straight to the dense factors. reason records why
	// the block fell back; fallbacks counts the solves the dense path
	// answered.
	fellBack  bool
	reason    FallbackReason
	fallbacks int64
}

func (f *autoFactorization) Order() int { return f.sparse.Order() }

func (f *autoFactorization) fallback() (Factorization, error) {
	f.fellBack = true
	if f.dense == nil {
		d, err := DenseSolver{}.Factor(f.m)
		if err != nil {
			return nil, err
		}
		f.dense = d
	}
	return f.dense, nil
}

func (f *autoFactorization) solve(b, x0 []float64, left bool) ([]float64, error) {
	if !f.fellBack {
		var x []float64
		var err error
		if left {
			x, err = f.sparse.SolveVecLeftFrom(b, x0)
		} else {
			x, err = f.sparse.SolveVecFrom(b, x0)
		}
		if !errors.Is(err, ErrNoConvergence) {
			return x, err
		}
		f.reason = classifyFallback(err)
	}
	d, err := f.fallback()
	if err != nil {
		return nil, err
	}
	f.fallbacks++
	if left {
		return d.SolveVecLeft(b)
	}
	return d.SolveVec(b)
}

func (f *autoFactorization) SolveVec(b []float64) ([]float64, error) {
	return f.solve(b, nil, false)
}

func (f *autoFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	return f.solve(b, nil, true)
}

func (f *autoFactorization) SolveVecFrom(b, x0 []float64) ([]float64, error) {
	return f.solve(b, x0, false)
}

func (f *autoFactorization) SolveVecLeftFrom(b, x0 []float64) ([]float64, error) {
	return f.solve(b, x0, true)
}

// SolveMat batches through the per-vector path so the sparse→dense
// fallback stays a per-system decision, exactly as in a vector loop.
func (f *autoFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVec)
}

func (f *autoFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVecLeft)
}

func (f *autoFactorization) SolveMatFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecFrom)
}

func (f *autoFactorization) SolveMatLeftFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecLeftFrom)
}

func (f *autoFactorization) Stats() SolveStats {
	st := f.sparse.Stats()
	st.Fallbacks = f.fallbacks
	st.FallbackReason = f.reason
	return st
}

// ---------------------------------------------------------------------------
// Configuration.

// SolverConfig selects and parameterizes a Solver from flag-friendly
// values. The zero value selects the exact dense LU backend.
type SolverConfig struct {
	// Kind names the backend: "dense" (or ""), "sparse"/"bicgstab",
	// "gs"/"gauss-seidel", "ilu", or "auto".
	Kind string
	// Tol is the iterative residual tolerance; 0 selects DefaultTol.
	// Ignored by the dense backend.
	Tol float64
	// MaxIter bounds iterative work; 0 selects the backend default.
	// Ignored by the dense backend.
	MaxIter int
}

// SolverKinds lists the accepted SolverConfig.Kind values.
func SolverKinds() []string {
	return []string{"dense", "sparse", "bicgstab", "gs", "gauss-seidel", "ilu", "auto"}
}

// Build resolves the configuration into a Solver.
func (c SolverConfig) Build() (Solver, error) {
	switch c.Kind {
	case "", "dense":
		return DenseSolver{}, nil
	case "sparse", "bicgstab":
		return BiCGSTABSolver{Tol: c.Tol, MaxIter: c.MaxIter}, nil
	case "gs", "gauss-seidel":
		return GaussSeidelSolver{Tol: c.Tol, MaxIter: c.MaxIter}, nil
	case "ilu":
		return ILUSolver{Tol: c.Tol, MaxIter: c.MaxIter}, nil
	case "auto":
		return AutoSolver{Tol: c.Tol, MaxIter: c.MaxIter}, nil
	default:
		return nil, fmt.Errorf("matrix: unknown solver kind %q (want one of %s)",
			c.Kind, strings.Join(SolverKinds(), ", "))
	}
}
