package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// solverBackends enumerates every backend under test.
func solverBackends(t *testing.T) []Solver {
	t.Helper()
	return []Solver{
		DenseSolver{},
		GaussSeidelSolver{},
		BiCGSTABSolver{},
		ILUSolver{},
		AutoSolver{},
	}
}

// randomSubstochastic builds an n x n CSR with row sums ≤ 1−leak, the
// shape every absorbing-chain block has.
func randomSubstochastic(t *testing.T, r *rand.Rand, n int, leak float64) *CSR {
	t.Helper()
	b := NewSparseBuilder(n, n)
	for i := 0; i < n; i++ {
		weights := make([]float64, n)
		var sum float64
		for j := range weights {
			if r.Float64() < 0.5 { // keep it sparse
				weights[j] = r.Float64()
				sum += weights[j]
			}
		}
		if sum == 0 {
			continue
		}
		for j, w := range weights {
			if w > 0 {
				if err := b.Add(i, j, (1-leak)*w/sum); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}

func TestSolversAgreeOnRandomSystems(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(40)
		m := randomSubstochastic(t, r, n, 0.05+0.2*r.Float64())
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		var refRight, refLeft []float64
		for _, s := range solverBackends(t) {
			f, err := s.Factor(m)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if f.Order() != n {
				t.Fatalf("%s: Order = %d, want %d", s.Name(), f.Order(), n)
			}
			x, err := f.SolveVec(b)
			if err != nil {
				t.Fatalf("%s right solve: %v", s.Name(), err)
			}
			y, err := f.SolveVecLeft(b)
			if err != nil {
				t.Fatalf("%s left solve: %v", s.Name(), err)
			}
			if refRight == nil {
				refRight, refLeft = x, y
				continue
			}
			for i := range x {
				if math.Abs(x[i]-refRight[i]) > 1e-8*(1+math.Abs(refRight[i])) {
					t.Errorf("%s right solve differs from dense at %d: %v vs %v", s.Name(), i, x[i], refRight[i])
					break
				}
			}
			for i := range y {
				if math.Abs(y[i]-refLeft[i]) > 1e-8*(1+math.Abs(refLeft[i])) {
					t.Errorf("%s left solve differs from dense at %d: %v vs %v", s.Name(), i, y[i], refLeft[i])
					break
				}
			}
		}
	}
}

func TestIterativeResidualControl(t *testing.T) {
	// A slowly mixing chain: symmetric random walk on a path, leak only at
	// the ends. The solution ‖x‖ is large, so the update norm alone would
	// accept early; the residual check must hold the iteration.
	const n = 60
	b := NewSparseBuilder(n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			_ = b.Add(i, i-1, 0.5)
		}
		if i < n-1 {
			_ = b.Add(i, i+1, 0.5)
		}
	}
	m := b.Build()
	ones := Ones(n)
	want, err := must(DenseSolver{}.Factor(m)).SolveVec(ones)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Solver{GaussSeidelSolver{}, BiCGSTABSolver{}} {
		x, err := must(s.Factor(m)).SolveVec(ones)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// want[i] = E(absorption steps from i) peaks at (n/2)² ≈ 900.
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Errorf("%s: x[%d] = %v, want %v", s.Name(), i, x[i], want[i])
				break
			}
		}
	}
}

func must(f Factorization, err error) Factorization {
	if err != nil {
		panic(err)
	}
	return f
}

func TestIterativeNoConvergenceError(t *testing.T) {
	// One sweep / iteration cannot solve a 40-state slow chain to 1e-12.
	const n = 40
	b := NewSparseBuilder(n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			_ = b.Add(i, i-1, 0.5)
		}
		if i < n-1 {
			_ = b.Add(i, i+1, 0.5)
		}
	}
	m := b.Build()
	for _, s := range []Solver{GaussSeidelSolver{MaxIter: 1}, BiCGSTABSolver{MaxIter: 1}} {
		if _, err := must(s.Factor(m)).SolveVec(Ones(n)); !errors.Is(err, ErrNoConvergence) {
			t.Errorf("%s with MaxIter=1: err = %v, want ErrNoConvergence", s.Name(), err)
		}
	}
	// Auto must absorb the failure via the dense fallback.
	auto := AutoSolver{Sparse: BiCGSTABSolver{MaxIter: 1}}
	x, err := must(auto.Factor(m)).SolveVec(Ones(n))
	if err != nil {
		t.Fatalf("auto fallback: %v", err)
	}
	want, _ := must(DenseSolver{}.Factor(m)).SolveVec(Ones(n))
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Errorf("auto fallback x[%d] = %v, want %v", i, x[i], want[i])
			break
		}
	}
}

func TestFactorRejectsNonSquare(t *testing.T) {
	m := NewSparseBuilder(2, 3).Build()
	for _, s := range solverBackends(t) {
		if _, err := s.Factor(m); err == nil {
			t.Errorf("%s: non-square accepted", s.Name())
		}
	}
}

func TestGaussSeidelRejectsUnitDiagonal(t *testing.T) {
	b := NewSparseBuilder(2, 2)
	_ = b.Add(0, 0, 1) // absorbing row makes I−M singular
	_ = b.Add(1, 0, 0.5)
	if _, err := (GaussSeidelSolver{}).Factor(b.Build()); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolverConfigBuild(t *testing.T) {
	for _, tt := range []struct {
		kind string
		name string
	}{
		{"", "dense"},
		{"dense", "dense"},
		{"sparse", "bicgstab"},
		{"bicgstab", "bicgstab"},
		{"gs", "gauss-seidel"},
		{"gauss-seidel", "gauss-seidel"},
		{"ilu", "ilu"},
		{"auto", "auto"},
	} {
		s, err := SolverConfig{Kind: tt.kind}.Build()
		if err != nil {
			t.Fatalf("%q: %v", tt.kind, err)
		}
		if s.Name() != tt.name {
			t.Errorf("Kind %q built %q, want %q", tt.kind, s.Name(), tt.name)
		}
	}
	if _, err := (SolverConfig{Kind: "qr"}).Build(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSolveEmptySystem(t *testing.T) {
	m := NewSparseBuilder(0, 0).Build()
	for _, s := range solverBackends(t) {
		f, err := s.Factor(m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if x, err := f.SolveVec(nil); err != nil || len(x) != 0 {
			t.Errorf("%s: empty solve = %v, %v", s.Name(), x, err)
		}
	}
}

func TestSolversRejectWrongRhsLength(t *testing.T) {
	b := NewSparseBuilder(3, 3)
	_ = b.Add(0, 1, 0.5)
	_ = b.Add(1, 2, 0.5)
	m := b.Build()
	for _, s := range solverBackends(t) {
		f, err := s.Factor(m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, rhs := range [][]float64{make([]float64, 2), make([]float64, 4)} {
			if _, err := f.SolveVec(rhs); err == nil {
				t.Errorf("%s: SolveVec accepted rhs of length %d", s.Name(), len(rhs))
			}
			if _, err := f.SolveVecLeft(rhs); err == nil {
				t.Errorf("%s: SolveVecLeft accepted rhs of length %d", s.Name(), len(rhs))
			}
		}
	}
}

// TestAutoFallbackIsSticky pins the auto backend's cost model: after one
// non-convergence on a block, later solves must skip the doomed sparse
// iteration and use the cached dense factors directly.
func TestAutoFallbackIsSticky(t *testing.T) {
	const n = 40
	b := NewSparseBuilder(n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			_ = b.Add(i, i-1, 0.5)
		}
		if i < n-1 {
			_ = b.Add(i, i+1, 0.5)
		}
	}
	auto := AutoSolver{Sparse: countingSolver{inner: BiCGSTABSolver{MaxIter: 1}}}
	f, err := auto.Factor(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	cf := f.(*autoFactorization).sparse.(*countingFactorization)
	if _, err := f.SolveVec(Ones(n)); err != nil {
		t.Fatal(err)
	}
	if cf.calls != 1 {
		t.Fatalf("first solve made %d sparse attempts, want 1", cf.calls)
	}
	if _, err := f.SolveVecLeft(Ones(n)); err != nil {
		t.Fatal(err)
	}
	if cf.calls != 1 {
		t.Errorf("sparse attempted again after fallback (%d calls); fallback must be sticky", cf.calls)
	}
}

// countingSolver wraps a Solver and counts solve attempts.
type countingSolver struct{ inner Solver }

func (s countingSolver) Name() string { return s.inner.Name() }

func (s countingSolver) Factor(m *CSR) (Factorization, error) {
	f, err := s.inner.Factor(m)
	if err != nil {
		return nil, err
	}
	return &countingFactorization{inner: f}, nil
}

type countingFactorization struct {
	inner Factorization
	calls int
}

func (f *countingFactorization) Order() int { return f.inner.Order() }

func (f *countingFactorization) SolveVec(b []float64) ([]float64, error) {
	f.calls++
	return f.inner.SolveVec(b)
}

func (f *countingFactorization) SolveVecLeft(b []float64) ([]float64, error) {
	f.calls++
	return f.inner.SolveVecLeft(b)
}

func (f *countingFactorization) SolveVecFrom(b, x0 []float64) ([]float64, error) {
	f.calls++
	return f.inner.SolveVecFrom(b, x0)
}

func (f *countingFactorization) SolveVecLeftFrom(b, x0 []float64) ([]float64, error) {
	f.calls++
	return f.inner.SolveVecLeftFrom(b, x0)
}

func (f *countingFactorization) SolveMat(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVec)
}

func (f *countingFactorization) SolveMatLeft(bs [][]float64) ([][]float64, error) {
	return solveBatch(bs, f.SolveVecLeft)
}

func (f *countingFactorization) SolveMatFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecFrom)
}

func (f *countingFactorization) SolveMatLeftFrom(bs, x0s [][]float64) ([][]float64, error) {
	return solveBatchFrom(bs, x0s, f.SolveVecLeftFrom)
}

func (f *countingFactorization) Stats() SolveStats { return f.inner.Stats() }
