package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorLUKnownSolve(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	x, err := SolveVec(a, []float64{5, -2, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestFactorLUSingular(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
}

func TestFactorLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewDense(2, 3)); err == nil {
		t.Error("non-square: want error")
	}
}

func TestDet(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{3, 8}, {4, 6}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-14)) > 1e-12 {
		t.Errorf("det = %v, want -14", got)
	}
}

func TestInverse(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equalish(Identity(2), 1e-12) {
		t.Errorf("A*A⁻¹ = %v, want I", prod)
	}
}

func TestSolveMultiRHS(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {3, 5}})
	b, _ := NewDenseFromRows([][]float64{{1, 0}, {0, 1}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equalish(Identity(2), 1e-12) {
		t.Error("Solve with identity RHS must produce inverse")
	}
	if _, err := Solve(a, NewDense(3, 1)); err == nil {
		t.Error("rhs shape mismatch: want error")
	}
}

func TestSolveVecLeft(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	// x * A = b  with x = [1, 1]  =>  b = [4, 6].
	x, err := SolveVecLeft(a, []float64{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("x = %v, want [1 1]", x)
	}
}

func TestSolveVecLengthMismatch(t *testing.T) {
	a := Identity(3)
	if _, err := SolveVec(a, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestResidual(t *testing.T) {
	a := Identity(2)
	r, err := Residual(a, []float64{1, 2}, []float64{1, 2})
	if err != nil || r != 0 {
		t.Errorf("residual = %v err %v, want 0", r, err)
	}
	r, err = Residual(a, []float64{1, 2}, []float64{1, 3})
	if err != nil || r != 1 {
		t.Errorf("residual = %v err %v, want 1", r, err)
	}
	if _, err := Residual(a, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
}

// TestSolveRandomProperty: for random well-conditioned systems,
// A * Solve(A, b) ≈ b.
func TestSolveRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := randomMatrix(r, n)
		// Diagonal dominance keeps the condition number small.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = 2*r.Float64() - 1
		}
		x, err := SolveVec(a, b)
		if err != nil {
			return false
		}
		res, err := Residual(a, x, b)
		if err != nil {
			return false
		}
		return res < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestDetPermutationSign: factoring a permutation-like matrix exercises the
// pivoting path and sign bookkeeping.
func TestDetPermutationSign(t *testing.T) {
	p, _ := NewDenseFromRows([][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{1, 0, 0},
	})
	f, err := FactorLU(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-1) > 1e-12 {
		t.Errorf("det(cyclic permutation) = %v, want 1", got)
	}
}

func TestSolveVecTransposedMatchesExplicitTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(12)
		// No diagonal boost: generic random entries make partial pivoting
		// actually permute rows, exercising the inverse-permutation step.
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, 2*r.Float64()-1)
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		f, err := FactorLU(a)
		if err != nil {
			continue // exactly singular draw (vanishingly rare)
		}
		got, err := f.SolveVecTransposed(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveVec(a.Transpose(), b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
	if _, err := (&LU{n: 2}).SolveVecTransposed([]float64{1}); err == nil {
		t.Error("bad rhs length: want error")
	}
}
