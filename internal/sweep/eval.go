package sweep

import (
	"context"
	"fmt"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// Options tunes an evaluation. The zero value evaluates serially with
// the solver the model would pick per cell (dense LU).
type Options struct {
	// Pool fans distinct chains across workers; nil evaluates serially.
	// Results are bit-identical for any pool width.
	Pool *engine.Pool
	// BuildPool supplies the workers of the row-parallel
	// transition-matrix construction inside each cell; nil builds rows
	// serially. Nested engine pools split width instead of stacking.
	BuildPool *engine.Pool
	// Solver selects the linear-solver backend of every cell's analysis.
	Solver matrix.SolverConfig
	// WarmStart chains the iterative solves of neighboring cells: the
	// planner orders each geometry group's distinct chains into lanes of
	// equal (C, ∆, k, µ) — within a lane only d and the ν gain cut vary,
	// and they vary smoothly in plan order — and each lane is evaluated
	// sequentially, seeding every cell's solves from the previous cell's
	// converged vectors. Lanes (not cells) fan out across the pool, so
	// results remain independent of the worker count. Warm-started solves
	// meet the same residual tolerance as cold ones; cells agree with the
	// cold path to solver tolerance instead of bit-for-bit (the dense
	// backend ignores warm starts entirely and stays exact).
	WarmStart bool
	// OnCell, when non-nil, streams results as they are produced: it is
	// called once per cell, from evaluator goroutines in completion
	// order (not index order), as soon as the cell's equivalence class
	// finishes. It must be safe for concurrent use.
	OnCell func(CellResult)
}

// CellResult is the outcome of one grid cell.
type CellResult struct {
	// Index is the cell's position in Plan.Cells() order.
	Index int
	// Params are the cell's model parameters.
	Params core.Params
	// States and Transient size the cell's state space.
	States, Transient int
	// Rule1Fires counts the transient safe states in which the
	// adversary's voluntary-leave strategy fires at the cell's ν.
	Rule1Fires int
	// Shared reports that the cell's chain was proven identical to an
	// earlier cell's (equal geometry, µ, d and Rule 1 firing set) and
	// its Analysis taken from that evaluation instead of a re-solve.
	Shared bool
	// Iterations is the iterative-solver work this cell's chain cost
	// (Analysis.Solver.Iterations); 0 for shared cells, whose leader
	// already counted the work, and for the dense backend.
	Iterations int64
	// Analysis holds the closed-form results for the plan's initial
	// distribution.
	Analysis *core.Analysis
}

// ResultSet is the deterministic outcome of a grid evaluation: cells in
// plan order, whatever the pool width or completion order.
type ResultSet struct {
	Plan  Plan
	Cells []CellResult
	// Groups counts the distinct (C, ∆) geometries the planner built
	// shared structure for; Evaluated counts the distinct chains
	// actually constructed and solved after deduplication (the remaining
	// Size()−Evaluated cells shared one of those solves).
	Groups    int
	Evaluated int
	// Iterations is the total iterative-solver work of the evaluation
	// (the sum of the per-leader-cell counts) — the number warm starting
	// drives down.
	Iterations int64
}

// signature identifies a cell's Markov chain up to provable equality:
// geometry and protocol pin the state space and maintenance kernel, µ
// and d pin every branch weight, and the Rule 1 gain cut pins the
// firing set — the only door through which ν enters the matrix. The
// initial distribution is a function of (C, ∆, µ) and the plan's
// distribution choice, so two cells with equal signatures have equal
// chains AND equal α: their Analyses are the same numbers.
type signature struct {
	c, delta, k int
	mu, d       float64
	cut         int
}

// group is the shared structure of one (C, ∆) geometry.
type group struct {
	space *core.Space
	// gains maps protocol k to the shared relation (2) table.
	gains map[int]*core.Rule1Gains
}

// Evaluate runs the plan and returns one Analysis per cell. Shared
// structure (state space, maintenance kernel, Rule 1 gains) is built
// once per (C, ∆) group; provably identical cells are solved once; the
// remaining distinct chains fan out across opts.Pool. Every cell's
// numbers are bit-identical to an independent core.Analyze of the same
// parameters with the same solver.
func Evaluate(ctx context.Context, plan Plan, opts Options) (*ResultSet, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if _, err := opts.Solver.Build(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	cells := plan.Cells()

	// Planner pass 1: shared structure per geometry.
	groups := make(map[[2]int]*group)
	for _, p := range cells {
		key := [2]int{p.C, p.Delta}
		g, ok := groups[key]
		if !ok {
			sp, err := core.NewSpace(p.C, p.Delta)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			g = &group{space: sp, gains: make(map[int]*core.Rule1Gains)}
			groups[key] = g
		}
		if _, ok := g.gains[p.K]; !ok {
			gains, err := core.ComputeRule1Gains(p)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			g.gains[p.K] = gains
		}
	}

	// Planner pass 2: deduplicate cells into equivalence classes. The
	// leader of a class is its lowest cell index; classes keep plan
	// order, so the evaluation schedule is deterministic.
	type class struct {
		leader  int
		members []int
	}
	classOf := make(map[signature]int)
	var classes []class
	for i, p := range cells {
		g := groups[[2]int{p.C, p.Delta}]
		sig := signature{c: p.C, delta: p.Delta, k: p.K, mu: p.Mu, d: p.D, cut: g.gains[p.K].CutIndex(p.Nu)}
		ci, ok := classOf[sig]
		if !ok {
			ci = len(classes)
			classOf[sig] = ci
			classes = append(classes, class{leader: i})
		}
		classes[ci].members = append(classes[ci].members, i)
	}

	// Planner pass 3: lanes. Without warm starting every class is its
	// own lane — the schedule (and arithmetic) of the classic evaluator.
	// With warm starting, consecutive classes whose leaders share
	// (C, ∆, k, µ) form one lane: the plan enumerates d (then ν)
	// innermost, so a lane walks the d axis in small steps and each
	// chain's solves can seed from the previous chain's converged
	// vectors. Lanes are a fixed partition of the classes, so fanning
	// lanes (instead of classes) across the pool keeps results
	// independent of the worker count.
	var lanes [][]int
	for ci := range classes {
		if opts.WarmStart && ci > 0 {
			prev := cells[classes[ci-1].leader]
			cur := cells[classes[ci].leader]
			if prev.C == cur.C && prev.Delta == cur.Delta && prev.K == cur.K && prev.Mu == cur.Mu {
				lanes[len(lanes)-1] = append(lanes[len(lanes)-1], ci)
				continue
			}
		}
		lanes = append(lanes, []int{ci})
	}

	// Evaluation pass: one model build + solve per class, lanes fanned
	// across the pool; results land in per-cell slots (classes own
	// disjoint cell sets), so accumulation is order-independent.
	results := make([]CellResult, len(cells))
	err := engine.Ensure(opts.Pool).Run(ctx, len(lanes), func(li int) error {
		var ws *core.WarmStart
		for _, ci := range lanes[li] {
			cl := classes[ci]
			p := cells[cl.leader]
			g := groups[[2]int{p.C, p.Delta}]
			m, err := core.NewWithSolver(p, opts.Solver,
				core.WithSpace(g.space),
				core.WithRule1Gains(g.gains[p.K]),
				core.WithBuildPool(opts.BuildPool),
			)
			if err != nil {
				return fmt.Errorf("cell %v: %w", p, err)
			}
			a, rec, err := m.AnalyzeNamedWarm(plan.Dist, plan.sojourns(), ws)
			if err != nil {
				return fmt.Errorf("cell %v: %w", p, err)
			}
			if opts.WarmStart {
				ws = rec
			}
			for _, i := range cl.members {
				pi := cells[i]
				res := CellResult{
					Index:      i,
					Params:     pi,
					States:     g.space.Size(),
					Transient:  g.space.TransientCount(),
					Rule1Fires: g.gains[pi.K].CountFires(pi.Nu),
					Shared:     i != cl.leader,
					Analysis:   a,
				}
				if res.Shared {
					res.Analysis = cloneAnalysis(a)
				} else {
					res.Iterations = a.Solver.Iterations
				}
				results[i] = res
				if opts.OnCell != nil {
					opts.OnCell(res)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	rs := &ResultSet{
		Plan:      plan,
		Cells:     results,
		Groups:    len(groups),
		Evaluated: len(classes),
	}
	for i := range results {
		rs.Iterations += results[i].Iterations
	}
	return rs, nil
}

// cloneAnalysis gives a sharing cell its own copy, so callers may mutate
// per-cell results independently.
func cloneAnalysis(a *core.Analysis) *core.Analysis {
	b := *a
	b.SafeSojourns = append([]float64(nil), a.SafeSojourns...)
	b.PollutedSojourns = append([]float64(nil), a.PollutedSojourns...)
	b.Absorption = make(map[string]float64, len(a.Absorption))
	for k, v := range a.Absorption {
		b.Absorption[k] = v
	}
	return &b
}
