package sweep

import (
	"context"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// Options tunes an evaluation. The zero value evaluates serially with
// the solver the model would pick per cell (dense LU).
type Options struct {
	// Pool fans distinct chains across workers; nil evaluates serially.
	// Results are bit-identical for any pool width.
	Pool *engine.Pool
	// BuildPool supplies the workers of the row-parallel
	// transition-matrix construction inside each cell; nil builds rows
	// serially. Nested engine pools split width instead of stacking.
	BuildPool *engine.Pool
	// Solver selects the linear-solver backend of every cell's analysis.
	Solver matrix.SolverConfig
	// WarmStart chains the iterative solves of neighboring cells: the
	// planner orders each geometry group's distinct chains into lanes of
	// equal (C, ∆, k, µ) — within a lane only d and the ν gain cut vary,
	// and they vary smoothly in plan order — and each lane is evaluated
	// sequentially, seeding every cell's solves from the previous cell's
	// converged vectors. Lanes (not cells) fan out across the pool, so
	// results remain independent of the worker count. Warm-started solves
	// meet the same residual tolerance as cold ones; cells agree with the
	// cold path to solver tolerance instead of bit-for-bit (the dense
	// backend ignores warm starts entirely and stays exact).
	WarmStart bool
	// OnCell, when non-nil, streams results as they are produced: it is
	// called once per cell, from evaluator goroutines in completion
	// order (not index order), as soon as the cell's equivalence class
	// finishes. It must be safe for concurrent use.
	OnCell func(CellResult)
}

// CellResult is the outcome of one grid cell.
type CellResult struct {
	// Index is the cell's position in Plan.Cells() order.
	Index int
	// Params are the cell's model parameters.
	Params core.Params
	// States and Transient size the cell's state space.
	States, Transient int
	// Rule1Fires counts the transient safe states in which the
	// adversary's voluntary-leave strategy fires at the cell's ν.
	Rule1Fires int
	// Shared reports that the cell's chain was proven identical to an
	// earlier cell's (equal geometry, µ, d and Rule 1 firing set) and
	// its Analysis taken from that evaluation instead of a re-solve.
	Shared bool
	// Iterations is the iterative-solver work this cell's chain cost
	// (Analysis.Solver.Iterations); 0 for shared cells, whose leader
	// already counted the work, and for the dense backend.
	Iterations int64
	// Analysis holds the closed-form results for the plan's initial
	// distribution.
	Analysis *core.Analysis
}

// ResultSet is the deterministic outcome of a grid evaluation: cells in
// plan order, whatever the pool width or completion order.
type ResultSet struct {
	Plan  Plan
	Cells []CellResult
	// Groups counts the distinct (C, ∆) geometries the planner built
	// shared structure for; Evaluated counts the distinct chains
	// actually constructed and solved after deduplication (the remaining
	// Size()−Evaluated cells shared one of those solves).
	Groups    int
	Evaluated int
	// Iterations is the total iterative-solver work of the evaluation
	// (the sum of the per-leader-cell counts) — the number warm starting
	// drives down.
	Iterations int64
}

// Evaluate runs the plan and returns one Analysis per cell. It is the
// paper model's view of the model-agnostic EvaluateModel: the family's
// declared structure reproduces exactly the classic planner — shared
// state space, maintenance kernel and Rule 1 gains per (C, ∆) group,
// provably identical cells (equal geometry, µ, d and ν gain cut) solved
// once, warm-start lanes along (d, ν) at fixed (C, ∆, k, µ) — so every
// cell's numbers are bit-identical to an independent core.Analyze of
// the same parameters with the same solver.
func Evaluate(ctx context.Context, plan Plan, opts Options) (*ResultSet, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	cells := plan.Cells()
	mcells := make([]chainmodel.Cell, len(cells))
	for i, p := range cells {
		mcells[i] = p
	}
	var onCell func(ModelCellResult)
	if opts.OnCell != nil {
		onCell = func(mc ModelCellResult) { opts.OnCell(paperCellResult(mc)) }
	}
	mrs, err := EvaluateModel(ctx, ModelPlan{
		Family:   core.Family{},
		Cells:    mcells,
		Dist:     plan.Dist.Name(),
		Sojourns: plan.sojourns(),
	}, ModelOptions{
		Pool:      opts.Pool,
		BuildPool: opts.BuildPool,
		Solver:    opts.Solver,
		WarmStart: opts.WarmStart,
		OnCell:    onCell,
	})
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{
		Plan:       plan,
		Cells:      make([]CellResult, len(mrs.Cells)),
		Groups:     mrs.Groups,
		Evaluated:  mrs.Evaluated,
		Iterations: mrs.Iterations,
	}
	for i, mc := range mrs.Cells {
		rs.Cells[i] = paperCellResult(mc)
	}
	return rs, nil
}

// paperCellResult renames a generic cell result into the paper model's
// vocabulary and derives Rule1Fires from the group's shared gain table.
func paperCellResult(mc ModelCellResult) CellResult {
	p := mc.Cell.(core.Params)
	tables := mc.SharedTables.(*core.SweepTables)
	return CellResult{
		Index:      mc.Index,
		Params:     p,
		States:     mc.States,
		Transient:  mc.Transient,
		Rule1Fires: tables.Gains(p.K).CountFires(p.Nu),
		Shared:     mc.Shared,
		Iterations: mc.Iterations,
		Analysis: &core.Analysis{
			ExpectedSafeTime:     mc.Analysis.TimeInA,
			ExpectedPollutedTime: mc.Analysis.TimeInB,
			SafeSojourns:         mc.Analysis.SojournsA,
			PollutedSojourns:     mc.Analysis.SojournsB,
			Absorption:           mc.Analysis.Absorption,
			PollutionProbability: mc.Analysis.HitProbability,
			Solver:               mc.Analysis.Solver,
		},
	}
}
