package sweep

import (
	"context"
	"testing"

	"targetedattacks/internal/aptchain"
	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// aptPlan is a small APT grid in the family's canonical order: n
// outermost, the stealth lane axis ρ innermost.
func aptPlan(t *testing.T) ModelPlan {
	t.Helper()
	cells, err := aptchain.Family{}.ParsePlan([]byte(
		`{"n":"5,6","theta":"0.4,0.7","phi":"0.5","detect":"0.6","rho":"0:0.4:0.1"}`))
	if err != nil {
		t.Fatal(err)
	}
	return ModelPlan{Family: aptchain.Family{}, Cells: cells, Sojourns: 2}
}

func modelAnalysesEqual(a, b *chainmodel.Analysis) bool {
	if a.TimeInA != b.TimeInA || a.TimeInB != b.TimeInB || a.HitProbability != b.HitProbability {
		return false
	}
	for i := range a.SojournsA {
		if a.SojournsA[i] != b.SojournsA[i] || a.SojournsB[i] != b.SojournsB[i] {
			return false
		}
	}
	for k, v := range a.Absorption {
		if b.Absorption[k] != v {
			return false
		}
	}
	return true
}

// TestEvaluateModelAPTBitIdenticalAcrossPools: the second family's
// sweeps must be bit-identical at worker widths 1 and 8, warm starting
// included — lanes, not cells, fan across the pool.
func TestEvaluateModelAPTBitIdenticalAcrossPools(t *testing.T) {
	plan := aptPlan(t)
	sc := matrix.SolverConfig{Kind: "bicgstab"}
	serial, err := EvaluateModel(context.Background(), plan, ModelOptions{
		Solver: sc, WarmStart: true, Pool: engine.New(1), BuildPool: engine.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := EvaluateModel(context.Background(), plan, ModelOptions{
		Solver: sc, WarmStart: true, Pool: engine.New(8), BuildPool: engine.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Cells) != len(plan.Cells) || len(wide.Cells) != len(plan.Cells) {
		t.Fatalf("cell counts %d/%d, want %d", len(serial.Cells), len(wide.Cells), len(plan.Cells))
	}
	if serial.Iterations != wide.Iterations {
		t.Errorf("total iterations differ across pool widths: %d vs %d", serial.Iterations, wide.Iterations)
	}
	for i := range serial.Cells {
		if !modelAnalysesEqual(serial.Cells[i].Analysis, wide.Cells[i].Analysis) {
			t.Fatalf("cell %d differs between pool widths", i)
		}
		if serial.Cells[i].Iterations != wide.Cells[i].Iterations {
			t.Errorf("cell %d iterations differ: %d vs %d", i, serial.Cells[i].Iterations, wide.Cells[i].Iterations)
		}
	}
	// Two node counts → two shared-structure groups; every parameter
	// enters the APT matrix, so nothing dedups in this grid.
	if serial.Groups != 2 {
		t.Errorf("groups = %d, want 2", serial.Groups)
	}
	if serial.Evaluated != len(plan.Cells) {
		t.Errorf("evaluated = %d, want %d (no duplicate cells)", serial.Evaluated, len(plan.Cells))
	}
}

// TestEvaluateModelAPTWarmLanes: warm starting along the stealth lanes
// must cut iterative-solver work without changing convergence.
func TestEvaluateModelAPTWarmLanes(t *testing.T) {
	plan := aptPlan(t)
	sc := matrix.SolverConfig{Kind: "bicgstab"}
	cold, err := EvaluateModel(context.Background(), plan, ModelOptions{Solver: sc})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := EvaluateModel(context.Background(), plan, ModelOptions{Solver: sc, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Iterations == 0 {
		t.Fatal("cold sweep reports no iterations on an iterative backend")
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start saved nothing: %d warm vs %d cold iterations", warm.Iterations, cold.Iterations)
	}
	t.Logf("bicgstab: %d cold, %d warm iterations (%.0f%%)",
		cold.Iterations, warm.Iterations, 100*float64(warm.Iterations)/float64(cold.Iterations))
}

// TestEvaluateModelDedupsDuplicates: exact duplicate cells collapse to
// one solve; the copies are flagged Shared with cloned analyses.
func TestEvaluateModelDedupsDuplicates(t *testing.T) {
	base := aptchain.Params{N: 5, Theta: 0.5, Phi: 0.4, Rho: 0.2, Detect: 0.6}
	other := base
	other.Rho = 0.3
	plan := ModelPlan{
		Family: aptchain.Family{},
		Cells:  []chainmodel.Cell{base, other, base},
	}
	rs, err := EvaluateModel(context.Background(), plan, ModelOptions{Solver: matrix.SolverConfig{Kind: "dense"}})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Evaluated != 2 || rs.Groups != 1 {
		t.Fatalf("evaluated=%d groups=%d, want 2/1", rs.Evaluated, rs.Groups)
	}
	if rs.Cells[0].Shared || rs.Cells[1].Shared || !rs.Cells[2].Shared {
		t.Fatalf("shared flags = %v %v %v, want false false true",
			rs.Cells[0].Shared, rs.Cells[1].Shared, rs.Cells[2].Shared)
	}
	if !modelAnalysesEqual(rs.Cells[0].Analysis, rs.Cells[2].Analysis) {
		t.Error("shared cell's analysis differs from its leader")
	}
	// The clone is independent storage.
	if &rs.Cells[0].Analysis.SojournsA[0] == &rs.Cells[2].Analysis.SojournsA[0] {
		t.Error("shared cell aliases its leader's sojourn storage")
	}
}

// TestEvaluateModelRejectsBadPlans: the generic evaluator's own
// validation, independent of any family.
func TestEvaluateModelRejectsBadPlans(t *testing.T) {
	ctx := context.Background()
	if _, err := EvaluateModel(ctx, ModelPlan{}, ModelOptions{}); err == nil {
		t.Error("nil family accepted")
	}
	if _, err := EvaluateModel(ctx, ModelPlan{Family: aptchain.Family{}}, ModelOptions{}); err == nil {
		t.Error("empty grid accepted")
	}
	cells := []chainmodel.Cell{aptchain.Params{N: 5, Theta: 0.5, Phi: 0.4, Detect: 0.6}}
	if _, err := EvaluateModel(ctx, ModelPlan{Family: aptchain.Family{}, Cells: cells, Dist: "zeta"},
		ModelOptions{}); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := EvaluateModel(ctx, ModelPlan{Family: aptchain.Family{}, Cells: cells},
		ModelOptions{Solver: matrix.SolverConfig{Kind: "cholesky"}}); err == nil {
		t.Error("unknown solver accepted")
	}
}
