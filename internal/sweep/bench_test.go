package sweep

import (
	"context"
	"testing"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// hugeGrid is the acceptance grid: a ν×d surface of 64 cells at C=∆=40
// (|Ω| = 35301, 33579 transient per cell).
func hugeGrid() Plan {
	return Plan{
		C: []int{40}, Delta: []int{40}, K: []int{1},
		Mu: []float64{0.2},
		D:  []float64{0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85},
		Nu: []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.60},
	}
}

// BenchmarkSweepGrid measures the amortized evaluator against the same
// 64 cells run as independent core.Analyze calls. The evaluator shares
// one state space, kernel and Rule 1 gain table across the grid and
// proves the ν axis redundant per (µ, d) (protocol_1 never fires
// Rule 1), so it solves 8 distinct chains instead of 64; "evaluate"
// additionally verifies every cell against the per-cell result at
// 1e-12 on its first iteration.
func BenchmarkSweepGrid(b *testing.B) {
	sc := matrix.SolverConfig{Kind: "bicgstab"}
	plan := hugeGrid()
	b.Run("evaluate", func(b *testing.B) {
		var iters int64
		for i := 0; i < b.N; i++ {
			rs, err := Evaluate(context.Background(), plan, Options{Solver: sc, Pool: engine.New(0)})
			if err != nil {
				b.Fatal(err)
			}
			iters += rs.Iterations
			if i == 0 {
				verifyAgainstPerCell(b, rs, sc)
			}
		}
		b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
	})
	b.Run("percell", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range plan.Cells() {
				if _, err := analyzeOne(p, sc, plan.Dist, plan.sojourns()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// warmGrid is the warm-start acceptance grid: C=∆=40 with protocol_2, so
// the ν axis survives deduplication (each threshold cut changes the
// Rule 1 firing rows and nothing else) and the planner's lanes walk 28
// distinct chains in (d, ν) order. Adjacent chains differ in a handful
// of matrix rows, which is exactly the regime warm starting exploits.
func warmGrid() Plan {
	return Plan{
		C: []int{40}, Delta: []int{40}, K: []int{2},
		Mu: []float64{0.2},
		D:  []float64{0.50, 0.70},
		Nu: []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.60, 0.70, 0.80, 0.90},
	}
}

// BenchmarkWarmStartSweep measures the warm-started evaluator against
// the cold schedule on the same grid. The iters/op metric is the
// machine-independent acceptance number: warm must cut total
// iterative-solver iterations by ≥ 2× (asserted in
// TestWarmStartHalvesIterationsHuge; CI compares the metric with
// benchstat against the committed baseline).
func BenchmarkWarmStartSweep(b *testing.B) {
	sc := matrix.SolverConfig{Kind: "bicgstab"}
	plan := warmGrid()
	for _, mode := range []struct {
		name string
		warm bool
	}{{"cold", false}, {"warm", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var iters int64
			for i := 0; i < b.N; i++ {
				rs, err := Evaluate(context.Background(), plan, Options{
					Solver: sc, WarmStart: mode.warm, Pool: engine.New(0),
				})
				if err != nil {
					b.Fatal(err)
				}
				iters += rs.Iterations
			}
			b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
		})
	}
}

// TestWarmStartHalvesIterationsHuge asserts the warm-start acceptance
// criterion on the C=∆=40 grid: ≥ 2× fewer total iterative-solver
// iterations than the cold schedule, with every cell agreeing at 1e-9.
func TestWarmStartHalvesIterationsHuge(t *testing.T) {
	if testing.Short() {
		t.Skip("C=∆=40 warm-start acceptance skipped in -short mode")
	}
	// One notch below the default residual tolerance: at |Ω| = 35301 the
	// blocks' conditioning amplifies 1e-12 residuals to ~1e-9 solution
	// differences, right at the agreement bar.
	sc := matrix.SolverConfig{Kind: "bicgstab", Tol: 1e-13}
	plan := warmGrid()
	cold, err := Evaluate(context.Background(), plan, Options{Solver: sc, Pool: engine.New(0)})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Evaluate(context.Background(), plan, Options{Solver: sc, WarmStart: true, Pool: engine.New(0)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Cells {
		if field, ok := analysesEqual(warm.Cells[i].Analysis, cold.Cells[i].Analysis, 1e-9); !ok {
			t.Errorf("cell %d (%v): %s differs between warm and cold beyond 1e-9",
				i, cold.Cells[i].Params, field)
		}
	}
	if warm.Iterations*2 > cold.Iterations {
		t.Errorf("warm iterations = %d, cold = %d; want ≥ 2× reduction", warm.Iterations, cold.Iterations)
	}
	t.Logf("cold %d iterations, warm %d (%.2f× reduction)",
		cold.Iterations, warm.Iterations, float64(cold.Iterations)/float64(warm.Iterations))
}

func analyzeOne(p core.Params, sc matrix.SolverConfig, dist core.InitialDistribution, sojourns int) (*core.Analysis, error) {
	m, err := core.NewWithSolver(p, sc)
	if err != nil {
		return nil, err
	}
	return m.AnalyzeNamed(dist, sojourns)
}

// verifyAgainstPerCell asserts the acceptance criterion: every sweep
// cell matches the independent per-cell path at 1e-12.
func verifyAgainstPerCell(b *testing.B, rs *ResultSet, sc matrix.SolverConfig) {
	b.StopTimer()
	defer b.StartTimer()
	for _, cell := range rs.Cells {
		want, err := analyzeOne(cell.Params, sc, rs.Plan.Dist, rs.Plan.sojourns())
		if err != nil {
			b.Fatal(err)
		}
		if field, ok := analysesEqual(cell.Analysis, want, 1e-12); !ok {
			b.Fatalf("cell %v: %s differs from per-cell path beyond 1e-12", cell.Params, field)
		}
	}
}
