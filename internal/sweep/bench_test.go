package sweep

import (
	"context"
	"testing"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// hugeGrid is the acceptance grid: a ν×d surface of 64 cells at C=∆=40
// (|Ω| = 35301, 33579 transient per cell).
func hugeGrid() Plan {
	return Plan{
		C: []int{40}, Delta: []int{40}, K: []int{1},
		Mu: []float64{0.2},
		D:  []float64{0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85},
		Nu: []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.60},
	}
}

// BenchmarkSweepGrid measures the amortized evaluator against the same
// 64 cells run as independent core.Analyze calls. The evaluator shares
// one state space, kernel and Rule 1 gain table across the grid and
// proves the ν axis redundant per (µ, d) (protocol_1 never fires
// Rule 1), so it solves 8 distinct chains instead of 64; "evaluate"
// additionally verifies every cell against the per-cell result at
// 1e-12 on its first iteration.
func BenchmarkSweepGrid(b *testing.B) {
	sc := matrix.SolverConfig{Kind: "bicgstab"}
	plan := hugeGrid()
	b.Run("evaluate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rs, err := Evaluate(context.Background(), plan, Options{Solver: sc, Pool: engine.New(0)})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				verifyAgainstPerCell(b, rs, sc)
			}
		}
	})
	b.Run("percell", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range plan.Cells() {
				if _, err := analyzeOne(p, sc, plan.Dist, plan.sojourns()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func analyzeOne(p core.Params, sc matrix.SolverConfig, dist core.InitialDistribution, sojourns int) (*core.Analysis, error) {
	m, err := core.NewWithSolver(p, sc)
	if err != nil {
		return nil, err
	}
	return m.AnalyzeNamed(dist, sojourns)
}

// verifyAgainstPerCell asserts the acceptance criterion: every sweep
// cell matches the independent per-cell path at 1e-12.
func verifyAgainstPerCell(b *testing.B, rs *ResultSet, sc matrix.SolverConfig) {
	b.StopTimer()
	defer b.StartTimer()
	for _, cell := range rs.Cells {
		want, err := analyzeOne(cell.Params, sc, rs.Plan.Dist, rs.Plan.sojourns())
		if err != nil {
			b.Fatal(err)
		}
		if field, ok := analysesEqual(cell.Analysis, want, 1e-12); !ok {
			b.Fatalf("cell %v: %s differs from per-cell path beyond 1e-12", cell.Params, field)
		}
	}
}
