package sweep

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/overlaynet"
)

func simPlan() SimPlan {
	return SimPlan{
		Strategies:   []adversary.Strategy{adversary.StrategyPaper, adversary.StrategyPassive},
		Mu:           []float64{0.1, 0.25},
		D:            []float64{0.9},
		Sizes:        []int{40, 80},
		Params:       core.Params{C: 7, Delta: 7, K: 1, Nu: 0.1},
		Events:       400,
		Replicas:     3,
		Seed:         11,
		FastIdentity: true,
		Stationary:   true,
		LookupTrials: 50,
	}
}

func TestSimPlanCells(t *testing.T) {
	pl := simPlan()
	cells := pl.Cells()
	if len(cells) != pl.Size() || pl.Size() != 8 {
		t.Fatalf("size = %d, cells = %d, want 8", pl.Size(), len(cells))
	}
	// Row-major: strategies outermost, sizes innermost.
	if cells[0].Strategy != adversary.StrategyPaper || cells[0].Size != 40 {
		t.Errorf("cell 0 = %+v", cells[0])
	}
	if cells[1].Size != 80 {
		t.Errorf("cell 1 = %+v, want innermost size axis", cells[1])
	}
	if cells[4].Strategy != adversary.StrategyPassive {
		t.Errorf("cell 4 = %+v, want outermost strategy axis", cells[4])
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
	}
}

func TestSimPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*SimPlan)
	}{
		{"empty strategy axis", func(p *SimPlan) { p.Strategies = nil }},
		{"empty mu axis", func(p *SimPlan) { p.Mu = nil }},
		{"empty size axis", func(p *SimPlan) { p.Sizes = nil }},
		{"no replicas", func(p *SimPlan) { p.Replicas = 0 }},
		{"no events", func(p *SimPlan) { p.Events = 0 }},
		{"bad mu", func(p *SimPlan) { p.Mu = []float64{1.5} }},
		{"bad size", func(p *SimPlan) { p.Sizes = []int{0} }},
		{"bad strategy", func(p *SimPlan) { p.Strategies = []adversary.Strategy{99} }},
		{"stop without tracking", func(p *SimPlan) { p.StopOnAbsorption = true }},
		{"negative lookup trials", func(p *SimPlan) { p.LookupTrials = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pl := simPlan()
			c.mod(&pl)
			if err := pl.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", pl)
			}
		})
	}
	pl := simPlan()
	if err := pl.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// TestEvaluateSimDeterministicAcrossPools is the determinism golden
// test: the same plan evaluated serially and on 2- and 8-worker pools
// must produce bit-identical result sets, cell streaming included.
func TestEvaluateSimDeterministicAcrossPools(t *testing.T) {
	pl := simPlan()
	var ref *SimResultSet
	for _, workers := range []int{1, 2, 8} {
		var mu sync.Mutex
		streamed := make(map[int]SimCellResult)
		rs, err := EvaluateSim(context.Background(), pl, SimOptions{
			Pool: engine.New(workers),
			OnCell: func(r SimCellResult) {
				mu.Lock()
				streamed[r.Cell.Index] = r
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(streamed) != pl.Size() {
			t.Fatalf("workers=%d: streamed %d cells, want %d", workers, len(streamed), pl.Size())
		}
		for i, cell := range rs.Cells {
			if !reflect.DeepEqual(cell, streamed[i]) {
				t.Errorf("workers=%d: streamed cell %d differs from result set", workers, i)
			}
		}
		if ref == nil {
			ref = rs
			continue
		}
		if !reflect.DeepEqual(ref.Cells, rs.Cells) {
			t.Errorf("workers=%d: result set differs from serial evaluation", workers)
		}
	}
}

// TestEvaluateSimSummaries sanity-checks the aggregated physics: the
// paper strategy pollutes at least as much as the passive population,
// and availability falls with pollution.
func TestEvaluateSimSummaries(t *testing.T) {
	pl := simPlan()
	rs, err := EvaluateSim(context.Background(), pl, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range rs.Cells {
		if cell.Summary.Replicas != pl.Replicas {
			t.Errorf("cell %d aggregated %d replicas, want %d", cell.Cell.Index, cell.Summary.Replicas, pl.Replicas)
		}
		if cell.Summary.Events != int64(pl.Events*pl.Replicas) {
			t.Errorf("cell %d processed %d events, want %d", cell.Cell.Index, cell.Summary.Events, pl.Events*pl.Replicas)
		}
		if n := cell.Summary.FinalPeers.N(); n != pl.Replicas {
			t.Errorf("cell %d FinalPeers has %d samples", cell.Cell.Index, n)
		}
		if cell.Summary.FinalPeers.Mean() <= 0 {
			t.Errorf("cell %d has empty final population", cell.Cell.Index)
		}
	}
	// Cells 0..3 are StrategyPaper, 4..7 StrategyPassive, pairwise equal
	// otherwise; pooled pollution must not be lower under the full attack.
	var paper, passive float64
	for i := 0; i < 4; i++ {
		paper += rs.Cells[i].Summary.PollutedFraction.Mean()
		passive += rs.Cells[i+4].Summary.PollutedFraction.Mean()
	}
	if paper < passive {
		t.Errorf("paper strategy pooled pollution %v < passive %v", paper, passive)
	}
}

// TestEvaluateSimAbsorption runs the single-cluster absorption regime
// the analytic cross-validation uses: every replica is one absorption
// trajectory of the chain.
func TestEvaluateSimAbsorption(t *testing.T) {
	pl := SimPlan{
		Strategies:       []adversary.Strategy{adversary.StrategyPaper},
		Mu:               []float64{0.2},
		D:                []float64{0.9},
		Sizes:            []int{10}, // single cluster at C = ∆ = 7
		Params:           core.Params{C: 7, Delta: 7, K: 1, Nu: 0.1},
		Events:           1 << 16,
		Replicas:         8,
		Seed:             5,
		FastIdentity:     true,
		TrackAbsorption:  true,
		StopOnAbsorption: true,
	}
	rs, err := EvaluateSim(context.Background(), pl, SimOptions{Pool: engine.New(2)})
	if err != nil {
		t.Fatal(err)
	}
	s := rs.Cells[0].Summary
	if s.Absorbed() != int64(pl.Replicas) {
		t.Fatalf("absorbed = %d, want one sample per replica (%d): %+v", s.Absorbed(), pl.Replicas, s)
	}
	if s.Censored != 0 {
		t.Errorf("censored = %d in single-cluster runs", s.Censored)
	}
	if s.SafeTime.N() != pl.Replicas {
		t.Errorf("SafeTime pooled %d samples, want %d", s.SafeTime.N(), pl.Replicas)
	}
	if s.SafeTime.Mean() <= 0 {
		t.Errorf("mean safe chain age %v, want > 0", s.SafeTime.Mean())
	}
}

// TestSimPlanConfigSingleCluster checks the size→label-depth mapping
// bottoms out at one root cluster rather than the 2^3 default.
func TestSimPlanConfigSingleCluster(t *testing.T) {
	pl := simPlan()
	cell := SimCell{Size: 10, LabelBits: overlaynet.LabelBitsForPopulation(10, 7, 7)}
	cfg := pl.config(cell, 1)
	n, err := overlaynet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Clusters()); got != 1 {
		t.Errorf("size-10 bootstrap built %d clusters, want 1", got)
	}
}
