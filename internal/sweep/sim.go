package sweep

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/obs"
	"targetedattacks/internal/overlaynet"
	"targetedattacks/internal/stats"
)

// SimPlan is a simulation grid: the cross product of an adversary
// strategy axis, an attack-intensity axis (µ), an induced-churn axis
// (d, which sets the identifier lifetime) and a population-size axis,
// each cell estimated by Replicas independent Monte-Carlo runs of the
// overlaynet system simulator. Cells enumerate in row-major order with
// strategies outermost and sizes innermost; replica r of cell i runs on
// the deterministic stream engine.Stream(Seed, i·Replicas+r), so
// results are bit-identical for any worker-pool width.
type SimPlan struct {
	// Strategies is the adversary-playbook axis.
	Strategies []adversary.Strategy
	// Mu is the attack-intensity axis (fraction of malicious joins).
	Mu []float64
	// D is the induced-churn axis: the per-event survival probability of
	// unexpired identifiers, from which the incarnation lifetime derives.
	D []float64
	// Sizes is the population axis: each value selects the bootstrap
	// label depth whose population comes closest (LabelBitsForPopulation).
	Sizes []int
	// Params carries the remaining model parameters (C, ∆, k, ν); its Mu
	// and D fields are overridden per cell.
	Params core.Params
	// Events is the number of churn events each replica processes.
	Events int
	// Replicas is the number of Monte-Carlo runs per cell.
	Replicas int
	// Seed is the root seed of the replica streams.
	Seed int64
	// Mode selects churn fidelity (overlaynet.ModelFidelity default).
	Mode overlaynet.Mode
	// Stationary enables the stationary-population controller.
	Stationary bool
	// FastIdentity selects hash-derived identifiers (required in
	// practice for 10^5+ peers).
	FastIdentity bool
	// TrackAbsorption records per-cluster absorption trajectories
	// (chain ages to s = 0 or s = ∆), aggregated into the cell summary.
	TrackAbsorption bool
	// StopOnAbsorption ends each replica once every tracked cluster has
	// absorbed (requires TrackAbsorption).
	StopOnAbsorption bool
	// LookupTrials, when positive, measures end-of-run lookup
	// availability over that many random (source, key) pairs per replica.
	LookupTrials int
}

// SimCell identifies one grid cell.
type SimCell struct {
	// Index is the cell's position in row-major plan order.
	Index int
	// Strategy, Mu, D and Size are the cell's axis values.
	Strategy adversary.Strategy
	Mu, D    float64
	Size     int
	// LabelBits is the bootstrap label depth the size resolved to.
	LabelBits int
}

// SimSummary aggregates a cell's replicas in replica order. Every field
// is a pure function of (plan, cell index), independent of pool width,
// scheduling and wall-clock.
type SimSummary struct {
	// Replicas is the number of Monte-Carlo runs aggregated.
	Replicas int
	// Events is the total churn events processed across replicas.
	Events int64
	// FinalPeers and PollutedFraction summarize the end-of-run snapshot
	// across replicas.
	FinalPeers       stats.Running
	PollutedFraction stats.Running
	// Availability summarizes end-of-run lookup availability
	// (LookupTrials > 0).
	Availability stats.Running
	// SafeTime and PollutedTime pool the absorption chain ages over all
	// absorbed clusters of all replicas (TrackAbsorption); SafeTime.Mean()
	// estimates the chain's E(T_S).
	SafeTime     stats.Running
	PollutedTime stats.Running
	// Absorbing-class counts pooled over replicas (TrackAbsorption).
	SafeMerge, SafeSplit, PollutedMerge, PollutedSplit int64
	EverPolluted, Censored                             int64
	// Protocol activity summed over replicas.
	Splits, Merges, Joins, Leaves                  int64
	DiscardedJoins, RefusedLeaves, VoluntaryLeaves int64
	ExpiryLeaves                                   int64
}

// Absorbed returns the pooled number of completed absorption samples.
func (s SimSummary) Absorbed() int64 {
	return s.SafeMerge + s.SafeSplit + s.PollutedMerge + s.PollutedSplit
}

// SimCellResult is the outcome of one simulation cell.
type SimCellResult struct {
	Cell    SimCell
	Summary SimSummary
}

// SimResultSet is the deterministic outcome of a simulation sweep:
// cells in plan order, whatever the pool width or completion order.
type SimResultSet struct {
	Plan  SimPlan
	Cells []SimCellResult
}

// SimOptions tunes a simulation sweep evaluation.
type SimOptions struct {
	// Pool fans replicas across workers; nil evaluates serially.
	// Results are bit-identical for any pool width.
	Pool *engine.Pool
	// OnCell, when non-nil, streams each cell's result as soon as its
	// last replica completes — from evaluator goroutines, in completion
	// order (not index order). It must be safe for concurrent use.
	OnCell func(SimCellResult)
}

// Size returns the number of cells, saturating at MaxInt on overflow.
func (pl SimPlan) Size() int {
	size := 1
	for _, n := range []int{len(pl.Strategies), len(pl.Mu), len(pl.D), len(pl.Sizes)} {
		if n == 0 {
			return 0
		}
		if size > math.MaxInt/n {
			return math.MaxInt
		}
		size *= n
	}
	return size
}

// Validate checks the axes, the replica/event counts, and every cell's
// effective parameters.
func (pl SimPlan) Validate() error {
	if pl.Size() == 0 {
		return fmt.Errorf("sweep: every sim axis needs at least one value (|strategy|=%d |µ|=%d |d|=%d |size|=%d)",
			len(pl.Strategies), len(pl.Mu), len(pl.D), len(pl.Sizes))
	}
	if pl.Size() == math.MaxInt {
		return fmt.Errorf("sweep: sim axis product overflows the grid size")
	}
	if pl.Replicas < 1 {
		return fmt.Errorf("sweep: sim plan needs at least one replica, got %d", pl.Replicas)
	}
	if pl.Events < 1 {
		return fmt.Errorf("sweep: sim plan needs at least one event per replica, got %d", pl.Events)
	}
	if pl.Replicas > math.MaxInt/pl.Size() {
		return fmt.Errorf("sweep: %d cells × %d replicas overflows", pl.Size(), pl.Replicas)
	}
	if pl.StopOnAbsorption && !pl.TrackAbsorption {
		return fmt.Errorf("sweep: StopOnAbsorption requires TrackAbsorption")
	}
	if pl.LookupTrials < 0 {
		return fmt.Errorf("sweep: negative LookupTrials %d", pl.LookupTrials)
	}
	for _, s := range pl.Strategies {
		if s.String() == fmt.Sprintf("strategy(%d)", int(s)) {
			return fmt.Errorf("sweep: unknown strategy %d", int(s))
		}
	}
	for _, size := range pl.Sizes {
		if size < 1 {
			return fmt.Errorf("sweep: sim population %d must be positive", size)
		}
	}
	for _, cell := range pl.Cells() {
		p := pl.Params
		p.Mu, p.D = cell.Mu, cell.D
		if err := p.Validate(); err != nil {
			return fmt.Errorf("sweep: sim cell %d: %w", cell.Index, err)
		}
	}
	return nil
}

// Cells enumerates the grid in row-major order: strategies outermost,
// then µ, then d, with sizes innermost.
func (pl SimPlan) Cells() []SimCell {
	out := make([]SimCell, 0, pl.Size())
	for _, s := range pl.Strategies {
		for _, mu := range pl.Mu {
			for _, d := range pl.D {
				for _, size := range pl.Sizes {
					out = append(out, SimCell{
						Index:     len(out),
						Strategy:  s,
						Mu:        mu,
						D:         d,
						Size:      size,
						LabelBits: overlaynet.LabelBitsForPopulation(size, pl.Params.C, pl.Params.Delta),
					})
				}
			}
		}
	}
	return out
}

// String renders the plan compactly.
func (pl SimPlan) String() string {
	return fmt.Sprintf("simsweep(strategies=%v µ=%v d=%v sizes=%v events=%d replicas=%d: %d cells)",
		pl.Strategies, pl.Mu, pl.D, pl.Sizes, pl.Events, pl.Replicas, pl.Size())
}

// config builds the overlaynet configuration of one replica.
func (pl SimPlan) config(cell SimCell, seed int64) overlaynet.Config {
	p := pl.Params
	p.Mu, p.D = cell.Mu, cell.D
	bits := cell.LabelBits
	if bits == 0 {
		bits = -1 // single root cluster (0 is "default" in Config)
	}
	return overlaynet.Config{
		Params:               p,
		IDBits:               64,
		InitialLabelBits:     bits,
		Mode:                 pl.Mode,
		FastIdentity:         pl.FastIdentity,
		Strategy:             cell.Strategy,
		StationaryPopulation: pl.Stationary,
		TrackAbsorption:      pl.TrackAbsorption,
		StopOnAbsorption:     pl.StopOnAbsorption,
		Seed:                 seed,
	}
}

// replicaOutcome is the deterministic per-replica reduction input.
type replicaOutcome struct {
	snap         overlaynet.Snapshot
	metrics      overlaynet.Metrics
	absorb       overlaynet.AbsorptionReport
	availability float64
}

// EvaluateSim runs the simulation grid: cells × replicas fan out as flat
// tasks across opts.Pool, each replica on its own engine.Stream-derived
// seed; a cell reduces in fixed replica order the moment its last
// replica lands, so OnCell streams while the set's final Cells slice
// stays in plan order. The result is bit-identical for any pool width.
func EvaluateSim(ctx context.Context, plan SimPlan, opts SimOptions) (*SimResultSet, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	cells := plan.Cells()
	outcomes := make([]replicaOutcome, len(cells)*plan.Replicas)
	results := make([]SimCellResult, len(cells))
	remaining := make([]atomic.Int64, len(cells))
	for i := range remaining {
		remaining[i].Store(int64(plan.Replicas))
	}
	err := engine.Ensure(opts.Pool).Run(ctx, len(outcomes), func(task int) error {
		ci := task / plan.Replicas
		seed := engine.Stream(uint64(plan.Seed), uint64(task)).Int64()
		simSpan, _ := obs.StartSpan(ctx, "simulate")
		out, err := runReplica(plan, cells[ci], seed)
		simSpan.End()
		if err != nil {
			return fmt.Errorf("sim cell %d replica %d: %w", ci, task%plan.Replicas, err)
		}
		outcomes[task] = out
		// The final replica of a cell reduces it; replica slots are all
		// written, and the reduction walks them in replica order, so the
		// summary is deterministic even though the reducer is whichever
		// worker finished last.
		if remaining[ci].Add(-1) == 0 {
			results[ci] = SimCellResult{
				Cell:    cells[ci],
				Summary: reduceCell(plan, outcomes[ci*plan.Replicas:(ci+1)*plan.Replicas]),
			}
			if opts.OnCell != nil {
				opts.OnCell(results[ci])
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return &SimResultSet{Plan: plan, Cells: results}, nil
}

// runReplica executes one Monte-Carlo run and extracts its outcome.
func runReplica(plan SimPlan, cell SimCell, seed int64) (replicaOutcome, error) {
	n, err := overlaynet.New(plan.config(cell, seed))
	if err != nil {
		return replicaOutcome{}, err
	}
	if err := n.Run(plan.Events); err != nil {
		return replicaOutcome{}, err
	}
	out := replicaOutcome{
		snap:    n.Snapshot(),
		metrics: n.Metrics(),
		absorb:  n.Absorption(),
	}
	if plan.LookupTrials > 0 {
		avail, err := n.LookupAvailability(plan.LookupTrials)
		if err != nil {
			return replicaOutcome{}, err
		}
		out.availability = avail
	}
	return out, nil
}

// reduceCell folds a cell's replica outcomes, in replica order, into its
// summary.
func reduceCell(plan SimPlan, outs []replicaOutcome) SimSummary {
	var s SimSummary
	s.Replicas = len(outs)
	for _, o := range outs {
		s.Events += o.metrics.Events
		s.FinalPeers.Observe(float64(o.snap.Peers))
		s.PollutedFraction.Observe(o.snap.PollutedFraction)
		if plan.LookupTrials > 0 {
			s.Availability.Observe(o.availability)
		}
		if plan.TrackAbsorption {
			s.SafeTime.Merge(o.absorb.SafeTime)
			s.PollutedTime.Merge(o.absorb.PollutedTime)
			s.SafeMerge += o.absorb.SafeMerge
			s.SafeSplit += o.absorb.SafeSplit
			s.PollutedMerge += o.absorb.PollutedMerge
			s.PollutedSplit += o.absorb.PollutedSplit
			s.EverPolluted += o.absorb.EverPolluted
			s.Censored += o.absorb.Censored
		}
		s.Splits += o.metrics.Splits
		s.Merges += o.metrics.Merges
		s.Joins += o.metrics.Joins
		s.Leaves += o.metrics.Leaves
		s.DiscardedJoins += o.metrics.DiscardedJoins
		s.RefusedLeaves += o.metrics.RefusedLeaves
		s.VoluntaryLeaves += o.metrics.VoluntaryLeaves
		s.ExpiryLeaves += o.metrics.ExpiryLeaves
	}
	return s
}
