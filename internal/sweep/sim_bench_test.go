package sweep

import (
	"context"
	"strconv"
	"testing"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/overlaynet"
)

// BenchmarkOverlaySweep measures end-to-end simulation-sweep throughput:
// a strategy × µ grid of full overlays on the arena scheduler, reported
// as simulated churn events per second. One iteration evaluates the
// whole grid, so the figure includes bootstrap, event dispatch and
// summary reduction — the number attackd's budget limits are sized
// against.
func BenchmarkOverlaySweep(b *testing.B) {
	for _, size := range []int{1_000, 20_000} {
		plan := SimPlan{
			Strategies:   []adversary.Strategy{adversary.StrategyPaper, adversary.StrategyPassive},
			Mu:           []float64{0.1, 0.2},
			D:            []float64{0.9},
			Sizes:        []int{size},
			Params:       core.Params{C: 7, Delta: 7, K: 1, Nu: 0.1},
			Events:       5_000,
			Replicas:     1,
			Seed:         1,
			Mode:         overlaynet.ModelFidelity,
			Stationary:   true,
			FastIdentity: true,
		}
		b.Run("peers="+strconv.Itoa(size), func(b *testing.B) {
			pool := engine.New(1)
			b.ReportAllocs()
			for b.Loop() {
				rs, err := EvaluateSim(context.Background(), plan, SimOptions{Pool: pool})
				if err != nil {
					b.Fatal(err)
				}
				var events int64
				for _, cell := range rs.Cells {
					events += cell.Summary.Events
				}
				if events == 0 {
					b.Fatal("no events simulated")
				}
			}
			grid := int64(plan.Size()) * int64(plan.Replicas) * int64(plan.Events)
			b.ReportMetric(float64(grid)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
