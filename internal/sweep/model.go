package sweep

import (
	"context"
	"fmt"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/obs"
)

// ModelPlan is a model-agnostic parameter grid: a family plus its cells
// in the family's canonical order (group axis outermost, warm-start
// lane axis innermost — ParsePlan emits this order; hand-built cell
// lists should follow it for lanes to form).
type ModelPlan struct {
	// Family declares the grid's model.
	Family chainmodel.Family
	// Cells are the grid cells in evaluation-index order.
	Cells []chainmodel.Cell
	// Dist names the initial distribution applied to every cell; ""
	// selects the family default.
	Dist string
	// Sojourns is the number of successive sojourn expectations computed
	// per cell; values < 1 mean 1.
	Sojourns int
}

// sojourns returns the effective sojourn count.
func (pl ModelPlan) sojourns() int {
	if pl.Sojourns < 1 {
		return 1
	}
	return pl.Sojourns
}

// ModelOptions tunes a model-agnostic grid evaluation; the fields mirror
// Options.
type ModelOptions struct {
	// Pool fans distinct lanes across workers; nil evaluates serially.
	// Results are bit-identical for any pool width.
	Pool *engine.Pool
	// BuildPool supplies the workers of the row-parallel
	// transition-matrix construction inside each cell.
	BuildPool *engine.Pool
	// Solver selects the linear-solver backend of every cell's analysis.
	Solver matrix.SolverConfig
	// WarmStart chains the iterative solves of neighboring cells along
	// the family's lanes (consecutive equivalence classes with equal
	// LaneKey); lanes, not cells, fan across the pool, so results stay
	// independent of the worker count.
	WarmStart bool
	// OnCell, when non-nil, streams results as they are produced; it
	// must be safe for concurrent use.
	OnCell func(ModelCellResult)
}

// ModelCellResult is the outcome of one grid cell.
type ModelCellResult struct {
	// Index is the cell's position in ModelPlan.Cells order.
	Index int
	// Cell is the cell's parameter point.
	Cell chainmodel.Cell
	// States and Transient size the cell's state space.
	States, Transient int
	// Shared reports that the cell's chain was proven identical to an
	// earlier cell's (equal family signature) and its Analysis cloned
	// from that evaluation instead of a re-solve.
	Shared bool
	// Iterations is the iterative-solver work this cell's chain cost;
	// 0 for shared cells and for the dense backend.
	Iterations int64
	// SharedTables is the immutable shared structure of the cell's
	// group (whatever the family's NewShared built), for callers that
	// derive model-specific per-cell metadata from it.
	SharedTables any
	// Analysis holds the closed-form results for the plan's initial
	// distribution.
	Analysis *chainmodel.Analysis
}

// ModelResultSet is the deterministic outcome of a model-agnostic grid
// evaluation: cells in plan order, whatever the pool width or
// completion order.
type ModelResultSet struct {
	Plan  ModelPlan
	Cells []ModelCellResult
	// Groups counts the distinct shared-structure groups; Evaluated
	// counts the distinct chains actually constructed and solved after
	// deduplication.
	Groups    int
	Evaluated int
	// Iterations is the total iterative-solver work of the evaluation —
	// the number warm starting drives down.
	Iterations int64
}

// EvaluateModel runs a model-agnostic grid through the amortized
// three-pass planner: shared immutable tables once per family group,
// provably identical cells (equal family signatures) solved once, and
// the remaining distinct chains ordered into warm-start lanes that fan
// out across opts.Pool. Every cell's numbers are bit-identical to an
// independent build + analysis of the same cell with the same solver,
// for any worker count.
func EvaluateModel(ctx context.Context, plan ModelPlan, opts ModelOptions) (*ModelResultSet, error) {
	fam := plan.Family
	if fam == nil {
		return nil, fmt.Errorf("sweep: ModelPlan.Family is nil")
	}
	if len(plan.Cells) == 0 {
		return nil, fmt.Errorf("sweep: ModelPlan has no cells")
	}
	dist, err := fam.ParseDist(plan.Dist)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if _, err := opts.Solver.Build(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	cells := plan.Cells

	// Planner pass 1: shared structure per group. Group cells are
	// collected first so NewShared sees the whole group (e.g. every
	// protocol k a geometry group will need tables for). The pass is
	// the sweep's "space" stage: it is where state spaces and kernel
	// tables are enumerated.
	spaceSpan, _ := obs.StartSpan(ctx, "space")
	groupCells := make(map[any][]chainmodel.Cell)
	var groupOrder []any
	for _, cell := range cells {
		key := fam.GroupKey(cell)
		if _, ok := groupCells[key]; !ok {
			groupOrder = append(groupOrder, key)
		}
		groupCells[key] = append(groupCells[key], cell)
	}
	shared := make(map[any]any, len(groupOrder))
	for _, key := range groupOrder {
		s, err := fam.NewShared(groupCells[key])
		if err != nil {
			spaceSpan.End()
			return nil, fmt.Errorf("sweep: %w", err)
		}
		shared[key] = s
	}
	spaceSpan.SetAttrInt("groups", int64(len(groupOrder)))
	spaceSpan.End()

	// Planner pass 2: deduplicate cells into equivalence classes. The
	// leader of a class is its lowest cell index; classes keep plan
	// order, so the evaluation schedule is deterministic.
	planSpan, _ := obs.StartSpan(ctx, "plan")
	type class struct {
		leader  int
		members []int
	}
	classOf := make(map[any]int)
	var classes []class
	for i, cell := range cells {
		sig, err := fam.Signature(shared[fam.GroupKey(cell)], cell)
		if err != nil {
			planSpan.End()
			return nil, fmt.Errorf("sweep: cell %v: %w", cell, err)
		}
		ci, ok := classOf[sig]
		if !ok {
			ci = len(classes)
			classOf[sig] = ci
			classes = append(classes, class{leader: i})
		}
		classes[ci].members = append(classes[ci].members, i)
	}

	// Planner pass 3: lanes. Without warm starting every class is its
	// own lane. With warm starting, consecutive classes whose leaders
	// share a lane key form one lane: the family's canonical cell order
	// enumerates the lane axis innermost, so a lane walks that axis in
	// small steps and each chain's solves seed from the previous chain's
	// converged vectors. Lanes are a fixed partition of the classes, so
	// fanning lanes (instead of classes) across the pool keeps results
	// independent of the worker count.
	var lanes [][]int
	for ci := range classes {
		if opts.WarmStart && ci > 0 {
			prev := fam.LaneKey(cells[classes[ci-1].leader])
			cur := fam.LaneKey(cells[classes[ci].leader])
			if prev == cur {
				lanes[len(lanes)-1] = append(lanes[len(lanes)-1], ci)
				continue
			}
		}
		lanes = append(lanes, []int{ci})
	}
	planSpan.SetAttrInt("classes", int64(len(classes)))
	planSpan.SetAttrInt("lanes", int64(len(lanes)))
	planSpan.End()

	// Evaluation pass: one build + solve per class, lanes fanned across
	// the pool; results land in per-cell slots (classes own disjoint
	// cell sets), so accumulation is order-independent. Each class
	// records a "build" and a "solve" span; with more than one worker,
	// lanes overlap in time, so the aggregated stage durations read as
	// CPU time, not wall clock.
	results := make([]ModelCellResult, len(cells))
	err = engine.Ensure(opts.Pool).Run(ctx, len(lanes), func(li int) error {
		var ws *chainmodel.WarmStart
		for _, ci := range lanes[li] {
			cl := classes[ci]
			cell := cells[cl.leader]
			gshared := shared[fam.GroupKey(cell)]
			buildSpan, _ := obs.StartSpan(ctx, "build")
			inst, err := fam.Build(gshared, cell, opts.Solver, opts.BuildPool)
			buildSpan.End()
			if err != nil {
				return fmt.Errorf("cell %v: %w", cell, err)
			}
			solveSpan, _ := obs.StartSpan(ctx, "solve")
			a, rec, err := chainmodel.AnalyzeWarm(inst, dist, plan.sojourns(), ws)
			if err != nil {
				solveSpan.End()
				return fmt.Errorf("cell %v: %w", cell, err)
			}
			solveSpan.SetAttr("backend", a.Solver.Backend)
			solveSpan.SetAttrInt("iterations", a.Solver.Iterations)
			if a.Solver.Fallbacks > 0 {
				solveSpan.SetAttrInt("fallbacks", a.Solver.Fallbacks)
				solveSpan.SetAttr("fallback_reason", string(a.Solver.FallbackReason))
			}
			solveSpan.End()
			if opts.WarmStart {
				ws = rec
			}
			for _, i := range cl.members {
				res := ModelCellResult{
					Index:        i,
					Cell:         cells[i],
					States:       inst.NumStates(),
					Transient:    inst.NumTransient(),
					Shared:       i != cl.leader,
					SharedTables: gshared,
					Analysis:     a,
				}
				if res.Shared {
					res.Analysis = chainmodel.CloneAnalysis(a)
				} else {
					res.Iterations = a.Solver.Iterations
				}
				results[i] = res
				if opts.OnCell != nil {
					opts.OnCell(res)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	rs := &ModelResultSet{
		Plan:      plan,
		Cells:     results,
		Groups:    len(groupOrder),
		Evaluated: len(classes),
	}
	for i := range results {
		rs.Iterations += results[i].Iterations
	}
	return rs, nil
}
