package sweep

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// analysesEqual compares two Analyses field by field at tolerance tol
// (0 demands bitwise equality) and reports the first differing field.
func analysesEqual(a, b *core.Analysis, tol float64) (string, bool) {
	eq := func(x, y float64) bool {
		if tol == 0 {
			return x == y
		}
		return math.Abs(x-y) <= tol*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	if !eq(a.ExpectedSafeTime, b.ExpectedSafeTime) {
		return "ExpectedSafeTime", false
	}
	if !eq(a.ExpectedPollutedTime, b.ExpectedPollutedTime) {
		return "ExpectedPollutedTime", false
	}
	if !eq(a.PollutionProbability, b.PollutionProbability) {
		return "PollutionProbability", false
	}
	if len(a.SafeSojourns) != len(b.SafeSojourns) || len(a.PollutedSojourns) != len(b.PollutedSojourns) {
		return "sojourn lengths", false
	}
	for i := range a.SafeSojourns {
		if !eq(a.SafeSojourns[i], b.SafeSojourns[i]) {
			return "SafeSojourns", false
		}
	}
	for i := range a.PollutedSojourns {
		if !eq(a.PollutedSojourns[i], b.PollutedSojourns[i]) {
			return "PollutedSojourns", false
		}
	}
	if len(a.Absorption) != len(b.Absorption) {
		return "absorption size", false
	}
	for k, v := range a.Absorption {
		if !eq(v, b.Absorption[k]) {
			return "Absorption[" + k + "]", false
		}
	}
	return "", true
}

// perCell runs the independent single-cell path the evaluator must match.
func perCell(t testing.TB, p core.Params, sc matrix.SolverConfig, dist core.InitialDistribution, sojourns int) *core.Analysis {
	m, err := core.NewWithSolver(p, sc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.AnalyzeNamed(dist, sojourns)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestEvaluateMatchesPerCellExactly: on the paper-size geometry, every
// cell of a full (k, µ, d, ν) grid — dedup-shared cells included — must
// reproduce the independent core.Analyze numbers bit for bit.
func TestEvaluateMatchesPerCellExactly(t *testing.T) {
	plan := Plan{
		C: []int{7}, Delta: []int{7}, K: []int{1, 3},
		Mu:       []float64{0.1, 0.3},
		D:        []float64{0.5, 0.9},
		Nu:       []float64{0.05, 0.5},
		Sojourns: 2,
	}
	rs, err := Evaluate(context.Background(), plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Cells) != plan.Size() {
		t.Fatalf("got %d cells, want %d", len(rs.Cells), plan.Size())
	}
	var shared int
	for _, cell := range rs.Cells {
		want := perCell(t, cell.Params, matrix.SolverConfig{}, plan.Dist, plan.Sojourns)
		if field, ok := analysesEqual(cell.Analysis, want, 0); !ok {
			t.Errorf("cell %v (shared=%v): %s differs from per-cell path", cell.Params, cell.Shared, field)
		}
		if cell.Shared {
			shared++
		}
	}
	// protocol_1 never fires Rule 1, so its ν axis must have collapsed:
	// at least the 4 duplicate k=1 cells are shared.
	if shared < 4 {
		t.Errorf("shared cells = %d, want ≥ 4 (k=1 ν axis must deduplicate)", shared)
	}
	if rs.Evaluated+shared != plan.Size() {
		t.Errorf("Evaluated (%d) + shared (%d) != cells (%d)", rs.Evaluated, shared, plan.Size())
	}
	if rs.Groups != 1 {
		t.Errorf("Groups = %d, want 1", rs.Groups)
	}
}

// TestEvaluateDedupCounts: with protocol_1 the whole ν axis is one
// equivalence class per (µ, d).
func TestEvaluateDedupCounts(t *testing.T) {
	plan := Plan{
		C: []int{7}, Delta: []int{7}, K: []int{1},
		Mu: []float64{0.2},
		D:  []float64{0.5, 0.9},
		Nu: []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9},
	}
	rs, err := Evaluate(context.Background(), plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Evaluated != 2 {
		t.Errorf("Evaluated = %d, want 2 (one per d; ν must collapse at k=1)", rs.Evaluated)
	}
	if len(rs.Cells) != 16 {
		t.Errorf("cells = %d, want 16", len(rs.Cells))
	}
	for _, cell := range rs.Cells {
		if cell.Rule1Fires != 0 {
			t.Errorf("protocol_1 cell %v reports %d Rule 1 states", cell.Params, cell.Rule1Fires)
		}
		if cell.States != 288 {
			t.Errorf("cell %v: States = %d, want 288", cell.Params, cell.States)
		}
		if cell.Transient != 216 {
			t.Errorf("cell %v: Transient = %d, want 216", cell.Params, cell.Transient)
		}
	}
}

// TestEvaluateDeterministicAcrossPools: the result set must not depend
// on the pool width.
func TestEvaluateDeterministicAcrossPools(t *testing.T) {
	plan := Plan{
		C: []int{6, 7}, Delta: []int{7}, K: []int{2},
		Mu: []float64{0.2}, D: []float64{0.8}, Nu: []float64{0.05, 0.3},
	}
	serial, err := Evaluate(context.Background(), plan, Options{Pool: engine.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Evaluate(context.Background(), plan, Options{Pool: engine.New(8), BuildPool: engine.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Evaluated != wide.Evaluated || serial.Groups != wide.Groups {
		t.Fatalf("plan accounting differs across pool widths")
	}
	for i := range serial.Cells {
		if field, ok := analysesEqual(serial.Cells[i].Analysis, wide.Cells[i].Analysis, 0); !ok {
			t.Errorf("cell %d: %s differs between pool widths", i, field)
		}
	}
}

// TestEvaluateStreamsEveryCell: OnCell must fire exactly once per cell.
func TestEvaluateStreamsEveryCell(t *testing.T) {
	plan := Plan{
		C: []int{7}, Delta: []int{7}, K: []int{1},
		Mu: []float64{0.1, 0.2}, D: []float64{0.5}, Nu: []float64{0.1, 0.9},
	}
	var calls atomic.Int64
	seen := make([]atomic.Bool, plan.Size())
	_, err := Evaluate(context.Background(), plan, Options{
		Pool: engine.New(4),
		OnCell: func(c CellResult) {
			calls.Add(1)
			if c.Index < 0 || c.Index >= len(seen) || seen[c.Index].Swap(true) {
				t.Errorf("cell %d streamed twice or out of range", c.Index)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(plan.Size()) {
		t.Errorf("OnCell fired %d times, want %d", got, plan.Size())
	}
}

// TestEvaluateErrors: invalid plans and solver configs are rejected.
func TestEvaluateErrors(t *testing.T) {
	good := Plan{C: []int{7}, Delta: []int{7}, K: []int{1}, Mu: []float64{0.1}, D: []float64{0.5}, Nu: []float64{0.1}}
	if _, err := Evaluate(context.Background(), Plan{}, Options{}); err == nil {
		t.Error("empty plan must fail")
	}
	if _, err := Evaluate(context.Background(), good, Options{Solver: matrix.SolverConfig{Kind: "bogus"}}); err == nil {
		t.Error("bogus solver must fail")
	}
}

// TestEvaluateWarmStartAgreesWithCold: warm-started sweeps must agree
// with the cold path on every cell to solver tolerance, for every
// iterative backend, and must spend strictly less iterative-solver work
// (a dense d axis gives each lane many close-by chains to chain through).
func TestEvaluateWarmStartAgreesWithCold(t *testing.T) {
	plan := Plan{
		C: []int{7}, Delta: []int{7}, K: []int{2, 3},
		Mu:       []float64{0.1, 0.3},
		D:        []float64{0.5, 0.6, 0.7, 0.8, 0.9},
		Nu:       []float64{0.1, 0.5},
		Sojourns: 2,
	}
	for _, kind := range []string{"bicgstab", "gs", "ilu", "auto"} {
		sc := matrix.SolverConfig{Kind: kind}
		cold, err := Evaluate(context.Background(), plan, Options{Solver: sc})
		if err != nil {
			t.Fatalf("%s cold: %v", kind, err)
		}
		warm, err := Evaluate(context.Background(), plan, Options{Solver: sc, WarmStart: true})
		if err != nil {
			t.Fatalf("%s warm: %v", kind, err)
		}
		for i := range cold.Cells {
			if field, ok := analysesEqual(warm.Cells[i].Analysis, cold.Cells[i].Analysis, 1e-9); !ok {
				t.Errorf("%s cell %d (%v): %s differs between warm and cold beyond 1e-9",
					kind, i, cold.Cells[i].Params, field)
			}
		}
		if cold.Iterations == 0 {
			t.Fatalf("%s: cold sweep reports 0 iterations", kind)
		}
		if warm.Iterations >= cold.Iterations {
			t.Errorf("%s: warm iterations = %d, cold = %d; warm starting must cut work",
				kind, warm.Iterations, cold.Iterations)
		}
		t.Logf("%s: cold %d iterations, warm %d (%.1f%%)",
			kind, cold.Iterations, warm.Iterations, 100*float64(warm.Iterations)/float64(cold.Iterations))
	}
}

// TestEvaluateWarmStartDeterministicAcrossPools: lanes — not cells — fan
// out, so warm-started results must be bit-identical for any pool width.
func TestEvaluateWarmStartDeterministicAcrossPools(t *testing.T) {
	plan := Plan{
		C: []int{6, 7}, Delta: []int{7}, K: []int{2},
		Mu: []float64{0.1, 0.3},
		D:  []float64{0.5, 0.7, 0.9},
		Nu: []float64{0.05, 0.3},
	}
	sc := matrix.SolverConfig{Kind: "bicgstab"}
	serial, err := Evaluate(context.Background(), plan, Options{Solver: sc, WarmStart: true, Pool: engine.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Evaluate(context.Background(), plan, Options{Solver: sc, WarmStart: true, Pool: engine.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Iterations != wide.Iterations {
		t.Errorf("total iterations differ across pool widths: %d vs %d", serial.Iterations, wide.Iterations)
	}
	for i := range serial.Cells {
		if serial.Cells[i].Iterations != wide.Cells[i].Iterations {
			t.Errorf("cell %d: iteration count differs across pool widths: %d vs %d",
				i, serial.Cells[i].Iterations, wide.Cells[i].Iterations)
		}
		if field, ok := analysesEqual(serial.Cells[i].Analysis, wide.Cells[i].Analysis, 0); !ok {
			t.Errorf("cell %d: %s differs between pool widths", i, field)
		}
	}
}

// TestEvaluateIterationAccounting: per-cell counts live on leaders only
// and sum to the set total; the dense backend reports zero.
func TestEvaluateIterationAccounting(t *testing.T) {
	plan := Plan{
		C: []int{7}, Delta: []int{7}, K: []int{1},
		Mu: []float64{0.2}, D: []float64{0.5, 0.9}, Nu: []float64{0.1, 0.9},
	}
	rs, err := Evaluate(context.Background(), plan, Options{Solver: matrix.SolverConfig{Kind: "bicgstab"}})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, cell := range rs.Cells {
		if cell.Shared && cell.Iterations != 0 {
			t.Errorf("shared cell %d carries %d iterations, want 0", cell.Index, cell.Iterations)
		}
		if !cell.Shared && cell.Iterations == 0 {
			t.Errorf("leader cell %d reports 0 iterations on an iterative backend", cell.Index)
		}
		sum += cell.Iterations
	}
	if sum != rs.Iterations {
		t.Errorf("per-cell iterations sum to %d, ResultSet.Iterations = %d", sum, rs.Iterations)
	}
	dense, err := Evaluate(context.Background(), plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Iterations != 0 {
		t.Errorf("dense sweep reports %d iterations, want 0", dense.Iterations)
	}
}

// TestWarmStartedILUMatchesDense is the end-to-end property check of
// the preconditioner + warm-start stack: warm-started ILU(0) sweeps
// must reproduce the exact dense-LU per-cell Analysis — every field —
// at 1e-9 over the paper grid and at the S3 large-cluster scale, for
// 1-wide and 8-wide pools alike.
func TestWarmStartedILUMatchesDense(t *testing.T) {
	if testing.Short() {
		t.Skip("dense reference at C=∆=16 skipped in -short mode")
	}
	sc := matrix.SolverConfig{Kind: "ilu", Tol: 1e-13}
	plans := []Plan{
		{
			C: []int{7}, Delta: []int{7}, K: []int{1, 2, 7},
			Mu:       []float64{0.1, 0.3},
			D:        []float64{0.5, 0.9},
			Nu:       []float64{0.1, 0.5},
			Sojourns: 2,
		},
		// The S3 large-cluster point (2295 transient states): one cell,
		// at the scale the sparse stack exists for.
		{
			C: []int{16}, Delta: []int{16}, K: []int{1},
			Mu: []float64{0.2}, D: []float64{0.8}, Nu: []float64{0.1},
		},
	}
	for _, plan := range plans {
		dense := make(map[int]*core.Analysis)
		for i, p := range plan.Cells() {
			dense[i] = perCell(t, p, matrix.SolverConfig{}, plan.Dist, plan.sojourns())
		}
		for _, workers := range []int{1, 8} {
			rs, err := Evaluate(context.Background(), plan, Options{
				Solver: sc, WarmStart: true, Pool: engine.New(workers),
			})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i, cell := range rs.Cells {
				if field, ok := analysesEqual(cell.Analysis, dense[i], 1e-9); !ok {
					t.Errorf("workers=%d cell %v: %s differs from dense LU beyond 1e-9",
						workers, cell.Params, field)
				}
			}
		}
	}
}

// TestEvaluateHugeSpotCheck compares a few C=∆=40 sweep cells against
// the independent per-cell path at 1e-12 on the sparse solver — a spot
// check of the acceptance benchmark's full verification.
func TestEvaluateHugeSpotCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("C=∆=40 spot check skipped in -short mode")
	}
	sc := matrix.SolverConfig{Kind: "bicgstab"}
	plan := Plan{
		C: []int{40}, Delta: []int{40}, K: []int{1},
		Mu: []float64{0.2},
		D:  []float64{0.5, 0.8},
		Nu: []float64{0.05, 0.1},
	}
	rs, err := Evaluate(context.Background(), plan, Options{Solver: sc})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Evaluated != 2 {
		t.Errorf("Evaluated = %d, want 2", rs.Evaluated)
	}
	for _, cell := range []CellResult{rs.Cells[0], rs.Cells[3]} {
		want := perCell(t, cell.Params, sc, plan.Dist, 1)
		if field, ok := analysesEqual(cell.Analysis, want, 1e-12); !ok {
			t.Errorf("cell %v: %s differs from per-cell path beyond 1e-12", cell.Params, field)
		}
	}
}
