package sweep

import (
	"math"
	"reflect"
	"testing"

	"targetedattacks/internal/core"
)

func TestParseInts(t *testing.T) {
	tests := []struct {
		in   string
		want []int
	}{
		{"7", []int{7}},
		{"7,9,12", []int{7, 9, 12}},
		{" 7 , 9 ", []int{7, 9}},
		{"4:8", []int{4, 5, 6, 7, 8}},
		{"10:50:10", []int{10, 20, 30, 40, 50}},
		{"3:3", []int{3}},
	}
	for _, tt := range tests {
		got, err := ParseInts(tt.in)
		if err != nil {
			t.Errorf("ParseInts(%q): %v", tt.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("ParseInts(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	for _, bad := range []string{"", "x", "1,x", "5:1", "1:5:0", "1:2:3:4", "1,2:3"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q): want error", bad)
		}
	}
}

// TestParseIntsBoundsHostileRanges: axis expressions arrive straight
// from HTTP requests, so oversized and overflow-adjacent ranges must be
// rejected before any allocation — and must terminate.
func TestParseIntsBoundsHostileRanges(t *testing.T) {
	for _, bad := range []string{
		"1:4000000000",                               // ~4e9 values
		"0:9223372036854775807",                      // MaxInt64 endpoint (v += step would wrap)
		"-9223372036854775808:9223372036854775807:2", // full int range
	} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q): want size-limit error", bad)
		}
	}
	// Extreme endpoints are fine when the expansion stays small.
	got, err := ParseInts("9223372036854775805:9223372036854775807")
	if err != nil || len(got) != 3 || got[2] != 9223372036854775807 {
		t.Errorf("near-MaxInt range = %v, %v", got, err)
	}
}

func TestParseFloatsBoundsHostileRanges(t *testing.T) {
	for _, bad := range []string{
		"0:1:1e-300", // denormal step: ~1e300 values
		"0:1e300:1",
		"0:inf:1",
		"0:1:nan",
	} {
		if _, err := ParseFloats(bad); err == nil {
			t.Errorf("ParseFloats(%q): want error", bad)
		}
	}
}

// TestPlanSizeSaturates: six large axes must not wrap the cell count
// into something small enough to slip past a caller's limit check.
func TestPlanSizeSaturates(t *testing.T) {
	big := make([]int, 100_000)
	bigF := make([]float64, 100_000)
	pl := Plan{C: big, Delta: big, K: big, Mu: bigF, D: bigF, Nu: bigF}
	if pl.Size() != math.MaxInt {
		t.Errorf("Size = %d, want saturation at MaxInt", pl.Size())
	}
	if err := pl.Validate(); err == nil {
		t.Error("overflowing plan must fail validation")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats("0.1,0.2,0.5")
	if err != nil || !reflect.DeepEqual(got, []float64{0.1, 0.2, 0.5}) {
		t.Errorf("list parse = %v, %v", got, err)
	}
	got, err = ParseFloats("0.5:0.9:0.1")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	if len(got) != len(want) {
		t.Fatalf("range parse = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("range point %d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "x", "0.1,y", "0.9:0.1:0.1", "0.1:0.9:0", "0.1:0.9", "0.1:0.2:0.05:1", "nan", "0.1,inf"} {
		if _, err := ParseFloats(bad); err == nil {
			t.Errorf("ParseFloats(%q): want error", bad)
		}
	}
	// The endpoint slack absorbs accumulation error only — it must
	// never emit a point beyond hi.
	for in, wantLen := range map[string]int{"0.8:1:0.3": 1, "0:1:2": 1, "0:1:0.5": 3} {
		got, err := ParseFloats(in)
		if err != nil || len(got) != wantLen {
			t.Errorf("ParseFloats(%q) = %v, %v; want %d points", in, got, err, wantLen)
		}
		for _, v := range got {
			if v > 1 {
				t.Errorf("ParseFloats(%q) emitted %v past the endpoint", in, v)
			}
		}
	}
}

func TestPlanCellsOrderAndSize(t *testing.T) {
	pl := Plan{
		C: []int{7}, Delta: []int{7}, K: []int{1, 2},
		Mu: []float64{0.1}, D: []float64{0.5, 0.9}, Nu: []float64{0.1},
	}
	if pl.Size() != 4 {
		t.Fatalf("Size = %d, want 4", pl.Size())
	}
	cells := pl.Cells()
	want := []core.Params{
		{C: 7, Delta: 7, K: 1, Mu: 0.1, D: 0.5, Nu: 0.1},
		{C: 7, Delta: 7, K: 1, Mu: 0.1, D: 0.9, Nu: 0.1},
		{C: 7, Delta: 7, K: 2, Mu: 0.1, D: 0.5, Nu: 0.1},
		{C: 7, Delta: 7, K: 2, Mu: 0.1, D: 0.9, Nu: 0.1},
	}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("Cells() = %v, want %v", cells, want)
	}
	if err := pl.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPlanValidateRejects(t *testing.T) {
	empty := Plan{C: []int{7}, Delta: []int{7}, K: []int{1}, Mu: []float64{0.1}, D: []float64{0.5}}
	if err := empty.Validate(); err == nil {
		t.Error("empty ν axis must be rejected")
	}
	bad := Plan{
		C: []int{7}, Delta: []int{7}, K: []int{9}, // k > C
		Mu: []float64{0.1}, D: []float64{0.5}, Nu: []float64{0.1},
	}
	if err := bad.Validate(); err == nil {
		t.Error("invalid cell parameters must be rejected")
	}
	badDist := Plan{
		C: []int{7}, Delta: []int{7}, K: []int{1},
		Mu: []float64{0.1}, D: []float64{0.5}, Nu: []float64{0.1},
		Dist: core.InitialDistribution(42),
	}
	if err := badDist.Validate(); err == nil {
		t.Error("unknown distribution must be rejected")
	}
}
