// Package sweep evaluates parameter grids of the targeted-attack model
// with shared structure instead of per-cell rebuilds.
//
// A Plan is the cross product of axes over the model parameters
// (C, ∆, k, µ, d, ν). The evaluator groups its cells by cluster geometry
// (C, ∆): each group enumerates one state space, shares the memoized
// hypergeometric maintenance kernel, and precomputes one Rule 1 gain
// table per protocol k — the reusable row structure every cell's
// transition-matrix construction reads. On top of the shared structure,
// cells are deduplicated by effective parameters: ν enters the model
// only by thresholding the finite set of relation (2) gains, so every
// cell with equal (k, µ, d) and an equal gain cut is provably the same
// Markov chain and is evaluated once (for protocol_1 the whole ν axis
// collapses — Rule 1 never fires). Distinct chains fan out across an
// engine.Pool; results stream into a deterministic, order-independent
// result set. Every cell's Analysis is bit-identical to an independent
// core.Analyze of the same parameters.
//
// A SimPlan is the simulation-side counterpart: a strategy × µ × d ×
// population-size grid of whole-system overlay runs
// (internal/overlaynet), each cell aggregating Monte-Carlo replicas with
// per-replica PCG streams derived from the plan seed and the replica's
// global task index. EvaluateSim fans replicas across the same
// engine.Pool and reduces each cell in fixed replica order, so summaries
// are bit-identical for any worker count, streaming delivery included.
package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"targetedattacks/internal/core"
)

// Plan is a parameter grid: the cross product of one axis per model
// parameter. Cells enumerate in row-major order with C outermost and ν
// innermost; cell indices are stable for a given plan.
type Plan struct {
	// C, Delta and K are the integer axes (cluster geometry and protocol).
	C, Delta, K []int
	// Mu, D and Nu are the attack/churn axes.
	Mu, D, Nu []float64
	// Dist selects the initial distribution applied to every cell.
	Dist core.InitialDistribution
	// Sojourns is the number of successive sojourn expectations computed
	// per cell; values < 1 mean 1.
	Sojourns int
}

// Size returns the number of cells of the grid, saturating at MaxInt
// when the axis product overflows (Validate rejects such plans).
func (pl Plan) Size() int {
	size := 1
	for _, n := range []int{len(pl.C), len(pl.Delta), len(pl.K), len(pl.Mu), len(pl.D), len(pl.Nu)} {
		if n == 0 {
			return 0
		}
		if size > math.MaxInt/n {
			return math.MaxInt
		}
		size *= n
	}
	return size
}

// Validate checks that every axis is non-empty, the grid size does not
// overflow, and every cell's parameters pass core validation.
func (pl Plan) Validate() error {
	if pl.Size() == 0 {
		return fmt.Errorf("sweep: every axis needs at least one value (|C|=%d |∆|=%d |k|=%d |µ|=%d |d|=%d |ν|=%d)",
			len(pl.C), len(pl.Delta), len(pl.K), len(pl.Mu), len(pl.D), len(pl.Nu))
	}
	if pl.Size() == math.MaxInt {
		return fmt.Errorf("sweep: axis product overflows the grid size")
	}
	if pl.Dist != core.DistributionDelta && pl.Dist != core.DistributionBeta {
		return fmt.Errorf("sweep: unknown initial distribution %d", int(pl.Dist))
	}
	for name, axis := range map[string][]float64{"µ": pl.Mu, "d": pl.D, "ν": pl.Nu} {
		for _, v := range axis {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// core's interval checks cannot reject NaN (it fails
				// neither bound), so it is caught here.
				return fmt.Errorf("sweep: non-finite value %v on the %s axis", v, name)
			}
		}
	}
	for _, p := range pl.Cells() {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("sweep: cell %v: %w", p, err)
		}
	}
	return nil
}

// Cells enumerates every cell's parameters in index order.
func (pl Plan) Cells() []core.Params {
	out := make([]core.Params, 0, pl.Size())
	for _, c := range pl.C {
		for _, delta := range pl.Delta {
			for _, k := range pl.K {
				for _, mu := range pl.Mu {
					for _, d := range pl.D {
						for _, nu := range pl.Nu {
							out = append(out, core.Params{C: c, Delta: delta, K: k, Mu: mu, D: d, Nu: nu})
						}
					}
				}
			}
		}
	}
	return out
}

// sojourns returns the effective sojourn count.
func (pl Plan) sojourns() int {
	if pl.Sojourns < 1 {
		return 1
	}
	return pl.Sojourns
}

// String renders the plan compactly.
func (pl Plan) String() string {
	return fmt.Sprintf("sweep(C=%v ∆=%v k=%v µ=%v d=%v ν=%v α=%v sojourns=%d: %d cells)",
		pl.C, pl.Delta, pl.K, pl.Mu, pl.D, pl.Nu, pl.Dist, pl.sojourns(), pl.Size())
}

// MaxAxisPoints bounds the number of values a single axis expression
// may expand to. Axis expressions reach the parsers straight from
// untrusted HTTP requests, so the bound must hold before any
// allocation: a range like "1:4000000000" is rejected, not expanded.
const MaxAxisPoints = 100_000

// ParseInts parses an integer axis: a comma-separated list ("7,9,12") or
// an inclusive lo:hi[:step] range ("4:8" is 4,5,6,7,8; "10:50:10" is
// 10,20,30,40,50). An axis may expand to at most MaxAxisPoints values.
func ParseInts(s string) ([]int, error) {
	parts, isRange, err := splitAxis(s)
	if err != nil {
		return nil, err
	}
	if isRange {
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		step := 1
		var err3 error
		if len(parts) == 3 {
			step, err3 = strconv.Atoi(parts[2])
		}
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("sweep: bad integer range %q", s)
		}
		if step < 1 {
			return nil, fmt.Errorf("sweep: range %q needs a positive step", s)
		}
		if hi < lo {
			return nil, fmt.Errorf("sweep: range %q is empty (hi < lo)", s)
		}
		// Size the range in uint64 (hi−lo cannot overflow there for
		// hi ≥ lo) before allocating anything.
		count := (uint64(hi)-uint64(lo))/uint64(step) + 1
		if count > MaxAxisPoints {
			return nil, fmt.Errorf("sweep: range %q expands to %d values, limit is %d", s, count, MaxAxisPoints)
		}
		out := make([]int, 0, count)
		// Advance incrementally: v never exceeds hi, so the addition
		// cannot overflow even for ranges near the int extremes.
		for v, i := lo, uint64(0); ; v, i = v+step, i+1 {
			out = append(out, v)
			if i+1 == count {
				break
			}
		}
		return out, nil
	}
	if len(parts) > MaxAxisPoints {
		return nil, fmt.Errorf("sweep: axis %q lists %d values, limit is %d", s, len(parts), MaxAxisPoints)
	}
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad integer %q in axis %q", p, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a float axis: a comma-separated list
// ("0.1,0.2,0.5") or an inclusive lo:hi:step range ("0.5:0.9:0.1").
// Range points are computed as lo + i·step to keep them exactly
// reproducible; the endpoint is included with a hair of floating slack
// (step·1e-9 — enough to absorb accumulation error, never enough to
// emit a point past hi). An axis may expand to at most MaxAxisPoints
// values (so a denormal step cannot expand into an allocation bomb).
func ParseFloats(s string) ([]float64, error) {
	parts, isRange, err := splitAxis(s)
	if err != nil {
		return nil, err
	}
	if isRange {
		if len(parts) != 3 {
			return nil, fmt.Errorf("sweep: float range %q needs lo:hi:step", s)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		step, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("sweep: bad float range %q", s)
		}
		if step <= 0 || math.IsInf(step, 0) || math.IsNaN(step) ||
			math.IsInf(lo, 0) || math.IsNaN(lo) || math.IsInf(hi, 0) || math.IsNaN(hi) {
			return nil, fmt.Errorf("sweep: range %q needs finite bounds and a positive step", s)
		}
		if hi < lo {
			return nil, fmt.Errorf("sweep: range %q is empty (hi < lo)", s)
		}
		var out []float64
		for i := 0; ; i++ {
			v := lo + float64(i)*step
			if v > hi+step*1e-9 {
				break
			}
			if len(out) >= MaxAxisPoints {
				return nil, fmt.Errorf("sweep: range %q expands past %d values", s, MaxAxisPoints)
			}
			out = append(out, v)
		}
		return out, nil
	}
	if len(parts) > MaxAxisPoints {
		return nil, fmt.Errorf("sweep: axis %q lists %d values, limit is %d", s, len(parts), MaxAxisPoints)
	}
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			// NaN passes every interval check downstream (it fails
			// neither v < lo nor v > hi), so non-finite values are
			// stopped at the parse boundary.
			return nil, fmt.Errorf("sweep: bad float %q in axis %q", p, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// splitAxis splits an axis expression into its parts and reports whether
// it uses the colon range syntax.
func splitAxis(s string) ([]string, bool, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, false, fmt.Errorf("sweep: empty axis")
	}
	if strings.Contains(s, ":") {
		if strings.Contains(s, ",") {
			return nil, false, fmt.Errorf("sweep: axis %q mixes list and range syntax", s)
		}
		parts := strings.Split(s, ":")
		if len(parts) != 2 && len(parts) != 3 {
			return nil, false, fmt.Errorf("sweep: range %q needs lo:hi or lo:hi:step", s)
		}
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts, true, nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf("sweep: empty axis %q", s)
	}
	return out, false, nil
}
