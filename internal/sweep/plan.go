// Package sweep evaluates parameter grids of the targeted-attack model
// with shared structure instead of per-cell rebuilds.
//
// A Plan is the cross product of axes over the model parameters
// (C, ∆, k, µ, d, ν). The evaluator groups its cells by cluster geometry
// (C, ∆): each group enumerates one state space, shares the memoized
// hypergeometric maintenance kernel, and precomputes one Rule 1 gain
// table per protocol k — the reusable row structure every cell's
// transition-matrix construction reads. On top of the shared structure,
// cells are deduplicated by effective parameters: ν enters the model
// only by thresholding the finite set of relation (2) gains, so every
// cell with equal (k, µ, d) and an equal gain cut is provably the same
// Markov chain and is evaluated once (for protocol_1 the whole ν axis
// collapses — Rule 1 never fires). Distinct chains fan out across an
// engine.Pool; results stream into a deterministic, order-independent
// result set. Every cell's Analysis is bit-identical to an independent
// core.Analyze of the same parameters.
//
// A SimPlan is the simulation-side counterpart: a strategy × µ × d ×
// population-size grid of whole-system overlay runs
// (internal/overlaynet), each cell aggregating Monte-Carlo replicas with
// per-replica PCG streams derived from the plan seed and the replica's
// global task index. EvaluateSim fans replicas across the same
// engine.Pool and reduces each cell in fixed replica order, so summaries
// are bit-identical for any worker count, streaming delivery included.
package sweep

import (
	"fmt"
	"math"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/core"
)

// Plan is a parameter grid: the cross product of one axis per model
// parameter. Cells enumerate in row-major order with C outermost and ν
// innermost; cell indices are stable for a given plan.
type Plan struct {
	// C, Delta and K are the integer axes (cluster geometry and protocol).
	C, Delta, K []int
	// Mu, D and Nu are the attack/churn axes.
	Mu, D, Nu []float64
	// Dist selects the initial distribution applied to every cell.
	Dist core.InitialDistribution
	// Sojourns is the number of successive sojourn expectations computed
	// per cell; values < 1 mean 1.
	Sojourns int
}

// Size returns the number of cells of the grid, saturating at MaxInt
// when the axis product overflows (Validate rejects such plans).
func (pl Plan) Size() int {
	size := 1
	for _, n := range []int{len(pl.C), len(pl.Delta), len(pl.K), len(pl.Mu), len(pl.D), len(pl.Nu)} {
		if n == 0 {
			return 0
		}
		if size > math.MaxInt/n {
			return math.MaxInt
		}
		size *= n
	}
	return size
}

// Validate checks that every axis is non-empty, the grid size does not
// overflow, and every cell's parameters pass core validation.
func (pl Plan) Validate() error {
	if pl.Size() == 0 {
		return fmt.Errorf("sweep: every axis needs at least one value (|C|=%d |∆|=%d |k|=%d |µ|=%d |d|=%d |ν|=%d)",
			len(pl.C), len(pl.Delta), len(pl.K), len(pl.Mu), len(pl.D), len(pl.Nu))
	}
	if pl.Size() == math.MaxInt {
		return fmt.Errorf("sweep: axis product overflows the grid size")
	}
	if pl.Dist != core.DistributionDelta && pl.Dist != core.DistributionBeta {
		return fmt.Errorf("sweep: unknown initial distribution %d", int(pl.Dist))
	}
	for name, axis := range map[string][]float64{"µ": pl.Mu, "d": pl.D, "ν": pl.Nu} {
		for _, v := range axis {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// core's interval checks cannot reject NaN (it fails
				// neither bound), so it is caught here.
				return fmt.Errorf("sweep: non-finite value %v on the %s axis", v, name)
			}
		}
	}
	for _, p := range pl.Cells() {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("sweep: cell %v: %w", p, err)
		}
	}
	return nil
}

// Cells enumerates every cell's parameters in index order.
func (pl Plan) Cells() []core.Params {
	out := make([]core.Params, 0, pl.Size())
	for _, c := range pl.C {
		for _, delta := range pl.Delta {
			for _, k := range pl.K {
				for _, mu := range pl.Mu {
					for _, d := range pl.D {
						for _, nu := range pl.Nu {
							out = append(out, core.Params{C: c, Delta: delta, K: k, Mu: mu, D: d, Nu: nu})
						}
					}
				}
			}
		}
	}
	return out
}

// sojourns returns the effective sojourn count.
func (pl Plan) sojourns() int {
	if pl.Sojourns < 1 {
		return 1
	}
	return pl.Sojourns
}

// String renders the plan compactly.
func (pl Plan) String() string {
	return fmt.Sprintf("sweep(C=%v ∆=%v k=%v µ=%v d=%v ν=%v α=%v sojourns=%d: %d cells)",
		pl.C, pl.Delta, pl.K, pl.Mu, pl.D, pl.Nu, pl.Dist, pl.sojourns(), pl.Size())
}

// MaxAxisPoints bounds the number of values a single axis expression
// may expand to (see chainmodel.MaxAxisPoints, where the parsers live).
const MaxAxisPoints = chainmodel.MaxAxisPoints

// ParseInts parses an integer axis: a comma-separated list ("7,9,12") or
// an inclusive lo:hi[:step] range ("4:8" is 4,5,6,7,8; "10:50:10" is
// 10,20,30,40,50). An axis may expand to at most MaxAxisPoints values.
func ParseInts(s string) ([]int, error) { return chainmodel.ParseInts(s) }

// ParseFloats parses a float axis: a comma-separated list
// ("0.1,0.2,0.5") or an inclusive lo:hi:step range ("0.5:0.9:0.1").
// Range points are computed as lo + i·step to keep them exactly
// reproducible. An axis may expand to at most MaxAxisPoints values.
func ParseFloats(s string) ([]float64, error) { return chainmodel.ParseFloats(s) }
