package experiments

import (
	"bytes"
	"context"
	"testing"

	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// envScenarioContract describes how each registered scenario must react
// to the shared Env: whether it routes its analytics through Env.Solver
// (a bogus solver kind must then fail it), and — for all of them —
// that pool width and a dedicated build pool never change the rendered
// artifacts.
var envScenarioContract = map[string]struct {
	usesSolver bool
}{
	"fig1":     {usesSolver: false}, // census only, nothing to solve
	"fig2":     {usesSolver: false}, // builds matrices, never factors them
	"fig3":     {usesSolver: true},
	"table1":   {usesSolver: true},
	"table2":   {usesSolver: true},
	"fig4":     {usesSolver: true},
	"fig5":     {usesSolver: true},
	"ablk":     {usesSolver: true},
	"ablnu":    {usesSolver: true},
	"mc":       {usesSolver: true},
	"sys":      {usesSolver: false}, // agent-based simulation, no closed forms
	"lookup":   {usesSolver: false}, // DES lookup trials, no closed forms
	"nusweep":  {usesSolver: true},
	"stress9":  {usesSolver: true},
	"large":    {usesSolver: true},
	"huge":     {usesSolver: true},
	"colossal": {usesSolver: true},
	"apt":      {usesSolver: true},
	"swarm":    {usesSolver: true}, // cross-validation solves the analytic chain
}

// TestRegistryCoveredByEnvContract keeps the table in lockstep with the
// registry.
func TestRegistryCoveredByEnvContract(t *testing.T) {
	for _, key := range Keys() {
		if _, ok := envScenarioContract[key]; !ok {
			t.Errorf("scenario %q missing from the env contract table", key)
		}
	}
	for key := range envScenarioContract {
		if _, ok := Find(key); !ok {
			t.Errorf("env contract names unknown scenario %q", key)
		}
	}
}

// TestEveryScenarioHonorsSolver: scenarios that solve closed forms must
// route Env.Solver to every model they build — an invalid backend has
// to fail them, and has to be ignored by the purely structural or
// simulation-only ones.
func TestEveryScenarioHonorsSolver(t *testing.T) {
	env := Env{
		Pool:   engine.New(2),
		Seed:   1,
		Quick:  true,
		Solver: matrix.SolverConfig{Kind: "no-such-backend"},
	}
	for key, want := range envScenarioContract {
		s, ok := Find(key)
		if !ok {
			t.Fatalf("scenario %q not registered", key)
		}
		_, err := s.Run(context.Background(), env)
		if want.usesSolver && err == nil {
			t.Errorf("%s: ran to completion with a bogus Env.Solver — the solver is not plumbed through", key)
		}
		if !want.usesSolver && err != nil {
			t.Errorf("%s: failed under a bogus Env.Solver it should never consult: %v", key, err)
		}
	}
}

// TestEveryScenarioDeterministicAcrossPools: for every registered
// scenario, a wide pool plus a dedicated build pool must render the
// exact artifacts of a serial run — the worker plumbing may change
// speed, never output.
func TestEveryScenarioDeterministicAcrossPools(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry double run skipped in -short mode")
	}
	render := func(env Env, key string) string {
		s, ok := Find(key)
		if !ok {
			t.Fatalf("scenario %q not registered", key)
		}
		arts, err := s.Run(context.Background(), env)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		var buf bytes.Buffer
		for _, a := range arts {
			if err := a.Text(&buf); err != nil {
				t.Fatalf("%s: rendering: %v", key, err)
			}
		}
		return buf.String()
	}
	for key := range envScenarioContract {
		serial := render(Env{Pool: engine.New(1), Seed: 7, Quick: true}, key)
		wide := render(Env{
			Pool:      engine.New(6),
			BuildPool: engine.New(3),
			Seed:      7,
			Quick:     true,
		}, key)
		if serial != wide {
			t.Errorf("%s: artifacts differ between serial and wide-pool runs", key)
		}
	}
}
