package experiments

import (
	"context"
	"fmt"

	"targetedattacks/internal/combin"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/overlay"
)

// baseParams returns the paper's evaluation configuration: C = 7, ∆ = 7.
func baseParams() core.Params {
	return core.Params{C: 7, Delta: 7, Mu: 0, D: 0, K: 1, Nu: 0.1}
}

// Figure1 regenerates the state-space census behind the paper's Figure 1:
// the partition of Ω into S, P and the closed classes, with the paper's
// 288-state total for C = ∆ = 7.
func Figure1(c, delta int) (*Table, error) {
	sp, err := core.NewSpace(c, delta)
	if err != nil {
		return nil, err
	}
	census := sp.Census()
	t := &Table{
		Title:   fmt.Sprintf("Figure 1 — partition of Ω for C=%d, ∆=%d (|Ω|=%d)", c, delta, sp.Size()),
		Columns: []string{"class", "paper notation", "states"},
		Note:    "paper caption: for C = 7 and ∆ = 7, 288 states",
	}
	rows := []struct {
		cl   core.Class
		name string
	}{
		{core.ClassSafe, "S (transient safe)"},
		{core.ClassPolluted, "P (transient polluted)"},
		{core.ClassSafeMerge, "A^m_S (safe merge)"},
		{core.ClassSafeSplit, "A^l_S (safe split)"},
		{core.ClassPollutedMerge, "A^m_P (polluted merge)"},
		{core.ClassPollutedSplit, "A^l_P (unreachable)"},
	}
	for _, r := range rows {
		if err := t.AddRow(r.cl.String(), r.name, fmt.Sprintf("%d", census[r.cl])); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Figure2Config parameterizes Figure 2.
type Figure2Config struct {
	// Ks are the protocols whose matrices are constructed.
	Ks []int
	// BuildPool fans each matrix's row construction across workers; nil
	// builds rows serially. Output is bit-identical for any width.
	BuildPool *engine.Pool
}

// DefaultFigure2Config constructs every protocol_k matrix of the paper's
// configuration.
func DefaultFigure2Config() Figure2Config {
	return Figure2Config{Ks: []int{1, 2, 3, 4, 5, 6, 7}}
}

// Figure2 regenerates the object depicted by the paper's Figure 2: the
// transition matrix M itself. It reports, per protocol_k, the matrix
// dimensions, the number of non-zero transitions and the worst row-sum
// deviation from stochasticity; the per-k constructions fan out across
// the pool.
func Figure2(ctx context.Context, pool *engine.Pool, cfg Figure2Config) (*Table, error) {
	if len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: Figure2 needs non-empty Ks")
	}
	t := &Table{
		Title:   "Figure 2 — transition matrix construction (C=7, ∆=7, µ=20%, d=90%)",
		Columns: []string{"protocol", "states", "transitions", "max |row sum − 1|"},
	}
	if err := gridRows(ctx, pool, t, len(cfg.Ks), func(i int) ([][]string, error) {
		k := cfg.Ks[i]
		p := baseParams()
		p.Mu, p.D, p.K = 0.20, 0.90, k
		m, sp, err := core.BuildTransitionMatrix(p, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		var worst float64
		for _, s := range m.RowSums() {
			if dev := abs(s - 1); dev > worst {
				worst = dev
			}
		}
		return [][]string{{
			fmt.Sprintf("protocol_%d", k),
			fmt.Sprintf("%d", sp.Size()),
			fmt.Sprintf("%d", m.NNZ()),
			fmt.Sprintf("%.2e", worst),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Figure3Config parameterizes Figure 3.
type Figure3Config struct {
	// Mus are the adversary fractions on the x-axis (paper: 0…30% by 5%).
	Mus []float64
	// Ds are the survival probabilities (paper: 0, 30%, 80%, 90%).
	Ds []float64
	// Ks are the protocols (paper: 1 and C = 7).
	Ks []int
	// Distributions are the initial distributions (paper: δ and β).
	Distributions []core.InitialDistribution
	// Solver selects the analytic linear-solver backend; the zero value
	// is the paper-exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans each cell's matrix construction; nil builds rows
	// serially.
	BuildPool *engine.Pool
}

// DefaultFigure3Config reproduces the paper's four panels.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		Mus:           []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30},
		Ds:            []float64{0, 0.30, 0.80, 0.90},
		Ks:            []int{1, 7},
		Distributions: []core.InitialDistribution{core.DistributionDelta, core.DistributionBeta},
	}
}

// figure3Point is one cell of the Figure 3 grid.
type figure3Point struct {
	k    int
	dist core.InitialDistribution
	d    float64
	mu   float64
}

// Figure3 regenerates the paper's Figure 3: the expected number of events
// spent in safe and polluted transient states before absorption,
// E(T_S^k) and E(T_P^k), as a function of µ, d, k and α. Every grid point
// builds and solves its own model, so the sweep fans out across the pool.
func Figure3(ctx context.Context, pool *engine.Pool, cfg Figure3Config) (*Table, error) {
	t := &Table{
		Title: "Figure 3 — E(T_S^k) and E(T_P^k) before absorption (C=7, ∆=7)",
		Columns: []string{
			"protocol", "alpha", "d", "mu", "E(T_S)", "E(T_P)",
		},
		Note: "paper panels: protocol_1/protocol_7 × α∈{δ,β}; bars E(T_S) hatched, E(T_P) plain",
	}
	var points []figure3Point
	for _, k := range cfg.Ks {
		for _, dist := range cfg.Distributions {
			for _, d := range cfg.Ds {
				for _, mu := range cfg.Mus {
					points = append(points, figure3Point{k, dist, d, mu})
				}
			}
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		p := baseParams()
		p.Mu, p.D, p.K = pt.mu, pt.d, pt.k
		m, err := core.NewWithSolver(p, cfg.Solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		a, err := m.AnalyzeNamed(pt.dist, 1)
		if err != nil {
			return nil, err
		}
		return [][]string{{
			fmt.Sprintf("protocol_%d", pt.k),
			pt.dist.String(),
			fmtPercent(pt.d),
			fmtPercent(pt.mu),
			fmtFloat(a.ExpectedSafeTime),
			fmtFloat(a.ExpectedPollutedTime),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// Figure4Config parameterizes Figure 4.
type Figure4Config struct {
	Mus           []float64
	Ds            []float64
	Distributions []core.InitialDistribution
	// Solver selects the analytic linear-solver backend; the zero value
	// is the paper-exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans each cell's matrix construction; nil builds rows
	// serially.
	BuildPool *engine.Pool
}

// DefaultFigure4Config reproduces the paper's two panels (k = 1).
func DefaultFigure4Config() Figure4Config {
	return Figure4Config{
		Mus:           []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30},
		Ds:            []float64{0, 0.30, 0.80, 0.90},
		Distributions: []core.InitialDistribution{core.DistributionDelta, core.DistributionBeta},
	}
}

// Figure4 regenerates the paper's Figure 4: absorption probabilities
// p(A^m_S), p(A^ℓ_S), p(A^m_P) as a function of µ and d for protocol_1,
// with the (α, d, µ) grid fanned across the pool.
func Figure4(ctx context.Context, pool *engine.Pool, cfg Figure4Config) (*Table, error) {
	t := &Table{
		Title: "Figure 4 — absorption probabilities (k=1, C=7, ∆=7)",
		Columns: []string{
			"alpha", "d", "mu", "p(safe-merge)", "p(safe-split)", "p(polluted-merge)", "p(polluted-split)",
		},
		Note: "paper: µ=0 gives 0.57/0.43; p(polluted-merge) < 8% even at µ=30%, d=90%",
	}
	type point struct {
		dist core.InitialDistribution
		d    float64
		mu   float64
	}
	var points []point
	for _, dist := range cfg.Distributions {
		for _, d := range cfg.Ds {
			for _, mu := range cfg.Mus {
				points = append(points, point{dist, d, mu})
			}
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		p := baseParams()
		p.Mu, p.D = pt.mu, pt.d
		m, err := core.NewWithSolver(p, cfg.Solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		a, err := m.AnalyzeNamed(pt.dist, 1)
		if err != nil {
			return nil, err
		}
		return [][]string{{
			pt.dist.String(),
			fmtPercent(pt.d),
			fmtPercent(pt.mu),
			fmtFloat(a.Absorption[core.ClassNameSafeMerge]),
			fmtFloat(a.Absorption[core.ClassNameSafeSplit]),
			fmtFloat(a.Absorption[core.ClassNamePollutedMerge]),
			fmtFloat(a.Absorption[core.ClassNamePollutedSplit]),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// Figure5Config parameterizes Figure 5.
type Figure5Config struct {
	// Ns are the overlay sizes (paper: 500 and 1500 clusters).
	Ns []int
	// Ds are the survival probabilities (paper: 30% and 90%).
	Ds []float64
	// Mu is the adversary fraction. The paper does not print it; 25%
	// reproduces the "less than 2.2%" polluted-proportion ceiling stated
	// in Section VIII (see EXPERIMENTS.md).
	Mu float64
	// MaxEvents is the x-axis range (paper: 100000).
	MaxEvents int
	// Samples is the number of plotted points per curve.
	Samples int
	// Solver selects the analytic linear-solver backend of the
	// underlying models; the zero value is the paper-exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans each model's matrix construction; nil builds rows
	// serially.
	BuildPool *engine.Pool
}

// DefaultFigure5Config reproduces the paper's two panels.
func DefaultFigure5Config() Figure5Config {
	return Figure5Config{
		Ns:        []int{500, 1500},
		Ds:        []float64{0.30, 0.90},
		Mu:        0.25,
		MaxEvents: 100000,
		Samples:   50,
	}
}

// figure5Curve is the computed pair of series for one (n, d) combination.
type figure5Curve struct {
	name   string
	xs, ys []float64
	yp     []float64
}

// Figure5 regenerates the paper's Figure 5: the expected proportions
// E(N_S(m))/n (left panel) and E(N_P(m))/n (right panel) of safe and
// polluted clusters after m overlay events (Theorem 2). Each (n, d) curve
// is an independent matrix-power series, computed in parallel.
func Figure5(ctx context.Context, pool *engine.Pool, cfg Figure5Config) (safe, polluted *Figure, err error) {
	if cfg.MaxEvents < 1 || cfg.Samples < 1 {
		return nil, nil, fmt.Errorf("experiments: Figure5 needs positive MaxEvents and Samples")
	}
	safe = &Figure{
		Title:  "Figure 5 (left) — E(N_S(m))/n",
		XLabel: "m = number of events",
		YLabel: "expected proportion of safe clusters",
	}
	polluted = &Figure{
		Title:  "Figure 5 (right) — E(N_P(m))/n",
		XLabel: "m = number of events",
		YLabel: "expected proportion of polluted clusters",
		Note:   "paper (Section VIII): stays below 2.2% for d=90%",
	}
	type combo struct {
		n int
		d float64
	}
	var combos []combo
	for _, n := range cfg.Ns {
		for _, d := range cfg.Ds {
			combos = append(combos, combo{n, d})
		}
	}
	curves := make([]figure5Curve, len(combos))
	err = engine.Ensure(pool).Run(ctx, len(combos), func(i int) error {
		cb := combos[i]
		p := baseParams()
		p.Mu, p.D = cfg.Mu, cb.d
		m, err := core.NewWithSolver(p, cfg.Solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return err
		}
		cc, err := overlay.New(m, cb.n)
		if err != nil {
			return err
		}
		pts, err := cc.ProportionSeries(m.InitialDelta(), cfg.MaxEvents, cfg.Samples)
		if err != nil {
			return err
		}
		lifetime, err := combin.LifetimeFromSurvival(cb.d)
		if err != nil {
			return err
		}
		curve := figure5Curve{
			name: fmt.Sprintf("n=%d d=%g%% (L=%.2f)", cb.n, cb.d*100, lifetime),
			xs:   make([]float64, len(pts)),
			ys:   make([]float64, len(pts)),
			yp:   make([]float64, len(pts)),
		}
		for j, pt := range pts {
			curve.xs[j] = float64(pt.Events)
			curve.ys[j] = pt.Safe
			curve.yp[j] = pt.Polluted
		}
		curves[i] = curve
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, curve := range curves {
		if err := safe.AddSeries(Series{Name: curve.name, X: curve.xs, Y: curve.ys}); err != nil {
			return nil, nil, err
		}
		if err := polluted.AddSeries(Series{Name: curve.name, X: curve.xs, Y: curve.yp}); err != nil {
			return nil, nil, err
		}
	}
	return safe, polluted, nil
}
