package experiments

import (
	"context"
	"fmt"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// Table1Config parameterizes Table I.
type Table1Config struct {
	Mus []float64
	Ds  []float64
	// Solver selects the analytic linear-solver backend; the zero value
	// is the paper-exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans each cell's matrix construction; nil builds rows
	// serially.
	BuildPool *engine.Pool
}

// DefaultTable1Config reproduces the paper's Table I grid.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Mus: []float64{0, 0.10, 0.20, 0.30},
		Ds:  []float64{0.95, 0.99, 0.999},
	}
}

// Table1 regenerates the paper's Table I: E(T_S^1) and E(T_P^1) as a
// function of µ and d for k = 1, C = ∆ = 7, α = δ. The (µ, d) grid fans
// out across the pool.
func Table1(ctx context.Context, pool *engine.Pool, cfg Table1Config) (*Table, error) {
	t := &Table{
		Title:   "Table I — E(T_S^(1)) and E(T_P^(1)) vs µ and d (k=1, C=7, ∆=7, α=δ)",
		Columns: []string{"mu", "d", "E(T_S)", "E(T_P)"},
		Note: "paper prints 1518 at (µ=10%, d=0.999); computed 1.488e6 fits the " +
			"paper's own ×7e5 column growth (see EXPERIMENTS.md)",
	}
	type point struct {
		mu, d float64
	}
	var points []point
	for _, mu := range cfg.Mus {
		for _, d := range cfg.Ds {
			points = append(points, point{mu, d})
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		p := baseParams()
		p.Mu, p.D = pt.mu, pt.d
		m, err := core.NewWithSolver(p, cfg.Solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		a, err := m.AnalyzeNamed(core.DistributionDelta, 1)
		if err != nil {
			return nil, err
		}
		return [][]string{{
			fmtPercent(pt.mu),
			fmt.Sprintf("%g", pt.d),
			fmtFloat(a.ExpectedSafeTime),
			fmtFloat(a.ExpectedPollutedTime),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// Table2Config parameterizes Table II.
type Table2Config struct {
	Mus      []float64
	D        float64
	Sojourns int
	// Solver selects the analytic linear-solver backend; the zero value
	// is the paper-exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans each cell's matrix construction; nil builds rows
	// serially.
	BuildPool *engine.Pool
}

// DefaultTable2Config reproduces the paper's Table II grid.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		Mus:      []float64{0, 0.10, 0.20, 0.30},
		D:        0.90,
		Sojourns: 2,
	}
}

// Table2 regenerates the paper's Table II: the expected durations of the
// successive sojourns in S and P (k=1, C=7, ∆=7, d=90%, α=δ), one µ per
// pool task.
func Table2(ctx context.Context, pool *engine.Pool, cfg Table2Config) (*Table, error) {
	if cfg.Sojourns < 1 {
		return nil, fmt.Errorf("experiments: Table2 needs ≥ 1 sojourn, got %d", cfg.Sojourns)
	}
	cols := []string{"mu"}
	for i := 1; i <= cfg.Sojourns; i++ {
		cols = append(cols, fmt.Sprintf("E(T_S,%d)", i))
	}
	for i := 1; i <= cfg.Sojourns; i++ {
		cols = append(cols, fmt.Sprintf("E(T_P,%d)", i))
	}
	t := &Table{
		Title:   fmt.Sprintf("Table II — successive sojourns in S and P (k=1, d=%g%%, α=δ)", cfg.D*100),
		Columns: cols,
		Note: "paper prints 0.26 at (µ=20%, E(T_P,2)); computed 0.026 matches all " +
			"neighboring magnitudes (see EXPERIMENTS.md)",
	}
	if err := gridRows(ctx, pool, t, len(cfg.Mus), func(i int) ([][]string, error) {
		mu := cfg.Mus[i]
		p := baseParams()
		p.Mu, p.D = mu, cfg.D
		m, err := core.NewWithSolver(p, cfg.Solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		a, err := m.AnalyzeNamed(core.DistributionDelta, cfg.Sojourns)
		if err != nil {
			return nil, err
		}
		cells := []string{fmtPercent(mu)}
		for _, v := range a.SafeSojourns {
			cells = append(cells, fmtFloat(v))
		}
		for _, v := range a.PollutedSojourns {
			cells = append(cells, fmtFloat(v))
		}
		return [][]string{cells}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}
