package experiments

import (
	"context"

	"targetedattacks/internal/engine"
)

// gridRows evaluates n independent blocks of table rows across the pool
// (nil means serial) and appends them to t in block order, so a parallel
// sweep renders identically to the serial loop it replaced. Block i must
// derive everything it needs from i alone.
func gridRows(ctx context.Context, pool *engine.Pool, t *Table, n int, f func(i int) ([][]string, error)) error {
	blocks := make([][][]string, n)
	err := engine.Ensure(pool).Run(ctx, n, func(i int) error {
		rows, err := f(i)
		if err != nil {
			return err
		}
		blocks[i] = rows
		return nil
	})
	if err != nil {
		return err
	}
	for _, block := range blocks {
		for _, row := range block {
			if err := t.AddRow(row...); err != nil {
				return err
			}
		}
	}
	return nil
}
