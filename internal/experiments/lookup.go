package experiments

import (
	"context"
	"fmt"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/overlaynet"
)

// LookupConfig parameterizes the lookup-availability experiment (A5).
type LookupConfig struct {
	Mus []float64
	Ds  []float64
	// Events of churn before measuring.
	Events int
	// Trials per measurement.
	Trials int
	// Redundancy is the number of independent entry points for the
	// redundant-routing column.
	Redundancy int
	// InitialLabelBits sizes the overlay.
	InitialLabelBits int
	Seed             int64
}

// DefaultLookupConfig measures availability after 10000 events.
func DefaultLookupConfig() LookupConfig {
	return LookupConfig{
		Mus:              []float64{0, 0.10, 0.20, 0.30},
		Ds:               []float64{0.50, 0.90},
		Events:           10000,
		Trials:           400,
		Redundancy:       4,
		InitialLabelBits: 3,
		Seed:             3,
	}
}

// Lookup measures end-to-end lookup availability over the live overlay:
// the fraction of random (source, key) lookups delivered despite polluted
// clusters dropping requests they own or transit (the paper's motivating
// attack: "preventing data indexed at targeted nodes from being
// discovered"), with and without redundant routing (the Castro et al.
// defense the paper cites as complementary). Each (µ, d) cell churns and
// measures its own overlay, fanned across the pool.
func Lookup(ctx context.Context, pool *engine.Pool, cfg LookupConfig) (*Table, error) {
	if cfg.Events < 0 || cfg.Trials < 1 || cfg.Redundancy < 1 {
		return nil, fmt.Errorf("experiments: Lookup needs Events ≥ 0, Trials ≥ 1, Redundancy ≥ 1")
	}
	t := &Table{
		Title: "Lookup A5 — availability under targeted attack",
		Columns: []string{
			"mu", "d", "polluted frac", "single-path avail",
			fmt.Sprintf("redundant(%d) avail", cfg.Redundancy),
		},
		Note: "polluted clusters drop lookups they own or transit; redundancy " +
			"removes the transit losses, the responsible cluster remains the residual",
	}
	type point struct {
		mu, d float64
	}
	var points []point
	for _, mu := range cfg.Mus {
		for _, d := range cfg.Ds {
			points = append(points, point{mu, d})
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		net, err := overlaynet.New(overlaynet.Config{
			Params:               core.Params{C: 7, Delta: 7, Mu: pt.mu, D: pt.d, K: 1, Nu: 0.1},
			InitialLabelBits:     cfg.InitialLabelBits,
			StationaryPopulation: true,
			Seed:                 cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		if err := net.Run(cfg.Events); err != nil {
			return nil, err
		}
		single, err := net.LookupAvailability(cfg.Trials)
		if err != nil {
			return nil, err
		}
		redundant, err := measureRedundant(net, cfg.Trials, cfg.Redundancy)
		if err != nil {
			return nil, err
		}
		return [][]string{{
			fmtPercent(pt.mu),
			fmtPercent(pt.d),
			fmtFloat(net.Snapshot().PollutedFraction),
			fmtFloat(single),
			fmtFloat(redundant),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

func measureRedundant(net *overlaynet.Network, trials, redundancy int) (float64, error) {
	ok := 0
	for i := 0; i < trials; i++ {
		from, err := net.RandomID()
		if err != nil {
			return 0, err
		}
		key, err := net.RandomID()
		if err != nil {
			return 0, err
		}
		delivered, err := net.LookupRedundant(from, key, redundancy)
		if err != nil {
			return 0, err
		}
		if delivered {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}
