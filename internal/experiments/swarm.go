package experiments

import (
	"context"
	"fmt"
	"math"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/combin"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/overlaynet"
	"targetedattacks/internal/sweep"
)

// SwarmConfig parameterizes the million-peer simulation scenario (S6):
// a strategy × population scale grid of full-system runs, plus an
// analytic-vs-simulation cross-validation on the single-cluster
// absorption regime.
type SwarmConfig struct {
	// Sizes is the population axis of the scale grid.
	Sizes []int
	// Strategies is the adversary axis of the scale grid.
	Strategies []adversary.Strategy
	// Mu and D fix the attack parameters of the scale grid.
	Mu, D float64
	// Events is the churn events per scale-grid replica.
	Events int
	// Replicas is the Monte-Carlo replicas per scale-grid cell.
	Replicas int
	// XValMus are the attack intensities cross-validated against the
	// analytic chain.
	XValMus []float64
	// XValD is the survival probability of the cross-validation.
	XValD float64
	// XValReplicas is the number of absorption trajectories per µ.
	XValReplicas int
	// XValMaxEvents caps one absorption trajectory (StopOnAbsorption
	// normally ends runs far earlier).
	XValMaxEvents int
	// Seed roots every replica stream.
	Seed int64
	// Solver is the analytic backend of the cross-validation.
	Solver matrix.SolverConfig
	// BuildPool supplies the analytic matrix-construction workers.
	BuildPool *engine.Pool
}

// DefaultSwarmConfig scales the overlay from 10^5 to 10^6 peers and
// cross-validates two attack intensities with 200 trajectories each.
func DefaultSwarmConfig() SwarmConfig {
	return SwarmConfig{
		Sizes:         []int{100_000, 1_000_000},
		Strategies:    []adversary.Strategy{adversary.StrategyPaper, adversary.StrategyPassive},
		Mu:            0.2,
		D:             0.9,
		Events:        20_000,
		Replicas:      2,
		XValMus:       []float64{0.10, 0.20},
		XValD:         0.90,
		XValReplicas:  200,
		XValMaxEvents: 1 << 17,
		Seed:          1,
	}
}

// Swarm runs the million-peer scenario: the scale grid exercises the
// zero-allocation DES core and the interned-cluster operation path at
// 10^5..10^6 peers under different adversary strategies, and the
// cross-validation checks the simulator's absorption-time estimates
// against core.Analyze within Monte-Carlo envelopes. Artifacts carry no
// wall-clock columns, so runs render identically on any pool width.
func Swarm(ctx context.Context, pool *engine.Pool, cfg SwarmConfig) ([]Artifact, error) {
	if cfg.Events < 1 || cfg.Replicas < 1 || cfg.XValReplicas < 1 {
		return nil, fmt.Errorf("experiments: Swarm needs positive Events, Replicas and XValReplicas")
	}
	// The cross-validation's analytic side is built first: it validates
	// the solver configuration before any expensive simulation starts.
	xval, err := SwarmXVal(ctx, pool, cfg)
	if err != nil {
		return nil, err
	}
	scale, err := swarmScale(ctx, pool, cfg)
	if err != nil {
		return nil, err
	}
	return []Artifact{
		{Name: "swarm_scale", Table: scale},
		{Name: "swarm_xval", Table: xval},
	}, nil
}

// swarmScale runs the strategy × size grid through the simulation-sweep
// evaluator.
func swarmScale(ctx context.Context, pool *engine.Pool, cfg SwarmConfig) (*Table, error) {
	plan := sweep.SimPlan{
		Strategies:   cfg.Strategies,
		Mu:           []float64{cfg.Mu},
		D:            []float64{cfg.D},
		Sizes:        cfg.Sizes,
		Params:       core.Params{C: 7, Delta: 7, K: 1, Nu: 0.1},
		Events:       cfg.Events,
		Replicas:     cfg.Replicas,
		Seed:         cfg.Seed,
		Mode:         overlaynet.ModelFidelity,
		Stationary:   true,
		FastIdentity: true,
	}
	rs, err := sweep.EvaluateSim(ctx, plan, sweep.SimOptions{Pool: pool})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Swarm S6 — full-system scale grid (µ=" + fmtPercent(cfg.Mu) + ", d=" + fmtPercent(cfg.D) + ")",
		Columns: []string{
			"strategy", "peers", "label bits", "events", "final peers",
			"polluted frac", "stderr", "splits", "merges",
			"rule2 discards", "refused leaves",
		},
		Note: "each cell aggregates " + fmt.Sprintf("%d", cfg.Replicas) +
			" deterministic replicas on the zero-allocation DES core; " +
			"10^6-peer rows exercise the interned-cluster operation path end to end",
	}
	for _, cell := range rs.Cells {
		sum := cell.Summary
		t.Rows = append(t.Rows, []string{
			cell.Cell.Strategy.String(),
			fmt.Sprintf("%d", cell.Cell.Size),
			fmt.Sprintf("%d", cell.Cell.LabelBits),
			fmt.Sprintf("%d", sum.Events),
			fmtFloat(sum.FinalPeers.Mean()),
			fmtFloat(sum.PollutedFraction.Mean()),
			fmtFloat(sum.PollutedFraction.StdErr()),
			fmt.Sprintf("%d", sum.Splits),
			fmt.Sprintf("%d", sum.Merges),
			fmt.Sprintf("%d", sum.DiscardedJoins),
			fmt.Sprintf("%d", sum.RefusedLeaves),
		})
	}
	return t, nil
}

// SwarmXValRow is one cross-validation point: the simulated absorption
// statistics of a single-cluster overlay next to the analytic chain's
// values under the matching initial distribution.
type SwarmXValRow struct {
	Mu       float64
	Replicas int
	// Simulated means with their Monte-Carlo standard errors.
	SimSafe, SimSafeErr float64
	SimPol, SimPolErr   float64
	SimPollutedAbs      float64
	// Analytic counterparts from core.Analyze.
	ModelSafe, ModelPol, ModelPollutedAbs float64
}

// ZSafe is the z-score of the simulated E(T_S) against the chain.
func (r SwarmXValRow) ZSafe() float64 { return zScore(r.SimSafe, r.ModelSafe, r.SimSafeErr) }

// ZPol is the z-score of the simulated E(T_P) against the chain.
func (r SwarmXValRow) ZPol() float64 { return zScore(r.SimPol, r.ModelPol, r.SimPolErr) }

// SwarmXValRows cross-validates the simulator against the analytic
// chain: single-cluster overlays (one bootstrap cluster of C + ⌊∆/2⌋
// peers) run to absorption, and the pooled chain ages are compared
// against core.Analyze under the matching initial distribution —
// s₀ = ⌊∆/2⌋ fixed by the bootstrap, x ~ Binom(C, µ) and y ~ Binom(s₀, µ)
// from the independent malicious coin of every bootstrap peer.
func SwarmXValRows(ctx context.Context, pool *engine.Pool, cfg SwarmConfig) ([]SwarmXValRow, error) {
	p := core.Params{C: 7, Delta: 7, K: 1, Nu: 0.1, D: cfg.XValD}
	rows := make([]SwarmXValRow, len(cfg.XValMus))
	for i, mu := range cfg.XValMus {
		pm := p
		pm.Mu = mu
		m, err := core.NewWithSolver(pm, cfg.Solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		alpha, err := swarmAlpha(m, pm)
		if err != nil {
			return nil, err
		}
		a, err := m.Analyze(alpha, 1)
		if err != nil {
			return nil, err
		}
		rows[i] = SwarmXValRow{
			Mu:        mu,
			ModelSafe: a.ExpectedSafeTime,
			ModelPol:  a.ExpectedPollutedTime,
			ModelPollutedAbs: a.Absorption[core.ClassNamePollutedMerge] +
				a.Absorption[core.ClassNamePollutedSplit],
		}
	}
	plan := sweep.SimPlan{
		Strategies:       []adversary.Strategy{adversary.StrategyPaper},
		Mu:               cfg.XValMus,
		D:                []float64{cfg.XValD},
		Sizes:            []int{p.C + p.Delta/2}, // one bootstrap cluster
		Params:           core.Params{C: p.C, Delta: p.Delta, K: p.K, Nu: p.Nu},
		Events:           cfg.XValMaxEvents,
		Replicas:         cfg.XValReplicas,
		Seed:             cfg.Seed + 1,
		Mode:             overlaynet.ModelFidelity,
		FastIdentity:     true,
		TrackAbsorption:  true,
		StopOnAbsorption: true,
	}
	rs, err := sweep.EvaluateSim(ctx, plan, sweep.SimOptions{Pool: pool})
	if err != nil {
		return nil, err
	}
	for i, cell := range rs.Cells {
		sum := cell.Summary
		rows[i].Replicas = sum.SafeTime.N()
		rows[i].SimSafe = sum.SafeTime.Mean()
		rows[i].SimSafeErr = sum.SafeTime.StdErr()
		rows[i].SimPol = sum.PollutedTime.Mean()
		rows[i].SimPolErr = sum.PollutedTime.StdErr()
		if abs := sum.Absorbed(); abs > 0 {
			rows[i].SimPollutedAbs = float64(sum.PollutedMerge+sum.PollutedSplit) / float64(abs)
		}
	}
	return rows, nil
}

// SwarmXVal renders the cross-validation rows; agreement is reported as
// z-scores of the simulated means inside their Monte-Carlo envelopes.
func SwarmXVal(ctx context.Context, pool *engine.Pool, cfg SwarmConfig) (*Table, error) {
	rows, err := SwarmXValRows(ctx, pool, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Swarm S6 — analytic vs simulated absorption (single cluster, d=" + fmtPercent(cfg.XValD) + ")",
		Columns: []string{
			"mu", "replicas", "sim E(T_S)", "stderr", "model E(T_S)", "z_S",
			"sim E(T_P)", "stderr", "model E(T_P)", "z_P",
			"sim P(pol abs)", "model P(pol abs)",
		},
		Note: "α matches the bootstrap: s₀=⌊∆/2⌋, x~Binom(C,µ), y~Binom(s₀,µ); " +
			"chain ages count churn events targeting the cluster; |z| ≲ 3 means " +
			"the simulator reproduces the chain within its Monte-Carlo envelope",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmtPercent(r.Mu),
			fmt.Sprintf("%d", r.Replicas),
			fmtFloat(r.SimSafe),
			fmtFloat(r.SimSafeErr),
			fmtFloat(r.ModelSafe),
			fmtFloat(r.ZSafe()),
			fmtFloat(r.SimPol),
			fmtFloat(r.SimPolErr),
			fmtFloat(r.ModelPol),
			fmtFloat(r.ZPol()),
			fmtFloat(r.SimPollutedAbs),
			fmtFloat(r.ModelPollutedAbs),
		})
	}
	return t, nil
}

// swarmAlpha is the bootstrap-matching initial distribution: the spare
// size starts at exactly ⌊∆/2⌋ (the direct bootstrap's fill), and every
// bootstrap member is malicious independently with probability µ.
func swarmAlpha(m *core.Model, p core.Params) ([]float64, error) {
	s0 := p.Delta / 2
	alpha := make([]float64, m.Space().Size())
	for x := 0; x <= p.C; x++ {
		px, err := combin.BinomialPMF(p.C, p.Mu, x)
		if err != nil {
			return nil, err
		}
		if px == 0 {
			continue
		}
		for y := 0; y <= s0; y++ {
			py, err := combin.BinomialPMF(s0, p.Mu, y)
			if err != nil {
				return nil, err
			}
			alpha[m.Space().MustIndex(core.State{S: s0, X: x, Y: y})] += px * py
		}
	}
	return alpha, nil
}

// zScore is (observed − expected) / stderr, 0 when the envelope is
// degenerate.
func zScore(observed, expected, stderr float64) float64 {
	if stderr == 0 || math.IsNaN(stderr) {
		return 0
	}
	return (observed - expected) / stderr
}
