package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"targetedattacks/internal/engine"
)

func TestRegistryHasAllBuiltins(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "table1", "table2", "fig4", "fig5",
		"ablk", "ablnu", "mc", "sys", "lookup", "nusweep", "stress9",
		"large", "huge", "colossal", "apt", "swarm",
	}
	keys := Keys()
	if len(keys) != len(want) {
		t.Fatalf("registry has %d scenarios %v, want %d", len(keys), keys, len(want))
	}
	for i, key := range want {
		if keys[i] != key {
			t.Errorf("keys[%d] = %q, want %q (registration order is the paper's order)", i, keys[i], key)
		}
	}
	for _, key := range want {
		s, ok := Find(key)
		if !ok {
			t.Errorf("Find(%q) missing", key)
			continue
		}
		if s.Desc == "" {
			t.Errorf("scenario %q has no description", key)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find of unknown key succeeded")
	}
}

func TestRegisterValidates(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	assertPanics("empty key", func() {
		Register(Scenario{Desc: "x", Run: func(context.Context, Env) ([]Artifact, error) { return nil, nil }})
	})
	assertPanics("nil run", func() { Register(Scenario{Key: "k"}) })
	assertPanics("duplicate", func() {
		Register(Scenario{Key: "fig1", Run: func(context.Context, Env) ([]Artifact, error) { return nil, nil }})
	})
}

func TestRunScenariosConcurrent(t *testing.T) {
	env := Env{Pool: engine.New(4), Seed: 1, Quick: true}
	results, err := RunScenarios(context.Background(), env, []string{"fig1", "table2", "stress9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, key := range []string{"fig1", "table2", "stress9"} {
		if results[i].Scenario.Key != key {
			t.Errorf("results[%d] is %q, want %q (input order)", i, results[i].Scenario.Key, key)
		}
		if results[i].Err != nil {
			t.Errorf("%s: %v", key, results[i].Err)
		}
		if len(results[i].Artifacts) == 0 {
			t.Errorf("%s produced no artifacts", key)
		}
	}
}

func TestRunScenariosUnknownKey(t *testing.T) {
	if _, err := RunScenarios(context.Background(), Env{}, []string{"fig1", "bogus"}); err == nil {
		t.Error("unknown key: want error")
	}
}

func TestArtifactRendering(t *testing.T) {
	tb := &Table{Title: "t", Columns: []string{"a"}}
	if err := tb.AddRow("1"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	art := Artifact{Name: "x", Table: tb}
	if err := art.Text(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t") {
		t.Error("text rendering lost the table")
	}
	buf.Reset()
	if err := art.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a\n") {
		t.Errorf("CSV = %q", buf.String())
	}
	empty := Artifact{Name: "hollow"}
	if err := empty.Text(&buf); err == nil {
		t.Error("empty artifact Text: want error")
	}
	if err := empty.CSV(&buf); err == nil {
		t.Error("empty artifact CSV: want error")
	}
}

func TestNuSweepScenario(t *testing.T) {
	cfg := NuSweepConfig{Nus: []float64{0.05, 0.5}, Ks: []int{2, 7}, Mu: 0.3, D: 0.9}
	tb, err := NuSweep(context.Background(), engine.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	if _, err := NuSweep(context.Background(), nil, NuSweepConfig{}); err == nil {
		t.Error("empty grid: want error")
	}
}

func TestStressScenario(t *testing.T) {
	cfg := StressConfig{C: 9, Delta: 9, Ks: []int{1}, Mus: []float64{0, 0.2}, Ds: []float64{0.9}}
	tb, err := Stress(context.Background(), engine.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	if !strings.Contains(tb.Title, "C=9") {
		t.Errorf("title %q missing C=9", tb.Title)
	}
	// µ=0 must be pollution-free even on the larger cluster.
	if tb.Rows[0][5] != "0" {
		t.Errorf("µ=0 P(ever polluted) = %q, want 0", tb.Rows[0][5])
	}
	if _, err := Stress(context.Background(), nil, StressConfig{C: 9, Delta: 9}); err == nil {
		t.Error("empty grid: want error")
	}
}

// TestParallelMatchesSerial is the sweep-level determinism check: a grid
// computed on 8 workers must render identically to the serial loop.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := Figure3Config{
		Mus:           []float64{0, 0.1, 0.2, 0.3},
		Ds:            []float64{0.5, 0.9},
		Ks:            []int{1, 7},
		Distributions: DefaultFigure3Config().Distributions,
	}
	serial, err := Figure3(context.Background(), engine.New(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure3(context.Background(), engine.New(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("parallel Figure 3 differs from serial rendering")
	}
}

// TestLargeClusterScenario runs the sparse scale sweep at the C=∆=16
// acceptance size: 2295 transient states, far past anything the dense
// path is asked to solve in tests, completing in seconds on the
// iterative backend.
func TestLargeClusterScenario(t *testing.T) {
	cfg := LargeClusterConfig{Sizes: []int{16}, Ks: []int{1}, Mu: 0.2, D: 0.8}
	tb, err := LargeCluster(context.Background(), engine.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	row := tb.Rows[0]
	if row[2] != "2601" {
		t.Errorf("|Ω| = %q, want 2601", row[2])
	}
	if row[3] != "2295" {
		t.Errorf("transient = %q, want 2295 (the ≥2000 scale gate)", row[3])
	}
	if !strings.Contains(tb.Title, "bicgstab") {
		t.Errorf("title %q: zero solver config must default to bicgstab", tb.Title)
	}
	if _, err := LargeCluster(context.Background(), nil, LargeClusterConfig{}); err == nil {
		t.Error("empty grid: want error")
	}
}

// TestHugeClusterScenario runs the S4 frontier size C=∆=40 (33579
// transient states) with a parallel build pool, checking both the scale
// gate and the dedicated S4 title.
func TestHugeClusterScenario(t *testing.T) {
	cfg := DefaultHugeClusterConfig()
	cfg.Sizes = []int{40}
	cfg.BuildPool = engine.New(4)
	tb, err := LargeCluster(context.Background(), engine.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	row := tb.Rows[0]
	if row[2] != "35301" {
		t.Errorf("|Ω| = %q, want 35301", row[2])
	}
	if row[3] != "33579" {
		t.Errorf("transient = %q, want 33579", row[3])
	}
	if !strings.Contains(tb.Title, "S4") {
		t.Errorf("title %q missing the S4 label", tb.Title)
	}
}

// TestColossalClusterScenario runs the S5 frontier at its quick size
// C=∆=75 (216524 transient states, d=90%): the auto backend's mixing
// probe must engage the ILU(0)-preconditioned solver, and the table
// must carry the backend and iteration columns.
func TestColossalClusterScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("C=∆=75 colossal scenario skipped in -short mode")
	}
	cfg := DefaultColossalClusterConfig()
	cfg.Sizes = []int{75}
	cfg.BuildPool = engine.New(4)
	tb, err := LargeCluster(context.Background(), engine.New(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	row := tb.Rows[0]
	if row[2] != "222376" {
		t.Errorf("|Ω| = %q, want 222376", row[2])
	}
	if row[3] != "216524" {
		t.Errorf("transient = %q, want 216524", row[3])
	}
	if row[8] != "ilu" {
		t.Errorf("backend = %q, want ilu (the mixing probe must flag d=0.9 as slow)", row[8])
	}
	if row[9] == "0" || row[9] == "" {
		t.Errorf("iters = %q, want a positive count", row[9])
	}
	if !strings.Contains(tb.Title, "S5") {
		t.Errorf("title %q missing the S5 label", tb.Title)
	}
}

// TestLargeClusterScenarioRegistered runs the registered scenario end to
// end in quick mode, as cmd/paperrepro would.
func TestLargeClusterScenarioRegistered(t *testing.T) {
	env := Env{Pool: engine.New(4), Quick: true}
	results, err := RunScenarios(context.Background(), env, []string{"large"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if len(results[0].Artifacts) != 1 || results[0].Artifacts[0].Name != "sweep_large" {
		t.Errorf("artifacts = %+v", results[0].Artifacts)
	}
}
