package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// Env carries the execution context shared by every scenario: the worker
// pool all sweeps and Monte-Carlo batches fan out on, the root seed for
// randomized experiments, the quick flag that shrinks slow grids for
// smoke runs, and the linear-solver backend for the closed-form
// analytics.
type Env struct {
	Pool  *engine.Pool
	Seed  int64
	Quick bool
	// Solver overrides the analytic linear-solver backend of the sweep
	// scenarios S1-S4 (the paper's printed figures and tables always use
	// the exact dense path). The zero value keeps each scenario's own
	// default.
	Solver matrix.SolverConfig
	// BuildPool supplies the workers of the row-parallel
	// transition-matrix construction in the large-state-space sweeps (S3,
	// S4); nil shares Pool (the CLIs' -buildworkers flag overrides it).
	// Construction output is bit-identical for any width.
	BuildPool *engine.Pool
}

// pool returns the env's pool, defaulting to a serial one.
func (e Env) pool() *engine.Pool { return engine.Ensure(e.Pool) }

// buildPool returns the pool used for transition-matrix construction,
// sharing the scenario pool when no dedicated one is configured (nested
// engine.Pool.Run calls split the width instead of stacking).
func (e Env) buildPool() *engine.Pool {
	if e.BuildPool != nil {
		return e.BuildPool
	}
	return e.pool()
}

// Artifact is one named output of a scenario: a Table or a Figure.
type Artifact struct {
	Name   string
	Table  *Table
	Figure *Figure
}

// Text writes the artifact's aligned-text rendering.
func (a Artifact) Text(w io.Writer) error {
	if a.Table != nil {
		return a.Table.Render(w)
	}
	if a.Figure != nil {
		return a.Figure.RenderASCII(w, 72, 20)
	}
	return fmt.Errorf("experiments: artifact %q has neither table nor figure", a.Name)
}

// CSV writes the artifact as comma-separated values.
func (a Artifact) CSV(w io.Writer) error {
	if a.Table != nil {
		return a.Table.CSV(w)
	}
	if a.Figure != nil {
		return a.Figure.CSV(w)
	}
	return fmt.Errorf("experiments: artifact %q has neither table nor figure", a.Name)
}

// tableArtifacts wraps tables built by a generator into artifacts.
func tableArtifacts(name string, t *Table, err error) ([]Artifact, error) {
	if err != nil {
		return nil, err
	}
	return []Artifact{{Name: name, Table: t}}, nil
}

// Scenario is one registered experiment: a named, parameterized sweep
// over the model that produces renderable artifacts. Scenarios replace
// the former free-function-per-figure design — a sweep is data in the
// registry, selected and executed by the CLIs.
type Scenario struct {
	// Key is the stable selector used by -only/-scenario flags.
	Key string
	// Desc is a one-line human description.
	Desc string
	// Run produces the scenario's artifacts on the given environment.
	Run func(ctx context.Context, env Env) ([]Artifact, error)
}

var registry = struct {
	mu    sync.Mutex
	order []string
	byKey map[string]Scenario
}{byKey: make(map[string]Scenario)}

// Register adds a scenario to the global registry. It panics on an empty
// or duplicate key or nil Run, which are programming errors in an init
// block.
func Register(s Scenario) {
	if s.Key == "" || s.Run == nil {
		panic(fmt.Sprintf("experiments: scenario %+v needs a key and a Run function", s))
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byKey[s.Key]; dup {
		panic(fmt.Sprintf("experiments: duplicate scenario key %q", s.Key))
	}
	registry.byKey[s.Key] = s
	registry.order = append(registry.order, s.Key)
}

// Find returns the scenario registered under key.
func Find(key string) (Scenario, bool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s, ok := registry.byKey[key]
	return s, ok
}

// Keys returns every registered key in registration order.
func Keys() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return append([]string(nil), registry.order...)
}

// Scenarios returns every registered scenario in registration order.
func Scenarios() []Scenario {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]Scenario, 0, len(registry.order))
	for _, key := range registry.order {
		out = append(out, registry.byKey[key])
	}
	return out
}

// Result is the outcome of one scenario execution.
type Result struct {
	Scenario  Scenario
	Artifacts []Artifact
	Err       error
}

// RunScenarios executes the scenarios named by keys concurrently on
// env.Pool and returns their results in input order. Scenario-internal
// sweeps fan out on the same pool (nested Run calls are safe). An unknown
// key fails the whole call before anything runs; individual scenario
// failures are reported per-Result so one failing experiment does not
// discard the others.
func RunScenarios(ctx context.Context, env Env, keys []string) ([]Result, error) {
	selected := make([]Scenario, len(keys))
	for i, key := range keys {
		s, ok := Find(key)
		if !ok {
			known := Keys()
			sort.Strings(known)
			return nil, fmt.Errorf("experiments: unknown scenario %q (known: %v)", key, known)
		}
		selected[i] = s
	}
	results := make([]Result, len(selected))
	err := env.pool().Run(ctx, len(selected), func(i int) error {
		arts, err := selected[i].Run(ctx, env)
		results[i] = Result{Scenario: selected[i], Artifacts: arts, Err: err}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
