package experiments

import (
	"context"
)

// This file registers the built-in scenarios: every table and figure of
// the paper's evaluation (E1-E7), this reproduction's ablations and
// validations (A1-A5), and the engine-enabled sweeps (S1-S4). Randomized
// scenarios take their root seed from Env.Seed (the CLIs' -seed flag);
// Env.Quick shrinks the slow grids for smoke runs.
//
// Env plumbing is uniform: every scenario that solves the closed forms
// honors Env.Solver (the CLIs' -solver/-tol flags; the zero value keeps
// each scenario's own default, which is the paper-exact dense path for
// E1-E7/A1-A5 and the sparse path for S3/S4), every scenario that builds
// transition matrices honors Env.BuildPool (-buildworkers, sharing
// Env.Pool when unset), and every grid fans its cells across Env.Pool.
// The registry test asserts these properties scenario by scenario.

func init() {
	Register(Scenario{
		Key:  "fig1",
		Desc: "Figure 1: state-space partition census",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			t, err := Figure1(7, 7)
			return tableArtifacts("figure1", t, err)
		},
	})
	Register(Scenario{
		Key:  "fig2",
		Desc: "Figure 2: transition matrix construction",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultFigure2Config()
			cfg.BuildPool = env.buildPool()
			t, err := Figure2(ctx, env.Pool, cfg)
			return tableArtifacts("figure2", t, err)
		},
	})
	Register(Scenario{
		Key:  "fig3",
		Desc: "Figure 3: E(T_S^k), E(T_P^k) panels",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultFigure3Config()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			t, err := Figure3(ctx, env.Pool, cfg)
			return tableArtifacts("figure3", t, err)
		},
	})
	Register(Scenario{
		Key:  "table1",
		Desc: "Table I: E(T_S), E(T_P) at high survival",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultTable1Config()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			t, err := Table1(ctx, env.Pool, cfg)
			return tableArtifacts("table1", t, err)
		},
	})
	Register(Scenario{
		Key:  "table2",
		Desc: "Table II: successive sojourn times",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultTable2Config()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			t, err := Table2(ctx, env.Pool, cfg)
			return tableArtifacts("table2", t, err)
		},
	})
	Register(Scenario{
		Key:  "fig4",
		Desc: "Figure 4: absorption probabilities",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultFigure4Config()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			t, err := Figure4(ctx, env.Pool, cfg)
			return tableArtifacts("figure4", t, err)
		},
	})
	Register(Scenario{
		Key:  "fig5",
		Desc: "Figure 5: overlay safe/polluted proportions",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultFigure5Config()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			if env.Quick {
				cfg.MaxEvents = 10000
				cfg.Samples = 20
			}
			safe, polluted, err := Figure5(ctx, env.Pool, cfg)
			if err != nil {
				return nil, err
			}
			return []Artifact{
				{Name: "figure5_safe", Figure: safe},
				{Name: "figure5_polluted", Figure: polluted},
			}, nil
		},
	})
	Register(Scenario{
		Key:  "ablk",
		Desc: "Ablation A2: all protocol_k",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultAblationKConfig()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			t, err := AblationK(ctx, env.Pool, cfg)
			return tableArtifacts("ablation_k", t, err)
		},
	})
	Register(Scenario{
		Key:  "ablnu",
		Desc: "Ablation A1: Rule 1 ν sensitivity",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultAblationNuConfig()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			t, err := AblationNu(ctx, env.Pool, cfg)
			return tableArtifacts("ablation_nu", t, err)
		},
	})
	Register(Scenario{
		Key:  "mc",
		Desc: "Validation A3: Monte-Carlo cross-check",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultValidationConfig()
			cfg.Seed = env.Seed
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			if env.Quick {
				cfg.Runs = 2000
			}
			t, err := Validation(ctx, env.Pool, cfg)
			return tableArtifacts("validation_mc", t, err)
		},
	})
	Register(Scenario{
		Key:  "sys",
		Desc: "System A4: agent-based overlay simulation",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultSystemSimConfig()
			cfg.Seed = env.Seed
			if env.Quick {
				cfg.Events = 4000
			}
			t, err := SystemSim(ctx, env.Pool, cfg)
			return tableArtifacts("system_sim", t, err)
		},
	})
	Register(Scenario{
		Key:  "lookup",
		Desc: "Lookup A5: availability under attack",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultLookupConfig()
			cfg.Seed = env.Seed
			if env.Quick {
				cfg.Events = 2000
				cfg.Trials = 100
			}
			t, err := Lookup(ctx, env.Pool, cfg)
			return tableArtifacts("lookup_availability", t, err)
		},
	})
	Register(Scenario{
		Key:  "nusweep",
		Desc: "Sweep S1: dense ν response surface",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultNuSweepConfig()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			if env.Quick {
				cfg.Nus = []float64{0.05, 0.20, 0.50}
				cfg.Ks = []int{2, 7}
			}
			t, err := NuSweep(ctx, env.Pool, cfg)
			return tableArtifacts("sweep_nu", t, err)
		},
	})
	Register(Scenario{
		Key:  "stress9",
		Desc: "Sweep S2: large-cluster stress (C=∆=9)",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultStressConfig()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			if env.Quick {
				cfg.Mus = []float64{0.20}
				cfg.Ds = []float64{0.50, 0.90}
			}
			t, err := Stress(ctx, env.Pool, cfg)
			return tableArtifacts("sweep_stress", t, err)
		},
	})
	Register(Scenario{
		Key:  "large",
		Desc: "Sweep S3: large-cluster sparse analytics (C=∆ up to 25)",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultLargeClusterConfig()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			if env.Quick {
				cfg.Sizes = []int{16}
			}
			t, err := LargeCluster(ctx, env.Pool, cfg)
			return tableArtifacts("sweep_large", t, err)
		},
	})
	Register(Scenario{
		Key:  "huge",
		Desc: "Sweep S4: huge-cluster parallel-build analytics (C=∆ up to 50)",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultHugeClusterConfig()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			if env.Quick {
				cfg.Sizes = []int{40}
			}
			t, err := LargeCluster(ctx, env.Pool, cfg)
			return tableArtifacts("sweep_huge", t, err)
		},
	})
	Register(Scenario{
		Key:  "colossal",
		Desc: "Sweep S5: colossal-cluster preconditioned analytics (C=∆ up to 100)",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultColossalClusterConfig()
			// The scenario's own default is the auto backend (its point is
			// the mixing probe engaging ILU(0)); an explicit -solver still
			// overrides it like everywhere else.
			if env.Solver.Kind != "" {
				cfg.Solver = env.Solver
			}
			cfg.BuildPool = env.buildPool()
			if env.Quick {
				cfg.Sizes = []int{75}
			}
			t, err := LargeCluster(ctx, env.Pool, cfg)
			return tableArtifacts("sweep_colossal", t, err)
		},
	})
	Register(Scenario{
		Key:  "apt",
		Desc: "APT S7: second model family — multi-stage compromise campaign",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultAPTConfig()
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			if env.Quick {
				cfg.Ns = []int{12}
				cfg.Thetas = []float64{0.5}
				cfg.Detects = []float64{0.6}
				cfg.Rhos = []float64{0, 0.5}
			}
			t, err := APTCampaign(ctx, env.Pool, cfg)
			return tableArtifacts("apt_campaign", t, err)
		},
	})
	Register(Scenario{
		Key:  "swarm",
		Desc: "Swarm S6: million-peer simulation grid + analytic cross-validation",
		Run: func(ctx context.Context, env Env) ([]Artifact, error) {
			cfg := DefaultSwarmConfig()
			cfg.Seed = env.Seed
			cfg.Solver = env.Solver
			cfg.BuildPool = env.buildPool()
			if env.Quick {
				cfg.Sizes = []int{2000, 5000}
				cfg.Events = 2000
				cfg.XValMus = []float64{0.20}
				cfg.XValReplicas = 30
				cfg.XValMaxEvents = 1 << 15
			}
			return Swarm(ctx, env.Pool, cfg)
		},
	})
}
