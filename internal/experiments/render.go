// Package experiments regenerates every table and figure of the
// evaluation sections (VII and VIII) of the DSN 2011 targeted-attack
// paper, plus this reproduction's own ablations and validation
// experiments. Each generator returns structured data (Table or Figure)
// that renders as aligned text, CSV, or an ASCII plot; cmd/paperrepro
// drives all of them and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("experiments: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := len([]rune(cell)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (cells are simple
// numerics and identifiers, no quoting needed).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one named line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a titled collection of series.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Note   string
	Series []Series
}

// AddSeries appends a series after validating the coordinate lengths.
func (f *Figure) AddSeries(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("experiments: series %q has %d x and %d y values",
			s.Name, len(s.X), len(s.Y))
	}
	f.Series = append(f.Series, s)
	return nil
}

// CSV writes all series in long form: series,x,y.
func (f *Figure) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// seriesMarks are the glyphs used to draw successive series.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderASCII draws the figure as an ASCII plot of the given dimensions.
func (f *Figure) RenderASCII(w io.Writer, width, height int) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("experiments: plot area %dx%d too small", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	var points int
	for _, s := range f.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return fmt.Errorf("experiments: figure %q has no points", f.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			cx := int(float64(width-1) * (s.X[i] - minX) / (maxX - minX))
			cy := int(float64(height-1) * (s.Y[i] - minY) / (maxY - minY))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	fmt.Fprintf(&b, "%-10.4g y-max (%s)\n", maxY, f.YLabel)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("  +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10.4g y-min; x: %.4g … %.4g (%s)\n", minY, minX, maxX, f.XLabel)
	if f.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtFloat renders a float compactly for table cells.
func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-4:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// fmtPercent renders a probability as a percentage label (µ=30%% style).
func fmtPercent(v float64) string {
	return fmt.Sprintf("%g%%", v*100)
}
