package experiments

import (
	"context"
	"fmt"

	"targetedattacks/internal/aptchain"
	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/sweep"
)

// APTConfig parameterizes the second-model-family sweep (S7): an
// APT-style multi-stage compromise campaign evaluated through the same
// model-agnostic amortized evaluator as the paper grids.
type APTConfig struct {
	// Ns are the node counts evaluated (one shared triangular state
	// space per n).
	Ns []int
	// Thetas sweep the per-probe infiltration probability θ.
	Thetas []float64
	// Phi fixes the escalation probability φ.
	Phi float64
	// Rhos sweep the implant stealth ρ — the family's warm-start lane
	// axis.
	Rhos []float64
	// Detects sweep the defender's detection probability δ.
	Detects []float64
	// Dist names the initial distribution; "" is the foothold default.
	Dist string
	// Solver is the sparse backend; the zero value selects BiCGSTAB,
	// like the other scale sweeps.
	Solver matrix.SolverConfig
	// BuildPool fans the row-parallel transition-matrix construction of
	// each cell; nil builds serially.
	BuildPool *engine.Pool
}

// DefaultAPTConfig spans moderate campaigns: two system sizes, two
// infiltration rates, three stealth levels and two defender strengths.
func DefaultAPTConfig() APTConfig {
	return APTConfig{
		Ns:      []int{20, 40},
		Thetas:  []float64{0.3, 0.6},
		Phi:     0.4,
		Rhos:    []float64{0, 0.25, 0.5},
		Detects: []float64{0.5, 0.8},
	}
}

// APTCampaign evaluates the APT compromise-campaign family over its
// grid: per cell the expected time contained (footholds only) and
// escalated (some node entrenched), the probability the attacker ever
// entrenches a node (the family's hit probability) and the full-
// compromise absorption risk. The grid runs through sweep.EvaluateModel
// with warm-start lanes along the stealth axis — the same planner the
// paper model uses, driven entirely by the family's declared structure.
func APTCampaign(ctx context.Context, pool *engine.Pool, cfg APTConfig) (*Table, error) {
	if len(cfg.Ns) == 0 || len(cfg.Thetas) == 0 || len(cfg.Rhos) == 0 || len(cfg.Detects) == 0 {
		return nil, fmt.Errorf("experiments: APTCampaign needs non-empty Ns, Thetas, Rhos and Detects")
	}
	solver := cfg.Solver
	if solver.Kind == "" {
		solver.Kind = "bicgstab"
	}
	fam := aptchain.Family{}
	distName, err := fam.ParseDist(cfg.Dist)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	// Cells in the family's canonical order: n outermost (the group
	// axis), stealth ρ innermost (the warm-start lane axis).
	var cells []chainmodel.Cell
	for _, n := range cfg.Ns {
		for _, theta := range cfg.Thetas {
			for _, detect := range cfg.Detects {
				for _, rho := range cfg.Rhos {
					p := aptchain.Params{N: n, Theta: theta, Phi: cfg.Phi, Rho: rho, Detect: detect}
					if err := p.Validate(); err != nil {
						return nil, fmt.Errorf("experiments: %w", err)
					}
					cells = append(cells, p)
				}
			}
		}
	}
	rs, err := sweep.EvaluateModel(ctx, sweep.ModelPlan{
		Family: fam,
		Cells:  cells,
		Dist:   distName,
	}, sweep.ModelOptions{
		Pool:      pool,
		BuildPool: cfg.BuildPool,
		Solver:    solver,
		WarmStart: true,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Sweep S7 — APT compromise campaign (φ=%g, %s start, solver=%s)",
			cfg.Phi, rs.Plan.Dist, solver.Kind),
		Columns: []string{"n", "theta", "detect", "rho", "|Ω|", "E(T_contained)", "E(T_escalated)", "P(entrench)", "p(compromised)", "iters"},
		Note: fmt.Sprintf("second model family through the model-agnostic engine: %d cells, %d distinct chains, "+
			"%d solver iterations with stealth-lane warm starts", len(cells), rs.Evaluated, rs.Iterations),
	}
	for _, cell := range rs.Cells {
		p := cell.Cell.(aptchain.Params)
		if err := t.AddRow(
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%g", p.Theta),
			fmt.Sprintf("%g", p.Detect),
			fmt.Sprintf("%g", p.Rho),
			fmt.Sprintf("%d", cell.States),
			fmtFloat(cell.Analysis.TimeInA),
			fmtFloat(cell.Analysis.TimeInB),
			fmtFloat(cell.Analysis.HitProbability),
			fmtFloat(cell.Analysis.Absorption[aptchain.ClassNameCompromised]),
			fmt.Sprintf("%d", cell.Iterations),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}
