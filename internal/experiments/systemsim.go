package experiments

import (
	"context"
	"fmt"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/overlaynet"
)

// SystemSimConfig parameterizes the agent-based overlay experiment (A4).
type SystemSimConfig struct {
	// Mus and Ds span the attack grid.
	Mus []float64
	Ds  []float64
	// Events per simulation run.
	Events int
	// InitialLabelBits sizes the overlay at 2^bits clusters.
	InitialLabelBits int
	// Checkpoints is the number of pollution samples per run.
	Checkpoints int
	// Seed drives the deterministic simulation.
	Seed int64
}

// DefaultSystemSimConfig runs an 8-cluster overlay for 20000 events per
// parameter point.
func DefaultSystemSimConfig() SystemSimConfig {
	return SystemSimConfig{
		Mus:              []float64{0.10, 0.20, 0.30},
		Ds:               []float64{0.30, 0.50, 0.80, 0.90},
		Events:           20000,
		InitialLabelBits: 3,
		Checkpoints:      10,
		Seed:             1,
	}
}

// SystemSim runs the full agent-based overlay (certificates, hypercube
// clusters, robust operations, colluding adversary) across the (µ, d)
// grid and reports the mean and peak fraction of polluted clusters plus
// the operation census. The analytic model predicts pollution levels to
// rise with both µ and d (Figure 3's ordering); this experiment checks
// the same ordering emerges from the running system rather than from the
// chain abstraction. Each grid cell simulates an independent overlay with
// its own deterministic seed, so cells fan out across the pool.
func SystemSim(ctx context.Context, pool *engine.Pool, cfg SystemSimConfig) (*Table, error) {
	if cfg.Events < 1 || cfg.Checkpoints < 1 {
		return nil, fmt.Errorf("experiments: SystemSim needs positive Events and Checkpoints")
	}
	t := &Table{
		Title: "System A4 — agent-based overlay under targeted attack",
		Columns: []string{
			"mu", "d", "mean polluted frac", "peak polluted frac",
			"standing mal frac", "clusters", "splits", "merges",
			"rule2 discards", "refused leaves",
		},
		Note: "persistent-overlay regime: unlike the absorbing chain, clusters are " +
			"never reset, so the standing malicious fraction ratchets up until " +
			"Property 1 expiries balance it — see EXPERIMENTS.md",
	}
	type point struct {
		mu, d float64
	}
	var points []point
	for _, mu := range cfg.Mus {
		for _, d := range cfg.Ds {
			points = append(points, point{mu, d})
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		net, err := overlaynet.New(overlaynet.Config{
			Params:           core.Params{C: 7, Delta: 7, Mu: pt.mu, D: pt.d, K: 1, Nu: 0.1},
			InitialLabelBits: cfg.InitialLabelBits,
			// ModelFidelity evicts malicious peers through the same
			// Bernoulli(d^count) survival draws as the analytic
			// chain, making d the decisive knob; the stationary
			// controller keeps the overlay from draining so the
			// long-run pollution level is well defined.
			Mode:                 overlaynet.ModelFidelity,
			StationaryPopulation: true,
			Seed:                 cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		step := cfg.Events / cfg.Checkpoints
		if step == 0 {
			step = 1
		}
		var sum, peak float64
		var samples int
		for done := 0; done < cfg.Events; done += step {
			n := step
			if done+n > cfg.Events {
				n = cfg.Events - done
			}
			if err := net.Run(n); err != nil {
				return nil, err
			}
			frac := net.Snapshot().PollutedFraction
			sum += frac
			samples++
			if frac > peak {
				peak = frac
			}
		}
		m := net.Metrics()
		final := net.Snapshot()
		malFrac := 0.0
		if final.Peers > 0 {
			malFrac = float64(final.MaliciousPeers) / float64(final.Peers)
		}
		return [][]string{{
			fmtPercent(pt.mu),
			fmtPercent(pt.d),
			fmtFloat(sum / float64(samples)),
			fmtFloat(peak),
			fmtFloat(malFrac),
			fmt.Sprintf("%d", final.Clusters),
			fmt.Sprintf("%d", m.Splits),
			fmt.Sprintf("%d", m.Merges),
			fmt.Sprintf("%d", m.DiscardedJoins),
			fmt.Sprintf("%d", m.RefusedLeaves),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}
