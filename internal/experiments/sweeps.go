package experiments

import (
	"context"
	"fmt"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// The sweeps in this file go beyond the paper's printed evaluation. They
// exist because the engine makes them affordable: each is a dense
// parameter grid of independent model solves that the former serial
// design made too slow to run routinely.

// NuSweepConfig parameterizes the fine-grained ν sweep (S1).
type NuSweepConfig struct {
	// Nus is the Rule 1 threshold grid, much denser than ablation A1.
	Nus []float64
	// Ks are the protocols swept (Rule 1 is inert for k = 1).
	Ks []int
	// Mu and D fix the attack point.
	Mu, D float64
	// Solver selects the analytic linear-solver backend; the zero value
	// is the exact dense path.
	Solver matrix.SolverConfig
}

// DefaultNuSweepConfig sweeps 11 thresholds × every randomizing protocol
// at the paper's hardest printed attack point (µ=30%, d=90%).
func DefaultNuSweepConfig() NuSweepConfig {
	return NuSweepConfig{
		Nus: []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.60, 0.75, 0.90},
		Ks:  []int{2, 3, 4, 5, 6, 7},
		Mu:  0.30,
		D:   0.90,
	}
}

// NuSweep densely maps the response surface of the unspecified Rule 1
// threshold ν: for every (k, ν) it reports the expected safe/polluted
// times, the probability of ever being polluted and the number of states
// in which Rule 1 fires. It extends ablation A1 from 15 to 66 model
// solves, fanned across the pool.
func NuSweep(ctx context.Context, pool *engine.Pool, cfg NuSweepConfig) (*Table, error) {
	if len(cfg.Nus) == 0 || len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: NuSweep needs non-empty Nus and Ks")
	}
	t := &Table{
		Title:   fmt.Sprintf("Sweep S1 — dense ν response surface (µ=%g%%, d=%g%%, α=δ)", cfg.Mu*100, cfg.D*100),
		Columns: []string{"k", "nu", "E(T_S)", "E(T_P)", "P(ever polluted)", "rule1 states"},
		Note:    "extends ablation A1: the paper never fixes ν; the surface shows how the adversary's voluntary-leave trigger shapes pollution",
	}
	type point struct {
		k  int
		nu float64
	}
	var points []point
	for _, k := range cfg.Ks {
		for _, nu := range cfg.Nus {
			points = append(points, point{k, nu})
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		p := baseParams()
		p.Mu, p.D, p.K, p.Nu = cfg.Mu, cfg.D, pt.k, pt.nu
		m, err := core.NewWithSolver(p, cfg.Solver)
		if err != nil {
			return nil, err
		}
		a, err := m.AnalyzeNamed(core.DistributionDelta, 1)
		if err != nil {
			return nil, err
		}
		fires, err := countRule1States(p)
		if err != nil {
			return nil, err
		}
		return [][]string{{
			fmt.Sprintf("%d", pt.k),
			fmt.Sprintf("%g", pt.nu),
			fmtFloat(a.ExpectedSafeTime),
			fmtFloat(a.ExpectedPollutedTime),
			fmtFloat(a.PollutionProbability),
			fmt.Sprintf("%d", fires),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// StressConfig parameterizes the large-cluster stress sweep (S2).
type StressConfig struct {
	// C and Delta size the cluster; C = ∆ = 9 grows Ω well past the
	// paper's 288 states and raises the Byzantine quorum to c = 2.
	C, Delta int
	// Ks are the protocols compared (typically 1 and C).
	Ks []int
	// Mus and Ds span the attack grid.
	Mus []float64
	Ds  []float64
	// Solver selects the analytic linear-solver backend; the zero value
	// is the exact dense path.
	Solver matrix.SolverConfig
}

// DefaultStressConfig evaluates C = ∆ = 9 across the paper's attack axes.
func DefaultStressConfig() StressConfig {
	return StressConfig{
		C:     9,
		Delta: 9,
		Ks:    []int{1, 9},
		Mus:   []float64{0.10, 0.20, 0.30},
		Ds:    []float64{0.50, 0.80, 0.90},
	}
}

// Stress evaluates the closed forms on a larger cluster than the paper
// ever prints (C = ∆ = 9 by default): expected safe/polluted times,
// pollution probability and the polluted-merge absorption risk for every
// (k, µ, d). Each cell builds and solves its own enlarged chain, fanned
// across the pool.
func Stress(ctx context.Context, pool *engine.Pool, cfg StressConfig) (*Table, error) {
	if len(cfg.Ks) == 0 || len(cfg.Mus) == 0 || len(cfg.Ds) == 0 {
		return nil, fmt.Errorf("experiments: Stress needs non-empty Ks, Mus and Ds")
	}
	sp, err := core.NewSpace(cfg.C, cfg.Delta)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Sweep S2 — large-cluster stress (C=%d, ∆=%d, |Ω|=%d, α=δ)",
			cfg.C, cfg.Delta, sp.Size()),
		Columns: []string{"protocol", "mu", "d", "E(T_S)", "E(T_P)", "P(ever polluted)", "p(polluted-merge)"},
		Note: fmt.Sprintf("beyond the paper's evaluation: quorum c=%d; checks that the C=∆=7 "+
			"qualitative ordering survives a larger cluster", (cfg.C-1)/3),
	}
	type point struct {
		k     int
		mu, d float64
	}
	var points []point
	for _, k := range cfg.Ks {
		for _, mu := range cfg.Mus {
			for _, d := range cfg.Ds {
				points = append(points, point{k, mu, d})
			}
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		p := core.Params{C: cfg.C, Delta: cfg.Delta, Mu: pt.mu, D: pt.d, K: pt.k, Nu: 0.1}
		m, err := core.NewWithSolver(p, cfg.Solver)
		if err != nil {
			return nil, err
		}
		a, err := m.AnalyzeNamed(core.DistributionDelta, 1)
		if err != nil {
			return nil, err
		}
		return [][]string{{
			fmt.Sprintf("protocol_%d", pt.k),
			fmtPercent(pt.mu),
			fmtPercent(pt.d),
			fmtFloat(a.ExpectedSafeTime),
			fmtFloat(a.ExpectedPollutedTime),
			fmtFloat(a.PollutionProbability),
			fmtFloat(a.Absorption[core.ClassNamePollutedMerge]),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// LargeClusterConfig parameterizes the sparse-solver scale sweep (S3).
type LargeClusterConfig struct {
	// Sizes are the cluster sizes evaluated with C = ∆ = size. C = ∆ = 16
	// already has 2295 transient states; 25 has 8424 — an order of
	// magnitude past what the dense path solves in reasonable time.
	Sizes []int
	// Ks are the protocols evaluated.
	Ks []int
	// Mu and D fix the attack point.
	Mu, D float64
	// Solver is the sparse backend; the zero value selects BiCGSTAB
	// (running this sweep densely is the thing it exists to avoid).
	Solver matrix.SolverConfig
	// BuildPool fans the per-row transition-matrix construction of each
	// cell across workers (bit-identical output for any width); nil
	// builds serially. At C = ∆ ≥ 40 construction is the dominant cost
	// of a cell, so the huge sweep always threads one through.
	BuildPool *engine.Pool
	// Label names the sweep in the table title; "" selects the S3 label.
	Label string
}

// DefaultLargeClusterConfig scales C = ∆ to 25 (|Ω| = 9126) at the
// paper's central attack point.
func DefaultLargeClusterConfig() LargeClusterConfig {
	return LargeClusterConfig{
		Sizes: []int{16, 20, 25},
		Ks:    []int{1},
		Mu:    0.2,
		D:     0.8,
	}
}

// DefaultHugeClusterConfig is the S4 frontier: C = ∆ ∈ {40, 50}, up to
// |Ω| = 67626 states (64974 transient) per cell — the scale the
// row-parallel construction pass and the memoized maintenance kernel
// exist for. Attack point and protocol follow S3.
func DefaultHugeClusterConfig() LargeClusterConfig {
	return LargeClusterConfig{
		Sizes: []int{40, 50},
		Ks:    []int{1},
		Mu:    0.2,
		D:     0.8,
		Label: "S4 — huge-cluster parallel-build analytics",
	}
}

// LargeCluster evaluates the closed forms on state spaces far beyond the
// paper's printed figures — thousands of transient states — which only
// the sparse solver path makes affordable: per cell it reports |Ω|, the
// transient-state count, expected safe/polluted times, the pollution
// probability and the polluted-merge absorption risk. Cells fan out
// across the pool.
func LargeCluster(ctx context.Context, pool *engine.Pool, cfg LargeClusterConfig) (*Table, error) {
	if len(cfg.Sizes) == 0 || len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: LargeCluster needs non-empty Sizes and Ks")
	}
	solver := cfg.Solver
	if solver.Kind == "" {
		solver.Kind = "bicgstab"
	}
	label := cfg.Label
	if label == "" {
		label = "S3 — large-cluster sparse analytics"
	}
	t := &Table{
		Title: fmt.Sprintf("Sweep %s (µ=%g%%, d=%g%%, α=δ, solver=%s)",
			label, cfg.Mu*100, cfg.D*100, solver.Kind),
		Columns: []string{"C=∆", "protocol", "|Ω|", "transient", "E(T_S)", "E(T_P)", "P(ever polluted)", "p(polluted-merge)"},
		Note:    "state spaces an order of magnitude past the printed figures; infeasible on the dense LU path, routine on CSR + iterative solves",
	}
	type point struct {
		size, k int
	}
	var points []point
	for _, size := range cfg.Sizes {
		for _, k := range cfg.Ks {
			points = append(points, point{size, k})
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		p := core.Params{C: pt.size, Delta: pt.size, Mu: cfg.Mu, D: cfg.D, K: pt.k, Nu: 0.1}
		m, err := core.NewWithSolver(p, solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		sp := m.Space()
		transient := len(sp.IndicesOf(core.ClassSafe)) + len(sp.IndicesOf(core.ClassPolluted))
		a, err := m.AnalyzeNamed(core.DistributionDelta, 1)
		if err != nil {
			return nil, err
		}
		return [][]string{{
			fmt.Sprintf("%d", pt.size),
			fmt.Sprintf("protocol_%d", pt.k),
			fmt.Sprintf("%d", sp.Size()),
			fmt.Sprintf("%d", transient),
			fmtFloat(a.ExpectedSafeTime),
			fmtFloat(a.ExpectedPollutedTime),
			fmtFloat(a.PollutionProbability),
			fmtFloat(a.Absorption[core.ClassNamePollutedMerge]),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}
