package experiments

import (
	"context"
	"fmt"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/sweep"
)

// The sweeps in this file go beyond the paper's printed evaluation. They
// are expressed as sweep.Plan grids and run through the amortized
// evaluator: one shared state space, maintenance kernel and Rule 1 gain
// table per (C, ∆) group, provably identical cells solved once (the ν
// axis collapses wherever the firing set does not change), and the
// remaining distinct chains fanned across the pool.

// NuSweepConfig parameterizes the fine-grained ν sweep (S1).
type NuSweepConfig struct {
	// Nus is the Rule 1 threshold grid, much denser than ablation A1.
	Nus []float64
	// Ks are the protocols swept (Rule 1 is inert for k = 1).
	Ks []int
	// Mu and D fix the attack point.
	Mu, D float64
	// Solver selects the analytic linear-solver backend; the zero value
	// is the exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans the row-parallel transition-matrix construction of
	// each distinct cell; nil builds rows serially.
	BuildPool *engine.Pool
}

// DefaultNuSweepConfig sweeps 11 thresholds × every randomizing protocol
// at the paper's hardest printed attack point (µ=30%, d=90%).
func DefaultNuSweepConfig() NuSweepConfig {
	return NuSweepConfig{
		Nus: []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.60, 0.75, 0.90},
		Ks:  []int{2, 3, 4, 5, 6, 7},
		Mu:  0.30,
		D:   0.90,
	}
}

// NuSweep densely maps the response surface of the unspecified Rule 1
// threshold ν: for every (k, ν) it reports the expected safe/polluted
// times, the probability of ever being polluted and the number of states
// in which Rule 1 fires. The 66-cell grid runs through the amortized
// evaluator; thresholds that select the same firing set share one solve.
func NuSweep(ctx context.Context, pool *engine.Pool, cfg NuSweepConfig) (*Table, error) {
	if len(cfg.Nus) == 0 || len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: NuSweep needs non-empty Nus and Ks")
	}
	base := baseParams()
	plan := sweep.Plan{
		C: []int{base.C}, Delta: []int{base.Delta}, K: cfg.Ks,
		Mu: []float64{cfg.Mu}, D: []float64{cfg.D}, Nu: cfg.Nus,
	}
	rs, err := sweep.Evaluate(ctx, plan, sweep.Options{Pool: pool, BuildPool: cfg.BuildPool, Solver: cfg.Solver})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Sweep S1 — dense ν response surface (µ=%g%%, d=%g%%, α=δ)", cfg.Mu*100, cfg.D*100),
		Columns: []string{"k", "nu", "E(T_S)", "E(T_P)", "P(ever polluted)", "rule1 states"},
		Note: fmt.Sprintf("extends ablation A1: the paper never fixes ν; the surface shows how the adversary's "+
			"voluntary-leave trigger shapes pollution (%d cells, %d distinct chains solved)",
			plan.Size(), rs.Evaluated),
	}
	// Plan order is k-major, ν-minor — the table's row order.
	for _, cell := range rs.Cells {
		if err := t.AddRow(
			fmt.Sprintf("%d", cell.Params.K),
			fmt.Sprintf("%g", cell.Params.Nu),
			fmtFloat(cell.Analysis.ExpectedSafeTime),
			fmtFloat(cell.Analysis.ExpectedPollutedTime),
			fmtFloat(cell.Analysis.PollutionProbability),
			fmt.Sprintf("%d", cell.Rule1Fires),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// StressConfig parameterizes the large-cluster stress sweep (S2).
type StressConfig struct {
	// C and Delta size the cluster; C = ∆ = 9 grows Ω well past the
	// paper's 288 states and raises the Byzantine quorum to c = 2.
	C, Delta int
	// Ks are the protocols compared (typically 1 and C).
	Ks []int
	// Mus and Ds span the attack grid.
	Mus []float64
	Ds  []float64
	// Solver selects the analytic linear-solver backend; the zero value
	// is the exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans the row-parallel transition-matrix construction of
	// each distinct cell; nil builds rows serially.
	BuildPool *engine.Pool
}

// DefaultStressConfig evaluates C = ∆ = 9 across the paper's attack axes.
func DefaultStressConfig() StressConfig {
	return StressConfig{
		C:     9,
		Delta: 9,
		Ks:    []int{1, 9},
		Mus:   []float64{0.10, 0.20, 0.30},
		Ds:    []float64{0.50, 0.80, 0.90},
	}
}

// Stress evaluates the closed forms on a larger cluster than the paper
// ever prints (C = ∆ = 9 by default): expected safe/polluted times,
// pollution probability and the polluted-merge absorption risk for every
// (k, µ, d). The grid shares one state space and kernel through the
// sweep evaluator.
func Stress(ctx context.Context, pool *engine.Pool, cfg StressConfig) (*Table, error) {
	if len(cfg.Ks) == 0 || len(cfg.Mus) == 0 || len(cfg.Ds) == 0 {
		return nil, fmt.Errorf("experiments: Stress needs non-empty Ks, Mus and Ds")
	}
	plan := sweep.Plan{
		C: []int{cfg.C}, Delta: []int{cfg.Delta}, K: cfg.Ks,
		Mu: cfg.Mus, D: cfg.Ds, Nu: []float64{0.1},
	}
	rs, err := sweep.Evaluate(ctx, plan, sweep.Options{Pool: pool, BuildPool: cfg.BuildPool, Solver: cfg.Solver})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Sweep S2 — large-cluster stress (C=%d, ∆=%d, |Ω|=%d, α=δ)",
			cfg.C, cfg.Delta, rs.Cells[0].States),
		Columns: []string{"protocol", "mu", "d", "E(T_S)", "E(T_P)", "P(ever polluted)", "p(polluted-merge)"},
		Note: fmt.Sprintf("beyond the paper's evaluation: quorum c=%d; checks that the C=∆=7 "+
			"qualitative ordering survives a larger cluster", (cfg.C-1)/3),
	}
	// Plan order is k-major, then µ, then d — the table's row order.
	for _, cell := range rs.Cells {
		if err := t.AddRow(
			fmt.Sprintf("protocol_%d", cell.Params.K),
			fmtPercent(cell.Params.Mu),
			fmtPercent(cell.Params.D),
			fmtFloat(cell.Analysis.ExpectedSafeTime),
			fmtFloat(cell.Analysis.ExpectedPollutedTime),
			fmtFloat(cell.Analysis.PollutionProbability),
			fmtFloat(cell.Analysis.Absorption[core.ClassNamePollutedMerge]),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// LargeClusterConfig parameterizes the sparse-solver scale sweep (S3).
type LargeClusterConfig struct {
	// Sizes are the cluster sizes evaluated with C = ∆ = size. C = ∆ = 16
	// already has 2295 transient states; 25 has 8424 — an order of
	// magnitude past what the dense path solves in reasonable time.
	Sizes []int
	// Ks are the protocols evaluated.
	Ks []int
	// Mu and D fix the attack point.
	Mu, D float64
	// Solver is the sparse backend; the zero value selects BiCGSTAB
	// (running this sweep densely is the thing it exists to avoid).
	Solver matrix.SolverConfig
	// BuildPool fans the per-row transition-matrix construction of each
	// cell across workers (bit-identical output for any width); nil
	// builds serially. At C = ∆ ≥ 40 construction is the dominant cost
	// of a cell, so the huge sweep always threads one through.
	BuildPool *engine.Pool
	// Label names the sweep in the table title; "" selects the S3 label.
	Label string
}

// DefaultLargeClusterConfig scales C = ∆ to 25 (|Ω| = 9126) at the
// paper's central attack point.
func DefaultLargeClusterConfig() LargeClusterConfig {
	return LargeClusterConfig{
		Sizes: []int{16, 20, 25},
		Ks:    []int{1},
		Mu:    0.2,
		D:     0.8,
	}
}

// DefaultHugeClusterConfig is the S4 frontier: C = ∆ ∈ {40, 50}, up to
// |Ω| = 67626 states (64974 transient) per cell — the scale the
// row-parallel construction pass and the memoized maintenance kernel
// exist for. Attack point and protocol follow S3.
func DefaultHugeClusterConfig() LargeClusterConfig {
	return LargeClusterConfig{
		Sizes: []int{40, 50},
		Ks:    []int{1},
		Mu:    0.2,
		D:     0.8,
		Label: "S4 — huge-cluster parallel-build analytics",
	}
}

// DefaultColossalClusterConfig is the S5 frontier: C = ∆ ∈ {75, 100},
// up to |Ω| = 520251 states (509949 transient) per cell, at the high
// survival probability d = 90% where the transient blocks mix slowly.
// The auto backend's mixing probe detects that regime and swaps the
// fixed two-sweep Gauss-Seidel preconditioner for ILU(0) — the step
// that makes this scale routine instead of iteration-bound.
func DefaultColossalClusterConfig() LargeClusterConfig {
	return LargeClusterConfig{
		Sizes:  []int{75, 100},
		Ks:     []int{1},
		Mu:     0.2,
		D:      0.9,
		Solver: matrix.SolverConfig{Kind: "auto"},
		Label:  "S5 — colossal-cluster preconditioned analytics",
	}
}

// LargeCluster evaluates the closed forms on state spaces far beyond the
// paper's printed figures — thousands of transient states — which only
// the sparse solver path makes affordable: per cell it reports |Ω|, the
// transient-state count, expected safe/polluted times, the pollution
// probability and the polluted-merge absorption risk. Each size is one
// single-geometry sweep.Plan (C = ∆ = size), so protocols at the same
// size share the enumerated space.
func LargeCluster(ctx context.Context, pool *engine.Pool, cfg LargeClusterConfig) (*Table, error) {
	if len(cfg.Sizes) == 0 || len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: LargeCluster needs non-empty Sizes and Ks")
	}
	solver := cfg.Solver
	if solver.Kind == "" {
		solver.Kind = "bicgstab"
	}
	label := cfg.Label
	if label == "" {
		label = "S3 — large-cluster sparse analytics"
	}
	t := &Table{
		Title: fmt.Sprintf("Sweep %s (µ=%g%%, d=%g%%, α=δ, solver=%s)",
			label, cfg.Mu*100, cfg.D*100, solver.Kind),
		Columns: []string{"C=∆", "protocol", "|Ω|", "transient", "E(T_S)", "E(T_P)", "P(ever polluted)", "p(polluted-merge)", "backend", "iters"},
		Note:    "state spaces an order of magnitude past the printed figures; infeasible on the dense LU path, routine on CSR + iterative solves",
	}
	// One single-geometry plan per size; the independent per-size
	// evaluations fan across the pool (nested pool use splits width),
	// with rows appended in size order afterwards.
	resultSets := make([]*sweep.ResultSet, len(cfg.Sizes))
	if err := engine.Ensure(pool).Run(ctx, len(cfg.Sizes), func(i int) error {
		plan := sweep.Plan{
			C: []int{cfg.Sizes[i]}, Delta: []int{cfg.Sizes[i]}, K: cfg.Ks,
			Mu: []float64{cfg.Mu}, D: []float64{cfg.D}, Nu: []float64{0.1},
		}
		rs, err := sweep.Evaluate(ctx, plan, sweep.Options{Pool: pool, BuildPool: cfg.BuildPool, Solver: solver})
		if err != nil {
			return err
		}
		resultSets[i] = rs
		return nil
	}); err != nil {
		return nil, err
	}
	for i, rs := range resultSets {
		for _, cell := range rs.Cells {
			if err := t.AddRow(
				fmt.Sprintf("%d", cfg.Sizes[i]),
				fmt.Sprintf("protocol_%d", cell.Params.K),
				fmt.Sprintf("%d", cell.States),
				fmt.Sprintf("%d", cell.Transient),
				fmtFloat(cell.Analysis.ExpectedSafeTime),
				fmtFloat(cell.Analysis.ExpectedPollutedTime),
				fmtFloat(cell.Analysis.PollutionProbability),
				fmtFloat(cell.Analysis.Absorption[core.ClassNamePollutedMerge]),
				cell.Analysis.Solver.Backend,
				fmt.Sprintf("%d", cell.Analysis.Solver.Iterations),
			); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
