package experiments

import (
	"context"
	"math"
	"testing"

	"targetedattacks/internal/engine"
)

// TestSwarmCrossValidation is the PR's acceptance gate for the
// simulation engine's fidelity: on the single-cluster absorption regime
// the simulator must reproduce the analytic chain's expected safe and
// polluted times within the Monte-Carlo envelope of the replica sample,
// and the absorption-class split must land near the chain's.
func TestSwarmCrossValidation(t *testing.T) {
	cfg := DefaultSwarmConfig()
	cfg.Seed = 7
	cfg.XValMus = []float64{0.10, 0.20}
	// Polluted time is heavy-tailed at low µ (most trajectories never
	// pollute); 400 replicas keep its normal envelope honest.
	cfg.XValReplicas = 400
	cfg.XValMaxEvents = 1 << 15
	rows, err := SwarmXValRows(context.Background(), engine.New(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.XValMus) {
		t.Fatalf("got %d rows, want %d", len(rows), len(cfg.XValMus))
	}
	for _, r := range rows {
		if r.Replicas != cfg.XValReplicas {
			t.Errorf("µ=%.2f: pooled %d safe-time samples, want one per replica (%d)",
				r.Mu, r.Replicas, cfg.XValReplicas)
		}
		if r.ModelSafe <= 0 || r.SimSafe <= 0 {
			t.Errorf("µ=%.2f: degenerate safe times sim=%v model=%v", r.Mu, r.SimSafe, r.ModelSafe)
		}
		// 3.5σ two-sided keeps the deterministic fixed-seed run honest
		// without failing on an ordinary envelope excursion.
		if z := r.ZSafe(); math.Abs(z) > 3.5 {
			t.Errorf("µ=%.2f: E(T_S) sim %.2f±%.2f vs model %.2f (z=%.2f) outside the MC envelope",
				r.Mu, r.SimSafe, r.SimSafeErr, r.ModelSafe, z)
		}
		if z := r.ZPol(); math.Abs(z) > 3.5 {
			t.Errorf("µ=%.2f: E(T_P) sim %.2f±%.2f vs model %.2f (z=%.2f) outside the MC envelope",
				r.Mu, r.SimPol, r.SimPolErr, r.ModelPol, z)
		}
		// Binomial envelope for the absorption-class split.
		se := math.Sqrt(r.ModelPollutedAbs * (1 - r.ModelPollutedAbs) / float64(cfg.XValReplicas))
		if diff := math.Abs(r.SimPollutedAbs - r.ModelPollutedAbs); diff > 3.5*se+1e-12 {
			t.Errorf("µ=%.2f: P(polluted absorption) sim %.3f vs model %.3f (|∆|=%.3f > 3.5·%.3f)",
				r.Mu, r.SimPollutedAbs, r.ModelPollutedAbs, diff, se)
		}
	}
	// More aggressive attacks must not lengthen the analytic safe time.
	if rows[0].ModelSafe < rows[1].ModelSafe {
		t.Errorf("model E(T_S) increased with µ: %v then %v", rows[0].ModelSafe, rows[1].ModelSafe)
	}
}

// TestSwarmQuickArtifacts smoke-runs the registered scenario in Quick
// mode and checks the artifact contract: two named tables, populated,
// and free of wall-clock columns.
func TestSwarmQuickArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("quick swarm run still simulates ~10^4 peers")
	}
	sc, ok := Find("swarm")
	if !ok {
		t.Fatal("swarm scenario not registered")
	}
	arts, err := sc.Run(context.Background(), Env{Pool: engine.New(2), Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 || arts[0].Name != "swarm_scale" || arts[1].Name != "swarm_xval" {
		t.Fatalf("artifacts = %+v, want swarm_scale then swarm_xval", arts)
	}
	scale := arts[0].Table
	if len(scale.Rows) != 4 {
		t.Fatalf("scale grid has %d rows, want 2 strategies × 2 sizes", len(scale.Rows))
	}
	for _, col := range scale.Columns {
		if col == "wall clock" || col == "seconds" || col == "ns/op" {
			t.Errorf("scale table carries timing column %q; artifacts must be pool-independent", col)
		}
	}
	if len(arts[1].Table.Rows) != 1 {
		t.Fatalf("xval table has %d rows, want 1 µ point in quick mode", len(arts[1].Table.Rows))
	}
}
